//! End-to-end integration: the transfer-function-space workflow
//! (paper Section 4.2) on the argon-bubble analog, spanning
//! ifet-sim → ifet-volume → ifet-nn → ifet-tf → ifet-core → ifet-render.

use ifet_core::prelude::*;
use ifet_sim::shock_bubble::ring_value_band;

fn setup() -> (ifet_sim::LabeledSeries, VisSession) {
    let data = ifet_sim::shock_bubble(Dims3::cube(32), 0xE2E);
    let mut session = VisSession::new(data.series.clone()).unwrap();
    let (glo, ghi) = session.series().global_range();
    for (t, tn) in [(195u32, 0.0f32), (225, 0.5), (255, 1.0)] {
        let (lo, hi) = ring_value_band(tn);
        session.add_key_frame(t, TransferFunction1D::band(glo, ghi, lo, hi, 1.0));
    }
    session.train_iatf(IatfParams::default());
    (data, session)
}

#[test]
fn iatf_beats_static_tf_on_drifted_frames() {
    let (data, session) = setup();
    let first_tf = session.key_frames()[0].1.clone();
    // Away from the first key frame, the static TF collapses; the IATF holds.
    for (i, &t) in data.series.steps().to_vec().iter().enumerate().skip(2) {
        let truth = data.truth_frame(i);
        let static_f1 = session.extract_with_tf(t, &first_tf, 0.5).f1(truth);
        let tf = session.adaptive_tf_at_step(t).unwrap();
        let iatf_f1 = session.extract_with_tf(t, &tf, 0.5).f1(truth);
        assert!(
            iatf_f1 > static_f1 + 0.3,
            "t={t}: IATF {iatf_f1} should dominate static {static_f1}"
        );
        assert!(iatf_f1 > 0.6, "t={t}: IATF F1 {iatf_f1} too low");
    }
}

#[test]
fn iatf_beats_lerp_at_unseen_steps() {
    // Key frames only at the endpoints; the middle frames are unseen.
    let data = ifet_sim::shock_bubble(Dims3::cube(32), 0xE2F);
    let mut session = VisSession::new(data.series.clone()).unwrap();
    let (glo, ghi) = session.series().global_range();
    for (t, tn) in [(195u32, 0.0f32), (255, 1.0)] {
        let (lo, hi) = ring_value_band(tn);
        session.add_key_frame(t, TransferFunction1D::band(glo, ghi, lo, hi, 1.0));
    }
    session.train_iatf(IatfParams::default());

    let t = 225;
    let fi = data.series.index_of_step(t).unwrap();
    let truth = data.truth_frame(fi);
    let lerp_f1 = session
        .extract_with_tf(t, &session.lerp_tf_at_step(t).unwrap(), 0.5)
        .f1(truth);
    let iatf_f1 = session
        .extract_with_tf(t, &session.adaptive_tf_at_step(t).unwrap(), 0.5)
        .f1(truth);
    assert!(
        iatf_f1 > lerp_f1 + 0.2,
        "IATF {iatf_f1} must clearly beat lerp {lerp_f1} at the unseen middle step"
    );
}

#[test]
fn trained_network_survives_serialization() {
    // The paper ships the IATF to "parallel systems or remote machines for
    // rendering" — the network must serialize losslessly.
    let (data, session) = setup();
    let iatf = session.iatf().unwrap();
    let json = serde_json::to_string(iatf).expect("serialize");
    let restored: Iatf = serde_json::from_str(&json).expect("deserialize");
    let frame = data.series.frame_at_step(225).unwrap();
    assert_eq!(iatf.generate(225, frame), restored.generate(225, frame));
}

#[test]
fn adaptive_render_shows_the_ring() {
    let (_, session) = setup();
    let img = session.render_adaptive(225, 64, 64).unwrap();
    assert!(
        img.mean_luminance() > 0.01,
        "adaptive render should not be black"
    );
    // And a transparent TF renders black (sanity of the comparison).
    let (glo, ghi) = session.series().global_range();
    let empty = TransferFunction1D::transparent(glo, ghi);
    let black = session.render_with_tf(225, &empty, 64, 64);
    assert!(black.mean_luminance() < 1e-6);
}

#[test]
fn adaptive_tfs_cover_every_frame() {
    let (data, session) = setup();
    let tfs = session.adaptive_tfs().unwrap();
    assert_eq!(tfs.len(), data.series.len());
    for tf in &tfs {
        assert!(
            tf.support(0.5).is_some(),
            "each frame's adaptive TF must keep a visible band"
        );
    }
}
