//! The serve-layer equivalence gate: concurrent multi-client serving must
//! be **byte-identical** to serial execution.
//!
//! N client threads each drive a seeded pseudo-random schedule of verbs
//! against one shared [`ServeEngine`] through the byte-in/byte-out entry
//! point (`handle_wire`), racing over shared resident sessions and one
//! contended cache budget. A fresh engine then replays every client's
//! request log serially, client by client. Every response a client saw in
//! the concurrent run must equal — byte for byte — the response the serial
//! replay produces, for every seed and every budget shape.
//!
//! `report-stats` is deliberately absent from the schedules: it is the one
//! verb specified to report scheduling (the response analog of runtime
//! counters, which stable traces strip).

use ifet_core::prelude::*;
use ifet_serve::{encode_request, Axis, Request, ServeConfig, ServeEngine, Verb, WireCriterion};
use ifet_volume::CacheBudget;
use std::sync::Barrier;

mod support;
use support::{mix, serve_fixture, ServeFixture, FRAMES, FRAME_BYTES, STEP_STRIDE};

const CLIENTS: u32 = 4;
const REQUESTS_PER_CLIENT: usize = 8;

fn open_verb(fx: &ServeFixture) -> Verb {
    Verb::Open {
        artifact: fx.artifact.display().to_string(),
        data_dir: fx.data_dir.display().to_string(),
    }
}

/// The seeded per-client request log. Every choice — verb, step, slice
/// axis, thresholds, when to close and rebind — derives from `mix(seed,
/// client, i)`, so a schedule is a pure function of its seed and replays
/// exactly. Clients alternate between two artifacts so schedules exercise
/// both shared-session reuse (same artifact) and budget contention
/// (different artifacts).
fn schedule(seed: u64, client: u32, fixtures: &[ServeFixture]) -> Vec<Request> {
    let fx = &fixtures[client as usize % fixtures.len()];
    let step = |r: u64| (r as u32 / 7 % FRAMES as u32) * STEP_STRIDE;
    let mut reqs = Vec::new();
    let mut bound = false;
    for i in 0..REQUESTS_PER_CLIENT {
        let r = mix(seed ^ ((u64::from(client) + 1) << 32) ^ i as u64);
        let verb = if !bound {
            bound = true;
            open_verb(fx)
        } else {
            match r % 10 {
                0..=3 => Verb::Classify {
                    step: step(r >> 8),
                    tau: if r & 4 == 0 { 0.5 } else { 0.65 },
                },
                4..=6 => Verb::RenderSlice {
                    step: step(r >> 8),
                    axis: match (r >> 4) % 3 {
                        0 => Axis::X,
                        1 => Axis::Y,
                        _ => Axis::Z,
                    },
                    k: (r >> 16) as u32 % 12,
                    adaptive: false,
                },
                7 => Verb::RenderSlice {
                    step: step(r >> 8),
                    axis: Axis::Z,
                    k: 6,
                    adaptive: true,
                },
                8 => Verb::Track {
                    criterion: WireCriterion::FixedBand { lo: 0.9, hi: 3.0 },
                    seeds: vec![(0, 3, 6, 6)],
                },
                _ => {
                    bound = false;
                    Verb::Close
                }
            }
        };
        reqs.push(Request {
            request_id: (u64::from(client) << 32) | i as u64,
            tenant: client,
            verb,
        });
    }
    reqs
}

/// Drive one client's log through the engine sequentially, returning the
/// raw response bytes (requests within a client are ordered; only the
/// cross-client interleaving is up for grabs).
fn run_client(engine: &ServeEngine, log: &[Request]) -> Vec<Vec<u8>> {
    log.iter()
        .map(|req| engine.handle_wire(&encode_request(req)))
        .collect()
}

fn engine_with(budget: CacheBudget) -> ServeEngine {
    ServeEngine::new(ServeConfig {
        budget,
        max_inflight_per_tenant: 16,
        prefetch: 0,
        tenant_quota_bytes: None,
    })
}

/// Concurrent run: all clients start behind one barrier and race.
fn run_concurrent(budget: CacheBudget, logs: &[Vec<Request>]) -> (ServeEngine, Vec<Vec<Vec<u8>>>) {
    let engine = engine_with(budget);
    let barrier = Barrier::new(logs.len());
    let responses = std::thread::scope(|s| {
        let handles: Vec<_> = logs
            .iter()
            .map(|log| {
                let engine = engine.clone();
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    run_client(&engine, log)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    (engine, responses)
}

/// Serial replay: a fresh engine, every client's log in client order.
fn run_serial(budget: CacheBudget, logs: &[Vec<Request>]) -> (ServeEngine, Vec<Vec<Vec<u8>>>) {
    let engine = engine_with(budget);
    let responses = logs.iter().map(|log| run_client(&engine, log)).collect();
    (engine, responses)
}

#[test]
fn concurrent_serving_is_byte_identical_to_serial_replay() {
    let fixtures = [
        serve_fixture("srv_eq_a", 0.0),
        serve_fixture("srv_eq_b", 0.25),
    ];
    // Three budget shapes: frame-counted, byte-counted with headroom, and
    // byte-counted *contended* — two artifacts' frames thrash through a
    // two-frame budget, maximizing eviction races between clients.
    let budgets = [
        CacheBudget::Frames(4),
        CacheBudget::Bytes(3 * FRAME_BYTES),
        CacheBudget::Bytes(2 * FRAME_BYTES),
    ];
    for seed in [1u64, 9] {
        let logs: Vec<Vec<Request>> = (0..CLIENTS).map(|c| schedule(seed, c, &fixtures)).collect();
        for budget in budgets {
            let (concurrent_engine, concurrent) = run_concurrent(budget, &logs);
            let (_, serial) = run_serial(budget, &logs);
            for (client, (got, want)) in concurrent.iter().zip(&serial).enumerate() {
                for (i, (g, w)) in got.iter().zip(want).enumerate() {
                    assert_eq!(
                        g, w,
                        "client {client} response {i} diverged from serial replay \
                         (seed {seed}, budget {budget:?})"
                    );
                }
            }
            // The shared budget's high-water mark must hold no matter how
            // the clients interleaved.
            let st = concurrent_engine.budget().stats();
            match budget {
                CacheBudget::Frames(n) => assert!(
                    st.high_water_frames <= n,
                    "frame high-water {} exceeds budget {n} (seed {seed})",
                    st.high_water_frames
                ),
                CacheBudget::Bytes(b) => assert!(
                    st.high_water_bytes <= b,
                    "byte high-water {} exceeds budget {b} (seed {seed})",
                    st.high_water_bytes
                ),
            }
        }
    }
}

/// A seeded log of *commuting* read-only verbs for the pipelined matrix:
/// no `open`/`close` (session binding is established synchronously before
/// pipelining starts), so any interleaving of the log is response-
/// equivalent and replies may legally complete out of order.
fn pipelined_schedule(seed: u64, client: u32) -> Vec<Request> {
    let step = |r: u64| (r as u32 / 7 % FRAMES as u32) * STEP_STRIDE;
    (0..REQUESTS_PER_CLIENT)
        .map(|i| {
            let r = mix(seed ^ ((u64::from(client) + 1) << 40) ^ i as u64);
            let verb = match r % 8 {
                0..=3 => Verb::Classify {
                    step: step(r >> 8),
                    tau: if r & 4 == 0 { 0.5 } else { 0.65 },
                },
                4..=5 => Verb::RenderSlice {
                    step: step(r >> 8),
                    axis: match (r >> 4) % 3 {
                        0 => Axis::X,
                        1 => Axis::Y,
                        _ => Axis::Z,
                    },
                    k: (r >> 16) as u32 % 12,
                    adaptive: false,
                },
                6 => Verb::RenderSlice {
                    step: step(r >> 8),
                    axis: Axis::Z,
                    k: 6,
                    adaptive: true,
                },
                _ => Verb::Track {
                    criterion: WireCriterion::FixedBand { lo: 0.9, hi: 3.0 },
                    seeds: vec![(0, 3, 6, 6)],
                },
            };
            Request {
                request_id: (u64::from(client) << 32) | (i as u64 + 2),
                tenant: client,
                verb,
            }
        })
        .collect()
}

/// A seeded permutation of `0..n` (Fisher–Yates off `mix`), so clients
/// await their pipelined replies in an order unrelated to submission.
fn shuffled(seed: u64, n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (mix(seed ^ (i as u64) << 16) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// The pipelined matrix: 4 clients × 8 outstanding requests over real
/// sockets, against a worker-pool server. Replies may come back in any
/// completion order, but every request id's reply must be byte-identical
/// (after re-encoding) to a serial in-process replay of the same logs —
/// reordering never crosses request ids — and every tenant's admission
/// algebra (`accepted + rejected == sent`) must hold under the pool.
#[test]
#[cfg(unix)]
fn pipelined_multiplexing_is_byte_identical_per_request_id() {
    use ifet_serve::{encode_response, serve_unix, Client, ServerOpts};

    let fixtures = [
        serve_fixture("srv_pipe_eq_a", 0.0),
        serve_fixture("srv_pipe_eq_b", 0.25),
    ];
    let budgets = [CacheBudget::Frames(4), CacheBudget::Bytes(2 * FRAME_BYTES)];
    for seed in [1u64, 9] {
        for budget in budgets {
            let opens: Vec<Request> = (0..CLIENTS)
                .map(|c| Request {
                    request_id: (u64::from(c) << 32) | 1,
                    tenant: c,
                    verb: open_verb(&fixtures[c as usize % fixtures.len()]),
                })
                .collect();
            let logs: Vec<Vec<Request>> =
                (0..CLIENTS).map(|c| pipelined_schedule(seed, c)).collect();

            // Serial in-process reference: fresh engine, each client's open
            // then its log, client by client.
            let serial_engine = engine_with(budget);
            let mut want: std::collections::HashMap<u64, Vec<u8>> = Default::default();
            for (open, log) in opens.iter().zip(&logs) {
                want.insert(
                    open.request_id,
                    serial_engine.handle_wire(&encode_request(open)),
                );
                for req in log {
                    want.insert(
                        req.request_id,
                        serial_engine.handle_wire(&encode_request(req)),
                    );
                }
            }

            // Multiplexed run: every client opens synchronously, negotiates
            // pipelined mode, fires its whole log without awaiting, then
            // collects replies in a seeded shuffled order.
            let dir = support::temp_dir(&format!("srv_pipe_eq_{seed}_{budget:?}"));
            let sock = dir.join("ifet.sock");
            let engine = engine_with(budget);
            let total = u64::from(CLIENTS) * (2 + REQUESTS_PER_CLIENT as u64);
            let server = {
                let sock = sock.clone();
                let engine = engine.clone();
                std::thread::spawn(move || {
                    serve_unix(
                        &sock,
                        &engine,
                        ServerOpts {
                            max_requests: Some(total),
                            workers: 4,
                        },
                    )
                })
            };
            let barrier = Barrier::new(CLIENTS as usize);
            let got: Vec<Vec<(u64, Vec<u8>)>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..CLIENTS)
                    .map(|c| {
                        let sock = &sock;
                        let open = &opens[c as usize];
                        let log = &logs[c as usize];
                        let barrier = &barrier;
                        s.spawn(move || {
                            let mut client = None;
                            for _ in 0..500 {
                                match Client::connect(sock) {
                                    Ok(cl) => {
                                        client = Some(cl);
                                        break;
                                    }
                                    Err(_) => {
                                        std::thread::sleep(std::time::Duration::from_millis(2))
                                    }
                                }
                            }
                            let mut client = client.expect("server never came up");
                            let mut out = Vec::new();
                            let rsp = client.call(open).unwrap();
                            out.push((open.request_id, encode_response(&rsp)));
                            let granted = client.hello(REQUESTS_PER_CLIENT as u32).unwrap();
                            assert_eq!(granted, REQUESTS_PER_CLIENT as u32);
                            // All clients pipeline their full burst together.
                            barrier.wait();
                            for req in log {
                                client.submit(req).unwrap();
                            }
                            for idx in shuffled(seed ^ u64::from(c), log.len()) {
                                let req = &log[idx];
                                let rsp = client.await_response(req.request_id).unwrap();
                                assert_eq!(rsp.request_id, req.request_id);
                                assert_eq!(rsp.tenant, req.tenant);
                                out.push((req.request_id, encode_response(&rsp)));
                            }
                            out
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let served = server.join().unwrap().unwrap();
            assert_eq!(served, total, "seed {seed}, budget {budget:?}");

            for per_client in &got {
                for (id, bytes) in per_client {
                    let reference = want
                        .get(id)
                        .unwrap_or_else(|| panic!("unknown request id {id:#x}"));
                    // Hello replies aside, every id's bytes must match the
                    // serial replay exactly; reordering across the wire
                    // never leaks into another id's reply.
                    assert_eq!(
                        bytes, reference,
                        "request {id:#x} diverged from serial replay \
                         (seed {seed}, budget {budget:?})"
                    );
                }
            }

            // Admission counter algebra holds per tenant under the pool —
            // and nothing was rejected, so the byte-comparison above was
            // not vacuous.
            for c in 0..CLIENTS {
                let st = engine.tenant_stats(c);
                assert_eq!(
                    st.accepted + st.rejected,
                    st.sent,
                    "tenant {c} counter algebra (seed {seed}, budget {budget:?})"
                );
                assert_eq!(st.rejected, 0, "tenant {c} saw spurious rejections");
            }
            // The contended budget's high-water must hold no matter how the
            // pool interleaved the four pipelines.
            let st = engine.budget().stats();
            match budget {
                CacheBudget::Frames(n) => assert!(st.high_water_frames <= n),
                CacheBudget::Bytes(b) => assert!(st.high_water_bytes <= b),
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn served_responses_match_standalone_session() {
    // The engine must add nothing: a served classify/track/render answer
    // equals the same computation on a standalone in-core session built
    // from the same fixture (save → load round-trips are bit-exact, so the
    // in-core trainer is a valid oracle for the loaded artifact).
    let fx = serve_fixture("srv_oracle", 0.0);
    let engine = engine_with(CacheBudget::Frames(3));
    let open = Request {
        request_id: 1,
        tenant: 7,
        verb: open_verb(&fx),
    };
    match engine.handle(open).body {
        ifet_serve::ResponseBody::OpenOk {
            frames,
            dims,
            has_iatf,
            has_classifier,
            tracks,
            ..
        } => {
            assert_eq!(frames as usize, FRAMES);
            assert_eq!(dims, (12, 12, 12));
            assert!(has_iatf && has_classifier);
            assert_eq!(tracks, 1);
        }
        other => panic!("open failed: {other:?}"),
    }

    let step = 2 * STEP_STRIDE;
    let tau = 0.5;
    match engine
        .handle(Request {
            request_id: 2,
            tenant: 7,
            verb: Verb::Classify { step, tau },
        })
        .body
    {
        ifet_serve::ResponseBody::ClassifyOk { voxels, words } => {
            let want = fx
                .session
                .try_extract_data_space(step, tau)
                .unwrap()
                .unwrap();
            assert_eq!(voxels, want.count() as u64);
            assert_eq!(words, want.words().to_vec());
        }
        other => panic!("classify failed: {other:?}"),
    }

    match engine
        .handle(Request {
            request_id: 3,
            tenant: 7,
            verb: Verb::Track {
                criterion: WireCriterion::FixedBand { lo: 0.9, hi: 3.0 },
                seeds: vec![(0, 3, 6, 6)],
            },
        })
        .body
    {
        ifet_serve::ResponseBody::TrackOk {
            voxels_per_frame,
            events,
        } => {
            let want = fx
                .session
                .track_spec(
                    &CriterionSpec::FixedBand { lo: 0.9, hi: 3.0 },
                    &[(0, 3, 6, 6)],
                )
                .unwrap();
            let want_vpf: Vec<u32> = want
                .report
                .voxels_per_frame
                .iter()
                .map(|&v| v as u32)
                .collect();
            assert_eq!(voxels_per_frame, want_vpf);
            assert_eq!(events as usize, want.report.events.len());
        }
        other => panic!("track failed: {other:?}"),
    }

    match engine
        .handle(Request {
            request_id: 4,
            tenant: 7,
            verb: Verb::RenderSlice {
                step,
                axis: Axis::Z,
                k: 6,
                adaptive: false,
            },
        })
        .body
    {
        ifet_serve::ResponseBody::RenderSliceOk { width, height, rgb } => {
            let frame = fx.session.series().frame_at_step(step).unwrap();
            let img =
                ifet_render::render_slice(frame, ifet_render::SliceAxis::Z, 6, fx.session.colormap);
            assert_eq!(
                (width as usize, height as usize),
                (img.width(), img.height())
            );
            let want: Vec<u8> = img
                .as_slice()
                .iter()
                .map(|&c| (c.clamp(0.0, 1.0) * 255.0).round() as u8)
                .collect();
            assert_eq!(rgb, want);
        }
        other => panic!("render failed: {other:?}"),
    }
}

#[test]
fn typed_errors_are_deterministic_responses() {
    // Errors are responses too, and equally schedule-independent: the same
    // bad request always yields the same typed error bytes.
    let fx = serve_fixture("srv_err", 0.0);
    let engine = engine_with(CacheBudget::Frames(2));
    let no_session = Request {
        request_id: 10,
        tenant: 1,
        verb: Verb::Classify { step: 0, tau: 0.5 },
    };
    let a = engine.handle_wire(&encode_request(&no_session));
    let b = engine.handle_wire(&encode_request(&no_session));
    assert_eq!(a, b, "identical bad requests must get identical bytes");
    let rsp = ifet_serve::decode_response(&a).unwrap();
    match rsp.body {
        ifet_serve::ResponseBody::Err { code, .. } => {
            assert_eq!(code, ifet_serve::ErrorCode::NoSession)
        }
        other => panic!("expected NoSession error, got {other:?}"),
    }

    engine.handle(Request {
        request_id: 11,
        tenant: 1,
        verb: open_verb(&fx),
    });
    let bad_step = Request {
        request_id: 12,
        tenant: 1,
        verb: Verb::RenderSlice {
            step: 9999,
            axis: Axis::X,
            k: 0,
            adaptive: false,
        },
    };
    let rsp = ifet_serve::decode_response(&engine.handle_wire(&encode_request(&bad_step))).unwrap();
    match rsp.body {
        ifet_serve::ResponseBody::Err { code, .. } => {
            assert_eq!(code, ifet_serve::ErrorCode::BadRequest)
        }
        other => panic!("expected BadRequest error, got {other:?}"),
    }
    let oob = Request {
        request_id: 13,
        tenant: 1,
        verb: Verb::RenderSlice {
            step: 0,
            axis: Axis::X,
            k: 99,
            adaptive: false,
        },
    };
    let rsp = ifet_serve::decode_response(&engine.handle_wire(&encode_request(&oob))).unwrap();
    match rsp.body {
        ifet_serve::ResponseBody::Err { code, message } => {
            assert_eq!(code, ifet_serve::ErrorCode::BadRequest);
            assert!(message.contains("out of range"), "got: {message}");
        }
        other => panic!("expected BadRequest error, got {other:?}"),
    }
}
