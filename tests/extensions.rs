//! Integration tests for the extension features: QG merge tracking,
//! multivariate classification, the SVM engine, out-of-core paging,
//! key-frame suggestion, persistent tracks, and network pruning — the
//! paper's Section 8 directions, end to end.

use ifet_core::prelude::*;
use ifet_nn::introspect;
use ifet_sim::combustion_jet::{combustion_jet_multi, CombustionJetParams};
use ifet_track::EventKind;

#[test]
fn qg_inverse_cascade_yields_merge_events_and_tracks() {
    let data = ifet_sim::qg_turbulence(Dims3::cube(32), 7);
    let criterion = MaskCriterion::new(data.truth.clone()).unwrap();
    let seeds: Vec<Seed4> = data
        .truth_frame(0)
        .set_coords()
        .map(|(x, y, z)| (0usize, x, y, z))
        .collect();
    let masks = grow_4d(&data.series, &criterion, &seeds).unwrap();
    let report = track_events(&masks);

    // Coherent vortices merge: component count must drop, with Merge events.
    assert!(
        *report.components_per_frame.last().unwrap() < report.components_per_frame[0],
        "no inverse cascade: {:?}",
        report.components_per_frame
    );
    assert!(report.events_of(EventKind::Merge).next().is_some());

    // Persistent tracks record the fates.
    let frames: Vec<&ScalarVolume> = (0..data.series.len())
        .map(|i| data.series.frame(i))
        .collect();
    let set = extract_tracks(&masks, &frames);
    // Every merged track names an absorbing track that actually exists.
    let merged_into: Vec<u32> = set
        .tracks
        .iter()
        .filter_map(|t| match t.ending {
            TrackEnding::Merged { into } => Some(into),
            _ => None,
        })
        .collect();
    assert!(!merged_into.is_empty());
    for into in merged_into {
        assert!(set.tracks.iter().any(|t| t.id == into));
    }
    assert!(set
        .tracks
        .iter()
        .any(|t| t.ending == TrackEnding::SurvivesToEnd));
    // Track accounting: per frame, alive tracks == components.
    for fi in 0..masks.len() {
        assert_eq!(
            set.alive_at(fi).count() as u32,
            report.components_per_frame[fi],
            "frame {fi}"
        );
    }
}

#[test]
fn multivariate_classifier_beats_single_variables() {
    let (ms, truth) = combustion_jet_multi(CombustionJetParams {
        dims: Dims3::new(32, 48, 16),
        seed: 0xE7,
        ..Default::default()
    });
    let paint_step = ms.steps()[ms.len() / 2];
    let fi = ms.index_of_step(paint_step).unwrap();
    let mut oracle = PaintOracle::new(0xE7);
    let paints = oracle.paint_from_truth(paint_step, &truth[fi], 400, 400);
    let spec = FeatureSpec {
        shell_radius: 3.0,
        ..Default::default()
    };

    let params = ClassifierParams {
        hidden: 16,
        epochs: 400,
        ..Default::default()
    };
    let multi = DataSpaceClassifier::train_multi(
        FeatureExtractor::new(spec),
        &ms,
        std::slice::from_ref(&paints),
        params,
    )
    .unwrap();
    let multi_f1 = multi
        .extract_mask_multi(ms.frame(fi), ms.normalized_time(paint_step), 0.5)
        .f1(&truth[fi]);

    let single_series = ms.scalar_series("mixture").unwrap();
    let single = DataSpaceClassifier::train(
        FeatureExtractor::new(spec),
        &single_series,
        &[paints],
        params,
    )
    .unwrap();
    let single_f1 = single
        .extract_mask(
            single_series.frame(fi),
            single_series.normalized_time(paint_step),
            0.5,
        )
        .f1(&truth[fi]);

    assert!(
        multi_f1 > single_f1 + 0.05,
        "multivariate {multi_f1} should beat single-variable {single_f1}"
    );
    assert!(multi_f1 > 0.5, "multivariate F1 {multi_f1} too low");
}

#[test]
fn svm_and_nn_agree_on_an_easy_task() {
    let data = ifet_sim::reionization(Dims3::cube(32), 0xE8);
    let t = 310;
    let fi = data.series.index_of_step(t).unwrap();
    let truth = data.truth_frame(fi);
    let spec = FeatureSpec {
        shell_radius: 3.0,
        ..Default::default()
    };
    let make_paints = || {
        let mut oracle = PaintOracle::new(0xE8);
        oracle.paint_from_truth(t, truth, 200, 200)
    };
    let nn = DataSpaceClassifier::train(
        FeatureExtractor::new(spec),
        &data.series,
        &[make_paints()],
        ClassifierParams::default(),
    )
    .unwrap();
    let svm = DataSpaceClassifier::train_svm(
        FeatureExtractor::new(spec),
        &data.series,
        &[make_paints()],
        SvmParams {
            c: 10.0,
            kernel: Kernel::Rbf { gamma: 4.0 },
            max_passes: 10,
            ..Default::default()
        },
    )
    .unwrap();
    let tn = data.series.normalized_time(t);
    let nn_f1 = nn.extract_mask(data.series.frame(fi), tn, 0.5).f1(truth);
    let svm_f1 = svm.extract_mask(data.series.frame(fi), tn, 0.5).f1(truth);
    assert!(nn_f1 > 0.8, "NN F1 {nn_f1}");
    assert!(
        svm_f1 > 0.7,
        "SVM F1 {svm_f1} — 'promising results' (Section 8)"
    );
}

#[test]
fn out_of_core_series_supports_the_iatf_workflow() {
    use ifet_sim::shock_bubble::ring_value_band;
    let data = ifet_sim::shock_bubble(Dims3::cube(16), 0xE9);
    let dir = std::env::temp_dir().join(format!("ifet_ext_ooc_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // Page the series to disk with room for only 2 resident frames.
    let ooc = OutOfCoreSeries::create(&dir, "b", &data.series, 2).unwrap();

    // The IATF needs only the key frames in core (paper Section 4.2.3).
    let key_frames = [(195u32, 0.0f32), (255, 1.0)];
    let mut session = VisSession::new(data.series.clone()).unwrap();
    let (glo, ghi) = data.series.global_range();
    for (t, tn) in key_frames {
        let (lo, hi) = ring_value_band(tn);
        session.add_key_frame(t, TransferFunction1D::band(glo, ghi, lo, hi, 1.0));
        // Touch only the key frames through the paging layer.
        let _ = ooc.frame_at_step(t).unwrap().unwrap();
    }
    assert!(ooc.resident() <= 2);
    session.train_iatf(IatfParams {
        epochs: 100,
        ..Default::default()
    });

    // Apply the trained IATF to frames streamed one at a time from disk.
    let iatf = session.iatf().unwrap();
    for (i, &t) in ooc.steps().to_vec().iter().enumerate() {
        let frame = ooc.frame(i).unwrap();
        let tf = iatf.generate(t, &frame);
        assert!(tf.support(0.5).is_some(), "t={t}: band lost");
        assert!(ooc.resident() <= 2, "paging violated its budget");
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn suggested_key_frames_train_a_working_iatf() {
    use ifet_sim::shock_bubble::{shock_bubble_with, ShockBubbleParams};
    let params = ShockBubbleParams {
        dims: Dims3::cube(24),
        stride: 5,
        ..Default::default()
    };
    let data = shock_bubble_with(params);
    let mut session = VisSession::new(data.series.clone()).unwrap();
    let keys = session.suggest_key_frames(3);
    assert!(keys.len() >= 2);
    let (glo, ghi) = data.series.global_range();
    let span = (params.t_end - params.t_start) as f32;
    for &t in &keys {
        let tn = (t - params.t_start) as f32 / span;
        let (lo, hi) = params.ring_band(tn);
        session.add_key_frame(t, TransferFunction1D::band(glo, ghi, lo, hi, 1.0));
    }
    session.train_iatf(IatfParams::default());
    // IATF from suggested keys holds a usable F1 everywhere.
    for (i, &t) in data.series.steps().to_vec().iter().enumerate() {
        let tf = session.adaptive_tf_at_step(t).unwrap();
        let f1 = session.extract_with_tf(t, &tf, 0.5).f1(data.truth_frame(i));
        assert!(f1 > 0.5, "t={t}: F1 {f1}");
    }
}

#[test]
fn pruned_classifier_network_still_extracts() {
    // The Section 6 loop end-to-end: train with a superfluous input, find it,
    // drop it, and verify behaviour is preserved (zero-input equivalence).
    let data = ifet_sim::reionization(Dims3::cube(24), 0xEA);
    let t = 310;
    let fi = data.series.index_of_step(t).unwrap();
    let mut session = VisSession::new(data.series.clone()).unwrap();
    let mut oracle = PaintOracle::new(0xEA);
    session
        .add_paints(oracle.paint_from_truth(t, data.truth_frame(fi), 150, 150))
        .unwrap();
    session
        .train_classifier(
            FeatureSpec {
                position: true, // superfluous here
                shell_radius: 3.0,
                ..Default::default()
            },
            ClassifierParams::default(),
        )
        .unwrap();
    let net = session.classifier().unwrap().network();
    let ranked = introspect::rank_inputs(net);
    let (least, _) = *ranked.last().unwrap();
    let smaller = introspect::drop_input(net, least);
    // Agreement when the dropped input is zeroed.
    let mut probe = vec![0.3f32; net.input_size()];
    probe[least] = 0.0;
    let full_out = net.forward(&probe)[0];
    let mut small_probe = probe.clone();
    small_probe.remove(least);
    let small_out = smaller.forward(&small_probe)[0];
    assert!((full_out - small_out).abs() < 1e-6);
}
