//! Shared fixtures for the integration suites. One copy of the
//! drifting-ball series, its on-disk forms, the deterministic chaos
//! helpers, and a fully trained session artifact — used by the out-of-core
//! equivalence/chaos suites and the serve suites alike, so every layer is
//! gated against the *same* data.
//!
//! Everything here is deterministic: fixtures derive from closed-form
//! voxel functions and seeded splitmix64 streams, never from wall clocks
//! or OS RNGs, so any failure replays exactly.

#![allow(dead_code)]

use ifet_core::prelude::*;
use ifet_extract::PaintSet;
use ifet_volume::{ReadFault, ReadFaultHook};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Frames in the standard fixture series.
pub const FRAMES: usize = 16;
/// Cube edge of the standard fixture series.
pub const DIM: usize = 12;
/// Raw (uncompressed) size of one fixture frame.
pub const FRAME_BYTES: u64 = (DIM * DIM * DIM * 4) as u64;
/// Step labels are `5 * frame_index`.
pub const STEP_STRIDE: u32 = 5;

/// A drifting-ramp series with a moving bright ball: enough structure for
/// tracking, classification, and IATF training to all do real work. The
/// ball starts centered at `(3, 6, 6)` and drifts `+0.4` in x per frame.
pub fn series() -> TimeSeries {
    series_with_offset(0.0)
}

/// [`series`] with every voxel shifted by `offset` — cheap way to mint a
/// *different* dataset (different artifact, different classifier outputs)
/// for multi-artifact scenarios.
pub fn series_with_offset(offset: f32) -> TimeSeries {
    let d = Dims3::cube(DIM);
    TimeSeries::from_frames(
        (0..FRAMES)
            .map(|k| {
                let drift = 0.05 * k as f32;
                let cx = 3.0 + 0.4 * k as f32;
                let vol = ScalarVolume::from_fn(d, move |x, y, z| {
                    let dist = ((x as f32 - cx).powi(2)
                        + (y as f32 - 6.0).powi(2)
                        + (z as f32 - 6.0).powi(2))
                    .sqrt();
                    let base = (x + y + z) as f32 / 36.0 + drift + offset;
                    if dist <= 2.5 {
                        base + 1.0
                    } else {
                        base
                    }
                });
                (k as u32 * STEP_STRIDE, vol)
            })
            .collect(),
    )
}

/// A fresh per-process temp directory namespaced by `tag`.
pub fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ifet_fix_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The fixture series written to disk (raw or compressed frames); returns
/// the in-core reference and the frame paths.
pub fn on_disk_as(tag: &str, prefix: &str, compressed: bool) -> (TimeSeries, Vec<PathBuf>) {
    let s = series();
    let dir = temp_dir(tag);
    let paths = if compressed {
        ifet_volume::io::write_series_with(&dir, prefix, &s, true).unwrap()
    } else {
        ifet_volume::io::write_series(&dir, prefix, &s).unwrap()
    };
    (s, paths)
}

/// Frames per velocity component in the flow fixture.
pub const FLOW_FRAMES: usize = 6;
/// Cube edge of the flow fixture.
pub const FLOW_DIM: usize = 16;
/// Step labels of the flow fixture are `2 * frame_index`.
pub const FLOW_STRIDE: u32 = 2;

/// The decaying-swirl velocity fixture written to disk as its three scalar
/// component series (u, v, w); returns the in-core components and their
/// frame paths. Time-varying, so frame-pair interpolation does real work.
pub fn flow_on_disk(tag: &str, compressed: bool) -> ([TimeSeries; 3], [Vec<PathBuf>; 3]) {
    let f = ifet_sim::flows::flow_series(
        ifet_sim::flows::FlowKind::parse("swirl").unwrap(),
        Dims3::cube(FLOW_DIM),
        FLOW_FRAMES,
        FLOW_STRIDE,
    );
    let dir = temp_dir(tag);
    let write = |name: &str, s: &TimeSeries| {
        ifet_volume::io::write_series_with(&dir, name, s, compressed).unwrap()
    };
    let paths = [
        write("fl_u", &f.u),
        write("fl_v", &f.v),
        write("fl_w", &f.w),
    ];
    ([f.u, f.v, f.w], paths)
}

/// splitmix64 finalizer: deterministic pseudo-randomness without any
/// wall-clock or RNG dependence, so every randomized schedule is
/// replayable from its seed.
pub fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Fault hook that injects pseudo-random read delays and fails the first
/// `fails_per_frame` read attempts of every frame with a transient I/O
/// error — whoever gets there first (demand or prefetch) eats the failures
/// and must retry or degrade.
pub fn chaos_hook(seed: u64, fails_per_frame: u32) -> ReadFaultHook {
    let counts: Mutex<HashMap<usize, u32>> = Mutex::new(HashMap::new());
    Arc::new(move |frame, attempt| {
        let seen = {
            let mut c = counts.lock().unwrap();
            let e = c.entry(frame).or_insert(0);
            let seen = *e;
            *e += 1;
            seen
        };
        if seen < fails_per_frame {
            return Some(ReadFault::Error);
        }
        let r = mix(seed ^ ((frame as u64) << 8) ^ attempt as u64);
        if r % 2 == 0 {
            Some(ReadFault::Delay(Duration::from_micros(r % 300)))
        } else {
            None
        }
    })
}

/// Paints for the fixture ball at frame 0 (center `(3, 6, 6)`, radius 2.5):
/// a handful of inside voxels positive, far corners negative. Hand-picked,
/// so training is deterministic with no oracle RNG involved.
pub fn ball_paints() -> PaintSet {
    let mut p = PaintSet::new(0);
    for pos in [
        (3, 6, 6),
        (4, 6, 6),
        (2, 6, 6),
        (3, 5, 6),
        (3, 6, 5),
        (3, 7, 7),
    ] {
        p.paint(pos, true);
    }
    for neg in [
        (0, 0, 0),
        (11, 11, 11),
        (11, 0, 0),
        (0, 11, 11),
        (8, 1, 1),
        (0, 6, 0),
    ] {
        p.paint(neg, false);
    }
    p
}

/// A session on `series` with every capability the serve verbs exercise:
/// two key frames + trained IATF, ball paints + trained classifier, and
/// one completed fixed-band track. Training params are small but real.
pub fn trained_session(series: TimeSeries) -> VisSession {
    let steps = series.steps().to_vec();
    let (glo, ghi) = series.global_range();
    let mut sess = VisSession::new(series).unwrap();
    sess.add_key_frame(
        steps[0],
        TransferFunction1D::band(glo, ghi, glo + 0.6 * (ghi - glo), ghi, 0.9),
    );
    sess.add_key_frame(
        *steps.last().unwrap(),
        TransferFunction1D::band(glo, ghi, glo + 0.4 * (ghi - glo), ghi, 0.9),
    );
    sess.train_iatf(IatfParams {
        hidden: 4,
        bins: 32,
        epochs: 8,
        ..Default::default()
    });
    sess.add_paints(ball_paints()).unwrap();
    sess.train_classifier(
        FeatureSpec::default(),
        ClassifierParams {
            epochs: 25,
            ..Default::default()
        },
    )
    .unwrap();
    let status = sess
        .run_track(
            CriterionSpec::FixedBand { lo: 0.9, hi: 3.0 },
            &[(0, 3, 6, 6)],
            None,
        )
        .unwrap();
    assert_eq!(status, TrackStatus::Completed);
    sess
}

/// A serve-ready fixture on disk: frame files in `data_dir`, a trained
/// `.ifet` artifact at `artifact`, plus the in-core session it was saved
/// from (the serial-replay reference).
pub struct ServeFixture {
    pub artifact: PathBuf,
    pub data_dir: PathBuf,
    pub session: VisSession,
}

/// Build a [`ServeFixture`] under `tag`, optionally value-shifted by
/// `offset` (see [`series_with_offset`]).
pub fn serve_fixture(tag: &str, offset: f32) -> ServeFixture {
    let dir = temp_dir(tag);
    let s = series_with_offset(offset);
    ifet_volume::io::write_series(&dir, "srv", &s).unwrap();
    let session = trained_session(s);
    let artifact = dir.join("session.ifet");
    session.save(&artifact).unwrap();
    ServeFixture {
        artifact,
        data_dir: dir,
        session,
    }
}
