//! Out-of-core equivalence suite: every pipeline stage must produce results
//! byte-identical to the in-core path when run against an [`OutOfCoreSeries`]
//! at any cache capacity. Paging is allowed to change *when* frames are
//! resident, never *what* any stage computes — this file pins that contract
//! at capacities 1 (worst case: every access may page), 2 (the ISSUE's
//! bounded-memory target), and full (cache never evicts).

use ifet_core::persist::save_session_bytes;
use ifet_core::prelude::*;
use ifet_tf::IatfBuilder;
use ifet_track::FixedBandCriterion;
use ifet_volume::{CacheBudget, CacheBudgetHandle, FrameSource, Mapping, OutOfCoreSeries};
use std::path::PathBuf;

mod support;
use support::{series, FRAMES, FRAME_BYTES};

/// The in-core series written to disk once; each test reopens it at the
/// capacity under test.
fn on_disk(tag: &str) -> (TimeSeries, Vec<PathBuf>) {
    support::on_disk_as(&format!("ooc_eq_{tag}"), "eq", false)
}

fn capacities() -> [usize; 3] {
    [1, 2, FRAMES]
}

/// The prefetch × budget matrix: read-ahead depths {0, 1, 2, 4} against a
/// two-frame budget expressed both ways (frame-counted and byte-counted).
fn budget_matrix() -> Vec<(CacheBudget, usize)> {
    let mut m = Vec::new();
    for budget in [CacheBudget::Frames(2), CacheBudget::Bytes(2 * FRAME_BYTES)] {
        for prefetch in [0usize, 1, 2, 4] {
            m.push((budget, prefetch));
        }
    }
    m
}

fn open_with(paths: &[PathBuf], budget: CacheBudget, prefetch: usize) -> OutOfCoreSeries {
    OutOfCoreSeries::open_with(paths.to_vec(), &CacheBudgetHandle::new(budget), prefetch).unwrap()
}

/// The bounded-memory witness for either budget kind, including in-flight
/// prefetch reads (the high-water marks count those too).
fn assert_budget_held(ooc: &OutOfCoreSeries, budget: CacheBudget) {
    let st = ooc.stats();
    match budget {
        CacheBudget::Frames(n) => assert!(
            st.resident_high_water <= n,
            "frame high-water {} exceeds budget {n}",
            st.resident_high_water
        ),
        CacheBudget::Bytes(b) => assert!(
            st.resident_high_water_bytes <= b,
            "byte high-water {} exceeds budget {b}",
            st.resident_high_water_bytes
        ),
    }
}

#[test]
fn trait_queries_match_across_sources() {
    let (s, paths) = on_disk("queries");
    for cap in capacities() {
        let ooc = OutOfCoreSeries::open(paths.clone(), cap).unwrap();
        assert_eq!(FrameSource::dims(&ooc), s.dims());
        assert_eq!(FrameSource::steps(&ooc), s.steps());
        assert_eq!(FrameSource::global_range(&ooc).unwrap(), s.global_range());
        assert_eq!(
            FrameSource::cumulative_histograms(&ooc, 64).unwrap(),
            s.cumulative_histograms(64)
        );
        for i in 0..s.len() {
            assert_eq!(&*FrameSource::frame(&ooc, i).unwrap(), s.frame(i));
        }
        assert!(ooc.stats().resident_high_water <= cap);
    }
}

#[test]
fn grow_4d_is_identical_at_every_capacity() {
    let (s, paths) = on_disk("grow");
    let criterion = FixedBandCriterion::new(0.9, 3.0, s.len()).unwrap();
    let seeds = [(0usize, 3usize, 6usize, 6usize)];
    let reference = grow_4d(&s, &criterion, &seeds).unwrap();
    assert!(reference[0].count() > 0, "seed must land in the ball");
    for cap in capacities() {
        let ooc = OutOfCoreSeries::open(paths.clone(), cap).unwrap();
        let masks = grow_4d(&ooc, &criterion, &seeds).unwrap();
        assert_eq!(masks, reference, "grow_4d diverged at capacity {cap}");
        assert!(ooc.stats().resident_high_water <= cap);
    }
}

#[test]
fn classify_series_is_identical_at_every_capacity() {
    let (s, paths) = on_disk("classify");
    // Paint the ball vs background on frame 0 from its ground truth and
    // train once; the same classifier then runs against every source.
    let truth = Mask3::threshold(s.frame(0), 1.0);
    let mut oracle = PaintOracle::new(11);
    oracle.slice_stride = 1;
    let paints = vec![oracle.paint_from_truth(0, &truth, 60, 60)];
    let clf = DataSpaceClassifier::train(
        FeatureExtractor::new(FeatureSpec::default()),
        &s,
        &paints,
        ClassifierParams {
            epochs: 40,
            ..Default::default()
        },
    )
    .unwrap();
    let reference = clf.classify_series(&s).unwrap();
    for cap in capacities() {
        let ooc = OutOfCoreSeries::open(paths.clone(), cap).unwrap();
        let out = clf.classify_series(&ooc).unwrap();
        assert_eq!(out, reference, "classification diverged at capacity {cap}");
        assert!(ooc.stats().resident_high_water <= cap);
    }
}

#[test]
fn iatf_training_and_generation_are_identical_at_every_capacity() {
    let (s, paths) = on_disk("iatf");
    let (glo, ghi) = s.global_range();
    let keys: Vec<(u32, TransferFunction1D)> = [0u32, 35, 75]
        .iter()
        .map(|&t| (t, TransferFunction1D::band(glo, ghi, 0.9, 1.8, 1.0)))
        .collect();
    let params = IatfParams {
        epochs: 60,
        ..Default::default()
    };
    let train = |src: &dyn Fn(&mut IatfBuilder)| {
        let mut b = IatfBuilder::new(params);
        for (t, tf) in &keys {
            b.add_key_frame(*t, tf.clone());
        }
        src(&mut b);
        b
    };
    let b = train(&|_| {});
    let reference = b.train(&s);
    let ref_json = serde_json::to_string(&reference).unwrap();
    let ref_tfs: Vec<TransferFunction1D> = s
        .iter()
        .map(|(t, frame)| reference.generate(t, frame))
        .collect();
    for cap in capacities() {
        let ooc = OutOfCoreSeries::open(paths.clone(), cap).unwrap();
        let b = train(&|_| {});
        let iatf = b.train(&ooc);
        assert_eq!(
            serde_json::to_string(&iatf).unwrap(),
            ref_json,
            "IATF training diverged at capacity {cap}"
        );
        let tfs: Vec<TransferFunction1D> =
            ifet_volume::map_frames_windowed(&ooc, |_, t, frame| iatf.generate(t, frame)).unwrap();
        assert_eq!(tfs, ref_tfs, "IATF generation diverged at capacity {cap}");
        assert!(ooc.stats().resident_high_water <= cap);
    }
}

#[test]
fn session_track_artifacts_are_byte_identical() {
    let (s, paths) = on_disk("artifact");
    let spec = CriterionSpec::FixedBand { lo: 0.9, hi: 3.0 };
    let seeds = [(0usize, 3usize, 6usize, 6usize)];
    let mut reference = VisSession::new(s).unwrap();
    assert_eq!(
        reference.run_track(spec.clone(), &seeds, None).unwrap(),
        TrackStatus::Completed
    );
    let ref_bytes = save_session_bytes(&reference);
    for cap in capacities() {
        let ooc = OutOfCoreSeries::open(paths.clone(), cap).unwrap();
        let mut sess = VisSession::new(ooc).unwrap();
        assert_eq!(
            sess.run_track(spec.clone(), &seeds, None).unwrap(),
            TrackStatus::Completed
        );
        assert_eq!(
            save_session_bytes(&sess),
            ref_bytes,
            "artifact bytes diverged at capacity {cap}"
        );
        assert!(sess.series().stats().resident_high_water <= cap);
    }
}

// ---------------------------------------------------------------------------
// Prefetch × budget × threads matrix: background read-ahead and byte-counted
// eviction may change paging order and overlap, never a single output byte.
// ---------------------------------------------------------------------------

#[test]
fn grow_4d_is_identical_across_prefetch_budget_and_threads() {
    let (s, paths) = on_disk("grow_matrix");
    let criterion = FixedBandCriterion::new(0.9, 3.0, s.len()).unwrap();
    let seeds = [(0usize, 3usize, 6usize, 6usize)];
    let reference = grow_4d(&s, &criterion, &seeds).unwrap();
    for threads in [1usize, 2, 4] {
        let pool = pipeline::pool_with_threads(threads);
        for (budget, prefetch) in budget_matrix() {
            let ooc = open_with(&paths, budget, prefetch);
            let masks = pool.install(|| grow_4d(&ooc, &criterion, &seeds)).unwrap();
            assert_eq!(
                masks, reference,
                "grow_4d diverged at threads {threads}, {budget:?}, prefetch {prefetch}"
            );
            assert_budget_held(&ooc, budget);
        }
    }
}

#[test]
fn classify_series_is_identical_across_prefetch_budget_and_threads() {
    let (s, paths) = on_disk("classify_matrix");
    let truth = Mask3::threshold(s.frame(0), 1.0);
    let mut oracle = PaintOracle::new(11);
    oracle.slice_stride = 1;
    let paints = vec![oracle.paint_from_truth(0, &truth, 60, 60)];
    let clf = DataSpaceClassifier::train(
        FeatureExtractor::new(FeatureSpec::default()),
        &s,
        &paints,
        ClassifierParams {
            epochs: 40,
            ..Default::default()
        },
    )
    .unwrap();
    let reference = clf.classify_series(&s).unwrap();
    for threads in [1usize, 2, 4] {
        let pool = pipeline::pool_with_threads(threads);
        for (budget, prefetch) in budget_matrix() {
            let ooc = open_with(&paths, budget, prefetch);
            let out = pool.install(|| clf.classify_series(&ooc)).unwrap();
            assert_eq!(
                out, reference,
                "classification diverged at threads {threads}, {budget:?}, prefetch {prefetch}"
            );
            assert_budget_held(&ooc, budget);
        }
    }
}

#[test]
fn iatf_is_identical_across_prefetch_budget_and_threads() {
    let (s, paths) = on_disk("iatf_matrix");
    let (glo, ghi) = s.global_range();
    let keys: Vec<(u32, TransferFunction1D)> = [0u32, 35, 75]
        .iter()
        .map(|&t| (t, TransferFunction1D::band(glo, ghi, 0.9, 1.8, 1.0)))
        .collect();
    let params = IatfParams {
        epochs: 60,
        ..Default::default()
    };
    let build = || {
        let mut b = IatfBuilder::new(params);
        for (t, tf) in &keys {
            b.add_key_frame(*t, tf.clone());
        }
        b
    };
    let reference = build().train(&s);
    let ref_json = serde_json::to_string(&reference).unwrap();
    let ref_tfs: Vec<TransferFunction1D> = s
        .iter()
        .map(|(t, frame)| reference.generate(t, frame))
        .collect();
    for threads in [1usize, 2, 4] {
        let pool = pipeline::pool_with_threads(threads);
        for (budget, prefetch) in budget_matrix() {
            let ooc = open_with(&paths, budget, prefetch);
            let iatf = pool.install(|| build().train(&ooc));
            assert_eq!(
                serde_json::to_string(&iatf).unwrap(),
                ref_json,
                "IATF training diverged at threads {threads}, {budget:?}, prefetch {prefetch}"
            );
            let tfs: Vec<TransferFunction1D> = pool
                .install(|| {
                    ifet_volume::map_frames_windowed(&ooc, |_, t, frame| iatf.generate(t, frame))
                })
                .unwrap();
            assert_eq!(
                tfs, ref_tfs,
                "IATF generation diverged at threads {threads}, {budget:?}, prefetch {prefetch}"
            );
            assert_budget_held(&ooc, budget);
        }
    }
}

#[test]
fn session_artifacts_are_identical_across_prefetch_budget_and_threads() {
    let (s, paths) = on_disk("artifact_matrix");
    let spec = CriterionSpec::FixedBand { lo: 0.9, hi: 3.0 };
    let seeds = [(0usize, 3usize, 6usize, 6usize)];
    let mut reference = VisSession::new(s).unwrap();
    assert_eq!(
        reference.run_track(spec.clone(), &seeds, None).unwrap(),
        TrackStatus::Completed
    );
    let ref_bytes = save_session_bytes(&reference);
    for threads in [1usize, 2, 4] {
        let pool = pipeline::pool_with_threads(threads);
        for (budget, prefetch) in budget_matrix() {
            let ooc = open_with(&paths, budget, prefetch);
            let mut sess = VisSession::new(ooc).unwrap();
            assert_eq!(
                pool.install(|| sess.run_track(spec.clone(), &seeds, None))
                    .unwrap(),
                TrackStatus::Completed
            );
            assert_eq!(
                save_session_bytes(&sess),
                ref_bytes,
                "artifact bytes diverged at threads {threads}, {budget:?}, prefetch {prefetch}"
            );
            assert_budget_held(sess.series(), budget);
        }
    }
}

// ---------------------------------------------------------------------------
// Storage flavor matrix: the same contract across on-disk formats and read
// paths. {raw, compressed, mmap} × {frame budget, byte budget} × prefetch
// {0, 2} at capacities 1, 2, and full — the codec and the zero-copy mapping
// may change how bytes reach memory, never a single output byte. Compressed
// series additionally charge the byte budget at *compressed* size, and the
// byte high-water must stay under the budget in those smaller units.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Flavor {
    Raw,
    Compressed,
    Mmap,
}

const FLAVORS: [Flavor; 3] = [Flavor::Raw, Flavor::Compressed, Flavor::Mmap];

/// Write the fixture once per (tag, flavor); mmap reads raw files.
fn on_disk_flavor(tag: &str, flavor: Flavor) -> (TimeSeries, Vec<PathBuf>) {
    support::on_disk_as(
        &format!("ooc_eq_{tag}_{flavor:?}"),
        "eq",
        flavor == Flavor::Compressed,
    )
}

fn open_flavor(
    paths: &[PathBuf],
    flavor: Flavor,
    budget: CacheBudget,
    prefetch: usize,
) -> OutOfCoreSeries {
    let h = CacheBudgetHandle::new(budget);
    match flavor {
        Flavor::Mmap => OutOfCoreSeries::open_mmap(paths.to_vec(), &h, prefetch).unwrap(),
        _ => OutOfCoreSeries::open_with(paths.to_vec(), &h, prefetch).unwrap(),
    }
}

/// Budgets for the flavor sweep: the acceptance capacities {1, 2, full}
/// plus a two-raw-frame byte budget (compressed frames are charged at
/// their smaller on-disk size against the same byte count).
fn flavor_matrix() -> Vec<(CacheBudget, usize)> {
    let mut m = Vec::new();
    for budget in [
        CacheBudget::Frames(1),
        CacheBudget::Frames(2),
        CacheBudget::Frames(FRAMES),
        CacheBudget::Bytes(2 * FRAME_BYTES),
    ] {
        for prefetch in [0usize, 2] {
            m.push((budget, prefetch));
        }
    }
    m
}

#[test]
fn grow_4d_is_identical_across_storage_flavors() {
    let criterion = FixedBandCriterion::new(0.9, 3.0, FRAMES).unwrap();
    let seeds = [(0usize, 3usize, 6usize, 6usize)];
    let reference = grow_4d(&series(), &criterion, &seeds).unwrap();
    for flavor in FLAVORS {
        let (_, paths) = on_disk_flavor("grow", flavor);
        for (budget, prefetch) in flavor_matrix() {
            let ooc = open_flavor(&paths, flavor, budget, prefetch);
            let masks = grow_4d(&ooc, &criterion, &seeds).unwrap();
            assert_eq!(
                masks, reference,
                "grow_4d diverged at {flavor:?}, {budget:?}, prefetch {prefetch}"
            );
            assert_budget_held(&ooc, budget);
        }
    }
}

#[test]
fn classify_series_is_identical_across_storage_flavors() {
    let s = series();
    let truth = Mask3::threshold(s.frame(0), 1.0);
    let mut oracle = PaintOracle::new(11);
    oracle.slice_stride = 1;
    let paints = vec![oracle.paint_from_truth(0, &truth, 60, 60)];
    let clf = DataSpaceClassifier::train(
        FeatureExtractor::new(FeatureSpec::default()),
        &s,
        &paints,
        ClassifierParams {
            epochs: 40,
            ..Default::default()
        },
    )
    .unwrap();
    let reference = clf.classify_series(&s).unwrap();
    for flavor in FLAVORS {
        let (_, paths) = on_disk_flavor("classify", flavor);
        for (budget, prefetch) in flavor_matrix() {
            let ooc = open_flavor(&paths, flavor, budget, prefetch);
            let out = clf.classify_series(&ooc).unwrap();
            assert_eq!(
                out, reference,
                "classification diverged at {flavor:?}, {budget:?}, prefetch {prefetch}"
            );
            assert_budget_held(&ooc, budget);
        }
    }
}

#[test]
fn iatf_is_identical_across_storage_flavors() {
    let s = series();
    let (glo, ghi) = s.global_range();
    let keys: Vec<(u32, TransferFunction1D)> = [0u32, 35, 75]
        .iter()
        .map(|&t| (t, TransferFunction1D::band(glo, ghi, 0.9, 1.8, 1.0)))
        .collect();
    let params = IatfParams {
        epochs: 60,
        ..Default::default()
    };
    let build = || {
        let mut b = IatfBuilder::new(params);
        for (t, tf) in &keys {
            b.add_key_frame(*t, tf.clone());
        }
        b
    };
    let reference = build().train(&s);
    let ref_json = serde_json::to_string(&reference).unwrap();
    let ref_tfs: Vec<TransferFunction1D> = s
        .iter()
        .map(|(t, frame)| reference.generate(t, frame))
        .collect();
    for flavor in FLAVORS {
        let (_, paths) = on_disk_flavor("iatf", flavor);
        for (budget, prefetch) in flavor_matrix() {
            let ooc = open_flavor(&paths, flavor, budget, prefetch);
            let iatf = build().train(&ooc);
            assert_eq!(
                serde_json::to_string(&iatf).unwrap(),
                ref_json,
                "IATF training diverged at {flavor:?}, {budget:?}, prefetch {prefetch}"
            );
            let tfs: Vec<TransferFunction1D> =
                ifet_volume::map_frames_windowed(&ooc, |_, t, frame| iatf.generate(t, frame))
                    .unwrap();
            assert_eq!(
                tfs, ref_tfs,
                "IATF generation diverged at {flavor:?}, {budget:?}, prefetch {prefetch}"
            );
            assert_budget_held(&ooc, budget);
        }
    }
}

#[test]
fn session_artifacts_are_identical_across_storage_flavors() {
    let spec = CriterionSpec::FixedBand { lo: 0.9, hi: 3.0 };
    let seeds = [(0usize, 3usize, 6usize, 6usize)];
    let mut reference = VisSession::new(series()).unwrap();
    assert_eq!(
        reference.run_track(spec.clone(), &seeds, None).unwrap(),
        TrackStatus::Completed
    );
    let ref_bytes = save_session_bytes(&reference);
    for flavor in FLAVORS {
        let (_, paths) = on_disk_flavor("artifact", flavor);
        for (budget, prefetch) in flavor_matrix() {
            let ooc = open_flavor(&paths, flavor, budget, prefetch);
            let mut sess = VisSession::new(ooc).unwrap();
            assert_eq!(
                sess.run_track(spec.clone(), &seeds, None).unwrap(),
                TrackStatus::Completed
            );
            assert_eq!(
                save_session_bytes(&sess),
                ref_bytes,
                "artifact bytes diverged at {flavor:?}, {budget:?}, prefetch {prefetch}"
            );
            assert_budget_held(sess.series(), budget);
        }
    }
}

#[test]
fn mmap_series_actually_borrows_when_the_platform_supports_it() {
    let (s, paths) = on_disk_flavor("borrow", Flavor::Mmap);
    let ooc = open_flavor(&paths, Flavor::Mmap, CacheBudget::Frames(2), 0);
    assert!(ooc.is_mmap());
    for i in 0..s.len() {
        let h = FrameSource::frame(&ooc, i).unwrap();
        assert_eq!(
            h.is_mapped(),
            Mapping::supported(),
            "frame {i}: mmap flavor must borrow exactly when the platform can"
        );
        assert_eq!(&*h, s.frame(i));
    }
}

#[test]
fn compressed_byte_budget_admits_more_frames_than_raw() {
    // A quantized fixture (few distinct voxel values, so the shuffled delta
    // planes RLE away) compresses far below raw size; charged at compressed
    // size, a single raw frame's worth of byte budget must hold several
    // compressed frames at once — while the compressed-byte high-water
    // stays under the budget.
    let d = Dims3::cube(12);
    let quantized = TimeSeries::from_frames(
        (0..FRAMES)
            .map(|k| {
                let vol = ScalarVolume::from_fn(d, move |x, y, z| ((x + y + z + k) / 6) as f32);
                (k as u32 * 5, vol)
            })
            .collect(),
    );
    let dir = std::env::temp_dir().join(format!("ifet_ooc_eq_charge_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let zpaths = ifet_volume::io::write_series_with(&dir, "eq", &quantized, true).unwrap();
    let zsize = std::fs::metadata(&zpaths[0]).unwrap().len();
    assert!(
        zsize * 2 <= FRAME_BYTES,
        "fixture stopped compressing ({zsize} of {FRAME_BYTES} raw bytes); \
         the charging assertions below would be vacuous"
    );
    let budget = CacheBudget::Bytes(FRAME_BYTES);
    let ooc = open_flavor(&zpaths, Flavor::Compressed, budget, 0);
    for i in 0..FRAMES {
        FrameSource::frame(&ooc, i).unwrap();
    }
    let st = ooc.stats();
    assert!(
        st.resident_high_water >= 2,
        "one raw frame of byte budget held only {} compressed frames",
        st.resident_high_water
    );
    assert!(
        st.resident_high_water_bytes <= FRAME_BYTES,
        "compressed-byte high-water {} exceeds budget {FRAME_BYTES}",
        st.resident_high_water_bytes
    );

    let (_, rpaths) = on_disk_flavor("charge_raw", Flavor::Raw);
    let raw = open_flavor(&rpaths, Flavor::Raw, budget, 0);
    for i in 0..FRAMES {
        FrameSource::frame(&raw, i).unwrap();
    }
    assert_eq!(
        raw.stats().resident_high_water,
        1,
        "raw frames charge full size: the same budget holds exactly one"
    );
}

// ---------------------------------------------------------------------------
// Particle tracing: RK4 pathline advection walks consecutive frame *pairs*
// of three velocity-component series in lockstep, each component behind its
// own cache. The serialized pathline artifact bytes must be identical to the
// in-core run at every capacity, for every storage flavor, and across thread
// counts — and the per-component residency bound must hold even though the
// walker pins a frame pair per component.
// ---------------------------------------------------------------------------

mod trace {
    use super::*;
    use ifet_trace::{advect, pathlines_to_bytes, seed_grid, TraceParams};
    use support::{flow_on_disk, FLOW_FRAMES};

    fn advect_bytes<S: FrameSource>(u: &S, v: &S, w: &S) -> Vec<u8> {
        let seeds = seed_grid(FrameSource::dims(u), 3);
        let set = advect(u, v, w, &seeds, &TraceParams { rk4_dt: 0.5 }).unwrap();
        pathlines_to_bytes(&set)
    }

    #[test]
    fn pathline_bytes_identical_at_every_capacity_and_flavor() {
        let ([u, v, w], raw_paths) = flow_on_disk("trace_eq_raw", false);
        let (_, z_paths) = flow_on_disk("trace_eq_z", true);
        let reference = advect_bytes(&u, &v, &w);

        for cap in [1usize, 2, FLOW_FRAMES] {
            for flavor in FLAVORS {
                let paths = match flavor {
                    Flavor::Compressed => &z_paths,
                    _ => &raw_paths,
                };
                let comps: Vec<OutOfCoreSeries> = paths
                    .iter()
                    .map(|p| open_flavor(p, flavor, CacheBudget::Frames(cap), 0))
                    .collect();
                let got = advect_bytes(&comps[0], &comps[1], &comps[2]);
                assert_eq!(
                    got, reference,
                    "pathline bytes diverged ({flavor:?}, capacity {cap})"
                );
                for (c, name) in comps.iter().zip(["u", "v", "w"]) {
                    assert!(
                        c.stats().resident_high_water <= cap,
                        "{name} high-water {} exceeds capacity {cap} ({flavor:?})",
                        c.stats().resident_high_water
                    );
                }
            }
        }
    }

    #[test]
    fn pathline_bytes_identical_across_thread_counts_and_prefetch() {
        let ([u, v, w], paths) = flow_on_disk("trace_eq_threads", false);
        let reference = advect_bytes(&u, &v, &w);
        for threads in [1usize, 2, 4] {
            let got = pipeline::pool_with_threads(threads).install(|| advect_bytes(&u, &v, &w));
            assert_eq!(
                got, reference,
                "pathline bytes diverged at {threads} threads"
            );
            // And the paged path at the same thread count, with read-ahead.
            let comps: Vec<OutOfCoreSeries> = paths
                .iter()
                .map(|p| open_flavor(p, Flavor::Raw, CacheBudget::Frames(2), 2))
                .collect();
            let got = pipeline::pool_with_threads(threads)
                .install(|| advect_bytes(&comps[0], &comps[1], &comps[2]));
            assert_eq!(
                got, reference,
                "paged pathline bytes diverged at {threads} threads"
            );
            for c in &comps {
                assert!(c.stats().resident_high_water <= 2);
            }
        }
    }
}
