//! End-to-end integration: the data-space workflow (paper Section 4.3) on
//! the reionization analog — paint, train, classify, generalize over time —
//! spanning ifet-sim → ifet-extract → ifet-core → ifet-track.

use ifet_core::prelude::*;
use ifet_extract::baselines;
use ifet_track::FeatureOctree;

fn setup() -> (ifet_sim::LabeledSeries, VisSession) {
    let data = ifet_sim::reionization(Dims3::cube(40), 0xDA7A);
    let mut session = VisSession::new(data.series.clone()).unwrap();
    let mut oracle = PaintOracle::new(0xDA7A);
    // Paint on the first and last frames only.
    for &t in &[130u32, 310] {
        let fi = data.series.index_of_step(t).unwrap();
        session
            .add_paints(oracle.paint_from_truth(t, data.truth_frame(fi), 200, 200))
            .unwrap();
    }
    session
        .train_classifier(
            FeatureSpec {
                shell_radius: 4.0,
                ..Default::default()
            },
            ClassifierParams::default(),
        )
        .unwrap();
    (data, session)
}

#[test]
fn classifier_beats_best_value_band() {
    let (data, session) = setup();
    for &t in &[130u32, 310] {
        let fi = data.series.index_of_step(t).unwrap();
        let frame = data.series.frame(fi);
        let truth = data.truth_frame(fi);
        let (thr, band_f1) = baselines::best_threshold_band(frame, truth, 48);
        let _ = thr;
        let ours = session.extract_data_space(t, 0.5).unwrap().f1(truth);
        assert!(
            ours > band_f1,
            "t={t}: learned {ours} must beat the best possible 1D band {band_f1}"
        );
    }
}

#[test]
fn generalizes_to_unseen_time_steps() {
    // The Figure 8 claim: frames 190 and 250 were never painted.
    let (data, session) = setup();
    for &t in &[190u32, 250] {
        let fi = data.series.index_of_step(t).unwrap();
        let truth = data.truth_frame(fi);
        let ours = session.extract_data_space(t, 0.5).unwrap();
        let f1 = ours.f1(truth);
        assert!(
            f1 > 0.8,
            "unseen t={t}: F1 {f1} too low to claim generalization"
        );
    }
}

#[test]
fn suppresses_small_noise_features() {
    let (data, session) = setup();
    let t = 310;
    let fi = data.series.index_of_step(t).unwrap();
    let frame = data.series.frame(fi);
    let truth = data.truth_frame(fi);

    let band = Mask3::threshold(frame, 0.5);
    let ours = session.extract_data_space(t, 0.5).unwrap();
    let mut band_noise = band;
    band_noise.subtract(truth);
    let mut ours_noise = ours;
    ours_noise.subtract(truth);
    // "many of the tiny features are suppressed" — require a substantial
    // reduction (not total removal; the paper's results keep some residue).
    assert!(
        (ours_noise.count() as f64) < 0.7 * band_noise.count() as f64,
        "noise voxels: ours {} vs band {}",
        ours_noise.count(),
        band_noise.count()
    );
}

#[test]
fn extraction_result_octree_roundtrip() {
    // Extracted features go into the Silver & Wang octree for data
    // reduction; encoding must be lossless and actually compact.
    let (data, session) = setup();
    let mask = session.extract_data_space(310, 0.5).unwrap();
    let _ = data;
    let tree = FeatureOctree::from_mask(&mask);
    assert_eq!(tree.to_mask(), mask);
    assert!(
        tree.compression_ratio() < 0.6,
        "octree should compress the extraction, ratio {}",
        tree.compression_ratio()
    );
}

#[test]
fn per_slice_feedback_matches_full_classification() {
    // The interactive UI classifies single slices for immediate feedback;
    // results must agree with the full-volume pass.
    let (data, session) = setup();
    let t = 130;
    let frame = data.series.frame_at_step(t).unwrap();
    let tn = data.series.normalized_time(t);
    let clf = session.classifier().unwrap();
    let full = clf.classify_frame(frame, tn);
    let (nx, _, slice) = clf.classify_slice_z(frame, 7, tn);
    for y in 0..frame.dims().ny {
        for x in 0..nx {
            assert!((slice[x + nx * y] - full.get(x, y, 7)).abs() < 1e-6);
        }
    }
}

#[test]
fn mask_criterion_tracking_from_classifier_output() {
    // The "arbitrary-dimensional classification function" as a region-grow
    // criterion: track the largest structure through time using the
    // classifier's per-frame masks.
    let (data, session) = setup();
    let clf = session.classifier().unwrap();
    let masks: Vec<Mask3> = data
        .series
        .iter()
        .map(|(t, frame)| clf.extract_mask(frame, data.series.normalized_time(t), 0.5))
        .collect();
    let criterion = MaskCriterion::new(masks).unwrap();

    // Seed at a truth voxel of the first frame.
    let seed = data.truth_frame(0).set_coords().next().unwrap();
    let tracked = grow_4d(&data.series, &criterion, &[(0, seed.0, seed.1, seed.2)]).unwrap();
    // If the seed's structure is classified, it must be tracked across
    // every frame (structures only grow in this dataset).
    if tracked[0].count() > 0 {
        for (i, m) in tracked.iter().enumerate() {
            assert!(m.count() > 0, "structure lost at frame {i}");
        }
    }
}
