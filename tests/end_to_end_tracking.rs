//! End-to-end integration: feature tracking (paper Section 5) — the
//! turbulent-vortex split story and the swirling-flow fixed-vs-adaptive
//! comparison, spanning ifet-sim → ifet-tf → ifet-track → ifet-render.

use ifet_core::prelude::*;
use ifet_sim::swirling_flow::{swirling_flow_with, SwirlingFlowParams};
use ifet_track::EventKind;

fn centroid_seed(mask: &Mask3) -> (usize, usize, usize) {
    let (mut cx, mut cy, mut cz, mut n) = (0usize, 0usize, 0usize, 0usize);
    for (x, y, z) in mask.set_coords() {
        cx += x;
        cy += y;
        cz += z;
        n += 1;
    }
    assert!(n > 0);
    (cx / n, cy / n, cz / n)
}

#[test]
fn vortex_track_moves_deforms_and_splits() {
    let data = ifet_sim::turbulent_vortex(Dims3::cube(40), 0x909);
    let session = VisSession::new(data.series.clone()).unwrap();
    let (sx, sy, sz) = centroid_seed(data.truth_frame(0));
    let result = session.track_fixed(&[(0, sx, sy, sz)], 0.5, 10.0).unwrap();

    // Tracked on every frame.
    for (i, &c) in result.report.voxels_per_frame.iter().enumerate() {
        assert!(c > 0, "lost the vortex at frame {i}");
    }
    // One component at the start, two at the end, with a split event.
    assert_eq!(result.report.components_per_frame[0], 1);
    assert_eq!(*result.report.components_per_frame.last().unwrap(), 2);
    assert!(result.report.has_split(), "split event not detected");
    // No spurious merges in this dataset.
    assert_eq!(result.report.events_of(EventKind::Merge).count(), 0);
}

#[test]
fn fixed_criterion_loses_decaying_swirl_adaptive_does_not() {
    let data = swirling_flow_with(SwirlingFlowParams {
        dims: Dims3::cube(24),
        ..Default::default()
    });
    let mut session = VisSession::new(data.series.clone()).unwrap();
    let (glo, ghi) = session.series().global_range();
    let steps: Vec<u32> = data.series.steps().to_vec();

    // Seed at the strongest vorticity voxel of the first frame.
    let f0 = data.series.frame(0);
    let (mut best, mut seed) = (f32::NEG_INFINITY, (0usize, 0usize, 0usize));
    for ((x, y, z), &v) in f0.iter() {
        if v > best {
            best = v;
            seed = (x, y, z);
        }
    }
    let seeds = [(0usize, seed.0, seed.1, seed.2)];

    // Fixed criterion at the first frame's core band.
    let ch0 = CumulativeHistogram::of_volume(f0, 512);
    let fixed = session
        .track_fixed(&seeds, ch0.quantile(0.98), ghi + 1.0)
        .unwrap();
    assert_eq!(
        *fixed.report.voxels_per_frame.last().unwrap(),
        0,
        "the fixed criterion should lose the decaying feature"
    );

    // Adaptive criterion from key-frame TFs at first/middle/last frames.
    for &t in [steps[0], steps[steps.len() / 2], steps[steps.len() - 1]].iter() {
        let frame = data.series.frame_at_step(t).unwrap();
        let ch = CumulativeHistogram::of_volume(frame, 512);
        session.add_key_frame(
            t,
            TransferFunction1D::band(glo, ghi, ch.quantile(0.98), ghi, 1.0),
        );
    }
    session.train_iatf(IatfParams::default());
    let adaptive = session.track_adaptive(&seeds, 0.5).unwrap().unwrap();
    for (i, &c) in adaptive.report.voxels_per_frame.iter().enumerate() {
        assert!(c > 0, "adaptive criterion lost the feature at frame {i}");
    }
}

#[test]
fn tracked_overlay_renders_red_over_context() {
    let data = ifet_sim::turbulent_vortex(Dims3::cube(32), 0x90A);
    let mut session = VisSession::new(data.series.clone()).unwrap();
    session.renderer.params.shading = false; // flat colors: red stays red
    let (sx, sy, sz) = centroid_seed(data.truth_frame(0));
    let result = session.track_fixed(&[(0, sx, sy, sz)], 0.5, 10.0).unwrap();

    let (glo, ghi) = session.series().global_range();
    let base = TransferFunction1D::band(glo, ghi, 0.3, ghi, 0.08);
    let adaptive = TransferFunction1D::band(glo, ghi, 0.5, ghi, 0.9);
    let t0 = data.series.steps()[0];
    let wh = 128;
    let img = session.render_tracked(t0, &result.masks[0], &base, &adaptive, wh, wh);

    // Somewhere in the image the tracked feature must appear red-dominant.
    let mut red_pixels = 0;
    for y in 0..wh {
        for x in 0..wh {
            let p = img.pixel(x, y);
            if p[0] > 0.3 && p[0] > 1.8 * p[1] {
                red_pixels += 1;
            }
        }
    }
    assert!(
        red_pixels > 20,
        "tracked feature not visibly red ({red_pixels} px)"
    );
}

#[test]
fn track_report_events_are_frame_ordered_and_consistent() {
    let data = ifet_sim::turbulent_vortex(Dims3::cube(32), 0x90B);
    let session = VisSession::new(data.series.clone()).unwrap();
    let (sx, sy, sz) = centroid_seed(data.truth_frame(0));
    let result = session.track_fixed(&[(0, sx, sy, sz)], 0.5, 10.0).unwrap();

    let mut prev = 0;
    for e in &result.report.events {
        assert!(e.frame >= prev, "events out of order");
        prev = e.frame;
        assert!(e.frame + 1 < data.series.len());
        match e.kind {
            EventKind::Split => assert!(e.before.len() == 1 && e.after.len() >= 2),
            EventKind::Merge => assert!(e.before.len() >= 2 && e.after.len() == 1),
            EventKind::Birth => assert!(e.before.is_empty() && e.after.len() == 1),
            EventKind::Death => assert!(e.before.len() == 1 && e.after.is_empty()),
            EventKind::Continuation => {
                assert!(e.before.len() == 1 && e.after.len() == 1)
            }
        }
    }
}
