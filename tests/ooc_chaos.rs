//! Chaos suite: the paging layer under hostile scheduling. A wrapper source
//! injects randomized per-read delays, and the out-of-core read path is fed
//! transient I/O failures through its fault hook. Under every combination
//! the contract of `tests/ooc_equivalence.rs` must still hold: delays,
//! retries, and prefetch races may change *when* bytes move, never *what*
//! any stage computes — outputs and stable traces stay byte-identical to
//! the clean in-core run.

use ifet_core::obs;
use ifet_core::prelude::*;
use ifet_track::FixedBandCriterion;
use ifet_volume::{
    CacheBudget, CacheBudgetHandle, FrameHandle, FrameSource, OutOfCoreSeries, SeriesError,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

mod support;
use support::{chaos_hook, mix, FRAMES, FRAME_BYTES};

fn on_disk(tag: &str) -> (TimeSeries, Vec<PathBuf>) {
    support::on_disk_as(&format!("ooc_chaos_{tag}"), "chaos", false)
}

fn open_with(paths: &[PathBuf], budget: CacheBudget, prefetch: usize) -> OutOfCoreSeries {
    OutOfCoreSeries::open_with(paths.to_vec(), &CacheBudgetHandle::new(budget), prefetch).unwrap()
}

/// A [`FrameSource`] test double that forwards to a paged series but sleeps
/// a pseudo-random amount on a third of reads, perturbing the interleaving
/// of demand reads, prefetch completions, and evictions.
struct ChaosSource<'a> {
    inner: &'a OutOfCoreSeries,
    seed: u64,
    reads: AtomicU64,
}

impl<'a> ChaosSource<'a> {
    fn new(inner: &'a OutOfCoreSeries, seed: u64) -> Self {
        Self {
            inner,
            seed,
            reads: AtomicU64::new(0),
        }
    }
}

impl FrameSource for ChaosSource<'_> {
    fn dims(&self) -> Dims3 {
        FrameSource::dims(self.inner)
    }

    fn len(&self) -> usize {
        FrameSource::len(self.inner)
    }

    fn steps(&self) -> &[u32] {
        FrameSource::steps(self.inner)
    }

    fn frame(&self, i: usize) -> Result<FrameHandle<'_>, SeriesError> {
        let n = self.reads.fetch_add(1, Ordering::Relaxed);
        let r = mix(self.seed ^ (n << 20) ^ i as u64);
        if r % 3 == 0 {
            std::thread::sleep(Duration::from_micros(r % 400));
        }
        FrameSource::frame(self.inner, i)
    }

    fn residency_bound(&self) -> Option<usize> {
        FrameSource::residency_bound(self.inner)
    }

    fn prefetch_hint(&self, upcoming: &[usize]) {
        FrameSource::prefetch_hint(self.inner, upcoming)
    }
}

/// Track through a source under span capture; returns the masks and the
/// canonical stable-trace JSON.
fn tracked<S: FrameSource>(src: &S) -> (Vec<Mask3>, String) {
    let criterion = FixedBandCriterion::new(0.9, 3.0, FrameSource::len(src)).unwrap();
    let seeds = [(0usize, 3usize, 6usize, 6usize)];
    let (masks, trace) = obs::capture("chaos.track", || grow_4d(src, &criterion, &seeds));
    (masks.unwrap(), trace.to_stable().to_json_pretty())
}

#[test]
fn chaos_delays_never_change_outputs_or_stable_traces() {
    let (s, paths) = on_disk("delays");
    let (reference, ref_trace) = tracked(&s);
    assert!(reference[0].count() > 0, "seed must land in the ball");
    for seed in [1u64, 7, 23] {
        for prefetch in [0usize, 2, 4] {
            let ooc = open_with(&paths, CacheBudget::Frames(2), prefetch);
            let chaos = ChaosSource::new(&ooc, seed);
            let (masks, trace) = tracked(&chaos);
            assert_eq!(
                masks, reference,
                "outputs diverged under delay chaos (seed {seed}, prefetch {prefetch})"
            );
            assert_eq!(
                trace, ref_trace,
                "stable trace diverged under delay chaos (seed {seed}, prefetch {prefetch})"
            );
            assert!(ooc.stats().resident_high_water <= 2);
        }
    }
}

#[test]
fn transient_read_faults_are_retried_and_invisible() {
    let (s, paths) = on_disk("faults");
    let (reference, ref_trace) = tracked(&s);
    for seed in [3u64, 11] {
        for prefetch in [0usize, 2] {
            let ooc = open_with(&paths, CacheBudget::Frames(2), prefetch);
            // Two failures per frame: strictly fewer than the read-path's
            // bounded retries, so every read eventually lands no matter
            // whether demand or prefetch eats the faults.
            ooc.set_read_fault_hook(Some(chaos_hook(seed, 2)));
            let (masks, trace) = tracked(&ooc);
            assert_eq!(
                masks, reference,
                "outputs diverged under fault chaos (seed {seed}, prefetch {prefetch})"
            );
            assert_eq!(
                trace, ref_trace,
                "stable trace diverged under fault chaos (seed {seed}, prefetch {prefetch})"
            );
            let st = ooc.stats();
            assert!(
                st.read_retries >= 2 * FRAMES as u64,
                "every frame's injected faults must show up as retries, got {}",
                st.read_retries
            );
            assert!(st.resident_high_water <= 2);
        }
    }
}

#[test]
fn prefetch_under_chaos_respects_byte_budget_and_stats_algebra() {
    let (s, paths) = on_disk("budget");
    let criterion = FixedBandCriterion::new(0.9, 3.0, s.len()).unwrap();
    let seeds = [(0usize, 3usize, 6usize, 6usize)];
    let reference = grow_4d(&s, &criterion, &seeds).unwrap();
    let budget = 2 * FRAME_BYTES;
    for seed in [5u64, 17, 41] {
        for prefetch in [1usize, 4] {
            let ooc = open_with(&paths, CacheBudget::Bytes(budget), prefetch);
            ooc.set_read_fault_hook(Some(chaos_hook(seed, 1)));
            let masks = grow_4d(&ChaosSource::new(&ooc, seed), &criterion, &seeds).unwrap();
            assert_eq!(
                masks, reference,
                "outputs diverged (seed {seed}, prefetch {prefetch})"
            );
            let st = ooc.stats();
            assert!(
                st.resident_high_water_bytes <= budget,
                "byte high-water {} exceeds budget {budget} \
                 (seed {seed}, prefetch {prefetch})",
                st.resident_high_water_bytes
            );
            assert!(
                st.prefetch_wasted <= st.prefetched,
                "wasted {} > prefetched {}",
                st.prefetch_wasted,
                st.prefetched
            );
            assert!(
                st.hits + st.misses >= FRAMES as u64,
                "every frame is demanded at least once"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Storage-flavor chaos: the same hostile schedules against the compressed
// decode path and the mmap zero-copy path. Faults injected under the retry
// loop hit whichever read primitive the flavor uses, so delays and transient
// errors exercise decode-after-read and map-after-open alike — and must
// remain invisible except as `read_retries`.
// ---------------------------------------------------------------------------

fn on_disk_compressed(tag: &str) -> (TimeSeries, Vec<PathBuf>) {
    support::on_disk_as(&format!("ooc_chaos_{tag}z"), "chaos", true)
}

fn open_mmap(paths: &[PathBuf], budget: CacheBudget, prefetch: usize) -> OutOfCoreSeries {
    OutOfCoreSeries::open_mmap(paths.to_vec(), &CacheBudgetHandle::new(budget), prefetch).unwrap()
}

#[test]
fn chaos_over_compressed_frames_never_changes_outputs_or_traces() {
    let (s, paths) = on_disk_compressed("decode");
    let (reference, ref_trace) = tracked(&s);
    for seed in [3u64, 11, 29] {
        for prefetch in [0usize, 2] {
            let ooc = open_with(&paths, CacheBudget::Frames(2), prefetch);
            ooc.set_read_fault_hook(Some(chaos_hook(seed, 2)));
            let (masks, trace) = tracked(&ChaosSource::new(&ooc, seed));
            assert_eq!(
                masks, reference,
                "compressed outputs diverged (seed {seed}, prefetch {prefetch})"
            );
            assert_eq!(
                trace, ref_trace,
                "compressed stable trace diverged (seed {seed}, prefetch {prefetch})"
            );
            let st = ooc.stats();
            assert!(
                st.read_retries >= 2 * FRAMES as u64,
                "decode-path faults must surface as retries, got {}",
                st.read_retries
            );
            assert!(st.resident_high_water <= 2);
        }
    }
}

#[test]
fn chaos_over_mmap_frames_never_changes_outputs_or_traces() {
    let (s, paths) = on_disk("mmap");
    let (reference, ref_trace) = tracked(&s);
    for seed in [5u64, 13, 37] {
        for prefetch in [0usize, 2] {
            let ooc = open_mmap(&paths, CacheBudget::Frames(2), prefetch);
            assert!(ooc.is_mmap());
            ooc.set_read_fault_hook(Some(chaos_hook(seed, 2)));
            let (masks, trace) = tracked(&ChaosSource::new(&ooc, seed));
            assert_eq!(
                masks, reference,
                "mmap outputs diverged (seed {seed}, prefetch {prefetch})"
            );
            assert_eq!(
                trace, ref_trace,
                "mmap stable trace diverged (seed {seed}, prefetch {prefetch})"
            );
            let st = ooc.stats();
            assert!(
                st.read_retries >= 2 * FRAMES as u64,
                "mmap-path faults must surface as retries, got {}",
                st.read_retries
            );
            assert!(st.resident_high_water <= 2);
        }
    }
}

// ---------------------------------------------------------------------------
// Serve-layer chaos: the same read delays and transient I/O faults, injected
// under a multi-tenant engine while client threads race. The service contract
// is the ooc contract one layer up: responses and stable traces stay
// byte-identical to a clean serial run, and the faults are visible only as
// `read_retries` on the shared series — never in any reply.
// ---------------------------------------------------------------------------

mod serve_chaos {
    use super::support::{serve_fixture, ServeFixture, STEP_STRIDE};
    use super::*;
    use ifet_serve::{
        encode_request, Axis, Request, ServeConfig, ServeEngine, Verb, WireCriterion,
    };
    use std::sync::Barrier;

    fn engine(budget: CacheBudget) -> ServeEngine {
        ServeEngine::new(ServeConfig {
            budget,
            max_inflight_per_tenant: 16,
            prefetch: 0,
            tenant_quota_bytes: None,
        })
    }

    /// A fixed per-tenant request log touching every frame-reading verb.
    /// No `close`: the session stays resident so the test can read the
    /// shared series' retry counters afterwards.
    fn log(tenant: u32, fx: &ServeFixture) -> Vec<Request> {
        let verbs = vec![
            Verb::Open {
                artifact: fx.artifact.display().to_string(),
                data_dir: fx.data_dir.display().to_string(),
            },
            Verb::Classify { step: 0, tau: 0.5 },
            Verb::RenderSlice {
                step: 2 * STEP_STRIDE,
                axis: Axis::Z,
                k: 6,
                adaptive: false,
            },
            Verb::Track {
                criterion: WireCriterion::FixedBand { lo: 0.9, hi: 3.0 },
                seeds: vec![(0, 3, 6, 6)],
            },
            Verb::Classify {
                step: 7 * STEP_STRIDE,
                tau: 0.65,
            },
            Verb::RenderSlice {
                step: 0,
                axis: Axis::X,
                k: 3,
                adaptive: true,
            },
        ];
        verbs
            .into_iter()
            .enumerate()
            .map(|(i, verb)| Request {
                request_id: (u64::from(tenant) << 32) | i as u64,
                tenant,
                verb,
            })
            .collect()
    }

    fn run_log(eng: &ServeEngine, log: &[Request]) -> Vec<Vec<u8>> {
        log.iter()
            .map(|r| eng.handle_wire(&encode_request(r)))
            .collect()
    }

    #[test]
    fn serve_responses_survive_fault_chaos_byte_identical() {
        let fx = serve_fixture("srv_chaos", 0.0);
        let key = fx.artifact.display().to_string();
        let logs: Vec<Vec<Request>> = (0..3).map(|t| log(t, &fx)).collect();

        // Clean serial reference, per client (responses carry tenant ids).
        let clean = engine(CacheBudget::Frames(2));
        let reference: Vec<Vec<Vec<u8>>> = logs.iter().map(|l| run_log(&clean, l)).collect();
        drop(clean);

        for seed in [3u64, 11] {
            for budget in [CacheBudget::Frames(2), CacheBudget::Bytes(2 * FRAME_BYTES)] {
                let eng = engine(budget);
                // Registered before any open, so the hook rides along from
                // the very first frame read of the shared series.
                eng.set_read_fault_hook(&key, Some(chaos_hook(seed, 2)));
                let barrier = Barrier::new(logs.len());
                let got: Vec<Vec<Vec<u8>>> = std::thread::scope(|s| {
                    let handles: Vec<_> = logs
                        .iter()
                        .map(|l| {
                            let eng = eng.clone();
                            let barrier = &barrier;
                            s.spawn(move || {
                                barrier.wait();
                                run_log(&eng, l)
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                assert_eq!(
                    got, reference,
                    "served bytes diverged under fault chaos (seed {seed}, {budget:?})"
                );
                let shared = eng
                    .resident(&key)
                    .expect("session stays resident without close");
                let st = shared.series().stats();
                assert!(
                    st.read_retries >= 2 * FRAMES as u64,
                    "injected faults must surface as retries, got {}",
                    st.read_retries
                );
            }
        }
    }

    #[test]
    fn serve_stable_traces_survive_fault_chaos_byte_identical() {
        let fx = serve_fixture("srv_chaos_trace", 0.0);
        let key = fx.artifact.display().to_string();
        let open = log(0, &fx).remove(0);
        let track = Request {
            request_id: 99,
            tenant: 0,
            verb: Verb::Track {
                criterion: WireCriterion::FixedBand { lo: 0.9, hi: 3.0 },
                seeds: vec![(0, 3, 6, 6)],
            },
        };

        let capture_track = |eng: &ServeEngine| {
            let (rsp, trace) = obs::capture("serve.chaos.track", || eng.handle(track.clone()));
            (
                ifet_serve::encode_response(&rsp),
                trace.to_stable().to_json_pretty(),
            )
        };

        let clean = engine(CacheBudget::Frames(2));
        clean.handle(open.clone());
        let (ref_bytes, ref_trace) = capture_track(&clean);
        drop(clean);

        for seed in [5u64, 17] {
            let eng = engine(CacheBudget::Frames(2));
            eng.set_read_fault_hook(&key, Some(chaos_hook(seed, 2)));
            eng.handle(open.clone());
            let (bytes, trace) = capture_track(&eng);
            assert_eq!(bytes, ref_bytes, "served bytes diverged (seed {seed})");
            assert_eq!(
                trace, ref_trace,
                "serve-layer stable trace diverged under fault chaos (seed {seed})"
            );
        }
    }
}

#[test]
fn chaos_byte_budgets_hold_in_compressed_units() {
    // Byte-budgeted paging over compressed frames under fault + delay
    // chaos: outputs still byte-identical, and the high-water stays under
    // the budget measured in *compressed* bytes.
    let (s, paths) = on_disk_compressed("zbudget");
    let criterion = FixedBandCriterion::new(0.9, 3.0, s.len()).unwrap();
    let seeds = [(0usize, 3usize, 6usize, 6usize)];
    let reference = grow_4d(&s, &criterion, &seeds).unwrap();
    let budget = 2 * FRAME_BYTES;
    for seed in [7u64, 19] {
        for prefetch in [1usize, 4] {
            let ooc = open_with(&paths, CacheBudget::Bytes(budget), prefetch);
            ooc.set_read_fault_hook(Some(chaos_hook(seed, 1)));
            let masks = grow_4d(&ChaosSource::new(&ooc, seed), &criterion, &seeds).unwrap();
            assert_eq!(
                masks, reference,
                "compressed outputs diverged (seed {seed}, prefetch {prefetch})"
            );
            let st = ooc.stats();
            assert!(
                st.resident_high_water_bytes <= budget,
                "compressed-byte high-water {} exceeds budget {budget} \
                 (seed {seed}, prefetch {prefetch})",
                st.resident_high_water_bytes
            );
            assert!(st.prefetch_wasted <= st.prefetched);
        }
    }
}

// ---------------------------------------------------------------------------
// Particle-tracing chaos: the frame-pair walker drives three velocity
// components through hostile schedules at once — per-component fault hooks
// plus randomized read delays perturbing how the three caches interleave.
// Pathline artifact bytes and the stable trace must match the clean in-core
// run exactly; the injected faults surface only as `read_retries`.
// ---------------------------------------------------------------------------

mod trace_chaos {
    use super::*;
    use ifet_trace::{advect, pathlines_to_bytes, seed_grid, TraceParams};
    use support::{flow_on_disk, FLOW_FRAMES};

    fn traced<S: FrameSource>(u: &S, v: &S, w: &S) -> (Vec<u8>, String) {
        let seeds = seed_grid(FrameSource::dims(u), 3);
        let (set, trace) = obs::capture("chaos.trace", || {
            advect(u, v, w, &seeds, &TraceParams { rk4_dt: 0.5 })
        });
        (
            pathlines_to_bytes(&set.unwrap()),
            trace.to_stable().to_json_pretty(),
        )
    }

    #[test]
    fn chaos_never_changes_pathline_bytes_or_stable_traces() {
        let ([u, v, w], paths) = flow_on_disk("trace_chaos", false);
        let (reference, ref_trace) = traced(&u, &v, &w);
        for seed in [3u64, 11] {
            for prefetch in [0usize, 2] {
                let comps: Vec<OutOfCoreSeries> = paths
                    .iter()
                    .map(|p| open_with(p, CacheBudget::Frames(2), prefetch))
                    .collect();
                for (k, c) in comps.iter().enumerate() {
                    // Distinct fault streams per component: the three caches
                    // retry and recover on unrelated schedules.
                    c.set_read_fault_hook(Some(chaos_hook(seed ^ ((k as u64) << 16), 2)));
                }
                let chaos: Vec<ChaosSource> = comps
                    .iter()
                    .enumerate()
                    .map(|(k, c)| ChaosSource::new(c, seed ^ k as u64))
                    .collect();
                let (bytes, trace) = traced(&chaos[0], &chaos[1], &chaos[2]);
                assert_eq!(
                    bytes, reference,
                    "pathline bytes diverged under chaos (seed {seed}, prefetch {prefetch})"
                );
                assert_eq!(
                    trace, ref_trace,
                    "stable trace diverged under chaos (seed {seed}, prefetch {prefetch})"
                );
                for (c, name) in comps.iter().zip(["u", "v", "w"]) {
                    let st = c.stats();
                    assert!(
                        st.read_retries >= 2 * FLOW_FRAMES as u64,
                        "{name}: injected faults must surface as retries, got {}",
                        st.read_retries
                    );
                    assert!(st.resident_high_water <= 2, "{name} over budget");
                }
            }
        }
    }
}
