//! Chaos suite: the paging layer under hostile scheduling. A wrapper source
//! injects randomized per-read delays, and the out-of-core read path is fed
//! transient I/O failures through its fault hook. Under every combination
//! the contract of `tests/ooc_equivalence.rs` must still hold: delays,
//! retries, and prefetch races may change *when* bytes move, never *what*
//! any stage computes — outputs and stable traces stay byte-identical to
//! the clean in-core run.

use ifet_core::obs;
use ifet_core::prelude::*;
use ifet_track::FixedBandCriterion;
use ifet_volume::{
    CacheBudget, CacheBudgetHandle, FrameHandle, FrameSource, OutOfCoreSeries, ReadFault,
    ReadFaultHook, SeriesError,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const FRAMES: usize = 16;
const FRAME_BYTES: u64 = 12 * 12 * 12 * 4;

/// Same drifting-ball fixture as the equivalence suite.
fn series() -> TimeSeries {
    let d = Dims3::cube(12);
    TimeSeries::from_frames(
        (0..FRAMES)
            .map(|k| {
                let drift = 0.05 * k as f32;
                let cx = 3.0 + 0.4 * k as f32;
                let vol = ScalarVolume::from_fn(d, move |x, y, z| {
                    let dist = ((x as f32 - cx).powi(2)
                        + (y as f32 - 6.0).powi(2)
                        + (z as f32 - 6.0).powi(2))
                    .sqrt();
                    let base = (x + y + z) as f32 / 36.0 + drift;
                    if dist <= 2.5 {
                        base + 1.0
                    } else {
                        base
                    }
                });
                (k as u32 * 5, vol)
            })
            .collect(),
    )
}

fn on_disk(tag: &str) -> (TimeSeries, Vec<PathBuf>) {
    let s = series();
    let dir = std::env::temp_dir().join(format!("ifet_ooc_chaos_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let paths = ifet_volume::io::write_series(&dir, "chaos", &s).unwrap();
    (s, paths)
}

fn open_with(paths: &[PathBuf], budget: CacheBudget, prefetch: usize) -> OutOfCoreSeries {
    OutOfCoreSeries::open_with(paths.to_vec(), &CacheBudgetHandle::new(budget), prefetch).unwrap()
}

/// splitmix64 finalizer: deterministic pseudo-randomness without any
/// wall-clock or RNG dependence, so every chaos schedule is replayable.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A [`FrameSource`] test double that forwards to a paged series but sleeps
/// a pseudo-random amount on a third of reads, perturbing the interleaving
/// of demand reads, prefetch completions, and evictions.
struct ChaosSource<'a> {
    inner: &'a OutOfCoreSeries,
    seed: u64,
    reads: AtomicU64,
}

impl<'a> ChaosSource<'a> {
    fn new(inner: &'a OutOfCoreSeries, seed: u64) -> Self {
        Self {
            inner,
            seed,
            reads: AtomicU64::new(0),
        }
    }
}

impl FrameSource for ChaosSource<'_> {
    fn dims(&self) -> Dims3 {
        FrameSource::dims(self.inner)
    }

    fn len(&self) -> usize {
        FrameSource::len(self.inner)
    }

    fn steps(&self) -> &[u32] {
        FrameSource::steps(self.inner)
    }

    fn frame(&self, i: usize) -> Result<FrameHandle<'_>, SeriesError> {
        let n = self.reads.fetch_add(1, Ordering::Relaxed);
        let r = mix(self.seed ^ (n << 20) ^ i as u64);
        if r % 3 == 0 {
            std::thread::sleep(Duration::from_micros(r % 400));
        }
        FrameSource::frame(self.inner, i)
    }

    fn residency_bound(&self) -> Option<usize> {
        FrameSource::residency_bound(self.inner)
    }

    fn prefetch_hint(&self, upcoming: &[usize]) {
        FrameSource::prefetch_hint(self.inner, upcoming)
    }
}

/// Fault hook that injects pseudo-random read delays and fails the first
/// `fails_per_frame` read attempts of every frame with a transient I/O
/// error — whoever gets there first (demand or prefetch) eats the failures
/// and must retry or degrade.
fn chaos_hook(seed: u64, fails_per_frame: u32) -> ReadFaultHook {
    let counts: Mutex<HashMap<usize, u32>> = Mutex::new(HashMap::new());
    Arc::new(move |frame, attempt| {
        let seen = {
            let mut c = counts.lock().unwrap();
            let e = c.entry(frame).or_insert(0);
            let seen = *e;
            *e += 1;
            seen
        };
        if seen < fails_per_frame {
            return Some(ReadFault::Error);
        }
        let r = mix(seed ^ ((frame as u64) << 8) ^ attempt as u64);
        if r % 2 == 0 {
            Some(ReadFault::Delay(Duration::from_micros(r % 300)))
        } else {
            None
        }
    })
}

/// Track through a source under span capture; returns the masks and the
/// canonical stable-trace JSON.
fn tracked<S: FrameSource>(src: &S) -> (Vec<Mask3>, String) {
    let criterion = FixedBandCriterion::new(0.9, 3.0, FrameSource::len(src)).unwrap();
    let seeds = [(0usize, 3usize, 6usize, 6usize)];
    let (masks, trace) = obs::capture("chaos.track", || grow_4d(src, &criterion, &seeds));
    (masks.unwrap(), trace.to_stable().to_json_pretty())
}

#[test]
fn chaos_delays_never_change_outputs_or_stable_traces() {
    let (s, paths) = on_disk("delays");
    let (reference, ref_trace) = tracked(&s);
    assert!(reference[0].count() > 0, "seed must land in the ball");
    for seed in [1u64, 7, 23] {
        for prefetch in [0usize, 2, 4] {
            let ooc = open_with(&paths, CacheBudget::Frames(2), prefetch);
            let chaos = ChaosSource::new(&ooc, seed);
            let (masks, trace) = tracked(&chaos);
            assert_eq!(
                masks, reference,
                "outputs diverged under delay chaos (seed {seed}, prefetch {prefetch})"
            );
            assert_eq!(
                trace, ref_trace,
                "stable trace diverged under delay chaos (seed {seed}, prefetch {prefetch})"
            );
            assert!(ooc.stats().resident_high_water <= 2);
        }
    }
}

#[test]
fn transient_read_faults_are_retried_and_invisible() {
    let (s, paths) = on_disk("faults");
    let (reference, ref_trace) = tracked(&s);
    for seed in [3u64, 11] {
        for prefetch in [0usize, 2] {
            let ooc = open_with(&paths, CacheBudget::Frames(2), prefetch);
            // Two failures per frame: strictly fewer than the read-path's
            // bounded retries, so every read eventually lands no matter
            // whether demand or prefetch eats the faults.
            ooc.set_read_fault_hook(Some(chaos_hook(seed, 2)));
            let (masks, trace) = tracked(&ooc);
            assert_eq!(
                masks, reference,
                "outputs diverged under fault chaos (seed {seed}, prefetch {prefetch})"
            );
            assert_eq!(
                trace, ref_trace,
                "stable trace diverged under fault chaos (seed {seed}, prefetch {prefetch})"
            );
            let st = ooc.stats();
            assert!(
                st.read_retries >= 2 * FRAMES as u64,
                "every frame's injected faults must show up as retries, got {}",
                st.read_retries
            );
            assert!(st.resident_high_water <= 2);
        }
    }
}

#[test]
fn prefetch_under_chaos_respects_byte_budget_and_stats_algebra() {
    let (s, paths) = on_disk("budget");
    let criterion = FixedBandCriterion::new(0.9, 3.0, s.len()).unwrap();
    let seeds = [(0usize, 3usize, 6usize, 6usize)];
    let reference = grow_4d(&s, &criterion, &seeds).unwrap();
    let budget = 2 * FRAME_BYTES;
    for seed in [5u64, 17, 41] {
        for prefetch in [1usize, 4] {
            let ooc = open_with(&paths, CacheBudget::Bytes(budget), prefetch);
            ooc.set_read_fault_hook(Some(chaos_hook(seed, 1)));
            let masks = grow_4d(&ChaosSource::new(&ooc, seed), &criterion, &seeds).unwrap();
            assert_eq!(
                masks, reference,
                "outputs diverged (seed {seed}, prefetch {prefetch})"
            );
            let st = ooc.stats();
            assert!(
                st.resident_high_water_bytes <= budget,
                "byte high-water {} exceeds budget {budget} \
                 (seed {seed}, prefetch {prefetch})",
                st.resident_high_water_bytes
            );
            assert!(
                st.prefetch_wasted <= st.prefetched,
                "wasted {} > prefetched {}",
                st.prefetch_wasted,
                st.prefetched
            );
            assert!(
                st.hits + st.misses >= FRAMES as u64,
                "every frame is demanded at least once"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Storage-flavor chaos: the same hostile schedules against the compressed
// decode path and the mmap zero-copy path. Faults injected under the retry
// loop hit whichever read primitive the flavor uses, so delays and transient
// errors exercise decode-after-read and map-after-open alike — and must
// remain invisible except as `read_retries`.
// ---------------------------------------------------------------------------

fn on_disk_compressed(tag: &str) -> (TimeSeries, Vec<PathBuf>) {
    let s = series();
    let dir = std::env::temp_dir().join(format!("ifet_ooc_chaos_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let paths = ifet_volume::io::write_series_with(&dir, "chaos", &s, true).unwrap();
    (s, paths)
}

fn open_mmap(paths: &[PathBuf], budget: CacheBudget, prefetch: usize) -> OutOfCoreSeries {
    OutOfCoreSeries::open_mmap(paths.to_vec(), &CacheBudgetHandle::new(budget), prefetch).unwrap()
}

#[test]
fn chaos_over_compressed_frames_never_changes_outputs_or_traces() {
    let (s, paths) = on_disk_compressed("decode");
    let (reference, ref_trace) = tracked(&s);
    for seed in [3u64, 11, 29] {
        for prefetch in [0usize, 2] {
            let ooc = open_with(&paths, CacheBudget::Frames(2), prefetch);
            ooc.set_read_fault_hook(Some(chaos_hook(seed, 2)));
            let (masks, trace) = tracked(&ChaosSource::new(&ooc, seed));
            assert_eq!(
                masks, reference,
                "compressed outputs diverged (seed {seed}, prefetch {prefetch})"
            );
            assert_eq!(
                trace, ref_trace,
                "compressed stable trace diverged (seed {seed}, prefetch {prefetch})"
            );
            let st = ooc.stats();
            assert!(
                st.read_retries >= 2 * FRAMES as u64,
                "decode-path faults must surface as retries, got {}",
                st.read_retries
            );
            assert!(st.resident_high_water <= 2);
        }
    }
}

#[test]
fn chaos_over_mmap_frames_never_changes_outputs_or_traces() {
    let (s, paths) = on_disk("mmap");
    let (reference, ref_trace) = tracked(&s);
    for seed in [5u64, 13, 37] {
        for prefetch in [0usize, 2] {
            let ooc = open_mmap(&paths, CacheBudget::Frames(2), prefetch);
            assert!(ooc.is_mmap());
            ooc.set_read_fault_hook(Some(chaos_hook(seed, 2)));
            let (masks, trace) = tracked(&ChaosSource::new(&ooc, seed));
            assert_eq!(
                masks, reference,
                "mmap outputs diverged (seed {seed}, prefetch {prefetch})"
            );
            assert_eq!(
                trace, ref_trace,
                "mmap stable trace diverged (seed {seed}, prefetch {prefetch})"
            );
            let st = ooc.stats();
            assert!(
                st.read_retries >= 2 * FRAMES as u64,
                "mmap-path faults must surface as retries, got {}",
                st.read_retries
            );
            assert!(st.resident_high_water <= 2);
        }
    }
}

#[test]
fn chaos_byte_budgets_hold_in_compressed_units() {
    // Byte-budgeted paging over compressed frames under fault + delay
    // chaos: outputs still byte-identical, and the high-water stays under
    // the budget measured in *compressed* bytes.
    let (s, paths) = on_disk_compressed("zbudget");
    let criterion = FixedBandCriterion::new(0.9, 3.0, s.len()).unwrap();
    let seeds = [(0usize, 3usize, 6usize, 6usize)];
    let reference = grow_4d(&s, &criterion, &seeds).unwrap();
    let budget = 2 * FRAME_BYTES;
    for seed in [7u64, 19] {
        for prefetch in [1usize, 4] {
            let ooc = open_with(&paths, CacheBudget::Bytes(budget), prefetch);
            ooc.set_read_fault_hook(Some(chaos_hook(seed, 1)));
            let masks = grow_4d(&ChaosSource::new(&ooc, seed), &criterion, &seeds).unwrap();
            assert_eq!(
                masks, reference,
                "compressed outputs diverged (seed {seed}, prefetch {prefetch})"
            );
            let st = ooc.stats();
            assert!(
                st.resident_high_water_bytes <= budget,
                "compressed-byte high-water {} exceeds budget {budget} \
                 (seed {seed}, prefetch {prefetch})",
                st.resident_high_water_bytes
            );
            assert!(st.prefetch_wasted <= st.prefetched);
        }
    }
}
