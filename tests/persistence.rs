//! Integration tests for the versioned session artifact (`ifet_core::persist`):
//! round-trip fidelity for arbitrary session states, corruption injection
//! (truncation at section boundaries, single-byte flips, version bumps),
//! forward compatibility with unknown sections, and the checkpoint/resume
//! guarantee that an interrupted tracking run finishes with exactly the
//! result an uninterrupted run produces.

use ifet_core::persist::{crc32, ArtifactWriter, SESSION_FORMAT_VERSION};
use ifet_core::prelude::*;
use ifet_extract::PaintSet;
use proptest::prelude::*;
use std::sync::OnceLock;

// Container layout constants, restated here independently of the
// implementation so the tests aim corruption at exact byte ranges.
const FIXED_HEADER_LEN: usize = 16;
const TABLE_ENTRY_LEN: usize = 28;
const TAG_LEN: usize = 8;

/// `(tag, payload offset, payload len)` for every table entry, parsed by
/// hand rather than through `ArtifactReader` (the code under test).
fn section_table(bytes: &[u8]) -> Vec<(String, usize, usize)> {
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    (0..count)
        .map(|i| {
            let e = FIXED_HEADER_LEN + i * TABLE_ENTRY_LEN;
            let tag = String::from_utf8(bytes[e..e + TAG_LEN].to_vec())
                .unwrap()
                .trim_end()
                .to_string();
            let off = u64::from_le_bytes(bytes[e + 8..e + 16].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[e + 16..e + 24].try_into().unwrap()) as usize;
            (tag, off, len)
        })
        .collect()
}

/// First byte past the fixed header + table + header checksum.
fn header_end(bytes: &[u8]) -> usize {
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    FIXED_HEADER_LEN + count * TABLE_ENTRY_LEN + 4
}

/// A seed inside the hottest voxel of frame 0 plus a value band around it,
/// so fixed-band tracking always grows a non-empty region.
fn hot_seed_band(series: &TimeSeries) -> (Seed4, (f32, f32)) {
    let (_, frame) = series.iter().next().unwrap();
    let (mut best_i, mut best_v) = (0usize, f32::MIN);
    for (i, &v) in frame.as_slice().iter().enumerate() {
        if v > best_v {
            best_v = v;
            best_i = i;
        }
    }
    let (x, y, z) = series.dims().coords(best_i);
    let (glo, ghi) = series.global_range();
    ((0, x, y, z), (best_v - 0.25 * (ghi - glo), ghi))
}

/// A session exercising every version-1 section: two key frames + trained
/// IATF, paints + trained classifier, one completed track, and one paused
/// track whose checkpoint rides along. Built once; every corruption test
/// reuses the same artifact bytes.
fn rich_artifact() -> &'static (TimeSeries, Vec<u8>) {
    static CACHE: OnceLock<(TimeSeries, Vec<u8>)> = OnceLock::new();
    CACHE.get_or_init(|| {
        let data = ifet_sim::shock_bubble(Dims3::cube(12), 0x51);
        let mut sess = VisSession::new(data.series.clone()).unwrap();
        let steps = data.series.steps().to_vec();
        let (glo, ghi) = data.series.global_range();
        let (b0, b1) = ifet_sim::shock_bubble::ring_value_band(0.0);
        sess.add_key_frame(steps[0], TransferFunction1D::band(glo, ghi, b0, b1, 1.0));
        let (b0, b1) = ifet_sim::shock_bubble::ring_value_band(1.0);
        sess.add_key_frame(
            *steps.last().unwrap(),
            TransferFunction1D::band(glo, ghi, b0, b1, 1.0),
        );
        sess.train_iatf(IatfParams {
            epochs: 60,
            ..Default::default()
        });
        let mut oracle = PaintOracle::new(0x51);
        sess.add_paints(oracle.paint_from_truth(steps[0], data.truth_frame(0), 40, 40))
            .unwrap();
        sess.train_classifier(
            FeatureSpec::default(),
            ClassifierParams {
                epochs: 40,
                ..Default::default()
            },
        )
        .unwrap();
        let (seed, (lo, hi)) = hot_seed_band(&data.series);
        let status = sess
            .run_track(CriterionSpec::FixedBand { lo, hi }, &[seed], None)
            .unwrap();
        assert_eq!(status, TrackStatus::Completed);
        let status = sess
            .run_track(CriterionSpec::FixedBand { lo, hi }, &[seed], Some(0))
            .unwrap();
        assert!(matches!(status, TrackStatus::Paused { .. }));
        (data.series.clone(), save_session_bytes(&sess))
    })
}

/// Re-emit the rich artifact through `ArtifactWriter`, keeping only the
/// sections `keep` admits and splicing in any `(tag, payload)` extras after
/// the IATF section.
fn rebuild(bytes: &[u8], keep: impl Fn(&str) -> bool, extras: &[(&str, Vec<u8>)]) -> Vec<u8> {
    let mut w = ArtifactWriter::new();
    for (tag, off, len) in section_table(bytes) {
        if keep(&tag) {
            w.add(&tag, bytes[off..off + len].to_vec());
        }
        if tag == "IATF" {
            for (etag, payload) in extras {
                w.add(etag, payload.clone());
            }
        }
    }
    w.to_bytes()
}

// ---- Round trips ----

#[test]
fn rich_artifact_has_every_version1_section() {
    let (_, bytes) = rich_artifact();
    let tags: Vec<String> = section_table(bytes)
        .into_iter()
        .map(|(t, _, _)| t)
        .collect();
    assert_eq!(
        tags,
        ["META", "KEYFRAME", "IATF", "PAINTS", "CLASSIFY", "TRACKS", "CHECKPT"]
    );
}

#[test]
fn save_load_save_is_byte_identical() {
    let (series, bytes) = rich_artifact();
    let loaded = load_session_bytes(series.clone(), bytes).unwrap();
    assert_eq!(loaded.key_frames().len(), 2);
    assert!(loaded.iatf().is_some());
    assert_eq!(loaded.paints().len(), 1);
    assert!(loaded.classifier().is_some());
    assert_eq!(loaded.tracks().len(), 1);
    assert!(loaded.pending_track().is_some());
    assert_eq!(&save_session_bytes(&loaded), bytes);
}

#[test]
fn reloaded_models_predict_identically() {
    let (series, bytes) = rich_artifact();
    let loaded = load_session_bytes(series.clone(), bytes).unwrap();
    let fresh = load_session_bytes(series.clone(), bytes).unwrap();
    let t = series.steps()[1];
    assert_eq!(loaded.adaptive_tf_at_step(t), fresh.adaptive_tf_at_step(t));
    assert!(loaded.adaptive_tf_at_step(t).is_some());
    assert_eq!(
        loaded.extract_data_space(t, 0.5),
        fresh.extract_data_space(t, 0.5)
    );
}

// ---- Corruption injection ----

#[test]
fn truncation_inside_the_header_is_typed() {
    let (series, bytes) = rich_artifact();
    for cut in 0..FIXED_HEADER_LEN {
        match load_session_bytes(series.clone(), &bytes[..cut]) {
            Err(PersistError::TruncatedHeader { got, .. }) => assert_eq!(got, cut),
            other => panic!("cut at {cut}: expected TruncatedHeader, got {other:?}"),
        }
    }
    // Anywhere inside the table / header checksum.
    for cut in [FIXED_HEADER_LEN, header_end(bytes) - 1] {
        assert!(matches!(
            load_session_bytes(series.clone(), &bytes[..cut]),
            Err(PersistError::TruncatedHeader { .. })
        ));
    }
}

#[test]
fn truncation_at_every_section_boundary_names_the_section() {
    let (series, bytes) = rich_artifact();
    for (tag, off, len) in section_table(bytes) {
        // Payload entirely absent, and payload one byte short: both must be
        // reported against this section, not a later one and not a panic.
        for cut in [off, off + len - 1] {
            match load_session_bytes(series.clone(), &bytes[..cut]) {
                Err(PersistError::TruncatedSection { section, .. }) => {
                    assert_eq!(section, tag, "cut at {cut}")
                }
                other => panic!("cut at {cut}: expected TruncatedSection({tag}), got {other:?}"),
            }
        }
    }
}

#[test]
fn byte_flip_in_every_section_payload_is_a_checksum_mismatch() {
    let (series, bytes) = rich_artifact();
    for (tag, off, len) in section_table(bytes) {
        for pos in [off, off + len / 2, off + len - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x01;
            match load_session_bytes(series.clone(), &bad) {
                Err(PersistError::ChecksumMismatch { section }) => {
                    assert_eq!(section, tag, "flip at {pos}")
                }
                other => panic!("flip at {pos}: expected ChecksumMismatch({tag}), got {other:?}"),
            }
        }
    }
}

#[test]
fn header_byte_flips_are_typed() {
    let (series, bytes) = rich_artifact();
    let load = |b: &[u8]| load_session_bytes(series.clone(), b);

    let mut bad = bytes.clone();
    bad[0] ^= 0x01; // magic
    assert_eq!(load(&bad).unwrap_err(), PersistError::BadMagic);

    let mut bad = bytes.clone();
    bad[9] ^= 0x01; // version field
    assert!(matches!(
        load(&bad),
        Err(PersistError::UnsupportedVersion { .. })
    ));

    let mut bad = bytes.clone();
    bad[FIXED_HEADER_LEN] ^= 0x01; // first tag byte: must not silently skip
    assert_eq!(
        load(&bad).unwrap_err(),
        PersistError::HeaderChecksumMismatch
    );

    let mut bad = bytes.clone();
    bad[header_end(bytes) - 1] ^= 0x01; // stored header checksum itself
    assert_eq!(
        load(&bad).unwrap_err(),
        PersistError::HeaderChecksumMismatch
    );

    // Section count: whatever the flip turns it into, the reader must reject
    // the file as a header-level problem rather than misparse the table.
    let mut bad = bytes.clone();
    bad[12] ^= 0x01;
    assert!(matches!(
        load(&bad),
        Err(PersistError::TruncatedHeader { .. } | PersistError::HeaderChecksumMismatch)
    ));
}

#[test]
fn version_bump_is_rejected_even_with_valid_checksums() {
    // A well-formed file from a hypothetical format 2: every checksum valid,
    // only the version differs. The reader must refuse on version alone.
    let (series, bytes) = rich_artifact();
    let mut future = bytes.clone();
    future[8..12].copy_from_slice(&2u32.to_le_bytes());
    let table_end = header_end(&future) - 4;
    let fixed_crc = crc32(&future[..table_end]);
    future[table_end..table_end + 4].copy_from_slice(&fixed_crc.to_le_bytes());
    assert_eq!(
        load_session_bytes(series.clone(), &future).unwrap_err(),
        PersistError::UnsupportedVersion {
            found: 2,
            supported: SESSION_FORMAT_VERSION
        }
    );
}

#[test]
fn sampled_byte_flip_sweep_never_panics() {
    // The per-section tests above aim at known offsets; this sweep walks the
    // whole artifact at a prime stride as a belt-and-braces check that *any*
    // single-byte flip yields Err, never a panic or a silent success.
    let (series, bytes) = rich_artifact();
    for pos in (0..bytes.len()).step_by(97) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x01;
        assert!(
            load_session_bytes(series.clone(), &bad).is_err(),
            "flip at byte {pos} was not detected"
        );
    }
}

// ---- Forward / cross-file compatibility ----

#[test]
fn unknown_sections_from_the_future_are_skipped() {
    let (series, bytes) = rich_artifact();
    let future = rebuild(
        bytes,
        |_| true,
        &[("FUTUREXT", vec![0xDE, 0xAD, 0xBE, 0xEF])],
    );
    let loaded = load_session_bytes(series.clone(), &future).unwrap();
    // The unknown section is ignored; re-saving reproduces the version-1
    // artifact exactly (the extra section is dropped, nothing else changes).
    assert_eq!(&save_session_bytes(&loaded), bytes);
}

#[test]
fn each_missing_required_section_is_typed() {
    let (series, bytes) = rich_artifact();
    for required in ["META", "KEYFRAME", "IATF", "PAINTS", "CLASSIFY", "TRACKS"] {
        let gutted = rebuild(bytes, |t| t != required, &[]);
        match load_session_bytes(series.clone(), &gutted) {
            Err(PersistError::MissingSection { section }) => assert_eq!(section, required),
            other => panic!("without {required}: expected MissingSection, got {other:?}"),
        }
    }
    // CHECKPT is optional: dropping it just loses the pending run.
    let no_ckpt = rebuild(bytes, |t| t != "CHECKPT", &[]);
    let loaded = load_session_bytes(series.clone(), &no_ckpt).unwrap();
    assert!(loaded.pending_track().is_none());
    assert_eq!(loaded.tracks().len(), 1);
}

#[test]
fn attaching_to_the_wrong_series_is_typed() {
    let (series, bytes) = rich_artifact();

    let other_dims = ifet_sim::shock_bubble(Dims3::cube(10), 0x51);
    assert!(matches!(
        load_session_bytes(other_dims.series.clone(), bytes),
        Err(PersistError::SeriesMismatch { .. })
    ));

    // Same dims, shifted step labels.
    let relabeled = TimeSeries::from_frames(
        series
            .iter()
            .map(|(t, frame)| (t + 1, frame.clone()))
            .collect(),
    );
    assert!(matches!(
        load_session_bytes(relabeled, bytes),
        Err(PersistError::SeriesMismatch { .. })
    ));
}

// ---- Checkpoint / resume ----

#[test]
fn resume_after_reload_matches_an_uninterrupted_run() {
    let data = ifet_sim::shock_bubble(Dims3::cube(12), 0x52);
    let (seed, (lo, hi)) = hot_seed_band(&data.series);
    let spec = CriterionSpec::FixedBand { lo, hi };

    let mut full = VisSession::new(data.series.clone()).unwrap();
    assert_eq!(
        full.run_track(spec.clone(), &[seed], None).unwrap(),
        TrackStatus::Completed
    );

    // Interrupt immediately, persist the checkpoint, reload in a "new
    // process", and finish from there.
    let mut interrupted = VisSession::new(data.series.clone()).unwrap();
    assert_eq!(
        interrupted.run_track(spec, &[seed], Some(0)).unwrap(),
        TrackStatus::Paused { rounds: 0 }
    );
    let bytes = save_session_bytes(&interrupted);
    let mut reloaded = load_session_bytes(data.series.clone(), &bytes).unwrap();
    let resumed = reloaded.resume_track().unwrap().clone();

    assert_eq!(resumed, full.tracks()[0].result);
    assert!(resumed.report.voxels_per_frame.iter().sum::<usize>() > 0);
    // And the two finished sessions serialize byte-identically.
    assert_eq!(save_session_bytes(&reloaded), save_session_bytes(&full));
}

#[test]
fn resume_without_a_checkpoint_is_typed() {
    let (series, bytes) = rich_artifact();
    let no_ckpt = rebuild(bytes, |t| t != "CHECKPT", &[]);
    let mut loaded = load_session_bytes(series.clone(), &no_ckpt).unwrap();
    assert_eq!(
        loaded.resume_track().unwrap_err(),
        PersistError::NoCheckpoint
    );
}

// ---- Property: arbitrary partial session states round-trip ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn arbitrary_session_states_roundtrip(
        seed in 1u64..500,
        n_keys in 0usize..3,
        train in any::<bool>(),
        with_paint in any::<bool>(),
        track_mode in 0u8..3,
    ) {
        let data = ifet_sim::shock_bubble(Dims3::cube(8), seed);
        let series = data.series.clone();
        let steps = series.steps().to_vec();
        let (glo, ghi) = series.global_range();

        let mut sess = VisSession::new(series.clone()).unwrap();
        for (k, &step) in steps.iter().take(n_keys).enumerate() {
            let frac = k as f32 / 2.0;
            let lo = glo + frac * 0.3 * (ghi - glo);
            sess.add_key_frame(step, TransferFunction1D::band(glo, ghi, lo, ghi, 0.9));
        }
        if train && n_keys > 0 {
            sess.train_iatf(IatfParams { hidden: 4, bins: 32, epochs: 8, ..Default::default() });
        }
        if with_paint {
            let mut p = PaintSet::new(steps[0]);
            p.paint((1, 1, 1), true);
            p.paint((0, 0, 0), false);
            sess.add_paints(p).unwrap();
        }
        let (track_seed, (lo, hi)) = hot_seed_band(&series);
        match track_mode {
            1 => {
                let s = sess.run_track(CriterionSpec::FixedBand { lo, hi }, &[track_seed], None).unwrap();
                prop_assert_eq!(s, TrackStatus::Completed);
            }
            2 => {
                let s = sess.run_track(CriterionSpec::FixedBand { lo, hi }, &[track_seed], Some(0)).unwrap();
                prop_assert_eq!(s, TrackStatus::Paused { rounds: 0 });
            }
            _ => {}
        }

        let bytes = save_session_bytes(&sess);
        let loaded = load_session_bytes(series.clone(), &bytes).unwrap();
        prop_assert_eq!(save_session_bytes(&loaded), bytes);
        prop_assert_eq!(loaded.key_frames().len(), n_keys);
        prop_assert_eq!(loaded.paints(), sess.paints());
        prop_assert_eq!(loaded.tracks(), sess.tracks());
        prop_assert_eq!(loaded.pending_track(), sess.pending_track());
        prop_assert_eq!(loaded.iatf().is_some(), sess.iatf().is_some());
        if sess.iatf().is_some() {
            prop_assert_eq!(
                loaded.adaptive_tf_at_step(steps[0]),
                sess.adaptive_tf_at_step(steps[0])
            );
        }
    }
}
