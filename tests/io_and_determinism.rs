//! Integration: disk round-trips and whole-pipeline determinism — the
//! properties that make experiments reproducible and let trained systems be
//! shipped to other machines (paper Sections 4.2.3 and 8).

use ifet_core::prelude::*;
use ifet_sim::shock_bubble::ring_value_band;
use ifet_volume::io::{read_series, write_series};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ifet_it_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn series_roundtrips_through_disk() {
    let data = ifet_sim::shock_bubble(Dims3::cube(16), 0x10);
    let dir = tmpdir("series");
    let paths = write_series(&dir, "bubble", &data.series).unwrap();
    assert_eq!(paths.len(), data.series.len());
    let back = read_series(&paths).unwrap();
    assert_eq!(back, data.series);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn training_on_reloaded_series_is_identical() {
    // Write, reload, retrain: the trained IATF must be bit-identical — the
    // full pipeline is deterministic end to end.
    let data = ifet_sim::shock_bubble(Dims3::cube(16), 0x11);
    let dir = tmpdir("retrain");
    let paths = write_series(&dir, "bubble", &data.series).unwrap();
    let reloaded = read_series(&paths).unwrap();
    std::fs::remove_dir_all(dir).ok();

    let train = |series: &TimeSeries| {
        let mut session = VisSession::new(series.clone()).unwrap();
        let (glo, ghi) = series.global_range();
        for (t, tn) in [(195u32, 0.0f32), (255, 1.0)] {
            let (lo, hi) = ring_value_band(tn);
            session.add_key_frame(t, TransferFunction1D::band(glo, ghi, lo, hi, 1.0));
        }
        session.train_iatf(IatfParams {
            epochs: 100,
            ..Default::default()
        });
        session.adaptive_tf_at_step(225).unwrap()
    };
    assert_eq!(train(&data.series), train(&reloaded));
}

#[test]
fn whole_figure_pipeline_is_deterministic() {
    let run = || {
        let data = ifet_sim::reionization(Dims3::cube(24), 0x12);
        let mut session = VisSession::new(data.series.clone()).unwrap();
        let mut oracle = PaintOracle::new(0x12);
        let fi = data.series.index_of_step(310).unwrap();
        session
            .add_paints(oracle.paint_from_truth(310, data.truth_frame(fi), 80, 80))
            .unwrap();
        session
            .train_classifier(FeatureSpec::default(), ClassifierParams::default())
            .unwrap();
        session.extract_data_space(310, 0.5).unwrap()
    };
    assert_eq!(run(), run());
}

#[test]
fn renderer_is_deterministic_across_thread_counts() {
    // Scanline parallelism must not change pixels.
    let data = ifet_sim::turbulent_vortex(Dims3::cube(24), 0x13);
    let session = VisSession::new(data.series.clone()).unwrap();
    let (glo, ghi) = session.series().global_range();
    let tf = TransferFunction1D::band(glo, ghi, 0.5, ghi, 0.8);
    let t0 = data.series.steps()[0];

    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(|| session.render_with_tf(t0, &tf, 48, 48));
    let multi = session.render_with_tf(t0, &tf, 48, 48);
    assert_eq!(single, multi);
}

#[test]
fn session_artifacts_are_byte_identical_across_thread_counts() {
    // The golden determinism property for persistence: run the whole
    // pipeline — IATF training, classifier training, data-space tracking,
    // a paused checkpoint — under thread pools of different sizes, and the
    // saved artifacts must agree to the byte. Frame-parallel classification,
    // the per-thread scratch pool, and frontier-parallel growth must all be
    // invisible in the serialized result.
    let build = |threads: usize| {
        pipeline::pool_with_threads(threads).install(|| {
            let data = ifet_sim::reionization(Dims3::cube(16), 0x15);
            let mut session = VisSession::new(data.series.clone()).unwrap();
            let steps = data.series.steps().to_vec();
            let (glo, ghi) = data.series.global_range();

            session.add_key_frame(
                steps[0],
                TransferFunction1D::band(glo, ghi, glo + 0.3 * (ghi - glo), ghi, 0.9),
            );
            session.add_key_frame(
                *steps.last().unwrap(),
                TransferFunction1D::band(glo, ghi, glo + 0.5 * (ghi - glo), ghi, 0.9),
            );
            session.train_iatf(IatfParams {
                epochs: 60,
                ..Default::default()
            });

            let mut oracle = PaintOracle::new(0x15);
            session
                .add_paints(oracle.paint_from_truth(steps[0], data.truth_frame(0), 60, 60))
                .unwrap();
            session
                .train_classifier(
                    FeatureSpec::default(),
                    ClassifierParams {
                        epochs: 60,
                        ..Default::default()
                    },
                )
                .unwrap();

            // Seed tracking from the first voxel the classifier accepts, so
            // the data-space criterion grows a real region.
            let mask = session.extract_data_space(steps[0], 0.5).unwrap();
            let d = data.series.dims();
            let i = (0..d.len())
                .find(|&i| mask.get_linear(i))
                .expect("classifier accepted no voxel");
            let (x, y, z) = d.coords(i);
            let spec = CriterionSpec::DataSpace { tau: 0.5 };
            let status = session
                .run_track(spec.clone(), &[(0, x, y, z)], None)
                .unwrap();
            assert_eq!(status, TrackStatus::Completed);
            // A second run interrupted after one parallel round leaves a
            // checkpoint in the artifact as well.
            session.run_track(spec, &[(0, x, y, z)], Some(1)).unwrap();

            save_session_bytes(&session)
        })
    };

    let one = build(1);
    let two = build(2);
    let four = build(4);
    assert_eq!(one, two, "1-thread and 2-thread artifacts differ");
    assert_eq!(one, four, "1-thread and 4-thread artifacts differ");
}

#[test]
fn classifier_network_roundtrips_as_json() {
    let data = ifet_sim::reionization(Dims3::cube(24), 0x14);
    let mut session = VisSession::new(data.series.clone()).unwrap();
    let mut oracle = PaintOracle::new(0x14);
    let fi = data.series.index_of_step(130).unwrap();
    session
        .add_paints(oracle.paint_from_truth(130, data.truth_frame(fi), 60, 60))
        .unwrap();
    session
        .train_classifier(FeatureSpec::default(), ClassifierParams::default())
        .unwrap();

    let net = session.classifier().unwrap().network();
    let restored = Mlp::from_json(&net.to_json()).unwrap();
    assert_eq!(*net, restored);
}
