//! Integration: disk round-trips and whole-pipeline determinism — the
//! properties that make experiments reproducible and let trained systems be
//! shipped to other machines (paper Sections 4.2.3 and 8).

use ifet_core::prelude::*;
use ifet_sim::shock_bubble::ring_value_band;
use ifet_volume::io::{read_series, write_series};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ifet_it_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn series_roundtrips_through_disk() {
    let data = ifet_sim::shock_bubble(Dims3::cube(16), 0x10);
    let dir = tmpdir("series");
    let paths = write_series(&dir, "bubble", &data.series).unwrap();
    assert_eq!(paths.len(), data.series.len());
    let back = read_series(&paths).unwrap();
    assert_eq!(back, data.series);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn training_on_reloaded_series_is_identical() {
    // Write, reload, retrain: the trained IATF must be bit-identical — the
    // full pipeline is deterministic end to end.
    let data = ifet_sim::shock_bubble(Dims3::cube(16), 0x11);
    let dir = tmpdir("retrain");
    let paths = write_series(&dir, "bubble", &data.series).unwrap();
    let reloaded = read_series(&paths).unwrap();
    std::fs::remove_dir_all(dir).ok();

    let train = |series: &TimeSeries| {
        let mut session = VisSession::new(series.clone());
        let (glo, ghi) = series.global_range();
        for (t, tn) in [(195u32, 0.0f32), (255, 1.0)] {
            let (lo, hi) = ring_value_band(tn);
            session.add_key_frame(t, TransferFunction1D::band(glo, ghi, lo, hi, 1.0));
        }
        session.train_iatf(IatfParams {
            epochs: 100,
            ..Default::default()
        });
        session.adaptive_tf_at_step(225).unwrap()
    };
    assert_eq!(train(&data.series), train(&reloaded));
}

#[test]
fn whole_figure_pipeline_is_deterministic() {
    let run = || {
        let data = ifet_sim::reionization(Dims3::cube(24), 0x12);
        let mut session = VisSession::new(data.series.clone());
        let mut oracle = PaintOracle::new(0x12);
        let fi = data.series.index_of_step(310).unwrap();
        session.add_paints(oracle.paint_from_truth(310, data.truth_frame(fi), 80, 80));
        session
            .train_classifier(FeatureSpec::default(), ClassifierParams::default())
            .unwrap();
        session.extract_data_space(310, 0.5).unwrap()
    };
    assert_eq!(run(), run());
}

#[test]
fn renderer_is_deterministic_across_thread_counts() {
    // Scanline parallelism must not change pixels.
    let data = ifet_sim::turbulent_vortex(Dims3::cube(24), 0x13);
    let session = VisSession::new(data.series.clone());
    let (glo, ghi) = session.series().global_range();
    let tf = TransferFunction1D::band(glo, ghi, 0.5, ghi, 0.8);
    let t0 = data.series.steps()[0];

    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(|| session.render_with_tf(t0, &tf, 48, 48));
    let multi = session.render_with_tf(t0, &tf, 48, 48);
    assert_eq!(single, multi);
}

#[test]
fn classifier_network_roundtrips_as_json() {
    let data = ifet_sim::reionization(Dims3::cube(24), 0x14);
    let mut session = VisSession::new(data.series.clone());
    let mut oracle = PaintOracle::new(0x14);
    let fi = data.series.index_of_step(130).unwrap();
    session.add_paints(oracle.paint_from_truth(130, data.truth_frame(fi), 60, 60));
    session
        .train_classifier(FeatureSpec::default(), ClassifierParams::default())
        .unwrap();

    let net = session.classifier().unwrap().network();
    let restored = Mlp::from_json(&net.to_json()).unwrap();
    assert_eq!(*net, restored);
}
