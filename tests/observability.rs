//! Integration tests for the observability layer (`ifet_core::obs`):
//! the counter-determinism contract (stable traces byte-identical across
//! thread counts), the versioned trace schema (strict fixture reader fails
//! on unannounced field changes), and the artifact TRACE section (skippable,
//! verbatim round-trip, corruption detected at load).
//!
//! Every test that executes instrumented pipeline code does so inside
//! `obs::capture`, which serializes captures process-wide — so concurrently
//! running tests cannot leak counters into each other's span trees.

use ifet_core::obs;
use ifet_core::persist::{
    load_session_bytes, save_session_bytes, ArtifactReader, ArtifactWriter, PersistError,
};
use ifet_core::prelude::*;
use proptest::prelude::*;

/// A seed in the hottest voxel of frame 0 plus a band around its value, so
/// fixed-band growth always has a non-empty region to fill.
fn hot_seed_band(series: &TimeSeries) -> (Seed4, (f32, f32)) {
    let (_, frame) = series.iter().next().unwrap();
    let (mut best_i, mut best_v) = (0usize, f32::MIN);
    for (i, &v) in frame.as_slice().iter().enumerate() {
        if v > best_v {
            best_v = v;
            best_i = i;
        }
    }
    let (x, y, z) = series.dims().coords(best_i);
    let (glo, ghi) = series.global_range();
    ((0, x, y, z), (best_v - 0.25 * (ghi - glo), ghi))
}

/// One representative run of the whole pipeline — paint → classifier
/// training (nn counters), series classification (extract counters),
/// 4D growth (track counters), artifact save (persist counters) — captured
/// under `threads` rayon workers. Returns the trace.
fn traced_pipeline(threads: usize) -> obs::Trace {
    let data = ifet_sim::shock_bubble(Dims3::cube(16), 0x21);
    let (_, trace) = obs::capture("test.pipeline", || {
        pipeline::pool_with_threads(threads).install(|| {
            let mut session = VisSession::new(data.series.clone()).unwrap();
            let step0 = data.series.steps()[0];
            let mut oracle = PaintOracle::new(5);
            session
                .add_paints(oracle.paint_from_truth(step0, &data.truth[0], 60, 60))
                .unwrap();
            session
                .train_classifier(
                    FeatureSpec {
                        shell: ShellMode::None,
                        ..Default::default()
                    },
                    ClassifierParams {
                        epochs: 30,
                        ..Default::default()
                    },
                )
                .unwrap();
            let certainty = session
                .classifier()
                .unwrap()
                .classify_series(session.series())
                .unwrap();
            assert_eq!(certainty.len(), session.series().len());

            let (seed, (lo, hi)) = hot_seed_band(session.series());
            session
                .run_track(CriterionSpec::FixedBand { lo, hi }, &[seed], None)
                .unwrap();
            save_session_bytes(&session).len()
        })
    });
    trace
}

#[test]
fn stable_counters_identical_across_thread_counts() {
    let t1 = traced_pipeline(1);
    let t2 = traced_pipeline(2);
    let t4 = traced_pipeline(4);

    // The full traces differ (timings, runtime counters); their stable
    // renderings must not — that is the determinism contract.
    let s1 = t1.to_stable().to_json();
    let s2 = t2.to_stable().to_json();
    let s4 = t4.to_stable().to_json();
    assert_eq!(s1, s2, "stable trace must not depend on thread count");
    assert_eq!(s1, s4, "stable trace must not depend on thread count");

    // The golden counters the stage instrumentation promises are present and
    // non-trivial: grown voxels, classified voxels, per-round frontier sizes,
    // per-epoch losses, and per-section artifact bytes.
    let root = &t4.root;
    let grow = root.find("track.grow_rounds").expect("grow span");
    assert!(grow.counter("grown_voxels").unwrap() > 0);
    assert!(grow.counter("rounds").unwrap() > 0);
    let mut rounds = Vec::new();
    root.find_all("track.round", &mut rounds);
    assert!(!rounds.is_empty(), "growth must record per-round spans");
    assert!(rounds
        .iter()
        .any(|r| r.counter("frontier").unwrap_or(0) > 0));
    let classify = root.find("extract.classify_series").expect("classify span");
    assert_eq!(classify.counter("frames").unwrap(), 5);
    assert!(classify.counter("voxels_classified").unwrap() >= 5 * 16 * 16 * 16);
    let mut epochs = Vec::new();
    root.find_all("nn.epoch", &mut epochs);
    assert_eq!(epochs.len(), 30, "one span per classifier training epoch");
    assert!(epochs.iter().all(|e| e.counter("samples").unwrap() == 120));
    let save = root.find("persist.save").expect("save span");
    assert!(save.find("persist.section.TRACKS").is_some());
    let to_bytes = root.find("persist.to_bytes").expect("to_bytes span");
    assert!(to_bytes.counter("bytes").unwrap() > 0);

    // Timings live only in the full rendering; stable zeroes them and drops
    // scheduling-dependent counters entirely.
    let stable = t4.to_stable();
    fn assert_stable(s: &obs::Span) {
        assert_eq!(s.dur_ns, 0);
        assert!(s.counters.iter().all(|c| !c.runtime));
        s.children.iter().for_each(assert_stable);
    }
    assert_stable(&stable.root);
}

// ---------------------------------------------------------------------------
// Trace schema stability
// ---------------------------------------------------------------------------

/// A hand-written v1 document. If the emitter or the strict reader drifts
/// (field added, removed, renamed, or reordered) without a schema bump, the
/// fixture stops parsing and this test names the drift.
const FIXTURE_V1: &str = r#"{"trace_schema":1,"mode":"stable","root":{"name":"r","dur_ns":0,"counters":[{"name":"c","value":3,"runtime":false}],"children":[{"name":"k","dur_ns":0,"counters":[],"children":[]}]}}"#;

#[test]
fn trace_schema_v1_fixture_parses() {
    assert_eq!(obs::TRACE_SCHEMA_VERSION, 1, "schema bump: update fixtures");
    let t = obs::Trace::from_json(FIXTURE_V1).unwrap();
    assert_eq!(t.schema, 1);
    assert_eq!(t.mode, obs::TraceMode::Stable);
    assert_eq!(t.root.counter("c"), Some(3));
    assert_eq!(t.root.children.len(), 1);
    // Emitting the parsed document reproduces the fixture byte-for-byte.
    assert_eq!(t.to_json(), FIXTURE_V1);
}

#[test]
fn trace_schema_drift_is_rejected() {
    // A newer schema version is refused outright.
    let newer = FIXTURE_V1.replace("\"trace_schema\":1", "\"trace_schema\":2");
    assert!(obs::Trace::from_json(&newer)
        .unwrap_err()
        .0
        .contains("newer"));

    // An unannounced extra field anywhere in the tree is refused.
    let extra_top = FIXTURE_V1.replace("\"mode\"", "\"extra\":0,\"mode\"");
    assert!(obs::Trace::from_json(&extra_top).is_err());
    let extra_span = FIXTURE_V1.replace("\"name\":\"k\"", "\"name\":\"k\",\"extra\":0");
    assert!(obs::Trace::from_json(&extra_span).is_err());
    let extra_counter = FIXTURE_V1.replace("\"runtime\":false", "\"runtime\":false,\"x\":1");
    assert!(obs::Trace::from_json(&extra_counter).is_err());

    // Field order is part of the schema (the emitter is deterministic);
    // silently reordering fields is also an unannounced change.
    let reordered = FIXTURE_V1.replace(
        "\"trace_schema\":1,\"mode\":\"stable\"",
        "\"mode\":\"stable\",\"trace_schema\":1",
    );
    assert!(obs::Trace::from_json(&reordered).is_err());

    // Wrong types and unknown modes are refused.
    let bad_mode = FIXTURE_V1.replace("\"stable\"", "\"fancy\"");
    assert!(obs::Trace::from_json(&bad_mode).is_err());
    let bad_dur = FIXTURE_V1.replace(
        "\"dur_ns\":0,\"counters\":[{",
        "\"dur_ns\":-1,\"counters\":[{",
    );
    assert!(obs::Trace::from_json(&bad_dur).is_err());
}

#[test]
fn emitted_traces_parse_under_the_strict_reader() {
    let (_, trace) = obs::capture("test.emit", || {
        let _s = obs::span("inner");
        obs::counter("det", 7);
        obs::counter_runtime("sched", 1);
    });
    for t in [trace.clone(), trace.to_stable()] {
        let back = obs::Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
        // Pretty output parses to the same document.
        assert_eq!(obs::Trace::from_json(&t.to_json_pretty()).unwrap(), t);
    }
}

// ---------------------------------------------------------------------------
// Artifact TRACE section
// ---------------------------------------------------------------------------

fn small_session() -> VisSession {
    let data = ifet_sim::shock_bubble(Dims3::cube(12), 0x31);
    let mut sess = VisSession::new(data.series).unwrap();
    let (seed, (lo, hi)) = hot_seed_band(sess.series());
    sess.run_track(CriterionSpec::FixedBand { lo, hi }, &[seed], None)
        .unwrap();
    sess
}

#[test]
fn artifact_trace_section_roundtrips_verbatim() {
    let (mut sess, trace) = obs::capture("test.artifact", small_session);

    // Without a summary no TRACE section is written at all.
    let plain = save_session_bytes(&sess);
    let r = ArtifactReader::parse(&plain).unwrap();
    assert!(!r.tags().any(|t| t == "TRACE"));

    let summary = trace.to_stable().to_json();
    sess.set_trace_summary(summary.clone()).unwrap();
    let bytes = save_session_bytes(&sess);
    let r = ArtifactReader::parse(&bytes).unwrap();
    assert_eq!(r.section("TRACE"), Some(summary.as_bytes()));

    // load → the summary comes back verbatim; re-save is byte-identical.
    let loaded = load_session_bytes(sess.series().clone(), &bytes).unwrap();
    assert_eq!(loaded.trace_summary(), Some(summary.as_str()));
    assert_eq!(save_session_bytes(&loaded), bytes);

    // Clearing drops the section again.
    let mut cleared = loaded;
    cleared.clear_trace_summary();
    assert_eq!(save_session_bytes(&cleared), plain);

    // Invalid JSON is refused at attach time, so it can never be saved.
    assert!(sess.set_trace_summary("{not json".into()).is_err());
}

#[test]
fn corrupt_trace_section_fails_loudly_at_load() {
    let (mut sess, trace) = obs::capture("test.corrupt", small_session);
    sess.set_trace_summary(trace.to_stable().to_json()).unwrap();
    let bytes = save_session_bytes(&sess);

    // Rebuild the artifact with the TRACE payload replaced by garbage (the
    // CRCs are recomputed by the writer, so only the trace itself is bad).
    let r = ArtifactReader::parse(&bytes).unwrap();
    for garbage in [&b"\xff\xfe"[..], &b"{\"trace_schema\":99}"[..]] {
        let mut w = ArtifactWriter::new();
        for tag in r.tags() {
            let payload = if tag == "TRACE" {
                garbage.to_vec()
            } else {
                r.section(tag).unwrap().to_vec()
            };
            w.add(tag, payload);
        }
        let err = load_session_bytes(sess.series().clone(), &w.to_bytes()).unwrap_err();
        match err {
            PersistError::Malformed { section, .. } => assert_eq!(section, "TRACE"),
            other => panic!("expected Malformed(TRACE), got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Multivariate classifier persistence
// ---------------------------------------------------------------------------

fn joint_scene(n: usize) -> (MultiSeries, Mask3) {
    let d = Dims3::cube(n);
    let third = n / 3;
    let var0 = ScalarVolume::from_fn(d, |x, _, _| if x < 2 * third { 1.0 } else { 0.0 });
    let var1 = ScalarVolume::from_fn(d, |x, _, _| if x >= third { 1.0 } else { 0.0 });
    let truth = Mask3::from_fn(d, |x, _, _| x >= third && x < 2 * third);
    let mut mv = MultiVolume::new(d);
    mv.add("a", var0);
    mv.add("b", var1);
    (MultiSeries::from_frames(vec![(0, mv)]), truth)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `train_multi` models ride through the session artifact: save → load →
    /// save is byte-identical and the reloaded classifier predicts the same.
    #[test]
    fn multi_classifier_sessions_roundtrip_byte_identically(
        paint_seed in 1u64..1000,
        hidden in 4usize..10,
        epochs in 5usize..40,
    ) {
        let (ms, truth) = joint_scene(12);
        let mut oracle = PaintOracle::new(paint_seed);
        oracle.slice_stride = 2;
        let paints = oracle.paint_from_truth(0, &truth, 40, 40);
        let fx = FeatureExtractor::new(FeatureSpec {
            shell: ShellMode::None,
            ..Default::default()
        });
        let clf = DataSpaceClassifier::train_multi(
            fx,
            &ms,
            &[paints],
            ClassifierParams { hidden, epochs, ..Default::default() },
        )
        .unwrap();
        prop_assert_eq!(clf.multi_vars(), Some(2));

        // Host the model in a session over a scalar series of the same dims.
        let data = ifet_sim::shock_bubble(Dims3::cube(12), 0x41);
        let mut sess = VisSession::new(data.series).unwrap();
        sess.adopt_classifier(clf.clone());

        let bytes = save_session_bytes(&sess);
        let loaded = load_session_bytes(sess.series().clone(), &bytes).unwrap();
        prop_assert_eq!(save_session_bytes(&loaded), bytes);

        let back = loaded.classifier().unwrap();
        prop_assert_eq!(back.multi_vars(), Some(2));
        let reloaded_out = back.classify_frame_multi(ms.frame(0), 0.0);
        let original_out = clf.classify_frame_multi(ms.frame(0), 0.0);
        prop_assert_eq!(reloaded_out.as_slice(), original_out.as_slice());
    }
}
