//! Dense 3D volumes.

use crate::dims::{Dims3, Ix3};
use serde::{Deserialize, Serialize};

/// A dense 3D grid of values laid out x-fastest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Volume<T> {
    dims: Dims3,
    data: Vec<T>,
}

/// The workhorse scalar field type of the workspace.
pub type ScalarVolume = Volume<f32>;

impl<T: Clone> Volume<T> {
    /// A volume filled with `fill`.
    pub fn filled(dims: Dims3, fill: T) -> Self {
        Self {
            dims,
            data: vec![fill; dims.len()],
        }
    }

    /// Wrap an existing buffer; `data.len()` must equal `dims.len()`.
    pub fn from_vec(dims: Dims3, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            dims.len(),
            "buffer length {} does not match dims {dims}",
            data.len()
        );
        Self { dims, data }
    }

    /// Build a volume by evaluating `f` at every voxel coordinate.
    pub fn from_fn(dims: Dims3, mut f: impl FnMut(usize, usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(dims.len());
        for z in 0..dims.nz {
            for y in 0..dims.ny {
                for x in 0..dims.nx {
                    data.push(f(x, y, z));
                }
            }
        }
        Self { dims, data }
    }
}

impl<T> Volume<T> {
    #[inline]
    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw slice in linear order.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw slice in linear order.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the raw buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> &T {
        &self.data[self.dims.index(x, y, z)]
    }

    #[inline]
    pub fn get_mut(&mut self, x: usize, y: usize, z: usize) -> &mut T {
        let i = self.dims.index(x, y, z);
        &mut self.data[i]
    }

    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: T) {
        let i = self.dims.index(x, y, z);
        self.data[i] = v;
    }

    /// Value at a signed coordinate, clamped to the boundary (Neumann).
    #[inline]
    pub fn get_clamped(&self, x: i64, y: i64, z: i64) -> &T {
        let (cx, cy, cz) = self.dims.clamp_i(x, y, z);
        self.get(cx, cy, cz)
    }

    /// Iterate `(coords, &value)` in linear order.
    pub fn iter(&self) -> impl Iterator<Item = (Ix3, &T)> {
        let dims = self.dims;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, v)| (dims.coords(i), v))
    }

    /// Map every voxel through `f` producing a new volume.
    pub fn map<U>(&self, f: impl Fn(&T) -> U) -> Volume<U> {
        Volume {
            dims: self.dims,
            data: self.data.iter().map(f).collect(),
        }
    }
}

impl<T> std::ops::Index<Ix3> for Volume<T> {
    type Output = T;
    #[inline]
    fn index(&self, (x, y, z): Ix3) -> &T {
        self.get(x, y, z)
    }
}

impl<T> std::ops::IndexMut<Ix3> for Volume<T> {
    #[inline]
    fn index_mut(&mut self, (x, y, z): Ix3) -> &mut T {
        self.get_mut(x, y, z)
    }
}

impl ScalarVolume {
    /// All-zero scalar volume.
    pub fn zeros(dims: Dims3) -> Self {
        Self::filled(dims, 0.0)
    }

    /// Minimum finite value (NaNs ignored); `None` for all-NaN data.
    pub fn min_value(&self) -> Option<f32> {
        self.data
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .fold(None, |m, v| Some(m.map_or(v, |m: f32| m.min(v))))
    }

    /// Maximum finite value (NaNs ignored).
    pub fn max_value(&self) -> Option<f32> {
        self.data
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .fold(None, |m, v| Some(m.map_or(v, |m: f32| m.max(v))))
    }

    /// `(min, max)` in one pass. Returns `(0, 0)` for pathological all-NaN data.
    pub fn value_range(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.data {
            if v.is_nan() {
                continue;
            }
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if lo > hi {
            (0.0, 0.0)
        } else {
            (lo, hi)
        }
    }

    /// Mean of all voxels.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        (self.data.iter().map(|&v| v as f64).sum::<f64>() / self.data.len() as f64) as f32
    }

    /// Rescale values linearly so the occupied range maps onto `[0, 1]`.
    /// A constant volume maps to all-zero.
    pub fn normalized(&self) -> ScalarVolume {
        let (lo, hi) = self.value_range();
        let span = hi - lo;
        if span <= 0.0 {
            return ScalarVolume::zeros(self.dims);
        }
        self.map(|&v| (v - lo) / span)
    }

    /// Extract the 2D axis-aligned slice `z = k` as `(nx, ny, row-major data)`.
    pub fn slice_z(&self, k: usize) -> (usize, usize, Vec<f32>) {
        assert!(k < self.dims.nz);
        let mut out = Vec::with_capacity(self.dims.nx * self.dims.ny);
        for y in 0..self.dims.ny {
            for x in 0..self.dims.nx {
                out.push(*self.get(x, y, k));
            }
        }
        (self.dims.nx, self.dims.ny, out)
    }

    /// Extract the slice `y = k` as `(nx, nz, row-major data)`.
    pub fn slice_y(&self, k: usize) -> (usize, usize, Vec<f32>) {
        assert!(k < self.dims.ny);
        let mut out = Vec::with_capacity(self.dims.nx * self.dims.nz);
        for z in 0..self.dims.nz {
            for x in 0..self.dims.nx {
                out.push(*self.get(x, k, z));
            }
        }
        (self.dims.nx, self.dims.nz, out)
    }

    /// Extract the slice `x = k` as `(ny, nz, row-major data)`.
    pub fn slice_x(&self, k: usize) -> (usize, usize, Vec<f32>) {
        assert!(k < self.dims.nx);
        let mut out = Vec::with_capacity(self.dims.ny * self.dims.nz);
        for z in 0..self.dims.nz {
            for y in 0..self.dims.ny {
                out.push(*self.get(k, y, z));
            }
        }
        (self.dims.ny, self.dims.nz, out)
    }

    /// Sum of all voxel values ("mass").
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> ScalarVolume {
        ScalarVolume::from_fn(Dims3::new(3, 4, 5), |x, y, z| (x + 10 * y + 100 * z) as f32)
    }

    #[test]
    fn from_fn_and_index_agree() {
        let v = ramp();
        assert_eq!(*v.get(2, 3, 4), 432.0);
        assert_eq!(v[(1, 0, 0)], 1.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_length_mismatch_panics() {
        let _ = ScalarVolume::from_vec(Dims3::cube(2), vec![0.0; 7]);
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut v = ScalarVolume::zeros(Dims3::cube(3));
        v.set(1, 2, 0, 7.5);
        assert_eq!(*v.get(1, 2, 0), 7.5);
        v[(0, 0, 2)] = -1.0;
        assert_eq!(v[(0, 0, 2)], -1.0);
    }

    #[test]
    fn clamped_access() {
        let v = ramp();
        assert_eq!(*v.get_clamped(-3, 0, 0), 0.0);
        assert_eq!(*v.get_clamped(99, 3, 4), 432.0);
    }

    #[test]
    fn min_max_mean() {
        let v = ramp();
        assert_eq!(v.min_value(), Some(0.0));
        assert_eq!(v.max_value(), Some(432.0));
        let (lo, hi) = v.value_range();
        assert_eq!((lo, hi), (0.0, 432.0));
        assert!(v.mean() > 0.0);
    }

    #[test]
    fn nan_handling_in_range() {
        let mut v = ScalarVolume::zeros(Dims3::cube(2));
        v.set(0, 0, 0, f32::NAN);
        v.set(1, 0, 0, 3.0);
        assert_eq!(v.value_range(), (0.0, 3.0));
    }

    #[test]
    fn normalized_maps_to_unit_interval() {
        let v = ramp().normalized();
        let (lo, hi) = v.value_range();
        assert!((lo - 0.0).abs() < 1e-6 && (hi - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalized_constant_is_zero() {
        let v = ScalarVolume::filled(Dims3::cube(2), 5.0).normalized();
        assert_eq!(v.value_range(), (0.0, 0.0));
    }

    #[test]
    fn slices_have_expected_shapes_and_values() {
        let v = ramp();
        let (w, h, s) = v.slice_z(2);
        assert_eq!((w, h), (3, 4));
        assert_eq!(s[0], 200.0);
        let (w, h, s) = v.slice_y(1);
        assert_eq!((w, h), (3, 5));
        assert_eq!(s[0], 10.0);
        let (w, h, s) = v.slice_x(2);
        assert_eq!((w, h), (4, 5));
        assert_eq!(s[0], 2.0);
    }

    #[test]
    fn map_preserves_dims() {
        let v = ramp().map(|&x| x * 2.0);
        assert_eq!(v.dims(), Dims3::new(3, 4, 5));
        assert_eq!(*v.get(1, 0, 0), 2.0);
    }

    #[test]
    fn iter_matches_get() {
        let v = ramp();
        for ((x, y, z), &val) in v.iter() {
            assert_eq!(val, *v.get(x, y, z));
        }
    }

    #[test]
    fn sum_of_ones_is_len() {
        let v = ScalarVolume::filled(Dims3::cube(4), 1.0);
        assert_eq!(v.sum(), 64.0);
    }
}
