//! Dense 3D volumes.

use crate::dims::{Dims3, Ix3};
use crate::mmapio::Mapping;
use serde::{Deserialize, Serialize};
use std::marker::PhantomData;
use std::sync::Arc;

/// Voxel storage: an owned heap buffer, or a read-only view over a shared
/// file mapping (see [`crate::mmapio`]). Mapped storage is only ever
/// constructed for plain-old-data element types (`f32`), checked at the
/// sole construction site ([`ScalarVolume::from_mapping`]); any request for
/// mutable access transparently copies to owned storage first.
enum Store<T> {
    Owned(Vec<T>),
    Mapped(MappedStore<T>),
}

/// A typed view over a whole [`Mapping`]. Alignment and length are
/// validated at construction; the `Arc` keeps the pages mapped for as long
/// as any clone of the volume lives.
struct MappedStore<T> {
    map: Arc<Mapping>,
    _t: PhantomData<T>,
}

impl<T> MappedStore<T> {
    fn as_slice(&self) -> &[T] {
        let bytes = self.map.as_bytes();
        debug_assert_eq!(bytes.len() % std::mem::size_of::<T>(), 0);
        // Safety: construction checked alignment and size; mapped stores
        // hold only POD element types, and the mapping is immutable and
        // outlives `self`.
        unsafe {
            std::slice::from_raw_parts(
                bytes.as_ptr() as *const T,
                bytes.len() / std::mem::size_of::<T>(),
            )
        }
    }
}

impl<T> Store<T> {
    #[inline]
    fn as_slice(&self) -> &[T] {
        match self {
            Store::Owned(v) => v,
            Store::Mapped(m) => m.as_slice(),
        }
    }

    /// Mutable access, copying mapped storage to an owned buffer first
    /// (copy-on-write: the mapping itself is never written through).
    fn make_owned(&mut self) -> &mut Vec<T> {
        if let Store::Mapped(m) = self {
            let src = m.as_slice();
            let mut v: Vec<T> = Vec::with_capacity(src.len());
            // Safety: mapped stores hold only POD elements (construction
            // invariant), so a bitwise copy is a valid duplication.
            unsafe {
                std::ptr::copy_nonoverlapping(src.as_ptr(), v.as_mut_ptr(), src.len());
                v.set_len(src.len());
            }
            *self = Store::Owned(v);
        }
        match self {
            Store::Owned(v) => v,
            Store::Mapped(_) => unreachable!(),
        }
    }

    fn into_vec(mut self) -> Vec<T> {
        self.make_owned();
        match self {
            Store::Owned(v) => v,
            Store::Mapped(_) => unreachable!(),
        }
    }
}

impl<T: Clone> Clone for Store<T> {
    fn clone(&self) -> Self {
        match self {
            Store::Owned(v) => Store::Owned(v.clone()),
            // Cloning a mapped volume shares the mapping (cheap); the clone
            // copies itself to owned storage only if mutated.
            Store::Mapped(m) => Store::Mapped(MappedStore {
                map: Arc::clone(&m.map),
                _t: PhantomData,
            }),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Store<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: PartialEq> PartialEq for Store<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Serialize> Serialize for Store<T> {
    fn to_value(&self) -> serde::Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Store<T> {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Vec::<T>::from_value(v).map(Store::Owned)
    }
}

/// A dense 3D grid of values laid out x-fastest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Volume<T> {
    dims: Dims3,
    data: Store<T>,
}

/// The workhorse scalar field type of the workspace.
pub type ScalarVolume = Volume<f32>;

impl<T: Clone> Volume<T> {
    /// A volume filled with `fill`.
    pub fn filled(dims: Dims3, fill: T) -> Self {
        Self {
            dims,
            data: Store::Owned(vec![fill; dims.len()]),
        }
    }

    /// Wrap an existing buffer; `data.len()` must equal `dims.len()`.
    pub fn from_vec(dims: Dims3, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            dims.len(),
            "buffer length {} does not match dims {dims}",
            data.len()
        );
        Self {
            dims,
            data: Store::Owned(data),
        }
    }

    /// Build a volume by evaluating `f` at every voxel coordinate.
    pub fn from_fn(dims: Dims3, mut f: impl FnMut(usize, usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(dims.len());
        for z in 0..dims.nz {
            for y in 0..dims.ny {
                for x in 0..dims.nx {
                    data.push(f(x, y, z));
                }
            }
        }
        Self {
            dims,
            data: Store::Owned(data),
        }
    }
}

impl<T> Volume<T> {
    #[inline]
    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Raw slice in linear order.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        self.data.as_slice()
    }

    /// Mutable raw slice in linear order. A mapped volume copies itself to
    /// owned storage first (the file mapping is never written through).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        self.data.make_owned()
    }

    /// Consume into the raw buffer (copying if the storage was mapped).
    pub fn into_vec(self) -> Vec<T> {
        self.data.into_vec()
    }

    /// Whether the voxels live in a shared file mapping rather than an
    /// owned buffer (see [`crate::mmapio`]).
    #[inline]
    pub fn is_mapped(&self) -> bool {
        matches!(self.data, Store::Mapped(_))
    }

    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> &T {
        &self.as_slice()[self.dims.index(x, y, z)]
    }

    #[inline]
    pub fn get_mut(&mut self, x: usize, y: usize, z: usize) -> &mut T {
        let i = self.dims.index(x, y, z);
        &mut self.data.make_owned()[i]
    }

    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: T) {
        let i = self.dims.index(x, y, z);
        self.data.make_owned()[i] = v;
    }

    /// Value at a signed coordinate, clamped to the boundary (Neumann).
    #[inline]
    pub fn get_clamped(&self, x: i64, y: i64, z: i64) -> &T {
        let (cx, cy, cz) = self.dims.clamp_i(x, y, z);
        self.get(cx, cy, cz)
    }

    /// Iterate `(coords, &value)` in linear order.
    pub fn iter(&self) -> impl Iterator<Item = (Ix3, &T)> {
        let dims = self.dims;
        self.as_slice()
            .iter()
            .enumerate()
            .map(move |(i, v)| (dims.coords(i), v))
    }

    /// Map every voxel through `f` producing a new volume.
    pub fn map<U>(&self, f: impl Fn(&T) -> U) -> Volume<U> {
        Volume {
            dims: self.dims,
            data: Store::Owned(self.as_slice().iter().map(f).collect()),
        }
    }
}

impl<T> std::ops::Index<Ix3> for Volume<T> {
    type Output = T;
    #[inline]
    fn index(&self, (x, y, z): Ix3) -> &T {
        self.get(x, y, z)
    }
}

impl<T> std::ops::IndexMut<Ix3> for Volume<T> {
    #[inline]
    fn index_mut(&mut self, (x, y, z): Ix3) -> &mut T {
        self.get_mut(x, y, z)
    }
}

impl ScalarVolume {
    /// All-zero scalar volume.
    pub fn zeros(dims: Dims3) -> Self {
        Self::filled(dims, 0.0)
    }

    /// Build a volume whose voxels are a zero-copy view over a file
    /// mapping. `None` when the mapping is misaligned for `f32` or its
    /// byte length does not equal `dims.len() * 4`.
    pub fn from_mapping(dims: Dims3, map: Arc<Mapping>) -> Option<Self> {
        let floats = map.as_f32s()?;
        if floats.len() != dims.len() {
            return None;
        }
        Some(Self {
            dims,
            data: Store::Mapped(MappedStore {
                map,
                _t: PhantomData,
            }),
        })
    }

    /// Minimum finite value (NaNs ignored); `None` for all-NaN data.
    pub fn min_value(&self) -> Option<f32> {
        self.as_slice()
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .fold(None, |m, v| Some(m.map_or(v, |m: f32| m.min(v))))
    }

    /// Maximum finite value (NaNs ignored).
    pub fn max_value(&self) -> Option<f32> {
        self.as_slice()
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .fold(None, |m, v| Some(m.map_or(v, |m: f32| m.max(v))))
    }

    /// `(min, max)` in one pass. Returns `(0, 0)` for pathological all-NaN data.
    pub fn value_range(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in self.as_slice() {
            if v.is_nan() {
                continue;
            }
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if lo > hi {
            (0.0, 0.0)
        } else {
            (lo, hi)
        }
    }

    /// Mean of all voxels.
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        (self.as_slice().iter().map(|&v| v as f64).sum::<f64>() / self.len() as f64) as f32
    }

    /// Rescale values linearly so the occupied range maps onto `[0, 1]`.
    /// A constant volume maps to all-zero.
    pub fn normalized(&self) -> ScalarVolume {
        let (lo, hi) = self.value_range();
        let span = hi - lo;
        if span <= 0.0 {
            return ScalarVolume::zeros(self.dims);
        }
        self.map(|&v| (v - lo) / span)
    }

    /// Extract the 2D axis-aligned slice `z = k` as `(nx, ny, row-major data)`.
    pub fn slice_z(&self, k: usize) -> (usize, usize, Vec<f32>) {
        assert!(k < self.dims.nz);
        let mut out = Vec::with_capacity(self.dims.nx * self.dims.ny);
        for y in 0..self.dims.ny {
            for x in 0..self.dims.nx {
                out.push(*self.get(x, y, k));
            }
        }
        (self.dims.nx, self.dims.ny, out)
    }

    /// Extract the slice `y = k` as `(nx, nz, row-major data)`.
    pub fn slice_y(&self, k: usize) -> (usize, usize, Vec<f32>) {
        assert!(k < self.dims.ny);
        let mut out = Vec::with_capacity(self.dims.nx * self.dims.nz);
        for z in 0..self.dims.nz {
            for x in 0..self.dims.nx {
                out.push(*self.get(x, k, z));
            }
        }
        (self.dims.nx, self.dims.nz, out)
    }

    /// Extract the slice `x = k` as `(ny, nz, row-major data)`.
    pub fn slice_x(&self, k: usize) -> (usize, usize, Vec<f32>) {
        assert!(k < self.dims.nx);
        let mut out = Vec::with_capacity(self.dims.ny * self.dims.nz);
        for z in 0..self.dims.nz {
            for y in 0..self.dims.ny {
                out.push(*self.get(k, y, z));
            }
        }
        (self.dims.ny, self.dims.nz, out)
    }

    /// Sum of all voxel values ("mass").
    pub fn sum(&self) -> f64 {
        self.as_slice().iter().map(|&v| v as f64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> ScalarVolume {
        ScalarVolume::from_fn(Dims3::new(3, 4, 5), |x, y, z| (x + 10 * y + 100 * z) as f32)
    }

    #[test]
    fn from_fn_and_index_agree() {
        let v = ramp();
        assert_eq!(*v.get(2, 3, 4), 432.0);
        assert_eq!(v[(1, 0, 0)], 1.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_length_mismatch_panics() {
        let _ = ScalarVolume::from_vec(Dims3::cube(2), vec![0.0; 7]);
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut v = ScalarVolume::zeros(Dims3::cube(3));
        v.set(1, 2, 0, 7.5);
        assert_eq!(*v.get(1, 2, 0), 7.5);
        v[(0, 0, 2)] = -1.0;
        assert_eq!(v[(0, 0, 2)], -1.0);
    }

    #[test]
    fn clamped_access() {
        let v = ramp();
        assert_eq!(*v.get_clamped(-3, 0, 0), 0.0);
        assert_eq!(*v.get_clamped(99, 3, 4), 432.0);
    }

    #[test]
    fn min_max_mean() {
        let v = ramp();
        assert_eq!(v.min_value(), Some(0.0));
        assert_eq!(v.max_value(), Some(432.0));
        let (lo, hi) = v.value_range();
        assert_eq!((lo, hi), (0.0, 432.0));
        assert!(v.mean() > 0.0);
    }

    #[test]
    fn nan_handling_in_range() {
        let mut v = ScalarVolume::zeros(Dims3::cube(2));
        v.set(0, 0, 0, f32::NAN);
        v.set(1, 0, 0, 3.0);
        assert_eq!(v.value_range(), (0.0, 3.0));
    }

    #[test]
    fn normalized_maps_to_unit_interval() {
        let v = ramp().normalized();
        let (lo, hi) = v.value_range();
        assert!((lo - 0.0).abs() < 1e-6 && (hi - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalized_constant_is_zero() {
        let v = ScalarVolume::filled(Dims3::cube(2), 5.0).normalized();
        assert_eq!(v.value_range(), (0.0, 0.0));
    }

    #[test]
    fn slices_have_expected_shapes_and_values() {
        let v = ramp();
        let (w, h, s) = v.slice_z(2);
        assert_eq!((w, h), (3, 4));
        assert_eq!(s[0], 200.0);
        let (w, h, s) = v.slice_y(1);
        assert_eq!((w, h), (3, 5));
        assert_eq!(s[0], 10.0);
        let (w, h, s) = v.slice_x(2);
        assert_eq!((w, h), (4, 5));
        assert_eq!(s[0], 2.0);
    }

    #[test]
    fn map_preserves_dims() {
        let v = ramp().map(|&x| x * 2.0);
        assert_eq!(v.dims(), Dims3::new(3, 4, 5));
        assert_eq!(*v.get(1, 0, 0), 2.0);
    }

    #[test]
    fn iter_matches_get() {
        let v = ramp();
        for ((x, y, z), &val) in v.iter() {
            assert_eq!(val, *v.get(x, y, z));
        }
    }

    #[test]
    fn sum_of_ones_is_len() {
        let v = ScalarVolume::filled(Dims3::cube(4), 1.0);
        assert_eq!(v.sum(), 64.0);
    }
}
