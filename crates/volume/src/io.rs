//! Volume I/O: raw little-endian `f32` bricks with a JSON sidecar, the common
//! interchange format for scientific volume data (value-compatible with the
//! `.raw` + metadata convention used by most volume renderers).
//!
//! Frames come in two on-disk flavors, distinguished by the sidecar
//! `dtype`: `"f32le"` is the raw payload (`.raw`), and [`crate::codec::DTYPE`]
//! is the bricked compressed container (`.rawz`, written by
//! [`write_compressed`]). [`read_frame`] dispatches on the sidecar, so
//! readers are agnostic to how a series was written.

use crate::codec;
use crate::dims::Dims3;
use crate::series::TimeSeries;
use crate::volume::ScalarVolume;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Sidecar metadata for a raw volume file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VolumeMeta {
    pub dims: Dims3,
    /// Value type; only `"f32le"` is produced/consumed.
    pub dtype: String,
    /// Optional time-step label.
    pub step: Option<u32>,
    /// Optional variable name.
    pub variable: Option<String>,
}

impl VolumeMeta {
    pub fn new(dims: Dims3) -> Self {
        Self {
            dims,
            dtype: "f32le".to_string(),
            step: None,
            variable: None,
        }
    }
}

/// Errors raised by volume I/O.
#[derive(Debug)]
pub enum IoError {
    Io(io::Error),
    Json(serde_json::Error),
    /// The file length does not match `dims.len() * 4`.
    SizeMismatch {
        expected: usize,
        got: usize,
    },
    /// Unsupported `dtype` in the sidecar.
    UnsupportedDtype(String),
    /// A compressed frame failed to decode (corruption or truncation).
    Codec(codec::CodecError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Json(e) => write!(f, "metadata error: {e}"),
            IoError::SizeMismatch { expected, got } => {
                write!(f, "raw size mismatch: expected {expected} bytes, got {got}")
            }
            IoError::UnsupportedDtype(d) => write!(f, "unsupported dtype {d:?}"),
            IoError::Codec(e) => write!(f, "compressed frame error: {e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

impl From<codec::CodecError> for IoError {
    fn from(e: codec::CodecError) -> Self {
        IoError::Codec(e)
    }
}

fn sidecar_path(raw: &Path) -> PathBuf {
    let mut p = raw.as_os_str().to_owned();
    p.push(".json");
    PathBuf::from(p)
}

/// Read just the `<path>.json` sidecar of a frame file.
pub fn read_sidecar(path: &Path) -> Result<VolumeMeta, IoError> {
    let side = File::open(sidecar_path(path))?;
    Ok(serde_json::from_reader(BufReader::new(side))?)
}

/// Write a volume as raw little-endian f32 plus a `<path>.json` sidecar.
pub fn write_raw(path: &Path, vol: &ScalarVolume, meta: &VolumeMeta) -> Result<(), IoError> {
    assert_eq!(vol.dims(), meta.dims, "meta dims must match volume dims");
    let _span = ifet_obs::span("volume.io.write");
    ifet_obs::counter_runtime("volume.io.bytes_written", (vol.dims().len() * 4) as u64);
    let mut w = BufWriter::new(File::create(path)?);
    for &v in vol.as_slice() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    let side = File::create(sidecar_path(path))?;
    serde_json::to_writer_pretty(BufWriter::new(side), meta)?;
    Ok(())
}

/// Write a volume as a bricked compressed container (see [`crate::codec`])
/// plus a `<path>.json` sidecar whose `dtype` is [`codec::DTYPE`]. The
/// caller's `meta.dtype` is overridden; everything else is preserved.
pub fn write_compressed(path: &Path, vol: &ScalarVolume, meta: &VolumeMeta) -> Result<(), IoError> {
    assert_eq!(vol.dims(), meta.dims, "meta dims must match volume dims");
    let _span = ifet_obs::span("volume.io.write");
    let encoded = codec::encode_frame(vol.as_slice());
    ifet_obs::counter_runtime("volume.io.bytes_written", encoded.len() as u64);
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&encoded)?;
    w.flush()?;
    let mut meta = meta.clone();
    meta.dtype = codec::DTYPE.to_string();
    let side = File::create(sidecar_path(path))?;
    serde_json::to_writer_pretty(BufWriter::new(side), &meta)?;
    Ok(())
}

/// Read a volume written by [`write_raw`]. The sidecar supplies dimensions.
pub fn read_raw(path: &Path) -> Result<(ScalarVolume, VolumeMeta), IoError> {
    // Runtime counters only — no span. Read counts depend on the paging
    // schedule (an out-of-core run re-reads evicted frames), and spans
    // survive `to_stable`, so a per-read span would make stable traces
    // differ across cache capacities.
    let meta = read_sidecar(path)?;
    if meta.dtype != "f32le" {
        return Err(IoError::UnsupportedDtype(meta.dtype.clone()));
    }
    read_raw_payload(path, meta)
}

fn read_raw_payload(path: &Path, meta: VolumeMeta) -> Result<(ScalarVolume, VolumeMeta), IoError> {
    let mut bytes = Vec::new();
    BufReader::new(File::open(path)?).read_to_end(&mut bytes)?;
    let expected = meta.dims.len() * 4;
    if bytes.len() != expected {
        return Err(IoError::SizeMismatch {
            expected,
            got: bytes.len(),
        });
    }
    let data: Vec<f32> = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    ifet_obs::counter_runtime("volume.io.bytes_read", expected as u64);
    Ok((ScalarVolume::from_vec(meta.dims, data), meta))
}

fn read_compressed_payload(
    path: &Path,
    meta: VolumeMeta,
) -> Result<(ScalarVolume, VolumeMeta), IoError> {
    let mut bytes = Vec::new();
    BufReader::new(File::open(path)?).read_to_end(&mut bytes)?;
    ifet_obs::counter_runtime("volume.io.bytes_read", bytes.len() as u64);
    let data = codec::decode_frame(&bytes, meta.dims.len())?;
    Ok((ScalarVolume::from_vec(meta.dims, data), meta))
}

/// Read a frame of either flavor, dispatching on the sidecar `dtype`:
/// raw `"f32le"` payloads and [`codec::DTYPE`] compressed containers.
pub fn read_frame(path: &Path) -> Result<(ScalarVolume, VolumeMeta), IoError> {
    let meta = read_sidecar(path)?;
    match meta.dtype.as_str() {
        "f32le" => read_raw_payload(path, meta),
        codec::DTYPE => read_compressed_payload(path, meta),
        _ => Err(IoError::UnsupportedDtype(meta.dtype.clone())),
    }
}

/// Write every frame of a series as `prefix_t<step>.raw` (+ sidecars).
/// Returns the written paths.
pub fn write_series(
    dir: &Path,
    prefix: &str,
    series: &TimeSeries,
) -> Result<Vec<PathBuf>, IoError> {
    write_series_with(dir, prefix, series, false)
}

/// [`write_series`] with a choice of on-disk format: `compress = true`
/// writes bricked compressed `prefix_t<step>.rawz` containers (see
/// [`crate::codec`]) instead of raw `.raw` payloads. Either flavor reads
/// back through [`read_series`] / [`read_frame`] with bit-identical voxels.
pub fn write_series_with(
    dir: &Path,
    prefix: &str,
    series: &TimeSeries,
    compress: bool,
) -> Result<Vec<PathBuf>, IoError> {
    std::fs::create_dir_all(dir)?;
    let ext = if compress { "rawz" } else { "raw" };
    let mut paths = Vec::new();
    for (t, frame) in series.iter() {
        let p = dir.join(format!("{prefix}_t{t:05}.{ext}"));
        let mut meta = VolumeMeta::new(frame.dims());
        meta.step = Some(t);
        if compress {
            write_compressed(&p, frame, &meta)?;
        } else {
            write_raw(&p, frame, &meta)?;
        }
        paths.push(p);
    }
    Ok(paths)
}

/// Read a series back from the paths produced by [`write_series`] or
/// [`write_series_with`] (any order; frames are sorted by their sidecar
/// step labels; raw and compressed frames may mix).
pub fn read_series(paths: &[PathBuf]) -> Result<TimeSeries, IoError> {
    let mut frames = Vec::new();
    for p in paths {
        let (vol, meta) = read_frame(p)?;
        frames.push((meta.step.unwrap_or(frames.len() as u32), vol));
    }
    frames.sort_by_key(|(t, _)| *t);
    Ok(TimeSeries::from_frames(frames))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::env;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = env::temp_dir().join(format!("ifet_io_test_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn roundtrip_volume() {
        let dir = tmpdir("vol");
        let v = ScalarVolume::from_fn(Dims3::new(3, 4, 5), |x, y, z| {
            x as f32 + 0.5 * y as f32 - z as f32
        });
        let p = dir.join("v.raw");
        let mut meta = VolumeMeta::new(v.dims());
        meta.variable = Some("density".into());
        write_raw(&p, &v, &meta).unwrap();
        let (back, meta2) = read_raw(&p).unwrap();
        assert_eq!(back, v);
        assert_eq!(meta2.variable.as_deref(), Some("density"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn size_mismatch_detected() {
        let dir = tmpdir("bad");
        let v = ScalarVolume::zeros(Dims3::cube(2));
        let p = dir.join("v.raw");
        write_raw(&p, &v, &VolumeMeta::new(v.dims())).unwrap();
        // Corrupt: truncate the raw file.
        std::fs::write(&p, [0u8; 4]).unwrap();
        match read_raw(&p) {
            Err(IoError::SizeMismatch { expected, got }) => {
                assert_eq!(expected, 32);
                assert_eq!(got, 4);
            }
            other => panic!("expected SizeMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn unsupported_dtype_rejected() {
        let dir = tmpdir("dtype");
        let v = ScalarVolume::zeros(Dims3::cube(2));
        let p = dir.join("v.raw");
        let mut meta = VolumeMeta::new(v.dims());
        write_raw(&p, &v, &meta).unwrap();
        meta.dtype = "u8".to_string();
        std::fs::write(sidecar_path(&p), serde_json::to_string(&meta).unwrap()).unwrap();
        assert!(matches!(read_raw(&p), Err(IoError::UnsupportedDtype(_))));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn roundtrip_series() {
        let dir = tmpdir("series");
        let d = Dims3::cube(3);
        let s = TimeSeries::from_frames(vec![
            (5, ScalarVolume::filled(d, 1.0)),
            (10, ScalarVolume::filled(d, 2.0)),
        ]);
        let paths = write_series(&dir, "test", &s).unwrap();
        assert_eq!(paths.len(), 2);
        let back = read_series(&paths).unwrap();
        assert_eq!(back, s);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let p = PathBuf::from("/nonexistent/ifet/v.raw");
        assert!(matches!(read_raw(&p), Err(IoError::Io(_))));
    }

    #[test]
    fn compressed_roundtrip_is_bit_identical() {
        let dir = tmpdir("z");
        let v = ScalarVolume::from_fn(Dims3::new(7, 5, 3), |x, y, z| {
            (x as f32 * 0.5 - y as f32).powi(2) + z as f32
        });
        let p = dir.join("v.rawz");
        write_compressed(&p, &v, &VolumeMeta::new(v.dims())).unwrap();
        let (back, meta) = read_frame(&p).unwrap();
        assert_eq!(meta.dtype, crate::codec::DTYPE);
        for (a, b) in v.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // The strict raw reader refuses the compressed flavor.
        assert!(matches!(read_raw(&p), Err(IoError::UnsupportedDtype(_))));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn compressed_series_roundtrips_and_shrinks() {
        let dir = tmpdir("zseries");
        let d = Dims3::cube(12);
        let s = TimeSeries::from_frames(
            (0..3u32)
                .map(|k| {
                    (
                        k * 2,
                        ScalarVolume::from_fn(d, move |x, y, z| (x + y + z) as f32 + k as f32),
                    )
                })
                .collect(),
        );
        let paths = write_series_with(&dir, "v", &s, true).unwrap();
        assert!(paths.iter().all(|p| p.extension().unwrap() == "rawz"));
        assert_eq!(read_series(&paths).unwrap(), s);
        let raw_bytes = (d.len() * 4) as u64;
        for p in &paths {
            assert!(
                std::fs::metadata(p).unwrap().len() < raw_bytes,
                "smooth frame must compress below {raw_bytes} bytes"
            );
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn corrupted_compressed_frame_is_codec_error() {
        let dir = tmpdir("zbad");
        let v = ScalarVolume::from_fn(Dims3::cube(4), |x, _, _| x as f32);
        let p = dir.join("v.rawz");
        write_compressed(&p, &v, &VolumeMeta::new(v.dims())).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(read_frame(&p), Err(IoError::Codec(_))));
        std::fs::remove_dir_all(dir).ok();
    }
}
