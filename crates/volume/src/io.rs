//! Volume I/O: raw little-endian `f32` bricks with a JSON sidecar, the common
//! interchange format for scientific volume data (value-compatible with the
//! `.raw` + metadata convention used by most volume renderers).

use crate::dims::Dims3;
use crate::series::TimeSeries;
use crate::volume::ScalarVolume;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Sidecar metadata for a raw volume file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VolumeMeta {
    pub dims: Dims3,
    /// Value type; only `"f32le"` is produced/consumed.
    pub dtype: String,
    /// Optional time-step label.
    pub step: Option<u32>,
    /// Optional variable name.
    pub variable: Option<String>,
}

impl VolumeMeta {
    pub fn new(dims: Dims3) -> Self {
        Self {
            dims,
            dtype: "f32le".to_string(),
            step: None,
            variable: None,
        }
    }
}

/// Errors raised by volume I/O.
#[derive(Debug)]
pub enum IoError {
    Io(io::Error),
    Json(serde_json::Error),
    /// The file length does not match `dims.len() * 4`.
    SizeMismatch {
        expected: usize,
        got: usize,
    },
    /// Unsupported `dtype` in the sidecar.
    UnsupportedDtype(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Json(e) => write!(f, "metadata error: {e}"),
            IoError::SizeMismatch { expected, got } => {
                write!(f, "raw size mismatch: expected {expected} bytes, got {got}")
            }
            IoError::UnsupportedDtype(d) => write!(f, "unsupported dtype {d:?}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

fn sidecar_path(raw: &Path) -> PathBuf {
    let mut p = raw.as_os_str().to_owned();
    p.push(".json");
    PathBuf::from(p)
}

/// Write a volume as raw little-endian f32 plus a `<path>.json` sidecar.
pub fn write_raw(path: &Path, vol: &ScalarVolume, meta: &VolumeMeta) -> Result<(), IoError> {
    assert_eq!(vol.dims(), meta.dims, "meta dims must match volume dims");
    let _span = ifet_obs::span("volume.io.write");
    ifet_obs::counter_runtime("volume.io.bytes_written", (vol.dims().len() * 4) as u64);
    let mut w = BufWriter::new(File::create(path)?);
    for &v in vol.as_slice() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    let side = File::create(sidecar_path(path))?;
    serde_json::to_writer_pretty(BufWriter::new(side), meta)?;
    Ok(())
}

/// Read a volume written by [`write_raw`]. The sidecar supplies dimensions.
pub fn read_raw(path: &Path) -> Result<(ScalarVolume, VolumeMeta), IoError> {
    // Runtime counters only — no span. Read counts depend on the paging
    // schedule (an out-of-core run re-reads evicted frames), and spans
    // survive `to_stable`, so a per-read span would make stable traces
    // differ across cache capacities.
    let side = File::open(sidecar_path(path))?;
    let meta: VolumeMeta = serde_json::from_reader(BufReader::new(side))?;
    if meta.dtype != "f32le" {
        return Err(IoError::UnsupportedDtype(meta.dtype.clone()));
    }
    let mut bytes = Vec::new();
    BufReader::new(File::open(path)?).read_to_end(&mut bytes)?;
    let expected = meta.dims.len() * 4;
    if bytes.len() != expected {
        return Err(IoError::SizeMismatch {
            expected,
            got: bytes.len(),
        });
    }
    let data: Vec<f32> = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    ifet_obs::counter_runtime("volume.io.bytes_read", expected as u64);
    Ok((ScalarVolume::from_vec(meta.dims, data), meta))
}

/// Write every frame of a series as `prefix_t<step>.raw` (+ sidecars).
/// Returns the written paths.
pub fn write_series(
    dir: &Path,
    prefix: &str,
    series: &TimeSeries,
) -> Result<Vec<PathBuf>, IoError> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::new();
    for (t, frame) in series.iter() {
        let p = dir.join(format!("{prefix}_t{t:05}.raw"));
        let mut meta = VolumeMeta::new(frame.dims());
        meta.step = Some(t);
        write_raw(&p, frame, &meta)?;
        paths.push(p);
    }
    Ok(paths)
}

/// Read a series back from the paths produced by [`write_series`]
/// (any order; frames are sorted by their sidecar step labels).
pub fn read_series(paths: &[PathBuf]) -> Result<TimeSeries, IoError> {
    let mut frames = Vec::new();
    for p in paths {
        let (vol, meta) = read_raw(p)?;
        frames.push((meta.step.unwrap_or(frames.len() as u32), vol));
    }
    frames.sort_by_key(|(t, _)| *t);
    Ok(TimeSeries::from_frames(frames))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::env;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = env::temp_dir().join(format!("ifet_io_test_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn roundtrip_volume() {
        let dir = tmpdir("vol");
        let v = ScalarVolume::from_fn(Dims3::new(3, 4, 5), |x, y, z| {
            x as f32 + 0.5 * y as f32 - z as f32
        });
        let p = dir.join("v.raw");
        let mut meta = VolumeMeta::new(v.dims());
        meta.variable = Some("density".into());
        write_raw(&p, &v, &meta).unwrap();
        let (back, meta2) = read_raw(&p).unwrap();
        assert_eq!(back, v);
        assert_eq!(meta2.variable.as_deref(), Some("density"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn size_mismatch_detected() {
        let dir = tmpdir("bad");
        let v = ScalarVolume::zeros(Dims3::cube(2));
        let p = dir.join("v.raw");
        write_raw(&p, &v, &VolumeMeta::new(v.dims())).unwrap();
        // Corrupt: truncate the raw file.
        std::fs::write(&p, [0u8; 4]).unwrap();
        match read_raw(&p) {
            Err(IoError::SizeMismatch { expected, got }) => {
                assert_eq!(expected, 32);
                assert_eq!(got, 4);
            }
            other => panic!("expected SizeMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn unsupported_dtype_rejected() {
        let dir = tmpdir("dtype");
        let v = ScalarVolume::zeros(Dims3::cube(2));
        let p = dir.join("v.raw");
        let mut meta = VolumeMeta::new(v.dims());
        write_raw(&p, &v, &meta).unwrap();
        meta.dtype = "u8".to_string();
        std::fs::write(sidecar_path(&p), serde_json::to_string(&meta).unwrap()).unwrap();
        assert!(matches!(read_raw(&p), Err(IoError::UnsupportedDtype(_))));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn roundtrip_series() {
        let dir = tmpdir("series");
        let d = Dims3::cube(3);
        let s = TimeSeries::from_frames(vec![
            (5, ScalarVolume::filled(d, 1.0)),
            (10, ScalarVolume::filled(d, 2.0)),
        ]);
        let paths = write_series(&dir, "test", &s).unwrap();
        assert_eq!(paths.len(), 2);
        let back = read_series(&paths).unwrap();
        assert_eq!(back, s);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let p = PathBuf::from("/nonexistent/ifet/v.raw");
        assert!(matches!(read_raw(&p), Err(IoError::Io(_))));
    }
}
