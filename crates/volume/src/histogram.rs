//! Histograms and cumulative histograms.
//!
//! The cumulative histogram is the core data-driven ingredient of the paper's
//! Intelligent Adaptive Transfer Function (Section 4.2.1): "the value of a
//! voxel's cumulative histogram is the number of voxels in the data set that
//! have scalar value less than or equal to that voxel". When temporal changes
//! are positional or global intensity shifts, a feature's *cumulative*
//! histogram value stays nearly constant even though its raw value drifts.

use crate::volume::ScalarVolume;
use serde::{Deserialize, Serialize};

/// A fixed-bin histogram over a value range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    lo: f32,
    hi: f32,
    total: u64,
}

impl Histogram {
    /// Histogram of a volume with `bins` bins over the volume's own range.
    pub fn of_volume(vol: &ScalarVolume, bins: usize) -> Self {
        let (lo, hi) = vol.value_range();
        Self::of_values(vol.as_slice(), bins, lo, hi)
    }

    /// Histogram over an explicit `[lo, hi]` range (values outside are
    /// clamped into the first/last bin). `hi == lo` is handled by putting
    /// everything into bin 0.
    pub fn of_values(values: &[f32], bins: usize, lo: f32, hi: f32) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi >= lo, "invalid range [{lo}, {hi}]");
        let mut counts = vec![0u64; bins];
        let span = hi - lo;
        for &v in values {
            if v.is_nan() {
                continue;
            }
            let bin = if span <= 0.0 {
                0
            } else {
                (((v - lo) / span) * bins as f32)
                    .floor()
                    .clamp(0.0, (bins - 1) as f32) as usize
            };
            counts[bin] += 1;
        }
        let total = counts.iter().sum();
        Self {
            counts,
            lo,
            hi,
            total,
        }
    }

    #[inline]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    #[inline]
    pub fn range(&self) -> (f32, f32) {
        (self.lo, self.hi)
    }

    /// Bin index for a value (clamped).
    #[inline]
    pub fn bin_of(&self, v: f32) -> usize {
        let span = self.hi - self.lo;
        if span <= 0.0 {
            return 0;
        }
        (((v - self.lo) / span) * self.bins() as f32)
            .floor()
            .clamp(0.0, (self.bins() - 1) as f32) as usize
    }

    /// Central value of a bin.
    #[inline]
    pub fn bin_center(&self, bin: usize) -> f32 {
        let span = self.hi - self.lo;
        self.lo + span * (bin as f32 + 0.5) / self.bins() as f32
    }

    /// The bin with the largest count inside `[from_bin, to_bin]`, as
    /// `(bin, count)`. Used to locate feature peaks (Figure 2).
    pub fn peak_in(&self, from_bin: usize, to_bin: usize) -> (usize, u64) {
        let to = to_bin.min(self.bins() - 1);
        let mut best = (from_bin, 0);
        for b in from_bin..=to {
            if self.counts[b] > best.1 {
                best = (b, self.counts[b]);
            }
        }
        best
    }

    /// Normalized bin heights (sum = 1 when total > 0).
    pub fn normalized(&self) -> Vec<f64> {
        let t = self.total.max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / t).collect()
    }
}

/// Cumulative distribution of a volume's values, queryable per value.
///
/// `value_at_or_below(v)` returns the *fraction* of voxels with value `<= v`,
/// i.e. the normalized cumulative histogram the IATF consumes as its second
/// input dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CumulativeHistogram {
    cum: Vec<u64>,
    lo: f32,
    hi: f32,
    total: u64,
}

impl CumulativeHistogram {
    /// Build from a histogram.
    pub fn from_histogram(h: &Histogram) -> Self {
        let mut cum = Vec::with_capacity(h.bins());
        let mut acc = 0u64;
        for &c in h.counts() {
            acc += c;
            cum.push(acc);
        }
        let (lo, hi) = h.range();
        Self {
            cum,
            lo,
            hi,
            total: h.total(),
        }
    }

    /// Build directly from a volume with `bins` resolution.
    pub fn of_volume(vol: &ScalarVolume, bins: usize) -> Self {
        Self::from_histogram(&Histogram::of_volume(vol, bins))
    }

    #[inline]
    pub fn bins(&self) -> usize {
        self.cum.len()
    }

    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    #[inline]
    pub fn range(&self) -> (f32, f32) {
        (self.lo, self.hi)
    }

    /// Count of voxels with value `<= v`.
    pub fn count_at_or_below(&self, v: f32) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if v < self.lo {
            return 0;
        }
        let span = self.hi - self.lo;
        if span <= 0.0 || v >= self.hi {
            return self.total;
        }
        let bin = (((v - self.lo) / span) * self.bins() as f32)
            .floor()
            .clamp(0.0, (self.bins() - 1) as f32) as usize;
        self.cum[bin]
    }

    /// Fraction of voxels with value `<= v`, in `[0, 1]`.
    #[inline]
    pub fn fraction_at_or_below(&self, v: f32) -> f32 {
        if self.total == 0 {
            return 0.0;
        }
        self.count_at_or_below(v) as f32 / self.total as f32
    }

    /// Approximate inverse CDF: the smallest bin-center value whose
    /// cumulative fraction reaches `q` (quantile query).
    pub fn quantile(&self, q: f32) -> f32 {
        let q = q.clamp(0.0, 1.0);
        let target = (q as f64 * self.total as f64).ceil() as u64;
        let span = self.hi - self.lo;
        for (b, &c) in self.cum.iter().enumerate() {
            if c >= target {
                return self.lo + span * (b as f32 + 0.5) / self.bins() as f32;
            }
        }
        self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::Dims3;

    fn uniform_ramp() -> ScalarVolume {
        // 1000 voxels with values 0..1000
        ScalarVolume::from_vec(
            Dims3::new(10, 10, 10),
            (0..1000).map(|i| i as f32).collect(),
        )
    }

    #[test]
    fn histogram_counts_sum_to_total() {
        let h = Histogram::of_volume(&uniform_ramp(), 64);
        assert_eq!(h.total(), 1000);
        assert_eq!(h.counts().iter().sum::<u64>(), 1000);
    }

    #[test]
    fn histogram_uniform_is_flat() {
        let h = Histogram::of_volume(&uniform_ramp(), 10);
        for &c in h.counts() {
            assert_eq!(c, 100);
        }
    }

    #[test]
    fn bin_of_clamps() {
        let h = Histogram::of_values(&[0.0, 1.0], 4, 0.0, 1.0);
        assert_eq!(h.bin_of(-5.0), 0);
        assert_eq!(h.bin_of(5.0), 3);
        assert_eq!(h.bin_of(0.5), 2);
    }

    #[test]
    fn bin_center_inverts_bin_of() {
        let h = Histogram::of_values(&[0.0, 1.0], 16, 0.0, 1.0);
        for b in 0..16 {
            assert_eq!(h.bin_of(h.bin_center(b)), b);
        }
    }

    #[test]
    fn degenerate_range_single_bin() {
        let h = Histogram::of_values(&[2.0, 2.0, 2.0], 8, 2.0, 2.0);
        assert_eq!(h.counts()[0], 3);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn nan_values_are_skipped() {
        let h = Histogram::of_values(&[0.5, f32::NAN], 4, 0.0, 1.0);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn peak_finds_mode() {
        let h = Histogram::of_values(&[0.1, 0.5, 0.5, 0.9], 10, 0.0, 1.0);
        let (bin, count) = h.peak_in(0, 9);
        assert_eq!(count, 2);
        assert_eq!(bin, h.bin_of(0.5));
    }

    #[test]
    fn cumulative_is_monotone_and_ends_at_total() {
        let c = CumulativeHistogram::of_volume(&uniform_ramp(), 32);
        let mut prev = 0;
        for v in (0..=1000).step_by(50) {
            let cur = c.count_at_or_below(v as f32);
            assert!(cur >= prev);
            prev = cur;
        }
        assert_eq!(c.count_at_or_below(1e9), 1000);
        assert_eq!(c.count_at_or_below(-1e9), 0);
    }

    #[test]
    fn fraction_midpoint_of_uniform_is_half() {
        let c = CumulativeHistogram::of_volume(&uniform_ramp(), 1000);
        let f = c.fraction_at_or_below(499.0);
        assert!((f - 0.5).abs() < 0.02, "{f}");
    }

    #[test]
    fn cumhist_invariant_under_global_shift() {
        // The property motivating the IATF: shifting all values by a constant
        // leaves every voxel's cumulative fraction unchanged.
        let v = uniform_ramp();
        let shifted = v.map(|&x| x + 300.0);
        let c0 = CumulativeHistogram::of_volume(&v, 256);
        let c1 = CumulativeHistogram::of_volume(&shifted, 256);
        for q in [100.0f32, 400.0, 800.0] {
            let f0 = c0.fraction_at_or_below(q);
            let f1 = c1.fraction_at_or_below(q + 300.0);
            assert!((f0 - f1).abs() < 0.01, "{f0} vs {f1}");
        }
    }

    #[test]
    fn quantile_inverts_fraction_roughly() {
        let c = CumulativeHistogram::of_volume(&uniform_ramp(), 500);
        let v = c.quantile(0.25);
        assert!((v - 250.0).abs() < 10.0, "{v}");
        assert_eq!(c.quantile(0.0), c.quantile(-1.0));
    }

    #[test]
    fn empty_cumhist_is_safe() {
        let h = Histogram::of_values(&[], 4, 0.0, 1.0);
        let c = CumulativeHistogram::from_histogram(&h);
        assert_eq!(c.fraction_at_or_below(0.5), 0.0);
    }
}
