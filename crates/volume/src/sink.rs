//! Frame sinks: the write-capable counterpart to [`crate::source::FrameSource`].
//!
//! Derived per-frame fields (certainty volumes from classification, filtered
//! or classified outputs) used to materialize as a full `Vec<ScalarVolume>`
//! before being written. A [`FrameSink`] receives frames one at a time in
//! ascending step order instead, so a pipeline stage can stream its output —
//! in core via [`TimeSeriesSink`] or spilled straight to disk via
//! [`OutOfCoreSink`], which writes the same `prefix_t<step>.raw` + sidecar
//! layout as [`crate::io::write_series`] and can be reopened as an
//! [`OutOfCoreSeries`] without rewriting anything.

use crate::dims::Dims3;
use crate::io::{write_compressed, write_raw, IoError, VolumeMeta};
use crate::ooc::{CacheBudgetHandle, OutOfCoreSeries};
use crate::series::{SeriesError, TimeSeries};
use crate::volume::ScalarVolume;
use std::path::{Path, PathBuf};

/// Streaming consumer of labelled frames. The contract mirrors
/// [`TimeSeries::try_push`]: step labels strictly increase and every frame
/// shares the first frame's grid; violations surface as typed
/// [`SeriesError`]s, never panics.
pub trait FrameSink {
    /// Append the frame for step `t`.
    fn put(&mut self, t: u32, vol: ScalarVolume) -> Result<(), SeriesError>;

    /// Frames accepted so far.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Blanket passthrough so `&mut K` works wherever `K: FrameSink` is expected.
impl<K: FrameSink + ?Sized> FrameSink for &mut K {
    fn put(&mut self, t: u32, vol: ScalarVolume) -> Result<(), SeriesError> {
        (**self).put(t, vol)
    }

    fn len(&self) -> usize {
        (**self).len()
    }
}

/// In-core sink: collects frames into a [`TimeSeries`].
#[derive(Debug, Default)]
pub struct TimeSeriesSink {
    series: Option<TimeSeries>,
}

impl TimeSeriesSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected series. Errors with [`SeriesError::Empty`] when no
    /// frame was ever pushed.
    pub fn into_series(self) -> Result<TimeSeries, SeriesError> {
        self.series.ok_or(SeriesError::Empty)
    }
}

impl FrameSink for TimeSeriesSink {
    fn put(&mut self, t: u32, vol: ScalarVolume) -> Result<(), SeriesError> {
        match &mut self.series {
            Some(s) => s.try_push(t, vol),
            None => {
                let mut s = TimeSeries::new(vol.dims());
                s.try_push(t, vol)?;
                self.series = Some(s);
                Ok(())
            }
        }
    }

    fn len(&self) -> usize {
        self.series.as_ref().map_or(0, TimeSeries::len)
    }
}

/// Spill-to-disk sink: each frame is written immediately as
/// `prefix_t<step>.raw` (+ JSON sidecar) and dropped, so only one frame of
/// output is ever in core. The produced files are byte-identical to
/// [`crate::io::write_series`] on the materialized equivalent.
#[derive(Debug)]
pub struct OutOfCoreSink {
    dir: PathBuf,
    prefix: String,
    dims: Option<Dims3>,
    last_step: Option<u32>,
    paths: Vec<PathBuf>,
    compress: bool,
}

impl OutOfCoreSink {
    /// Create the sink, making `dir` as needed.
    pub fn new(dir: &Path, prefix: &str) -> Result<Self, IoError> {
        Self::with_compression(dir, prefix, false)
    }

    /// [`Self::new`] with a choice of on-disk format: `compress` writes each
    /// frame as a bricked compressed `prefix_t<step>.rawz` container (see
    /// [`crate::codec`]) instead of a raw payload. Either flavor reopens via
    /// [`Self::into_series`] with bit-identical voxels.
    pub fn with_compression(dir: &Path, prefix: &str, compress: bool) -> Result<Self, IoError> {
        std::fs::create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            prefix: prefix.to_string(),
            dims: None,
            last_step: None,
            paths: Vec::new(),
            compress,
        })
    }

    /// Files written so far, in step order.
    pub fn paths(&self) -> &[PathBuf] {
        &self.paths
    }

    /// Finish and hand back the written paths.
    pub fn into_paths(self) -> Vec<PathBuf> {
        self.paths
    }

    /// Reopen the written frames as a paged series on `budget`, without
    /// touching any voxel data.
    pub fn into_series(
        self,
        budget: &CacheBudgetHandle,
        prefetch: usize,
    ) -> Result<OutOfCoreSeries, IoError> {
        OutOfCoreSeries::open_with(self.paths, budget, prefetch)
    }
}

impl FrameSink for OutOfCoreSink {
    fn put(&mut self, t: u32, vol: ScalarVolume) -> Result<(), SeriesError> {
        if let Some(d) = self.dims {
            if vol.dims() != d {
                return Err(SeriesError::DimsMismatch {
                    expected: d,
                    got: vol.dims(),
                });
            }
        }
        if let Some(last) = self.last_step {
            if t <= last {
                return Err(SeriesError::NonIncreasingStep { last, next: t });
            }
        }
        let ext = if self.compress { "rawz" } else { "raw" };
        let p = self.dir.join(format!("{}_t{t:05}.{ext}", self.prefix));
        let mut meta = VolumeMeta::new(vol.dims());
        meta.step = Some(t);
        if self.compress {
            write_compressed(&p, &vol, &meta)?;
        } else {
            write_raw(&p, &vol, &meta)?;
        }
        self.dims = Some(vol.dims());
        self.last_step = Some(t);
        self.paths.push(p);
        Ok(())
    }

    fn len(&self) -> usize {
        self.paths.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{read_series, write_series};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ifet_sink_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn frames() -> Vec<(u32, ScalarVolume)> {
        let d = Dims3::cube(4);
        (0..4u32)
            .map(|k| (k * 7 + 1, ScalarVolume::filled(d, k as f32)))
            .collect()
    }

    #[test]
    fn timeseries_sink_collects() {
        let mut sink = TimeSeriesSink::new();
        for (t, v) in frames() {
            sink.put(t, v).unwrap();
        }
        assert_eq!(sink.len(), 4);
        let s = sink.into_series().unwrap();
        assert_eq!(s, TimeSeries::from_frames(frames()));
    }

    #[test]
    fn empty_timeseries_sink_is_typed_error() {
        assert!(matches!(
            TimeSeriesSink::new().into_series(),
            Err(SeriesError::Empty)
        ));
    }

    #[test]
    fn sinks_validate_like_try_push() {
        let d = Dims3::cube(4);
        let dir = tmpdir("validate");
        for sink in [
            &mut TimeSeriesSink::new() as &mut dyn FrameSink,
            &mut OutOfCoreSink::new(&dir, "v").unwrap(),
        ] {
            sink.put(5, ScalarVolume::zeros(d)).unwrap();
            assert!(matches!(
                sink.put(5, ScalarVolume::zeros(d)),
                Err(SeriesError::NonIncreasingStep { last: 5, next: 5 })
            ));
            assert!(matches!(
                sink.put(9, ScalarVolume::zeros(Dims3::cube(3))),
                Err(SeriesError::DimsMismatch { .. })
            ));
            assert_eq!(sink.len(), 1, "failed puts must not count");
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn ooc_sink_matches_write_series_bytes() {
        let dir = tmpdir("bytes");
        let series = TimeSeries::from_frames(frames());
        let batch_paths = write_series(&dir.join("batch"), "v", &series).unwrap();

        let mut sink = OutOfCoreSink::new(&dir.join("stream"), "v").unwrap();
        for (t, v) in frames() {
            sink.put(t, v).unwrap();
        }
        let stream_paths = sink.into_paths();
        assert_eq!(batch_paths.len(), stream_paths.len());
        for (a, b) in batch_paths.iter().zip(&stream_paths) {
            assert_eq!(a.file_name(), b.file_name(), "same naming scheme");
            assert_eq!(
                std::fs::read(a).unwrap(),
                std::fs::read(b).unwrap(),
                "streamed frame bytes differ from batch write"
            );
        }
        assert_eq!(read_series(&stream_paths).unwrap(), series);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn compressed_sink_matches_write_series_bytes() {
        let dir = tmpdir("zbytes");
        let series = TimeSeries::from_frames(frames());
        let batch_paths =
            crate::io::write_series_with(&dir.join("batch"), "v", &series, true).unwrap();

        let mut sink = OutOfCoreSink::with_compression(&dir.join("stream"), "v", true).unwrap();
        for (t, v) in frames() {
            sink.put(t, v).unwrap();
        }
        let stream_paths = sink.into_paths();
        assert_eq!(batch_paths.len(), stream_paths.len());
        for (a, b) in batch_paths.iter().zip(&stream_paths) {
            assert_eq!(a.file_name(), b.file_name(), "same naming scheme");
            assert_eq!(a.extension().unwrap(), "rawz");
            assert_eq!(
                std::fs::read(a).unwrap(),
                std::fs::read(b).unwrap(),
                "streamed compressed bytes differ from batch write"
            );
        }
        assert_eq!(read_series(&stream_paths).unwrap(), series);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn compressed_sink_reopens_as_series() {
        let dir = tmpdir("zreopen");
        let mut sink = OutOfCoreSink::with_compression(&dir, "v", true).unwrap();
        for (t, v) in frames() {
            sink.put(t, v).unwrap();
        }
        let budget = CacheBudgetHandle::frames(2);
        let ooc = sink.into_series(&budget, 0).unwrap();
        assert_eq!(ooc.load_all().unwrap(), TimeSeries::from_frames(frames()));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn ooc_sink_reopens_as_series() {
        let dir = tmpdir("reopen");
        let mut sink = OutOfCoreSink::new(&dir, "v").unwrap();
        for (t, v) in frames() {
            sink.put(t, v).unwrap();
        }
        let budget = CacheBudgetHandle::frames(2);
        let ooc = sink.into_series(&budget, 0).unwrap();
        assert_eq!(ooc.load_all().unwrap(), TimeSeries::from_frames(frames()));
        std::fs::remove_dir_all(dir).ok();
    }
}
