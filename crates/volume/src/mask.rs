//! Boolean voxel masks and the set metrics used to score feature extraction
//! against ground truth.

use crate::dims::{Dims3, Ix3};
use crate::volume::ScalarVolume;
use serde::{Deserialize, Serialize};

const WORD_BITS: usize = 64;

/// A dense boolean mask over a 3D grid, stored as a `u64`-packed bitset.
///
/// Voxel `i` (linear, x-fastest) lives in bit `i % 64` of word `i / 64`.
/// Bits past `dims.len()` in the last word are always zero, so counting and
/// comparing operate on whole words. Set operations (union, intersection,
/// difference, metric counts) run word-at-a-time — 64 voxels per `popcnt` —
/// which is what makes region growing over large series affordable.
///
/// ```
/// use ifet_volume::{Dims3, Mask3, ScalarVolume};
/// let vol = ScalarVolume::from_fn(Dims3::cube(4), |x, _, _| x as f32);
/// let pred = Mask3::threshold(&vol, 2.0);
/// let truth = Mask3::from_fn(Dims3::cube(4), |x, _, _| x >= 1);
/// assert_eq!(pred.count(), 2 * 16);
/// assert!(pred.precision(&truth) == 1.0 && pred.recall(&truth) < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mask3 {
    dims: Dims3,
    words: Vec<u64>,
}

#[inline]
fn words_for(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

impl Mask3 {
    /// An all-false mask.
    pub fn empty(dims: Dims3) -> Self {
        Self {
            dims,
            words: vec![0; words_for(dims.len())],
        }
    }

    /// An all-true mask.
    pub fn full(dims: Dims3) -> Self {
        let mut m = Self {
            dims,
            words: vec![!0u64; words_for(dims.len())],
        };
        m.clear_tail();
        m
    }

    /// Build from a linear sequence of bits; must yield exactly `dims.len()`.
    fn from_bits(dims: Dims3, bits: impl Iterator<Item = bool>) -> Self {
        let mut words = vec![0u64; words_for(dims.len())];
        let mut n = 0usize;
        for b in bits {
            if b {
                words[n / WORD_BITS] |= 1u64 << (n % WORD_BITS);
            }
            n += 1;
        }
        assert_eq!(n, dims.len(), "bit sequence length mismatch");
        Self { dims, words }
    }

    /// Threshold a scalar volume: voxels with `value >= t` are set.
    pub fn threshold(vol: &ScalarVolume, t: f32) -> Self {
        Self::from_bits(vol.dims(), vol.as_slice().iter().map(|&v| v >= t))
    }

    /// Voxels whose value lies inside `[lo, hi]`.
    pub fn value_band(vol: &ScalarVolume, lo: f32, hi: f32) -> Self {
        Self::from_bits(
            vol.dims(),
            vol.as_slice().iter().map(|&v| v >= lo && v <= hi),
        )
    }

    /// Build from a predicate over coordinates.
    pub fn from_fn(dims: Dims3, mut f: impl FnMut(usize, usize, usize) -> bool) -> Self {
        let mut words = vec![0u64; words_for(dims.len())];
        let mut i = 0usize;
        for z in 0..dims.nz {
            for y in 0..dims.ny {
                for x in 0..dims.nx {
                    if f(x, y, z) {
                        words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
                    }
                    i += 1;
                }
            }
        }
        Self { dims, words }
    }

    /// Rebuild a mask from its backing words (the inverse of [`Mask3::words`]).
    ///
    /// Rejects inputs that would violate the type's invariants instead of
    /// panicking, so it is safe to feed with untrusted on-disk data: the word
    /// count must be exactly `dims.len().div_ceil(64)` and every bit past
    /// `dims.len()` in the last word must be zero.
    pub fn from_words(dims: Dims3, words: Vec<u64>) -> Result<Self, MaskWordsError> {
        let expected = words_for(dims.len());
        if words.len() != expected {
            return Err(MaskWordsError::WordCountMismatch {
                expected,
                got: words.len(),
            });
        }
        let tail = dims.len() % WORD_BITS;
        if tail != 0 {
            if let Some(&last) = words.last() {
                if last & !((1u64 << tail) - 1) != 0 {
                    return Err(MaskWordsError::TailBitsSet);
                }
            }
        }
        Ok(Self { dims, words })
    }

    #[inline]
    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    /// The backing words; bit `i % 64` of word `i / 64` is voxel `i`.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> bool {
        self.get_linear(self.dims.index(x, y, z))
    }

    #[inline]
    pub fn get_linear(&self, i: usize) -> bool {
        assert!(i < self.dims.len(), "mask index {i} out of range");
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 != 0
    }

    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: bool) {
        self.set_linear(self.dims.index(x, y, z), v);
    }

    #[inline]
    pub fn set_linear(&mut self, i: usize, v: bool) {
        assert!(i < self.dims.len(), "mask index {i} out of range");
        let bit = 1u64 << (i % WORD_BITS);
        if v {
            self.words[i / WORD_BITS] |= bit;
        } else {
            self.words[i / WORD_BITS] &= !bit;
        }
    }

    /// Set voxel `i`, returning `true` iff it was previously unset.
    ///
    /// The test-and-set primitive frontier BFS is built on: "newly visited"
    /// and "mark visited" in one word access.
    #[inline]
    pub fn insert_linear(&mut self, i: usize) -> bool {
        assert!(i < self.dims.len(), "mask index {i} out of range");
        let w = &mut self.words[i / WORD_BITS];
        let bit = 1u64 << (i % WORD_BITS);
        let fresh = *w & bit == 0;
        *w |= bit;
        fresh
    }

    /// Number of set voxels.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no voxel is set.
    pub fn is_empty_mask(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Linear indices of set voxels.
    pub fn set_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let base = wi * WORD_BITS;
            SetBits(w).map(move |b| base + b)
        })
    }

    /// Coordinates of set voxels.
    pub fn set_coords(&self) -> impl Iterator<Item = Ix3> + '_ {
        let dims = self.dims;
        self.set_indices().map(move |i| dims.coords(i))
    }

    /// Zero any bits past `dims.len()` in the last word (the invariant all
    /// whole-word operations rely on).
    fn clear_tail(&mut self) {
        let tail = self.dims.len() % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    fn check_same_dims(&self, other: &Self) {
        assert_eq!(
            self.dims, other.dims,
            "mask dimension mismatch: {} vs {}",
            self.dims, other.dims
        );
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &Self) {
        self.check_same_dims(other);
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &Self) {
        self.check_same_dims(other);
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self AND NOT other`).
    pub fn subtract(&mut self, other: &Self) {
        self.check_same_dims(other);
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Complement in place.
    pub fn invert(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.clear_tail();
    }

    /// Count of voxels set in both.
    pub fn intersection_count(&self, other: &Self) -> usize {
        self.check_same_dims(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Count of voxels set in either.
    pub fn union_count(&self, other: &Self) -> usize {
        self.check_same_dims(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// Jaccard index (intersection over union); 1.0 for two empty masks.
    pub fn jaccard(&self, other: &Self) -> f64 {
        let u = self.union_count(other);
        if u == 0 {
            return 1.0;
        }
        self.intersection_count(other) as f64 / u as f64
    }

    /// Dice coefficient; 1.0 for two empty masks.
    pub fn dice(&self, other: &Self) -> f64 {
        let a = self.count();
        let b = other.count();
        if a + b == 0 {
            return 1.0;
        }
        2.0 * self.intersection_count(other) as f64 / (a + b) as f64
    }

    /// Precision of `self` as a prediction of ground-truth `truth`.
    pub fn precision(&self, truth: &Self) -> f64 {
        let p = self.count();
        if p == 0 {
            return if truth.is_empty_mask() { 1.0 } else { 0.0 };
        }
        self.intersection_count(truth) as f64 / p as f64
    }

    /// Recall of `self` against ground-truth `truth`.
    pub fn recall(&self, truth: &Self) -> f64 {
        let t = truth.count();
        if t == 0 {
            return 1.0;
        }
        self.intersection_count(truth) as f64 / t as f64
    }

    /// F1 score against ground-truth `truth`.
    pub fn f1(&self, truth: &Self) -> f64 {
        let p = self.precision(truth);
        let r = self.recall(truth);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Convert to a 0/1 scalar volume (useful for rendering masks).
    pub fn to_volume(&self) -> ScalarVolume {
        let mut v = ScalarVolume::filled(self.dims, 0.0);
        let data = v.as_mut_slice();
        for i in self.set_indices() {
            data[i] = 1.0;
        }
        v
    }

    /// Morphological dilation by one voxel (6-connectivity).
    pub fn dilate6(&self) -> Self {
        let mut out = self.clone();
        for (x, y, z) in self.set_coords() {
            for (nx, ny, nz) in self.dims.neighbors6(x, y, z) {
                out.set(nx, ny, nz, true);
            }
        }
        out
    }

    /// Morphological erosion by one voxel (6-connectivity; boundary voxels
    /// survive only if all in-bounds neighbours are set).
    pub fn erode6(&self) -> Self {
        let mut out = Mask3::empty(self.dims);
        for (x, y, z) in self.set_coords() {
            let keep = self
                .dims
                .neighbors6(x, y, z)
                .all(|(a, b, c)| self.get(a, b, c));
            if keep {
                out.set(x, y, z, true);
            }
        }
        out
    }

    /// Count of set voxels with at least one unset 6-neighbour (surface area
    /// proxy, used as the boundary-detail score in the Figure 7 experiment).
    pub fn surface_count(&self) -> usize {
        self.set_coords()
            .filter(|&(x, y, z)| {
                self.dims
                    .neighbors6(x, y, z)
                    .any(|(a, b, c)| !self.get(a, b, c))
            })
            .count()
    }
}

/// Why [`Mask3::from_words`] rejected its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaskWordsError {
    WordCountMismatch { expected: usize, got: usize },
    TailBitsSet,
}

impl std::fmt::Display for MaskWordsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaskWordsError::WordCountMismatch { expected, got } => {
                write!(f, "word count mismatch: expected {expected}, got {got}")
            }
            MaskWordsError::TailBitsSet => {
                write!(f, "bits set past the end of the voxel range")
            }
        }
    }
}

impl std::error::Error for MaskWordsError {}

/// Iterator over set-bit positions within one word, lowest first.
struct SetBits(u64);

impl Iterator for SetBits {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let b = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ball(dims: Dims3, c: (f32, f32, f32), r: f32) -> Mask3 {
        Mask3::from_fn(dims, |x, y, z| {
            let dx = x as f32 - c.0;
            let dy = y as f32 - c.1;
            let dz = z as f32 - c.2;
            (dx * dx + dy * dy + dz * dz).sqrt() <= r
        })
    }

    #[test]
    fn empty_and_full() {
        let d = Dims3::cube(4);
        assert_eq!(Mask3::empty(d).count(), 0);
        assert_eq!(Mask3::full(d).count(), 64);
        assert!(Mask3::empty(d).is_empty_mask());
    }

    #[test]
    fn full_mask_has_clean_tail() {
        // 3*3*3 = 27 bits: one partial word; whole-word ops must not see
        // phantom bits past the end.
        let d = Dims3::cube(3);
        let f = Mask3::full(d);
        assert_eq!(f.count(), 27);
        let mut inv = f.clone();
        inv.invert();
        assert!(inv.is_empty_mask());
        assert_eq!(f.union_count(&f), 27);
    }

    #[test]
    fn threshold_and_band() {
        let v = ScalarVolume::from_fn(Dims3::new(4, 1, 1), |x, _, _| x as f32);
        assert_eq!(Mask3::threshold(&v, 2.0).count(), 2);
        assert_eq!(Mask3::value_band(&v, 1.0, 2.0).count(), 2);
    }

    #[test]
    fn set_ops() {
        let d = Dims3::cube(3);
        let a = ball(d, (0.0, 0.0, 0.0), 1.1);
        let b = ball(d, (2.0, 2.0, 2.0), 1.1);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), a.count() + b.count()); // disjoint balls
        let mut i = a.clone();
        i.intersect_with(&b);
        assert!(i.is_empty_mask());
        let mut s = u.clone();
        s.subtract(&b);
        assert_eq!(s, a);
    }

    #[test]
    fn invert_flips_count() {
        let d = Dims3::cube(3);
        let mut m = ball(d, (1.0, 1.0, 1.0), 1.1);
        let c = m.count();
        m.invert();
        assert_eq!(m.count(), 27 - c);
    }

    #[test]
    fn insert_linear_reports_freshness() {
        let d = Dims3::cube(4);
        let mut m = Mask3::empty(d);
        assert!(m.insert_linear(37));
        assert!(!m.insert_linear(37));
        assert!(m.get_linear(37));
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn jaccard_dice_identity() {
        let d = Dims3::cube(4);
        let a = ball(d, (1.5, 1.5, 1.5), 1.6);
        assert_eq!(a.jaccard(&a), 1.0);
        assert_eq!(a.dice(&a), 1.0);
        let e = Mask3::empty(d);
        assert_eq!(e.jaccard(&e), 1.0);
        assert_eq!(a.jaccard(&e), 0.0);
    }

    #[test]
    fn precision_recall_f1() {
        let d = Dims3::new(4, 1, 1);
        let truth = Mask3::from_fn(d, |x, _, _| x < 2);
        let pred = Mask3::from_fn(d, |x, _, _| x < 3); // 2 TP, 1 FP
        assert!((pred.precision(&truth) - 2.0 / 3.0).abs() < 1e-12);
        assert!((pred.recall(&truth) - 1.0).abs() < 1e-12);
        let f1 = pred.f1(&truth);
        assert!((f1 - 0.8).abs() < 1e-12);
    }

    #[test]
    fn precision_edge_cases() {
        let d = Dims3::cube(2);
        let e = Mask3::empty(d);
        let f = Mask3::full(d);
        assert_eq!(e.precision(&e), 1.0);
        assert_eq!(e.precision(&f), 0.0);
        assert_eq!(f.recall(&e), 1.0);
        assert_eq!(e.f1(&f), 0.0);
    }

    #[test]
    fn dilate_then_erode_contains_original() {
        let d = Dims3::cube(8);
        let a = ball(d, (3.5, 3.5, 3.5), 2.0);
        let closed = a.dilate6().erode6();
        // Closing is extensive: contains the original.
        assert_eq!(a.intersection_count(&closed), a.count());
    }

    #[test]
    fn erode_shrinks_dilate_grows() {
        let d = Dims3::cube(8);
        let a = ball(d, (3.5, 3.5, 3.5), 2.5);
        assert!(a.erode6().count() < a.count());
        assert!(a.dilate6().count() > a.count());
    }

    #[test]
    fn surface_of_solid_cube() {
        let d = Dims3::cube(5);
        let m = Mask3::from_fn(d, |x, y, z| {
            (1..4).contains(&x) && (1..4).contains(&y) && (1..4).contains(&z)
        });
        // 3x3x3 block: all but the single interior voxel are surface.
        assert_eq!(m.surface_count(), 26);
    }

    #[test]
    fn to_volume_roundtrip() {
        let d = Dims3::cube(3);
        let m = ball(d, (1.0, 1.0, 1.0), 1.1);
        let v = m.to_volume();
        let back = Mask3::threshold(&v, 0.5);
        assert_eq!(m, back);
    }

    #[test]
    fn set_coords_match_get() {
        let d = Dims3::cube(4);
        let m = ball(d, (2.0, 2.0, 2.0), 1.5);
        for (x, y, z) in m.set_coords() {
            assert!(m.get(x, y, z));
        }
        assert_eq!(m.set_coords().count(), m.count());
    }

    #[test]
    fn set_indices_cross_word_boundaries() {
        // 5*5*5 = 125 voxels spans two words; hit bits around 63/64.
        let d = Dims3::cube(5);
        let mut m = Mask3::empty(d);
        for i in [0usize, 1, 62, 63, 64, 65, 124] {
            m.set_linear(i, true);
        }
        let got: Vec<usize> = m.set_indices().collect();
        assert_eq!(got, vec![0, 1, 62, 63, 64, 65, 124]);
    }
}
