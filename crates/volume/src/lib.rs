//! Time-varying volume data substrate for intelligent feature extraction and
//! tracking (Tzeng & Ma, SC 2005).
//!
//! This crate provides the dense regular-grid data structures the rest of the
//! workspace is built on:
//!
//! - [`Dims3`] — grid dimensions and index arithmetic,
//! - [`ScalarVolume`] / [`Volume`] — a dense 3D scalar field,
//! - [`VectorVolume`] — a dense 3D vector field with differential operators,
//! - [`TimeSeries`] — a time-varying sequence of scalar volumes,
//! - [`FrameSource`] — the access contract shared by in-core and
//!   out-of-core series, with [`OutOfCoreSeries`] paging frames through a
//!   budget-bounded LRU cache with optional background read-ahead (the
//!   paper's "cannot fit in core" regime, §4.2.2); budgets ([`CacheBudget`])
//!   are counted in frames or bytes and may be shared across series,
//! - [`FrameSink`] — the write-capable counterpart, streaming derived frames
//!   out in core ([`TimeSeriesSink`]) or spilled to disk ([`OutOfCoreSink`]),
//! - [`MultiVolume`] — several named variables over one grid (multivariate data),
//! - [`Histogram`] / [`CumulativeHistogram`] — value distributions, the key
//!   ingredient of the paper's adaptive transfer function (Section 4.2.1),
//! - [`Mask3`] — boolean voxel masks with the set metrics used to score
//!   extraction quality against ground truth,
//! - trilinear [`sample`]-ing and central-difference gradients for rendering,
//! - separable Gaussian [`filter`]-ing (the paper's "blur the volume"
//!   baseline in Figure 7),
//! - raw-binary + JSON-sidecar [`io`], with a bricked, CRC-guarded
//!   compression [`codec`] (`.rawz` frames, decoded transparently on
//!   page-in) and zero-copy [`mmapio`] frame mapping for raw frames,
//! - versioned binary [`maskio`] encoding for masks inside session artifacts.
//!
//! Everything is deterministic and `f32`-based; volumes are laid out in
//! x-fastest (C) order so `idx = x + nx*(y + ny*z)`.

pub mod codec;
pub mod dims;
pub mod filter;
pub mod histogram;
pub mod io;
pub mod mask;
pub mod maskio;
pub mod mmapio;
pub mod multivol;
pub mod ooc;
pub mod sample;
pub mod series;
pub mod shell;
pub mod sink;
pub mod source;
pub mod vecfield;
pub mod volume;

pub use codec::CodecError;
pub use dims::{Dims3, Ix3};
pub use histogram::{CumulativeHistogram, Histogram};
pub use mask::{Mask3, MaskWordsError};
pub use maskio::{decode_mask, encode_mask, encode_mask_into, MaskIoError};
pub use mmapio::{map_frame, Mapping};
pub use multivol::{MultiSeries, MultiVolume};
pub use ooc::{
    BudgetStats, CacheBudget, CacheBudgetHandle, CacheStats, GroupStats, OutOfCoreSeries,
    ReadFault, ReadFaultHook,
};
pub use series::{SeriesError, TimeSeries};
pub use sink::{FrameSink, OutOfCoreSink, TimeSeriesSink};
pub use source::{
    map_frames_windowed, map_frames_windowed_into, walk_frame_pairs, FrameHandle, FrameSource,
};
pub use vecfield::VectorVolume;
pub use volume::{ScalarVolume, Volume};
