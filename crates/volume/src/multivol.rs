//! Multivariate volumes: several named scalar variables on one grid.
//!
//! The paper's DNS combustion data carries "multiple variables" per time step
//! and Section 4.3 stresses that the learning engine "can take multivariate
//! data as input" without the scientist specifying inter-variable relations.

use crate::dims::Dims3;
use crate::volume::ScalarVolume;
use serde::{Deserialize, Serialize};

/// A set of named scalar variables sharing one grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiVolume {
    dims: Dims3,
    names: Vec<String>,
    vars: Vec<ScalarVolume>,
}

impl MultiVolume {
    /// An empty multivariate volume over `dims`.
    pub fn new(dims: Dims3) -> Self {
        Self {
            dims,
            names: Vec::new(),
            vars: Vec::new(),
        }
    }

    /// Add a variable. Panics on duplicate names or dim mismatch.
    pub fn add(&mut self, name: impl Into<String>, vol: ScalarVolume) -> &mut Self {
        let name = name.into();
        assert_eq!(vol.dims(), self.dims, "variable dims mismatch");
        assert!(
            !self.names.contains(&name),
            "duplicate variable name {name:?}"
        );
        self.names.push(name);
        self.vars.push(vol);
        self
    }

    #[inline]
    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Variable names in insertion order.
    #[inline]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Variable by name.
    pub fn var(&self, name: &str) -> Option<&ScalarVolume> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| &self.vars[i])
    }

    /// Variable by index.
    pub fn var_at(&self, i: usize) -> &ScalarVolume {
        &self.vars[i]
    }

    /// All variable values at one voxel, in insertion order. This is the raw
    /// multivariate sample fed to per-voxel feature vectors.
    pub fn values_at(&self, x: usize, y: usize, z: usize) -> Vec<f32> {
        self.vars.iter().map(|v| *v.get(x, y, z)).collect()
    }

    /// Same, appended to a reusable buffer (avoids per-voxel allocation).
    pub fn values_at_into(&self, x: usize, y: usize, z: usize, out: &mut Vec<f32>) {
        for v in &self.vars {
            out.push(*v.get(x, y, z));
        }
    }

    /// Remove a variable by name; returns it when present. Mirrors the paper's
    /// UI affordance of dropping "unimportant" data properties (Section 6) so
    /// the network shrinks.
    pub fn remove(&mut self, name: &str) -> Option<ScalarVolume> {
        let i = self.names.iter().position(|n| n == name)?;
        self.names.remove(i);
        Some(self.vars.remove(i))
    }
}

/// A time-varying *multivariate* sequence: one [`MultiVolume`] per step, all
/// sharing the same grid and variable set (the paper's DNS combustion data
/// is "a 480×720×120 volume with multiple variables" per time step).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiSeries {
    dims: Dims3,
    steps: Vec<u32>,
    frames: Vec<MultiVolume>,
}

impl MultiSeries {
    /// Build from labelled multivariate frames; steps must strictly
    /// increase and every frame must share dims and variable names.
    pub fn from_frames(frames: Vec<(u32, MultiVolume)>) -> Self {
        assert!(!frames.is_empty(), "a series needs at least one frame");
        let dims = frames[0].1.dims();
        let names: Vec<String> = frames[0].1.names().to_vec();
        assert!(!names.is_empty(), "multivariate frames need variables");
        let mut steps = Vec::with_capacity(frames.len());
        let mut vols = Vec::with_capacity(frames.len());
        for (t, mv) in frames {
            assert_eq!(mv.dims(), dims, "frame dims mismatch");
            assert_eq!(mv.names(), names.as_slice(), "variable set mismatch");
            if let Some(&last) = steps.last() {
                assert!(t > last, "steps must strictly increase");
            }
            steps.push(t);
            vols.push(mv);
        }
        Self {
            dims,
            steps,
            frames: vols,
        }
    }

    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    pub fn len(&self) -> usize {
        self.frames.len()
    }

    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    pub fn steps(&self) -> &[u32] {
        &self.steps
    }

    pub fn names(&self) -> &[String] {
        self.frames[0].names()
    }

    pub fn frame(&self, i: usize) -> &MultiVolume {
        &self.frames[i]
    }

    pub fn frame_at_step(&self, t: u32) -> Option<&MultiVolume> {
        self.steps.binary_search(&t).ok().map(|i| &self.frames[i])
    }

    pub fn index_of_step(&self, t: u32) -> Option<usize> {
        self.steps.binary_search(&t).ok()
    }

    /// Normalized time in `[0, 1]` for a step label.
    pub fn normalized_time(&self, t: u32) -> f32 {
        let (first, last) = match (self.steps.first(), self.steps.last()) {
            (Some(&a), Some(&b)) if b > a => (a, b),
            _ => return 0.0,
        };
        ((t.max(first) - first) as f32 / (last - first) as f32).clamp(0.0, 1.0)
    }

    /// Project one variable out as a plain scalar time series.
    pub fn scalar_series(&self, var: &str) -> Option<crate::series::TimeSeries> {
        self.frames[0].var(var)?; // validate name
        Some(crate::series::TimeSeries::from_frames(
            self.steps
                .iter()
                .zip(&self.frames)
                .map(|(&t, mv)| (t, mv.var(var).unwrap().clone()))
                .collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mv() -> MultiVolume {
        let d = Dims3::cube(3);
        let mut m = MultiVolume::new(d);
        m.add("density", ScalarVolume::from_fn(d, |x, _, _| x as f32));
        m.add("pressure", ScalarVolume::filled(d, 2.0));
        m
    }

    #[test]
    fn add_and_lookup() {
        let m = mv();
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.names(), &["density".to_string(), "pressure".to_string()]);
        assert!(m.var("density").is_some());
        assert!(m.var("missing").is_none());
        assert_eq!(*m.var_at(1).get(0, 0, 0), 2.0);
    }

    #[test]
    #[should_panic]
    fn duplicate_name_panics() {
        let d = Dims3::cube(2);
        let mut m = MultiVolume::new(d);
        m.add("a", ScalarVolume::zeros(d));
        m.add("a", ScalarVolume::zeros(d));
    }

    #[test]
    #[should_panic]
    fn dims_mismatch_panics() {
        let mut m = MultiVolume::new(Dims3::cube(2));
        m.add("a", ScalarVolume::zeros(Dims3::cube(3)));
    }

    #[test]
    fn values_at_order() {
        let m = mv();
        assert_eq!(m.values_at(2, 0, 0), vec![2.0, 2.0]);
        let mut buf = vec![9.0];
        m.values_at_into(1, 0, 0, &mut buf);
        assert_eq!(buf, vec![9.0, 1.0, 2.0]);
    }

    fn mseries() -> MultiSeries {
        let d = Dims3::cube(3);
        let make = |a: f32, b: f32| {
            let mut m = MultiVolume::new(d);
            m.add("u", ScalarVolume::filled(d, a));
            m.add("v", ScalarVolume::filled(d, b));
            m
        };
        MultiSeries::from_frames(vec![(0, make(1.0, 10.0)), (5, make(2.0, 20.0))])
    }

    #[test]
    fn multiseries_basics() {
        let s = mseries();
        assert_eq!(s.len(), 2);
        assert_eq!(s.steps(), &[0, 5]);
        assert_eq!(s.names(), &["u".to_string(), "v".to_string()]);
        assert_eq!(
            *s.frame_at_step(5).unwrap().var("v").unwrap().get(0, 0, 0),
            20.0
        );
        assert!(s.frame_at_step(3).is_none());
        assert_eq!(s.normalized_time(5), 1.0);
    }

    #[test]
    fn multiseries_scalar_projection() {
        let s = mseries();
        let u = s.scalar_series("u").unwrap();
        assert_eq!(u.len(), 2);
        assert_eq!(*u.frame(1).get(0, 0, 0), 2.0);
        assert!(s.scalar_series("missing").is_none());
    }

    #[test]
    #[should_panic]
    fn multiseries_variable_mismatch_panics() {
        let d = Dims3::cube(2);
        let mut a = MultiVolume::new(d);
        a.add("u", ScalarVolume::zeros(d));
        let mut b = MultiVolume::new(d);
        b.add("w", ScalarVolume::zeros(d));
        let _ = MultiSeries::from_frames(vec![(0, a), (1, b)]);
    }

    #[test]
    fn remove_drops_variable() {
        let mut m = mv();
        let taken = m.remove("density");
        assert!(taken.is_some());
        assert_eq!(m.num_vars(), 1);
        assert!(m.var("density").is_none());
        assert!(m.remove("density").is_none());
    }
}
