//! Time-varying volume sequences.

use crate::dims::Dims3;
use crate::histogram::CumulativeHistogram;
use crate::io::IoError;
use crate::volume::ScalarVolume;
use serde::{Deserialize, Serialize};

/// Typed errors for series construction and frame access.
///
/// The panicking constructors ([`TimeSeries::push`], [`TimeSeries::from_frames`])
/// route through these via the `try_*` siblings, so every failure mode carries
/// a structured cause that callers (notably the CLI) can map to a message
/// instead of a backtrace.
#[derive(Debug)]
pub enum SeriesError {
    /// A frame index past the end of the series.
    FrameOutOfRange { index: usize, len: usize },
    /// `push` with a step label not strictly greater than the last.
    NonIncreasingStep { last: u32, next: u32 },
    /// A frame whose grid does not match the series grid.
    DimsMismatch { expected: Dims3, got: Dims3 },
    /// A series needs at least one frame.
    Empty,
    /// Component series walked in lockstep disagree on their step
    /// schedules (e.g. the u/v/w velocity components of one flow).
    StepMismatch { component: usize },
    /// Paging a disk-backed frame failed.
    Io(IoError),
    /// A compressed frame failed to decode: corruption, truncation, or a
    /// header that disagrees with the sidecar. Split out from [`Self::Io`]
    /// so callers can distinguish "disk unhappy" from "data untrustworthy".
    Codec(crate::codec::CodecError),
}

impl std::fmt::Display for SeriesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeriesError::FrameOutOfRange { index, len } => {
                write!(f, "frame index {index} out of range for {len}-frame series")
            }
            SeriesError::NonIncreasingStep { last, next } => {
                write!(
                    f,
                    "time steps must be strictly increasing: {last} -> {next}"
                )
            }
            SeriesError::DimsMismatch { expected, got } => {
                write!(
                    f,
                    "frame dims mismatch: series is {expected:?}, frame is {got:?}"
                )
            }
            SeriesError::Empty => write!(f, "a series needs at least one frame"),
            SeriesError::StepMismatch { component } => {
                write!(
                    f,
                    "component series {component} disagrees with component 0 on step labels"
                )
            }
            SeriesError::Io(e) => write!(f, "frame paging failed: {e}"),
            SeriesError::Codec(e) => write!(f, "compressed frame rejected: {e}"),
        }
    }
}

impl std::error::Error for SeriesError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SeriesError::Io(e) => Some(e),
            SeriesError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IoError> for SeriesError {
    fn from(e: IoError) -> Self {
        match e {
            IoError::Codec(c) => SeriesError::Codec(c),
            other => SeriesError::Io(other),
        }
    }
}

/// A time-varying sequence of scalar volumes over a fixed grid.
///
/// Time steps carry explicit integer labels (e.g. simulation step numbers
/// 195, 210, 225 ... as in the paper's argon bubble figures) which need not
/// start at zero or be contiguous.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    dims: Dims3,
    steps: Vec<u32>,
    frames: Vec<ScalarVolume>,
}

impl TimeSeries {
    /// Create an empty series over `dims`.
    pub fn new(dims: Dims3) -> Self {
        Self {
            dims,
            steps: Vec::new(),
            frames: Vec::new(),
        }
    }

    /// Build from labelled frames. Frames must share `dims`; steps must be
    /// strictly increasing. Panics on violation; see [`Self::try_from_frames`]
    /// for the fallible form.
    pub fn from_frames(frames: Vec<(u32, ScalarVolume)>) -> Self {
        Self::try_from_frames(frames).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::from_frames`].
    pub fn try_from_frames(frames: Vec<(u32, ScalarVolume)>) -> Result<Self, SeriesError> {
        let dims = frames.first().ok_or(SeriesError::Empty)?.1.dims();
        let mut s = Self::new(dims);
        for (t, v) in frames {
            s.try_push(t, v)?;
        }
        Ok(s)
    }

    /// Append a frame at time step `t`. Panics on violation; see
    /// [`Self::try_push`] for the fallible form.
    pub fn push(&mut self, t: u32, vol: ScalarVolume) {
        self.try_push(t, vol).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`Self::push`]: rejects grids that differ from the series and
    /// step labels that do not strictly increase.
    pub fn try_push(&mut self, t: u32, vol: ScalarVolume) -> Result<(), SeriesError> {
        if vol.dims() != self.dims {
            return Err(SeriesError::DimsMismatch {
                expected: self.dims,
                got: vol.dims(),
            });
        }
        if let Some(&last) = self.steps.last() {
            if t <= last {
                return Err(SeriesError::NonIncreasingStep { last, next: t });
            }
        }
        self.steps.push(t);
        self.frames.push(vol);
        Ok(())
    }

    #[inline]
    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    /// Number of frames.
    #[inline]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The time-step labels.
    #[inline]
    pub fn steps(&self) -> &[u32] {
        &self.steps
    }

    /// Frame by positional index. Panics when out of range; see
    /// [`Self::try_frame`] for the fallible form.
    #[inline]
    pub fn frame(&self, i: usize) -> &ScalarVolume {
        self.try_frame(i).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::frame`].
    #[inline]
    pub fn try_frame(&self, i: usize) -> Result<&ScalarVolume, SeriesError> {
        self.frames.get(i).ok_or(SeriesError::FrameOutOfRange {
            index: i,
            len: self.frames.len(),
        })
    }

    /// Frame by time-step label.
    pub fn frame_at_step(&self, t: u32) -> Option<&ScalarVolume> {
        self.index_of_step(t).map(|i| &self.frames[i])
    }

    /// Positional index of a time-step label.
    pub fn index_of_step(&self, t: u32) -> Option<usize> {
        self.steps.binary_search(&t).ok()
    }

    /// Iterate `(step, frame)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &ScalarVolume)> {
        self.steps.iter().copied().zip(self.frames.iter())
    }

    /// Global `(min, max)` across all frames.
    pub fn global_range(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for f in &self.frames {
            let (a, b) = f.value_range();
            lo = lo.min(a);
            hi = hi.max(b);
        }
        if lo > hi {
            (0.0, 0.0)
        } else {
            (lo, hi)
        }
    }

    /// Normalized time in `[0, 1]` for a step label (0 for single-frame series).
    pub fn normalized_time(&self, t: u32) -> f32 {
        let (first, last) = match (self.steps.first(), self.steps.last()) {
            (Some(&a), Some(&b)) if b > a => (a, b),
            _ => return 0.0,
        };
        ((t.max(first) - first) as f32 / (last - first) as f32).clamp(0.0, 1.0)
    }

    /// Cumulative histogram of each frame at `bins` resolution, computed over
    /// the *global* range so fractions are comparable across frames.
    pub fn cumulative_histograms(&self, bins: usize) -> Vec<CumulativeHistogram> {
        let (lo, hi) = self.global_range();
        self.frames
            .iter()
            .map(|f| {
                let h = crate::histogram::Histogram::of_values(f.as_slice(), bins, lo, hi);
                CumulativeHistogram::from_histogram(&h)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        let d = Dims3::cube(4);
        TimeSeries::from_frames(vec![
            (10, ScalarVolume::filled(d, 1.0)),
            (20, ScalarVolume::filled(d, 2.0)),
            (30, ScalarVolume::filled(d, 4.0)),
        ])
    }

    #[test]
    fn push_and_lookup() {
        let s = series();
        assert_eq!(s.len(), 3);
        assert_eq!(s.steps(), &[10, 20, 30]);
        assert_eq!(s.frame_at_step(20).unwrap().as_slice()[0], 2.0);
        assert!(s.frame_at_step(15).is_none());
        assert_eq!(s.index_of_step(30), Some(2));
    }

    #[test]
    #[should_panic]
    fn non_increasing_steps_panic() {
        let d = Dims3::cube(2);
        let mut s = TimeSeries::new(d);
        s.push(5, ScalarVolume::zeros(d));
        s.push(5, ScalarVolume::zeros(d));
    }

    #[test]
    #[should_panic]
    fn dims_mismatch_panics() {
        let mut s = TimeSeries::new(Dims3::cube(2));
        s.push(0, ScalarVolume::zeros(Dims3::cube(3)));
    }

    #[test]
    fn try_push_reports_typed_errors() {
        let d = Dims3::cube(2);
        let mut s = TimeSeries::new(d);
        s.try_push(5, ScalarVolume::zeros(d)).unwrap();
        assert!(matches!(
            s.try_push(5, ScalarVolume::zeros(d)),
            Err(SeriesError::NonIncreasingStep { last: 5, next: 5 })
        ));
        assert!(matches!(
            s.try_push(9, ScalarVolume::zeros(Dims3::cube(3))),
            Err(SeriesError::DimsMismatch { .. })
        ));
        // Failed pushes must not mutate the series.
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn try_frame_out_of_range_is_typed() {
        let s = series();
        assert!(s.try_frame(2).is_ok());
        assert!(matches!(
            s.try_frame(3),
            Err(SeriesError::FrameOutOfRange { index: 3, len: 3 })
        ));
    }

    #[test]
    fn try_from_frames_empty_is_typed() {
        assert!(matches!(
            TimeSeries::try_from_frames(vec![]),
            Err(SeriesError::Empty)
        ));
    }

    #[test]
    fn global_range_spans_frames() {
        assert_eq!(series().global_range(), (1.0, 4.0));
    }

    #[test]
    fn normalized_time_endpoints() {
        let s = series();
        assert_eq!(s.normalized_time(10), 0.0);
        assert_eq!(s.normalized_time(30), 1.0);
        assert!((s.normalized_time(20) - 0.5).abs() < 1e-6);
        // Out-of-range clamps.
        assert_eq!(s.normalized_time(0), 0.0);
        assert_eq!(s.normalized_time(99), 1.0);
    }

    #[test]
    fn single_frame_normalized_time_is_zero() {
        let d = Dims3::cube(2);
        let s = TimeSeries::from_frames(vec![(7, ScalarVolume::zeros(d))]);
        assert_eq!(s.normalized_time(7), 0.0);
    }

    #[test]
    fn cumulative_histograms_share_global_range() {
        let s = series();
        let chs = s.cumulative_histograms(16);
        assert_eq!(chs.len(), 3);
        for ch in &chs {
            assert_eq!(ch.range(), (1.0, 4.0));
        }
        // Frame 0 (all 1.0): everything is <= 1.0.
        assert!((chs[0].fraction_at_or_below(1.0) - 1.0).abs() < 1e-6);
        // Frame 2 (all 4.0): nothing is below 3.0.
        assert_eq!(chs[2].fraction_at_or_below(2.0), 0.0);
    }

    #[test]
    fn iter_yields_pairs() {
        let s = series();
        let pairs: Vec<_> = s.iter().map(|(t, f)| (t, f.as_slice()[0])).collect();
        assert_eq!(pairs, vec![(10, 1.0), (20, 2.0), (30, 4.0)]);
    }
}
