//! Continuous sampling of volumes: trilinear interpolation and
//! central-difference gradients (used by the renderer and the fluid solver's
//! semi-Lagrangian advection).

use crate::volume::ScalarVolume;

/// Trilinearly interpolate `vol` at continuous voxel coordinates `(x, y, z)`.
///
/// Coordinates are in voxel units where integer positions coincide with voxel
/// centers; out-of-range coordinates are clamped (Neumann boundary).
pub fn trilinear(vol: &ScalarVolume, x: f32, y: f32, z: f32) -> f32 {
    let d = vol.dims();
    let cx = x.clamp(0.0, (d.nx - 1) as f32);
    let cy = y.clamp(0.0, (d.ny - 1) as f32);
    let cz = z.clamp(0.0, (d.nz - 1) as f32);

    let x0 = cx.floor() as usize;
    let y0 = cy.floor() as usize;
    let z0 = cz.floor() as usize;
    let x1 = (x0 + 1).min(d.nx - 1);
    let y1 = (y0 + 1).min(d.ny - 1);
    let z1 = (z0 + 1).min(d.nz - 1);

    let fx = cx - x0 as f32;
    let fy = cy - y0 as f32;
    let fz = cz - z0 as f32;

    let v000 = *vol.get(x0, y0, z0);
    let v100 = *vol.get(x1, y0, z0);
    let v010 = *vol.get(x0, y1, z0);
    let v110 = *vol.get(x1, y1, z0);
    let v001 = *vol.get(x0, y0, z1);
    let v101 = *vol.get(x1, y0, z1);
    let v011 = *vol.get(x0, y1, z1);
    let v111 = *vol.get(x1, y1, z1);

    let c00 = v000 + (v100 - v000) * fx;
    let c10 = v010 + (v110 - v010) * fx;
    let c01 = v001 + (v101 - v001) * fx;
    let c11 = v011 + (v111 - v011) * fx;

    let c0 = c00 + (c10 - c00) * fy;
    let c1 = c01 + (c11 - c01) * fy;

    c0 + (c1 - c0) * fz
}

/// Central-difference gradient at an integer voxel (clamped at boundaries).
pub fn gradient_at(vol: &ScalarVolume, x: usize, y: usize, z: usize) -> [f32; 3] {
    let (xi, yi, zi) = (x as i64, y as i64, z as i64);
    let gx = (vol.get_clamped(xi + 1, yi, zi) - vol.get_clamped(xi - 1, yi, zi)) * 0.5;
    let gy = (vol.get_clamped(xi, yi + 1, zi) - vol.get_clamped(xi, yi - 1, zi)) * 0.5;
    let gz = (vol.get_clamped(xi, yi, zi + 1) - vol.get_clamped(xi, yi, zi - 1)) * 0.5;
    [gx, gy, gz]
}

/// Central-difference gradient at continuous coordinates, built from
/// trilinear samples half a voxel apart.
pub fn gradient_trilinear(vol: &ScalarVolume, x: f32, y: f32, z: f32) -> [f32; 3] {
    let h = 0.5;
    [
        (trilinear(vol, x + h, y, z) - trilinear(vol, x - h, y, z)) / (2.0 * h),
        (trilinear(vol, x, y + h, z) - trilinear(vol, x, y - h, z)) / (2.0 * h),
        (trilinear(vol, x, y, z + h) - trilinear(vol, x, y, z - h)) / (2.0 * h),
    ]
}

/// Gradient-magnitude volume: `|∇f|` at every voxel (central differences,
/// clamped boundaries) — the second axis of Kindlmann-style 2D transfer
/// functions.
pub fn gradient_magnitude_volume(vol: &ScalarVolume) -> ScalarVolume {
    ScalarVolume::from_fn(vol.dims(), |x, y, z| norm3(gradient_at(vol, x, y, z)))
}

/// Euclidean norm of a 3-vector.
#[inline]
pub fn norm3(v: [f32; 3]) -> f32 {
    (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt()
}

/// Normalize a 3-vector; returns zero vector for (near-)zero input.
#[inline]
pub fn normalize3(v: [f32; 3]) -> [f32; 3] {
    let n = norm3(v);
    if n < 1e-12 {
        [0.0; 3]
    } else {
        [v[0] / n, v[1] / n, v[2] / n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::Dims3;

    fn linear_field() -> ScalarVolume {
        // f(x,y,z) = 2x + 3y - z  (trilinear interpolation is exact on it)
        ScalarVolume::from_fn(Dims3::cube(8), |x, y, z| {
            2.0 * x as f32 + 3.0 * y as f32 - z as f32
        })
    }

    #[test]
    fn trilinear_exact_at_voxel_centers() {
        let v = linear_field();
        assert_eq!(trilinear(&v, 3.0, 4.0, 5.0), *v.get(3, 4, 5));
    }

    #[test]
    fn trilinear_exact_on_linear_fields() {
        let v = linear_field();
        let got = trilinear(&v, 2.25, 3.5, 1.75);
        let want = 2.0 * 2.25 + 3.0 * 3.5 - 1.75;
        assert!((got - want).abs() < 1e-4, "{got} vs {want}");
    }

    #[test]
    fn trilinear_clamps_out_of_range() {
        let v = linear_field();
        assert_eq!(trilinear(&v, -10.0, 0.0, 0.0), *v.get(0, 0, 0));
        assert_eq!(trilinear(&v, 100.0, 7.0, 7.0), *v.get(7, 7, 7));
    }

    #[test]
    fn gradient_of_linear_field() {
        let v = linear_field();
        let g = gradient_at(&v, 4, 4, 4);
        assert!((g[0] - 2.0).abs() < 1e-5);
        assert!((g[1] - 3.0).abs() < 1e-5);
        assert!((g[2] + 1.0).abs() < 1e-5);
    }

    #[test]
    fn gradient_trilinear_matches_integer_gradient_interior() {
        let v = linear_field();
        let gi = gradient_at(&v, 4, 4, 4);
        let gc = gradient_trilinear(&v, 4.0, 4.0, 4.0);
        for k in 0..3 {
            assert!((gi[k] - gc[k]).abs() < 1e-4);
        }
    }

    #[test]
    fn boundary_gradient_uses_one_sided_clamp() {
        let v = linear_field();
        // At x=0 the clamped central difference halves: (f(1)-f(0))/2.
        let g = gradient_at(&v, 0, 4, 4);
        assert!((g[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn gradient_magnitude_volume_matches_pointwise() {
        let v = linear_field();
        let g = gradient_magnitude_volume(&v);
        let expected = (4.0f32 + 9.0 + 1.0).sqrt();
        assert!((g.get(4, 4, 4) - expected).abs() < 1e-4);
        assert_eq!(g.dims(), v.dims());
    }

    #[test]
    fn norm_and_normalize() {
        assert!((norm3([3.0, 4.0, 0.0]) - 5.0).abs() < 1e-6);
        let n = normalize3([0.0, 0.0, 2.0]);
        assert_eq!(n, [0.0, 0.0, 1.0]);
        assert_eq!(normalize3([0.0; 3]), [0.0; 3]);
    }
}
