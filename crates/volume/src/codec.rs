//! Bricked frame compression: byte-shuffled delta + RLE over fixed-size
//! bricks of `f32` voxels.
//!
//! The paper's out-of-core regime is bandwidth-bound — "as the data set
//! grows ... it becomes impractical to load the entire data onto a single
//! computer" (§4.2.3) — so the byte budget of the paging cache is worth
//! exactly as many frames as a byte buys. This codec multiplies that:
//! frames are split into fixed-size bricks, each encoded independently so a
//! reader can validate (and in principle decode) bricks in parallel:
//!
//! 1. **byte shuffle** — the brick's `f32` little-endian words are
//!    transposed into four byte planes (all byte 0s, then all byte 1s, ...),
//!    a pure lane permutation that vectorizes trivially;
//! 2. **delta** — each plane is difference-coded byte-wise (wrapping), so
//!    smooth fields collapse the exponent/high-mantissa planes to near-zero
//!    runs;
//! 3. **RLE** — a PackBits-style run-length pass over the planes.
//!
//! A brick whose encoded form would be no smaller than its raw bytes is
//! *stored* verbatim, so the worst-case overhead is the container (header +
//! one table entry per brick), never a blow-up of the voxel payload. The
//! encoding is exactly invertible on bit patterns: NaN payloads, signed
//! zeros, infinities and denormals all round-trip bit-identically.
//!
//! Every byte of a compressed frame is integrity-checked: the header and
//! brick table are covered by a CRC-32, and each brick payload carries its
//! own CRC-32. Any single corrupted byte surfaces as a typed
//! [`CodecError`] — never a panic, never silently-wrong voxels.

/// Sidecar `dtype` marking a compressed frame file (see [`crate::io`]).
pub const DTYPE: &str = "f32le+ifz1";

/// File magic of the compressed container.
pub const MAGIC: [u8; 4] = *b"IFZ1";

/// Container format version.
pub const VERSION: u32 = 1;

/// Voxels per brick (16 KiB of raw `f32`s). The tail brick may be shorter.
pub const BRICK_VOXELS: usize = 4096;

/// magic + version + voxel count + brick voxels + brick count + header CRC.
pub const HEADER_LEN: usize = 4 + 4 + 8 + 4 + 4 + 4;

/// Brick table entry: mode byte + encoded length + payload CRC.
pub const ENTRY_LEN: usize = 1 + 4 + 4;

/// Brick stored as raw little-endian bytes (incompressible data).
const MODE_STORED: u8 = 0;

/// Brick encoded as byte-shuffled delta + RLE.
const MODE_PACKED: u8 = 1;

/// Typed decode failures. Each names the first check that failed; decoding
/// stops there, so corrupt data can never leak into a caller's voxels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ends before the header, table, or a brick payload does.
    Truncated { need: usize, have: usize },
    /// The file does not start with [`MAGIC`].
    Magic,
    /// Unknown container version.
    Version(u32),
    /// The CRC over header fields and brick table does not match.
    HeaderCrc,
    /// The header's voxel count disagrees with the sidecar dims.
    VoxelCount { expected: u64, got: u64 },
    /// Header brick geometry is internally inconsistent.
    BrickLayout {
        voxels: u64,
        brick_voxels: u32,
        brick_count: u32,
    },
    /// A table entry carries an unknown mode byte.
    BrickMode { brick: usize, mode: u8 },
    /// A brick payload fails its CRC.
    BrickCrc { brick: usize },
    /// A brick decoded to the wrong number of bytes.
    BrickSize {
        brick: usize,
        expected: usize,
        got: usize,
    },
    /// A brick's RLE stream is malformed (token runs past its payload).
    BrickData { brick: usize },
    /// Bytes remain after the last brick payload.
    TrailingBytes { extra: usize },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { need, have } => {
                write!(
                    f,
                    "compressed frame truncated: need {need} bytes, have {have}"
                )
            }
            CodecError::Magic => write!(f, "bad compressed-frame magic"),
            CodecError::Version(v) => write!(f, "unsupported compressed-frame version {v}"),
            CodecError::HeaderCrc => write!(f, "compressed-frame header CRC mismatch"),
            CodecError::VoxelCount { expected, got } => {
                write!(
                    f,
                    "voxel count mismatch: sidecar says {expected}, header says {got}"
                )
            }
            CodecError::BrickLayout {
                voxels,
                brick_voxels,
                brick_count,
            } => write!(
                f,
                "inconsistent brick layout: {voxels} voxels, {brick_voxels} per brick, \
                 {brick_count} bricks"
            ),
            CodecError::BrickMode { brick, mode } => {
                write!(f, "brick {brick}: unknown mode {mode}")
            }
            CodecError::BrickCrc { brick } => write!(f, "brick {brick}: payload CRC mismatch"),
            CodecError::BrickSize {
                brick,
                expected,
                got,
            } => write!(f, "brick {brick}: decoded {got} bytes, expected {expected}"),
            CodecError::BrickData { brick } => {
                write!(f, "brick {brick}: malformed RLE stream")
            }
            CodecError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after last brick")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// CRC-32 (IEEE 802.3, reflected), table-driven.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    for &b in data {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    crc
}

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_update(!0, data)
}

/// Shuffle a brick's raw little-endian bytes into four byte planes, then
/// difference-code each plane byte-wise (wrapping).
fn shuffle_delta(raw: &[u8]) -> Vec<u8> {
    debug_assert_eq!(raw.len() % 4, 0);
    let n = raw.len() / 4;
    let mut out = vec![0u8; raw.len()];
    for p in 0..4 {
        let plane = &mut out[p * n..(p + 1) * n];
        let mut prev = 0u8;
        for (j, slot) in plane.iter_mut().enumerate() {
            let b = raw[4 * j + p];
            *slot = b.wrapping_sub(prev);
            prev = b;
        }
    }
    out
}

/// Exact inverse of [`shuffle_delta`].
fn undelta_unshuffle(planes: &[u8]) -> Vec<u8> {
    debug_assert_eq!(planes.len() % 4, 0);
    let n = planes.len() / 4;
    let mut out = vec![0u8; planes.len()];
    for p in 0..4 {
        let plane = &planes[p * n..(p + 1) * n];
        let mut prev = 0u8;
        for (j, &d) in plane.iter().enumerate() {
            prev = prev.wrapping_add(d);
            out[4 * j + p] = prev;
        }
    }
    out
}

/// Longest run length a single repeat token can carry.
const MAX_RUN: usize = 130;
/// Shortest run worth a repeat token.
const MIN_RUN: usize = 3;
/// Longest literal block a single literal token can carry.
const MAX_LITERAL: usize = 128;

/// PackBits-style RLE: control byte `c < 0x80` introduces `c + 1` literal
/// bytes; `c >= 0x80` repeats the next byte `c - 0x80 + 3` times.
fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 16);
    let mut i = 0;
    let mut lit_start = 0;
    while i < data.len() {
        let mut run = 1;
        while i + run < data.len() && data[i + run] == data[i] && run < MAX_RUN {
            run += 1;
        }
        if run >= MIN_RUN {
            flush_literals(&mut out, &data[lit_start..i]);
            out.push(0x80 + (run - MIN_RUN) as u8);
            out.push(data[i]);
            i += run;
            lit_start = i;
        } else {
            i += run;
        }
    }
    flush_literals(&mut out, &data[lit_start..]);
    out
}

fn flush_literals(out: &mut Vec<u8>, mut lits: &[u8]) {
    while !lits.is_empty() {
        let take = lits.len().min(MAX_LITERAL);
        out.push((take - 1) as u8);
        out.extend_from_slice(&lits[..take]);
        lits = &lits[take..];
    }
}

/// Decode an RLE stream to exactly `expected` bytes; anything else is an
/// error (`None`), including trailing input or a token past the end.
fn rle_decode(data: &[u8], expected: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(expected);
    let mut i = 0;
    while i < data.len() {
        let c = data[i];
        i += 1;
        if c < 0x80 {
            let take = c as usize + 1;
            if i + take > data.len() || out.len() + take > expected {
                return None;
            }
            out.extend_from_slice(&data[i..i + take]);
            i += take;
        } else {
            let run = (c - 0x80) as usize + MIN_RUN;
            if i >= data.len() || out.len() + run > expected {
                return None;
            }
            out.extend(std::iter::repeat(data[i]).take(run));
            i += 1;
        }
    }
    (out.len() == expected).then_some(out)
}

/// Encode `values` into the compressed container. Infallible: bricks that
/// do not compress are stored verbatim, so the output is never larger than
/// the raw frame plus the (small) container overhead.
///
/// Emits the `volume.codec.ratio_pct` runtime counter: encoded size as a
/// percentage of raw size for this frame (100 = break-even).
pub fn encode_frame(values: &[f32]) -> Vec<u8> {
    let brick_count = values.len().div_ceil(BRICK_VOXELS);
    let mut table = Vec::with_capacity(brick_count * ENTRY_LEN);
    let mut payloads = Vec::new();
    for brick in values.chunks(BRICK_VOXELS) {
        let mut raw = Vec::with_capacity(brick.len() * 4);
        for &v in brick {
            raw.extend_from_slice(&v.to_le_bytes());
        }
        let packed = rle_encode(&shuffle_delta(&raw));
        let (mode, payload) = if packed.len() < raw.len() {
            (MODE_PACKED, packed)
        } else {
            (MODE_STORED, raw)
        };
        table.push(mode);
        table.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        table.extend_from_slice(&crc32(&payload).to_le_bytes());
        payloads.extend_from_slice(&payload);
    }

    let mut out = Vec::with_capacity(HEADER_LEN + table.len() + payloads.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(values.len() as u64).to_le_bytes());
    out.extend_from_slice(&(BRICK_VOXELS as u32).to_le_bytes());
    out.extend_from_slice(&(brick_count as u32).to_le_bytes());
    let crc = crc32_update(crc32_update(!0, &out), &table);
    out.extend_from_slice(&(!crc).to_le_bytes());
    out.extend_from_slice(&table);
    out.extend_from_slice(&payloads);

    let raw_total = (values.len() * 4).max(1) as u64;
    ifet_obs::counter_runtime(
        "volume.codec.ratio_pct",
        (out.len() as u64 * 100).div_ceil(raw_total),
    );
    ifet_obs::counter_runtime("volume.codec.bytes_encoded", out.len() as u64);
    out
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Decode a container produced by [`encode_frame`]. `expected_voxels` comes
/// from the sidecar dims and is cross-checked against the header, so a
/// frame can never decode to the wrong shape.
pub fn decode_frame(bytes: &[u8], expected_voxels: usize) -> Result<Vec<f32>, CodecError> {
    if bytes.len() < HEADER_LEN {
        return Err(CodecError::Truncated {
            need: HEADER_LEN,
            have: bytes.len(),
        });
    }
    if bytes[0..4] != MAGIC {
        return Err(CodecError::Magic);
    }
    let version = le_u32(&bytes[4..8]);
    if version != VERSION {
        return Err(CodecError::Version(version));
    }
    let voxels = le_u64(&bytes[8..16]);
    let brick_voxels = le_u32(&bytes[16..20]);
    let brick_count = le_u32(&bytes[20..24]) as usize;
    let stored_crc = le_u32(&bytes[24..28]);

    // Bound the table before trusting any of it.
    let table_len = brick_count
        .checked_mul(ENTRY_LEN)
        .filter(|&t| HEADER_LEN + t <= bytes.len())
        .ok_or(CodecError::Truncated {
            need: HEADER_LEN.saturating_add(brick_count.saturating_mul(ENTRY_LEN)),
            have: bytes.len(),
        })?;
    let table = &bytes[HEADER_LEN..HEADER_LEN + table_len];
    let crc = !crc32_update(crc32_update(!0, &bytes[0..24]), table);
    if crc != stored_crc {
        return Err(CodecError::HeaderCrc);
    }
    if voxels != expected_voxels as u64 {
        return Err(CodecError::VoxelCount {
            expected: expected_voxels as u64,
            got: voxels,
        });
    }
    if brick_voxels == 0 || (voxels.div_ceil(brick_voxels as u64)) != brick_count as u64 {
        return Err(CodecError::BrickLayout {
            voxels,
            brick_voxels,
            brick_count: brick_count as u32,
        });
    }

    let mut out = Vec::with_capacity(expected_voxels);
    let mut off = HEADER_LEN + table_len;
    for b in 0..brick_count {
        let e = &table[b * ENTRY_LEN..(b + 1) * ENTRY_LEN];
        let mode = e[0];
        let enc_len = le_u32(&e[1..5]) as usize;
        let payload_crc = le_u32(&e[5..9]);
        let end = off.checked_add(enc_len).ok_or(CodecError::Truncated {
            need: usize::MAX,
            have: bytes.len(),
        })?;
        if end > bytes.len() {
            return Err(CodecError::Truncated {
                need: end,
                have: bytes.len(),
            });
        }
        let payload = &bytes[off..end];
        off = end;
        if crc32(payload) != payload_crc {
            return Err(CodecError::BrickCrc { brick: b });
        }
        let n = (voxels as usize - b * brick_voxels as usize).min(brick_voxels as usize);
        let raw_len = n * 4;
        let raw = match mode {
            MODE_STORED => {
                if payload.len() != raw_len {
                    return Err(CodecError::BrickSize {
                        brick: b,
                        expected: raw_len,
                        got: payload.len(),
                    });
                }
                payload.to_vec()
            }
            MODE_PACKED => {
                let planes =
                    rle_decode(payload, raw_len).ok_or(CodecError::BrickData { brick: b })?;
                undelta_unshuffle(&planes)
            }
            m => return Err(CodecError::BrickMode { brick: b, mode: m }),
        };
        out.extend(
            raw.chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])),
        );
    }
    if off != bytes.len() {
        return Err(CodecError::TrailingBytes {
            extra: bytes.len() - off,
        });
    }
    ifet_obs::counter_runtime("volume.codec.bytes_decoded", bytes.len() as u64);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[f32]) {
        let enc = encode_frame(values);
        let dec = decode_frame(&enc, values.len()).unwrap();
        assert_eq!(dec.len(), values.len());
        for (a, b) in values.iter().zip(&dec) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-exactness violated");
        }
    }

    #[test]
    fn empty_frame_roundtrips() {
        roundtrip(&[]);
    }

    #[test]
    fn constant_brick_compresses_hard() {
        let values = vec![0.0f32; BRICK_VOXELS * 2];
        let enc = encode_frame(&values);
        roundtrip(&values);
        assert!(
            enc.len() * 20 < values.len() * 4,
            "constant data must compress >20x, got {} of {}",
            enc.len(),
            values.len() * 4
        );
    }

    #[test]
    fn smooth_ramp_compresses() {
        let values: Vec<f32> = (0..10_000).map(|i| i as f32 * 0.25).collect();
        let enc = encode_frame(&values);
        roundtrip(&values);
        assert!(enc.len() < values.len() * 4, "smooth data must shrink");
    }

    #[test]
    fn ragged_tail_brick_roundtrips() {
        let values: Vec<f32> = (0..BRICK_VOXELS + 37).map(|i| (i as f32).sin()).collect();
        roundtrip(&values);
    }

    #[test]
    fn special_values_roundtrip_bitwise() {
        let values = [
            f32::NAN,
            f32::from_bits(0x7fc0_dead), // NaN with payload
            f32::from_bits(0xffc0_0001),
            f32::INFINITY,
            f32::NEG_INFINITY,
            0.0,
            -0.0,
            f32::MIN_POSITIVE / 2.0, // denormal
            f32::from_bits(1),
            f32::MAX,
            f32::MIN,
        ];
        roundtrip(&values);
    }

    #[test]
    fn incompressible_data_stays_bounded() {
        // splitmix64-ish noise: RLE finds nothing, bricks fall back to
        // stored mode, overhead is container-only.
        let mut x = 0x1234_5678_9abc_def0u64;
        let values: Vec<f32> = (0..BRICK_VOXELS * 2 + 11)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                f32::from_bits((x >> 32) as u32)
            })
            .collect();
        let enc = encode_frame(&values);
        roundtrip(&values);
        let raw = values.len() * 4;
        assert!(
            enc.len() <= raw + HEADER_LEN + 3 * ENTRY_LEN + 64,
            "worst case must be container overhead only: {} vs raw {raw}",
            enc.len()
        );
    }

    #[test]
    fn ratio_counter_is_sane() {
        let values = vec![1.5f32; 5000];
        let (_, trace) = ifet_obs::capture("codec.test", || encode_frame(&values));
        let ratio = trace.root.counter("volume.codec.ratio_pct").unwrap();
        assert!((1..=200).contains(&ratio), "ratio {ratio}% out of range");
    }

    #[test]
    fn rle_tokens_are_exact() {
        for data in [
            vec![],
            vec![7u8],
            vec![1, 2, 3],
            vec![5; 1000],
            (0..=255u8).collect::<Vec<_>>(),
            vec![0, 0, 0, 1, 1, 2, 2, 2, 2],
        ] {
            let enc = rle_encode(&data);
            assert_eq!(rle_decode(&enc, data.len()).unwrap(), data);
        }
    }

    #[test]
    fn rle_decode_rejects_bad_streams() {
        // Literal token promising more bytes than remain.
        assert!(rle_decode(&[10, 1, 2], 11).is_none());
        // Repeat token with no value byte.
        assert!(rle_decode(&[0x85], 8).is_none());
        // Output longer than expected.
        assert!(rle_decode(&[0x80 + 127, 9], 4).is_none());
        // Output shorter than expected.
        assert!(rle_decode(&[0x00, 5], 2).is_none());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let values: Vec<f32> = (0..600).map(|i| (i % 7) as f32).collect();
        let enc = encode_frame(&values);
        for i in 0..enc.len() {
            let mut bad = enc.clone();
            bad[i] ^= 0x40;
            assert!(
                decode_frame(&bad, values.len()).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn wrong_expected_voxels_is_typed() {
        let enc = encode_frame(&[1.0, 2.0, 3.0]);
        assert!(matches!(
            decode_frame(&enc, 4),
            Err(CodecError::VoxelCount {
                expected: 4,
                got: 3
            })
        ));
    }

    #[test]
    fn truncation_is_typed() {
        let enc = encode_frame(&[1.0; 100]);
        for cut in [0, 10, HEADER_LEN, enc.len() - 1] {
            assert!(matches!(
                decode_frame(&enc[..cut], 100),
                Err(CodecError::Truncated { .. } | CodecError::HeaderCrc)
            ));
        }
    }
}
