//! Grid dimensions and index arithmetic for dense 3D volumes.

use serde::{Deserialize, Serialize};

/// A 3D voxel coordinate `(x, y, z)`.
pub type Ix3 = (usize, usize, usize);

/// Dimensions of a dense 3D grid, laid out x-fastest:
/// `linear = x + nx * (y + ny * z)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dims3 {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

impl Dims3 {
    /// Create dimensions. All axes must be non-zero.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "Dims3 axes must be non-zero");
        Self { nx, ny, nz }
    }

    /// A cube `n`×`n`×`n`.
    pub fn cube(n: usize) -> Self {
        Self::new(n, n, n)
    }

    /// Total number of voxels.
    #[inline]
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// True when the grid has zero voxels (cannot happen via `new`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of `(x, y, z)`. Debug-asserts bounds.
    #[inline]
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(self.contains(x, y, z), "({x},{y},{z}) out of {self:?}");
        x + self.nx * (y + self.ny * z)
    }

    /// Inverse of [`Dims3::index`].
    #[inline]
    pub fn coords(&self, idx: usize) -> Ix3 {
        debug_assert!(idx < self.len());
        let x = idx % self.nx;
        let y = (idx / self.nx) % self.ny;
        let z = idx / (self.nx * self.ny);
        (x, y, z)
    }

    /// True when `(x, y, z)` lies inside the grid.
    #[inline]
    pub fn contains(&self, x: usize, y: usize, z: usize) -> bool {
        x < self.nx && y < self.ny && z < self.nz
    }

    /// True when the signed coordinate lies inside the grid.
    #[inline]
    pub fn contains_i(&self, x: i64, y: i64, z: i64) -> bool {
        x >= 0
            && y >= 0
            && z >= 0
            && (x as usize) < self.nx
            && (y as usize) < self.ny
            && (z as usize) < self.nz
    }

    /// Clamp a signed coordinate onto the grid.
    #[inline]
    pub fn clamp_i(&self, x: i64, y: i64, z: i64) -> Ix3 {
        (
            x.clamp(0, self.nx as i64 - 1) as usize,
            y.clamp(0, self.ny as i64 - 1) as usize,
            z.clamp(0, self.nz as i64 - 1) as usize,
        )
    }

    /// Iterate all voxel coordinates in linear (x-fastest) order.
    pub fn iter(&self) -> impl Iterator<Item = Ix3> + '_ {
        let d = *self;
        (0..d.len()).map(move |i| d.coords(i))
    }

    /// The 6 face-adjacent neighbours of `(x, y, z)` that are in bounds.
    pub fn neighbors6(&self, x: usize, y: usize, z: usize) -> impl Iterator<Item = Ix3> + '_ {
        const OFFS: [(i64, i64, i64); 6] = [
            (-1, 0, 0),
            (1, 0, 0),
            (0, -1, 0),
            (0, 1, 0),
            (0, 0, -1),
            (0, 0, 1),
        ];
        let d = *self;
        OFFS.iter().filter_map(move |&(dx, dy, dz)| {
            let (nx, ny, nz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
            d.contains_i(nx, ny, nz)
                .then_some((nx as usize, ny as usize, nz as usize))
        })
    }

    /// The 26 (face + edge + corner) neighbours in bounds.
    pub fn neighbors26(&self, x: usize, y: usize, z: usize) -> impl Iterator<Item = Ix3> + '_ {
        let d = *self;
        (-1i64..=1)
            .flat_map(move |dz| {
                (-1i64..=1).flat_map(move |dy| (-1i64..=1).map(move |dx| (dx, dy, dz)))
            })
            .filter(|&(dx, dy, dz)| (dx, dy, dz) != (0, 0, 0))
            .filter_map(move |(dx, dy, dz)| {
                let (nx, ny, nz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                d.contains_i(nx, ny, nz)
                    .then_some((nx as usize, ny as usize, nz as usize))
            })
    }
}

impl std::fmt::Display for Dims3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.nx, self.ny, self.nz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let d = Dims3::new(4, 5, 6);
        for idx in 0..d.len() {
            let (x, y, z) = d.coords(idx);
            assert_eq!(d.index(x, y, z), idx);
        }
    }

    #[test]
    fn len_matches_product() {
        let d = Dims3::new(3, 7, 11);
        assert_eq!(d.len(), 3 * 7 * 11);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_axis_panics() {
        let _ = Dims3::new(0, 1, 1);
    }

    #[test]
    fn contains_bounds() {
        let d = Dims3::cube(4);
        assert!(d.contains(0, 0, 0));
        assert!(d.contains(3, 3, 3));
        assert!(!d.contains(4, 0, 0));
        assert!(d.contains_i(3, 3, 3));
        assert!(!d.contains_i(-1, 0, 0));
    }

    #[test]
    fn clamp_clamps() {
        let d = Dims3::cube(4);
        assert_eq!(d.clamp_i(-5, 2, 9), (0, 2, 3));
    }

    #[test]
    fn neighbors6_interior_and_corner() {
        let d = Dims3::cube(3);
        assert_eq!(d.neighbors6(1, 1, 1).count(), 6);
        assert_eq!(d.neighbors6(0, 0, 0).count(), 3);
    }

    #[test]
    fn neighbors26_interior_and_corner() {
        let d = Dims3::cube(3);
        assert_eq!(d.neighbors26(1, 1, 1).count(), 26);
        assert_eq!(d.neighbors26(0, 0, 0).count(), 7);
    }

    #[test]
    fn iter_visits_all_in_linear_order() {
        let d = Dims3::new(2, 3, 2);
        let coords: Vec<_> = d.iter().collect();
        assert_eq!(coords.len(), d.len());
        assert_eq!(coords[0], (0, 0, 0));
        assert_eq!(coords[1], (1, 0, 0));
        assert_eq!(coords[2], (0, 1, 0));
        assert_eq!(*coords.last().unwrap(), (1, 2, 1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Dims3::new(1, 2, 3).to_string(), "1x2x3");
    }
}
