//! Dense 3D vector fields and differential operators (vorticity, divergence),
//! the raw material of flow-feature extraction.

#![allow(clippy::needless_range_loop)] // indexing fixed-size [f64; 3] axes
use crate::dims::Dims3;
use crate::volume::{ScalarVolume, Volume};
use serde::{Deserialize, Serialize};

/// A dense 3D field of 3-vectors (e.g. a velocity field).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VectorVolume {
    dims: Dims3,
    /// Interleaved `[u, v, w]` per voxel, x-fastest layout.
    data: Vec<[f32; 3]>,
}

impl VectorVolume {
    /// All-zero vector field.
    pub fn zeros(dims: Dims3) -> Self {
        Self {
            dims,
            data: vec![[0.0; 3]; dims.len()],
        }
    }

    /// Build by evaluating `f` at every voxel.
    pub fn from_fn(dims: Dims3, mut f: impl FnMut(usize, usize, usize) -> [f32; 3]) -> Self {
        let mut data = Vec::with_capacity(dims.len());
        for z in 0..dims.nz {
            for y in 0..dims.ny {
                for x in 0..dims.nx {
                    data.push(f(x, y, z));
                }
            }
        }
        Self { dims, data }
    }

    /// Assemble from three scalar components (must share dims).
    pub fn from_components(u: &ScalarVolume, v: &ScalarVolume, w: &ScalarVolume) -> Self {
        assert_eq!(u.dims(), v.dims());
        assert_eq!(u.dims(), w.dims());
        let dims = u.dims();
        let data = u
            .as_slice()
            .iter()
            .zip(v.as_slice())
            .zip(w.as_slice())
            .map(|((&a, &b), &c)| [a, b, c])
            .collect();
        Self { dims, data }
    }

    #[inline]
    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> [f32; 3] {
        self.data[self.dims.index(x, y, z)]
    }

    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: [f32; 3]) {
        let i = self.dims.index(x, y, z);
        self.data[i] = v;
    }

    #[inline]
    pub fn get_clamped(&self, x: i64, y: i64, z: i64) -> [f32; 3] {
        let (cx, cy, cz) = self.dims.clamp_i(x, y, z);
        self.get(cx, cy, cz)
    }

    #[inline]
    pub fn as_slice(&self) -> &[[f32; 3]] {
        &self.data
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [[f32; 3]] {
        &mut self.data
    }

    /// Extract one component as a scalar volume (`0 = u, 1 = v, 2 = w`).
    pub fn component(&self, k: usize) -> ScalarVolume {
        assert!(k < 3);
        Volume::from_vec(self.dims, self.data.iter().map(|v| v[k]).collect())
    }

    /// Per-voxel Euclidean magnitude.
    pub fn magnitude(&self) -> ScalarVolume {
        Volume::from_vec(
            self.dims,
            self.data
                .iter()
                .map(|v| (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt())
                .collect(),
        )
    }

    /// Curl (vorticity vector) via central differences, unit grid spacing.
    pub fn curl(&self) -> VectorVolume {
        let d = self.dims;
        VectorVolume::from_fn(d, |x, y, z| {
            let (xi, yi, zi) = (x as i64, y as i64, z as i64);
            let ddx = |f: &dyn Fn([f32; 3]) -> f32| {
                (f(self.get_clamped(xi + 1, yi, zi)) - f(self.get_clamped(xi - 1, yi, zi))) * 0.5
            };
            let ddy = |f: &dyn Fn([f32; 3]) -> f32| {
                (f(self.get_clamped(xi, yi + 1, zi)) - f(self.get_clamped(xi, yi - 1, zi))) * 0.5
            };
            let ddz = |f: &dyn Fn([f32; 3]) -> f32| {
                (f(self.get_clamped(xi, yi, zi + 1)) - f(self.get_clamped(xi, yi, zi - 1))) * 0.5
            };
            let u = |v: [f32; 3]| v[0];
            let vv = |v: [f32; 3]| v[1];
            let w = |v: [f32; 3]| v[2];
            [ddy(&w) - ddz(&vv), ddz(&u) - ddx(&w), ddx(&vv) - ddy(&u)]
        })
    }

    /// Vorticity magnitude `|curl(velocity)|` — the scalar field visualized
    /// in the paper's DNS combustion case study (Figure 5).
    pub fn vorticity_magnitude(&self) -> ScalarVolume {
        self.curl().magnitude()
    }

    /// Divergence via central differences, unit grid spacing.
    pub fn divergence(&self) -> ScalarVolume {
        let d = self.dims;
        ScalarVolume::from_fn(d, |x, y, z| {
            let (xi, yi, zi) = (x as i64, y as i64, z as i64);
            let du =
                (self.get_clamped(xi + 1, yi, zi)[0] - self.get_clamped(xi - 1, yi, zi)[0]) * 0.5;
            let dv =
                (self.get_clamped(xi, yi + 1, zi)[1] - self.get_clamped(xi, yi - 1, zi)[1]) * 0.5;
            let dw =
                (self.get_clamped(xi, yi, zi + 1)[2] - self.get_clamped(xi, yi, zi - 1)[2]) * 0.5;
            du + dv + dw
        })
    }

    /// Trilinear interpolation of the vector field at continuous coordinates.
    pub fn trilinear(&self, x: f32, y: f32, z: f32) -> [f32; 3] {
        let d = self.dims;
        let cx = x.clamp(0.0, (d.nx - 1) as f32);
        let cy = y.clamp(0.0, (d.ny - 1) as f32);
        let cz = z.clamp(0.0, (d.nz - 1) as f32);
        let x0 = cx.floor() as usize;
        let y0 = cy.floor() as usize;
        let z0 = cz.floor() as usize;
        let x1 = (x0 + 1).min(d.nx - 1);
        let y1 = (y0 + 1).min(d.ny - 1);
        let z1 = (z0 + 1).min(d.nz - 1);
        let fx = cx - x0 as f32;
        let fy = cy - y0 as f32;
        let fz = cz - z0 as f32;
        let mut out = [0.0f32; 3];
        for k in 0..3 {
            let v000 = self.get(x0, y0, z0)[k];
            let v100 = self.get(x1, y0, z0)[k];
            let v010 = self.get(x0, y1, z0)[k];
            let v110 = self.get(x1, y1, z0)[k];
            let v001 = self.get(x0, y0, z1)[k];
            let v101 = self.get(x1, y0, z1)[k];
            let v011 = self.get(x0, y1, z1)[k];
            let v111 = self.get(x1, y1, z1)[k];
            let c00 = v000 + (v100 - v000) * fx;
            let c10 = v010 + (v110 - v010) * fx;
            let c01 = v001 + (v101 - v001) * fx;
            let c11 = v011 + (v111 - v011) * fx;
            let c0 = c00 + (c10 - c00) * fy;
            let c1 = c01 + (c11 - c01) * fy;
            out[k] = c0 + (c1 - c0) * fz;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rigid rotation about z: u = -y, v = x, w = 0. curl = (0, 0, 2).
    fn rotation_field(n: usize) -> VectorVolume {
        let c = (n as f32 - 1.0) / 2.0;
        VectorVolume::from_fn(Dims3::cube(n), |x, y, _| {
            [-(y as f32 - c), x as f32 - c, 0.0]
        })
    }

    #[test]
    fn components_roundtrip() {
        let f = rotation_field(6);
        let u = f.component(0);
        let v = f.component(1);
        let w = f.component(2);
        let g = VectorVolume::from_components(&u, &v, &w);
        assert_eq!(f, g);
    }

    #[test]
    fn magnitude_of_unit_field() {
        let f = VectorVolume::from_fn(Dims3::cube(3), |_, _, _| [3.0, 0.0, 4.0]);
        let m = f.magnitude();
        assert!((m.get(1, 1, 1) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn curl_of_rigid_rotation_is_two_z() {
        let f = rotation_field(9);
        let c = f.curl();
        let v = c.get(4, 4, 4);
        assert!(v[0].abs() < 1e-5 && v[1].abs() < 1e-5);
        assert!((v[2] - 2.0).abs() < 1e-5, "curl_z = {}", v[2]);
    }

    #[test]
    fn vorticity_magnitude_of_rotation() {
        let f = rotation_field(9);
        let m = f.vorticity_magnitude();
        assert!((m.get(4, 4, 4) - 2.0).abs() < 1e-5);
    }

    #[test]
    fn divergence_of_rotation_is_zero() {
        let f = rotation_field(9);
        let div = f.divergence();
        assert!(div.get(4, 4, 4).abs() < 1e-5);
    }

    #[test]
    fn divergence_of_radial_expansion() {
        // u = (x - c, y - c, z - c): divergence = 3 everywhere (interior).
        let n = 9;
        let c = (n as f32 - 1.0) / 2.0;
        let f = VectorVolume::from_fn(Dims3::cube(n), |x, y, z| {
            [x as f32 - c, y as f32 - c, z as f32 - c]
        });
        let div = f.divergence();
        assert!((div.get(4, 4, 4) - 3.0).abs() < 1e-5);
    }

    #[test]
    fn trilinear_exact_on_linear_field() {
        let f = VectorVolume::from_fn(Dims3::cube(5), |x, y, z| {
            [x as f32, 2.0 * y as f32, x as f32 + z as f32]
        });
        let got = f.trilinear(1.5, 2.25, 3.0);
        assert!((got[0] - 1.5).abs() < 1e-5);
        assert!((got[1] - 4.5).abs() < 1e-5);
        assert!((got[2] - 4.5).abs() < 1e-5);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut f = VectorVolume::zeros(Dims3::cube(3));
        f.set(2, 1, 0, [1.0, 2.0, 3.0]);
        assert_eq!(f.get(2, 1, 0), [1.0, 2.0, 3.0]);
        assert_eq!(f.get_clamped(5, 1, 0), [1.0, 2.0, 3.0]);
    }
}
