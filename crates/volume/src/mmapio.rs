//! Zero-copy frame mapping: a tiny no-libc-crate `mmap` shim.
//!
//! Raw frame files are pure little-endian `f32` payloads, so on a
//! little-endian Unix host a read-only file mapping *is* the voxel slice —
//! page-in borrows the OS page cache instead of copying into a heap `Vec`.
//! The build environment has no `libc`/`memmap2` crate, but `std` already
//! links the platform libc, so the two symbols we need are declared here
//! directly.
//!
//! # Borrow rules
//!
//! - A [`Mapping`] is read-only (`PROT_READ`, `MAP_PRIVATE`): the voxels it
//!   exposes can never be written through, and a mapped
//!   [`crate::ScalarVolume`] transparently copies itself to owned storage
//!   if a caller ever asks for mutable access.
//! - The mapping is `munmap`ed when the last `Arc` clone drops; volumes
//!   built over it share the `Arc`, so a frame handle outlives cache
//!   eviction exactly like a copied frame does.
//! - The bytes are *not* snapshotted: truncating or rewriting the file
//!   while it is mapped is undefined at the OS level, the same contract as
//!   every other mmap consumer. The paging layer only maps immutable,
//!   fully written frame files.
//!
//! On unsupported targets (non-Unix or big-endian) [`map_frame`] silently
//! falls back to an ordinary copying read, so `--mmap` stays byte-identical
//! everywhere.

use crate::io::{read_raw, IoError};
use crate::volume::ScalarVolume;
use std::path::Path;
use std::sync::Arc;

#[cfg(all(unix, target_endian = "little"))]
mod sys {
    use std::ffi::c_void;
    use std::os::unix::io::RawFd;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: RawFd,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// A read-only, page-aligned mapping of a whole file.
#[derive(Debug)]
pub struct Mapping {
    ptr: *const u8,
    len: usize,
}

// A private read-only mapping is plain immutable memory: nothing can write
// through it, so sharing across threads is as safe as sharing a `&[u8]`.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Whether this build actually maps files (vs. the copying fallback).
    pub fn supported() -> bool {
        cfg!(all(unix, target_endian = "little"))
    }

    /// Map `path` read-only. Errors come straight from `open`/`mmap`.
    #[cfg(all(unix, target_endian = "little"))]
    pub fn map(path: &Path) -> std::io::Result<Mapping> {
        use std::os::unix::io::AsRawFd;
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            // mmap(len = 0) is EINVAL; an empty file has no bytes to map.
            return Ok(Mapping {
                ptr: std::ptr::NonNull::<f32>::dangling().as_ptr() as *const u8,
                len: 0,
            });
        }
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        ifet_obs::counter_runtime("volume.io.bytes_mapped", len as u64);
        Ok(Mapping {
            ptr: ptr as *const u8,
            len,
        })
    }

    #[cfg(not(all(unix, target_endian = "little")))]
    pub fn map(_path: &Path) -> std::io::Result<Mapping> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "mmap unavailable on this target",
        ))
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn as_bytes(&self) -> &[u8] {
        // Safety: `ptr` is either a live mapping of `len` bytes (kept alive
        // by `self`) or a dangling pointer with `len == 0`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// View the mapping as `f32`s; `None` when the length is not a multiple
    /// of four or the base pointer is misaligned (never happens for a
    /// page-aligned file mapping, but checked anyway).
    pub fn as_f32s(&self) -> Option<&[f32]> {
        if self.len % 4 != 0 || (self.ptr as usize) % std::mem::align_of::<f32>() != 0 {
            return None;
        }
        // Safety: alignment and length checked; every `u32` bit pattern is
        // a valid `f32`; the host is little-endian (by construction of the
        // writers and the cfg gate on `map`).
        Some(unsafe { std::slice::from_raw_parts(self.ptr as *const f32, self.len / 4) })
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(all(unix, target_endian = "little"))]
        if self.len > 0 {
            // Safety: `ptr`/`len` came from a successful mmap and are
            // unmapped exactly once.
            unsafe {
                sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
            }
        }
    }
}

/// Load a raw frame as a mapped volume: sidecar for dims, `mmap` for the
/// voxels. Validation matches [`read_raw`] (dtype must be `"f32le"`, file
/// length must equal `dims.len() * 4`); on targets without mmap support the
/// voxels are read by copy instead, with identical results.
pub fn map_frame(path: &Path) -> Result<ScalarVolume, IoError> {
    let meta = crate::io::read_sidecar(path)?;
    if meta.dtype != "f32le" {
        return Err(IoError::UnsupportedDtype(meta.dtype));
    }
    if !Mapping::supported() {
        return read_raw(path).map(|(v, _)| v);
    }
    let map = Mapping::map(path)?;
    let expected = meta.dims.len() * 4;
    if map.len() != expected {
        return Err(IoError::SizeMismatch {
            expected,
            got: map.len(),
        });
    }
    ScalarVolume::from_mapping(meta.dims, Arc::new(map))
        .ok_or(IoError::SizeMismatch { expected, got: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::Dims3;
    use crate::io::{write_raw, VolumeMeta};
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ifet_mmap_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn mapped_frame_matches_copied_read() {
        let dir = tmpdir("match");
        let v = ScalarVolume::from_fn(Dims3::new(5, 4, 3), |x, y, z| {
            x as f32 - 0.25 * y as f32 + 2.0 * z as f32
        });
        let p = dir.join("v.raw");
        write_raw(&p, &v, &VolumeMeta::new(v.dims())).unwrap();
        let mapped = map_frame(&p).unwrap();
        assert_eq!(mapped, v);
        assert_eq!(mapped.is_mapped(), Mapping::supported());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn mapped_size_mismatch_is_typed() {
        let dir = tmpdir("size");
        let v = ScalarVolume::zeros(Dims3::cube(3));
        let p = dir.join("v.raw");
        write_raw(&p, &v, &VolumeMeta::new(v.dims())).unwrap();
        std::fs::write(&p, [0u8; 8]).unwrap();
        assert!(matches!(
            map_frame(&p),
            Err(IoError::SizeMismatch { expected: 108, .. })
        ));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn mapped_volume_survives_clone_and_mutation() {
        let dir = tmpdir("cow");
        let v = ScalarVolume::from_fn(Dims3::cube(4), |x, _, _| x as f32);
        let p = dir.join("v.raw");
        write_raw(&p, &v, &VolumeMeta::new(v.dims())).unwrap();
        let mapped = map_frame(&p).unwrap();
        let mut clone = mapped.clone();
        // Mutation copies to owned storage and never writes the mapping.
        clone.set(0, 0, 0, 99.0);
        assert_eq!(*clone.get(0, 0, 0), 99.0);
        assert_eq!(*mapped.get(0, 0, 0), 0.0);
        assert!(!clone.is_mapped());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn compressed_dtype_is_rejected_for_mapping() {
        let dir = tmpdir("dtype");
        let v = ScalarVolume::zeros(Dims3::cube(2));
        let p = dir.join("v.rawz");
        crate::io::write_compressed(&p, &v, &VolumeMeta::new(v.dims())).unwrap();
        assert!(matches!(map_frame(&p), Err(IoError::UnsupportedDtype(_))));
        std::fs::remove_dir_all(dir).ok();
    }
}
