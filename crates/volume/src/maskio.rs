//! Versioned binary encoding for [`Mask3`] — the word-packed section format
//! used inside on-disk session artifacts.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic "MSK3"
//!      4     2  format version (currently 1)
//!      6     2  reserved (zero)
//!      8     8  nx
//!     16     8  ny
//!     24     8  nz
//!     32     8  word count
//!     40  8*nw  packed words (bit i%64 of word i/64 is voxel i)
//! ```
//!
//! The encoding is self-delimiting: [`decode_mask`] reports how many bytes it
//! consumed so several masks can be packed back to back in one section. Like
//! [`crate::io`], every malformed input maps to a typed [`MaskIoError`] —
//! corrupted headers must never panic or allocate unbounded memory.

use crate::dims::Dims3;
use crate::mask::{Mask3, MaskWordsError};

/// Magic bytes opening every encoded mask.
pub const MASK_MAGIC: [u8; 4] = *b"MSK3";
/// Current format version written by [`encode_mask`].
pub const MASK_FORMAT_VERSION: u16 = 1;
/// Fixed header size in bytes (before the packed words).
pub const MASK_HEADER_LEN: usize = 40;

/// Errors raised while decoding a binary mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaskIoError {
    /// Input ended before the header or payload was complete.
    Truncated { needed: usize, got: usize },
    /// The first four bytes were not `MSK3`.
    BadMagic,
    /// The version field names a format this build cannot read.
    UnsupportedVersion { found: u16, supported: u16 },
    /// An axis was zero or the voxel count overflowed `usize`.
    BadDims { nx: u64, ny: u64, nz: u64 },
    /// The stored word count disagrees with the dimensions.
    WordCountMismatch { expected: usize, got: u64 },
    /// Bits were set past the end of the voxel range in the last word.
    TailBitsSet,
}

impl std::fmt::Display for MaskIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaskIoError::Truncated { needed, got } => {
                write!(f, "truncated mask: needed {needed} bytes, got {got}")
            }
            MaskIoError::BadMagic => write!(f, "bad mask magic (expected \"MSK3\")"),
            MaskIoError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported mask version {found} (supported: {supported})"
                )
            }
            MaskIoError::BadDims { nx, ny, nz } => {
                write!(f, "invalid mask dimensions {nx}x{ny}x{nz}")
            }
            MaskIoError::WordCountMismatch { expected, got } => {
                write!(
                    f,
                    "mask word count mismatch: expected {expected}, got {got}"
                )
            }
            MaskIoError::TailBitsSet => {
                write!(f, "mask has bits set past the end of the voxel range")
            }
        }
    }
}

impl std::error::Error for MaskIoError {}

/// Append the binary encoding of `mask` to `out`.
pub fn encode_mask_into(out: &mut Vec<u8>, mask: &Mask3) {
    let d = mask.dims();
    out.extend_from_slice(&MASK_MAGIC);
    out.extend_from_slice(&MASK_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&(d.nx as u64).to_le_bytes());
    out.extend_from_slice(&(d.ny as u64).to_le_bytes());
    out.extend_from_slice(&(d.nz as u64).to_le_bytes());
    out.extend_from_slice(&(mask.words().len() as u64).to_le_bytes());
    for &w in mask.words() {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Encode `mask` as a standalone byte vector.
pub fn encode_mask(mask: &Mask3) -> Vec<u8> {
    let mut out = Vec::with_capacity(MASK_HEADER_LEN + mask.words().len() * 8);
    encode_mask_into(&mut out, mask);
    out
}

fn read_u64(buf: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[at..at + 8]);
    u64::from_le_bytes(b)
}

/// Decode one mask from the front of `buf`, returning it together with the
/// number of bytes consumed (so callers can decode packed sequences).
///
/// All validation is done with checked arithmetic *before* any allocation, so
/// a corrupted header cannot trigger an overflow panic or a huge allocation:
/// the payload length implied by the header must actually be present in `buf`.
pub fn decode_mask(buf: &[u8]) -> Result<(Mask3, usize), MaskIoError> {
    if buf.len() < MASK_HEADER_LEN {
        return Err(MaskIoError::Truncated {
            needed: MASK_HEADER_LEN,
            got: buf.len(),
        });
    }
    if buf[0..4] != MASK_MAGIC {
        return Err(MaskIoError::BadMagic);
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version != MASK_FORMAT_VERSION {
        return Err(MaskIoError::UnsupportedVersion {
            found: version,
            supported: MASK_FORMAT_VERSION,
        });
    }
    let (nx, ny, nz) = (read_u64(buf, 8), read_u64(buf, 16), read_u64(buf, 24));
    let nwords = read_u64(buf, 32);
    let bad_dims = MaskIoError::BadDims { nx, ny, nz };
    if nx == 0 || ny == 0 || nz == 0 {
        return Err(bad_dims);
    }
    let len = usize::try_from(nx)
        .ok()
        .and_then(|a| usize::try_from(ny).ok().and_then(|b| a.checked_mul(b)))
        .and_then(|ab| usize::try_from(nz).ok().and_then(|c| ab.checked_mul(c)))
        .ok_or(bad_dims.clone())?;
    let expected_words = len.div_ceil(64);
    if nwords != expected_words as u64 {
        return Err(MaskIoError::WordCountMismatch {
            expected: expected_words,
            got: nwords,
        });
    }
    // expected_words <= len/64 + 1 <= usize::MAX/64 + 1, so * 8 cannot
    // overflow after len fit in usize; still use checked math for clarity.
    let payload = expected_words
        .checked_mul(8)
        .and_then(|p| p.checked_add(MASK_HEADER_LEN))
        .ok_or(bad_dims)?;
    if buf.len() < payload {
        return Err(MaskIoError::Truncated {
            needed: payload,
            got: buf.len(),
        });
    }
    let words: Vec<u64> = buf[MASK_HEADER_LEN..payload]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect();
    // Axes are non-zero and the product fit in usize, so the `Dims3` literal
    // is as valid as one from `Dims3::new` without risking its assert.
    let dims = Dims3 {
        nx: nx as usize,
        ny: ny as usize,
        nz: nz as usize,
    };
    let mask = Mask3::from_words(dims, words).map_err(|e| match e {
        MaskWordsError::WordCountMismatch { expected, got } => MaskIoError::WordCountMismatch {
            expected,
            got: got as u64,
        },
        MaskWordsError::TailBitsSet => MaskIoError::TailBitsSet,
    })?;
    Ok((mask, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_mask(d: Dims3) -> Mask3 {
        Mask3::from_fn(d, |x, y, z| (x + 2 * y + 3 * z) % 3 == 0)
    }

    #[test]
    fn roundtrip_single() {
        for d in [Dims3::new(1, 1, 1), Dims3::new(5, 3, 2), Dims3::cube(8)] {
            let m = ramp_mask(d);
            let bytes = encode_mask(&m);
            let (back, used) = decode_mask(&bytes).unwrap();
            assert_eq!(back, m);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn roundtrip_packed_sequence() {
        let masks = vec![
            ramp_mask(Dims3::cube(4)),
            Mask3::full(Dims3::new(3, 1, 7)),
            Mask3::empty(Dims3::new(2, 9, 1)),
        ];
        let mut buf = Vec::new();
        for m in &masks {
            encode_mask_into(&mut buf, m);
        }
        let mut at = 0;
        for m in &masks {
            let (back, used) = decode_mask(&buf[at..]).unwrap();
            assert_eq!(&back, m);
            at += used;
        }
        assert_eq!(at, buf.len());
    }

    #[test]
    fn truncation_at_every_length_is_typed() {
        let bytes = encode_mask(&ramp_mask(Dims3::cube(5)));
        for cut in 0..bytes.len() {
            match decode_mask(&bytes[..cut]) {
                Err(MaskIoError::Truncated { needed, got }) => {
                    assert_eq!(got, cut);
                    assert!(needed > cut);
                }
                other => panic!("cut {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_mask(&ramp_mask(Dims3::cube(3)));
        bytes[0] ^= 0xff;
        assert_eq!(decode_mask(&bytes).unwrap_err(), MaskIoError::BadMagic);
    }

    #[test]
    fn version_bump_rejected() {
        let mut bytes = encode_mask(&ramp_mask(Dims3::cube(3)));
        bytes[4] = 2;
        assert_eq!(
            decode_mask(&bytes).unwrap_err(),
            MaskIoError::UnsupportedVersion {
                found: 2,
                supported: MASK_FORMAT_VERSION
            }
        );
    }

    #[test]
    fn zero_axis_rejected() {
        let mut bytes = encode_mask(&ramp_mask(Dims3::cube(3)));
        bytes[8..16].copy_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            decode_mask(&bytes),
            Err(MaskIoError::BadDims { nx: 0, .. })
        ));
    }

    #[test]
    fn huge_dims_do_not_allocate() {
        // An adversarial header claiming u64::MAX voxels must fail fast with
        // a typed error (the payload check fires before any allocation).
        let mut bytes = encode_mask(&ramp_mask(Dims3::cube(3)));
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_mask(&bytes).is_err());
    }

    #[test]
    fn word_count_mismatch_rejected() {
        let mut bytes = encode_mask(&ramp_mask(Dims3::cube(3)));
        bytes[32..40].copy_from_slice(&99u64.to_le_bytes());
        assert!(matches!(
            decode_mask(&bytes),
            Err(MaskIoError::WordCountMismatch { got: 99, .. })
        ));
    }

    #[test]
    fn tail_bits_rejected() {
        // 3^3 = 27 bits: flipping a high bit in the only word breaks the
        // tail-zero invariant and must be caught, not silently accepted.
        let mut bytes = encode_mask(&Mask3::empty(Dims3::cube(3)));
        let last = bytes.len() - 1;
        bytes[last] |= 0x80;
        assert_eq!(decode_mask(&bytes).unwrap_err(), MaskIoError::TailBitsSet);
    }
}
