//! Spherical-shell neighborhood sampling.
//!
//! The paper's data-space feature extraction (Section 4.3) does not feed the
//! full volumetric neighborhood of a voxel to the network: "we use a shell
//! rather than the whole volumetric neighborhood of the feature to cut down
//! the cost. ... only those voxels a fixed distance away from the feature of
//! interest are used, and this distance is data dependent and derived
//! according to the characteristics of the selected features."
//!
//! [`ShellOffsets`] precomputes integer offsets at a given radius; sampling a
//! voxel's shell yields a fixed-length descriptor independent of position.

use crate::volume::ScalarVolume;
use serde::{Deserialize, Serialize};

/// Precomputed integer offsets approximating a sphere shell of radius `r`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShellOffsets {
    radius: f32,
    offsets: Vec<(i64, i64, i64)>,
}

impl ShellOffsets {
    /// All integer offsets whose distance from the origin lies in
    /// `[radius - 0.5, radius + 0.5]`, i.e. a one-voxel-thick shell.
    pub fn full(radius: f32) -> Self {
        assert!(radius >= 1.0, "shell radius must be >= 1");
        let r = radius.ceil() as i64 + 1;
        let mut offsets = Vec::new();
        for dz in -r..=r {
            for dy in -r..=r {
                for dx in -r..=r {
                    let dist = ((dx * dx + dy * dy + dz * dz) as f32).sqrt();
                    if (dist - radius).abs() <= 0.5 {
                        offsets.push((dx, dy, dz));
                    }
                }
            }
        }
        Self { radius, offsets }
    }

    /// A sparse shell of exactly `count` quasi-uniform directions at `radius`,
    /// built with a Fibonacci sphere. This caps the descriptor length (and
    /// thus the network input size) regardless of radius.
    pub fn fibonacci(radius: f32, count: usize) -> Self {
        assert!(radius >= 1.0, "shell radius must be >= 1");
        assert!(count > 0);
        let golden = std::f64::consts::PI * (3.0 - 5.0f64.sqrt());
        let mut offsets = Vec::with_capacity(count);
        for i in 0..count {
            let y = 1.0 - 2.0 * (i as f64 + 0.5) / count as f64;
            let r_xy = (1.0 - y * y).sqrt();
            let theta = golden * i as f64;
            let dir = [theta.cos() * r_xy, y, theta.sin() * r_xy];
            offsets.push((
                (dir[0] * radius as f64).round() as i64,
                (dir[1] * radius as f64).round() as i64,
                (dir[2] * radius as f64).round() as i64,
            ));
        }
        offsets.dedup();
        Self { radius, offsets }
    }

    #[inline]
    pub fn radius(&self) -> f32 {
        self.radius
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    #[inline]
    pub fn offsets(&self) -> &[(i64, i64, i64)] {
        &self.offsets
    }

    /// Sample the shell around `(x, y, z)` with clamped boundary handling,
    /// appending values to `out` (cleared first is the caller's choice).
    pub fn sample_into(
        &self,
        vol: &ScalarVolume,
        x: usize,
        y: usize,
        z: usize,
        out: &mut Vec<f32>,
    ) {
        let (xi, yi, zi) = (x as i64, y as i64, z as i64);
        out.reserve(self.offsets.len());
        for &(dx, dy, dz) in &self.offsets {
            out.push(*vol.get_clamped(xi + dx, yi + dy, zi + dz));
        }
    }

    /// Sample the shell and return summary statistics
    /// `(mean, min, max, stddev)` — a compact alternative descriptor.
    pub fn sample_stats(&self, vol: &ScalarVolume, x: usize, y: usize, z: usize) -> [f32; 4] {
        let (xi, yi, zi) = (x as i64, y as i64, z as i64);
        let mut n = 0u32;
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &(dx, dy, dz) in &self.offsets {
            let v = *vol.get_clamped(xi + dx, yi + dy, zi + dz);
            n += 1;
            let delta = v as f64 - mean;
            mean += delta / n as f64;
            m2 += delta * (v as f64 - mean);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if n == 0 {
            return [0.0; 4];
        }
        let var = if n > 1 { m2 / (n - 1) as f64 } else { 0.0 };
        [mean as f32, lo, hi, var.sqrt() as f32]
    }
}

/// Derive a data-dependent shell radius from selected feature voxels, per the
/// paper: the distance is "derived according to the characteristics of the
/// selected features so far". We use half the mean pairwise bounding-box
/// extent of the selection, clamped to `[1, max_radius]`.
pub fn derive_radius(selected: &[(usize, usize, usize)], max_radius: f32) -> f32 {
    if selected.is_empty() {
        return 1.0;
    }
    let mut lo = [usize::MAX; 3];
    let mut hi = [0usize; 3];
    for &(x, y, z) in selected {
        let c = [x, y, z];
        for k in 0..3 {
            lo[k] = lo[k].min(c[k]);
            hi[k] = hi[k].max(c[k]);
        }
    }
    let mean_extent = ((hi[0] - lo[0]) + (hi[1] - lo[1]) + (hi[2] - lo[2])) as f32 / 3.0;
    (mean_extent * 0.5).clamp(1.0, max_radius.max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::Dims3;

    #[test]
    fn full_shell_distances_in_band() {
        let s = ShellOffsets::full(3.0);
        assert!(!s.is_empty());
        for &(dx, dy, dz) in s.offsets() {
            let d = ((dx * dx + dy * dy + dz * dz) as f32).sqrt();
            assert!((d - 3.0).abs() <= 0.5 + 1e-6, "offset distance {d}");
        }
    }

    #[test]
    fn full_shell_excludes_origin() {
        let s = ShellOffsets::full(2.0);
        assert!(!s.offsets().contains(&(0, 0, 0)));
    }

    #[test]
    fn fibonacci_has_bounded_count() {
        let s = ShellOffsets::fibonacci(4.0, 26);
        assert!(s.len() <= 26 && s.len() >= 13, "len = {}", s.len());
    }

    #[test]
    fn fibonacci_points_near_radius() {
        let s = ShellOffsets::fibonacci(5.0, 32);
        for &(dx, dy, dz) in s.offsets() {
            let d = ((dx * dx + dy * dy + dz * dz) as f32).sqrt();
            assert!((d - 5.0).abs() <= 1.2, "distance {d}");
        }
    }

    #[test]
    fn sample_constant_field() {
        let v = ScalarVolume::filled(Dims3::cube(16), 2.5);
        let s = ShellOffsets::full(2.0);
        let mut buf = Vec::new();
        s.sample_into(&v, 8, 8, 8, &mut buf);
        assert_eq!(buf.len(), s.len());
        assert!(buf.iter().all(|&x| x == 2.5));
        let stats = s.sample_stats(&v, 8, 8, 8);
        assert_eq!(stats, [2.5, 2.5, 2.5, 0.0]);
    }

    #[test]
    fn sample_clamps_at_boundary() {
        let v = ScalarVolume::from_fn(Dims3::cube(4), |x, _, _| x as f32);
        let s = ShellOffsets::full(2.0);
        let mut buf = Vec::new();
        s.sample_into(&v, 0, 0, 0, &mut buf); // must not panic
        assert_eq!(buf.len(), s.len());
    }

    #[test]
    fn stats_detect_contrast() {
        // Voxel inside a bright ball vs far outside: shell stats differ.
        let v = ScalarVolume::from_fn(Dims3::cube(16), |x, y, z| {
            let dx = x as f32 - 8.0;
            let dy = y as f32 - 8.0;
            let dz = z as f32 - 8.0;
            if (dx * dx + dy * dy + dz * dz).sqrt() < 3.0 {
                1.0
            } else {
                0.0
            }
        });
        let s = ShellOffsets::full(4.0);
        let inside = s.sample_stats(&v, 8, 8, 8);
        let outside = s.sample_stats(&v, 1, 1, 1);
        assert!(inside[0] < 0.5); // shell at r=4 around center is outside ball
        assert_eq!(outside[0], 0.0);
    }

    #[test]
    fn derive_radius_scales_with_selection_extent() {
        let small: Vec<_> = (0..3).map(|i| (i, 0usize, 0usize)).collect();
        let large: Vec<_> = (0..20).map(|i| (i, i, i)).collect();
        let rs = derive_radius(&small, 16.0);
        let rl = derive_radius(&large, 16.0);
        assert!(rl > rs);
        assert!(rs >= 1.0);
        assert!(rl <= 16.0);
    }

    #[test]
    fn derive_radius_empty_selection() {
        assert_eq!(derive_radius(&[], 8.0), 1.0);
    }
}
