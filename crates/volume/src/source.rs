//! Frame-source abstraction: one access contract for in-core and
//! out-of-core time series.
//!
//! The paper's motivation is terascale data that "cannot fit in core"
//! (§4.2.2–4.2.3). Every pipeline stage — IATF training, data-space
//! classification, 4D region growing, sessions — is generic over
//! [`FrameSource`] so the same code runs against a fully resident
//! [`TimeSeries`] or a disk-backed [`OutOfCoreSeries`] whose residency is
//! bounded by its LRU cache capacity.
//!
//! # Contract
//!
//! - `frame(i)` yields a [`FrameHandle`] that keeps the frame alive for as
//!   long as the caller holds it, independent of cache eviction.
//! - `steps()` is strictly increasing; `frame(i)` corresponds to `steps()[i]`.
//! - `global_range` / `cumulative_histograms` / `normalized_time` must be
//!   value-identical across implementations for the same underlying data —
//!   the equivalence suite (`crates/core/tests/ooc_equivalence.rs`) pins this.
//! - `residency_bound()` is `None` when the whole series is resident anyway
//!   (borrowing is free) and `Some(capacity)` when at most `capacity` frames
//!   should be live at a time. Consumers that fan out over frames use
//!   [`map_frames_windowed`] to respect the bound.

use crate::dims::Dims3;
use crate::histogram::{CumulativeHistogram, Histogram};
use crate::ooc::OutOfCoreSeries;
use crate::series::{SeriesError, TimeSeries};
use crate::volume::ScalarVolume;
use rayon::prelude::*;
use std::ops::Deref;
use std::sync::Arc;

/// A borrow-agnostic handle to one frame of a [`FrameSource`].
///
/// In-core sources hand out plain borrows; paged sources hand out `Arc`s so
/// the frame survives eviction while the caller still needs it. A `Mapped`
/// handle is a `Shared` whose voxels borrow the OS page cache via
/// [`crate::mmapio`] instead of owning heap memory — same lifetime rules,
/// zero copies. All three deref to [`ScalarVolume`].
pub enum FrameHandle<'a> {
    Borrowed(&'a ScalarVolume),
    Shared(Arc<ScalarVolume>),
    Mapped(Arc<ScalarVolume>),
}

impl FrameHandle<'_> {
    /// Whether this frame's voxels are a zero-copy file mapping.
    pub fn is_mapped(&self) -> bool {
        matches!(self, FrameHandle::Mapped(_))
    }
}

impl Deref for FrameHandle<'_> {
    type Target = ScalarVolume;

    #[inline]
    fn deref(&self) -> &ScalarVolume {
        match self {
            FrameHandle::Borrowed(v) => v,
            FrameHandle::Shared(v) | FrameHandle::Mapped(v) => v,
        }
    }
}

impl AsRef<ScalarVolume> for FrameHandle<'_> {
    #[inline]
    fn as_ref(&self) -> &ScalarVolume {
        self
    }
}

/// Uniform access to a time-varying scalar field, in core or paged from disk.
pub trait FrameSource: Sync {
    /// Grid shared by every frame.
    fn dims(&self) -> Dims3;

    /// Number of frames.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Strictly increasing time-step labels, one per frame.
    fn steps(&self) -> &[u32];

    /// Frame by positional index.
    fn frame(&self, i: usize) -> Result<FrameHandle<'_>, SeriesError>;

    /// `Some(capacity)` when at most `capacity` frames should be resident at
    /// a time; `None` when the series is fully in core.
    fn residency_bound(&self) -> Option<usize> {
        None
    }

    /// Hint that `upcoming` frame indices will be requested soon, in order.
    ///
    /// Purely advisory: a source may warm its cache in the background (see
    /// `OutOfCoreSeries::set_prefetch`), clamp the hint to its configured
    /// read-ahead depth, or ignore it entirely — the default does nothing.
    /// Acting on a hint must never change what `frame(i)` returns, only how
    /// fast it returns; [`map_frames_windowed`] issues hints for the next
    /// window while the current one computes.
    fn prefetch_hint(&self, upcoming: &[usize]) {
        let _ = upcoming;
    }

    /// Positional index of a time-step label.
    fn index_of_step(&self, t: u32) -> Option<usize> {
        self.steps().binary_search(&t).ok()
    }

    /// Frame by time-step label.
    fn frame_at_step(&self, t: u32) -> Result<Option<FrameHandle<'_>>, SeriesError> {
        match self.index_of_step(t) {
            Some(i) => Ok(Some(self.frame(i)?)),
            None => Ok(None),
        }
    }

    /// Normalized time in `[0, 1]` for a step label (0 for single-frame series).
    fn normalized_time(&self, t: u32) -> f32 {
        let steps = self.steps();
        let (first, last) = match (steps.first(), steps.last()) {
            (Some(&a), Some(&b)) if b > a => (a, b),
            _ => return 0.0,
        };
        ((t.max(first) - first) as f32 / (last - first) as f32).clamp(0.0, 1.0)
    }

    /// Global `(min, max)` across all frames. Streams frames in ascending
    /// order, so residency stays bounded for paged sources.
    fn global_range(&self) -> Result<(f32, f32), SeriesError> {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for i in 0..self.len() {
            let (a, b) = self.frame(i)?.value_range();
            lo = lo.min(a);
            hi = hi.max(b);
        }
        Ok(if lo > hi { (0.0, 0.0) } else { (lo, hi) })
    }

    /// Cumulative histogram of each frame at `bins` resolution over the
    /// *global* range, streamed in ascending frame order.
    fn cumulative_histograms(&self, bins: usize) -> Result<Vec<CumulativeHistogram>, SeriesError> {
        let (lo, hi) = self.global_range()?;
        (0..self.len())
            .map(|i| {
                let f = self.frame(i)?;
                let h = Histogram::of_values(f.as_slice(), bins, lo, hi);
                Ok(CumulativeHistogram::from_histogram(&h))
            })
            .collect()
    }
}

impl FrameSource for TimeSeries {
    fn dims(&self) -> Dims3 {
        TimeSeries::dims(self)
    }

    fn len(&self) -> usize {
        TimeSeries::len(self)
    }

    fn steps(&self) -> &[u32] {
        TimeSeries::steps(self)
    }

    fn frame(&self, i: usize) -> Result<FrameHandle<'_>, SeriesError> {
        self.try_frame(i).map(FrameHandle::Borrowed)
    }

    fn global_range(&self) -> Result<(f32, f32), SeriesError> {
        Ok(TimeSeries::global_range(self))
    }

    fn cumulative_histograms(&self, bins: usize) -> Result<Vec<CumulativeHistogram>, SeriesError> {
        Ok(TimeSeries::cumulative_histograms(self, bins))
    }
}

impl FrameSource for OutOfCoreSeries {
    fn dims(&self) -> Dims3 {
        OutOfCoreSeries::dims(self)
    }

    fn len(&self) -> usize {
        OutOfCoreSeries::len(self)
    }

    fn steps(&self) -> &[u32] {
        OutOfCoreSeries::steps(self)
    }

    fn frame(&self, i: usize) -> Result<FrameHandle<'_>, SeriesError> {
        if i >= OutOfCoreSeries::len(self) {
            return Err(SeriesError::FrameOutOfRange {
                index: i,
                len: OutOfCoreSeries::len(self),
            });
        }
        let vol = OutOfCoreSeries::frame(self, i)?;
        Ok(if vol.is_mapped() {
            FrameHandle::Mapped(vol)
        } else {
            FrameHandle::Shared(vol)
        })
    }

    fn residency_bound(&self) -> Option<usize> {
        Some(self.capacity())
    }

    fn prefetch_hint(&self, upcoming: &[usize]) {
        self.request_prefetch(upcoming);
    }

    fn global_range(&self) -> Result<(f32, f32), SeriesError> {
        // Computed once (streaming, ascending order) then memoized, since
        // training and classification consult it per sample.
        Ok(self.global_range_cached()?)
    }
}

/// Blanket passthrough so `&S` works wherever `S: FrameSource` is expected.
impl<S: FrameSource + ?Sized> FrameSource for &S {
    fn dims(&self) -> Dims3 {
        (**self).dims()
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn steps(&self) -> &[u32] {
        (**self).steps()
    }

    fn frame(&self, i: usize) -> Result<FrameHandle<'_>, SeriesError> {
        (**self).frame(i)
    }

    fn residency_bound(&self) -> Option<usize> {
        (**self).residency_bound()
    }

    fn prefetch_hint(&self, upcoming: &[usize]) {
        (**self).prefetch_hint(upcoming)
    }

    fn global_range(&self) -> Result<(f32, f32), SeriesError> {
        (**self).global_range()
    }

    fn cumulative_histograms(&self, bins: usize) -> Result<Vec<CumulativeHistogram>, SeriesError> {
        (**self).cumulative_histograms(bins)
    }
}

/// Shared-ownership passthrough so many holders (e.g. tenants of a serving
/// layer) can drive the same paged series — and the same LRU/budget state —
/// without one of them owning it exclusively. `VisSession<Arc<OutOfCoreSeries>>`
/// is the canonical use: sessions opened on the same artifact share frames.
impl<S: FrameSource + Send + ?Sized> FrameSource for Arc<S> {
    fn dims(&self) -> Dims3 {
        (**self).dims()
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn steps(&self) -> &[u32] {
        (**self).steps()
    }

    fn frame(&self, i: usize) -> Result<FrameHandle<'_>, SeriesError> {
        (**self).frame(i)
    }

    fn residency_bound(&self) -> Option<usize> {
        (**self).residency_bound()
    }

    fn prefetch_hint(&self, upcoming: &[usize]) {
        (**self).prefetch_hint(upcoming)
    }

    fn global_range(&self) -> Result<(f32, f32), SeriesError> {
        (**self).global_range()
    }

    fn cumulative_histograms(&self, bins: usize) -> Result<Vec<CumulativeHistogram>, SeriesError> {
        (**self).cumulative_histograms(bins)
    }
}

/// Map `f` over every frame in ascending order, in parallel windows no larger
/// than the source's residency bound.
///
/// Each window is paged in sequentially (so a bounded LRU cache is filled in
/// order, never over capacity), then `f` fans out across the resident window.
/// Once the current window's handles are held, the *next* window is announced
/// via [`FrameSource::prefetch_hint`], so a read-ahead-capable source can
/// overlap its paging with this window's compute. Because `f` sees one frame
/// at a time and results are collected in index order, the output is
/// bit-identical for any window size, thread count, or prefetch depth — the
/// window and the hint only change *when* a frame is resident, never what
/// `f` computes.
pub fn map_frames_windowed<S, T, F>(series: &S, f: F) -> Result<Vec<T>, SeriesError>
where
    S: FrameSource + ?Sized,
    T: Send,
    F: Fn(usize, u32, &ScalarVolume) -> T + Sync,
{
    let n = series.len();
    let window = series.residency_bound().unwrap_or(n).max(1);
    let steps = series.steps().to_vec();
    let mut out: Vec<T> = Vec::with_capacity(n);
    let mut start = 0;
    while start < n {
        let end = (start + window).min(n);
        let handles = (start..end)
            .map(|i| series.frame(i))
            .collect::<Result<Vec<_>, _>>()?;
        if end < n {
            let upcoming: Vec<usize> = (end..(end + window).min(n)).collect();
            series.prefetch_hint(&upcoming);
        }
        let results: Vec<T> = handles
            .par_iter()
            .enumerate()
            .map(|(k, h)| f(start + k, steps[start + k], h))
            .collect();
        out.extend(results);
        start = end;
    }
    Ok(out)
}

/// [`map_frames_windowed`], but each window's derived frames are streamed
/// into `sink` (in ascending step order) instead of being collected — so a
/// whole-series derivation holds at most one window of outputs in core.
/// Output bytes are identical to materializing via [`map_frames_windowed`]
/// and writing afterwards, at any window size, thread count, or prefetch
/// depth.
pub fn map_frames_windowed_into<S, K, F>(series: &S, sink: &mut K, f: F) -> Result<(), SeriesError>
where
    S: FrameSource + ?Sized,
    K: crate::sink::FrameSink + ?Sized,
    F: Fn(usize, u32, &ScalarVolume) -> ScalarVolume + Sync,
{
    let n = series.len();
    let window = series.residency_bound().unwrap_or(n).max(1);
    let steps = series.steps().to_vec();
    let mut start = 0;
    while start < n {
        let end = (start + window).min(n);
        let handles = (start..end)
            .map(|i| series.frame(i))
            .collect::<Result<Vec<_>, _>>()?;
        if end < n {
            let upcoming: Vec<usize> = (end..(end + window).min(n)).collect();
            series.prefetch_hint(&upcoming);
        }
        let results: Vec<ScalarVolume> = handles
            .par_iter()
            .enumerate()
            .map(|(k, h)| f(start + k, steps[start + k], h))
            .collect();
        for (k, vol) in results.into_iter().enumerate() {
            sink.put(steps[start + k], vol)?;
        }
        start = end;
    }
    Ok(())
}

/// Walk consecutive frame *pairs* of several component series in lockstep
/// and in ascending time — the paging shape of Lagrangian advection, where
/// integrating the interval `[tᵢ, tᵢ₊₁]` needs both bracketing frames of
/// every velocity component resident at once.
///
/// For each interval `i` the callback receives the bracketing step labels
/// and one frame handle per component for each end of the interval
/// (`lo[k]`/`hi[k]` are component `k` at `tᵢ`/`tᵢ₊₁`). Intervals are visited
/// strictly in order; before the callback runs, frame `i + 2` of every
/// component is announced via [`FrameSource::prefetch_hint`] so a
/// read-ahead-capable source overlaps the next page-in with this interval's
/// compute. A paged component therefore never needs more than two resident
/// frames (plus one in flight), and the walk order — hence any cache's
/// hit/miss schedule — is independent of what the callback does.
///
/// All components must share one grid and step schedule; mismatches are a
/// typed [`SeriesError`], not a panic. The callback's error type only needs
/// `From<SeriesError>`, so domain layers can thread their own error through.
pub fn walk_frame_pairs<S, E, F>(components: &[&S], mut f: F) -> Result<(), E>
where
    S: FrameSource + ?Sized,
    E: From<SeriesError>,
    F: FnMut(usize, (u32, &[FrameHandle<'_>]), (u32, &[FrameHandle<'_>])) -> Result<(), E>,
{
    let Some(first) = components.first() else {
        return Ok(());
    };
    let dims = first.dims();
    let steps = first.steps().to_vec();
    for (k, c) in components.iter().enumerate().skip(1) {
        if c.dims() != dims {
            return Err(SeriesError::DimsMismatch {
                expected: dims,
                got: c.dims(),
            }
            .into());
        }
        if c.steps() != steps {
            return Err(SeriesError::StepMismatch { component: k }.into());
        }
    }
    if steps.len() < 2 {
        return Err(SeriesError::Empty.into());
    }
    // Page the first frame of every component, then slide: the previous
    // interval's `hi` handles become this interval's `lo`, so each frame is
    // demanded exactly once per component no matter how many intervals
    // reuse it.
    let mut lo: Vec<FrameHandle<'_>> = components
        .iter()
        .map(|c| c.frame(0))
        .collect::<Result<_, _>>()
        .map_err(E::from)?;
    for i in 0..steps.len() - 1 {
        let hi: Vec<FrameHandle<'_>> = components
            .iter()
            .map(|c| c.frame(i + 1))
            .collect::<Result<_, _>>()
            .map_err(E::from)?;
        if i + 2 < steps.len() {
            for c in components {
                c.prefetch_hint(&[i + 2]);
            }
        }
        f(i, (steps[i], &lo), (steps[i + 1], &hi))?;
        lo = hi;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        let d = Dims3::cube(4);
        TimeSeries::from_frames(
            (0..5u32)
                .map(|k| (10 * k + 3, ScalarVolume::filled(d, k as f32)))
                .collect(),
        )
    }

    fn generic_first_value<S: FrameSource + ?Sized>(s: &S, i: usize) -> f32 {
        s.frame(i).unwrap().as_slice()[0]
    }

    #[test]
    fn trait_matches_inherent_on_timeseries() {
        let s = series();
        assert_eq!(FrameSource::dims(&s), s.dims());
        assert_eq!(FrameSource::len(&s), s.len());
        assert_eq!(FrameSource::steps(&s), s.steps());
        assert_eq!(FrameSource::global_range(&s).unwrap(), s.global_range());
        assert_eq!(FrameSource::normalized_time(&s, 23), s.normalized_time(23));
        assert_eq!(generic_first_value(&s, 2), 2.0);
        assert!(s.residency_bound().is_none());
    }

    #[test]
    fn trait_frame_out_of_range_is_typed() {
        let s = series();
        assert!(matches!(
            FrameSource::frame(&s, 99),
            Err(SeriesError::FrameOutOfRange { index: 99, len: 5 })
        ));
    }

    #[test]
    fn frame_at_step_via_trait() {
        let s = series();
        let h = FrameSource::frame_at_step(&s, 13).unwrap().unwrap();
        assert_eq!(h.as_slice()[0], 1.0);
        assert!(FrameSource::frame_at_step(&s, 14).unwrap().is_none());
    }

    #[test]
    fn arc_passthrough_matches_inner() {
        let s = Arc::new(series());
        assert_eq!(FrameSource::dims(&s), FrameSource::dims(&*s));
        assert_eq!(FrameSource::len(&s), 5);
        assert_eq!(FrameSource::global_range(&s).unwrap(), (0.0, 4.0));
        assert_eq!(generic_first_value(&s, 3), 3.0);
        // Clones share the same underlying series.
        let s2 = Arc::clone(&s);
        assert_eq!(generic_first_value(&s2, 1), generic_first_value(&s, 1));
    }

    #[test]
    fn windowed_map_matches_direct() {
        let s = series();
        let direct: Vec<f32> = (0..s.len()).map(|i| s.frame(i).as_slice()[0]).collect();
        let mapped = map_frames_windowed(&s, |_, _, f| f.as_slice()[0]).unwrap();
        assert_eq!(mapped, direct);
    }

    #[test]
    fn windowed_map_into_matches_materialized() {
        let s = series();
        let doubled = map_frames_windowed(&s, |_, _, f| {
            ScalarVolume::from_vec(f.dims(), f.as_slice().iter().map(|v| v * 2.0).collect())
        })
        .unwrap();
        let mut sink = crate::sink::TimeSeriesSink::new();
        map_frames_windowed_into(&s, &mut sink, |_, _, f| {
            ScalarVolume::from_vec(f.dims(), f.as_slice().iter().map(|v| v * 2.0).collect())
        })
        .unwrap();
        let streamed = sink.into_series().unwrap();
        assert_eq!(streamed.steps(), s.steps());
        for (i, d) in doubled.iter().enumerate() {
            assert_eq!(streamed.frame(i).as_slice(), d.as_slice());
        }
    }

    #[test]
    fn windowed_map_indices_and_steps_align() {
        let s = series();
        let pairs = map_frames_windowed(&s, |i, t, _| (i, t)).unwrap();
        let expect: Vec<(usize, u32)> = s.steps().iter().copied().enumerate().collect();
        assert_eq!(pairs, expect);
    }

    #[test]
    fn frame_pairs_walk_ascending_with_both_ends_resident() {
        let s = series();
        let mut seen = Vec::new();
        walk_frame_pairs::<_, SeriesError, _>(&[&s, &s], |i, (t0, lo), (t1, hi)| {
            assert_eq!(lo.len(), 2);
            assert_eq!(hi.len(), 2);
            seen.push((i, t0, t1, lo[0].as_slice()[0], hi[1].as_slice()[0]));
            Ok(())
        })
        .unwrap();
        assert_eq!(
            seen,
            vec![
                (0, 3, 13, 0.0, 1.0),
                (1, 13, 23, 1.0, 2.0),
                (2, 23, 33, 2.0, 3.0),
                (3, 33, 43, 3.0, 4.0),
            ]
        );
    }

    #[test]
    fn frame_pairs_reject_mismatched_components() {
        let s = series();
        let other = TimeSeries::from_frames(
            (0..5u32)
                .map(|k| (k, ScalarVolume::filled(Dims3::cube(4), 0.0)))
                .collect(),
        );
        let r = walk_frame_pairs::<_, SeriesError, _>(&[&s, &other], |_, _, _| Ok(()));
        assert!(matches!(r, Err(SeriesError::StepMismatch { component: 1 })));
        let small = TimeSeries::from_frames(vec![(0, ScalarVolume::filled(Dims3::cube(3), 0.0))]);
        let r = walk_frame_pairs::<_, SeriesError, _>(&[&s, &small], |_, _, _| Ok(()));
        assert!(matches!(r, Err(SeriesError::DimsMismatch { .. })));
    }
}
