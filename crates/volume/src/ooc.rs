//! Out-of-core time series: disk-backed frames with an LRU cache.
//!
//! The paper's motivation is terascale data: "when the volume size is large
//! or many time steps are used, it can be time consuming to load the volumes
//! for training since not all the data can fit in core" (Section 4.2.2), and
//! "as the data set grows ... it becomes impractical to load the entire data
//! onto a single computer" (Section 4.2.3). [`OutOfCoreSeries`] keeps only a
//! bounded number of frames resident, paging the rest from the raw-brick
//! files of [`crate::io`]; the IATF workflow needs only the key frames in
//! core, exactly as the paper argues.

use crate::dims::Dims3;
use crate::io::{read_raw, write_series, IoError};
use crate::series::TimeSeries;
use crate::volume::ScalarVolume;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Cache state: most-recently-used at the back.
struct Cache {
    capacity: usize,
    entries: VecDeque<(usize, Arc<ScalarVolume>)>,
    hits: u64,
    misses: u64,
}

impl Cache {
    fn get(&mut self, idx: usize) -> Option<Arc<ScalarVolume>> {
        if let Some(pos) = self.entries.iter().position(|(i, _)| *i == idx) {
            let entry = self.entries.remove(pos).unwrap();
            let vol = entry.1.clone();
            self.entries.push_back(entry);
            self.hits += 1;
            Some(vol)
        } else {
            self.misses += 1;
            None
        }
    }

    fn insert(&mut self, idx: usize, vol: Arc<ScalarVolume>) {
        while self.entries.len() >= self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back((idx, vol));
    }
}

/// A time series whose frames live on disk, with at most `capacity` frames
/// resident at a time.
pub struct OutOfCoreSeries {
    dims: Dims3,
    steps: Vec<u32>,
    paths: Vec<PathBuf>,
    cache: Mutex<Cache>,
}

impl OutOfCoreSeries {
    /// Write an in-core series to `dir` and return the disk-backed handle.
    pub fn create(
        dir: &Path,
        prefix: &str,
        series: &TimeSeries,
        capacity: usize,
    ) -> Result<Self, IoError> {
        let paths = write_series(dir, prefix, series)?;
        Ok(Self {
            dims: series.dims(),
            steps: series.steps().to_vec(),
            paths,
            cache: Mutex::new(Cache {
                capacity: capacity.max(1),
                entries: VecDeque::new(),
                hits: 0,
                misses: 0,
            }),
        })
    }

    /// Open from existing frame files (reads each sidecar for the step
    /// label, but no voxel data).
    pub fn open(paths: Vec<PathBuf>, capacity: usize) -> Result<Self, IoError> {
        assert!(!paths.is_empty(), "need at least one frame file");
        // Read sidecars only — via read_raw on the first file for dims, and
        // cheap JSON reads for steps.
        let mut labelled: Vec<(u32, PathBuf)> = Vec::with_capacity(paths.len());
        let mut dims = None;
        for (k, p) in paths.iter().enumerate() {
            let side = std::fs::File::open(PathBuf::from({
                let mut s = p.as_os_str().to_owned();
                s.push(".json");
                s
            }))?;
            let meta: crate::io::VolumeMeta = serde_json::from_reader(side)?;
            if let Some(d) = dims {
                assert_eq!(d, meta.dims, "frame dims mismatch in series");
            } else {
                dims = Some(meta.dims);
            }
            labelled.push((meta.step.unwrap_or(k as u32), p.clone()));
        }
        labelled.sort_by_key(|(t, _)| *t);
        Ok(Self {
            dims: dims.unwrap(),
            steps: labelled.iter().map(|(t, _)| *t).collect(),
            paths: labelled.into_iter().map(|(_, p)| p).collect(),
            cache: Mutex::new(Cache {
                capacity: capacity.max(1),
                entries: VecDeque::new(),
                hits: 0,
                misses: 0,
            }),
        })
    }

    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    pub fn len(&self) -> usize {
        self.paths.len()
    }

    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    pub fn steps(&self) -> &[u32] {
        &self.steps
    }

    /// Load frame `i`, from cache when resident. The `Arc` keeps the frame
    /// alive for the caller even after eviction.
    pub fn frame(&self, i: usize) -> Result<Arc<ScalarVolume>, IoError> {
        assert!(i < self.paths.len(), "frame {i} out of range");
        if let Some(hit) = self.cache.lock().unwrap().get(i) {
            return Ok(hit);
        }
        let (vol, _) = read_raw(&self.paths[i])?;
        let vol = Arc::new(vol);
        self.cache.lock().unwrap().insert(i, vol.clone());
        Ok(vol)
    }

    /// Frame by step label.
    pub fn frame_at_step(&self, t: u32) -> Result<Option<Arc<ScalarVolume>>, IoError> {
        match self.steps.binary_search(&t) {
            Ok(i) => Ok(Some(self.frame(i)?)),
            Err(_) => Ok(None),
        }
    }

    /// `(hits, misses)` so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        let c = self.cache.lock().unwrap();
        (c.hits, c.misses)
    }

    /// Frames currently resident.
    pub fn resident(&self) -> usize {
        self.cache.lock().unwrap().entries.len()
    }

    /// Materialize the whole series in core (only for small data / tests).
    pub fn load_all(&self) -> Result<TimeSeries, IoError> {
        let mut frames = Vec::with_capacity(self.len());
        for (i, &t) in self.steps.iter().enumerate() {
            frames.push((t, (*self.frame(i)?).clone()));
        }
        Ok(TimeSeries::from_frames(frames))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> TimeSeries {
        let d = Dims3::cube(8);
        TimeSeries::from_frames(
            (0..6u32)
                .map(|k| (k * 10, ScalarVolume::filled(d, k as f32)))
                .collect(),
        )
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ifet_ooc_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn create_and_read_frames() {
        let dir = tmpdir("basic");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 2).unwrap();
        assert_eq!(ooc.len(), 6);
        assert_eq!(ooc.dims(), Dims3::cube(8));
        assert_eq!(ooc.steps(), &[0, 10, 20, 30, 40, 50]);
        for i in 0..6 {
            assert_eq!(ooc.frame(i).unwrap().as_slice()[0], i as f32);
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn cache_respects_capacity() {
        let dir = tmpdir("cap");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 2).unwrap();
        for i in 0..6 {
            let _ = ooc.frame(i).unwrap();
        }
        assert!(ooc.resident() <= 2, "resident {}", ooc.resident());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn repeated_access_hits_cache() {
        let dir = tmpdir("hits");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 3).unwrap();
        let _ = ooc.frame(0).unwrap();
        let _ = ooc.frame(0).unwrap();
        let _ = ooc.frame(0).unwrap();
        let (hits, misses) = ooc.cache_stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn lru_evicts_oldest() {
        let dir = tmpdir("lru");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 2).unwrap();
        let _ = ooc.frame(0).unwrap();
        let _ = ooc.frame(1).unwrap();
        let _ = ooc.frame(0).unwrap(); // refresh 0
        let _ = ooc.frame(2).unwrap(); // evicts 1
        let (h0, _) = ooc.cache_stats();
        let _ = ooc.frame(0).unwrap(); // still resident -> hit
        let (h1, _) = ooc.cache_stats();
        assert_eq!(h1, h0 + 1);
        let (_, m0) = ooc.cache_stats();
        let _ = ooc.frame(1).unwrap(); // was evicted -> miss
        let (_, m1) = ooc.cache_stats();
        assert_eq!(m1, m0 + 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn open_from_paths_matches_created() {
        let dir = tmpdir("open");
        let s = sample_series();
        let created = OutOfCoreSeries::create(&dir, "f", &s, 2).unwrap();
        let paths: Vec<PathBuf> = (0..created.len())
            .map(|i| created.paths[i].clone())
            .collect();
        let opened = OutOfCoreSeries::open(paths, 2).unwrap();
        assert_eq!(opened.steps(), created.steps());
        assert_eq!(opened.load_all().unwrap(), s);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn frame_at_step_lookup() {
        let dir = tmpdir("step");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 2).unwrap();
        assert_eq!(ooc.frame_at_step(30).unwrap().unwrap().as_slice()[0], 3.0);
        assert!(ooc.frame_at_step(31).unwrap().is_none());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_frame_file_is_an_error_not_a_panic() {
        let dir = tmpdir("gone");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 1).unwrap();
        // Delete one raw file behind the cache's back.
        std::fs::remove_file(&ooc.paths[3]).unwrap();
        assert!(ooc.frame(3).is_err(), "deleted frame must surface as Err");
        // Other frames still load.
        assert!(ooc.frame(0).is_ok());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn corrupted_frame_is_an_error() {
        let dir = tmpdir("corrupt");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 1).unwrap();
        std::fs::write(&ooc.paths[2], [1u8, 2, 3]).unwrap(); // truncated
        assert!(ooc.frame(2).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn arc_keeps_evicted_frame_alive() {
        let dir = tmpdir("arc");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 1).unwrap();
        let held = ooc.frame(0).unwrap();
        let _ = ooc.frame(1).unwrap(); // evicts frame 0 from the cache
                                       // The caller's Arc still works even though the cache dropped it.
        assert_eq!(held.as_slice()[0], 0.0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn load_all_roundtrips() {
        let dir = tmpdir("all");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 1).unwrap();
        assert_eq!(ooc.load_all().unwrap(), s);
        std::fs::remove_dir_all(dir).ok();
    }
}
