//! Out-of-core time series: disk-backed frames with a budgeted LRU cache and
//! background read-ahead.
//!
//! The paper's motivation is terascale data: "when the volume size is large
//! or many time steps are used, it can be time consuming to load the volumes
//! for training since not all the data can fit in core" (Section 4.2.2), and
//! "as the data set grows ... it becomes impractical to load the entire data
//! onto a single computer" (Section 4.2.3). [`OutOfCoreSeries`] keeps only a
//! bounded number of frames resident, paging the rest from the raw-brick
//! files of [`crate::io`]; the IATF workflow needs only the key frames in
//! core, exactly as the paper argues.
//!
//! # Budgets
//!
//! Residency is governed by a [`CacheBudget`] — either a frame count or a
//! byte total — owned by a [`CacheBudgetHandle`]. The handle is cloneable and
//! may be shared across several series (a multi-variable session opens one
//! series per variable); eviction is then *global*: the least-recently-used
//! frame across every member series is evicted first, charged by its actual
//! byte size. In-flight reads (demand misses and prefetches that have
//! reserved space but not yet committed) count against the budget, so the
//! high-water marks are honest even while the prefetch worker is mid-read.
//!
//! # Prefetch
//!
//! [`OutOfCoreSeries::set_prefetch`] starts a background `std::thread` that
//! services read-ahead hints (see `FrameSource::prefetch_hint` in
//! [`crate::source`]): while the caller computes on the current window, the
//! worker pages the next window's frames through the same reserve → read →
//! commit path as demand misses. Prefetch is *purely* a warm-cache hint — a
//! failed or skipped prefetch never changes what demand reads return, and
//! prefetch emits no obs spans (only runtime counters), so stable traces are
//! byte-identical whether read-ahead is on or off. Transient read failures
//! are retried a bounded number of times on both paths; the prefetch worker
//! then degrades silently while demand reads surface the error.

use crate::dims::Dims3;
use crate::io::{write_series_with, IoError};
use crate::series::TimeSeries;
use crate::volume::ScalarVolume;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, Weak};
use std::time::Duration;

/// Paging statistics for one [`OutOfCoreSeries`].
///
/// Mirrored into the obs runtime counter set (`volume.ooc.*`); kept out of
/// stable traces because hit/miss/evict sequences depend on scheduling.
///
/// `hits`/`misses` count *demand* requests only (`hits + misses` is the total
/// number of demand frame accesses); prefetch traffic is reported separately
/// so the algebra stays closed: `prefetch_wasted <= prefetched`, and every
/// successful load (demand miss or prefetch) adds one frame's bytes to
/// `bytes_paged`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// On-disk bytes paged in: raw frames charge `voxels * 4`, compressed
    /// frames charge their (smaller) compressed file size — the same number
    /// the byte budget charges, so "frames per byte" is an honest ratio.
    pub bytes_paged: u64,
    /// Frames resident right now (this series).
    pub resident: usize,
    /// Bytes resident right now (this series).
    pub resident_bytes: u64,
    /// Maximum frames ever resident-or-in-flight at once across the whole
    /// shared budget — the bounded-memory witness.
    pub resident_high_water: usize,
    /// Maximum bytes ever resident-or-in-flight at once across the whole
    /// shared budget.
    pub resident_high_water_bytes: u64,
    /// Frames loaded by the prefetch worker (committed to the cache).
    pub prefetched: u64,
    /// Demand accesses served by a frame the prefetch worker loaded.
    pub prefetch_hits: u64,
    /// Prefetch requests skipped because the frame was already resident or
    /// in flight.
    pub prefetch_misses: u64,
    /// Prefetched frames evicted before any demand access touched them.
    pub prefetch_wasted: u64,
    /// Transient read failures absorbed by the bounded retry loop.
    pub read_retries: u64,
}

/// How much may be resident at once, shared by every series on one
/// [`CacheBudgetHandle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheBudget {
    /// At most `n` frames resident-or-in-flight (floored at 1).
    Frames(usize),
    /// At most `n` bytes resident-or-in-flight, charged by actual frame byte
    /// size. A budget smaller than one frame still admits a single frame so
    /// progress is always possible.
    Bytes(u64),
}

/// Aggregate accounting for a [`CacheBudgetHandle`], across all member series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetStats {
    pub resident_frames: usize,
    pub resident_bytes: u64,
    pub inflight_frames: usize,
    pub inflight_bytes: u64,
    /// Peak `resident + inflight` frames.
    pub high_water_frames: usize,
    /// Peak `resident + inflight` bytes.
    pub high_water_bytes: u64,
    /// Total evictions driven by this budget (all member series).
    pub evictions: u64,
    /// Evictions performed by the quota-local phase: a group over its own
    /// byte quota reclaiming its own LRU frames.
    pub quota_evictions: u64,
    /// Global evictions redirected away from the globally least-recent frame
    /// because its residency group was active and an idle group's frame was
    /// available instead.
    pub idle_evictions: u64,
}

/// Accounting for one residency group under a [`CacheBudgetHandle`]; see
/// [`OutOfCoreSeries::set_residency_group`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupStats {
    pub resident_bytes: u64,
    pub inflight_bytes: u64,
    /// Peak `resident + inflight` bytes for this group.
    pub high_water_bytes: u64,
    /// The group's resident-byte quota, if one is set.
    pub quota_bytes: Option<u64>,
    /// Evictions the quota-local phase charged to this group.
    pub quota_evictions: u64,
    /// In-flight activity refcount (see [`CacheBudgetHandle::group_enter`]).
    pub active: usize,
}

const NIL: usize = usize::MAX;

/// One resident frame, threaded on an intrusive LRU list over slot indices.
struct Slot {
    frame: usize,
    vol: Arc<ScalarVolume>,
    prev: usize,
    next: usize,
    /// Global recency stamp (from the budget's tick) for cross-series LRU.
    stamp: u64,
    /// Loaded by the prefetch worker and not yet touched by demand.
    prefetched: bool,
    /// Budget charge of this frame (its on-disk byte size), remembered so
    /// eviction frees exactly what insertion charged.
    bytes: u64,
}

/// Per-series cache state: a frame-index map into a slot slab whose occupied
/// slots form a doubly-linked recency list (`head` = least recent, `tail` =
/// most recent), plus the set of frame indices currently being read.
struct Cache {
    map: HashMap<usize, usize>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    inflight: HashSet<usize>,
    stats: CacheStats,
}

impl Cache {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            inflight: HashSet::new(),
            stats: CacheStats::default(),
        }
    }

    fn detach(&mut self, s: usize) {
        let (prev, next) = {
            let e = self.slots[s].as_ref().unwrap();
            (e.prev, e.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p].as_mut().unwrap().next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].as_mut().unwrap().prev = prev,
        }
    }

    fn attach_most_recent(&mut self, s: usize) {
        {
            let e = self.slots[s].as_mut().unwrap();
            e.prev = self.tail;
            e.next = NIL;
        }
        match self.tail {
            NIL => self.head = s,
            t => self.slots[t].as_mut().unwrap().next = s,
        }
        self.tail = s;
    }

    /// Demand lookup: on a hit, refresh recency, stamp, and the prefetch
    /// bookkeeping. Does *not* count misses — the caller decides whether an
    /// absence becomes a miss (it may first wait out an in-flight read).
    fn get_resident(&mut self, idx: usize, stamp: u64) -> Option<Arc<ScalarVolume>> {
        let &s = self.map.get(&idx)?;
        self.detach(s);
        self.attach_most_recent(s);
        let e = self.slots[s].as_mut().unwrap();
        e.stamp = stamp;
        if e.prefetched {
            e.prefetched = false;
            self.stats.prefetch_hits += 1;
            ifet_obs::counter_runtime("volume.ooc.prefetch_hit", 1);
        }
        self.stats.hits += 1;
        ifet_obs::counter_runtime("volume.ooc.hit", 1);
        Some(e.vol.clone())
    }

    fn note_miss(&mut self) {
        self.stats.misses += 1;
        ifet_obs::counter_runtime("volume.ooc.miss", 1);
    }

    /// Insert a committed load charged at `bytes`. The budget has already
    /// reserved space; the in-flight guard guarantees no duplicate entry.
    fn insert(
        &mut self,
        idx: usize,
        vol: Arc<ScalarVolume>,
        stamp: u64,
        prefetched: bool,
        bytes: u64,
    ) {
        debug_assert!(!self.map.contains_key(&idx));
        let s = self.free.pop().unwrap_or_else(|| {
            self.slots.push(None);
            self.slots.len() - 1
        });
        self.slots[s] = Some(Slot {
            frame: idx,
            vol,
            prev: NIL,
            next: NIL,
            stamp,
            prefetched,
            bytes,
        });
        self.attach_most_recent(s);
        self.map.insert(idx, s);
        self.stats.bytes_paged += bytes;
        self.stats.resident_bytes += bytes;
        ifet_obs::counter_runtime("volume.ooc.bytes_paged", bytes);
        if prefetched {
            self.stats.prefetched += 1;
            ifet_obs::counter_runtime("volume.ooc.prefetched", 1);
        }
    }

    /// Evict the least-recently-used slot; returns the bytes freed.
    fn evict_lru(&mut self) -> u64 {
        let lru = self.head;
        debug_assert_ne!(lru, NIL);
        self.detach(lru);
        let e = self.slots[lru].take().unwrap();
        self.map.remove(&e.frame);
        self.free.push(lru);
        self.stats.evictions += 1;
        self.stats.resident_bytes -= e.bytes;
        ifet_obs::counter_runtime("volume.ooc.evict", 1);
        if e.prefetched {
            self.stats.prefetch_wasted += 1;
            ifet_obs::counter_runtime("volume.ooc.prefetch_wasted", 1);
        }
        e.bytes
    }

    /// Recency stamp of the LRU slot, if any frame is resident.
    fn lru_stamp(&self) -> Option<u64> {
        match self.head {
            NIL => None,
            h => Some(self.slots[h].as_ref().unwrap().stamp),
        }
    }
}

/// One series' cache plus the condvar its in-flight waiters sleep on.
struct SeriesCache {
    cache: Mutex<Cache>,
    cv: Condvar,
    /// Residency group this series' bytes are attributed to (0 = the default
    /// group: no quota, shared with every unassigned series).
    group: AtomicU64,
}

/// Per-group residency accounting; created lazily on first touch.
#[derive(Default)]
struct GroupState {
    resident_bytes: u64,
    inflight_bytes: u64,
    hw_bytes: u64,
    quota: Option<u64>,
    /// Refcount of in-flight requests touching this group; `0` marks the
    /// group idle, making its frames preferred eviction victims.
    active: usize,
    quota_evictions: u64,
}

/// Shared accounting for every series on one budget handle.
#[derive(Default)]
struct BudgetState {
    resident_frames: usize,
    resident_bytes: u64,
    inflight_frames: usize,
    inflight_bytes: u64,
    hw_frames: usize,
    hw_bytes: u64,
    evictions: u64,
    quota_evictions: u64,
    idle_evictions: u64,
    groups: HashMap<u64, GroupState>,
    members: Vec<Weak<SeriesCache>>,
}

impl BudgetState {
    fn group_mut(&mut self, g: u64) -> &mut GroupState {
        self.groups.entry(g).or_default()
    }
}

/// Lock order is strictly budget → cache: the budget lock may be held while
/// member cache locks are taken (eviction, commit), never the reverse.
struct Budget {
    limit: CacheBudget,
    state: Mutex<BudgetState>,
    cv: Condvar,
    /// Global recency clock: every touch stamps its slot so eviction can
    /// order frames across series.
    tick: AtomicU64,
}

impl Budget {
    fn fits(&self, st: &BudgetState, frame_bytes: u64) -> bool {
        match self.limit {
            CacheBudget::Frames(n) => st.resident_frames + st.inflight_frames < n.max(1),
            CacheBudget::Bytes(b) => st.resident_bytes + st.inflight_bytes + frame_bytes <= b,
        }
    }

    /// Account an eviction of `freed` bytes attributed to `group`.
    fn debit_eviction(st: &mut BudgetState, group: u64, freed: u64) {
        st.resident_frames -= 1;
        st.resident_bytes -= freed;
        st.evictions += 1;
        let g = st.group_mut(group);
        g.resident_bytes = g.resident_bytes.saturating_sub(freed);
    }

    /// Evict the least-recent resident frame, preferring frames whose
    /// residency group is *idle* (activity refcount zero) over frames of
    /// active groups. Falls back to the global LRU when every resident frame
    /// belongs to an active group. Returns `false` when nothing is resident.
    fn evict_one(&self, st: &mut BudgetState) -> bool {
        st.members.retain(|w| w.strong_count() > 0);
        // (member index, stamp, group, group is idle) per member LRU head.
        let mut global: Option<(usize, u64, u64)> = None;
        let mut idle: Option<(usize, u64, u64)> = None;
        for (mi, w) in st.members.iter().enumerate() {
            let Some(sc) = w.upgrade() else { continue };
            let c = sc.cache.lock().unwrap();
            let Some(stamp) = c.lru_stamp() else { continue };
            let group = sc.group.load(Ordering::Relaxed);
            if global.map_or(true, |(_, s, _)| stamp < s) {
                global = Some((mi, stamp, group));
            }
            let group_active = st.groups.get(&group).map_or(0, |g| g.active);
            if group_active == 0 && idle.map_or(true, |(_, s, _)| stamp < s) {
                idle = Some((mi, stamp, group));
            }
        }
        let Some((gmi, gstamp, ggroup)) = global else {
            return false;
        };
        let (mi, stamp, group) = idle.unwrap_or((gmi, gstamp, ggroup));
        let Some(sc) = st.members[mi].upgrade() else {
            return false;
        };
        let mut c = sc.cache.lock().unwrap();
        if c.lru_stamp().is_none() {
            return false;
        }
        let freed = c.evict_lru();
        drop(c);
        Self::debit_eviction(st, group, freed);
        if stamp != gstamp {
            st.idle_evictions += 1;
            ifet_obs::counter_runtime("volume.ooc.idle_evict", 1);
        }
        true
    }

    /// Evict the least-recent resident frame *within* one residency group
    /// (the quota-local phase). Returns `false` when the group has nothing
    /// resident.
    fn evict_one_in_group(&self, st: &mut BudgetState, group: u64) -> bool {
        st.members.retain(|w| w.strong_count() > 0);
        let mut best: Option<(usize, u64)> = None;
        for (mi, w) in st.members.iter().enumerate() {
            let Some(sc) = w.upgrade() else { continue };
            if sc.group.load(Ordering::Relaxed) != group {
                continue;
            }
            let c = sc.cache.lock().unwrap();
            if let Some(stamp) = c.lru_stamp() {
                if best.map_or(true, |(_, s)| stamp < s) {
                    best = Some((mi, stamp));
                }
            }
        }
        let Some((mi, _)) = best else { return false };
        let Some(sc) = st.members[mi].upgrade() else {
            return false;
        };
        let mut c = sc.cache.lock().unwrap();
        if c.lru_stamp().is_none() {
            return false;
        }
        let freed = c.evict_lru();
        drop(c);
        Self::debit_eviction(st, group, freed);
        st.quota_evictions += 1;
        st.group_mut(group).quota_evictions += 1;
        ifet_obs::counter_runtime("volume.ooc.quota_evict", 1);
        true
    }

    /// Whether `group` can take `frame_bytes` more without crossing its
    /// quota. Groups without a quota always have room.
    fn quota_room(st: &BudgetState, group: u64, frame_bytes: u64) -> bool {
        match st.groups.get(&group) {
            Some(g) => match g.quota {
                Some(q) => g.resident_bytes + g.inflight_bytes + frame_bytes <= q,
                None => true,
            },
            None => true,
        }
    }

    /// Reserve space for one in-flight read attributed to `group`, evicting
    /// and waiting as needed. Two phases: a group over its own quota evicts
    /// its *own* LRU frames first (never charging its overflow to others),
    /// then the global budget evicts idle-preferred. When nothing is
    /// evictable and nothing else is in flight, the reservation proceeds
    /// anyway so a sub-frame budget (or sub-frame quota) still makes
    /// progress (the single-frame floor, globally and per group).
    fn reserve(&self, frame_bytes: u64, group: u64) {
        let mut st = self.state.lock().unwrap();
        loop {
            while !Self::quota_room(&st, group, frame_bytes)
                && self.evict_one_in_group(&mut st, group)
            {}
            while !self.fits(&st, frame_bytes) && self.evict_one(&mut st) {}
            let group_floor = st
                .groups
                .get(&group)
                .map_or(true, |g| g.resident_bytes + g.inflight_bytes == 0);
            let quota_ok = Self::quota_room(&st, group, frame_bytes) || group_floor;
            let global_ok = self.fits(&st, frame_bytes) || st.inflight_frames == 0;
            if quota_ok && global_ok {
                st.inflight_frames += 1;
                st.inflight_bytes += frame_bytes;
                st.hw_frames = st.hw_frames.max(st.resident_frames + st.inflight_frames);
                st.hw_bytes = st.hw_bytes.max(st.resident_bytes + st.inflight_bytes);
                let g = st.group_mut(group);
                g.inflight_bytes += frame_bytes;
                g.hw_bytes = g.hw_bytes.max(g.resident_bytes + g.inflight_bytes);
                return;
            }
            // Timed wait as a spurious-wakeup / missed-notify guard; the loop
            // re-checks the budget either way.
            let (g, _) = self.cv.wait_timeout(st, Duration::from_millis(50)).unwrap();
            st = g;
        }
    }

    /// Turn a reservation of `bytes` into a resident cache entry. Accounting
    /// and insert happen under the budget lock so the evictor never sees them
    /// disagree. `group` must match the reservation's.
    fn commit_and_insert(
        &self,
        sc: &SeriesCache,
        idx: usize,
        vol: Arc<ScalarVolume>,
        prefetched: bool,
        bytes: u64,
        group: u64,
    ) {
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock().unwrap();
        {
            let mut c = sc.cache.lock().unwrap();
            c.insert(idx, vol, stamp, prefetched, bytes);
            c.inflight.remove(&idx);
        }
        st.inflight_frames -= 1;
        st.inflight_bytes -= bytes;
        st.resident_frames += 1;
        st.resident_bytes += bytes;
        let g = st.group_mut(group);
        g.inflight_bytes = g.inflight_bytes.saturating_sub(bytes);
        g.resident_bytes += bytes;
        drop(st);
        self.cv.notify_all();
        sc.cv.notify_all();
    }

    /// Abandon a reservation of `bytes` after a failed read.
    fn release(&self, sc: &SeriesCache, idx: usize, bytes: u64, group: u64) {
        let mut st = self.state.lock().unwrap();
        {
            let mut c = sc.cache.lock().unwrap();
            c.inflight.remove(&idx);
        }
        st.inflight_frames -= 1;
        st.inflight_bytes -= bytes;
        let g = st.group_mut(group);
        g.inflight_bytes = g.inflight_bytes.saturating_sub(bytes);
        drop(st);
        self.cv.notify_all();
        sc.cv.notify_all();
    }

    fn register(&self, sc: &Arc<SeriesCache>) {
        self.state.lock().unwrap().members.push(Arc::downgrade(sc));
    }

    fn stats(&self) -> BudgetStats {
        let st = self.state.lock().unwrap();
        BudgetStats {
            resident_frames: st.resident_frames,
            resident_bytes: st.resident_bytes,
            inflight_frames: st.inflight_frames,
            inflight_bytes: st.inflight_bytes,
            high_water_frames: st.hw_frames,
            high_water_bytes: st.hw_bytes,
            evictions: st.evictions,
            quota_evictions: st.quota_evictions,
            idle_evictions: st.idle_evictions,
        }
    }
}

/// A cloneable handle to a shared [`CacheBudget`]. Every
/// [`OutOfCoreSeries`] opened with the same handle draws on the same
/// allowance; eviction picks the globally least-recent frame across all of
/// them, charged by byte size.
#[derive(Clone)]
pub struct CacheBudgetHandle(Arc<Budget>);

impl CacheBudgetHandle {
    pub fn new(limit: CacheBudget) -> Self {
        Self(Arc::new(Budget {
            limit,
            state: Mutex::new(BudgetState::default()),
            cv: Condvar::new(),
            tick: AtomicU64::new(0),
        }))
    }

    /// Shorthand for `new(CacheBudget::Frames(n))`.
    pub fn frames(n: usize) -> Self {
        Self::new(CacheBudget::Frames(n))
    }

    /// Shorthand for `new(CacheBudget::Bytes(n))`.
    pub fn bytes(n: u64) -> Self {
        Self::new(CacheBudget::Bytes(n))
    }

    pub fn limit(&self) -> CacheBudget {
        self.0.limit
    }

    /// Aggregate accounting across all member series, including in-flight
    /// reads and the high-water marks.
    pub fn stats(&self) -> BudgetStats {
        self.0.stats()
    }

    /// Set (or clear) a resident-byte quota for one residency group. A group
    /// over its quota evicts its *own* least-recent frames before reserving
    /// more; it never spills its overflow onto other groups. A quota smaller
    /// than one frame still admits a single frame (the per-group floor).
    pub fn set_group_quota(&self, group: u64, quota_bytes: Option<u64>) {
        let mut st = self.0.state.lock().unwrap();
        st.group_mut(group).quota = quota_bytes;
    }

    /// Mark one in-flight request against `group`. While a group's activity
    /// refcount is nonzero its frames are deprioritized as eviction victims:
    /// global eviction takes the LRU frame of an *idle* group when one
    /// exists. Pair every call with [`Self::group_exit`].
    pub fn group_enter(&self, group: u64) {
        let mut st = self.0.state.lock().unwrap();
        st.group_mut(group).active += 1;
    }

    /// Balance a [`Self::group_enter`]; the group becomes idle (and its
    /// frames become preferred victims) when the refcount reaches zero.
    pub fn group_exit(&self, group: u64) {
        let mut st = self.0.state.lock().unwrap();
        let g = st.group_mut(group);
        g.active = g.active.saturating_sub(1);
    }

    /// Accounting for one residency group (zeros if never touched).
    pub fn group_stats(&self, group: u64) -> GroupStats {
        let st = self.0.state.lock().unwrap();
        match st.groups.get(&group) {
            Some(g) => GroupStats {
                resident_bytes: g.resident_bytes,
                inflight_bytes: g.inflight_bytes,
                high_water_bytes: g.hw_bytes,
                quota_bytes: g.quota,
                quota_evictions: g.quota_evictions,
                active: g.active,
            },
            None => GroupStats::default(),
        }
    }
}

impl std::fmt::Debug for CacheBudgetHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("CacheBudgetHandle")
            .field(&self.0.limit)
            .finish()
    }
}

/// Fault injected into one read attempt by a test hook; see
/// [`OutOfCoreSeries::set_read_fault_hook`].
#[derive(Debug, Clone, Copy)]
pub enum ReadFault {
    /// Sleep before performing the real read (scheduling chaos).
    Delay(Duration),
    /// Fail this attempt with a transient I/O error.
    Error,
}

/// Per-attempt fault decision: `(frame index, 1-based attempt) -> fault?`.
pub type ReadFaultHook = Arc<dyn Fn(usize, u32) -> Option<ReadFault> + Send + Sync>;

/// Bounded retry for transient read failures, on both demand and prefetch
/// paths.
const READ_ATTEMPTS: u32 = 3;

struct Inner {
    dims: Dims3,
    steps: Vec<u32>,
    paths: Vec<PathBuf>,
    /// Per-frame budget charge: the on-disk byte size of each frame file.
    /// Raw frames charge `voxels * 4`; compressed frames charge their
    /// (smaller) container size, so a byte budget holds more of them.
    charges: Vec<u64>,
    /// Largest per-frame charge, for the conservative `capacity()` bound.
    max_charge: u64,
    /// Page frames in by `mmap` (zero-copy borrow of the OS page cache)
    /// instead of a copying read. Requires raw `"f32le"` frames.
    mmap: bool,
    sc: Arc<SeriesCache>,
    budget: CacheBudgetHandle,
    /// Memoized global `(min, max)`: one streaming scan, reused thereafter.
    range: Mutex<Option<(f32, f32)>>,
    fault: Mutex<Option<ReadFaultHook>>,
}

impl Inner {
    /// Budget charge of frame `i` (its on-disk byte size).
    fn charge(&self, i: usize) -> u64 {
        self.charges[i]
    }

    /// The physical page-in of one frame: mapped (zero-copy) or copied, with
    /// compressed frames decoding on the copy path.
    fn read_one(&self, i: usize) -> Result<ScalarVolume, IoError> {
        if self.mmap {
            crate::mmapio::map_frame(&self.paths[i])
        } else {
            crate::io::read_frame(&self.paths[i]).map(|(v, _)| v)
        }
    }

    /// One logical read with bounded retry; the fault hook (when installed)
    /// may delay or fail individual attempts.
    fn read_frame(&self, i: usize) -> Result<ScalarVolume, IoError> {
        let hook = self.fault.lock().unwrap().clone();
        let mut attempt = 0;
        loop {
            attempt += 1;
            let injected = hook.as_ref().and_then(|h| h(i, attempt));
            let res = match injected {
                Some(ReadFault::Error) => Err(IoError::Io(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    "injected transient read fault",
                ))),
                Some(ReadFault::Delay(d)) => {
                    std::thread::sleep(d);
                    self.read_one(i)
                }
                None => self.read_one(i),
            };
            match res {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if attempt >= READ_ATTEMPTS {
                        return Err(e);
                    }
                    self.sc.cache.lock().unwrap().stats.read_retries += 1;
                    ifet_obs::counter_runtime("volume.ooc.read_retry", 1);
                }
            }
        }
    }

    /// Demand access: hit, wait out an in-flight read, or load ourselves.
    fn demand_frame(&self, i: usize) -> Result<Arc<ScalarVolume>, IoError> {
        assert!(i < self.paths.len(), "frame {i} out of range");
        let b = &self.budget.0;
        {
            let mut c = self.sc.cache.lock().unwrap();
            loop {
                let stamp = b.tick.fetch_add(1, Ordering::Relaxed);
                if let Some(v) = c.get_resident(i, stamp) {
                    return Ok(v);
                }
                if !c.inflight.contains(&i) {
                    break;
                }
                // Someone (usually the prefetch worker) is already reading
                // this frame; wait for commit or release, then re-check.
                let (g, _) = self
                    .sc
                    .cv
                    .wait_timeout(c, Duration::from_millis(50))
                    .unwrap();
                c = g;
            }
            c.note_miss();
            c.inflight.insert(i);
        }
        let charge = self.charge(i);
        // Group attribution is read once so reserve/commit/release agree even
        // if the series is reassigned mid-read.
        let group = self.sc.group.load(Ordering::Relaxed);
        b.reserve(charge, group);
        match self.read_frame(i) {
            Ok(vol) => {
                let vol = Arc::new(vol);
                b.commit_and_insert(&self.sc, i, vol.clone(), false, charge, group);
                Ok(vol)
            }
            Err(e) => {
                b.release(&self.sc, i, charge, group);
                Err(e)
            }
        }
    }

    /// Read-ahead: best-effort warm of the cache. Never surfaces errors —
    /// a failed prefetch just leaves the frame for demand to (re)load.
    fn prefetch_frame(&self, i: usize) {
        if i >= self.paths.len() {
            return;
        }
        let b = &self.budget.0;
        {
            let mut c = self.sc.cache.lock().unwrap();
            if c.map.contains_key(&i) || c.inflight.contains(&i) {
                c.stats.prefetch_misses += 1;
                ifet_obs::counter_runtime("volume.ooc.prefetch_miss", 1);
                return;
            }
            c.inflight.insert(i);
        }
        let charge = self.charge(i);
        let group = self.sc.group.load(Ordering::Relaxed);
        b.reserve(charge, group);
        match self.read_frame(i) {
            Ok(vol) => b.commit_and_insert(&self.sc, i, Arc::new(vol), true, charge, group),
            Err(_) => b.release(&self.sc, i, charge, group),
        }
    }
}

enum PrefetchMsg {
    Batch(Vec<usize>),
    Stop,
}

struct PrefetchWorker {
    tx: mpsc::Sender<PrefetchMsg>,
    handle: std::thread::JoinHandle<()>,
}

/// A time series whose frames live on disk, with residency bounded by a
/// (possibly shared) [`CacheBudget`].
pub struct OutOfCoreSeries {
    inner: Arc<Inner>,
    prefetch_depth: usize,
    worker: Option<PrefetchWorker>,
}

impl OutOfCoreSeries {
    /// Write an in-core series to `dir` and return the disk-backed handle
    /// with a private `Frames(capacity)` budget.
    pub fn create(
        dir: &Path,
        prefix: &str,
        series: &TimeSeries,
        capacity: usize,
    ) -> Result<Self, IoError> {
        Self::create_with(dir, prefix, series, &CacheBudgetHandle::frames(capacity), 0)
    }

    /// [`Self::create`] with an explicit (possibly shared) budget and a
    /// prefetch depth (`0` disables read-ahead).
    pub fn create_with(
        dir: &Path,
        prefix: &str,
        series: &TimeSeries,
        budget: &CacheBudgetHandle,
        prefetch: usize,
    ) -> Result<Self, IoError> {
        Self::create_opts(dir, prefix, series, budget, prefetch, false)
    }

    /// [`Self::create_with`] with a choice of on-disk format: `compress`
    /// writes bricked compressed `.rawz` containers (see [`crate::codec`]),
    /// which the cache then charges at their smaller compressed size.
    pub fn create_opts(
        dir: &Path,
        prefix: &str,
        series: &TimeSeries,
        budget: &CacheBudgetHandle,
        prefetch: usize,
        compress: bool,
    ) -> Result<Self, IoError> {
        let paths = write_series_with(dir, prefix, series, compress)?;
        Self::from_parts(
            series.dims(),
            series.steps().to_vec(),
            paths,
            budget,
            prefetch,
            false,
        )
    }

    /// Open from existing frame files with a private `Frames(capacity)`
    /// budget (reads each sidecar for the step label, but no voxel data).
    pub fn open(paths: Vec<PathBuf>, capacity: usize) -> Result<Self, IoError> {
        Self::open_with(paths, &CacheBudgetHandle::frames(capacity), 0)
    }

    /// [`Self::open`] with an explicit (possibly shared) budget and a
    /// prefetch depth (`0` disables read-ahead).
    pub fn open_with(
        paths: Vec<PathBuf>,
        budget: &CacheBudgetHandle,
        prefetch: usize,
    ) -> Result<Self, IoError> {
        Self::open_opts(paths, budget, prefetch, false)
    }

    /// [`Self::open_with`] paging by zero-copy `mmap` instead of copying
    /// reads. Every frame must be raw `"f32le"` (compressed containers have
    /// no byte-for-byte voxel image on disk to borrow); on targets without
    /// mmap support the series transparently falls back to copying reads
    /// with identical results.
    pub fn open_mmap(
        paths: Vec<PathBuf>,
        budget: &CacheBudgetHandle,
        prefetch: usize,
    ) -> Result<Self, IoError> {
        Self::open_opts(paths, budget, prefetch, true)
    }

    fn open_opts(
        paths: Vec<PathBuf>,
        budget: &CacheBudgetHandle,
        prefetch: usize,
        mmap: bool,
    ) -> Result<Self, IoError> {
        assert!(!paths.is_empty(), "need at least one frame file");
        // Read sidecars only — cheap JSON reads for dims, steps, and dtype.
        let mut labelled: Vec<(u32, PathBuf)> = Vec::with_capacity(paths.len());
        let mut dims = None;
        for (k, p) in paths.iter().enumerate() {
            let meta = crate::io::read_sidecar(p)?;
            let raw = meta.dtype == "f32le";
            let compressed = meta.dtype == crate::codec::DTYPE;
            if !raw && !compressed {
                return Err(IoError::UnsupportedDtype(meta.dtype));
            }
            if mmap && !raw {
                // Mapping borrows the on-disk bytes as voxels; a compressed
                // container has no such image, so refuse up front rather
                // than failing on first access.
                return Err(IoError::UnsupportedDtype(meta.dtype));
            }
            if let Some(d) = dims {
                assert_eq!(d, meta.dims, "frame dims mismatch in series");
            } else {
                dims = Some(meta.dims);
            }
            labelled.push((meta.step.unwrap_or(k as u32), p.clone()));
        }
        labelled.sort_by_key(|(t, _)| *t);
        Self::from_parts(
            dims.unwrap(),
            labelled.iter().map(|(t, _)| *t).collect(),
            labelled.into_iter().map(|(_, p)| p).collect(),
            budget,
            prefetch,
            mmap,
        )
    }

    fn from_parts(
        dims: Dims3,
        steps: Vec<u32>,
        paths: Vec<PathBuf>,
        budget: &CacheBudgetHandle,
        prefetch: usize,
        mmap: bool,
    ) -> Result<Self, IoError> {
        let mut charges = Vec::with_capacity(paths.len());
        for p in &paths {
            charges.push(std::fs::metadata(p)?.len());
        }
        let max_charge = charges.iter().copied().max().unwrap_or(1).max(1);
        let sc = Arc::new(SeriesCache {
            cache: Mutex::new(Cache::new()),
            cv: Condvar::new(),
            group: AtomicU64::new(0),
        });
        budget.0.register(&sc);
        let mut s = Self {
            inner: Arc::new(Inner {
                dims,
                steps,
                paths,
                charges,
                max_charge,
                mmap,
                sc,
                budget: budget.clone(),
                range: Mutex::new(None),
                fault: Mutex::new(None),
            }),
            prefetch_depth: 0,
            worker: None,
        };
        s.set_prefetch(prefetch);
        Ok(s)
    }

    pub fn dims(&self) -> Dims3 {
        self.inner.dims
    }

    pub fn len(&self) -> usize {
        self.inner.paths.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.paths.is_empty()
    }

    pub fn steps(&self) -> &[u32] {
        &self.inner.steps
    }

    /// The frame files backing this series, in step order.
    pub fn paths(&self) -> &[PathBuf] {
        &self.inner.paths
    }

    /// Load frame `i`, from cache when resident. The `Arc` keeps the frame
    /// alive for the caller even after eviction.
    pub fn frame(&self, i: usize) -> Result<Arc<ScalarVolume>, IoError> {
        self.inner.demand_frame(i)
    }

    /// Frame by step label.
    pub fn frame_at_step(&self, t: u32) -> Result<Option<Arc<ScalarVolume>>, IoError> {
        match self.inner.steps.binary_search(&t) {
            Ok(i) => Ok(Some(self.frame(i)?)),
            Err(_) => Ok(None),
        }
    }

    /// Residency bound in frames: the budget expressed as whole frames of
    /// this series. Byte budgets divide by the *largest* per-frame charge
    /// (conservative for mixed compressed sizes), round down, and floor at
    /// one frame.
    pub fn capacity(&self) -> usize {
        match self.inner.budget.0.limit {
            CacheBudget::Frames(n) => n.max(1),
            CacheBudget::Bytes(b) => ((b / self.inner.max_charge) as usize).max(1),
        }
    }

    /// Whether frames page in by zero-copy `mmap` on this series.
    pub fn is_mmap(&self) -> bool {
        self.inner.mmap
    }

    /// The budget handle this series draws on (shared across clones).
    pub fn budget(&self) -> &CacheBudgetHandle {
        &self.inner.budget
    }

    /// Assign this series to a residency group (`0` is the default group).
    /// All of the series' resident bytes are attributed to the group, which
    /// can carry a byte quota ([`CacheBudgetHandle::set_group_quota`]) and an
    /// activity refcount ([`CacheBudgetHandle::group_enter`]) that steers
    /// eviction. Call before the first frame read; a later reassignment
    /// migrates the bytes already resident but not reads currently in
    /// flight.
    pub fn set_residency_group(&self, group: u64) {
        let b = &self.inner.budget.0;
        let mut st = b.state.lock().unwrap();
        let old = self.inner.sc.group.swap(group, Ordering::Relaxed);
        if old == group {
            return;
        }
        let moved = self.inner.sc.cache.lock().unwrap().stats.resident_bytes;
        if moved > 0 {
            let og = st.group_mut(old);
            og.resident_bytes = og.resident_bytes.saturating_sub(moved);
            let ng = st.group_mut(group);
            ng.resident_bytes += moved;
            ng.hw_bytes = ng.hw_bytes.max(ng.resident_bytes + ng.inflight_bytes);
        }
    }

    /// The residency group this series is assigned to.
    pub fn residency_group(&self) -> u64 {
        self.inner.sc.group.load(Ordering::Relaxed)
    }

    /// Read-ahead depth in frames (`0` = prefetch disabled).
    pub fn prefetch_depth(&self) -> usize {
        self.prefetch_depth
    }

    /// Start (or stop, with `0`) the background read-ahead worker. Hints
    /// from `FrameSource::prefetch_hint` are clamped to `depth` frames.
    pub fn set_prefetch(&mut self, depth: usize) {
        if depth == self.prefetch_depth && (depth == 0) == self.worker.is_none() {
            return;
        }
        self.stop_worker();
        self.prefetch_depth = depth;
        if depth == 0 {
            return;
        }
        let inner = self.inner.clone();
        let (tx, rx) = mpsc::channel::<PrefetchMsg>();
        let handle = std::thread::Builder::new()
            .name("ifet-ooc-prefetch".into())
            .spawn(move || {
                while let Ok(PrefetchMsg::Batch(idxs)) = rx.recv() {
                    // Merge this thread's counter buffer after each batch so
                    // runtime counters from the worker become visible.
                    let _flush = ifet_obs::flush_guard();
                    for i in idxs {
                        inner.prefetch_frame(i);
                    }
                }
            })
            .expect("spawn prefetch worker");
        self.worker = Some(PrefetchWorker { tx, handle });
    }

    /// Queue read-ahead for `upcoming` frame indices (clamped to the
    /// configured depth). No-op when prefetch is disabled. Never blocks.
    pub fn request_prefetch(&self, upcoming: &[usize]) {
        let Some(w) = &self.worker else { return };
        let take = self.prefetch_depth.min(upcoming.len());
        if take == 0 {
            return;
        }
        let batch: Vec<usize> = upcoming[..take]
            .iter()
            .copied()
            .filter(|&i| i < self.inner.paths.len())
            .collect();
        if !batch.is_empty() {
            let _ = w.tx.send(PrefetchMsg::Batch(batch));
        }
    }

    /// Install (or clear) a per-read fault hook. Test instrumentation for
    /// the chaos suite: lets a test delay or transiently fail individual
    /// read attempts on both the demand and prefetch paths.
    pub fn set_read_fault_hook(&self, hook: Option<ReadFaultHook>) {
        *self.inner.fault.lock().unwrap() = hook;
    }

    /// `(hits, misses)` so far (demand accesses only).
    pub fn cache_stats(&self) -> (u64, u64) {
        let c = self.inner.sc.cache.lock().unwrap();
        (c.stats.hits, c.stats.misses)
    }

    /// Full paging statistics. Per-series traffic counters plus the shared
    /// budget's high-water marks (which include in-flight reads).
    pub fn stats(&self) -> CacheStats {
        let b = self.inner.budget.stats();
        let c = self.inner.sc.cache.lock().unwrap();
        CacheStats {
            resident: c.map.len(),
            resident_high_water: b.high_water_frames,
            resident_high_water_bytes: b.high_water_bytes,
            ..c.stats
        }
    }

    /// Frames currently resident (this series).
    pub fn resident(&self) -> usize {
        self.inner.sc.cache.lock().unwrap().map.len()
    }

    /// Global `(min, max)` across all frames, computed by one streaming scan
    /// in ascending frame order and memoized.
    pub(crate) fn global_range_cached(&self) -> Result<(f32, f32), IoError> {
        if let Some(r) = *self.inner.range.lock().unwrap() {
            return Ok(r);
        }
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for i in 0..self.len() {
            let (a, b) = self.frame(i)?.value_range();
            lo = lo.min(a);
            hi = hi.max(b);
        }
        let r = if lo > hi { (0.0, 0.0) } else { (lo, hi) };
        *self.inner.range.lock().unwrap() = Some(r);
        Ok(r)
    }

    /// Materialize the whole series in core (only for small data / tests).
    pub fn load_all(&self) -> Result<TimeSeries, IoError> {
        let mut frames = Vec::with_capacity(self.len());
        for (i, &t) in self.inner.steps.iter().enumerate() {
            frames.push((t, (*self.frame(i)?).clone()));
        }
        Ok(TimeSeries::from_frames(frames))
    }

    fn stop_worker(&mut self) {
        if let Some(w) = self.worker.take() {
            let _ = w.tx.send(PrefetchMsg::Stop);
            let _ = w.handle.join();
        }
    }
}

impl Drop for OutOfCoreSeries {
    fn drop(&mut self) {
        self.stop_worker();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn sample_series() -> TimeSeries {
        let d = Dims3::cube(8);
        TimeSeries::from_frames(
            (0..6u32)
                .map(|k| (k * 10, ScalarVolume::filled(d, k as f32)))
                .collect(),
        )
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ifet_ooc_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    const FB: u64 = 8 * 8 * 8 * 4; // bytes per sample_series frame

    #[test]
    fn create_and_read_frames() {
        let dir = tmpdir("basic");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 2).unwrap();
        assert_eq!(ooc.len(), 6);
        assert_eq!(ooc.dims(), Dims3::cube(8));
        assert_eq!(ooc.steps(), &[0, 10, 20, 30, 40, 50]);
        for i in 0..6 {
            assert_eq!(ooc.frame(i).unwrap().as_slice()[0], i as f32);
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn cache_respects_capacity() {
        let dir = tmpdir("cap");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 2).unwrap();
        for i in 0..6 {
            let _ = ooc.frame(i).unwrap();
        }
        assert!(ooc.resident() <= 2, "resident {}", ooc.resident());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn repeated_access_hits_cache() {
        let dir = tmpdir("hits");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 3).unwrap();
        let _ = ooc.frame(0).unwrap();
        let _ = ooc.frame(0).unwrap();
        let _ = ooc.frame(0).unwrap();
        let (hits, misses) = ooc.cache_stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn lru_evicts_oldest() {
        let dir = tmpdir("lru");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 2).unwrap();
        let _ = ooc.frame(0).unwrap();
        let _ = ooc.frame(1).unwrap();
        let _ = ooc.frame(0).unwrap(); // refresh 0
        let _ = ooc.frame(2).unwrap(); // evicts 1
        let (h0, _) = ooc.cache_stats();
        let _ = ooc.frame(0).unwrap(); // still resident -> hit
        let (h1, _) = ooc.cache_stats();
        assert_eq!(h1, h0 + 1);
        let (_, m0) = ooc.cache_stats();
        let _ = ooc.frame(1).unwrap(); // was evicted -> miss
        let (_, m1) = ooc.cache_stats();
        assert_eq!(m1, m0 + 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn open_from_paths_matches_created() {
        let dir = tmpdir("open");
        let s = sample_series();
        let created = OutOfCoreSeries::create(&dir, "f", &s, 2).unwrap();
        let paths: Vec<PathBuf> = created.paths().to_vec();
        let opened = OutOfCoreSeries::open(paths, 2).unwrap();
        assert_eq!(opened.steps(), created.steps());
        assert_eq!(opened.load_all().unwrap(), s);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn frame_at_step_lookup() {
        let dir = tmpdir("step");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 2).unwrap();
        assert_eq!(ooc.frame_at_step(30).unwrap().unwrap().as_slice()[0], 3.0);
        assert!(ooc.frame_at_step(31).unwrap().is_none());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_frame_file_is_an_error_not_a_panic() {
        let dir = tmpdir("gone");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 1).unwrap();
        // Delete one raw file behind the cache's back.
        std::fs::remove_file(&ooc.paths()[3]).unwrap();
        assert!(ooc.frame(3).is_err(), "deleted frame must surface as Err");
        // Other frames still load.
        assert!(ooc.frame(0).is_ok());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn corrupted_frame_is_an_error() {
        let dir = tmpdir("corrupt");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 1).unwrap();
        std::fs::write(&ooc.paths()[2], [1u8, 2, 3]).unwrap(); // truncated
        assert!(ooc.frame(2).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn arc_keeps_evicted_frame_alive() {
        let dir = tmpdir("arc");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 1).unwrap();
        let held = ooc.frame(0).unwrap();
        let _ = ooc.frame(1).unwrap(); // evicts frame 0 from the cache
                                       // The caller's Arc still works even though the cache dropped it.
        assert_eq!(held.as_slice()[0], 0.0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn stats_track_evictions_and_high_water() {
        let dir = tmpdir("stats");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 2).unwrap();
        assert_eq!(ooc.capacity(), 2);
        for i in 0..6 {
            let _ = ooc.frame(i).unwrap();
        }
        let st = ooc.stats();
        assert_eq!(st.hits, 0);
        assert_eq!(st.misses, 6);
        assert_eq!(st.evictions, 4);
        assert_eq!(st.resident, 2);
        assert_eq!(st.resident_high_water, 2);
        assert_eq!(st.bytes_paged, 6 * FB);
        assert_eq!(st.resident_bytes, 2 * FB);
        assert_eq!(st.resident_high_water_bytes, 2 * FB);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn byte_budget_bounds_resident_bytes() {
        let dir = tmpdir("bytebudget");
        let s = sample_series();
        // Room for exactly three frames.
        let budget = CacheBudgetHandle::bytes(3 * FB);
        let ooc = OutOfCoreSeries::create_with(&dir, "f", &s, &budget, 0).unwrap();
        assert_eq!(ooc.capacity(), 3);
        for i in 0..6 {
            let _ = ooc.frame(i).unwrap();
        }
        let st = ooc.stats();
        assert_eq!(st.resident, 3);
        assert_eq!(st.resident_bytes, 3 * FB);
        assert!(st.resident_high_water_bytes <= 3 * FB);
        assert_eq!(st.evictions, 3);
        // True LRU under byte charging: the last three frames are resident.
        let (h0, _) = ooc.cache_stats();
        let _ = ooc.frame(3).unwrap();
        let _ = ooc.frame(4).unwrap();
        let _ = ooc.frame(5).unwrap();
        let (h1, m) = ooc.cache_stats();
        assert_eq!(h1, h0 + 3, "frames 3..6 must all be hits");
        assert_eq!(m, 6);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn sub_frame_byte_budget_still_makes_progress() {
        let dir = tmpdir("tiny");
        let s = sample_series();
        let budget = CacheBudgetHandle::bytes(FB / 2);
        let ooc = OutOfCoreSeries::create_with(&dir, "f", &s, &budget, 0).unwrap();
        assert_eq!(ooc.capacity(), 1);
        for i in 0..6 {
            assert_eq!(ooc.frame(i).unwrap().as_slice()[0], i as f32);
        }
        // The single-frame floor: never more than one frame despite the
        // sub-frame budget.
        assert!(ooc.stats().resident_high_water <= 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn shared_budget_evicts_across_series() {
        let dir = tmpdir("shared");
        let s = sample_series();
        let budget = CacheBudgetHandle::new(CacheBudget::Frames(2));
        let a = OutOfCoreSeries::create_with(&dir.join("a"), "f", &s, &budget, 0).unwrap();
        let b = OutOfCoreSeries::create_with(&dir.join("b"), "f", &s, &budget, 0).unwrap();
        let _ = a.frame(0).unwrap();
        let _ = a.frame(1).unwrap();
        assert_eq!(a.resident(), 2);
        // Loading into `b` must evict from `a`: the budget is global.
        let _ = b.frame(0).unwrap();
        assert_eq!(a.resident() + b.resident(), 2);
        assert_eq!(a.stats().evictions, 1, "a's LRU frame paid for b's load");
        let bs = budget.stats();
        assert_eq!(bs.resident_frames, 2);
        assert!(bs.high_water_frames <= 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn group_quota_evicts_own_frames_first() {
        let dir = tmpdir("quota");
        let s = sample_series();
        // Roomy global budget: quota pressure, not global pressure, must
        // drive every eviction in this test.
        let budget = CacheBudgetHandle::frames(8);
        let a = OutOfCoreSeries::create_with(&dir.join("a"), "f", &s, &budget, 0).unwrap();
        let b = OutOfCoreSeries::create_with(&dir.join("b"), "f", &s, &budget, 0).unwrap();
        a.set_residency_group(1);
        b.set_residency_group(2);
        budget.set_group_quota(1, Some(2 * FB));
        // b establishes residency first; a's quota churn must not touch it.
        let _ = b.frame(0).unwrap();
        let _ = b.frame(1).unwrap();
        for i in 0..6 {
            let _ = a.frame(i).unwrap();
        }
        // The per-group bound and the global bound hold simultaneously.
        let ga = budget.group_stats(1);
        assert!(
            ga.high_water_bytes <= 2 * FB,
            "group 1 high-water {} exceeds its quota",
            ga.high_water_bytes
        );
        assert_eq!(ga.resident_bytes, 2 * FB);
        assert_eq!(ga.quota_evictions, 4, "frames 0..4 paid for 2..6");
        let bs = budget.stats();
        assert!(bs.high_water_frames <= 8);
        assert_eq!(bs.quota_evictions, 4);
        // Quota-local, not global: b kept everything, a evicted only its own.
        assert_eq!(b.stats().evictions, 0, "b must be untouched by a's quota");
        assert_eq!(a.stats().evictions, 4);
        assert_eq!(a.resident(), 2);
        assert_eq!(b.resident(), 2);
        assert_eq!(budget.group_stats(2).quota_evictions, 0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn sub_frame_group_quota_still_makes_progress() {
        let dir = tmpdir("quotafloor");
        let s = sample_series();
        let budget = CacheBudgetHandle::frames(8);
        let a = OutOfCoreSeries::create_with(&dir, "f", &s, &budget, 0).unwrap();
        a.set_residency_group(1);
        budget.set_group_quota(1, Some(FB / 2));
        // The per-group single-frame floor: reads proceed, one frame at a
        // time, despite a quota smaller than any frame.
        for i in 0..6 {
            assert_eq!(a.frame(i).unwrap().as_slice()[0], i as f32);
        }
        assert!(budget.group_stats(1).high_water_bytes <= FB);
        assert_eq!(a.resident(), 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn eviction_prefers_idle_groups_over_active_ones() {
        let dir = tmpdir("idleevict");
        let s = sample_series();
        let budget = CacheBudgetHandle::frames(2);
        let a = OutOfCoreSeries::create_with(&dir.join("a"), "f", &s, &budget, 0).unwrap();
        let b = OutOfCoreSeries::create_with(&dir.join("b"), "f", &s, &budget, 0).unwrap();
        a.set_residency_group(1);
        b.set_residency_group(2);
        let _ = a.frame(0).unwrap(); // globally least recent
        let _ = b.frame(0).unwrap();
        // Group 1 is active, group 2 idle: the next eviction must take b's
        // frame even though a holds the global LRU.
        budget.group_enter(1);
        let _ = a.frame(1).unwrap();
        assert_eq!(a.resident(), 2, "active group kept its LRU frame");
        assert_eq!(b.resident(), 0, "idle group's frame was the victim");
        let bs = budget.stats();
        assert_eq!(bs.idle_evictions, 1, "the eviction was redirected");
        assert!(bs.high_water_frames <= 2, "the global bound still holds");
        // Once group 1 goes idle again, plain global LRU resumes: b's next
        // load takes a's oldest frame.
        budget.group_exit(1);
        let _ = b.frame(0).unwrap();
        assert_eq!(a.resident(), 1);
        assert_eq!(b.resident(), 1);
        assert_eq!(
            budget.stats().idle_evictions,
            1,
            "no redirect when all idle"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn prefetch_warms_cache_and_counts_hits() {
        let dir = tmpdir("prefetch");
        let s = sample_series();
        let budget = CacheBudgetHandle::frames(4);
        let ooc = OutOfCoreSeries::create_with(&dir, "f", &s, &budget, 2).unwrap();
        assert_eq!(ooc.prefetch_depth(), 2);
        ooc.request_prefetch(&[0, 1, 2, 3]); // clamped to depth 2
                                             // Wait for the worker to commit both frames.
        for _ in 0..200 {
            if ooc.stats().prefetched == 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let st = ooc.stats();
        assert_eq!(st.prefetched, 2, "depth clamps the request to two frames");
        assert_eq!(st.misses, 0, "prefetch loads are not demand misses");
        let _ = ooc.frame(0).unwrap();
        let _ = ooc.frame(1).unwrap();
        let st = ooc.stats();
        assert_eq!(st.hits, 2);
        assert_eq!(st.prefetch_hits, 2);
        assert_eq!(st.misses, 0);
        // Re-requesting resident frames is a prefetch miss (skip).
        ooc.request_prefetch(&[0]);
        for _ in 0..200 {
            if ooc.stats().prefetch_misses == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(ooc.stats().prefetch_misses, 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn prefetch_respects_budget_high_water() {
        let dir = tmpdir("prefhw");
        let s = sample_series();
        let budget = CacheBudgetHandle::frames(2);
        let ooc = OutOfCoreSeries::create_with(&dir, "f", &s, &budget, 4).unwrap();
        // Walk the series with aggressive read-ahead; the budget (which
        // charges in-flight reads too) must never be exceeded.
        for i in 0..6 {
            ooc.request_prefetch(&[i + 1, i + 2, i + 3, i + 4]);
            let _ = ooc.frame(i).unwrap();
        }
        let st = ooc.stats();
        assert!(
            st.resident_high_water <= 2,
            "high water {} exceeds budget",
            st.resident_high_water
        );
        assert!(st.prefetch_wasted <= st.prefetched);
        assert_eq!(st.hits + st.misses, 6);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn fault_hook_retries_transient_errors() {
        let dir = tmpdir("fault");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 2).unwrap();
        // Fail the first two attempts of every read of frame 3.
        ooc.set_read_fault_hook(Some(Arc::new(|frame, attempt| {
            (frame == 3 && attempt <= 2).then_some(ReadFault::Error)
        })));
        assert_eq!(ooc.frame(3).unwrap().as_slice()[0], 3.0);
        assert_eq!(ooc.stats().read_retries, 2);
        // A permanently failing frame still surfaces an error after the
        // bounded retries.
        ooc.set_read_fault_hook(Some(Arc::new(|frame, _| {
            (frame == 4).then_some(ReadFault::Error)
        })));
        assert!(ooc.frame(4).is_err());
        ooc.set_read_fault_hook(None);
        assert!(ooc.frame(4).is_ok());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn failed_prefetch_degrades_to_demand_load() {
        let dir = tmpdir("prefail");
        let s = sample_series();
        let budget = CacheBudgetHandle::frames(3);
        let ooc = OutOfCoreSeries::create_with(&dir, "f", &s, &budget, 2).unwrap();
        // Fail the first three read attempts of frame 1 (exhausting the
        // prefetch worker's retries), then succeed.
        let calls = Arc::new(AtomicU32::new(0));
        let c = calls.clone();
        ooc.set_read_fault_hook(Some(Arc::new(move |frame, _| {
            (frame == 1 && c.fetch_add(1, Ordering::SeqCst) < 3).then_some(ReadFault::Error)
        })));
        ooc.request_prefetch(&[1]);
        // Wait until the worker has given up (three failed attempts).
        for _ in 0..400 {
            if calls.load(Ordering::SeqCst) >= 3 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        // Demand still gets the frame; the failed prefetch left no trace
        // beyond retry counters and an unreserved budget.
        assert_eq!(ooc.frame(1).unwrap().as_slice()[0], 1.0);
        let st = ooc.stats();
        assert_eq!(st.prefetched, 0);
        assert_eq!(st.misses, 1);
        let bs = budget.stats();
        assert_eq!(bs.inflight_frames, 0, "failed prefetch must release");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn global_range_cached_scans_once() {
        let dir = tmpdir("range");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 1).unwrap();
        assert_eq!(ooc.global_range_cached().unwrap(), s.global_range());
        let (_, misses_before) = ooc.cache_stats();
        assert_eq!(ooc.global_range_cached().unwrap(), s.global_range());
        let (_, misses_after) = ooc.cache_stats();
        assert_eq!(misses_before, misses_after, "second call must be memoized");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn load_all_roundtrips() {
        let dir = tmpdir("all");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 1).unwrap();
        assert_eq!(ooc.load_all().unwrap(), s);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn compressed_series_charges_compressed_bytes() {
        let dir = tmpdir("zcharge");
        let s = sample_series();
        let budget = CacheBudgetHandle::frames(1);
        let ooc = OutOfCoreSeries::create_opts(&dir, "f", &s, &budget, 0, true).unwrap();
        assert_eq!(ooc.load_all().unwrap(), s, "compressed paging is lossless");
        let st = ooc.stats();
        assert!(
            st.bytes_paged < 6 * FB,
            "constant frames must page fewer than raw bytes ({} vs {})",
            st.bytes_paged,
            6 * FB
        );
        // Charges come from the actual file sizes.
        let on_disk: u64 = ooc
            .paths()
            .iter()
            .map(|p| std::fs::metadata(p).unwrap().len())
            .sum();
        assert_eq!(st.bytes_paged, on_disk);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn byte_budget_holds_more_compressed_frames() {
        let dir = tmpdir("zmore");
        let s = sample_series();
        // One raw frame's worth of budget holds several compressed frames.
        let budget = CacheBudgetHandle::bytes(FB);
        let ooc = OutOfCoreSeries::create_opts(&dir, "f", &s, &budget, 0, true).unwrap();
        assert!(
            ooc.capacity() > 1,
            "capacity {} should exceed one frame under compression",
            ooc.capacity()
        );
        for i in 0..6 {
            let _ = ooc.frame(i).unwrap();
        }
        let st = ooc.stats();
        assert!(st.resident > 1);
        assert!(st.resident_high_water_bytes <= FB);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn mmap_series_matches_copied_reads() {
        let dir = tmpdir("mmap");
        let s = sample_series();
        let created = OutOfCoreSeries::create(&dir, "f", &s, 2).unwrap();
        let budget = CacheBudgetHandle::frames(2);
        let ooc = OutOfCoreSeries::open_mmap(created.paths().to_vec(), &budget, 0).unwrap();
        assert!(ooc.is_mmap());
        assert_eq!(ooc.load_all().unwrap(), s);
        assert_eq!(
            ooc.frame(0).unwrap().is_mapped(),
            crate::mmapio::Mapping::supported()
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn mmap_rejects_compressed_frames_up_front() {
        let dir = tmpdir("mmapz");
        let s = sample_series();
        let budget = CacheBudgetHandle::frames(2);
        let ooc = OutOfCoreSeries::create_opts(&dir, "f", &s, &budget, 0, true).unwrap();
        assert!(matches!(
            OutOfCoreSeries::open_mmap(ooc.paths().to_vec(), &budget, 0),
            Err(IoError::UnsupportedDtype(_))
        ));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn corrupted_compressed_frame_is_typed_codec_error() {
        let dir = tmpdir("zcorrupt");
        let s = sample_series();
        let budget = CacheBudgetHandle::frames(1);
        let ooc = OutOfCoreSeries::create_opts(&dir, "f", &s, &budget, 0, true).unwrap();
        let p = ooc.paths()[2].clone();
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x5a;
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(ooc.frame(2), Err(IoError::Codec(_))));
        // Other frames still load fine.
        assert!(ooc.frame(0).is_ok());
        std::fs::remove_dir_all(dir).ok();
    }
}
