//! Out-of-core time series: disk-backed frames with an LRU cache.
//!
//! The paper's motivation is terascale data: "when the volume size is large
//! or many time steps are used, it can be time consuming to load the volumes
//! for training since not all the data can fit in core" (Section 4.2.2), and
//! "as the data set grows ... it becomes impractical to load the entire data
//! onto a single computer" (Section 4.2.3). [`OutOfCoreSeries`] keeps only a
//! bounded number of frames resident, paging the rest from the raw-brick
//! files of [`crate::io`]; the IATF workflow needs only the key frames in
//! core, exactly as the paper argues.

use crate::dims::Dims3;
use crate::io::{read_raw, write_series, IoError};
use crate::series::TimeSeries;
use crate::volume::ScalarVolume;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Paging statistics for one [`OutOfCoreSeries`].
///
/// Mirrored into the obs runtime counter set (`volume.ooc.*`); kept out of
/// stable traces because hit/miss/evict sequences depend on scheduling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Raw voxel bytes read from disk (4 bytes per voxel per paged frame).
    pub bytes_paged: u64,
    /// Frames resident right now.
    pub resident: usize,
    /// Maximum frames ever resident at once — the bounded-memory witness.
    pub resident_high_water: usize,
}

const NIL: usize = usize::MAX;

/// One resident frame, threaded on an intrusive LRU list over slot indices.
struct Slot {
    frame: usize,
    vol: Arc<ScalarVolume>,
    prev: usize,
    next: usize,
}

/// LRU cache with O(1) get/insert: a frame-index map into a slot slab whose
/// occupied slots form a doubly-linked recency list (`head` = least recent,
/// `tail` = most recent). Replaces the original linear-scan `VecDeque`.
struct Cache {
    capacity: usize,
    map: HashMap<usize, usize>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    stats: CacheStats,
}

impl Cache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    fn detach(&mut self, s: usize) {
        let (prev, next) = {
            let e = self.slots[s].as_ref().unwrap();
            (e.prev, e.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p].as_mut().unwrap().next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].as_mut().unwrap().prev = prev,
        }
    }

    fn attach_most_recent(&mut self, s: usize) {
        {
            let e = self.slots[s].as_mut().unwrap();
            e.prev = self.tail;
            e.next = NIL;
        }
        match self.tail {
            NIL => self.head = s,
            t => self.slots[t].as_mut().unwrap().next = s,
        }
        self.tail = s;
    }

    fn get(&mut self, idx: usize) -> Option<Arc<ScalarVolume>> {
        if let Some(&s) = self.map.get(&idx) {
            self.detach(s);
            self.attach_most_recent(s);
            self.stats.hits += 1;
            ifet_obs::counter_runtime("volume.ooc.hit", 1);
            Some(self.slots[s].as_ref().unwrap().vol.clone())
        } else {
            self.stats.misses += 1;
            ifet_obs::counter_runtime("volume.ooc.miss", 1);
            None
        }
    }

    fn insert(&mut self, idx: usize, vol: Arc<ScalarVolume>) {
        if let Some(&s) = self.map.get(&idx) {
            // A concurrent loader beat us to it; just refresh recency.
            self.detach(s);
            self.attach_most_recent(s);
            return;
        }
        while self.map.len() >= self.capacity {
            let lru = self.head;
            self.detach(lru);
            let e = self.slots[lru].take().unwrap();
            self.map.remove(&e.frame);
            self.free.push(lru);
            self.stats.evictions += 1;
            ifet_obs::counter_runtime("volume.ooc.evict", 1);
        }
        let bytes = (vol.dims().len() * 4) as u64;
        let s = self.free.pop().unwrap_or_else(|| {
            self.slots.push(None);
            self.slots.len() - 1
        });
        self.slots[s] = Some(Slot {
            frame: idx,
            vol,
            prev: NIL,
            next: NIL,
        });
        self.attach_most_recent(s);
        self.map.insert(idx, s);
        self.stats.bytes_paged += bytes;
        self.stats.resident_high_water = self.stats.resident_high_water.max(self.map.len());
        ifet_obs::counter_runtime("volume.ooc.bytes_paged", bytes);
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            resident: self.map.len(),
            ..self.stats
        }
    }
}

/// A time series whose frames live on disk, with at most `capacity` frames
/// resident at a time.
pub struct OutOfCoreSeries {
    dims: Dims3,
    steps: Vec<u32>,
    paths: Vec<PathBuf>,
    cache: Mutex<Cache>,
    /// Memoized global `(min, max)`: one streaming scan, reused thereafter.
    range: Mutex<Option<(f32, f32)>>,
}

impl OutOfCoreSeries {
    /// Write an in-core series to `dir` and return the disk-backed handle.
    pub fn create(
        dir: &Path,
        prefix: &str,
        series: &TimeSeries,
        capacity: usize,
    ) -> Result<Self, IoError> {
        let paths = write_series(dir, prefix, series)?;
        Ok(Self {
            dims: series.dims(),
            steps: series.steps().to_vec(),
            paths,
            cache: Mutex::new(Cache::new(capacity)),
            range: Mutex::new(None),
        })
    }

    /// Open from existing frame files (reads each sidecar for the step
    /// label, but no voxel data).
    pub fn open(paths: Vec<PathBuf>, capacity: usize) -> Result<Self, IoError> {
        assert!(!paths.is_empty(), "need at least one frame file");
        // Read sidecars only — via read_raw on the first file for dims, and
        // cheap JSON reads for steps.
        let mut labelled: Vec<(u32, PathBuf)> = Vec::with_capacity(paths.len());
        let mut dims = None;
        for (k, p) in paths.iter().enumerate() {
            let side = std::fs::File::open(PathBuf::from({
                let mut s = p.as_os_str().to_owned();
                s.push(".json");
                s
            }))?;
            let meta: crate::io::VolumeMeta = serde_json::from_reader(side)?;
            if let Some(d) = dims {
                assert_eq!(d, meta.dims, "frame dims mismatch in series");
            } else {
                dims = Some(meta.dims);
            }
            labelled.push((meta.step.unwrap_or(k as u32), p.clone()));
        }
        labelled.sort_by_key(|(t, _)| *t);
        Ok(Self {
            dims: dims.unwrap(),
            steps: labelled.iter().map(|(t, _)| *t).collect(),
            paths: labelled.into_iter().map(|(_, p)| p).collect(),
            cache: Mutex::new(Cache::new(capacity)),
            range: Mutex::new(None),
        })
    }

    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    pub fn len(&self) -> usize {
        self.paths.len()
    }

    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    pub fn steps(&self) -> &[u32] {
        &self.steps
    }

    /// Load frame `i`, from cache when resident. The `Arc` keeps the frame
    /// alive for the caller even after eviction.
    pub fn frame(&self, i: usize) -> Result<Arc<ScalarVolume>, IoError> {
        assert!(i < self.paths.len(), "frame {i} out of range");
        if let Some(hit) = self.cache.lock().unwrap().get(i) {
            return Ok(hit);
        }
        let (vol, _) = read_raw(&self.paths[i])?;
        let vol = Arc::new(vol);
        self.cache.lock().unwrap().insert(i, vol.clone());
        Ok(vol)
    }

    /// Frame by step label.
    pub fn frame_at_step(&self, t: u32) -> Result<Option<Arc<ScalarVolume>>, IoError> {
        match self.steps.binary_search(&t) {
            Ok(i) => Ok(Some(self.frame(i)?)),
            Err(_) => Ok(None),
        }
    }

    /// Cache capacity: the residency bound in frames.
    pub fn capacity(&self) -> usize {
        self.cache.lock().unwrap().capacity
    }

    /// `(hits, misses)` so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        let c = self.cache.lock().unwrap();
        (c.stats.hits, c.stats.misses)
    }

    /// Full paging statistics, including the resident high-water mark.
    pub fn stats(&self) -> CacheStats {
        self.cache.lock().unwrap().stats()
    }

    /// Frames currently resident.
    pub fn resident(&self) -> usize {
        self.cache.lock().unwrap().map.len()
    }

    /// Global `(min, max)` across all frames, computed by one streaming scan
    /// in ascending frame order and memoized.
    pub(crate) fn global_range_cached(&self) -> Result<(f32, f32), IoError> {
        if let Some(r) = *self.range.lock().unwrap() {
            return Ok(r);
        }
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for i in 0..self.len() {
            let (a, b) = self.frame(i)?.value_range();
            lo = lo.min(a);
            hi = hi.max(b);
        }
        let r = if lo > hi { (0.0, 0.0) } else { (lo, hi) };
        *self.range.lock().unwrap() = Some(r);
        Ok(r)
    }

    /// Materialize the whole series in core (only for small data / tests).
    pub fn load_all(&self) -> Result<TimeSeries, IoError> {
        let mut frames = Vec::with_capacity(self.len());
        for (i, &t) in self.steps.iter().enumerate() {
            frames.push((t, (*self.frame(i)?).clone()));
        }
        Ok(TimeSeries::from_frames(frames))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> TimeSeries {
        let d = Dims3::cube(8);
        TimeSeries::from_frames(
            (0..6u32)
                .map(|k| (k * 10, ScalarVolume::filled(d, k as f32)))
                .collect(),
        )
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ifet_ooc_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn create_and_read_frames() {
        let dir = tmpdir("basic");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 2).unwrap();
        assert_eq!(ooc.len(), 6);
        assert_eq!(ooc.dims(), Dims3::cube(8));
        assert_eq!(ooc.steps(), &[0, 10, 20, 30, 40, 50]);
        for i in 0..6 {
            assert_eq!(ooc.frame(i).unwrap().as_slice()[0], i as f32);
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn cache_respects_capacity() {
        let dir = tmpdir("cap");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 2).unwrap();
        for i in 0..6 {
            let _ = ooc.frame(i).unwrap();
        }
        assert!(ooc.resident() <= 2, "resident {}", ooc.resident());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn repeated_access_hits_cache() {
        let dir = tmpdir("hits");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 3).unwrap();
        let _ = ooc.frame(0).unwrap();
        let _ = ooc.frame(0).unwrap();
        let _ = ooc.frame(0).unwrap();
        let (hits, misses) = ooc.cache_stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn lru_evicts_oldest() {
        let dir = tmpdir("lru");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 2).unwrap();
        let _ = ooc.frame(0).unwrap();
        let _ = ooc.frame(1).unwrap();
        let _ = ooc.frame(0).unwrap(); // refresh 0
        let _ = ooc.frame(2).unwrap(); // evicts 1
        let (h0, _) = ooc.cache_stats();
        let _ = ooc.frame(0).unwrap(); // still resident -> hit
        let (h1, _) = ooc.cache_stats();
        assert_eq!(h1, h0 + 1);
        let (_, m0) = ooc.cache_stats();
        let _ = ooc.frame(1).unwrap(); // was evicted -> miss
        let (_, m1) = ooc.cache_stats();
        assert_eq!(m1, m0 + 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn open_from_paths_matches_created() {
        let dir = tmpdir("open");
        let s = sample_series();
        let created = OutOfCoreSeries::create(&dir, "f", &s, 2).unwrap();
        let paths: Vec<PathBuf> = (0..created.len())
            .map(|i| created.paths[i].clone())
            .collect();
        let opened = OutOfCoreSeries::open(paths, 2).unwrap();
        assert_eq!(opened.steps(), created.steps());
        assert_eq!(opened.load_all().unwrap(), s);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn frame_at_step_lookup() {
        let dir = tmpdir("step");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 2).unwrap();
        assert_eq!(ooc.frame_at_step(30).unwrap().unwrap().as_slice()[0], 3.0);
        assert!(ooc.frame_at_step(31).unwrap().is_none());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_frame_file_is_an_error_not_a_panic() {
        let dir = tmpdir("gone");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 1).unwrap();
        // Delete one raw file behind the cache's back.
        std::fs::remove_file(&ooc.paths[3]).unwrap();
        assert!(ooc.frame(3).is_err(), "deleted frame must surface as Err");
        // Other frames still load.
        assert!(ooc.frame(0).is_ok());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn corrupted_frame_is_an_error() {
        let dir = tmpdir("corrupt");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 1).unwrap();
        std::fs::write(&ooc.paths[2], [1u8, 2, 3]).unwrap(); // truncated
        assert!(ooc.frame(2).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn arc_keeps_evicted_frame_alive() {
        let dir = tmpdir("arc");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 1).unwrap();
        let held = ooc.frame(0).unwrap();
        let _ = ooc.frame(1).unwrap(); // evicts frame 0 from the cache
                                       // The caller's Arc still works even though the cache dropped it.
        assert_eq!(held.as_slice()[0], 0.0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn stats_track_evictions_and_high_water() {
        let dir = tmpdir("stats");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 2).unwrap();
        assert_eq!(ooc.capacity(), 2);
        for i in 0..6 {
            let _ = ooc.frame(i).unwrap();
        }
        let st = ooc.stats();
        assert_eq!(st.hits, 0);
        assert_eq!(st.misses, 6);
        assert_eq!(st.evictions, 4);
        assert_eq!(st.resident, 2);
        assert_eq!(st.resident_high_water, 2);
        assert_eq!(st.bytes_paged, 6 * 8 * 8 * 8 * 4);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn global_range_cached_scans_once() {
        let dir = tmpdir("range");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 1).unwrap();
        assert_eq!(ooc.global_range_cached().unwrap(), s.global_range());
        let (_, misses_before) = ooc.cache_stats();
        assert_eq!(ooc.global_range_cached().unwrap(), s.global_range());
        let (_, misses_after) = ooc.cache_stats();
        assert_eq!(misses_before, misses_after, "second call must be memoized");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn load_all_roundtrips() {
        let dir = tmpdir("all");
        let s = sample_series();
        let ooc = OutOfCoreSeries::create(&dir, "f", &s, 1).unwrap();
        assert_eq!(ooc.load_all().unwrap(), s);
        std::fs::remove_dir_all(dir).ok();
    }
}
