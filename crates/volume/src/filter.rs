//! Volume filtering: separable Gaussian and box smoothing.
//!
//! Repeated smoothing is the conventional "remove the tiny features" baseline
//! the paper contrasts against in Figure 7 — it removes noise blobs but also
//! destroys fine detail on the large structures.

use crate::dims::Dims3;
use crate::volume::ScalarVolume;
use rayon::prelude::*;

/// Build a normalized 1D Gaussian kernel with standard deviation `sigma`,
/// truncated at `3*sigma`.
pub fn gaussian_kernel(sigma: f32) -> Vec<f32> {
    assert!(sigma > 0.0, "sigma must be positive");
    let radius = (3.0 * sigma).ceil().max(1.0) as i64;
    let mut k: Vec<f32> = (-radius..=radius)
        .map(|i| (-(i as f32).powi(2) / (2.0 * sigma * sigma)).exp())
        .collect();
    let sum: f32 = k.iter().sum();
    for v in &mut k {
        *v /= sum;
    }
    k
}

fn convolve_axis(vol: &ScalarVolume, kernel: &[f32], axis: usize) -> ScalarVolume {
    let d = vol.dims();
    let radius = (kernel.len() / 2) as i64;
    let src = vol.as_slice();

    let out: Vec<f32> = (0..d.len())
        .into_par_iter()
        .map(|idx| {
            let (x, y, z) = d.coords(idx);
            let mut acc = 0.0f32;
            for (ki, &w) in kernel.iter().enumerate() {
                let off = ki as i64 - radius;
                let (sx, sy, sz) = match axis {
                    0 => (x as i64 + off, y as i64, z as i64),
                    1 => (x as i64, y as i64 + off, z as i64),
                    _ => (x as i64, y as i64, z as i64 + off),
                };
                let (cx, cy, cz) = d.clamp_i(sx, sy, sz);
                acc += w * src[d.index(cx, cy, cz)];
            }
            acc
        })
        .collect();

    ScalarVolume::from_vec(d, out)
}

/// Separable 3D Gaussian blur with standard deviation `sigma` (voxels).
pub fn gaussian_blur(vol: &ScalarVolume, sigma: f32) -> ScalarVolume {
    let k = gaussian_kernel(sigma);
    let a = convolve_axis(vol, &k, 0);
    let b = convolve_axis(&a, &k, 1);
    convolve_axis(&b, &k, 2)
}

/// Apply `gaussian_blur` `passes` times — the paper's "repeatedly smooth the
/// data" baseline.
pub fn repeated_blur(vol: &ScalarVolume, sigma: f32, passes: usize) -> ScalarVolume {
    let mut cur = vol.clone();
    for _ in 0..passes {
        cur = gaussian_blur(&cur, sigma);
    }
    cur
}

/// 3D box blur with half-width `r` (kernel size `2r+1` per axis), separable.
pub fn box_blur(vol: &ScalarVolume, r: usize) -> ScalarVolume {
    let n = 2 * r + 1;
    let k = vec![1.0 / n as f32; n];
    let a = convolve_axis(vol, &k, 0);
    let b = convolve_axis(&a, &k, 1);
    convolve_axis(&b, &k, 2)
}

/// Downsample a volume by an integer `factor` per axis using block averaging.
/// Used to give the "scientist" different levels of detail (paper Section 4.3).
pub fn downsample(vol: &ScalarVolume, factor: usize) -> ScalarVolume {
    assert!(factor >= 1);
    let d = vol.dims();
    let nd = Dims3::new(
        (d.nx / factor).max(1),
        (d.ny / factor).max(1),
        (d.nz / factor).max(1),
    );
    ScalarVolume::from_fn(nd, |x, y, z| {
        let mut acc = 0.0f64;
        let mut n = 0u32;
        for dz in 0..factor {
            for dy in 0..factor {
                for dx in 0..factor {
                    let (sx, sy, sz) = (x * factor + dx, y * factor + dy, z * factor + dz);
                    if d.contains(sx, sy, sz) {
                        acc += *vol.get(sx, sy, sz) as f64;
                        n += 1;
                    }
                }
            }
        }
        (acc / n.max(1) as f64) as f32
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::Dims3;

    #[test]
    fn kernel_is_normalized_and_symmetric() {
        let k = gaussian_kernel(1.5);
        let sum: f32 = k.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert_eq!(k.len() % 2, 1);
        let n = k.len();
        for i in 0..n / 2 {
            assert!((k[i] - k[n - 1 - i]).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic]
    fn zero_sigma_panics() {
        let _ = gaussian_kernel(0.0);
    }

    #[test]
    fn blur_preserves_constant_field() {
        let v = ScalarVolume::filled(Dims3::cube(8), 3.0);
        let b = gaussian_blur(&v, 1.0);
        for &x in b.as_slice() {
            assert!((x - 3.0).abs() < 1e-4);
        }
    }

    #[test]
    fn blur_preserves_mass_roughly() {
        // With clamped boundaries, interior mass is conserved approximately.
        let mut v = ScalarVolume::zeros(Dims3::cube(16));
        v.set(8, 8, 8, 100.0);
        let b = gaussian_blur(&v, 1.0);
        let total: f32 = b.as_slice().iter().sum();
        assert!((total - 100.0).abs() < 1.0, "{total}");
    }

    #[test]
    fn blur_reduces_peak() {
        let mut v = ScalarVolume::zeros(Dims3::cube(9));
        v.set(4, 4, 4, 1.0);
        let b = gaussian_blur(&v, 1.0);
        assert!(*b.get(4, 4, 4) < 0.5);
        assert!(*b.get(4, 4, 4) > *b.get(0, 0, 0));
    }

    #[test]
    fn repeated_blur_smooths_more() {
        let mut v = ScalarVolume::zeros(Dims3::cube(11));
        v.set(5, 5, 5, 1.0);
        let once = gaussian_blur(&v, 1.0);
        let thrice = repeated_blur(&v, 1.0, 3);
        assert!(*thrice.get(5, 5, 5) < *once.get(5, 5, 5));
    }

    #[test]
    fn box_blur_of_impulse_is_uniform_in_kernel() {
        let mut v = ScalarVolume::zeros(Dims3::cube(7));
        v.set(3, 3, 3, 27.0);
        let b = box_blur(&v, 1);
        for z in 2..=4 {
            for y in 2..=4 {
                for x in 2..=4 {
                    assert!((b.get(x, y, z) - 1.0).abs() < 1e-5);
                }
            }
        }
        assert_eq!(*b.get(0, 0, 0), 0.0);
    }

    #[test]
    fn downsample_halves_dims() {
        let v = ScalarVolume::from_fn(Dims3::cube(8), |x, _, _| x as f32);
        let s = downsample(&v, 2);
        assert_eq!(s.dims(), Dims3::cube(4));
        // Block (0..2)^3 averages x = 0 and 1 -> 0.5
        assert!((s.get(0, 0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn downsample_factor_one_is_identity() {
        let v = ScalarVolume::from_fn(Dims3::cube(4), |x, y, z| (x + y + z) as f32);
        assert_eq!(downsample(&v, 1), v);
    }
}
