//! Property-based tests for the volume substrate's core invariants.

use ifet_volume::histogram::{CumulativeHistogram, Histogram};
use ifet_volume::mask::MaskWordsError;
use ifet_volume::maskio::{decode_mask, encode_mask};
use ifet_volume::sample::{gradient_at, trilinear};
use ifet_volume::{Dims3, Mask3, ScalarVolume};
use proptest::prelude::*;

/// Arbitrary small dims (kept tiny so each case is fast).
fn dims_strategy() -> impl Strategy<Value = Dims3> {
    (1usize..8, 1usize..8, 1usize..8).prop_map(|(x, y, z)| Dims3::new(x, y, z))
}

/// A volume with values in [-10, 10] over arbitrary small dims.
fn volume_strategy() -> impl Strategy<Value = ScalarVolume> {
    dims_strategy().prop_flat_map(|d| {
        proptest::collection::vec(-10.0f32..10.0, d.len())
            .prop_map(move |data| ScalarVolume::from_vec(d, data))
    })
}

proptest! {
    #[test]
    fn index_coords_roundtrip(d in dims_strategy(), idx_frac in 0.0f64..1.0) {
        let idx = ((d.len() - 1) as f64 * idx_frac) as usize;
        let (x, y, z) = d.coords(idx);
        prop_assert!(d.contains(x, y, z));
        prop_assert_eq!(d.index(x, y, z), idx);
    }

    #[test]
    fn trilinear_within_data_bounds(vol in volume_strategy(),
                                    fx in 0.0f32..1.0, fy in 0.0f32..1.0, fz in 0.0f32..1.0) {
        // Interpolation is a convex combination: result must lie within the
        // volume's min/max (allow epsilon for float error).
        let d = vol.dims();
        let x = fx * (d.nx as f32 - 1.0);
        let y = fy * (d.ny as f32 - 1.0);
        let z = fz * (d.nz as f32 - 1.0);
        let v = trilinear(&vol, x, y, z);
        let (lo, hi) = vol.value_range();
        prop_assert!(v >= lo - 1e-3 && v <= hi + 1e-3, "{v} outside [{lo}, {hi}]");
    }

    #[test]
    fn trilinear_at_integer_coords_is_exact(vol in volume_strategy()) {
        let d = vol.dims();
        let (x, y, z) = (d.nx / 2, d.ny / 2, d.nz / 2);
        let v = trilinear(&vol, x as f32, y as f32, z as f32);
        prop_assert!((v - vol.get(x, y, z)).abs() < 1e-4);
    }

    #[test]
    fn gradient_of_constant_volume_is_zero(d in dims_strategy(), c in -5.0f32..5.0) {
        let vol = ScalarVolume::filled(d, c);
        let g = gradient_at(&vol, d.nx / 2, d.ny / 2, d.nz / 2);
        prop_assert_eq!(g, [0.0; 3]);
    }

    #[test]
    fn normalized_is_in_unit_range(vol in volume_strategy()) {
        let n = vol.normalized();
        let (lo, hi) = n.value_range();
        prop_assert!(lo >= -1e-6 && hi <= 1.0 + 1e-6);
    }

    #[test]
    fn histogram_total_counts_all_voxels(vol in volume_strategy(), bins in 1usize..64) {
        let h = Histogram::of_volume(&vol, bins);
        prop_assert_eq!(h.total(), vol.len() as u64);
        prop_assert_eq!(h.counts().iter().sum::<u64>(), vol.len() as u64);
    }

    #[test]
    fn cumulative_fraction_is_monotone(vol in volume_strategy(),
                                       a in -12.0f32..12.0, b in -12.0f32..12.0) {
        let ch = CumulativeHistogram::of_volume(&vol, 32);
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(ch.fraction_at_or_below(lo) <= ch.fraction_at_or_below(hi) + 1e-6);
    }

    #[test]
    fn cumulative_fraction_bounds(vol in volume_strategy(), q in -12.0f32..12.0) {
        let ch = CumulativeHistogram::of_volume(&vol, 32);
        let f = ch.fraction_at_or_below(q);
        prop_assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn cumhist_rank_invariant_under_monotone_shift(vol in volume_strategy(),
                                                   shift in -3.0f32..3.0,
                                                   q in -9.0f32..9.0) {
        // The IATF's foundation: shifting all values by a constant preserves
        // every query's cumulative fraction (up to binning).
        let shifted = vol.map(|&v| v + shift);
        let c0 = CumulativeHistogram::of_volume(&vol, 512);
        let c1 = CumulativeHistogram::of_volume(&shifted, 512);
        let f0 = c0.fraction_at_or_below(q);
        let f1 = c1.fraction_at_or_below(q + shift);
        prop_assert!((f0 - f1).abs() < 0.05, "{f0} vs {f1}");
    }

    #[test]
    fn mask_set_algebra(d in dims_strategy(), seed_a in any::<u64>(), seed_b in any::<u64>()) {
        let bits = |seed: u64| {
            Mask3::from_fn(d, |x, y, z| {
                (seed ^ (x as u64).wrapping_mul(31) ^ (y as u64).wrapping_mul(1009)
                    ^ (z as u64).wrapping_mul(74747)).count_ones() % 2 == 0
            })
        };
        let a = bits(seed_a);
        let b = bits(seed_b);
        // |A ∪ B| + |A ∩ B| = |A| + |B|
        prop_assert_eq!(
            a.union_count(&b) + a.intersection_count(&b),
            a.count() + b.count()
        );
        // Subtraction partitions A.
        let mut diff = a.clone();
        diff.subtract(&b);
        prop_assert_eq!(diff.count() + a.intersection_count(&b), a.count());
        // Double inversion is identity.
        let mut inv = a.clone();
        inv.invert();
        inv.invert();
        prop_assert_eq!(inv, a);
    }

    #[test]
    fn jaccard_dice_relationship(d in dims_strategy(), seed in any::<u64>()) {
        // dice = 2J / (1 + J) for any pair of masks.
        let a = Mask3::from_fn(d, |x, y, z| (x + y + z + seed as usize) % 3 == 0);
        let b = Mask3::from_fn(d, |x, y, z| (x * 2 + y + z) % 4 == 0);
        let j = a.jaccard(&b);
        let dice = a.dice(&b);
        prop_assert!((dice - 2.0 * j / (1.0 + j)).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&j));
    }

    #[test]
    fn dilate_contains_original_erode_contained(d in dims_strategy(), seed in any::<u64>()) {
        let m = Mask3::from_fn(d, |x, y, z| (x ^ y ^ z ^ seed as usize) % 2 == 0);
        let dil = m.dilate6();
        prop_assert_eq!(m.intersection_count(&dil), m.count(), "dilation must contain original");
        let ero = m.erode6();
        prop_assert_eq!(ero.intersection_count(&m), ero.count(), "erosion must be contained");
    }

    #[test]
    fn f1_between_zero_and_one(d in dims_strategy(), ta in 0usize..4, tb in 0usize..4) {
        let a = Mask3::from_fn(d, |x, _, _| x % 4 >= ta);
        let b = Mask3::from_fn(d, |_, y, _| y % 4 >= tb);
        let f1 = a.f1(&b);
        prop_assert!((0.0..=1.0).contains(&f1));
    }

    #[test]
    fn bitset_roundtrips_arbitrary_bools(bm in bool_mask_strategy()) {
        // The packed-word mask must reproduce the reference `Vec<bool>`
        // exactly, bit for bit, through both linear and 3D accessors.
        let (d, bits) = bm;
        let m = mask_of_bools(d, &bits);
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(m.get_linear(i), b);
            let (x, y, z) = d.coords(i);
            prop_assert_eq!(m.get(x, y, z), b);
        }
        let truthy: Vec<usize> =
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        prop_assert_eq!(m.set_indices().collect::<Vec<_>>(), truthy);
        prop_assert_eq!(m.count(), bits.iter().filter(|&&b| b).count());
    }

    #[test]
    fn word_level_set_metrics_match_bool_reference((d, bits_a, bits_b) in bool_mask_pair_strategy()) {
        // Word-level popcount metrics must agree with per-element counting
        // over the old `Vec<bool>` semantics.
        let a = mask_of_bools(d, &bits_a);
        let b = mask_of_bools(d, &bits_b);
        let naive_inter = bits_a.iter().zip(&bits_b).filter(|(&x, &y)| x && y).count();
        let naive_union = bits_a.iter().zip(&bits_b).filter(|(&x, &y)| x || y).count();
        prop_assert_eq!(a.intersection_count(&b), naive_inter);
        prop_assert_eq!(a.union_count(&b), naive_union);

        let mut u = a.clone();
        u.union_with(&b);
        prop_assert_eq!(u.count(), naive_union);
        let mut i = a.clone();
        i.intersect_with(&b);
        prop_assert_eq!(i.count(), naive_inter);
        let mut s = a.clone();
        s.subtract(&b);
        prop_assert_eq!(s.count(), bits_a.iter().zip(&bits_b).filter(|(&x, &y)| x && !y).count());

        // Inversion must respect the tail: exactly the complement, never
        // phantom bits past `dims.len()`.
        let mut inv = a.clone();
        inv.invert();
        prop_assert_eq!(inv.count(), d.len() - a.count());
        prop_assert_eq!(inv.intersection_count(&a), 0);
    }

    #[test]
    fn binary_mask_section_roundtrips_bool_reference(bm in bool_mask_strategy()) {
        // The on-disk mask section must round-trip against the `Vec<bool>`
        // reference model: encode → decode reproduces every bit, and the
        // word image itself is unchanged (bit-identical artifact bytes).
        let (d, bits) = bm;
        let m = mask_of_bools(d, &bits);
        let bytes = encode_mask(&m);
        let (back, used) = decode_mask(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(back.dims(), d);
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(back.get_linear(i), b);
        }
        prop_assert_eq!(back.words(), m.words());
        // Re-encoding is byte-identical (no hidden nondeterminism).
        prop_assert_eq!(encode_mask(&back), bytes);
        // from_words accepts exactly the decoded image...
        prop_assert_eq!(&Mask3::from_words(d, back.words().to_vec()).unwrap(), &back);
        // ...and rejects a wrong-length image with a typed error.
        let mut too_long = back.words().to_vec();
        too_long.push(0);
        prop_assert!(matches!(
            Mask3::from_words(d, too_long),
            Err(MaskWordsError::WordCountMismatch { .. })
        ));
    }
}

/// `(dims, bits)` with `bits.len() == dims.len()`, sized to cross u64 word
/// boundaries (up to 9³ = 729 bits ≈ 12 words).
fn bool_mask_strategy() -> impl Strategy<Value = (Dims3, Vec<bool>)> {
    (1usize..10, 1usize..10, 1usize..10)
        .prop_map(|(x, y, z)| Dims3::new(x, y, z))
        .prop_flat_map(|d| {
            proptest::collection::vec(any::<bool>(), d.len()).prop_map(move |bits| (d, bits))
        })
}

/// Two independent bool masks over the same dims.
fn bool_mask_pair_strategy() -> impl Strategy<Value = (Dims3, Vec<bool>, Vec<bool>)> {
    (1usize..10, 1usize..10, 1usize..10)
        .prop_map(|(x, y, z)| Dims3::new(x, y, z))
        .prop_flat_map(|d| {
            (
                proptest::collection::vec(any::<bool>(), d.len()),
                proptest::collection::vec(any::<bool>(), d.len()),
            )
                .prop_map(move |(a, b)| (d, a, b))
        })
}

fn mask_of_bools(d: Dims3, bits: &[bool]) -> Mask3 {
    let mut m = Mask3::empty(d);
    for (i, &b) in bits.iter().enumerate() {
        m.set_linear(i, b);
    }
    m
}

// ---- Out-of-core LRU cache properties ----

/// One shared on-disk series for the LRU properties (written once per run).
fn ooc_fixture() -> &'static (ifet_volume::TimeSeries, Vec<std::path::PathBuf>) {
    use std::sync::OnceLock;
    static FIX: OnceLock<(ifet_volume::TimeSeries, Vec<std::path::PathBuf>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let d = Dims3::cube(4);
        let series = ifet_volume::TimeSeries::from_frames(
            (0..OOC_FRAMES)
                .map(|k| {
                    (
                        k as u32 * 3,
                        ScalarVolume::from_fn(d, move |x, y, z| {
                            (x + 2 * y + 4 * z) as f32 + 100.0 * k as f32
                        }),
                    )
                })
                .collect(),
        );
        let dir = std::env::temp_dir().join(format!("ifet_lru_prop_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let paths = ifet_volume::io::write_series(&dir, "lru", &series).unwrap();
        (series, paths)
    })
}

const OOC_FRAMES: usize = 6;

proptest! {
    /// Random access through the LRU cache is transparent (every frame read
    /// back equals its in-core twin), residency never exceeds capacity, the
    /// hit/miss/evict accounting balances, and the resident set is exactly
    /// the most-recently-used frames.
    #[test]
    fn lru_random_access_is_transparent_and_bounded(
        capacity in 1usize..8,
        accesses in proptest::collection::vec(0usize..OOC_FRAMES, 1..40),
    ) {
        let (series, paths) = ooc_fixture();
        let ooc = ifet_volume::OutOfCoreSeries::open(paths.clone(), capacity).unwrap();
        for &i in &accesses {
            let got = ooc.frame(i).unwrap();
            prop_assert_eq!(&*got, series.frame(i));
            let st = ooc.stats();
            prop_assert!(st.resident <= capacity);
            prop_assert!(st.resident_high_water <= capacity);
        }
        let st = ooc.stats();
        prop_assert_eq!(st.hits + st.misses, accesses.len() as u64);
        let distinct: std::collections::HashSet<usize> = accesses.iter().copied().collect();
        prop_assert!(st.misses >= distinct.len() as u64);
        prop_assert_eq!(st.evictions, st.misses - st.resident as u64);
        prop_assert_eq!(st.bytes_paged, st.misses * series.dims().len() as u64 * 4);

        // LRU order: the last `capacity` distinct frames accessed must still
        // be resident, so touching them again cannot miss.
        let mut mru: Vec<usize> = Vec::new();
        for &i in accesses.iter().rev() {
            if !mru.contains(&i) {
                mru.push(i);
            }
            if mru.len() == capacity.min(distinct.len()) {
                break;
            }
        }
        for &i in &mru {
            let _ = ooc.frame(i).unwrap();
        }
        prop_assert_eq!(ooc.stats().misses, st.misses, "MRU frames must still be resident");
    }

    /// A byte-counted budget shared by two series is never exceeded — not
    /// even transiently by in-flight prefetch reads, which are charged
    /// before their bytes land. The only sanctioned overshoot is the
    /// single-frame floor when the budget is smaller than one frame.
    #[test]
    fn lru_shared_byte_budget_never_exceeded(
        budget_bytes in 1u64..1200,
        ops in proptest::collection::vec((0usize..OOC_FRAMES, any::<bool>(), any::<bool>()), 1..40),
    ) {
        let (series, paths) = ooc_fixture();
        let frame_bytes = series.dims().len() as u64 * 4;
        let budget = ifet_volume::CacheBudgetHandle::bytes(budget_bytes);
        let a = ifet_volume::OutOfCoreSeries::open_with(paths.clone(), &budget, 2).unwrap();
        let b = ifet_volume::OutOfCoreSeries::open_with(paths.clone(), &budget, 2).unwrap();
        let bound = budget_bytes.max(frame_bytes);
        for &(i, use_b, hint) in &ops {
            let ooc = if use_b { &b } else { &a };
            if hint {
                ooc.request_prefetch(&[(i + 1) % OOC_FRAMES, (i + 2) % OOC_FRAMES]);
            }
            let got = ooc.frame(i).unwrap();
            prop_assert_eq!(&*got, series.frame(i));
            let st = budget.stats();
            prop_assert!(
                st.high_water_bytes <= bound,
                "high-water {} exceeds bound {} (budget {})",
                st.high_water_bytes, bound, budget_bytes
            );
        }
        // Per-series byte high-waters are within the shared bound too.
        for ooc in [&a, &b] {
            prop_assert!(ooc.stats().resident_high_water_bytes <= bound);
        }
    }

    /// Stats algebra under prefetch: demand accounting stays exact
    /// (`hits + misses` equals exactly the number of demand reads no matter
    /// how prefetch races them), every paged byte is attributed to a demand
    /// miss or a prefetch load, and a prefetched frame resolves to at most
    /// one of {hit, wasted}.
    #[test]
    fn lru_stats_algebra_holds_under_prefetch(
        capacity in 1usize..4,
        depth in 1usize..4,
        accesses in proptest::collection::vec(0usize..OOC_FRAMES, 1..40),
    ) {
        let (series, paths) = ooc_fixture();
        let frame_bytes = series.dims().len() as u64 * 4;
        let budget = ifet_volume::CacheBudgetHandle::frames(capacity);
        let ooc = ifet_volume::OutOfCoreSeries::open_with(paths.clone(), &budget, depth).unwrap();
        for (k, &i) in accesses.iter().enumerate() {
            if k % 2 == 0 {
                ooc.request_prefetch(&[(i + 1) % OOC_FRAMES]);
            }
            prop_assert_eq!(&*ooc.frame(i).unwrap(), series.frame(i));
        }
        let st = ooc.stats();
        prop_assert_eq!(st.hits + st.misses, accesses.len() as u64);
        prop_assert!(st.prefetch_hits + st.prefetch_wasted <= st.prefetched);
        prop_assert_eq!(st.bytes_paged, (st.misses + st.prefetched) * frame_bytes);
        prop_assert!(st.resident_high_water <= capacity);
    }

    /// Byte-charged eviction is still true LRU: with a budget worth exactly
    /// `capacity` frames, the last `capacity` distinct frames demanded are
    /// resident, so re-touching them cannot miss.
    #[test]
    fn lru_byte_charged_eviction_is_true_lru(
        capacity in 1usize..5,
        accesses in proptest::collection::vec(0usize..OOC_FRAMES, 1..40),
    ) {
        let (series, paths) = ooc_fixture();
        let frame_bytes = series.dims().len() as u64 * 4;
        let budget = ifet_volume::CacheBudgetHandle::bytes(capacity as u64 * frame_bytes);
        let ooc = ifet_volume::OutOfCoreSeries::open_with(paths.clone(), &budget, 0).unwrap();
        for &i in &accesses {
            prop_assert_eq!(&*ooc.frame(i).unwrap(), series.frame(i));
            prop_assert!(ooc.stats().resident_high_water_bytes <= capacity as u64 * frame_bytes);
        }
        let st = ooc.stats();
        let distinct: std::collections::HashSet<usize> = accesses.iter().copied().collect();
        let mut mru: Vec<usize> = Vec::new();
        for &i in accesses.iter().rev() {
            if !mru.contains(&i) {
                mru.push(i);
            }
            if mru.len() == capacity.min(distinct.len()) {
                break;
            }
        }
        for &i in &mru {
            let _ = ooc.frame(i).unwrap();
        }
        prop_assert_eq!(
            ooc.stats().misses, st.misses,
            "byte-charged LRU evicted a most-recently-used frame"
        );
    }
}
