//! Property-based tests for the bricked frame codec: every `f32` bit
//! pattern — quiet/signalling NaN payloads, ±infinity, denormals, negative
//! zero — must survive encode → decode bit-identically, at every frame
//! length (empty, sub-brick, exact multiples, ragged tails), and the
//! compressed container must never blow up beyond its fixed per-brick
//! overhead.

use ifet_volume::codec::{decode_frame, encode_frame, BRICK_VOXELS, ENTRY_LEN, HEADER_LEN};
use proptest::prelude::*;

/// Frame lengths that exercise the brick layout: empty, one partial brick,
/// exact brick multiples, and ragged tails across several bricks.
fn len_strategy() -> BoxedStrategy<usize> {
    prop_oneof![
        Just(0usize),
        1usize..64,
        Just(BRICK_VOXELS - 1),
        Just(BRICK_VOXELS),
        Just(BRICK_VOXELS + 1),
        Just(2 * BRICK_VOXELS),
        (2 * BRICK_VOXELS + 1)..(3 * BRICK_VOXELS),
    ]
    .boxed()
}

/// A single arbitrary `f32` *bit pattern*, biased toward the special values
/// a value-range strategy would never produce.
fn bits_strategy() -> BoxedStrategy<u32> {
    prop_oneof![
        // Fully arbitrary bits (hits normals, denormals, NaNs, infs).
        any::<u32>(),
        // Explicit specials: +/-0, +/-inf, canonical NaN, NaN payloads.
        Just(0x0000_0000u32),
        Just(0x8000_0000u32),
        Just(0x7f80_0000u32),
        Just(0xff80_0000u32),
        Just(f32::NAN.to_bits()),
        Just(0x7fc0_dead_u32 | 0x7fc0_0000),
        Just(0xffc0_0001u32),
        // Denormal neighborhood.
        Just(0x0000_0001u32),
        Just(0x807f_ffffu32),
    ]
    .boxed()
}

fn assert_bits_roundtrip(values: &[f32]) {
    let enc = encode_frame(values);
    let dec = decode_frame(&enc, values.len()).expect("decode of fresh encode");
    assert_eq!(dec.len(), values.len());
    for (i, (a, b)) in values.iter().zip(&dec).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "voxel {i} changed: {:08x} -> {:08x}",
            a.to_bits(),
            b.to_bits()
        );
    }
}

proptest! {
    #[test]
    fn arbitrary_bit_patterns_roundtrip(len in len_strategy(), seed in any::<u64>()) {
        // One strategy draw seeds a cheap per-voxel bit generator so large
        // frames don't need a Vec strategy of the same length.
        let mut x = seed | 1;
        let values: Vec<f32> = (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                f32::from_bits((x >> 33) as u32 ^ (x as u32))
            })
            .collect();
        assert_bits_roundtrip(&values);
    }

    #[test]
    fn special_value_frames_roundtrip(len in len_strategy(),
                                      specials in collection::vec(bits_strategy(), 1..16)) {
        // Tile the special bit patterns across the frame, so NaN payloads,
        // infinities, and denormals land in every brick including the tail.
        let values: Vec<f32> = (0..len)
            .map(|i| f32::from_bits(specials[i % specials.len()]))
            .collect();
        assert_bits_roundtrip(&values);
    }

    #[test]
    fn constant_bricks_roundtrip_and_shrink(bits in bits_strategy(),
                                            len in 256usize..(2 * BRICK_VOXELS)) {
        let values = vec![f32::from_bits(bits); len];
        assert_bits_roundtrip(&values);
        // A constant frame is the codec's best case: delta planes are all
        // zero after the first byte, so RLE must beat 4:1.
        let enc = encode_frame(&values);
        assert!(
            enc.len() < values.len(),
            "constant frame of {len} voxels encoded to {} bytes",
            enc.len()
        );
    }

    #[test]
    fn worst_case_overhead_is_bounded(len in len_strategy(), seed in any::<u64>()) {
        // Incompressible bits: stored-mode fallback caps the container at
        // raw size plus fixed header/table overhead — never more.
        let mut x = seed | 1;
        let values: Vec<f32> = (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                f32::from_bits((x >> 32) as u32)
            })
            .collect();
        let enc = encode_frame(&values);
        let bricks = len.div_ceil(BRICK_VOXELS);
        let cap = len * 4 + HEADER_LEN + bricks * ENTRY_LEN;
        assert!(
            enc.len() <= cap,
            "{len} voxels encoded to {} bytes, cap {cap}",
            enc.len()
        );
    }

    #[test]
    fn ratio_counter_stays_sane(len in 64usize..(BRICK_VOXELS + 64), seed in any::<u64>()) {
        // The volume.codec.ratio_pct counter: never 0, and at most 200%
        // (the worst case is container overhead on an incompressible frame,
        // comfortably under a 100% blowup for any non-trivial frame).
        let mut x = seed | 1;
        let values: Vec<f32> = (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                f32::from_bits((x >> 32) as u32)
            })
            .collect();
        let (_, trace) = ifet_obs::capture("codec.props", || encode_frame(&values));
        let ratio = trace.root.counter("volume.codec.ratio_pct").unwrap();
        assert!((1..=200).contains(&ratio), "ratio {ratio}% out of sane range");
    }

    #[test]
    fn decode_rejects_wrong_voxel_count(len in 1usize..2048, delta in 1usize..64) {
        let values = vec![1.0f32; len];
        let enc = encode_frame(&values);
        assert!(decode_frame(&enc, len + delta).is_err());
        if len > delta {
            assert!(decode_frame(&enc, len - delta).is_err());
        }
    }
}
