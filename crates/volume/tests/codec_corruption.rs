//! Corruption injection for the compressed frame container, mirroring the
//! session-artifact battery in `tests/persistence.rs`: every header and
//! table byte flip, a flip in every brick payload, truncation at structural
//! boundaries, and sidecar tampering must each surface as a typed
//! [`IoError::Codec`] / [`SeriesError::Codec`] — never a panic, and never
//! silently-wrong voxels.

use ifet_volume::codec::{CodecError, BRICK_VOXELS, ENTRY_LEN, HEADER_LEN};
use ifet_volume::io::{read_frame, write_series_with, IoError};
use ifet_volume::ooc::{CacheBudgetHandle, OutOfCoreSeries};
use ifet_volume::{Dims3, FrameSource, ScalarVolume, SeriesError, TimeSeries};
use std::path::{Path, PathBuf};

/// 18×18×14 = 4536 voxels: one full 4096-voxel brick plus a 440-voxel
/// ragged tail, so both brick shapes take corruption.
const DIMS: (usize, usize, usize) = (18, 18, 14);

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ifet_codec_corrupt_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Frame 0 is a smooth gradient (delta+RLE wins), frame 1 is hash noise
/// (stored-mode fallback): the sweep hits both brick encodings.
fn write_corpus(dir: &Path) -> Vec<PathBuf> {
    let d = Dims3::new(DIMS.0, DIMS.1, DIMS.2);
    let smooth: Vec<f32> = (0..d.len()).map(|i| (i / 64) as f32 * 0.25).collect();
    let noisy: Vec<f32> = (0..d.len())
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            f32::from_bits((x >> 32) as u32)
        })
        .collect();
    let series = TimeSeries::from_frames(vec![
        (0, ScalarVolume::from_vec(d, smooth)),
        (1, ScalarVolume::from_vec(d, noisy)),
    ]);
    write_series_with(dir, "v", &series, true).unwrap()
}

/// `(table_end, per-brick payload ranges)` parsed by hand from the container
/// bytes, independently of the decoder under test.
fn layout(bytes: &[u8]) -> (usize, Vec<std::ops::Range<usize>>) {
    let brick_count = u32::from_le_bytes(bytes[20..24].try_into().unwrap()) as usize;
    let table_end = HEADER_LEN + brick_count * ENTRY_LEN;
    let mut off = table_end;
    let bricks = (0..brick_count)
        .map(|b| {
            let e = HEADER_LEN + b * ENTRY_LEN;
            let enc_len = u32::from_le_bytes(bytes[e + 1..e + 5].try_into().unwrap()) as usize;
            let r = off..off + enc_len;
            off += enc_len;
            r
        })
        .collect();
    (table_end, bricks)
}

fn expect_codec_err(path: &Path, what: &str) -> CodecError {
    match read_frame(path) {
        Err(IoError::Codec(e)) => e,
        Err(other) => panic!("{what}: expected IoError::Codec, got {other:?}"),
        Ok(_) => panic!("{what}: corruption read back Ok — silently wrong voxels"),
    }
}

#[test]
fn container_layout_matches_the_spec() {
    let dir = tmpdir("layout");
    let paths = write_corpus(&dir);
    for p in &paths {
        let bytes = std::fs::read(p).unwrap();
        assert_eq!(&bytes[0..4], b"IFZ1");
        let voxels = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        assert_eq!(voxels as usize, DIMS.0 * DIMS.1 * DIMS.2);
        let (table_end, bricks) = layout(&bytes);
        assert_eq!(bricks.len(), voxels as usize / BRICK_VOXELS + 1);
        assert_eq!(bricks.last().unwrap().end, bytes.len());
        assert!(table_end < bytes.len());
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn every_header_and_table_byte_flip_is_typed() {
    let dir = tmpdir("header");
    let paths = write_corpus(&dir);
    for p in &paths {
        let good = std::fs::read(p).unwrap();
        let (table_end, _) = layout(&good);
        for pos in 0..table_end {
            let mut bad = good.clone();
            bad[pos] ^= 0x01;
            std::fs::write(p, &bad).unwrap();
            let e = expect_codec_err(p, &format!("{} flip at {pos}", p.display()));
            // Structural fields fail their own checks; everything else is
            // caught by the header CRC (which also covers the table).
            match pos {
                0..=3 => assert!(matches!(e, CodecError::Magic), "magic flip at {pos}: {e:?}"),
                _ => assert!(
                    matches!(
                        e,
                        CodecError::Version(_)
                            | CodecError::HeaderCrc
                            | CodecError::VoxelCount { .. }
                            | CodecError::BrickLayout { .. }
                            | CodecError::Truncated { .. }
                    ),
                    "flip at {pos}: unexpected {e:?}"
                ),
            }
        }
        std::fs::write(p, &good).unwrap();
        read_frame(p).expect("restored file must read clean");
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn byte_flip_in_every_brick_payload_is_typed() {
    let dir = tmpdir("brick");
    let paths = write_corpus(&dir);
    for p in &paths {
        let good = std::fs::read(p).unwrap();
        let (_, bricks) = layout(&good);
        for (b, r) in bricks.iter().enumerate() {
            for pos in [r.start, r.start + r.len() / 2, r.end - 1] {
                let mut bad = good.clone();
                bad[pos] ^= 0x01;
                std::fs::write(p, &bad).unwrap();
                let e = expect_codec_err(p, &format!("brick {b} flip at {pos}"));
                assert!(
                    matches!(e, CodecError::BrickCrc { brick } if brick == b),
                    "brick {b} flip at {pos}: expected BrickCrc, got {e:?}"
                );
            }
        }
        std::fs::write(p, &good).unwrap();
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn truncation_at_structural_boundaries_is_typed() {
    let dir = tmpdir("trunc");
    let paths = write_corpus(&dir);
    let p = &paths[0];
    let good = std::fs::read(p).unwrap();
    let (table_end, bricks) = layout(&good);
    let cuts = [
        0,
        HEADER_LEN - 1,
        HEADER_LEN,
        table_end - 1,
        table_end,
        bricks[0].end - 1,
        good.len() - 1,
    ];
    for cut in cuts {
        std::fs::write(p, &good[..cut]).unwrap();
        let e = expect_codec_err(p, &format!("truncated to {cut} bytes"));
        assert!(
            matches!(e, CodecError::Truncated { .. }),
            "cut at {cut}: expected Truncated, got {e:?}"
        );
    }
    // Trailing garbage after the last payload is also rejected, not ignored.
    let mut padded = good.clone();
    padded.extend_from_slice(&[0xAB; 7]);
    std::fs::write(p, &padded).unwrap();
    let e = expect_codec_err(p, "7 trailing bytes");
    assert!(matches!(e, CodecError::TrailingBytes { extra: 7 }), "{e:?}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn sidecar_tampering_is_typed() {
    let dir = tmpdir("sidecar");
    let paths = write_corpus(&dir);
    let p = &paths[0];
    let side = PathBuf::from(format!("{}.json", p.display()));
    let good = std::fs::read_to_string(&side).unwrap();

    // Unknown dtype: refused before any payload bytes are interpreted.
    std::fs::write(&side, good.replace("f32le+ifz1", "f64le+ifz1")).unwrap();
    assert!(matches!(
        read_frame(p),
        Err(IoError::UnsupportedDtype(d)) if d == "f64le+ifz1"
    ));

    // Dims that disagree with the container's voxel count: the header is
    // intact, so the mismatch is pinned as VoxelCount, not a CRC error.
    std::fs::write(
        &side,
        good.replace(&format!("{}", DIMS.0), &format!("{}", DIMS.0 + 1)),
    )
    .unwrap();
    assert!(matches!(
        read_frame(p),
        Err(IoError::Codec(CodecError::VoxelCount { .. }))
    ));

    std::fs::write(&side, &good).unwrap();
    read_frame(p).expect("restored sidecar must read clean");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn corruption_surfaces_through_the_paged_series_as_series_codec() {
    let dir = tmpdir("series");
    let paths = write_corpus(&dir);
    let good = std::fs::read(&paths[1]).unwrap();
    let (_, bricks) = layout(&good);
    let mut bad = good.clone();
    bad[bricks[1].start + 3] ^= 0x40;
    std::fs::write(&paths[1], &bad).unwrap();

    let budget = CacheBudgetHandle::frames(1);
    let ooc = OutOfCoreSeries::open_with(paths.clone(), &budget, 0).unwrap();
    // The clean frame pages in fine; the corrupted one is a typed refusal
    // every time it is demanded, through the FrameSource trait surface.
    assert!(FrameSource::frame(&ooc, 0).is_ok());
    for _ in 0..2 {
        match FrameSource::frame(&ooc, 1) {
            Err(SeriesError::Codec(CodecError::BrickCrc { brick: 1 })) => {}
            Err(other) => panic!("expected SeriesError::Codec(BrickCrc), got {other:?}"),
            Ok(_) => panic!("corrupted frame paged in Ok — silently wrong voxels"),
        }
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn sampled_whole_file_flip_sweep_never_panics_or_lies() {
    // Belt and braces on top of the targeted tests: walk both frames at a
    // prime stride; any single-byte flip anywhere must yield Err, never Ok.
    let dir = tmpdir("sweep");
    let paths = write_corpus(&dir);
    for p in &paths {
        let good = std::fs::read(p).unwrap();
        for pos in (0..good.len()).step_by(13) {
            let mut bad = good.clone();
            bad[pos] ^= 0x01;
            std::fs::write(p, &bad).unwrap();
            assert!(
                read_frame(p).is_err(),
                "{}: flip at byte {pos} was not detected",
                p.display()
            );
        }
        std::fs::write(p, &good).unwrap();
    }
    std::fs::remove_dir_all(dir).ok();
}
