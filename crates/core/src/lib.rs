//! # ifet — Intelligent Feature Extraction and Tracking
//!
//! A full reproduction of Tzeng & Ma, *"Intelligent Feature Extraction and
//! Tracking for Visualizing Large-Scale 4D Flow Simulations"* (SC 2005), as a
//! Rust library: machine-learning-driven feature extraction and tracking for
//! time-varying volume data, integrated with direct volume rendering.
//!
//! ## Quick start
//!
//! ```
//! use ifet_core::prelude::*;
//!
//! // A synthetic 4D dataset (the paper's argon-bubble analog) with ground truth.
//! let data = ifet_sim::shock_bubble(Dims3::cube(32), 42);
//! let mut session = VisSession::new(data.series.clone()).unwrap();
//!
//! // The user paints 1D transfer functions on two key frames...
//! let (lo, hi) = session.series().global_range();
//! let (b0, b1) = ifet_sim::shock_bubble::ring_value_band(0.0);
//! session.add_key_frame(195, TransferFunction1D::band(lo, hi, b0, b1, 1.0));
//! let (b0, b1) = ifet_sim::shock_bubble::ring_value_band(1.0);
//! session.add_key_frame(255, TransferFunction1D::band(lo, hi, b0, b1, 1.0));
//!
//! // ...and the system learns an adaptive transfer function for every frame.
//! session.train_iatf(IatfParams { epochs: 150, ..Default::default() });
//! let tf_for_middle_frame = session.adaptive_tf_at_step(225).unwrap();
//! assert!(tf_for_middle_frame.table().iter().any(|&o| o > 0.5));
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`ifet_volume`] | grids, histograms, masks, filtering, I/O |
//! | [`ifet_sim`] | fluid solver + five labeled synthetic datasets |
//! | [`ifet_nn`] | three-layer perceptron with back-propagation |
//! | [`ifet_tf`] | 1D transfer functions and the IATF |
//! | [`ifet_extract`] | data-space (painted) feature extraction |
//! | [`ifet_track`] | 4D region growing, events, octrees |
//! | [`ifet_render`] | software DVR with tracking overlay |
//! | `ifet_core` | this façade: [`VisSession`], metrics, parallel pipeline |

pub mod metrics;
pub mod persist;
pub mod pipeline;
pub mod session;

/// Runtime observability: structured span tracing and deterministic counters.
///
/// Re-exported so applications can drive capture (`obs::capture`,
/// `obs::span`, `obs::counter`) through the same facade they use for
/// everything else.
pub use ifet_obs as obs;

pub use metrics::Scores;
pub use persist::PersistError;
pub use session::{
    CompletedTrack, CriterionSpec, PendingTrack, SessionError, TrackResult, TrackStatus, VisSession,
};

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::metrics::Scores;
    pub use crate::persist::{load_session_bytes, save_session_bytes, PersistError};
    pub use crate::pipeline;
    pub use crate::session::{
        CompletedTrack, CriterionSpec, PendingTrack, SessionError, TrackResult, TrackStatus,
        VisSession,
    };
    pub use ifet_extract::{
        ClassifierParams, DataSpaceClassifier, FeatureExtractor, FeatureSpec, LearningEngine,
        PaintOracle, ShellMode, TrainError,
    };
    pub use ifet_nn::{Activation, Kernel, Mlp, Svm, SvmParams, TrainParams};
    pub use ifet_render::{Camera, Image, RenderParams, Renderer};
    pub use ifet_sim::LabeledSeries;
    pub use ifet_tf::{ColorMap, Iatf, IatfBuilder, IatfParams, TransferFunction1D};
    pub use ifet_track::{
        extract_tracks, extract_tracks_from_parts, grow_4d, grow_4d_serial, label_masks,
        track_events, AdaptiveTfCriterion, FeatureAttributes, FixedBandCriterion, GrowError,
        MaskCriterion, Seed4, Track, TrackEnding, TrackSet,
    };
    pub use ifet_volume::{
        CumulativeHistogram, Dims3, Histogram, Mask3, MultiSeries, MultiVolume, OutOfCoreSeries,
        ScalarVolume, TimeSeries,
    };
}
