//! Per-time-step parallel processing.
//!
//! The paper's conclusion: "the processing of each time step is completely
//! independent of other time steps, it is feasible and desirable to employ a
//! large PC cluster to conduct the final feature extraction and rendering
//! concurrently." On a single machine the same independence lets frames fan
//! out across a thread pool; the scaling bench measures exactly this.

use ifet_volume::{ScalarVolume, TimeSeries};
use rayon::prelude::*;

/// Apply `f` to every `(step, frame)` of a series in parallel, preserving
/// order in the output.
pub fn map_frames<T, F>(series: &TimeSeries, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u32, &ScalarVolume) -> T + Sync,
{
    let items: Vec<(u32, &ScalarVolume)> = series.iter().collect();
    items.par_iter().map(|(t, frame)| f(*t, frame)).collect()
}

/// Apply `f` with an explicit thread count (for scaling studies). Builds a
/// scoped thread pool; `threads == 0` means rayon's default.
pub fn map_frames_with_threads<T, F>(series: &TimeSeries, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u32, &ScalarVolume) -> T + Sync + Send,
{
    if threads == 0 {
        return map_frames(series, f);
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build thread pool");
    pool.install(|| map_frames(series, f))
}

/// Sequential reference (the 1-worker baseline for speedup computation).
pub fn map_frames_sequential<T, F>(series: &TimeSeries, f: F) -> Vec<T>
where
    F: Fn(u32, &ScalarVolume) -> T,
{
    series.iter().map(|(t, frame)| f(t, frame)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifet_volume::Dims3;

    fn series(n_frames: usize) -> TimeSeries {
        let d = Dims3::cube(8);
        TimeSeries::from_frames(
            (0..n_frames)
                .map(|k| (k as u32, ScalarVolume::filled(d, k as f32)))
                .collect(),
        )
    }

    #[test]
    fn parallel_matches_sequential() {
        let s = series(6);
        let f = |t: u32, frame: &ScalarVolume| (t, frame.mean());
        assert_eq!(map_frames(&s, f), map_frames_sequential(&s, f));
    }

    #[test]
    fn order_is_preserved() {
        let s = series(9);
        let out = map_frames(&s, |t, _| t);
        assert_eq!(out, (0..9).collect::<Vec<u32>>());
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let s = series(5);
        let f = |_t: u32, frame: &ScalarVolume| frame.sum();
        let one = map_frames_with_threads(&s, 1, f);
        let four = map_frames_with_threads(&s, 4, f);
        let default = map_frames_with_threads(&s, 0, f);
        assert_eq!(one, four);
        assert_eq!(one, default);
    }
}
