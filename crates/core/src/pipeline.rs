//! Per-time-step parallel processing.
//!
//! The paper's conclusion: "the processing of each time step is completely
//! independent of other time steps, it is feasible and desirable to employ a
//! large PC cluster to conduct the final feature extraction and rendering
//! concurrently." On a single machine the same independence lets frames fan
//! out across a thread pool; the scaling bench measures exactly this.

use ifet_volume::{map_frames_windowed, FrameSource, ScalarVolume, SeriesError};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A process-wide pool per thread count, built on first use.
///
/// Scaling studies and the `--threads` CLI knob request the same counts over
/// and over; spawning a fresh pool's worth of OS threads per call dominates
/// small per-frame workloads, so pools are cached for the process lifetime.
/// `threads == 0` (rayon's default sizing) is also cached under its own key.
pub fn pool_with_threads(threads: usize) -> Arc<rayon::ThreadPool> {
    static POOLS: OnceLock<Mutex<HashMap<usize, Arc<rayon::ThreadPool>>>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = pools.lock().expect("thread-pool cache poisoned");
    Arc::clone(map.entry(threads).or_insert_with(|| {
        Arc::new(
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("failed to build thread pool"),
        )
    }))
}

/// Apply `f` to every `(step, frame)` of a series in parallel, preserving
/// order in the output. Panics if a paged source fails to load a frame; use
/// [`try_map_frames`] to handle that case.
pub fn map_frames<S, T, F>(series: &S, f: F) -> Vec<T>
where
    S: FrameSource + ?Sized,
    T: Send,
    F: Fn(u32, &ScalarVolume) -> T + Sync,
{
    try_map_frames(series, f).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`map_frames`]: fan out over frames in residency-bounded windows
/// (one full parallel pass for in-core sources), surfacing paging failures.
pub fn try_map_frames<S, T, F>(series: &S, f: F) -> Result<Vec<T>, SeriesError>
where
    S: FrameSource + ?Sized,
    T: Send,
    F: Fn(u32, &ScalarVolume) -> T + Sync,
{
    map_frames_windowed(series, |_i, t, frame| f(t, frame))
}

/// Apply `f` with an explicit thread count (for scaling studies), using the
/// cached pool for that count; `threads == 0` means rayon's default.
pub fn map_frames_with_threads<S, T, F>(series: &S, threads: usize, f: F) -> Vec<T>
where
    S: FrameSource + ?Sized,
    T: Send,
    F: Fn(u32, &ScalarVolume) -> T + Sync + Send,
{
    if threads == 0 {
        return map_frames(series, f);
    }
    pool_with_threads(threads).install(|| map_frames(series, f))
}

/// Sequential reference (the 1-worker baseline for speedup computation).
pub fn map_frames_sequential<S, T, F>(series: &S, f: F) -> Vec<T>
where
    S: FrameSource + ?Sized,
    F: Fn(u32, &ScalarVolume) -> T,
{
    let steps = series.steps().to_vec();
    steps
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let frame = series.frame(i).unwrap_or_else(|e| panic!("{e}"));
            f(t, &frame)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifet_volume::{Dims3, TimeSeries};

    fn series(n_frames: usize) -> TimeSeries {
        let d = Dims3::cube(8);
        TimeSeries::from_frames(
            (0..n_frames)
                .map(|k| (k as u32, ScalarVolume::filled(d, k as f32)))
                .collect(),
        )
    }

    #[test]
    fn parallel_matches_sequential() {
        let s = series(6);
        let f = |t: u32, frame: &ScalarVolume| (t, frame.mean());
        assert_eq!(map_frames(&s, f), map_frames_sequential(&s, f));
    }

    #[test]
    fn order_is_preserved() {
        let s = series(9);
        let out = map_frames(&s, |t, _| t);
        assert_eq!(out, (0..9).collect::<Vec<u32>>());
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let s = series(5);
        let f = |_t: u32, frame: &ScalarVolume| frame.sum();
        let one = map_frames_with_threads(&s, 1, f);
        let four = map_frames_with_threads(&s, 4, f);
        let default = map_frames_with_threads(&s, 0, f);
        assert_eq!(one, four);
        assert_eq!(one, default);
    }

    #[test]
    fn pools_are_cached_per_count() {
        let a = pool_with_threads(2);
        let b = pool_with_threads(2);
        assert!(Arc::ptr_eq(&a, &b), "same count must reuse the pool");
        let c = pool_with_threads(3);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
