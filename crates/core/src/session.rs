//! The interactive visualization session — the headless equivalent of the
//! paper's multi-view interface (Section 6): key-frame transfer functions,
//! IATF training, painted data-space extraction, tracking, and rendering,
//! all against one loaded time series.

use crate::persist::{self, PersistError};
use ifet_extract::paint::PaintSet;
use ifet_extract::{
    ClassifierParams, DataSpaceClassifier, FeatureExtractor, FeatureSpec, TrainError,
};
use ifet_obs as obs;
use ifet_render::{render_tracking_overlay, Camera, Image, Renderer};
use ifet_tf::{ColorMap, Iatf, IatfBuilder, IatfParams, TransferFunction1D};
use ifet_track::{
    grow_4d, track_events, AdaptiveTfCriterion, CriterionError, FixedBandCriterion, GrowCheckpoint,
    GrowError, Grower, GrowthCriterion, MaskCriterion, Seed4, TrackReport,
};
use ifet_volume::{map_frames_windowed, FrameSource, Mask3, TimeSeries};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Result of a tracking run: per-frame masks plus the event report.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackResult {
    pub masks: Vec<Mask3>,
    pub report: TrackReport,
}

/// A growth criterion *by name* — the serializable recipe a session stores so
/// a tracking run (or its checkpoint) can be re-materialized after a reload.
/// Resolution happens against the session's current IATF/classifier state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CriterionSpec {
    /// Conventional fixed value band `[lo, hi]`.
    FixedBand { lo: f32, hi: f32 },
    /// Adaptive-TF opacity threshold (requires a trained IATF).
    AdaptiveTf { tau: f32 },
    /// Data-space classifier certainty threshold (requires a trained
    /// classifier); frames are pre-classified into masks.
    DataSpace { tau: f32 },
}

/// A finished tracking run the session remembers (and persists).
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedTrack {
    pub spec: CriterionSpec,
    pub seeds: Vec<Seed4>,
    pub result: TrackResult,
}

/// A tracking run that was interrupted mid-growth; `checkpoint` holds the
/// exact frontier state needed to finish it with [`VisSession::resume_track`].
#[derive(Debug, Clone, PartialEq)]
pub struct PendingTrack {
    pub spec: CriterionSpec,
    pub seeds: Vec<Seed4>,
    pub checkpoint: GrowCheckpoint,
}

/// Outcome of [`VisSession::run_track`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrackStatus {
    /// The run reached its fixpoint; the result joined [`VisSession::tracks`].
    Completed,
    /// The round budget ran out first; a checkpoint is parked as the
    /// session's pending track (and rides along in saved artifacts).
    Paused { rounds: u64 },
}

/// Why a session operation was refused. These were once asserts (the ROADMAP
/// "typed errors" item); each is a caller mistake a UI or CLI can produce, so
/// they are reported instead of panicking.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// A session needs at least one frame.
    EmptySeries,
    /// A paint set or key frame references a step the series does not have.
    StepNotInSeries { step: u32 },
    /// An adaptive-TF operation needs a trained IATF first.
    NoIatf,
    /// A data-space operation needs a trained classifier first.
    NoClassifier,
    /// Criterion construction rejected its parameters.
    Criterion(CriterionError),
    /// Region growing rejected the seeds or checkpoint.
    Grow(GrowError),
    /// The frame source failed to deliver a frame (paging I/O, bad index).
    Series { reason: String },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::EmptySeries => write!(f, "cannot open a session on an empty series"),
            SessionError::StepNotInSeries { step } => {
                write!(f, "step {step} not in the series")
            }
            SessionError::NoIatf => write!(f, "no trained IATF in this session"),
            SessionError::NoClassifier => write!(f, "no trained classifier in this session"),
            SessionError::Criterion(e) => write!(f, "criterion: {e}"),
            SessionError::Grow(e) => write!(f, "tracking: {e}"),
            SessionError::Series { reason } => write!(f, "frame source: {reason}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Criterion(e) => Some(e),
            SessionError::Grow(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CriterionError> for SessionError {
    fn from(e: CriterionError) -> Self {
        SessionError::Criterion(e)
    }
}

impl From<GrowError> for SessionError {
    fn from(e: GrowError) -> Self {
        SessionError::Grow(e)
    }
}

impl From<ifet_volume::SeriesError> for SessionError {
    fn from(e: ifet_volume::SeriesError) -> Self {
        SessionError::Series {
            reason: e.to_string(),
        }
    }
}

/// One loaded dataset plus everything the user has taught the system so far.
///
/// Generic over the [`FrameSource`] backing it: `VisSession<TimeSeries>` (the
/// default) works fully in core; `VisSession<OutOfCoreSeries>` pages frames
/// through a bounded LRU cache, so the same session API runs on series larger
/// than memory. Frame access in the `Option`-returning convenience helpers
/// (`adaptive_tf_at_step`, `render_*`) panics on paging I/O errors — the
/// `Result`-returning tracking/classification entry points report them as
/// [`SessionError::Series`].
#[derive(Debug, Clone)]
pub struct VisSession<S: FrameSource = TimeSeries> {
    series: S,
    key_frames: Vec<(u32, TransferFunction1D)>,
    iatf: Option<Iatf>,
    iatf_params: IatfParams,
    paints: Vec<PaintSet>,
    classifier: Option<DataSpaceClassifier>,
    tracks: Vec<CompletedTrack>,
    pending: Option<PendingTrack>,
    /// Stable-mode trace summary (versioned obs JSON) riding along in saved
    /// artifacts; kept as the raw string so re-saving is byte-identical.
    trace_summary: Option<String>,
    pub renderer: Renderer,
    pub colormap: ColorMap,
}

impl<S: FrameSource> VisSession<S> {
    /// Open a session on a frame source.
    pub fn new(series: S) -> Result<Self, SessionError> {
        if series.is_empty() {
            return Err(SessionError::EmptySeries);
        }
        Ok(Self {
            series,
            key_frames: Vec::new(),
            iatf: None,
            iatf_params: IatfParams::default(),
            paints: Vec::new(),
            classifier: None,
            tracks: Vec::new(),
            pending: None,
            trace_summary: None,
            renderer: Renderer::default(),
            colormap: ColorMap::Rainbow,
        })
    }

    /// Rebuild a session from persisted parts (see [`crate::persist`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        series: S,
        key_frames: Vec<(u32, TransferFunction1D)>,
        iatf: Option<Iatf>,
        iatf_params: IatfParams,
        paints: Vec<PaintSet>,
        classifier: Option<DataSpaceClassifier>,
        colormap: ColorMap,
        tracks: Vec<CompletedTrack>,
        pending: Option<PendingTrack>,
        trace_summary: Option<String>,
    ) -> Self {
        Self {
            series,
            key_frames,
            iatf,
            iatf_params,
            paints,
            classifier,
            tracks,
            pending,
            trace_summary,
            renderer: Renderer::default(),
            colormap,
        }
    }

    pub fn series(&self) -> &S {
        &self.series
    }

    /// Suggest time steps worth painting key frames on: the frames whose
    /// value distributions differ most (farthest-point selection in
    /// histogram space). The user then supplies TFs only for these.
    pub fn suggest_key_frames(&self, max_keys: usize) -> Vec<u32> {
        ifet_tf::suggest_key_frames(&self.series, 256, max_keys, 0.02)
    }

    /// Classify the series' temporal behaviour (regular / periodic /
    /// drifting) — drifting data is where the IATF pays off.
    pub fn temporal_behavior(&self) -> ifet_tf::TemporalBehavior {
        ifet_tf::classify_behavior(&self.series, 256, 0.1)
    }

    // ---- Transfer-function-space extraction (paper Section 4.2) ----

    /// Register a user key-frame transfer function. Invalidates any
    /// previously trained IATF (new user input → retrain).
    pub fn add_key_frame(&mut self, t: u32, tf: TransferFunction1D) -> &mut Self {
        assert!(
            self.series.index_of_step(t).is_some(),
            "step {t} not in the series"
        );
        self.key_frames.push((t, tf));
        self.iatf = None;
        self
    }

    pub fn key_frames(&self) -> &[(u32, TransferFunction1D)] {
        &self.key_frames
    }

    /// Train the adaptive transfer function from the current key frames.
    pub fn train_iatf(&mut self, params: IatfParams) -> &Iatf {
        assert!(!self.key_frames.is_empty(), "no key frames specified");
        let _span = obs::span("session.train_iatf");
        let mut b = IatfBuilder::new(params);
        for (t, tf) in &self.key_frames {
            b.add_key_frame(*t, tf.clone());
        }
        self.iatf_params = params;
        self.iatf = Some(b.train(&self.series));
        self.iatf.as_ref().unwrap()
    }

    pub fn iatf(&self) -> Option<&Iatf> {
        self.iatf.as_ref()
    }

    /// The adaptive TF for a series step (None until `train_iatf` ran).
    pub fn adaptive_tf_at_step(&self, t: u32) -> Option<TransferFunction1D> {
        let iatf = self.iatf.as_ref()?;
        let frame = self
            .series
            .frame_at_step(t)
            .unwrap_or_else(|e| panic!("{e}"))?;
        Some(iatf.generate(t, &frame))
    }

    /// [`Self::adaptive_tf_at_step`] for callers that must survive paging
    /// I/O failures (e.g. a serving layer): transient frame-source errors
    /// come back as [`SessionError::Series`] instead of panicking.
    /// `Ok(None)` means no IATF is trained or the step is not in the series.
    pub fn try_adaptive_tf_at_step(
        &self,
        t: u32,
    ) -> Result<Option<TransferFunction1D>, SessionError> {
        let Some(iatf) = self.iatf.as_ref() else {
            return Ok(None);
        };
        match self.series.frame_at_step(t)? {
            Some(frame) => Ok(Some(iatf.generate(t, &frame))),
            None => Ok(None),
        }
    }

    /// Adaptive TFs for every frame, in series order. Frames are visited in
    /// bounded windows so a paged source never exceeds its cache capacity.
    pub fn adaptive_tfs(&self) -> Option<Vec<TransferFunction1D>> {
        let iatf = self.iatf.as_ref()?;
        Some(
            map_frames_windowed(&self.series, |_, t, frame| iatf.generate(t, frame))
                .unwrap_or_else(|e| panic!("{e}")),
        )
    }

    /// The linear-interpolation baseline TF at step `t`: lerp between the
    /// nearest bracketing key frames (clamped outside their range).
    pub fn lerp_tf_at_step(&self, t: u32) -> Option<TransferFunction1D> {
        if self.key_frames.is_empty() {
            return None;
        }
        let mut sorted: Vec<&(u32, TransferFunction1D)> = self.key_frames.iter().collect();
        sorted.sort_by_key(|(kt, _)| *kt);
        if t <= sorted[0].0 {
            return Some(sorted[0].1.clone());
        }
        if t >= sorted[sorted.len() - 1].0 {
            return Some(sorted[sorted.len() - 1].1.clone());
        }
        let i = sorted.partition_point(|(kt, _)| *kt <= t);
        let (t0, tf0) = sorted[i - 1];
        let (t1, tf1) = sorted[i];
        let alpha = (t - t0) as f32 / (t1 - t0) as f32;
        Some(TransferFunction1D::lerp(tf0, tf1, alpha))
    }

    /// Extraction mask at step `t` using a transfer function: voxels whose
    /// opacity reaches `tau`.
    pub fn extract_with_tf(&self, t: u32, tf: &TransferFunction1D, tau: f32) -> Mask3 {
        let frame = self
            .series
            .frame_at_step(t)
            .unwrap_or_else(|e| panic!("{e}"))
            .unwrap_or_else(|| panic!("step {t} not in series"));
        let d = frame.dims();
        let mut m = Mask3::empty(d);
        for (i, &v) in frame.as_slice().iter().enumerate() {
            if tf.opacity_at(v) >= tau {
                m.set_linear(i, true);
            }
        }
        m
    }

    // ---- Data-space extraction (paper Section 4.3) ----

    /// Add painted voxels for a frame. Invalidates the trained classifier.
    pub fn add_paints(&mut self, paints: PaintSet) -> Result<&mut Self, SessionError> {
        if self.series.index_of_step(paints.step).is_none() {
            return Err(SessionError::StepNotInSeries { step: paints.step });
        }
        self.paints.push(paints);
        self.classifier = None;
        Ok(self)
    }

    /// All paint sets registered so far.
    pub fn paints(&self) -> &[PaintSet] {
        &self.paints
    }

    /// Parameters the current IATF was (or will be) trained with.
    pub fn iatf_params(&self) -> IatfParams {
        self.iatf_params
    }

    /// Train the data-space classifier from all paints so far.
    pub fn train_classifier(
        &mut self,
        spec: FeatureSpec,
        params: ClassifierParams,
    ) -> Result<&DataSpaceClassifier, TrainError> {
        let _span = obs::span("session.train_classifier");
        let fx = FeatureExtractor::new(spec);
        let clf = DataSpaceClassifier::train(fx, &self.series, &self.paints, params)?;
        self.classifier = Some(clf);
        Ok(self.classifier.as_ref().unwrap())
    }

    pub fn classifier(&self) -> Option<&DataSpaceClassifier> {
        self.classifier.as_ref()
    }

    /// Set the classifier's scanline batch width (0 = auto); see
    /// [`DataSpaceClassifier::set_batch`]. Returns false when no classifier
    /// is trained yet. Output is bit-identical at every width.
    pub fn set_classifier_batch(&self, rows: usize) -> bool {
        match &self.classifier {
            Some(clf) => {
                clf.set_batch(rows);
                true
            }
            None => false,
        }
    }

    /// Install an externally trained classifier (e.g. a `train_multi` model
    /// over a sibling multivariate series) so it persists with the session.
    pub fn adopt_classifier(&mut self, clf: DataSpaceClassifier) -> &mut Self {
        self.classifier = Some(clf);
        self
    }

    /// The trace summary riding along in saved artifacts, if any.
    pub fn trace_summary(&self) -> Option<&str> {
        self.trace_summary.as_deref()
    }

    /// Attach a trace summary to persist with the session (as the artifact's
    /// skippable TRACE section). The JSON must parse under the versioned
    /// trace schema; it is stored verbatim so re-saving stays byte-identical.
    pub fn set_trace_summary(&mut self, trace_json: String) -> Result<&mut Self, obs::TraceError> {
        obs::Trace::from_json(&trace_json)?;
        self.trace_summary = Some(trace_json);
        Ok(self)
    }

    /// Drop any attached trace summary.
    pub fn clear_trace_summary(&mut self) -> &mut Self {
        self.trace_summary = None;
        self
    }

    /// Data-space extraction mask at step `t` (None until trained).
    pub fn extract_data_space(&self, t: u32, tau: f32) -> Option<Mask3> {
        let clf = self.classifier.as_ref()?;
        let frame = self
            .series
            .frame_at_step(t)
            .unwrap_or_else(|e| panic!("{e}"))?;
        Some(clf.extract_mask(&frame, self.series.normalized_time(t), tau))
    }

    /// [`Self::extract_data_space`] for callers that must survive paging
    /// I/O failures (e.g. a serving layer): transient frame-source errors
    /// come back as [`SessionError::Series`] instead of panicking.
    /// `Ok(None)` means no classifier is trained or the step is not in the
    /// series.
    pub fn try_extract_data_space(&self, t: u32, tau: f32) -> Result<Option<Mask3>, SessionError> {
        let Some(clf) = self.classifier.as_ref() else {
            return Ok(None);
        };
        match self.series.frame_at_step(t)? {
            Some(frame) => Ok(Some(clf.extract_mask(
                &frame,
                self.series.normalized_time(t),
                tau,
            ))),
            None => Ok(None),
        }
    }

    // ---- Tracking (paper Section 5) ----

    /// Track from seeds with the adaptive (IATF) criterion at opacity `tau`.
    /// `None` until an IATF has been trained.
    pub fn track_adaptive(
        &self,
        seeds: &[Seed4],
        tau: f32,
    ) -> Option<Result<TrackResult, SessionError>> {
        self.adaptive_tfs()?;
        Some(self.track_spec(&CriterionSpec::AdaptiveTf { tau }, seeds))
    }

    /// Track from seeds with the conventional fixed value band.
    pub fn track_fixed(
        &self,
        seeds: &[Seed4],
        lo: f32,
        hi: f32,
    ) -> Result<TrackResult, SessionError> {
        self.track_spec(&CriterionSpec::FixedBand { lo, hi }, seeds)
    }

    /// Track with a named criterion, without recording the run.
    pub fn track_spec(
        &self,
        spec: &CriterionSpec,
        seeds: &[Seed4],
    ) -> Result<TrackResult, SessionError> {
        let criterion = self.resolve_criterion(spec)?;
        Ok(self.track_with(criterion.as_ref(), seeds)?)
    }

    /// Track with an arbitrary criterion. Fails with [`GrowError`] when the
    /// seeds fall outside the series or the criterion's frame count differs.
    pub fn track_with(
        &self,
        criterion: &dyn GrowthCriterion,
        seeds: &[Seed4],
    ) -> Result<TrackResult, GrowError> {
        let masks = grow_4d(&self.series, criterion, seeds)?;
        let report = track_events(&masks);
        Ok(TrackResult { masks, report })
    }

    /// Materialize a [`CriterionSpec`] against the session's current state.
    pub fn resolve_criterion(
        &self,
        spec: &CriterionSpec,
    ) -> Result<Box<dyn GrowthCriterion>, SessionError> {
        match spec {
            CriterionSpec::FixedBand { lo, hi } => Ok(Box::new(FixedBandCriterion::new(
                *lo,
                *hi,
                self.series.len(),
            )?)),
            CriterionSpec::AdaptiveTf { tau } => {
                let tfs = self.adaptive_tfs().ok_or(SessionError::NoIatf)?;
                Ok(Box::new(AdaptiveTfCriterion::new(tfs, *tau)?))
            }
            CriterionSpec::DataSpace { tau } => {
                let clf = self.classifier.as_ref().ok_or(SessionError::NoClassifier)?;
                // Stream: each certainty volume is thresholded into a packed
                // mask as it is produced, so only masks accumulate — the
                // full-resolution f32 certainty series never materializes.
                let masks: Vec<Mask3> = clf.classify_series_map(&self.series, |_, _, cert| {
                    Mask3::threshold(&cert, *tau)
                })?;
                Ok(Box::new(MaskCriterion::new(masks)?))
            }
        }
    }

    /// Run (or start) a tracking job the session remembers. With
    /// `max_rounds: None` the run always completes; with a budget it may
    /// instead pause, parking a resumable checkpoint that [`Self::save`]
    /// persists and [`Self::resume_track`] finishes — possibly in a later
    /// process.
    pub fn run_track(
        &mut self,
        spec: CriterionSpec,
        seeds: &[Seed4],
        max_rounds: Option<u64>,
    ) -> Result<TrackStatus, SessionError> {
        let _span = obs::span("session.run_track");
        let criterion = self.resolve_criterion(&spec)?;
        let mut grower = Grower::start(&self.series, criterion.as_ref(), seeds)?;
        if grower.run(max_rounds) {
            let masks = grower.into_masks();
            let report = track_events(&masks);
            self.tracks.push(CompletedTrack {
                spec,
                seeds: seeds.to_vec(),
                result: TrackResult { masks, report },
            });
            Ok(TrackStatus::Completed)
        } else {
            let rounds = grower.rounds();
            self.pending = Some(PendingTrack {
                spec,
                seeds: seeds.to_vec(),
                checkpoint: grower.checkpoint(),
            });
            Ok(TrackStatus::Paused { rounds })
        }
    }

    /// Finish the pending tracking run from its checkpoint. The completed
    /// result is identical to what an uninterrupted run would have produced
    /// (growth is a fixpoint, independent of round partitioning).
    pub fn resume_track(&mut self) -> Result<&TrackResult, PersistError> {
        let _span = obs::span("session.resume_track");
        let pending = self.pending.take().ok_or(PersistError::NoCheckpoint)?;
        let criterion =
            self.resolve_criterion(&pending.spec)
                .map_err(|e| PersistError::Malformed {
                    section: "CHECKPT".into(),
                    reason: format!("checkpoint criterion cannot be rebuilt: {e}"),
                })?;
        let mut grower = Grower::resume(&self.series, criterion.as_ref(), pending.checkpoint)
            .map_err(PersistError::Grow)?;
        grower.run(None);
        let masks = grower.into_masks();
        let report = track_events(&masks);
        self.tracks.push(CompletedTrack {
            spec: pending.spec,
            seeds: pending.seeds,
            result: TrackResult { masks, report },
        });
        Ok(&self.tracks.last().unwrap().result)
    }

    /// Completed tracking runs, in execution order.
    pub fn tracks(&self) -> &[CompletedTrack] {
        &self.tracks
    }

    /// The interrupted tracking run awaiting [`Self::resume_track`], if any.
    pub fn pending_track(&self) -> Option<&PendingTrack> {
        self.pending.as_ref()
    }

    // ---- Persistence (versioned session artifacts) ----

    /// Save everything the user taught this session — key frames, IATF,
    /// paints, classifier, completed tracks, and any pending checkpoint — to
    /// a versioned artifact file. The raw series is *not* embedded; `load`
    /// re-attaches the artifact to a series and verifies it is the same one.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        persist::save_session(self, path.as_ref())
    }

    /// Load a session artifact against its frame source.
    pub fn load(series: S, path: impl AsRef<Path>) -> Result<Self, PersistError> {
        persist::load_session(series, path.as_ref())
    }

    // ---- Rendering (paper Section 7) ----

    /// Default camera framing the volume.
    pub fn camera(&self) -> Camera {
        Camera::framing(self.series.dims(), 0.7, 0.35)
    }

    /// Render frame `t` with an explicit transfer function.
    pub fn render_with_tf(&self, t: u32, tf: &TransferFunction1D, w: usize, h: usize) -> Image {
        let frame = self
            .series
            .frame_at_step(t)
            .unwrap_or_else(|e| panic!("{e}"))
            .unwrap_or_else(|| panic!("step {t} not in series"));
        self.renderer
            .render(&frame, tf, self.colormap, &self.camera(), w, h)
    }

    /// Render frame `t` with the adaptive TF (None until trained). This is
    /// the per-frame "recalculate the adaptive transfer function, then
    /// render" loop of Section 7.
    pub fn render_adaptive(&self, t: u32, w: usize, h: usize) -> Option<Image> {
        let tf = self.adaptive_tf_at_step(t)?;
        Some(self.render_with_tf(t, &tf, w, h))
    }

    /// Maximum-intensity projection of frame `t` (quick overview mode).
    pub fn render_mip(&self, t: u32, w: usize, h: usize) -> Image {
        let frame = self
            .series
            .frame_at_step(t)
            .unwrap_or_else(|e| panic!("{e}"))
            .unwrap_or_else(|| panic!("step {t} not in series"));
        self.renderer
            .render_mip(&frame, self.colormap, &self.camera(), w, h)
    }

    /// Render frame `t` with opacity taken from the data-space classifier's
    /// certainty field (None until a classifier is trained) — Section 7's
    /// "classified result ... used to assign opacity to each voxel".
    pub fn render_classified(&self, t: u32, w: usize, h: usize) -> Option<Image> {
        let clf = self.classifier.as_ref()?;
        let frame = self
            .series
            .frame_at_step(t)
            .unwrap_or_else(|e| panic!("{e}"))?;
        let certainty = clf.classify_frame(&frame, self.series.normalized_time(t));
        Some(self.renderer.render_classified(
            &frame,
            &certainty,
            self.colormap,
            &self.camera(),
            w,
            h,
        ))
    }

    /// Render frame `t` with the tracked feature highlighted in red.
    pub fn render_tracked(
        &self,
        t: u32,
        tracked: &Mask3,
        base_tf: &TransferFunction1D,
        adaptive_tf: &TransferFunction1D,
        w: usize,
        h: usize,
    ) -> Image {
        let frame = self
            .series
            .frame_at_step(t)
            .unwrap_or_else(|e| panic!("{e}"))
            .unwrap_or_else(|| panic!("step {t} not in series"));
        render_tracking_overlay(
            &self.renderer,
            &frame,
            tracked,
            base_tf,
            adaptive_tf,
            self.colormap,
            &self.camera(),
            w,
            h,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifet_volume::{Dims3, ScalarVolume};

    /// Uniform-ramp frames whose values shift irregularly per step.
    fn series() -> TimeSeries {
        let d = Dims3::cube(12);
        let n = d.len();
        let shifts = [0.0f32, 0.3, 0.1];
        TimeSeries::from_frames(
            (0..3usize)
                .map(|k| {
                    (
                        (k as u32) * 10,
                        ScalarVolume::from_vec(
                            d,
                            (0..n).map(|i| i as f32 / n as f32 + shifts[k]).collect(),
                        ),
                    )
                })
                .collect(),
        )
    }

    fn band_for(s: &TimeSeries, shift: f32) -> TransferFunction1D {
        let (lo, hi) = s.global_range();
        TransferFunction1D::band(lo, hi, 0.6 + shift, 0.75 + shift, 1.0)
    }

    #[test]
    fn key_frames_and_iatf_flow() {
        let s = series();
        let mut sess = VisSession::new(s.clone()).unwrap();
        sess.add_key_frame(0, band_for(&s, 0.0));
        sess.add_key_frame(10, band_for(&s, 0.3));
        sess.add_key_frame(20, band_for(&s, 0.1));
        assert!(sess.iatf().is_none());
        sess.train_iatf(IatfParams {
            epochs: 300,
            ..Default::default()
        });
        assert!(sess.iatf().is_some());
        let tf = sess.adaptive_tf_at_step(10).unwrap();
        // Band at t=10 should sit near [0.9, 1.05].
        let (blo, bhi) = tf.support(0.5).expect("no band learned");
        assert!((0.5 * (blo + bhi) - 0.975).abs() < 0.12, "[{blo}, {bhi}]");
    }

    #[test]
    fn adding_key_frame_invalidates_iatf() {
        let s = series();
        let mut sess = VisSession::new(s.clone()).unwrap();
        sess.add_key_frame(0, band_for(&s, 0.0));
        sess.train_iatf(IatfParams {
            epochs: 10,
            ..Default::default()
        });
        assert!(sess.iatf().is_some());
        sess.add_key_frame(20, band_for(&s, 0.1));
        assert!(sess.iatf().is_none(), "stale IATF must be dropped");
    }

    #[test]
    fn lerp_baseline_brackets() {
        let s = series();
        let mut sess = VisSession::new(s.clone()).unwrap();
        let a = band_for(&s, 0.0);
        let b = band_for(&s, 0.3);
        sess.add_key_frame(0, a.clone());
        sess.add_key_frame(20, b.clone());
        assert_eq!(sess.lerp_tf_at_step(0).unwrap(), a);
        assert_eq!(sess.lerp_tf_at_step(20).unwrap(), b);
        let mid = sess.lerp_tf_at_step(10).unwrap();
        // Half opacity at both ghost bands.
        assert!((mid.opacity_at(0.65) - 0.5).abs() < 0.01);
        assert!((mid.opacity_at(0.95) - 0.5).abs() < 0.01);
    }

    #[test]
    fn extract_with_tf_masks_band() {
        let s = series();
        let sess = VisSession::new(s.clone()).unwrap();
        let tf = band_for(&s, 0.0);
        let m = sess.extract_with_tf(0, &tf, 0.5);
        // Band [0.6, 0.75] of a uniform ramp covers ~15% of voxels.
        let frac = m.count() as f64 / s.dims().len() as f64;
        assert!((frac - 0.15).abs() < 0.03, "{frac}");
    }

    #[test]
    fn fixed_tracking_runs() {
        let s = series();
        let sess = VisSession::new(s).unwrap();
        // Seed at the voxel with value ~0.65 in frame 0.
        let d = sess.series().dims();
        let idx = (0.65 * d.len() as f32) as usize;
        let (x, y, z) = d.coords(idx);
        let r = sess.track_fixed(&[(0, x, y, z)], 0.6, 0.75).unwrap();
        assert!(r.masks[0].count() > 0);
        assert_eq!(r.report.voxels_per_frame.len(), 3);
    }

    #[test]
    fn render_paths_produce_images() {
        let s = series();
        let mut sess = VisSession::new(s.clone()).unwrap();
        sess.add_key_frame(0, band_for(&s, 0.0));
        sess.train_iatf(IatfParams {
            epochs: 50,
            ..Default::default()
        });
        let img = sess.render_adaptive(0, 16, 16).unwrap();
        assert_eq!(img.width(), 16);
        let tf = band_for(&s, 0.0);
        let tracked = sess.extract_with_tf(0, &tf, 0.5);
        let overlay = sess.render_tracked(0, &tracked, &tf, &tf, 16, 16);
        assert_eq!(overlay.height(), 16);
    }

    #[test]
    fn mip_and_classified_render_paths() {
        let s = series();
        let mut sess = VisSession::new(s.clone()).unwrap();
        let mip = sess.render_mip(0, 16, 16);
        assert_eq!((mip.width(), mip.height()), (16, 16));
        // No classifier yet.
        assert!(sess.render_classified(0, 8, 8).is_none());
        // Paint + train, then the classified path renders.
        let truth = ifet_volume::Mask3::threshold(s.frame(0), 0.6);
        let mut oracle = ifet_extract::PaintOracle::new(1);
        oracle.slice_stride = 1;
        sess.add_paints(oracle.paint_from_truth(0, &truth, 40, 40))
            .unwrap();
        sess.train_classifier(
            ifet_extract::FeatureSpec::default(),
            ifet_extract::ClassifierParams {
                epochs: 30,
                ..Default::default()
            },
        )
        .unwrap();
        let img = sess.render_classified(0, 16, 16).unwrap();
        assert_eq!(img.width(), 16);
    }

    #[test]
    fn key_frame_suggestion_and_behavior() {
        let s = series(); // irregular shifts: drifting distribution
        let sess = VisSession::new(s).unwrap();
        assert_eq!(
            sess.temporal_behavior(),
            ifet_tf::TemporalBehavior::Periodic // shifts 0.0 -> 0.3 -> 0.1 come back down
        );
        let keys = sess.suggest_key_frames(3);
        assert!(keys.contains(&0) && keys.contains(&20));
        // The middle frame (shift 0.3) is the outlier worth painting.
        assert!(keys.contains(&10), "{keys:?}");
    }

    #[test]
    #[should_panic]
    fn unknown_key_frame_step_panics() {
        let s = series();
        let mut sess = VisSession::new(s.clone()).unwrap();
        sess.add_key_frame(99, band_for(&s, 0.0));
    }

    #[test]
    #[should_panic]
    fn train_iatf_without_key_frames_panics() {
        let s = series();
        VisSession::new(s)
            .unwrap()
            .train_iatf(IatfParams::default());
    }

    #[test]
    fn empty_series_is_typed_error() {
        let err = VisSession::new(TimeSeries::new(Dims3::cube(4))).unwrap_err();
        assert_eq!(err, SessionError::EmptySeries);
        assert_eq!(err.to_string(), "cannot open a session on an empty series");
    }

    #[test]
    fn paints_on_unknown_step_is_typed_error() {
        let s = series();
        let mut sess = VisSession::new(s).unwrap();
        let mut paints = ifet_extract::PaintSet::new(99);
        paints.paint((1, 1, 1), true);
        let err = sess.add_paints(paints).unwrap_err();
        assert_eq!(err, SessionError::StepNotInSeries { step: 99 });
        assert!(sess.paints().is_empty(), "rejected paints must not stick");
    }

    #[test]
    fn bad_track_band_is_typed_error() {
        let s = series();
        let sess = VisSession::new(s).unwrap();
        let err = sess.track_fixed(&[(0, 1, 1, 1)], 0.9, 0.1).unwrap_err();
        assert!(matches!(
            err,
            SessionError::Criterion(CriterionError::InvalidBand { .. })
        ));
    }

    #[test]
    fn adaptive_spec_without_iatf_is_typed_error() {
        let s = series();
        let mut sess = VisSession::new(s).unwrap();
        let err = sess
            .run_track(
                CriterionSpec::AdaptiveTf { tau: 0.5 },
                &[(0, 1, 1, 1)],
                None,
            )
            .unwrap_err();
        assert_eq!(err, SessionError::NoIatf);
        let err = sess
            .run_track(CriterionSpec::DataSpace { tau: 0.5 }, &[(0, 1, 1, 1)], None)
            .unwrap_err();
        assert_eq!(err, SessionError::NoClassifier);
    }

    #[test]
    fn run_track_records_and_pauses() {
        let s = series();
        let d = s.dims();
        let mut sess = VisSession::new(s).unwrap();
        let idx = (0.65 * d.len() as f32) as usize;
        let seed = {
            let (x, y, z) = d.coords(idx);
            (0usize, x, y, z)
        };
        // Unbudgeted: completes and is recorded.
        let spec = CriterionSpec::FixedBand { lo: 0.6, hi: 0.75 };
        let status = sess.run_track(spec.clone(), &[seed], None).unwrap();
        assert_eq!(status, TrackStatus::Completed);
        assert_eq!(sess.tracks().len(), 1);
        let full = sess.tracks()[0].result.clone();

        // Budget of one round: pauses with a checkpoint, resume finishes with
        // the identical result.
        let status = sess.run_track(spec, &[seed], Some(1)).unwrap();
        assert_eq!(status, TrackStatus::Paused { rounds: 1 });
        assert!(sess.pending_track().is_some());
        let resumed = sess.resume_track().unwrap().clone();
        assert_eq!(resumed, full);
        assert!(sess.pending_track().is_none());
        assert_eq!(sess.tracks().len(), 2);
    }

    #[test]
    fn resume_without_checkpoint_is_typed_error() {
        let s = series();
        let mut sess = VisSession::new(s).unwrap();
        assert!(matches!(
            sess.resume_track().unwrap_err(),
            crate::persist::PersistError::NoCheckpoint
        ));
    }
}
