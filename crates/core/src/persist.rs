//! Versioned on-disk session artifacts: everything the user taught a
//! [`VisSession`] — key-frame TFs, the trained IATF, paints, the trained
//! data-space classifier, completed tracking runs, and an optional in-flight
//! tracking *checkpoint* — in one self-describing file that a later process
//! can load and resume.
//!
//! ## Container format (version 1)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "IFETSESS"
//! 8       4     format version        (u32 LE)
//! 12      4     section count N       (u32 LE)
//! 16      28·N  section table: per section
//!                 tag     8 bytes, ASCII, space-padded
//!                 offset  u64 LE (absolute, from file start)
//!                 length  u64 LE
//!                 crc32   u32 LE (IEEE, over the payload bytes)
//! 16+28N  4     header crc32          (u32 LE, over bytes [0, 16+28N))
//! ...           section payloads, contiguous, in table order
//! ```
//!
//! Model state (TFs, networks, paints) is stored as JSON payloads; bulky
//! per-frame masks use the word-packed binary encoding of
//! [`ifet_volume::maskio`]. Readers *skip unknown sections* (forward
//! compatibility: a newer writer can add sections without breaking old
//! readers), reject unknown *versions*, and verify both the header and every
//! section checksum — truncation and bit flips surface as typed
//! [`PersistError`]s, never panics.

use crate::session::{CompletedTrack, CriterionSpec, PendingTrack, TrackResult, VisSession};
use ifet_extract::paint::PaintSet;
use ifet_extract::{ClassifierSnapshot, DataSpaceClassifier, SnapshotError};
use ifet_obs as obs;
use ifet_tf::{ColorMap, Iatf, IatfParams, TransferFunction1D};
use ifet_track::{track_events, GrowCheckpoint, GrowError, Seed4, TrackReport};
use ifet_volume::maskio::{decode_mask, encode_mask_into, MaskIoError};
use ifet_volume::{FrameSource, Mask3};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::OnceLock;

/// File magic: first eight bytes of every session artifact.
pub const SESSION_MAGIC: [u8; 8] = *b"IFETSESS";
/// Current container format version.
pub const SESSION_FORMAT_VERSION: u32 = 1;

const TAG_LEN: usize = 8;
const TABLE_ENTRY_LEN: usize = TAG_LEN + 8 + 8 + 4;
const FIXED_HEADER_LEN: usize = 8 + 4 + 4;

// Section tags of format version 1.
const SEC_META: &str = "META";
const SEC_KEYFRAME: &str = "KEYFRAME";
const SEC_IATF: &str = "IATF";
const SEC_PAINTS: &str = "PAINTS";
const SEC_CLASSIFY: &str = "CLASSIFY";
const SEC_TRACKS: &str = "TRACKS";
const SEC_CHECKPT: &str = "CHECKPT";
/// Optional stable-mode trace summary (versioned obs JSON). Absent unless a
/// trace was attached; skipped by readers that predate it (forward compat).
const SEC_TRACE: &str = "TRACE";

/// Why a session artifact could not be written or read. Anything a damaged,
/// truncated, or foreign file can trigger is a variant here — loading never
/// panics on malformed input.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// Underlying file I/O failed.
    Io(String),
    /// The file ends before the fixed header / section table is complete.
    TruncatedHeader { needed: usize, got: usize },
    /// The file does not start with [`SESSION_MAGIC`].
    BadMagic,
    /// Written by an incompatible format version.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The header/table bytes fail their checksum (corrupt section table).
    HeaderChecksumMismatch,
    /// A section's payload extends past the end of the file.
    TruncatedSection {
        section: String,
        needed: usize,
        got: usize,
    },
    /// A section's payload bytes fail their checksum.
    ChecksumMismatch { section: String },
    /// A section this reader requires is absent.
    MissingSection { section: String },
    /// A section decoded but its content is structurally invalid.
    Malformed { section: String, reason: String },
    /// A packed mask inside a section failed to decode.
    Mask { section: String, error: MaskIoError },
    /// A component schema (nn / tf / extract / track) is newer than this
    /// build understands.
    SchemaMismatch {
        component: String,
        found: u32,
        supported: u32,
    },
    /// The artifact was saved against a different time series.
    SeriesMismatch { reason: String },
    /// The stored classifier snapshot is internally inconsistent.
    Snapshot(SnapshotError),
    /// The stored tracking checkpoint was rejected by the grower.
    Grow(GrowError),
    /// `resume_track` was called but the session holds no checkpoint.
    NoCheckpoint,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "session artifact I/O: {e}"),
            PersistError::TruncatedHeader { needed, got } => {
                write!(
                    f,
                    "artifact header truncated: need {needed} bytes, have {got}"
                )
            }
            PersistError::BadMagic => write!(f, "not a session artifact (bad magic)"),
            PersistError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "artifact format version {found} unsupported (this build reads {supported})"
                )
            }
            PersistError::HeaderChecksumMismatch => {
                write!(
                    f,
                    "artifact header checksum mismatch (corrupt section table)"
                )
            }
            PersistError::TruncatedSection {
                section,
                needed,
                got,
            } => {
                write!(
                    f,
                    "section {section} truncated: need {needed} bytes, have {got}"
                )
            }
            PersistError::ChecksumMismatch { section } => {
                write!(f, "section {section} checksum mismatch")
            }
            PersistError::MissingSection { section } => {
                write!(f, "required section {section} missing")
            }
            PersistError::Malformed { section, reason } => {
                write!(f, "section {section} malformed: {reason}")
            }
            PersistError::Mask { section, error } => {
                write!(f, "section {section}: mask decode failed: {error}")
            }
            PersistError::SchemaMismatch {
                component,
                found,
                supported,
            } => {
                write!(
                    f,
                    "{component} schema version {found} unsupported (this build reads {supported})"
                )
            }
            PersistError::SeriesMismatch { reason } => {
                write!(f, "artifact belongs to a different series: {reason}")
            }
            PersistError::Snapshot(e) => write!(f, "stored classifier invalid: {e}"),
            PersistError::Grow(e) => write!(f, "stored checkpoint rejected: {e}"),
            PersistError::NoCheckpoint => write!(f, "no tracking checkpoint to resume"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Snapshot(e) => Some(e),
            PersistError::Grow(e) => Some(e),
            PersistError::Mask { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e.to_string())
    }
}

impl From<SnapshotError> for PersistError {
    fn from(e: SnapshotError) -> Self {
        PersistError::Snapshot(e)
    }
}

// ---- CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) ----

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    })
}

/// [`crc32`] accumulating elapsed time into `acc_ns` when tracing is active.
/// Timing is runtime-only information, so the disabled path pays a single
/// branch and never touches the clock.
fn timed_crc32(data: &[u8], acc_ns: &mut u64) -> u32 {
    if obs::is_enabled() {
        let t0 = std::time::Instant::now();
        let c = crc32(data);
        *acc_ns += t0.elapsed().as_nanos() as u64;
        c
    } else {
        crc32(data)
    }
}

/// CRC32 of a byte slice (table-driven; the corruption tests sweep every byte
/// of an artifact, so this must not be the bitwise-loop variant).
pub fn crc32(data: &[u8]) -> u32 {
    let t = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---- Generic container writer / reader ----

/// Builds an artifact: sections are appended, then serialized with the
/// header, table, and checksums in one pass.
pub struct ArtifactWriter {
    sections: Vec<([u8; TAG_LEN], Vec<u8>)>,
}

impl ArtifactWriter {
    pub fn new() -> Self {
        Self {
            sections: Vec::new(),
        }
    }

    /// Append a section. `tag` must be 1..=8 ASCII bytes.
    pub fn add(&mut self, tag: &str, payload: Vec<u8>) -> &mut Self {
        assert!(
            !tag.is_empty() && tag.len() <= TAG_LEN && tag.bytes().all(|b| b.is_ascii_graphic()),
            "section tag must be 1..=8 printable ASCII bytes, got {tag:?}"
        );
        let mut t = [b' '; TAG_LEN];
        t[..tag.len()].copy_from_slice(tag.as_bytes());
        self.sections.push((t, payload));
        self
    }

    /// Serialize the whole artifact.
    pub fn to_bytes(&self) -> Vec<u8> {
        let _span = obs::span("persist.to_bytes");
        let mut crc_ns = 0u64;
        let table_len = self.sections.len() * TABLE_ENTRY_LEN;
        let payload_base = FIXED_HEADER_LEN + table_len + 4;
        let total: usize = payload_base + self.sections.iter().map(|(_, p)| p.len()).sum::<usize>();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&SESSION_MAGIC);
        out.extend_from_slice(&SESSION_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        let mut offset = payload_base;
        for (tag, payload) in &self.sections {
            out.extend_from_slice(tag);
            out.extend_from_slice(&(offset as u64).to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&timed_crc32(payload, &mut crc_ns).to_le_bytes());
            offset += payload.len();
        }
        let header_crc = timed_crc32(&out, &mut crc_ns);
        out.extend_from_slice(&header_crc.to_le_bytes());
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        debug_assert_eq!(out.len(), total);
        obs::counter("sections", self.sections.len() as u64);
        obs::counter("bytes", out.len() as u64);
        obs::counter_runtime("crc_ns", crc_ns);
        out
    }
}

impl Default for ArtifactWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Parses and validates an artifact held in memory. All structural checks —
/// magic, version, header checksum, section bounds, section checksums — run
/// up front in [`ArtifactReader::parse`]; afterwards section access is
/// infallible slicing.
#[derive(Debug)]
pub struct ArtifactReader<'a> {
    data: &'a [u8],
    sections: Vec<(String, usize, usize)>,
}

fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().unwrap())
}

fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

impl<'a> ArtifactReader<'a> {
    pub fn parse(data: &'a [u8]) -> Result<Self, PersistError> {
        let _span = obs::span("persist.parse");
        obs::counter("bytes", data.len() as u64);
        let mut crc_ns = 0u64;
        if data.len() < FIXED_HEADER_LEN {
            return Err(PersistError::TruncatedHeader {
                needed: FIXED_HEADER_LEN,
                got: data.len(),
            });
        }
        if data[..8] != SESSION_MAGIC {
            return Err(PersistError::BadMagic);
        }
        // Version gates everything else: a future format may change the very
        // layout of the table, so it must be checked before parsing further.
        let version = read_u32(&data[8..]);
        if version != SESSION_FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion {
                found: version,
                supported: SESSION_FORMAT_VERSION,
            });
        }
        let count = read_u32(&data[12..]) as usize;
        let table_end = count
            .checked_mul(TABLE_ENTRY_LEN)
            .and_then(|t| t.checked_add(FIXED_HEADER_LEN))
            .ok_or(PersistError::HeaderChecksumMismatch)?;
        let header_end = table_end
            .checked_add(4)
            .ok_or(PersistError::HeaderChecksumMismatch)?;
        if data.len() < header_end {
            return Err(PersistError::TruncatedHeader {
                needed: header_end,
                got: data.len(),
            });
        }
        // The header checksum covers the table, so a bit flip in a *tag*
        // cannot silently turn a known section into a skipped unknown one.
        if timed_crc32(&data[..table_end], &mut crc_ns) != read_u32(&data[table_end..]) {
            return Err(PersistError::HeaderChecksumMismatch);
        }
        let mut sections = Vec::with_capacity(count);
        for i in 0..count {
            let e = FIXED_HEADER_LEN + i * TABLE_ENTRY_LEN;
            let tag_bytes = &data[e..e + TAG_LEN];
            let tag = String::from_utf8_lossy(tag_bytes).trim_end().to_string();
            let offset = read_u64(&data[e + TAG_LEN..]);
            let len = read_u64(&data[e + TAG_LEN + 8..]);
            let crc = read_u32(&data[e + TAG_LEN + 16..]);
            let (offset, len) = match (usize::try_from(offset), usize::try_from(len)) {
                (Ok(o), Ok(l)) => (o, l),
                _ => {
                    return Err(PersistError::TruncatedSection {
                        section: tag,
                        needed: usize::MAX,
                        got: data.len(),
                    })
                }
            };
            let end = offset
                .checked_add(len)
                .ok_or_else(|| PersistError::TruncatedSection {
                    section: tag.clone(),
                    needed: usize::MAX,
                    got: data.len(),
                })?;
            if offset < header_end || end > data.len() {
                return Err(PersistError::TruncatedSection {
                    section: tag,
                    needed: end,
                    got: data.len(),
                });
            }
            if timed_crc32(&data[offset..end], &mut crc_ns) != crc {
                return Err(PersistError::ChecksumMismatch { section: tag });
            }
            sections.push((tag, offset, len));
        }
        obs::counter("sections", sections.len() as u64);
        obs::counter_runtime("crc_ns", crc_ns);
        Ok(Self { data, sections })
    }

    /// Payload of a section, or `None` if absent.
    pub fn section(&self, tag: &str) -> Option<&'a [u8]> {
        self.sections
            .iter()
            .find(|(t, _, _)| t == tag)
            .map(|&(_, o, l)| &self.data[o..o + l])
    }

    /// Payload of a section this reader cannot do without.
    pub fn require(&self, tag: &str) -> Result<&'a [u8], PersistError> {
        self.section(tag)
            .ok_or_else(|| PersistError::MissingSection {
                section: tag.to_string(),
            })
    }

    /// All section tags, in table order (includes unknown sections).
    pub fn tags(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(t, _, _)| t.as_str())
    }
}

// ---- JSON helpers ----

fn to_json_payload<T: Serialize>(value: &T) -> Vec<u8> {
    serde_json::to_string(value)
        .expect("session state serialization cannot fail")
        .into_bytes()
}

fn from_json_payload<T: Deserialize>(section: &str, payload: &[u8]) -> Result<T, PersistError> {
    let text = std::str::from_utf8(payload).map_err(|e| PersistError::Malformed {
        section: section.to_string(),
        reason: format!("payload is not UTF-8: {e}"),
    })?;
    serde_json::from_str(text).map_err(|e| PersistError::Malformed {
        section: section.to_string(),
        reason: e.to_string(),
    })
}

// ---- Section payload types ----

/// The artifact's self-description: which series it belongs to and which
/// component schema versions its payloads use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SessionMeta {
    schema_nn: u32,
    schema_tf: u32,
    schema_extract: u32,
    schema_track: u32,
    dims: (u64, u64, u64),
    steps: Vec<u32>,
    global_range: (f32, f32),
    colormap: ColorMap,
    iatf_params: IatfParams,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct TrackHeader {
    spec: CriterionSpec,
    seeds: Vec<Seed4>,
    report: TrackReport,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct CheckpointHeader {
    spec: CriterionSpec,
    seeds: Vec<Seed4>,
    frontiers: Vec<Vec<u64>>,
    rounds: u64,
}

// ---- Binary sub-encoding for mask-bearing sections ----

/// Sequential reader over one section's payload with typed overrun errors.
struct Cursor<'a> {
    section: &'static str,
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(section: &'static str, buf: &'a [u8]) -> Self {
        Self {
            section,
            buf,
            pos: 0,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(PersistError::Malformed {
                section: self.section.to_string(),
                reason: format!(
                    "payload overrun: need {n} more bytes at offset {}, section has {}",
                    self.pos,
                    self.buf.len()
                ),
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(read_u32(self.take(4)?))
    }

    fn mask(&mut self) -> Result<Mask3, PersistError> {
        let (mask, used) =
            decode_mask(&self.buf[self.pos..]).map_err(|error| PersistError::Mask {
                section: self.section.to_string(),
                error,
            })?;
        self.pos += used;
        Ok(mask)
    }

    fn done(&self) -> Result<(), PersistError> {
        if self.pos != self.buf.len() {
            return Err(PersistError::Malformed {
                section: self.section.to_string(),
                reason: format!("{} trailing bytes after payload", self.buf.len() - self.pos),
            });
        }
        Ok(())
    }
}

fn push_json_block(out: &mut Vec<u8>, json: &[u8]) {
    out.extend_from_slice(&(json.len() as u32).to_le_bytes());
    out.extend_from_slice(json);
}

fn encode_tracks(tracks: &[CompletedTrack]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(tracks.len() as u32).to_le_bytes());
    for t in tracks {
        let header = TrackHeader {
            spec: t.spec.clone(),
            seeds: t.seeds.clone(),
            report: t.result.report.clone(),
        };
        push_json_block(&mut out, &to_json_payload(&header));
        out.extend_from_slice(&(t.result.masks.len() as u32).to_le_bytes());
        for m in &t.result.masks {
            encode_mask_into(&mut out, m);
        }
    }
    out
}

fn decode_tracks<S: FrameSource + ?Sized>(
    payload: &[u8],
    series: &S,
) -> Result<Vec<CompletedTrack>, PersistError> {
    let mut c = Cursor::new(SEC_TRACKS, payload);
    let count = c.u32()? as usize;
    let mut tracks = Vec::new();
    for _ in 0..count {
        let jlen = c.u32()? as usize;
        let header: TrackHeader = from_json_payload(SEC_TRACKS, c.take(jlen)?)?;
        let nmasks = c.u32()? as usize;
        if nmasks != series.len() {
            return Err(PersistError::Malformed {
                section: SEC_TRACKS.to_string(),
                reason: format!(
                    "track has {nmasks} masks but the series has {} frames",
                    series.len()
                ),
            });
        }
        let mut masks = Vec::with_capacity(nmasks);
        for _ in 0..nmasks {
            let m = c.mask()?;
            if m.dims() != series.dims() {
                return Err(PersistError::Malformed {
                    section: SEC_TRACKS.to_string(),
                    reason: format!(
                        "mask dims {:?} do not match series dims {:?}",
                        m.dims(),
                        series.dims()
                    ),
                });
            }
            masks.push(m);
        }
        // The report is derived state; recomputing it both validates the
        // masks and guarantees report/mask consistency after a reload.
        let report = track_events(&masks);
        if report != header.report {
            return Err(PersistError::Malformed {
                section: SEC_TRACKS.to_string(),
                reason: "stored track report disagrees with its masks".to_string(),
            });
        }
        tracks.push(CompletedTrack {
            spec: header.spec,
            seeds: header.seeds,
            result: TrackResult { masks, report },
        });
    }
    c.done()?;
    Ok(tracks)
}

fn encode_checkpoint(pending: &PendingTrack) -> Vec<u8> {
    let mut out = Vec::new();
    let header = CheckpointHeader {
        spec: pending.spec.clone(),
        seeds: pending.seeds.clone(),
        frontiers: pending
            .checkpoint
            .frontiers
            .iter()
            .map(|f| f.iter().map(|&i| i as u64).collect())
            .collect(),
        rounds: pending.checkpoint.rounds,
    };
    push_json_block(&mut out, &to_json_payload(&header));
    out.extend_from_slice(&(pending.checkpoint.masks.len() as u32).to_le_bytes());
    for m in &pending.checkpoint.masks {
        encode_mask_into(&mut out, m);
    }
    out
}

fn decode_checkpoint<S: FrameSource + ?Sized>(
    payload: &[u8],
    series: &S,
) -> Result<PendingTrack, PersistError> {
    let mut c = Cursor::new(SEC_CHECKPT, payload);
    let jlen = c.u32()? as usize;
    let header: CheckpointHeader = from_json_payload(SEC_CHECKPT, c.take(jlen)?)?;
    let nmasks = c.u32()? as usize;
    if nmasks != series.len() || header.frontiers.len() != series.len() {
        return Err(PersistError::Malformed {
            section: SEC_CHECKPT.to_string(),
            reason: format!(
                "checkpoint covers {nmasks} masks / {} frontiers but the series has {} frames",
                header.frontiers.len(),
                series.len()
            ),
        });
    }
    let mut masks = Vec::with_capacity(nmasks);
    for _ in 0..nmasks {
        masks.push(c.mask()?);
    }
    c.done()?;
    let frontiers = header
        .frontiers
        .into_iter()
        .map(|f| {
            f.into_iter()
                .map(|i| {
                    usize::try_from(i).map_err(|_| PersistError::Malformed {
                        section: SEC_CHECKPT.to_string(),
                        reason: format!("frontier index {i} exceeds the address space"),
                    })
                })
                .collect::<Result<Vec<usize>, _>>()
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(PendingTrack {
        spec: header.spec,
        seeds: header.seeds,
        checkpoint: GrowCheckpoint {
            masks,
            frontiers,
            rounds: header.rounds,
        },
    })
}

// ---- Whole-session save / load ----

/// Serialize a session to artifact bytes (the series itself is not stored).
/// Panics if a paged source cannot read its frames while computing the
/// global range (the same I/O would already have failed earlier in use).
pub fn save_session_bytes<S: FrameSource>(sess: &VisSession<S>) -> Vec<u8> {
    let _span = obs::span("persist.save");
    let series = sess.series();
    let d = series.dims();
    let meta = SessionMeta {
        schema_nn: ifet_nn::SCHEMA_VERSION,
        schema_tf: ifet_tf::SCHEMA_VERSION,
        schema_extract: ifet_extract::SCHEMA_VERSION,
        schema_track: ifet_track::SCHEMA_VERSION,
        dims: (d.nx as u64, d.ny as u64, d.nz as u64),
        steps: series.steps().to_vec(),
        global_range: series.global_range().unwrap_or_else(|e| panic!("{e}")),
        colormap: sess.colormap,
        iatf_params: sess.iatf_params(),
    };
    // Each section's encoding gets its own span so a trace shows where save
    // time and bytes go (e.g. a large CHECKPT dominating the artifact).
    fn add_section(w: &mut ArtifactWriter, tag: &str, encode: impl FnOnce() -> Vec<u8>) {
        let _span = obs::span_dyn(format!("persist.section.{tag}"));
        let payload = encode();
        obs::counter("bytes", payload.len() as u64);
        w.add(tag, payload);
    }
    let mut w = ArtifactWriter::new();
    add_section(&mut w, SEC_META, || to_json_payload(&meta));
    add_section(&mut w, SEC_KEYFRAME, || {
        to_json_payload(&sess.key_frames().to_vec())
    });
    add_section(&mut w, SEC_IATF, || to_json_payload(&sess.iatf().cloned()));
    add_section(&mut w, SEC_PAINTS, || {
        to_json_payload(&sess.paints().to_vec())
    });
    add_section(&mut w, SEC_CLASSIFY, || {
        to_json_payload(&sess.classifier().map(|c| c.snapshot()))
    });
    add_section(&mut w, SEC_TRACKS, || encode_tracks(sess.tracks()));
    if let Some(pending) = sess.pending_track() {
        add_section(&mut w, SEC_CHECKPT, || encode_checkpoint(pending));
    }
    if let Some(trace) = sess.trace_summary() {
        add_section(&mut w, SEC_TRACE, || trace.as_bytes().to_vec());
    }
    w.to_bytes()
}

/// Rebuild a session from artifact bytes against its frame source.
pub fn load_session_bytes<S: FrameSource>(
    series: S,
    bytes: &[u8],
) -> Result<VisSession<S>, PersistError> {
    let _span = obs::span("persist.load");
    let r = ArtifactReader::parse(bytes)?;

    let meta: SessionMeta = from_json_payload(SEC_META, r.require(SEC_META)?)?;
    for (component, found, supported) in [
        ("nn", meta.schema_nn, ifet_nn::SCHEMA_VERSION),
        ("tf", meta.schema_tf, ifet_tf::SCHEMA_VERSION),
        ("extract", meta.schema_extract, ifet_extract::SCHEMA_VERSION),
        ("track", meta.schema_track, ifet_track::SCHEMA_VERSION),
    ] {
        if found > supported {
            return Err(PersistError::SchemaMismatch {
                component: component.to_string(),
                found,
                supported,
            });
        }
    }
    let d = series.dims();
    if meta.dims != (d.nx as u64, d.ny as u64, d.nz as u64) {
        return Err(PersistError::SeriesMismatch {
            reason: format!("artifact dims {:?}, series dims {d}", meta.dims),
        });
    }
    if meta.steps != series.steps() {
        return Err(PersistError::SeriesMismatch {
            reason: format!(
                "artifact has {} steps, series has {} (or step labels differ)",
                meta.steps.len(),
                series.len()
            ),
        });
    }

    let key_frames: Vec<(u32, TransferFunction1D)> =
        from_json_payload(SEC_KEYFRAME, r.require(SEC_KEYFRAME)?)?;
    for (t, _) in &key_frames {
        if series.index_of_step(*t).is_none() {
            return Err(PersistError::Malformed {
                section: SEC_KEYFRAME.to_string(),
                reason: format!("key frame step {t} not in series"),
            });
        }
    }

    let iatf: Option<Iatf> = from_json_payload(SEC_IATF, r.require(SEC_IATF)?)?;
    if let Some(iatf) = &iatf {
        iatf.validate().map_err(|reason| PersistError::Malformed {
            section: SEC_IATF.to_string(),
            reason,
        })?;
    }

    let paints: Vec<PaintSet> = from_json_payload(SEC_PAINTS, r.require(SEC_PAINTS)?)?;
    for p in &paints {
        if series.index_of_step(p.step).is_none() {
            return Err(PersistError::Malformed {
                section: SEC_PAINTS.to_string(),
                reason: format!("painted step {} not in series", p.step),
            });
        }
    }

    let snapshot: Option<ClassifierSnapshot> =
        from_json_payload(SEC_CLASSIFY, r.require(SEC_CLASSIFY)?)?;
    let classifier = snapshot
        .map(DataSpaceClassifier::from_snapshot)
        .transpose()?;

    let tracks = decode_tracks(r.require(SEC_TRACKS)?, &series)?;
    let pending = r
        .section(SEC_CHECKPT)
        .map(|p| decode_checkpoint(p, &series))
        .transpose()?;

    // The trace summary is kept as the raw JSON string so a load→save cycle
    // re-emits the section byte-for-byte, but it still has to parse as a
    // trace we understand — a corrupted summary should fail loudly at load,
    // not when some later tool tries to read it.
    let trace_summary = r
        .section(SEC_TRACE)
        .map(|p| -> Result<String, PersistError> {
            let text = std::str::from_utf8(p).map_err(|_| PersistError::Malformed {
                section: SEC_TRACE.to_string(),
                reason: "trace summary is not valid UTF-8".to_string(),
            })?;
            obs::Trace::from_json(text).map_err(|e| PersistError::Malformed {
                section: SEC_TRACE.to_string(),
                reason: e.to_string(),
            })?;
            Ok(text.to_string())
        })
        .transpose()?;

    Ok(VisSession::from_parts(
        series,
        key_frames,
        iatf,
        meta.iatf_params,
        paints,
        classifier,
        meta.colormap,
        tracks,
        pending,
        trace_summary,
    ))
}

/// Write a session artifact to disk.
pub fn save_session<S: FrameSource>(sess: &VisSession<S>, path: &Path) -> Result<(), PersistError> {
    Ok(std::fs::write(path, save_session_bytes(sess))?)
}

/// Read a session artifact from disk against its frame source.
pub fn load_session<S: FrameSource>(series: S, path: &Path) -> Result<VisSession<S>, PersistError> {
    let bytes = std::fs::read(path)?;
    load_session_bytes(series, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn writer_with(tags: &[(&str, &[u8])]) -> Vec<u8> {
        let mut w = ArtifactWriter::new();
        for (tag, payload) in tags {
            w.add(tag, payload.to_vec());
        }
        w.to_bytes()
    }

    #[test]
    fn container_roundtrips_sections_in_order() {
        let bytes = writer_with(&[("A", b"alpha"), ("BB", b""), ("CCC", b"\x00\x01\x02")]);
        let r = ArtifactReader::parse(&bytes).unwrap();
        assert_eq!(r.tags().collect::<Vec<_>>(), ["A", "BB", "CCC"]);
        assert_eq!(r.section("A"), Some(&b"alpha"[..]));
        assert_eq!(r.section("BB"), Some(&b""[..]));
        assert_eq!(r.section("CCC"), Some(&b"\x00\x01\x02"[..]));
        assert_eq!(r.section("ZZ"), None);
        assert!(matches!(
            r.require("ZZ"),
            Err(PersistError::MissingSection { .. })
        ));
    }

    #[test]
    fn unknown_sections_are_skipped_not_fatal() {
        // A "newer" writer adds a section this reader has never heard of;
        // parsing still succeeds and the known sections still load.
        let bytes = writer_with(&[("KNOWN", b"k"), ("FUTURE42", b"from the future")]);
        let r = ArtifactReader::parse(&bytes).unwrap();
        assert_eq!(r.section("KNOWN"), Some(&b"k"[..]));
        assert_eq!(r.section("FUTURE42"), Some(&b"from the future"[..]));
    }

    #[test]
    fn version_bump_is_rejected_before_anything_else() {
        let mut bytes = writer_with(&[("A", b"alpha")]);
        bytes[8] = SESSION_FORMAT_VERSION as u8 + 1;
        // Even with the (now stale) header CRC, the version gate fires first.
        assert_eq!(
            ArtifactReader::parse(&bytes).unwrap_err(),
            PersistError::UnsupportedVersion {
                found: SESSION_FORMAT_VERSION + 1,
                supported: SESSION_FORMAT_VERSION
            }
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = writer_with(&[("A", b"alpha")]);
        bytes[0] ^= 0xFF;
        assert_eq!(
            ArtifactReader::parse(&bytes).unwrap_err(),
            PersistError::BadMagic
        );
    }

    #[test]
    fn every_truncation_length_is_a_typed_error() {
        let bytes = writer_with(&[("A", b"alpha"), ("B", b"beta")]);
        for n in 0..bytes.len() {
            let err = ArtifactReader::parse(&bytes[..n]).unwrap_err();
            assert!(
                matches!(
                    err,
                    PersistError::TruncatedHeader { .. }
                        | PersistError::TruncatedSection { .. }
                        | PersistError::HeaderChecksumMismatch
                        | PersistError::ChecksumMismatch { .. }
                ),
                "truncation to {n} bytes gave unexpected error {err:?}"
            );
        }
        assert!(ArtifactReader::parse(&bytes).is_ok());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = writer_with(&[("A", b"alpha"), ("B", b"beta")]);
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            assert!(
                ArtifactReader::parse(&corrupt).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
