//! Extraction-quality metrics.
//!
//! The paper's evaluation is visual; to make its claims measurable, every
//! extraction experiment in this repo is scored against the generators'
//! ground-truth masks with the standard set-overlap metrics.

use ifet_volume::Mask3;
use serde::{Deserialize, Serialize};

/// Precision / recall / F1 / Jaccard of a predicted mask vs ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scores {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    pub jaccard: f64,
}

impl Scores {
    /// Score a prediction against ground truth.
    pub fn of(pred: &Mask3, truth: &Mask3) -> Self {
        Self {
            precision: pred.precision(truth),
            recall: pred.recall(truth),
            f1: pred.f1(truth),
            jaccard: pred.jaccard(truth),
        }
    }

    /// Mean of several score sets (e.g. across time steps).
    pub fn mean(scores: &[Scores]) -> Scores {
        assert!(!scores.is_empty());
        let n = scores.len() as f64;
        Scores {
            precision: scores.iter().map(|s| s.precision).sum::<f64>() / n,
            recall: scores.iter().map(|s| s.recall).sum::<f64>() / n,
            f1: scores.iter().map(|s| s.f1).sum::<f64>() / n,
            jaccard: scores.iter().map(|s| s.jaccard).sum::<f64>() / n,
        }
    }
}

impl std::fmt::Display for Scores {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P={:.3} R={:.3} F1={:.3} J={:.3}",
            self.precision, self.recall, self.f1, self.jaccard
        )
    }
}

/// Score a sequence of per-frame predictions against per-frame truths.
pub fn score_series(preds: &[Mask3], truths: &[Mask3]) -> Vec<Scores> {
    assert_eq!(preds.len(), truths.len(), "prediction/truth count mismatch");
    preds
        .iter()
        .zip(truths)
        .map(|(p, t)| Scores::of(p, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifet_volume::Dims3;

    #[test]
    fn perfect_prediction_scores_one() {
        let d = Dims3::cube(4);
        let m = Mask3::from_fn(d, |x, _, _| x < 2);
        let s = Scores::of(&m, &m);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
        assert_eq!(s.jaccard, 1.0);
    }

    #[test]
    fn known_values() {
        let d = Dims3::new(4, 1, 1);
        let truth = Mask3::from_fn(d, |x, _, _| x < 2);
        let pred = Mask3::from_fn(d, |x, _, _| x < 3);
        let s = Scores::of(&pred, &truth);
        assert!((s.precision - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.recall, 1.0);
        assert!((s.f1 - 0.8).abs() < 1e-12);
        assert!((s.jaccard - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_averages() {
        let a = Scores {
            precision: 1.0,
            recall: 0.0,
            f1: 0.5,
            jaccard: 0.25,
        };
        let b = Scores {
            precision: 0.0,
            recall: 1.0,
            f1: 0.5,
            jaccard: 0.75,
        };
        let m = Scores::mean(&[a, b]);
        assert_eq!(m.precision, 0.5);
        assert_eq!(m.recall, 0.5);
        assert_eq!(m.f1, 0.5);
        assert_eq!(m.jaccard, 0.5);
    }

    #[test]
    fn score_series_pairs_up() {
        let d = Dims3::cube(2);
        let m = Mask3::full(d);
        let out = score_series(&[m.clone(), m.clone()], &[m.clone(), m]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].f1, 1.0);
    }

    #[test]
    fn display_is_compact() {
        let s = Scores {
            precision: 0.5,
            recall: 0.25,
            f1: 0.333,
            jaccard: 0.2,
        };
        let txt = s.to_string();
        assert!(txt.contains("F1=0.333"));
    }

    #[test]
    #[should_panic]
    fn mismatched_series_panics() {
        let d = Dims3::cube(2);
        let _ = score_series(&[Mask3::full(d)], &[]);
    }
}
