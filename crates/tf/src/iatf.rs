//! The Intelligent Adaptive Transfer Function (paper Section 4.2).
//!
//! The user paints ordinary 1D transfer functions on a few *key frames*; a
//! neural network is trained on tuples
//! `<data value, cumulative histogram(value), time>` → opacity, where the
//! training rows come straight from the key-frame TF tables (Section 4.2.2:
//! "for each data value in a key frame transfer function, a vector
//! `<data, histogram(data), t>` is created ... the corresponding desired
//! output is the opacity specified by the user"). This keeps all training
//! data in core and gives every TF entry the same amount of training, unlike
//! sampling random voxels.
//!
//! After training, [`Iatf::generate`] produces a concrete 1D TF for *any*
//! time step by evaluating the network at each table entry with that frame's
//! cumulative-histogram value — sub-second work, done per frame during
//! rendering.

use crate::tf1d::{TransferFunction1D, TF_ENTRIES};
use ifet_nn::{Activation, IncrementalTrainer, Mlp, TrainParams, TrainingSet};
use ifet_volume::{CumulativeHistogram, FrameSource, Histogram, ScalarVolume};
use serde::{Deserialize, Serialize};

/// IATF hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IatfParams {
    /// Hidden-layer width of the three-layer perceptron.
    pub hidden: usize,
    /// Cumulative-histogram resolution.
    pub bins: usize,
    /// Training epochs over the key-frame entries.
    pub epochs: usize,
    pub learning_rate: f32,
    pub momentum: f32,
    pub seed: u64,
    /// If false, the cumulative-histogram input is zeroed — the ablation of
    /// the paper's central design choice (Section 4.2.1).
    pub use_cumhist: bool,
}

impl Default for IatfParams {
    fn default() -> Self {
        Self {
            hidden: 16,
            bins: 256,
            epochs: 600,
            learning_rate: 0.35,
            momentum: 0.9,
            seed: 0x1A7F,
            use_cumhist: true,
        }
    }
}

/// Collects user key frames and trains the adaptive transfer function.
#[derive(Debug, Clone)]
pub struct IatfBuilder {
    params: IatfParams,
    key_frames: Vec<(u32, TransferFunction1D)>,
}

impl IatfBuilder {
    pub fn new(params: IatfParams) -> Self {
        Self {
            params,
            key_frames: Vec::new(),
        }
    }

    /// Register a user-specified key-frame TF for series step `t`. The TF's
    /// domain should cover the series' global value range.
    pub fn add_key_frame(&mut self, t: u32, tf: TransferFunction1D) -> &mut Self {
        self.key_frames.push((t, tf));
        self
    }

    pub fn num_key_frames(&self) -> usize {
        self.key_frames.len()
    }

    /// Assemble the training set from the key frames and the series' data
    /// distributions (one row per TF table entry per key frame). Generic over
    /// the frame source: only the key frames are paged in, one at a time —
    /// the paper's "only the key frames need to be in core" (§4.2.2).
    fn training_set<S: FrameSource + ?Sized>(&self, series: &S) -> TrainingSet {
        let (glo, ghi) = series.global_range().unwrap_or_else(|e| panic!("{e}"));
        let mut set = TrainingSet::new();
        for (t, tf) in &self.key_frames {
            let frame = series
                .frame_at_step(*t)
                .unwrap_or_else(|e| panic!("{e}"))
                .unwrap_or_else(|| panic!("key frame step {t} not in series"));
            let h = Histogram::of_values(frame.as_slice(), self.params.bins, glo, ghi);
            let ch = CumulativeHistogram::from_histogram(&h);
            let tn = series.normalized_time(*t);
            for i in 0..TF_ENTRIES {
                let v = tf.value_of_entry(i);
                let row = input_row(v, glo, ghi, &ch, tn, self.params.use_cumhist);
                set.add1(row.to_vec(), tf.table()[i]);
            }
        }
        set
    }

    /// Train the network to convergence and return the adaptive TF.
    /// Panics if no key frames were added.
    pub fn train<S: FrameSource + ?Sized>(&self, series: &S) -> Iatf {
        assert!(
            !self.key_frames.is_empty(),
            "IATF needs at least one key frame"
        );
        let mut inc = self.start_incremental(series);
        inc.step(self.params.epochs);
        self.finish(series, inc)
    }

    /// Begin idle-loop training (paper Section 4.2.2): returns an
    /// [`IncrementalTrainer`] pre-loaded with the key-frame samples. Drive it
    /// with `step(n)` between interactions, then call
    /// [`IatfBuilder::finish`].
    pub fn start_incremental<S: FrameSource + ?Sized>(&self, series: &S) -> IncrementalTrainer {
        let set = self.training_set(series);
        let net = Mlp::new(
            &[3, self.params.hidden, 1],
            Activation::Sigmoid,
            Activation::Sigmoid,
            self.params.seed,
        )
        .expect("IATF network shape is [3, hidden, 1] with hidden >= 1");
        let mut inc = IncrementalTrainer::new(
            net,
            TrainParams {
                learning_rate: self.params.learning_rate,
                momentum: self.params.momentum,
                seed: self.params.seed,
            },
        );
        inc.add_set(&set);
        inc
    }

    /// Wrap a (partially) trained network into a usable [`Iatf`].
    pub fn finish<S: FrameSource + ?Sized>(&self, series: &S, inc: IncrementalTrainer) -> Iatf {
        let (glo, ghi) = series.global_range().unwrap_or_else(|e| panic!("{e}"));
        let final_loss = inc.loss_history().last().copied();
        Iatf {
            net: inc.into_network(),
            domain: (glo, ghi),
            bins: self.params.bins,
            use_cumhist: self.params.use_cumhist,
            t_first: *series.steps().first().unwrap(),
            t_last: *series.steps().last().unwrap(),
            final_loss,
        }
    }
}

/// Network input row for a value/time query.
fn input_row(
    v: f32,
    glo: f32,
    ghi: f32,
    ch: &CumulativeHistogram,
    t_norm: f32,
    use_cumhist: bool,
) -> [f32; 3] {
    let span = ghi - glo;
    let vn = if span <= 0.0 { 0.0 } else { (v - glo) / span };
    let c = if use_cumhist {
        ch.fraction_at_or_below(v)
    } else {
        0.0
    };
    [vn, c, t_norm]
}

/// A trained Intelligent Adaptive Transfer Function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Iatf {
    net: Mlp,
    domain: (f32, f32),
    bins: usize,
    use_cumhist: bool,
    t_first: u32,
    t_last: u32,
    final_loss: Option<f32>,
}

impl Iatf {
    /// The global value domain the IATF was trained over.
    pub fn domain(&self) -> (f32, f32) {
        self.domain
    }

    /// Final training loss (mean MSE), if any training happened.
    pub fn final_loss(&self) -> Option<f32> {
        self.final_loss
    }

    /// Access the underlying network (e.g. for shipping to remote renderers).
    pub fn network(&self) -> &Mlp {
        &self.net
    }

    /// Check the invariants a deserialized IATF must satisfy before use: a
    /// structurally sound 3-input/1-output network, at least one histogram
    /// bin, and a finite value domain. Artifact loaders call this so a
    /// corrupted session yields a typed error instead of a downstream panic
    /// (e.g. `Histogram::of_values` with zero bins).
    pub fn validate(&self) -> Result<(), String> {
        self.net.validate_shape()?;
        let sizes = self.net.layer_sizes();
        if sizes.first() != Some(&3) || sizes.last() != Some(&1) {
            return Err(format!(
                "IATF network must map 3 inputs to 1 output, got {sizes:?}"
            ));
        }
        if self.bins == 0 {
            return Err("IATF has zero histogram bins".to_string());
        }
        if !self.domain.0.is_finite() || !self.domain.1.is_finite() {
            return Err(format!("IATF domain {:?} is not finite", self.domain));
        }
        Ok(())
    }

    fn normalized_time(&self, t: u32) -> f32 {
        if self.t_last <= self.t_first {
            return 0.0;
        }
        ((t.max(self.t_first) - self.t_first) as f32 / (self.t_last - self.t_first) as f32)
            .clamp(0.0, 1.0)
    }

    /// Generate the concrete 1D transfer function for step `t` given that
    /// frame's data (computes the frame's cumulative histogram internally).
    pub fn generate(&self, t: u32, frame: &ScalarVolume) -> TransferFunction1D {
        let (glo, ghi) = self.domain;
        let h = Histogram::of_values(frame.as_slice(), self.bins, glo, ghi);
        let ch = CumulativeHistogram::from_histogram(&h);
        self.generate_with_hist(t, &ch)
    }

    /// Generate using a precomputed cumulative histogram (must be over the
    /// IATF's domain). This is the sub-second per-frame path of Section 5.
    pub fn generate_with_hist(&self, t: u32, ch: &CumulativeHistogram) -> TransferFunction1D {
        let (glo, ghi) = self.domain;
        let tn = self.normalized_time(t);
        let mut scratch = ifet_nn::mlp::Scratch::for_net(&self.net);
        TransferFunction1D::from_fn(glo, ghi, |v| {
            let row = input_row(v, glo, ghi, ch, tn, self.use_cumhist);
            self.net.predict1(&row, &mut scratch)
        })
    }

    /// Opacity for a single `(value, time)` query against a frame histogram.
    pub fn opacity_at(&self, v: f32, t: u32, ch: &CumulativeHistogram) -> f32 {
        let (glo, ghi) = self.domain;
        let tn = self.normalized_time(t);
        let mut scratch = ifet_nn::mlp::Scratch::for_net(&self.net);
        let row = input_row(v, glo, ghi, ch, tn, self.use_cumhist);
        self.net.predict1(&row, &mut scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifet_volume::{Dims3, ScalarVolume, TimeSeries};

    /// Per-step global value shifts: deliberately *irregular* in time (the
    /// paper: "the range of the data values can vary so dramatically that we
    /// can easily lose track of features"). A net seeing only (value, time)
    /// at the two end key frames cannot predict the interior shifts; the
    /// cumulative histogram tracks them exactly.
    const SHIFTS: [f32; 5] = [0.0, 0.35, 0.1, 0.3, 0.05];
    const STEPS: [u32; 5] = [0, 25, 50, 75, 100];

    /// A series of uniform value ramps pushed up by the irregular SHIFTS:
    /// values drift, distribution shape (and thus cumhist positions) do not.
    fn drifting_series() -> TimeSeries {
        let d = Dims3::cube(16);
        let n = d.len();
        let frames = (0..5usize)
            .map(|k| {
                let vol = ScalarVolume::from_vec(
                    d,
                    (0..n).map(|i| i as f32 / n as f32 + SHIFTS[k]).collect(),
                );
                (STEPS[k], vol)
            })
            .collect();
        TimeSeries::from_frames(frames)
    }

    /// The feature of interest occupies cumulative fractions [0.6, 0.75] of
    /// every frame, i.e. raw values `[0.6 + shift, 0.75 + shift]`.
    fn feature_band(k: usize) -> (f32, f32) {
        (0.6 + SHIFTS[k], 0.75 + SHIFTS[k])
    }

    /// Key-frame TF capturing the feature band of frame `k`.
    fn key_tf(series: &TimeSeries, k: usize) -> TransferFunction1D {
        let (glo, ghi) = series.global_range();
        let (lo, hi) = feature_band(k);
        TransferFunction1D::band(glo, ghi, lo, hi, 1.0)
    }

    /// Three key frames, as in the paper's Figure 4. The middle key frame
    /// (t = 75, shift 0.3) makes the raw-value cue inconsistent across
    /// training so the network learns to rely on the cumulative histogram.
    fn trained_iatf(series: &TimeSeries) -> Iatf {
        let mut b = IatfBuilder::new(IatfParams {
            epochs: 800,
            ..Default::default()
        });
        b.add_key_frame(0, key_tf(series, 0));
        b.add_key_frame(75, key_tf(series, 3));
        b.add_key_frame(100, key_tf(series, 4));
        b.train(series)
    }

    #[test]
    fn training_converges() {
        let s = drifting_series();
        let iatf = trained_iatf(&s);
        let loss = iatf.final_loss().unwrap();
        assert!(loss < 0.02, "IATF training loss too high: {loss}");
    }

    #[test]
    fn reproduces_key_frames() {
        let s = drifting_series();
        let iatf = trained_iatf(&s);
        for (t, k) in [(0u32, 0usize), (100, 4)] {
            let tf = iatf.generate(t, s.frame_at_step(t).unwrap());
            let (wlo, whi) = feature_band(k);
            // Compare supports (where opacity > 0.5).
            let (glo2, ghi2) = tf.support(0.5).expect("IATF lost the key-frame band");
            assert!((glo2 - wlo).abs() < 0.12, "t={t}: {glo2} vs {wlo}");
            assert!((ghi2 - whi).abs() < 0.12, "t={t}: {ghi2} vs {whi}");
        }
    }

    #[test]
    fn adapts_at_intermediate_time_where_lerp_fails() {
        // The Figure 3 experiment in miniature: at t = 25 the whole
        // distribution jumped up by 0.35, far off the straight line between
        // the two key frames.
        let s = drifting_series();
        let iatf = trained_iatf(&s);

        let (wlo, whi) = feature_band(1); // true band at t = 25: [0.95, 1.10]
        let want_center = 0.5 * (wlo + whi);
        let tf25 = iatf.generate(25, s.frame_at_step(25).unwrap());
        let (blo, bhi) = tf25.support(0.5).expect("IATF produced no band at t=25");
        let center = 0.5 * (blo + bhi);
        assert!(
            (center - want_center).abs() < 0.1,
            "IATF band center {center}, want ~{want_center} (band [{blo}, {bhi}])"
        );

        // Linear interpolation of the bracketing key frames (t=0 and t=75):
        // keeps ghost bands at the key-frame positions instead of following
        // the jumped distribution.
        let lerp = TransferFunction1D::lerp(&key_tf(&s, 0), &key_tf(&s, 3), 1.0 / 3.0);
        assert!(
            lerp.opacity_at(want_center) < 0.6,
            "lerp should miss the true band at {want_center}"
        );
        assert!(
            lerp.opacity_at(0.67) > 0.4,
            "lerp keeps a ghost at the old band position"
        );
    }

    #[test]
    fn opacity_values_are_valid() {
        let s = drifting_series();
        let iatf = trained_iatf(&s);
        let tf = iatf.generate(75, s.frame_at_step(75).unwrap());
        for &o in tf.table() {
            assert!((0.0..=1.0).contains(&o));
        }
    }

    #[test]
    fn deterministic() {
        let s = drifting_series();
        let a = trained_iatf(&s).generate(50, s.frame_at_step(50).unwrap());
        let b = trained_iatf(&s).generate(50, s.frame_at_step(50).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn validate_accepts_trained_rejects_corrupt() {
        let s = drifting_series();
        let mut iatf = trained_iatf(&s);
        assert!(iatf.validate().is_ok());
        iatf.bins = 0;
        assert!(iatf.validate().is_err());
        iatf.bins = 256;
        iatf.domain = (0.0, f32::NAN);
        assert!(iatf.validate().is_err());
    }

    #[test]
    #[should_panic]
    fn no_key_frames_panics() {
        let s = drifting_series();
        IatfBuilder::new(IatfParams::default()).train(&s);
    }

    #[test]
    #[should_panic]
    fn unknown_key_frame_step_panics() {
        let s = drifting_series();
        let mut b = IatfBuilder::new(IatfParams::default());
        b.add_key_frame(13, key_tf(&s, 0));
        b.train(&s);
    }

    #[test]
    fn incremental_training_path() {
        let s = drifting_series();
        let mut b = IatfBuilder::new(IatfParams::default());
        b.add_key_frame(0, key_tf(&s, 0));
        b.add_key_frame(100, key_tf(&s, 4));
        let mut inc = b.start_incremental(&s);
        // Idle-loop bursts with intermediate queries.
        inc.step(50);
        let early = b.finish(&s, inc.clone());
        let _ = early.generate(50, s.frame_at_step(50).unwrap());
        inc.step(750);
        let late = b.finish(&s, inc);
        assert!(late.final_loss().unwrap() <= early.final_loss().unwrap() + 1e-3);
    }

    #[test]
    fn ablation_without_cumhist_cannot_adapt() {
        // With the cumulative-histogram input zeroed, the network sees the
        // same (value, time) rows but must memorize per-time bands; at an
        // unseen intermediate time it cannot place the band correctly
        // — the paper's Section 4.2.1 argument.
        let s = drifting_series();
        let mut b = IatfBuilder::new(IatfParams {
            use_cumhist: false,
            epochs: 800,
            ..Default::default()
        });
        b.add_key_frame(0, key_tf(&s, 0));
        b.add_key_frame(75, key_tf(&s, 3));
        b.add_key_frame(100, key_tf(&s, 4));
        let ablated = b.train(&s);

        let full = trained_iatf(&s);
        // Score both against the true band at t=25 by integrated error.
        let truth = key_tf(&s, 1);
        let err = |tf: &TransferFunction1D| -> f32 {
            tf.table()
                .iter()
                .zip(truth.table())
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>()
                / TF_ENTRIES as f32
        };
        let e_full = err(&full.generate(25, s.frame_at_step(25).unwrap()));
        let e_abl = err(&ablated.generate(25, s.frame_at_step(25).unwrap()));
        assert!(
            e_full < e_abl * 0.7,
            "cumhist input should help substantially: full {e_full} vs ablated {e_abl}"
        );
    }
}
