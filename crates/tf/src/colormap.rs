//! Value-to-color maps.
//!
//! Per the paper's Section 7, "color is typically used to communicate
//! quantitative physical properties ... our methods only apply to the
//! opacity, when color is assigned by the original data value" — so color
//! maps here are plain static functions of the data value.

use serde::{Deserialize, Serialize};

/// A named color map over a value domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColorMap {
    /// Black → white.
    Grayscale,
    /// Blue → cyan → green → yellow → red (classic "rainbow"/jet).
    Rainbow,
    /// Black → red → yellow → white.
    Heat,
    /// Blue → white → red (diverging).
    CoolWarm,
}

impl ColorMap {
    /// RGB in `[0, 1]³` for a normalized value `t ∈ [0, 1]` (clamped).
    pub fn sample(self, t: f32) -> [f32; 3] {
        let t = t.clamp(0.0, 1.0);
        match self {
            ColorMap::Grayscale => [t, t, t],
            ColorMap::Rainbow => rainbow(t),
            ColorMap::Heat => heat(t),
            ColorMap::CoolWarm => coolwarm(t),
        }
    }

    /// Sample for a raw value in `[lo, hi]`.
    pub fn sample_in(self, v: f32, lo: f32, hi: f32) -> [f32; 3] {
        let span = hi - lo;
        let t = if span <= 0.0 { 0.0 } else { (v - lo) / span };
        self.sample(t)
    }
}

fn rainbow(t: f32) -> [f32; 3] {
    // Piecewise HSV-like ramp through blue, cyan, green, yellow, red.
    let seg = t * 4.0;
    match seg as u32 {
        0 => [0.0, seg, 1.0],
        1 => [0.0, 1.0, 1.0 - (seg - 1.0)],
        2 => [seg - 2.0, 1.0, 0.0],
        _ => [1.0, 1.0 - (seg - 3.0).min(1.0), 0.0],
    }
}

fn heat(t: f32) -> [f32; 3] {
    [
        (3.0 * t).min(1.0),
        (3.0 * t - 1.0).clamp(0.0, 1.0),
        (3.0 * t - 2.0).clamp(0.0, 1.0),
    ]
}

fn coolwarm(t: f32) -> [f32; 3] {
    if t < 0.5 {
        let s = t * 2.0;
        [s, s, 1.0]
    } else {
        let s = (t - 0.5) * 2.0;
        [1.0, 1.0 - s, 1.0 - s]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_rgb_valid(c: [f32; 3]) {
        for ch in c {
            assert!((0.0..=1.0).contains(&ch), "{c:?}");
        }
    }

    #[test]
    fn all_maps_produce_valid_rgb() {
        for map in [
            ColorMap::Grayscale,
            ColorMap::Rainbow,
            ColorMap::Heat,
            ColorMap::CoolWarm,
        ] {
            for i in 0..=100 {
                assert_rgb_valid(map.sample(i as f32 / 100.0));
            }
        }
    }

    #[test]
    fn grayscale_endpoints() {
        assert_eq!(ColorMap::Grayscale.sample(0.0), [0.0; 3]);
        assert_eq!(ColorMap::Grayscale.sample(1.0), [1.0; 3]);
    }

    #[test]
    fn rainbow_endpoints_blue_to_red() {
        let lo = ColorMap::Rainbow.sample(0.0);
        let hi = ColorMap::Rainbow.sample(1.0);
        assert!(lo[2] > 0.9 && lo[0] < 0.1, "low end should be blue: {lo:?}");
        assert!(hi[0] > 0.9 && hi[2] < 0.1, "high end should be red: {hi:?}");
    }

    #[test]
    fn heat_is_monotone_in_red() {
        let mut prev = -1.0;
        for i in 0..=20 {
            let r = ColorMap::Heat.sample(i as f32 / 20.0)[0];
            assert!(r >= prev);
            prev = r;
        }
    }

    #[test]
    fn coolwarm_is_white_at_center() {
        let c = ColorMap::CoolWarm.sample(0.5);
        for ch in c {
            assert!(ch > 0.95, "{c:?}");
        }
    }

    #[test]
    fn sample_in_clamps_and_normalizes() {
        let m = ColorMap::Grayscale;
        assert_eq!(m.sample_in(5.0, 0.0, 10.0), [0.5; 3]);
        assert_eq!(m.sample_in(-99.0, 0.0, 10.0), [0.0; 3]);
        assert_eq!(m.sample_in(1.0, 2.0, 2.0), [0.0; 3]); // degenerate domain
    }
}
