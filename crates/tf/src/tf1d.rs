//! One-dimensional transfer functions.

use serde::{Deserialize, Serialize};

/// Number of table entries used throughout (the paper evaluates its network
/// "for all the entries in the 1D transfer function", i.e. a lookup table).
pub const TF_ENTRIES: usize = 256;

/// A 1D opacity transfer function over a value domain `[lo, hi]`, stored as
/// a dense lookup table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferFunction1D {
    lo: f32,
    hi: f32,
    opacity: Vec<f32>,
}

impl TransferFunction1D {
    /// All-transparent TF over `[lo, hi]`.
    pub fn transparent(lo: f32, hi: f32) -> Self {
        assert!(hi > lo, "invalid TF domain [{lo}, {hi}]");
        Self {
            lo,
            hi,
            opacity: vec![0.0; TF_ENTRIES],
        }
    }

    /// Build from an explicit table (must be `TF_ENTRIES` long, each in `[0,1]`).
    pub fn from_table(lo: f32, hi: f32, opacity: Vec<f32>) -> Self {
        assert!(hi > lo, "invalid TF domain [{lo}, {hi}]");
        assert_eq!(opacity.len(), TF_ENTRIES);
        assert!(
            opacity.iter().all(|&o| (0.0..=1.0).contains(&o)),
            "opacity entries must lie in [0, 1]"
        );
        Self { lo, hi, opacity }
    }

    /// Build by evaluating `f` at each entry's central value.
    pub fn from_fn(lo: f32, hi: f32, mut f: impl FnMut(f32) -> f32) -> Self {
        assert!(hi > lo);
        let opacity = (0..TF_ENTRIES)
            .map(|i| {
                let v = lo + (hi - lo) * (i as f32 + 0.5) / TF_ENTRIES as f32;
                f(v).clamp(0.0, 1.0)
            })
            .collect();
        Self { lo, hi, opacity }
    }

    /// A rectangular pulse: `peak` opacity inside `[band_lo, band_hi]`, zero
    /// elsewhere — the workhorse "capture this value band" key-frame TF.
    ///
    /// ```
    /// use ifet_tf::TransferFunction1D;
    /// let tf = TransferFunction1D::band(0.0, 1.0, 0.4, 0.6, 0.9);
    /// assert_eq!(tf.opacity_at(0.5), 0.9);
    /// assert_eq!(tf.opacity_at(0.2), 0.0);
    /// ```
    pub fn band(lo: f32, hi: f32, band_lo: f32, band_hi: f32, peak: f32) -> Self {
        Self::from_fn(lo, hi, |v| {
            if v >= band_lo && v <= band_hi {
                peak
            } else {
                0.0
            }
        })
    }

    /// A tent (triangular) pulse centered at `center` with half-width `width`.
    pub fn tent(lo: f32, hi: f32, center: f32, width: f32, peak: f32) -> Self {
        assert!(width > 0.0);
        Self::from_fn(lo, hi, |v| {
            let d = (v - center).abs() / width;
            if d >= 1.0 {
                0.0
            } else {
                peak * (1.0 - d)
            }
        })
    }

    /// Piecewise-linear TF through `(value, opacity)` control points
    /// (image-driven editing). Points are sorted internally; opacity outside
    /// the first/last point is held constant.
    pub fn from_control_points(lo: f32, hi: f32, points: &[(f32, f32)]) -> Self {
        assert!(!points.is_empty(), "need at least one control point");
        let mut pts: Vec<(f32, f32)> = points.to_vec();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        Self::from_fn(lo, hi, |v| {
            if v <= pts[0].0 {
                return pts[0].1;
            }
            if v >= pts[pts.len() - 1].0 {
                return pts[pts.len() - 1].1;
            }
            let i = pts.partition_point(|p| p.0 <= v);
            let (x0, y0) = pts[i - 1];
            let (x1, y1) = pts[i];
            if x1 <= x0 {
                return y0;
            }
            y0 + (y1 - y0) * (v - x0) / (x1 - x0)
        })
    }

    /// The domain `[lo, hi]`.
    pub fn domain(&self) -> (f32, f32) {
        (self.lo, self.hi)
    }

    /// The raw opacity table.
    pub fn table(&self) -> &[f32] {
        &self.opacity
    }

    /// Table entry index for a value (clamped).
    #[inline]
    pub fn entry_of(&self, v: f32) -> usize {
        let t = (v - self.lo) / (self.hi - self.lo);
        ((t * TF_ENTRIES as f32).floor() as i64).clamp(0, TF_ENTRIES as i64 - 1) as usize
    }

    /// Central data value of entry `i`.
    #[inline]
    pub fn value_of_entry(&self, i: usize) -> f32 {
        self.lo + (self.hi - self.lo) * (i as f32 + 0.5) / TF_ENTRIES as f32
    }

    /// Opacity assigned to a data value (nearest-entry lookup, clamped).
    #[inline]
    pub fn opacity_at(&self, v: f32) -> f32 {
        self.opacity[self.entry_of(v)]
    }

    /// Set the opacity of entry `i`.
    pub fn set_entry(&mut self, i: usize, o: f32) {
        self.opacity[i] = o.clamp(0.0, 1.0);
    }

    /// The value range where opacity exceeds `threshold` (None if nowhere).
    pub fn support(&self, threshold: f32) -> Option<(f32, f32)> {
        let first = self.opacity.iter().position(|&o| o > threshold)?;
        let last = self.opacity.iter().rposition(|&o| o > threshold)?;
        Some((self.value_of_entry(first), self.value_of_entry(last)))
    }

    /// Linear interpolation between two TFs (entry-wise) — the conventional
    /// key-frame interpolation baseline the IATF beats in Figure 3. Domains
    /// must match.
    pub fn lerp(a: &Self, b: &Self, alpha: f32) -> Self {
        assert_eq!(
            a.domain(),
            b.domain(),
            "cannot lerp TFs over different domains"
        );
        let alpha = alpha.clamp(0.0, 1.0);
        let opacity = a
            .opacity
            .iter()
            .zip(&b.opacity)
            .map(|(&x, &y)| x + (y - x) * alpha)
            .collect();
        Self {
            lo: a.lo,
            hi: a.hi,
            opacity,
        }
    }

    /// Rescale this TF's table onto a different domain, preserving the
    /// mapping *by value* (entries outside the old domain get the edge
    /// opacity).
    pub fn resampled(&self, lo: f32, hi: f32) -> Self {
        Self::from_fn(lo, hi, |v| self.opacity_at(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_covers_expected_entries() {
        let tf = TransferFunction1D::band(0.0, 1.0, 0.25, 0.5, 0.8);
        assert_eq!(tf.opacity_at(0.3), 0.8);
        assert_eq!(tf.opacity_at(0.1), 0.0);
        assert_eq!(tf.opacity_at(0.6), 0.0);
    }

    #[test]
    fn opacity_clamps_out_of_domain() {
        let tf = TransferFunction1D::band(0.0, 1.0, 0.0, 0.1, 1.0);
        assert_eq!(tf.opacity_at(-5.0), 1.0); // clamps to first entry
        assert_eq!(tf.opacity_at(5.0), 0.0);
    }

    #[test]
    fn tent_peaks_at_center() {
        let tf = TransferFunction1D::tent(0.0, 2.0, 1.0, 0.5, 1.0);
        assert!(tf.opacity_at(1.0) > 0.95);
        assert!((tf.opacity_at(0.75) - 0.5).abs() < 0.05);
        assert_eq!(tf.opacity_at(0.25), 0.0);
    }

    #[test]
    fn entry_value_roundtrip() {
        let tf = TransferFunction1D::transparent(-1.0, 3.0);
        for i in [0usize, 17, 128, 255] {
            assert_eq!(tf.entry_of(tf.value_of_entry(i)), i);
        }
    }

    #[test]
    fn control_points_interpolate() {
        let tf = TransferFunction1D::from_control_points(0.0, 1.0, &[(0.2, 0.0), (0.8, 1.0)]);
        assert_eq!(tf.opacity_at(0.1), 0.0);
        assert!((tf.opacity_at(0.5) - 0.5).abs() < 0.05);
        assert!((tf.opacity_at(0.9) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn control_points_unsorted_ok() {
        let a = TransferFunction1D::from_control_points(0.0, 1.0, &[(0.8, 1.0), (0.2, 0.0)]);
        let b = TransferFunction1D::from_control_points(0.0, 1.0, &[(0.2, 0.0), (0.8, 1.0)]);
        assert_eq!(a, b);
    }

    #[test]
    fn support_finds_band() {
        let tf = TransferFunction1D::band(0.0, 1.0, 0.4, 0.6, 1.0);
        let (lo, hi) = tf.support(0.5).unwrap();
        assert!((lo - 0.4).abs() < 0.01 && (hi - 0.6).abs() < 0.01);
        assert!(TransferFunction1D::transparent(0.0, 1.0)
            .support(0.1)
            .is_none());
    }

    #[test]
    fn lerp_midpoint_halves_disjoint_bands() {
        // The Figure 3 pathology: lerping two disjoint bands yields *both*
        // bands at half opacity instead of one moved band.
        let a = TransferFunction1D::band(0.0, 1.0, 0.1, 0.2, 1.0);
        let b = TransferFunction1D::band(0.0, 1.0, 0.7, 0.8, 1.0);
        let m = TransferFunction1D::lerp(&a, &b, 0.5);
        assert!((m.opacity_at(0.15) - 0.5).abs() < 1e-6);
        assert!((m.opacity_at(0.75) - 0.5).abs() < 1e-6);
        assert_eq!(m.opacity_at(0.45), 0.0); // nothing in between
    }

    #[test]
    fn lerp_endpoints_are_inputs() {
        let a = TransferFunction1D::band(0.0, 1.0, 0.1, 0.2, 1.0);
        let b = TransferFunction1D::band(0.0, 1.0, 0.7, 0.8, 1.0);
        assert_eq!(TransferFunction1D::lerp(&a, &b, 0.0), a);
        assert_eq!(TransferFunction1D::lerp(&a, &b, 1.0), b);
    }

    #[test]
    #[should_panic]
    fn lerp_domain_mismatch_panics() {
        let a = TransferFunction1D::transparent(0.0, 1.0);
        let b = TransferFunction1D::transparent(0.0, 2.0);
        let _ = TransferFunction1D::lerp(&a, &b, 0.5);
    }

    #[test]
    fn resample_preserves_mapping_by_value() {
        let a = TransferFunction1D::band(0.0, 1.0, 0.4, 0.6, 1.0);
        let b = a.resampled(0.0, 2.0);
        assert_eq!(b.opacity_at(0.5), 1.0);
        assert_eq!(b.opacity_at(1.5), 0.0);
    }

    #[test]
    fn from_fn_clamps_opacity() {
        let tf = TransferFunction1D::from_fn(0.0, 1.0, |v| v * 3.0 - 1.0);
        for &o in tf.table() {
            assert!((0.0..=1.0).contains(&o));
        }
    }

    #[test]
    #[should_panic]
    fn bad_domain_panics() {
        let _ = TransferFunction1D::transparent(1.0, 1.0);
    }

    #[test]
    fn set_entry_clamps() {
        let mut tf = TransferFunction1D::transparent(0.0, 1.0);
        tf.set_entry(10, 2.0);
        assert_eq!(tf.table()[10], 1.0);
    }
}
