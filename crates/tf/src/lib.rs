//! Transfer functions and the Intelligent Adaptive Transfer Function (IATF),
//! the paper's Section 4.2 contribution.
//!
//! - [`TransferFunction1D`] — a classic 256-entry opacity (+ color) map over
//!   a value domain, with control-point editing and the linear-interpolation
//!   baseline the paper compares against in Figure 3,
//! - [`colormap`] — value-to-color maps (the paper keeps color tied to the
//!   raw data value and only adapts *opacity*, Section 7),
//! - [`Iatf`] — the adaptive transfer function: a neural network trained on
//!   `<data value, cumulative histogram(value), time>` → opacity from a few
//!   user key-frame TFs, able to emit a concrete 1D TF for *any* time step.

pub mod colormap;
pub mod iatf;
pub mod keyframes;
pub mod tf1d;
pub mod tf2d;

/// Version of this crate's serialized model types (transfer functions,
/// IATFs) inside session artifacts. Bump on any breaking schema change.
pub const SCHEMA_VERSION: u32 = 1;

pub use colormap::ColorMap;
pub use iatf::{Iatf, IatfBuilder, IatfParams};
pub use keyframes::{classify_behavior, suggest_key_frames, TemporalBehavior};
pub use tf1d::TransferFunction1D;
pub use tf2d::TransferFunction2D;
