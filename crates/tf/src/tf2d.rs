//! Two-dimensional transfer functions over (data value, gradient magnitude).
//!
//! The paper's related-work section points at Kindlmann's transfer-function
//! course and the "transfer function bake-off" \[11, 17\]; the classic 2D
//! design separates materials by value and *boundaries* by gradient
//! magnitude. It is a useful non-learning baseline for this repo: it adds
//! one derived property, but — unlike the IATF — it is still static in time
//! and still cannot encode neighborhood *size*.

use ifet_volume::sample::gradient_magnitude_volume;
use ifet_volume::{Mask3, ScalarVolume};
use serde::{Deserialize, Serialize};

/// Table resolution per axis.
pub const TF2D_BINS: usize = 64;

/// A 2D opacity transfer function over `(value, gradient magnitude)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferFunction2D {
    v_lo: f32,
    v_hi: f32,
    g_lo: f32,
    g_hi: f32,
    /// Row-major `TF2D_BINS × TF2D_BINS` opacity table (value-major).
    opacity: Vec<f32>,
}

impl TransferFunction2D {
    /// All-transparent TF over the given value and gradient domains.
    pub fn transparent(v_domain: (f32, f32), g_domain: (f32, f32)) -> Self {
        assert!(v_domain.1 > v_domain.0, "invalid value domain");
        assert!(g_domain.1 > g_domain.0, "invalid gradient domain");
        Self {
            v_lo: v_domain.0,
            v_hi: v_domain.1,
            g_lo: g_domain.0,
            g_hi: g_domain.1,
            opacity: vec![0.0; TF2D_BINS * TF2D_BINS],
        }
    }

    /// Build by evaluating `f(value, gradient_magnitude)` at bin centers.
    pub fn from_fn(
        v_domain: (f32, f32),
        g_domain: (f32, f32),
        mut f: impl FnMut(f32, f32) -> f32,
    ) -> Self {
        let mut tf = Self::transparent(v_domain, g_domain);
        for vi in 0..TF2D_BINS {
            let v = tf.v_lo + (tf.v_hi - tf.v_lo) * (vi as f32 + 0.5) / TF2D_BINS as f32;
            for gi in 0..TF2D_BINS {
                let g = tf.g_lo + (tf.g_hi - tf.g_lo) * (gi as f32 + 0.5) / TF2D_BINS as f32;
                tf.opacity[vi * TF2D_BINS + gi] = f(v, g).clamp(0.0, 1.0);
            }
        }
        tf
    }

    /// A rectangular 2D band: `peak` opacity for values in `[v0, v1]` AND
    /// gradient magnitudes in `[g0, g1]`.
    pub fn band(
        v_domain: (f32, f32),
        g_domain: (f32, f32),
        v_band: (f32, f32),
        g_band: (f32, f32),
        peak: f32,
    ) -> Self {
        Self::from_fn(v_domain, g_domain, |v, g| {
            if v >= v_band.0 && v <= v_band.1 && g >= g_band.0 && g <= g_band.1 {
                peak
            } else {
                0.0
            }
        })
    }

    /// Boundary-emphasis TF: opacity grows with gradient magnitude inside a
    /// value band (the classic "show me material interfaces" design).
    pub fn boundary_emphasis(
        v_domain: (f32, f32),
        g_domain: (f32, f32),
        v_band: (f32, f32),
        peak: f32,
    ) -> Self {
        let g_span = (g_domain.1 - g_domain.0).max(1e-12);
        Self::from_fn(v_domain, g_domain, |v, g| {
            if v >= v_band.0 && v <= v_band.1 {
                peak * ((g - g_domain.0) / g_span).clamp(0.0, 1.0)
            } else {
                0.0
            }
        })
    }

    /// Opacity for a `(value, gradient magnitude)` pair (clamped lookup).
    pub fn opacity_at(&self, v: f32, g: f32) -> f32 {
        let vi = bin_of(v, self.v_lo, self.v_hi);
        let gi = bin_of(g, self.g_lo, self.g_hi);
        self.opacity[vi * TF2D_BINS + gi]
    }

    /// The `(value, gradient)` domains.
    pub fn domains(&self) -> ((f32, f32), (f32, f32)) {
        ((self.v_lo, self.v_hi), (self.g_lo, self.g_hi))
    }

    /// Classify a volume: voxels whose `(value, |∇|)` opacity reaches `tau`.
    /// Computes the gradient-magnitude field internally.
    pub fn extract_mask(&self, vol: &ScalarVolume, tau: f32) -> Mask3 {
        let grad = gradient_magnitude_volume(vol);
        let d = vol.dims();
        let mut m = Mask3::empty(d);
        for (i, (&v, &g)) in vol.as_slice().iter().zip(grad.as_slice()).enumerate() {
            if self.opacity_at(v, g) >= tau {
                m.set_linear(i, true);
            }
        }
        m
    }
}

#[inline]
fn bin_of(x: f32, lo: f32, hi: f32) -> usize {
    let t = (x - lo) / (hi - lo);
    ((t * TF2D_BINS as f32).floor() as i64).clamp(0, TF2D_BINS as i64 - 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifet_volume::Dims3;

    #[test]
    fn band_selects_joint_condition() {
        let tf = TransferFunction2D::band((0.0, 1.0), (0.0, 2.0), (0.4, 0.6), (1.0, 2.0), 0.9);
        assert_eq!(tf.opacity_at(0.5, 1.5), 0.9);
        assert_eq!(tf.opacity_at(0.5, 0.2), 0.0); // right value, wrong gradient
        assert_eq!(tf.opacity_at(0.9, 1.5), 0.0); // wrong value, right gradient
    }

    #[test]
    fn lookup_clamps_out_of_domain() {
        let tf = TransferFunction2D::band((0.0, 1.0), (0.0, 1.0), (0.0, 1.0), (0.0, 1.0), 1.0);
        assert_eq!(tf.opacity_at(-5.0, 99.0), 1.0);
    }

    #[test]
    fn boundary_emphasis_grows_with_gradient() {
        let tf = TransferFunction2D::boundary_emphasis((0.0, 1.0), (0.0, 1.0), (0.0, 1.0), 1.0);
        assert!(tf.opacity_at(0.5, 0.9) > tf.opacity_at(0.5, 0.1));
        assert!(tf.opacity_at(0.5, 0.05) < 0.2);
    }

    #[test]
    fn extract_mask_separates_boundary_from_interior() {
        // A solid ball: interior has value 1 and ~zero gradient; the shell
        // has value ~1 and high gradient. A 2D TF can pick the shell only —
        // something no 1D value TF can do.
        let n = 20;
        let c = (n as f32 - 1.0) / 2.0;
        let vol = ScalarVolume::from_fn(Dims3::cube(n), |x, y, z| {
            let d =
                ((x as f32 - c).powi(2) + (y as f32 - c).powi(2) + (z as f32 - c).powi(2)).sqrt();
            if d <= 6.0 {
                1.0
            } else {
                0.0
            }
        });
        let tf = TransferFunction2D::band((0.0, 1.0), (0.0, 1.0), (0.2, 1.0), (0.2, 1.0), 1.0);
        let shell = tf.extract_mask(&vol, 0.5);
        // The deep interior is excluded (zero gradient)...
        assert!(!shell.get(10, 10, 10), "ball center must not be selected");
        // ...but the boundary region is present.
        assert!(shell.count() > 50, "shell voxels: {}", shell.count());
        // Everything selected really is near the surface: high gradient.
        let grad = ifet_volume::sample::gradient_magnitude_volume(&vol);
        for (x, y, z) in shell.set_coords() {
            assert!(*grad.get(x, y, z) >= 0.2);
        }
    }

    #[test]
    fn serde_roundtrip() {
        let tf = TransferFunction2D::band((0.0, 2.0), (0.0, 3.0), (0.5, 1.0), (1.0, 2.0), 0.7);
        let json = serde_json::to_string(&tf).unwrap();
        let back: TransferFunction2D = serde_json::from_str(&json).unwrap();
        assert_eq!(tf, back);
    }

    #[test]
    #[should_panic]
    fn invalid_domain_panics() {
        let _ = TransferFunction2D::transparent((1.0, 1.0), (0.0, 1.0));
    }
}
