//! Key-frame selection support.
//!
//! The paper's related work (Jankun-Kelly & Ma \[9\]) generates "a minimum set
//! of transfer functions to visualize time-varying volume data" and
//! categorizes temporal behaviour into "regular, periodic, and random/hot
//! spot". This module provides the data-driven side of that workflow for the
//! IATF: measure how much the value distribution changes between frames,
//! classify the sequence's behaviour, and *suggest* which time steps the
//! user should paint key frames on — the frames where a TF trained elsewhere
//! would drift most.

use ifet_volume::{FrameSource, Histogram};
use serde::{Deserialize, Serialize};

/// L1 distance between two normalized histograms (total variation × 2).
/// Saturates at 2 once supports are disjoint — fine for "did it change",
/// blind to "by how much". Use [`emd_distance`] when magnitude matters.
pub fn histogram_distance(a: &Histogram, b: &Histogram) -> f64 {
    assert_eq!(a.bins(), b.bins(), "histogram bin counts differ");
    let na = a.normalized();
    let nb = b.normalized();
    na.iter().zip(&nb).map(|(x, y)| (x - y).abs()).sum()
}

/// 1D Wasserstein (earth mover's) distance between normalized histograms,
/// normalized so that moving all mass across the whole range equals 1.
/// Unlike L1, this keeps growing with the *size* of a distribution shift,
/// which is what key-frame placement needs.
pub fn emd_distance(a: &Histogram, b: &Histogram) -> f64 {
    assert_eq!(a.bins(), b.bins(), "histogram bin counts differ");
    let na = a.normalized();
    let nb = b.normalized();
    let mut cdf_gap = 0.0f64;
    let mut acc = 0.0f64;
    for (x, y) in na.iter().zip(&nb) {
        acc += x - y;
        cdf_gap += acc.abs();
    }
    cdf_gap / a.bins() as f64
}

/// Per-frame histograms over the series' global range (comparable bins).
/// Frames stream through one at a time, so a paged source never exceeds its
/// residency bound here.
fn series_histograms<S: FrameSource + ?Sized>(series: &S, bins: usize) -> Vec<Histogram> {
    let (lo, hi) = series.global_range().unwrap_or_else(|e| panic!("{e}"));
    (0..series.len())
        .map(|i| {
            let f = series.frame(i).unwrap_or_else(|e| panic!("{e}"));
            Histogram::of_values(f.as_slice(), bins, lo, hi)
        })
        .collect()
}

/// Distribution change between consecutive frames.
pub fn change_curve<S: FrameSource + ?Sized>(series: &S, bins: usize) -> Vec<f64> {
    let hs = series_histograms(series, bins);
    hs.windows(2)
        .map(|w| histogram_distance(&w[0], &w[1]))
        .collect()
}

/// Jankun-Kelly & Ma's behaviour categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TemporalBehavior {
    /// Distribution barely changes: one transfer function suffices.
    Regular,
    /// Distribution changes then (approximately) revisits earlier states.
    Periodic,
    /// Distribution keeps moving to new states: needs adaptive treatment.
    Drifting,
}

/// Classify a series' temporal behaviour from its histogram trajectory.
///
/// - total change below `regular_tol` → `Regular`;
/// - otherwise, if some later frame returns close to the first frame's
///   distribution (within half the maximum excursion) → `Periodic`;
/// - otherwise `Drifting`.
pub fn classify_behavior<S: FrameSource + ?Sized>(
    series: &S,
    bins: usize,
    regular_tol: f64,
) -> TemporalBehavior {
    if series.len() < 2 {
        return TemporalBehavior::Regular;
    }
    let hs = series_histograms(series, bins);
    let from_first: Vec<f64> = hs[1..]
        .iter()
        .map(|h| histogram_distance(&hs[0], h))
        .collect();
    let max_exc = from_first.iter().cloned().fold(0.0, f64::max);
    if max_exc < regular_tol {
        return TemporalBehavior::Regular;
    }
    // Did the excursion peak strictly inside the sequence and come back?
    let last = *from_first.last().unwrap();
    if last < 0.5 * max_exc {
        TemporalBehavior::Periodic
    } else {
        TemporalBehavior::Drifting
    }
}

/// Suggest up to `max_keys` time steps for the user to paint key frames on.
///
/// Greedy farthest-point selection in histogram space: start with the first
/// and last frames (the IATF's temporal anchors), then repeatedly add the
/// frame whose distribution is farthest from every already-chosen frame,
/// stopping early when the farthest remaining distance drops below
/// `min_gain`. Returned steps are sorted.
pub fn suggest_key_frames<S: FrameSource + ?Sized>(
    series: &S,
    bins: usize,
    max_keys: usize,
    min_gain: f64,
) -> Vec<u32> {
    assert!(max_keys >= 1);
    let n = series.len();
    if n == 1 || max_keys == 1 {
        return vec![series.steps()[0]];
    }
    let hs = series_histograms(series, bins);
    let mut chosen: Vec<usize> = vec![0, n - 1];
    while chosen.len() < max_keys.min(n) {
        // Farthest-point (k-center) selection under EMD: pick the frame
        // whose distribution is least covered by the chosen keys.
        let (best_idx, best_dist) = (0..n)
            .filter(|i| !chosen.contains(i))
            .map(|i| {
                let d = chosen
                    .iter()
                    .map(|&c| emd_distance(&hs[i], &hs[c]))
                    .fold(f64::INFINITY, f64::min);
                (i, d)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap_or((0, 0.0));
        if best_dist < min_gain {
            break;
        }
        chosen.push(best_idx);
    }
    chosen.sort_unstable();
    chosen.into_iter().map(|i| series.steps()[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifet_volume::{Dims3, ScalarVolume, TimeSeries};

    fn shifted_series(shifts: &[f32]) -> TimeSeries {
        let d = Dims3::cube(10);
        let n = d.len();
        TimeSeries::from_frames(
            shifts
                .iter()
                .enumerate()
                .map(|(k, &s)| {
                    (
                        k as u32 * 10,
                        ScalarVolume::from_vec(
                            d,
                            (0..n).map(|i| i as f32 / n as f32 + s).collect(),
                        ),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn histogram_distance_basics() {
        let a = Histogram::of_values(&[0.0, 0.1, 0.2], 8, 0.0, 1.0);
        assert_eq!(histogram_distance(&a, &a), 0.0);
        let b = Histogram::of_values(&[0.8, 0.9, 1.0], 8, 0.0, 1.0);
        let d = histogram_distance(&a, &b);
        assert!(
            d > 1.9,
            "disjoint distributions should be ~2 apart, got {d}"
        );
    }

    #[test]
    fn emd_grows_with_shift_where_l1_saturates() {
        let a = Histogram::of_values(&[0.0, 0.05, 0.1], 64, 0.0, 1.0);
        let near = Histogram::of_values(&[0.3, 0.35, 0.4], 64, 0.0, 1.0);
        let far = Histogram::of_values(&[0.8, 0.85, 0.9], 64, 0.0, 1.0);
        // L1 is saturated for both (disjoint supports)...
        assert!((histogram_distance(&a, &near) - histogram_distance(&a, &far)).abs() < 1e-9);
        // ...but EMD still distinguishes them.
        assert!(emd_distance(&a, &far) > 2.0 * emd_distance(&a, &near));
        assert_eq!(emd_distance(&a, &a), 0.0);
    }

    #[test]
    fn emd_is_symmetric() {
        let a = Histogram::of_values(&[0.1, 0.2, 0.3], 32, 0.0, 1.0);
        let b = Histogram::of_values(&[0.6, 0.7], 32, 0.0, 1.0);
        assert!((emd_distance(&a, &b) - emd_distance(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn change_curve_flags_the_jump() {
        let s = shifted_series(&[0.0, 0.0, 0.5, 0.5]);
        let c = change_curve(&s, 32);
        assert_eq!(c.len(), 3);
        assert!(c[1] > c[0] + 0.2 && c[1] > c[2] + 0.2, "{c:?}");
    }

    #[test]
    fn constant_series_is_regular() {
        let s = shifted_series(&[0.1, 0.1, 0.1, 0.1]);
        assert_eq!(classify_behavior(&s, 32, 0.1), TemporalBehavior::Regular);
    }

    #[test]
    fn monotone_drift_is_drifting() {
        let s = shifted_series(&[0.0, 0.2, 0.4, 0.6]);
        assert_eq!(classify_behavior(&s, 32, 0.1), TemporalBehavior::Drifting);
    }

    #[test]
    fn out_and_back_is_periodic() {
        let s = shifted_series(&[0.0, 0.4, 0.8, 0.4, 0.02]);
        assert_eq!(classify_behavior(&s, 32, 0.1), TemporalBehavior::Periodic);
    }

    #[test]
    fn single_frame_is_regular() {
        let s = shifted_series(&[0.3]);
        assert_eq!(classify_behavior(&s, 32, 0.1), TemporalBehavior::Regular);
    }

    #[test]
    fn suggestions_include_endpoints() {
        let s = shifted_series(&[0.0, 0.1, 0.2, 0.3, 0.4]);
        let keys = suggest_key_frames(&s, 32, 3, 0.0);
        assert!(keys.contains(&0));
        assert!(keys.contains(&40));
        assert_eq!(keys.len(), 3);
    }

    #[test]
    fn suggestions_find_the_anomalous_frame() {
        // Frames drift linearly except one outlier; the third key frame
        // should be the outlier (farthest from the endpoints).
        let s = shifted_series(&[0.0, 0.05, 0.6, 0.15, 0.2]);
        let keys = suggest_key_frames(&s, 64, 3, 0.0);
        assert!(keys.contains(&20), "outlier frame not suggested: {keys:?}");
    }

    #[test]
    fn min_gain_stops_early_on_regular_data() {
        let s = shifted_series(&[0.1, 0.1, 0.1, 0.1, 0.1]);
        let keys = suggest_key_frames(&s, 32, 5, 0.05);
        assert_eq!(
            keys.len(),
            2,
            "regular data needs only the anchors: {keys:?}"
        );
    }

    #[test]
    fn max_keys_one_returns_first() {
        let s = shifted_series(&[0.0, 0.5]);
        assert_eq!(suggest_key_frames(&s, 32, 1, 0.0), vec![0]);
    }

    #[test]
    fn suggestions_are_sorted_steps() {
        let s = shifted_series(&[0.0, 0.3, 0.1, 0.5, 0.2, 0.6]);
        let keys = suggest_key_frames(&s, 32, 4, 0.0);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }
}
