//! Property-based tests for transfer functions.

use ifet_tf::tf1d::TF_ENTRIES;
use ifet_tf::{ColorMap, TransferFunction1D};
use proptest::prelude::*;

fn domain() -> impl Strategy<Value = (f32, f32)> {
    (-10.0f32..10.0, 0.1f32..20.0).prop_map(|(lo, span)| (lo, lo + span))
}

proptest! {
    #[test]
    fn band_opacity_only_inside_band((lo, hi) in domain(),
                                     a in 0.0f32..1.0, b in 0.0f32..1.0,
                                     peak in 0.05f32..1.0) {
        let span = hi - lo;
        let (ba, bb) = (lo + span * a.min(b), lo + span * a.max(b));
        let tf = TransferFunction1D::band(lo, hi, ba, bb, peak);
        // Inside (away from entry-quantization edges) the opacity is `peak`.
        let entry_w = span / TF_ENTRIES as f32;
        if bb - ba > 2.0 * entry_w {
            let mid = 0.5 * (ba + bb);
            prop_assert_eq!(tf.opacity_at(mid), peak);
        }
        // Well outside it is zero.
        if ba - lo > 2.0 * entry_w {
            prop_assert_eq!(tf.opacity_at(lo + 0.5 * entry_w), 0.0);
        }
    }

    #[test]
    fn entry_value_roundtrip((lo, hi) in domain(), i in 0usize..TF_ENTRIES) {
        let tf = TransferFunction1D::transparent(lo, hi);
        prop_assert_eq!(tf.entry_of(tf.value_of_entry(i)), i);
    }

    #[test]
    fn lerp_is_bounded_by_endpoints((lo, hi) in domain(), alpha in 0.0f32..1.0,
                                    c1 in 0.0f32..1.0, c2 in 0.0f32..1.0) {
        let a = TransferFunction1D::from_fn(lo, hi, |v| ((v - lo) / (hi - lo)) * c1);
        let b = TransferFunction1D::from_fn(lo, hi, |v| (1.0 - (v - lo) / (hi - lo)) * c2);
        let m = TransferFunction1D::lerp(&a, &b, alpha);
        for i in (0..TF_ENTRIES).step_by(17) {
            let x = a.table()[i];
            let y = b.table()[i];
            let z = m.table()[i];
            prop_assert!(z >= x.min(y) - 1e-6 && z <= x.max(y) + 1e-6);
        }
    }

    #[test]
    fn lerp_alpha_clamps((lo, hi) in domain(), alpha in -3.0f32..4.0) {
        let a = TransferFunction1D::band(lo, hi, lo, lo + (hi - lo) * 0.3, 1.0);
        let b = TransferFunction1D::transparent(lo, hi);
        let m = TransferFunction1D::lerp(&a, &b, alpha);
        for &o in m.table() {
            prop_assert!((0.0..=1.0).contains(&o));
        }
    }

    #[test]
    fn from_fn_output_always_clamped((lo, hi) in domain(), scale in -5.0f32..5.0) {
        let tf = TransferFunction1D::from_fn(lo, hi, |v| v * scale);
        for &o in tf.table() {
            prop_assert!((0.0..=1.0).contains(&o));
        }
    }

    #[test]
    fn control_points_hit_their_anchors((lo, hi) in domain(),
                                        o1 in 0.0f32..1.0, o2 in 0.0f32..1.0) {
        let span = hi - lo;
        let p1 = lo + span * 0.25;
        let p2 = lo + span * 0.75;
        let tf = TransferFunction1D::from_control_points(lo, hi, &[(p1, o1), (p2, o2)]);
        prop_assert!((tf.opacity_at(p1) - o1).abs() < 0.05, "{} vs {o1}", tf.opacity_at(p1));
        prop_assert!((tf.opacity_at(p2) - o2).abs() < 0.05);
        // Outside the anchors, opacity is held constant.
        prop_assert!((tf.opacity_at(lo) - o1).abs() < 1e-6);
        prop_assert!((tf.opacity_at(hi - span / 512.0) - o2).abs() < 1e-6);
    }

    #[test]
    fn support_is_consistent_with_table((lo, hi) in domain(), a in 0.1f32..0.4, w in 0.1f32..0.4) {
        let span = hi - lo;
        let tf = TransferFunction1D::band(lo, hi, lo + span * a, lo + span * (a + w), 0.8);
        let (slo, shi) = tf.support(0.5).unwrap();
        prop_assert!(tf.opacity_at(slo) > 0.5);
        prop_assert!(tf.opacity_at(shi) > 0.5);
        prop_assert!(slo <= shi);
    }

    #[test]
    fn colormaps_valid_for_any_input(t in -2.0f32..3.0) {
        for m in [ColorMap::Grayscale, ColorMap::Rainbow, ColorMap::Heat, ColorMap::CoolWarm] {
            for c in m.sample(t) {
                prop_assert!((0.0..=1.0).contains(&c), "{m:?} at {t}: {c}");
            }
        }
    }

    #[test]
    fn resample_preserves_value_mapping((lo, hi) in domain(), grow in 1.0f32..3.0) {
        let span = hi - lo;
        let tf = TransferFunction1D::band(lo, hi, lo + span * 0.4, lo + span * 0.6, 1.0);
        let wide = tf.resampled(lo - span * (grow - 1.0), hi + span * (grow - 1.0));
        // The band center keeps full opacity after resampling.
        prop_assert_eq!(wide.opacity_at(lo + span * 0.5), 1.0);
    }
}
