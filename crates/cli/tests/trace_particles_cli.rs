//! End-to-end CLI coverage for `generate-flow` / `trace-particles`: the
//! full user journey (write a velocity field, trace an ensemble, save the
//! pathline artifact), the out-of-core byte-identity + residency witness,
//! feature-seeded tracing (`--seed-from-track`), artifact round-trip and
//! corruption behavior, and the `ifet track` merge-target lines.

use ifet_cli::{parse_args, run};
use ifet_core::prelude::*;
use ifet_trace::{load_pathlines, pathlines_to_bytes, PathlineIoError};
use ifet_volume::io::write_series_with;
use std::path::Path;

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

fn ifet(cmd: &str) -> Result<String, String> {
    run(&parse_args(&argv(cmd)).unwrap())
}

fn tdir(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("ifet_cli_tp_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.to_str().unwrap().to_string()
}

#[test]
fn generate_flow_then_trace_end_to_end() {
    let d = tdir("e2e");
    let msg = ifet(&format!(
        "generate-flow rotation --out {d} --dims 20 --frames 5 --stride 2"
    ))
    .unwrap();
    assert!(msg.contains("15 velocity frames"), "{msg}");

    let out = ifet(&format!(
        "trace-particles --flow {d} --seed-grid 3 --seed 10.5,9.25,4.0 \
         --rk4-dt 0.5 --out {d}/paths.plz --surrogate-epochs 30"
    ))
    .unwrap();
    assert!(out.contains("traced 28 particles"), "{out}");
    assert!(out.contains("rk4 dt 0.5"), "{out}");
    assert!(out.contains("median endpoint error"), "{out}");
    assert!(Path::new(&format!("{d}/paths.plz")).exists());
    assert!(
        Path::new(&format!("{d}/paths.plz.json")).exists(),
        "sidecar must ride along"
    );

    // Save → load → save is byte-identical.
    let bytes = std::fs::read(format!("{d}/paths.plz")).unwrap();
    let set = load_pathlines(Path::new(&format!("{d}/paths.plz"))).unwrap();
    assert_eq!(set.pathlines.len(), 28);
    assert_eq!(
        pathlines_to_bytes(&set),
        bytes,
        "re-serialized pathlines must match the on-disk artifact exactly"
    );
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn corrupted_pathline_artifacts_fail_typed() {
    let d = tdir("corrupt");
    ifet(&format!(
        "generate-flow uniform --out {d} --dims 12 --frames 3"
    ))
    .unwrap();
    ifet(&format!(
        "trace-particles --flow {d} --seed-grid 2 --out {d}/p.plz"
    ))
    .unwrap();
    let clean = std::fs::read(format!("{d}/p.plz")).unwrap();
    let victim = format!("{d}/flip.plz");

    // Single-byte-flip sweep: every flip is *detected* with a typed error —
    // magic flips as BadMagic, anything else by the trailing CRC.
    for i in (0..clean.len()).step_by(7).chain([clean.len() - 1]) {
        let mut bad = clean.clone();
        bad[i] ^= 0x40;
        std::fs::write(&victim, &bad).unwrap();
        match load_pathlines(Path::new(&victim)) {
            Err(PathlineIoError::BadMagic) => assert!(i < 8, "byte {i}"),
            Err(PathlineIoError::Checksum { .. }) => assert!(i >= 8, "byte {i}"),
            other => panic!("flip at byte {i} gave {other:?}"),
        }
    }

    // Truncation is typed too.
    std::fs::write(&victim, &clean[..clean.len() / 2]).unwrap();
    assert!(matches!(
        load_pathlines(Path::new(&victim)),
        Err(PathlineIoError::Checksum { .. }) | Err(PathlineIoError::Truncated { .. })
    ));
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn trace_ooc_matches_in_core_and_stays_bounded() {
    let d = tdir("ooc");
    ifet(&format!(
        "generate-flow swirl --out {d} --dims 16 --frames 6 --stride 2"
    ))
    .unwrap();
    let trace = |extra: &str| {
        ifet(&format!(
            "trace-particles --flow {d} --seed-grid 3 --rk4-dt 0.5 --threads 2{extra}"
        ))
        .unwrap()
    };
    let reference = trace("");

    let paged = trace(" --ooc-cache 2 --prefetch 1");
    let (body, summaries) = paged
        .split_once("u ooc:")
        .expect("paged run must append per-component ooc summaries");
    assert_eq!(body, reference, "out-of-core output must be byte-identical");

    // The residency witness, per velocity component: at most 2 frames of
    // each component were ever resident.
    for name in ["u", "v", "w"] {
        assert!(
            summaries.contains(&format!("{name} ooc: prefetch depth 1"))
                || name == "u" && summaries.contains("prefetch depth 1"),
            "missing {name} summary:\n{summaries}"
        );
    }
    for hw in format!("u ooc:{summaries}")
        .split("resident high-water ")
        .skip(1)
        .map(|s| {
            s.split(',')
                .next()
                .unwrap()
                .trim()
                .parse::<usize>()
                .expect("high-water mark")
        })
    {
        assert!(hw <= 2, "resident high-water {hw} exceeds --ooc-cache 2");
    }
    std::fs::remove_dir_all(&d).ok();
}

/// Two bright balls drifting toward each other until they touch: frames
/// 0..=2 have two components, frame 3 one — a Merge event, and two tracks
/// ending `merged into` the absorbing track.
fn write_merging_series(tag: &str, dim: usize) -> String {
    let d = Dims3::cube(dim);
    let series = TimeSeries::from_frames(
        (0..4u32)
            .map(|k| {
                let ax = 4.0 + 1.5 * k as f32;
                let bx = (dim - 5) as f32 - 1.5 * k as f32;
                let c = (dim / 2) as f32;
                let vol = ScalarVolume::from_fn(d, move |x, y, z| {
                    let da =
                        ((x as f32 - ax).powi(2) + (y as f32 - c).powi(2) + (z as f32 - c).powi(2))
                            .sqrt();
                    let db =
                        ((x as f32 - bx).powi(2) + (y as f32 - c).powi(2) + (z as f32 - c).powi(2))
                            .sqrt();
                    if da <= 2.2 || db <= 2.2 {
                        2.0
                    } else {
                        0.0
                    }
                });
                (k * 2, vol)
            })
            .collect(),
    );
    let dir = tdir(tag);
    write_series_with(Path::new(&dir), "merge", &series, false).unwrap();
    dir
}

#[test]
fn track_prints_merge_targets() {
    let dim = 16;
    let d = write_merging_series("merge", dim);
    let c = dim / 2;
    let out = ifet(&format!("track --data {d} --seed 4,{c},{c} --band 1.0:3.0")).unwrap();
    assert!(out.contains("Merge"), "no merge event:\n{out}");
    assert!(out.contains("tracks:"), "{out}");
    // Both parents name the absorbing track by id.
    let merged_lines: Vec<&str> = out
        .lines()
        .filter(|l| l.contains("merged into #"))
        .collect();
    assert_eq!(
        merged_lines.len(),
        2,
        "both parents must report their merge target:\n{out}"
    );
    let target = merged_lines[0]
        .rsplit('#')
        .next()
        .unwrap()
        .trim()
        .to_string();
    assert!(
        merged_lines[1].ends_with(&format!("merged into #{target}")),
        "parents disagree on the merge target:\n{out}"
    );
    assert!(
        out.contains(&format!("#{target}")),
        "the absorbing track itself must be listed:\n{out}"
    );
    std::fs::remove_dir_all(&d).ok();
}

#[test]
fn seed_from_track_drops_particles_inside_the_grown_mask() {
    let dim = 16;
    let data = write_merging_series("seedmask", dim);
    let flow = tdir("seedflow");
    ifet(&format!(
        "generate-flow uniform --out {flow} --dims {dim} --frames 4 --stride 2"
    ))
    .unwrap();
    let c = dim / 2;
    let out = ifet(&format!(
        "trace-particles --flow {flow} --seed-from-track --data {data} \
         --band 1.0:3.0 --track-seed 4,{c},{c} --out {flow}/seeded.plz"
    ))
    .unwrap();
    assert!(out.contains("traced"), "{out}");

    // Recompute the frame-0 grown mask independently and check every
    // particle seed starts inside it.
    let series = {
        let mut paths: Vec<_> = std::fs::read_dir(&data)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().map(|x| x == "raw").unwrap_or(false))
            .collect();
        paths.sort();
        ifet_volume::io::read_series(&paths).unwrap()
    };
    let session = VisSession::new(series).unwrap();
    let result = session.track_fixed(&[(0, 4, c, c)], 1.0, 3.0).unwrap();
    let mask = &result.masks[0];
    assert!(mask.count() > 0);

    let set = load_pathlines(Path::new(&format!("{flow}/seeded.plz"))).unwrap();
    assert_eq!(
        set.pathlines.len(),
        mask.count(),
        "one particle per set voxel of the frame-0 mask"
    );
    for p in &set.pathlines {
        let [x, y, z] = p.seed;
        assert_eq!(x.fract(), 0.0, "mask seeds sit on voxel centers");
        assert!(
            mask.get(x as usize, y as usize, z as usize),
            "particle seeded at ({x}, {y}, {z}) is outside the grown mask"
        );
    }
    std::fs::remove_dir_all(&data).ok();
    std::fs::remove_dir_all(&flow).ok();
}
