//! End-to-end CLI observability: `--trace`/`--profile`/`--trace-mode` on
//! real subcommand runs, stable-trace byte-identity across `--threads`, and
//! the painted data-space tracking path (`session save --paint` +
//! `track --session --dataspace-tau`).
//!
//! One test function on purpose: captures serialize process-wide, but any
//! concurrently running *uncaptured* instrumented code would leak counters
//! into whichever capture is live. A single test keeps the binary race-free.

use ifet_cli::{parse_args, run};
use ifet_core::obs;
use ifet_core::persist::ArtifactReader;

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

fn ifet(cmd: &str) -> Result<String, String> {
    run(&parse_args(&argv(cmd)).unwrap())
}

#[test]
fn trace_profile_and_dataspace_cli_end_to_end() {
    let dir = std::env::temp_dir().join(format!("ifet_cli_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let d = dir.to_str().unwrap().to_string();

    ifet(&format!(
        "generate shock-bubble --out {d} --dims 16 --seed 3"
    ))
    .unwrap();

    // Aim fixed-band tracking at the hottest voxel of frame 0.
    let info = ifet(&format!("info --data {d}")).unwrap();
    assert!(info.contains("frames of 16x16x16"), "{info}");
    // (The CLI has no "argmax" query; recompute it from the raw frames.)
    let series = {
        let mut paths: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.extension().map(|x| x == "raw").unwrap_or(false)
                    && !p.file_name().unwrap().to_str().unwrap().contains("_truth")
            })
            .collect();
        paths.sort();
        ifet_volume::io::read_series(&paths).unwrap()
    };
    let (_, f0) = series.iter().next().unwrap();
    let (mut bi, mut bv) = (0usize, f32::MIN);
    for (i, &v) in f0.as_slice().iter().enumerate() {
        if v > bv {
            bv = v;
            bi = i;
        }
    }
    let (x, y, z) = series.dims().coords(bi);
    let (glo, ghi) = series.global_range();
    let lo = bv - 0.25 * (ghi - glo);

    // --- acceptance: track --trace --profile across --threads 1/2/4 ---
    let mut stable_traces = Vec::new();
    for threads in [1usize, 2, 4] {
        let path = dir.join(format!("trace_t{threads}.json"));
        let out = ifet(&format!(
            "track --data {d} --seed {x},{y},{z} --band {lo}:{ghi} --threads {threads} \
             --trace {} --profile --trace-mode stable",
            path.display()
        ))
        .unwrap();
        assert!(out.contains("voxels"), "{out}");
        stable_traces.push(std::fs::read_to_string(path).unwrap());
    }
    assert_eq!(
        stable_traces[0], stable_traces[1],
        "stable trace counters must be byte-identical across thread counts"
    );
    assert_eq!(stable_traces[0], stable_traces[2]);

    // The emitted document is a parseable versioned span tree with the
    // promised structure: an ifet.track root over growth rounds.
    let trace = obs::Trace::from_json(&stable_traces[0]).unwrap();
    assert_eq!(trace.schema, obs::TRACE_SCHEMA_VERSION);
    assert_eq!(trace.mode, obs::TraceMode::Stable);
    assert_eq!(trace.root.name, "ifet.track");
    let grow = trace.root.find("track.grow_rounds").expect("grow span");
    assert!(grow.counter("grown_voxels").unwrap() > 0);
    assert!(trace.root.find("track.round").is_some());

    // Full mode keeps timings; the strict reader accepts it too.
    let full_path = dir.join("trace_full.json");
    ifet(&format!(
        "track --data {d} --seed {x},{y},{z} --band {lo}:{ghi} --trace {}",
        full_path.display()
    ))
    .unwrap();
    let full = obs::Trace::from_json(&std::fs::read_to_string(&full_path).unwrap()).unwrap();
    assert_eq!(full.mode, obs::TraceMode::Full);
    assert!(full.root.dur_ns > 0, "full mode records wall-clock time");

    // Bad mode is a clean error.
    let err = ifet(&format!(
        "track --data {d} --seed {x},{y},{z} --band {lo}:{ghi} --trace {} --trace-mode bogus",
        full_path.display()
    ))
    .unwrap_err();
    assert!(err.contains("trace-mode"), "{err}");

    // --- painted data-space tracking, end to end, traced ---
    let sess_path = dir.join("painted.ifet");
    let step0 = series.steps()[0];
    let save_trace = dir.join("save_trace.json");
    let msg = ifet(&format!(
        "session save --data {d} --out {} --paint {step0}:60 --clf-epochs 40 \
         --seed {x},{y},{z} --dataspace-tau 0.5 \
         --trace {} --trace-mode stable",
        sess_path.display(),
        save_trace.display()
    ))
    .unwrap();
    assert!(msg.contains("trained data-space classifier"), "{msg}");
    assert!(msg.contains("tracking"), "{msg}");

    // The traced save embedded a stable summary as the TRACE section, and
    // the trace itself shows classifier training + classification.
    let bytes = std::fs::read(&sess_path).unwrap();
    let r = ArtifactReader::parse(&bytes).unwrap();
    let embedded = r.section("TRACE").expect("traced save embeds TRACE");
    let embedded = obs::Trace::from_json(std::str::from_utf8(embedded).unwrap()).unwrap();
    assert_eq!(embedded.mode, obs::TraceMode::Stable);
    assert!(embedded.root.find("session.train_classifier").is_some());
    assert!(embedded.root.find("extract.classify_series").is_some());
    let file_trace = obs::Trace::from_json(&std::fs::read_to_string(&save_trace).unwrap()).unwrap();
    assert!(file_trace.root.find("nn.train").is_some());

    // The inventory reports the classifier; the saved artifact drives a
    // fresh data-space tracking run through `track --session`.
    let inv = ifet(&format!(
        "session load --data {d} --session {}",
        sess_path.display()
    ))
    .unwrap();
    assert!(inv.contains("classifier: trained"), "{inv}");
    assert!(inv.contains("DataSpace"), "{inv}");

    let out = ifet(&format!(
        "track --data {d} --session {} --dataspace-tau 0.5 --seed {x},{y},{z}",
        sess_path.display()
    ))
    .unwrap();
    assert!(out.contains("voxels"), "{out}");

    // An untraced save embeds nothing.
    let plain_path = dir.join("plain.ifet");
    ifet(&format!(
        "session save --data {d} --out {} --seed {x},{y},{z} --band {lo}:{ghi}",
        plain_path.display()
    ))
    .unwrap();
    let plain = std::fs::read(&plain_path).unwrap();
    assert!(!ArtifactReader::parse(&plain)
        .unwrap()
        .tags()
        .any(|t| t == "TRACE"));

    std::fs::remove_dir_all(dir).ok();
}
