//! The `ifet` command-line tool. See [`ifet_cli::USAGE`].

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match ifet_cli::parse_args(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", ifet_cli::USAGE);
            std::process::exit(2);
        }
    };
    match ifet_cli::run(&args) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
