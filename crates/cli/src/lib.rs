//! Command implementations and argument parsing for the `ifet` CLI.
//!
//! Subcommands:
//! - `generate <dataset> --out DIR [--dims N] [--seed S]` — write one of the
//!   five synthetic 4D datasets as raw bricks (+ ground-truth sidecars),
//! - `info --data DIR` — inventory a series on disk,
//! - `train-iatf --data DIR --key T:LO:HI ... --out FILE` — train the
//!   adaptive transfer function from key-frame value bands,
//! - `render --data DIR --step T (--iatf FILE | --band LO:HI) --out FILE.ppm`
//!   — ray-cast one frame,
//! - `track --data DIR --seed X,Y,Z (--iatf FILE --tau V | --band LO:HI |
//!   --session FILE --dataspace-tau V)` — 4D region growing with an
//!   adaptive, fixed, or data-space criterion; prints the per-frame voxel
//!   counts, events, and persistent tracks (with merge targets),
//! - `generate-flow <flow> --out DIR` — write an analytic velocity field as
//!   three scalar component series,
//! - `trace-particles --flow DIR` — RK4 pathline advection of a particle
//!   ensemble, with optional pathline artifact output and MLP flow-map
//!   surrogate training.
//!
//! Every subcommand additionally honours `--trace FILE` (versioned JSON
//! span tree), `--profile` (per-stage table on stderr), and
//! `--trace-mode full|stable` — see [`run`].

use ifet_core::obs;
use ifet_core::prelude::*;
use ifet_sim::flows::{flow_series, FlowKind};
use ifet_tf::Iatf;
use ifet_trace::{
    advect, save_pathlines, seed_grid, train_flow_map, ParticleEnding, SurrogateParams, TraceParams,
};
use ifet_volume::io::{read_series, write_series_with};
use ifet_volume::{
    map_frames_windowed, CacheBudget, CacheBudgetHandle, FrameSink, FrameSource, OutOfCoreSeries,
    OutOfCoreSink, SeriesError,
};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Options that take no value; `--profile` alone means "print the profile",
/// `--compress` selects bricked compressed frame output, `--mmap` pages
/// raw frames by zero-copy file mapping, and `--adaptive` asks
/// `client render-slice` for IATF-modulated opacity.
const BOOL_FLAGS: &[&str] = &["profile", "compress", "mmap", "adaptive", "seed-from-track"];

/// Parsed command line: subcommand, positional args, `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    pub command: String,
    pub positional: Vec<String>,
    pub options: HashMap<String, Vec<String>>,
}

/// Parse raw arguments (after the binary name). `--flag v` options may
/// repeat; repeated values accumulate.
pub fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut it = raw.iter().peekable();
    let command = it.next().ok_or("missing subcommand")?.clone();
    let mut positional = Vec::new();
    let mut options: HashMap<String, Vec<String>> = HashMap::new();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = if BOOL_FLAGS.contains(&name) {
                "true".to_string()
            } else {
                it.next()
                    .ok_or_else(|| format!("option --{name} needs a value"))?
                    .clone()
            };
            options.entry(name.to_string()).or_default().push(value);
        } else {
            positional.push(a.clone());
        }
    }
    Ok(Args {
        command,
        positional,
        options,
    })
}

impl Args {
    /// Single-valued option.
    pub fn opt(&self, name: &str) -> Option<&str> {
        self.options
            .get(name)
            .and_then(|v| v.last())
            .map(|s| s.as_str())
    }

    /// Required single-valued option.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.opt(name)
            .ok_or_else(|| format!("missing required --{name}"))
    }

    /// All values of a repeatable option.
    pub fn all(&self, name: &str) -> &[String] {
        self.options.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Presence of a valueless flag (see [`BOOL_FLAGS`]).
    pub fn flag(&self, name: &str) -> bool {
        self.options.contains_key(name)
    }

    pub fn opt_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.opt(name) {
            None => Ok(default),
            Some(s) => s.parse().map_err(|_| format!("invalid --{name}: {s:?}")),
        }
    }
}

/// Parse `T:LO:HI` key-frame specs.
pub fn parse_key_spec(s: &str) -> Result<(u32, f32, f32), String> {
    let parts: Vec<&str> = s.split(':').collect();
    if parts.len() != 3 {
        return Err(format!("key spec must be T:LO:HI, got {s:?}"));
    }
    let t = parts[0].parse().map_err(|_| format!("bad step in {s:?}"))?;
    let lo = parts[1].parse().map_err(|_| format!("bad lo in {s:?}"))?;
    let hi: f32 = parts[2].parse().map_err(|_| format!("bad hi in {s:?}"))?;
    if hi <= lo {
        return Err(format!("key spec {s:?}: hi must exceed lo"));
    }
    Ok((t, lo, hi))
}

/// Parse `STEP:N` oracle-paint specs (paint N positive + N negative voxels
/// from the ground-truth sidecar of time step STEP).
pub fn parse_paint_spec(s: &str) -> Result<(u32, usize), String> {
    let parts: Vec<&str> = s.split(':').collect();
    if parts.len() != 2 {
        return Err(format!("paint spec must be STEP:N, got {s:?}"));
    }
    let t = parts[0].parse().map_err(|_| format!("bad step in {s:?}"))?;
    let n: usize = parts[1]
        .parse()
        .map_err(|_| format!("bad count in {s:?}"))?;
    if n == 0 {
        return Err(format!("paint spec {s:?}: count must be positive"));
    }
    Ok((t, n))
}

/// Parse `X,Y,Z` voxel coordinates.
pub fn parse_voxel(s: &str) -> Result<(usize, usize, usize), String> {
    let parts: Vec<&str> = s.split(',').collect();
    if parts.len() != 3 {
        return Err(format!("voxel must be X,Y,Z, got {s:?}"));
    }
    let p = |i: usize| {
        parts[i]
            .parse::<usize>()
            .map_err(|_| format!("bad coordinate in {s:?}"))
    };
    Ok((p(0)?, p(1)?, p(2)?))
}

/// Parse `X,Y,Z` fractional particle-seed positions (voxel-index units).
pub fn parse_seed(s: &str) -> Result<[f64; 3], String> {
    let parts: Vec<&str> = s.split(',').collect();
    if parts.len() != 3 {
        return Err(format!("seed must be X,Y,Z, got {s:?}"));
    }
    let p = |i: usize| {
        parts[i]
            .parse::<f64>()
            .map_err(|_| format!("bad coordinate in {s:?}"))
    };
    Ok([p(0)?, p(1)?, p(2)?])
}

/// Parse `LO:HI` bands.
pub fn parse_band(s: &str) -> Result<(f32, f32), String> {
    let parts: Vec<&str> = s.split(':').collect();
    if parts.len() != 2 {
        return Err(format!("band must be LO:HI, got {s:?}"));
    }
    let lo = parts[0].parse().map_err(|_| format!("bad lo in {s:?}"))?;
    let hi: f32 = parts[1].parse().map_err(|_| format!("bad hi in {s:?}"))?;
    if hi <= lo {
        return Err(format!("band {s:?}: hi must exceed lo"));
    }
    Ok((lo, hi))
}

/// Whether a path looks like a frame file: raw `.raw` or compressed `.rawz`.
fn is_frame_file(p: &Path) -> bool {
    p.extension()
        .map(|x| x == "raw" || x == "rawz")
        .unwrap_or(false)
}

/// Sorted data-frame paths of a series directory — raw `.raw` and compressed
/// `.rawz` frames alike (ground-truth companions written by `generate` are
/// not data frames and are excluded).
fn frame_paths(dir: &str) -> Result<Vec<PathBuf>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {dir}: {e}"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| is_frame_file(p))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .map(|n| !n.contains("_truth"))
                .unwrap_or(true)
        })
        .collect();
    if paths.is_empty() {
        return Err(format!("no .raw/.rawz frames in {dir}"));
    }
    paths.sort();
    Ok(paths)
}

fn load_series(dir: &str) -> Result<TimeSeries, String> {
    read_series(&frame_paths(dir)?).map_err(|e| format!("failed to load series: {e}"))
}

/// Parsed out-of-core paging options, bundled so every subcommand threads
/// them identically.
#[derive(Debug, Clone, Copy)]
struct OocOpts {
    budget: CacheBudget,
    prefetch: usize,
    /// Page raw frames by zero-copy `mmap` instead of copying reads.
    mmap: bool,
}

/// Parsed out-of-core paging options: `--ooc-cache N` (frame budget) or
/// `--ooc-cache-bytes B` (byte budget) select the disk-backed path,
/// `--prefetch D` adds background read-ahead of up to D frames, and
/// `--mmap` pages raw frames zero-copy from the OS page cache. The two
/// budget flags are mutually exclusive, and `--prefetch`/`--mmap` are only
/// meaningful when one of them is present.
fn ooc_budget_opt(args: &Args) -> Result<Option<OocOpts>, String> {
    let budget = match (args.opt("ooc-cache"), args.opt("ooc-cache-bytes")) {
        (Some(_), Some(_)) => {
            return Err("--ooc-cache and --ooc-cache-bytes are mutually exclusive".into())
        }
        (Some(s), None) => {
            let n: usize = s
                .parse()
                .map_err(|_| format!("invalid --ooc-cache: {s:?}"))?;
            if n == 0 {
                return Err("--ooc-cache must be at least 1 frame".into());
            }
            Some(CacheBudget::Frames(n))
        }
        (None, Some(s)) => {
            let b: u64 = s
                .parse()
                .map_err(|_| format!("invalid --ooc-cache-bytes: {s:?}"))?;
            if b == 0 {
                return Err("--ooc-cache-bytes must be positive".into());
            }
            Some(CacheBudget::Bytes(b))
        }
        (None, None) => None,
    };
    let prefetch: usize = args.opt_parse("prefetch", 0usize)?;
    let mmap = args.flag("mmap");
    match budget {
        Some(b) => Ok(Some(OocOpts {
            budget: b,
            prefetch,
            mmap,
        })),
        None if args.opt("prefetch").is_some() => {
            Err("--prefetch needs --ooc-cache N or --ooc-cache-bytes B".into())
        }
        None if mmap => Err("--mmap needs --ooc-cache N or --ooc-cache-bytes B".into()),
        None => Ok(None),
    }
}

/// `--batch N`: voxel rows per batched classification pass, and samples per
/// ray-packet when rendering. 0 (the default) = auto. Output is
/// bit-identical at every width, so this is purely a throughput knob.
fn batch_opt(args: &Args) -> Result<usize, String> {
    args.opt_parse("batch", 0usize)
}

fn open_ooc(dir: &str, opts: OocOpts) -> Result<OutOfCoreSeries, String> {
    let paths = frame_paths(dir)?;
    let budget = CacheBudgetHandle::new(opts.budget);
    let open = if opts.mmap {
        OutOfCoreSeries::open_mmap(paths, &budget, opts.prefetch)
    } else {
        OutOfCoreSeries::open_with(paths, &budget, opts.prefetch)
    };
    open.map_err(|e| format!("failed to open out-of-core series: {e}"))
}

/// Paging summary appended to a command's output. The high-water marks — the
/// bounded-memory witnesses, in frames and bytes — are also mirrored into
/// the runtime counter set.
fn ooc_summary(series: &OutOfCoreSeries) -> String {
    let st = series.stats();
    obs::counter_runtime(
        "volume.ooc.resident_high_water",
        st.resident_high_water as u64,
    );
    obs::counter_runtime(
        "volume.ooc.resident_high_water_bytes",
        st.resident_high_water_bytes,
    );
    let mut head = match series.budget().limit() {
        CacheBudget::Frames(_) => format!("cache capacity {} frames", series.capacity()),
        CacheBudget::Bytes(b) => {
            format!("cache budget {b} bytes (~{} frames)", series.capacity())
        }
    };
    if series.is_mmap() {
        head.push_str(", mmap");
    }
    let mut out = format!(
        "ooc: {head}, resident high-water {}, \
         hits {}, misses {}, evictions {}, {} bytes paged, \
         {} bytes high-water\n",
        st.resident_high_water,
        st.hits,
        st.misses,
        st.evictions,
        st.bytes_paged,
        st.resident_high_water_bytes,
    );
    if series.prefetch_depth() > 0 {
        out.push_str(&format!(
            "ooc: prefetch depth {}, prefetched {}, prefetch hits {}, \
             prefetch wasted {}, read retries {}\n",
            series.prefetch_depth(),
            st.prefetched,
            st.prefetch_hits,
            st.prefetch_wasted,
            st.read_retries,
        ));
    }
    out
}

/// Load the `_truth` ground-truth companion frames that [`load_series`]
/// filters out. Only `generate`d directories have them.
fn load_truth_series(dir: &str) -> Result<TimeSeries, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {dir}: {e}"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| is_frame_file(p))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .map(|n| n.contains("_truth"))
                .unwrap_or(false)
        })
        .collect();
    if paths.is_empty() {
        return Err(format!(
            "no ground-truth sidecars in {dir} (was it written by `ifet generate`?)"
        ));
    }
    paths.sort();
    read_series(&paths).map_err(|e| format!("failed to load truth series: {e}"))
}

/// `generate` subcommand.
pub fn cmd_generate(args: &Args) -> Result<String, String> {
    let name = args
        .positional
        .first()
        .ok_or("generate needs a dataset name")?;
    let out = args.require("out")?;
    let n: usize = args.opt_parse("dims", 48usize)?;
    let seed: u64 = args.opt_parse("seed", 7u64)?;
    let dims = Dims3::cube(n);
    let data = match name.as_str() {
        "shock-bubble" => ifet_sim::shock_bubble(dims, seed),
        "combustion-jet" => ifet_sim::combustion_jet(dims, seed),
        "reionization" => ifet_sim::reionization(dims, seed),
        "turbulent-vortex" => ifet_sim::turbulent_vortex(dims, seed),
        "swirling-flow" => ifet_sim::swirling_flow(dims, seed),
        "qg-turbulence" => ifet_sim::qg_turbulence(dims, seed),
        other => {
            return Err(format!(
                "unknown dataset {other:?} (try shock-bubble, combustion-jet, reionization, turbulent-vortex, swirling-flow)"
            ))
        }
    };
    let compress = args.flag("compress");
    let paths = write_series_with(Path::new(out), &data.name, &data.series, compress)
        .map_err(|e| format!("write failed: {e}"))?;
    // Ground-truth masks as 0/1 volumes alongside.
    let truth_series = TimeSeries::from_frames(
        data.series
            .steps()
            .iter()
            .zip(&data.truth)
            .map(|(&t, m)| (t, m.to_volume()))
            .collect(),
    );
    write_series_with(
        Path::new(out),
        &format!("{}_truth", data.name),
        &truth_series,
        compress,
    )
    .map_err(|e| format!("truth write failed: {e}"))?;
    Ok(format!(
        "wrote {} frames of {} ({}) + ground truth to {}{}",
        paths.len(),
        data.name,
        dims,
        out,
        if compress { " (compressed)" } else { "" }
    ))
}

/// `info` subcommand.
pub fn cmd_info(args: &Args) -> Result<String, String> {
    let dir = args.require("data")?;
    let series = load_series(dir)?;
    let (lo, hi) = series.global_range();
    let mut out = format!(
        "series: {} frames of {}, steps {:?}\nglobal value range [{lo:.4}, {hi:.4}]\n",
        series.len(),
        series.dims(),
        series.steps()
    );
    for (t, f) in series.iter() {
        let (flo, fhi) = f.value_range();
        out.push_str(&format!(
            "  t={t:<6} range [{flo:.4}, {fhi:.4}] mean {:.4}\n",
            f.mean()
        ));
    }
    Ok(out)
}

/// `train-iatf` subcommand.
pub fn cmd_train_iatf(args: &Args) -> Result<String, String> {
    let dir = args.require("data")?;
    let out = args.require("out")?;
    let series = load_series(dir)?;
    let keys = args.all("key");
    if keys.is_empty() {
        return Err("train-iatf needs at least one --key T:LO:HI".into());
    }
    let (glo, ghi) = series.global_range();
    let mut session = VisSession::new(series).unwrap();
    for k in keys {
        let (t, lo, hi) = parse_key_spec(k)?;
        session.add_key_frame(t, TransferFunction1D::band(glo, ghi, lo, hi, 1.0));
    }
    let epochs: usize = args.opt_parse("epochs", 600usize)?;
    let hidden: usize = args.opt_parse("hidden", IatfParams::default().hidden)?;
    if hidden == 0 {
        return Err("--hidden must be at least 1 neuron".into());
    }
    session.train_iatf(IatfParams {
        epochs,
        hidden,
        ..Default::default()
    });
    let iatf = session.iatf().unwrap();
    let json = serde_json::to_string(iatf).map_err(|e| e.to_string())?;
    std::fs::write(out, &json).map_err(|e| e.to_string())?;
    Ok(format!(
        "trained IATF on {} key frames, final loss {:.5}, saved to {out}",
        session.key_frames().len(),
        iatf.final_loss().unwrap_or(f32::NAN)
    ))
}

fn load_iatf(path: &str) -> Result<Iatf, String> {
    let json = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    serde_json::from_str(&json).map_err(|e| format!("bad IATF file: {e}"))
}

/// `render` subcommand.
pub fn cmd_render(args: &Args) -> Result<String, String> {
    let dir = args.require("data")?;
    let out = args.require("out")?;
    let t: u32 = args.require("step")?.parse().map_err(|_| "bad --step")?;
    let size: usize = args.opt_parse("size", 256usize)?;
    let series = load_series(dir)?;
    let (glo, ghi) = series.global_range();
    let mut session = VisSession::new(series.clone()).unwrap();
    // `--batch` maps onto the ray caster's packet width here (clamped to
    // MAX_PACKET internally); output is invariant to it.
    session.renderer.params.packet = batch_opt(args)?;

    let tf = if let Some(path) = args.opt("iatf") {
        let iatf = load_iatf(path)?;
        let frame = series
            .frame_at_step(t)
            .ok_or_else(|| format!("step {t} not in series"))?;
        iatf.generate(t, frame)
    } else if let Some(band) = args.opt("band") {
        let (lo, hi) = parse_band(band)?;
        TransferFunction1D::band(glo, ghi, lo, hi, 0.9)
    } else {
        return Err("render needs --iatf FILE or --band LO:HI".into());
    };

    let img = session.render_with_tf(t, &tf, size, size);
    img.save_ppm(Path::new(out)).map_err(|e| e.to_string())?;
    Ok(format!("rendered step {t} at {size}x{size} -> {out}"))
}

/// `track` subcommand. With `--ooc-cache N` (or `--ooc-cache-bytes B`) the
/// series stays on disk and at most that budget of frames is resident at
/// once; `--prefetch D` overlaps the next window's reads with the current
/// window's compute. A paging summary is appended.
pub fn cmd_track(args: &Args) -> Result<String, String> {
    let dir = args.require("data")?;
    match ooc_budget_opt(args)? {
        Some(opts) => {
            let series = open_ooc(dir, opts)?;
            let mut out = cmd_track_impl(args, &series)?;
            out.push_str(&ooc_summary(&series));
            Ok(out)
        }
        None => cmd_track_impl(args, load_series(dir)?),
    }
}

fn cmd_track_impl<S: FrameSource>(args: &Args, series: S) -> Result<String, String> {
    let (sx, sy, sz) = parse_voxel(args.require("seed")?)?;
    let threads: usize = args.opt_parse("threads", 0usize)?;
    // `--session` opens a saved artifact so artifact state (most usefully a
    // trained data-space classifier) can drive the criterion.
    let session = if let Some(path) = args.opt("session") {
        VisSession::load(series, path).map_err(|e| e.to_string())?
    } else {
        VisSession::new(series).map_err(|e| e.to_string())?
    };
    // No-op unless a loaded classifier drives the criterion (--dataspace-tau).
    session.set_classifier_batch(batch_opt(args)?);

    // The frontier-parallel grower fans out per-frame work; `--threads`
    // pins its worker count (0 = default sizing).
    let run_tracking = |session: &VisSession<S>| -> Result<TrackResult, String> {
        if let Some(tau) = args.opt("dataspace-tau") {
            let tau: f32 = tau.parse().map_err(|_| "bad --dataspace-tau")?;
            session
                .track_spec(&CriterionSpec::DataSpace { tau }, &[(0, sx, sy, sz)])
                .map_err(|e| format!("tracking failed: {e}"))
        } else if let Some(path) = args.opt("iatf") {
            let iatf = load_iatf(path)?;
            let tau: f32 = args.opt_parse("tau", 0.5f32)?;
            let tfs: Vec<TransferFunction1D> =
                map_frames_windowed(session.series(), |_, t, frame| iatf.generate(t, frame))
                    .map_err(|e| format!("tracking failed: {e}"))?;
            let criterion =
                AdaptiveTfCriterion::new(tfs, tau).map_err(|e| format!("tracking failed: {e}"))?;
            session
                .track_with(&criterion, &[(0, sx, sy, sz)])
                .map_err(|e| format!("tracking failed: {e}"))
        } else if let Some(band) = args.opt("band") {
            let (lo, hi) = parse_band(band)?;
            session
                .track_fixed(&[(0, sx, sy, sz)], lo, hi)
                .map_err(|e| format!("tracking failed: {e}"))
        } else {
            Err(
                "track needs --iatf FILE [--tau V], --band LO:HI, or --session FILE --dataspace-tau V"
                    .into(),
            )
        }
    };
    let result = if threads == 0 {
        run_tracking(&session)?
    } else {
        pipeline::pool_with_threads(threads).install(|| run_tracking(&session))?
    };

    let steps = session.series().steps().to_vec();
    let mut out = String::from("t      voxels components\n");
    for (i, &t) in steps.iter().enumerate() {
        out.push_str(&format!(
            "{:<6} {:>7} {:>10}\n",
            t, result.report.voxels_per_frame[i], result.report.components_per_frame[i]
        ));
    }
    out.push_str("events:\n");
    for e in &result.report.events {
        out.push_str(&format!(
            "  t={}: {:?} {:?} -> {:?}\n",
            steps[e.frame], e.kind, e.before, e.after
        ));
    }

    // Persistent tracks with endings. Labeling works off the masks alone;
    // attributes are measured frame-by-frame through the windowed walker, so
    // the out-of-core path never needs all frames resident at once.
    let labelings = label_masks(&result.masks);
    let attrs: Vec<Vec<FeatureAttributes>> =
        map_frames_windowed(session.series(), |i, _, frame| {
            FeatureAttributes::measure_all(&labelings[i], frame)
        })
        .map_err(|e| format!("attribute measurement failed: {e}"))?;
    let track_set = extract_tracks_from_parts(&labelings, &attrs, result.report.clone());
    out.push_str("tracks:\n");
    for t in &track_set.tracks {
        let last = t.start_frame + t.lifetime() - 1;
        let ending = match t.ending {
            TrackEnding::SurvivesToEnd => "survives to end".to_string(),
            TrackEnding::Dissipated => "dissipated".to_string(),
            TrackEnding::Split => "split".to_string(),
            TrackEnding::Merged { into } => format!("merged into #{into}"),
        };
        out.push_str(&format!(
            "  #{} t={}..{} (life {}) {}\n",
            t.id,
            steps[t.start_frame],
            steps[last],
            t.lifetime(),
            ending
        ));
    }
    Ok(out)
}

/// The three velocity-component frame sets of a flow directory written by
/// `generate-flow`: frame files whose names carry `_u_t` / `_v_t` / `_w_t`.
fn flow_component_paths(dir: &str) -> Result<[Vec<PathBuf>; 3], String> {
    let all = frame_paths(dir)?;
    let pick = |tag: &str| -> Vec<PathBuf> {
        all.iter()
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .map(|n| n.contains(tag))
                    .unwrap_or(false)
            })
            .cloned()
            .collect()
    };
    let comps = [pick("_u_t"), pick("_v_t"), pick("_w_t")];
    for (c, name) in comps.iter().zip(["u", "v", "w"]) {
        if c.is_empty() {
            return Err(format!(
                "no {name}-component frames (*_{name}_t*.raw/.rawz) in {dir} \
                 (was it written by `ifet generate-flow`?)"
            ));
        }
    }
    if comps[0].len() != comps[1].len() || comps[0].len() != comps[2].len() {
        return Err(format!(
            "velocity components disagree on frame count: u={}, v={}, w={}",
            comps[0].len(),
            comps[1].len(),
            comps[2].len()
        ));
    }
    Ok(comps)
}

/// `generate-flow` subcommand: write an analytic velocity field as three
/// scalar component series (u, v, w) for `trace-particles` to advect through.
pub fn cmd_generate_flow(args: &Args) -> Result<String, String> {
    let name = args
        .positional
        .first()
        .ok_or("generate-flow needs a flow name (uniform, rotation, swirl)")?;
    let kind = FlowKind::parse(name)
        .ok_or_else(|| format!("unknown flow {name:?} (try uniform, rotation, swirl)"))?;
    let out = args.require("out")?;
    let n: usize = args.opt_parse("dims", 32usize)?;
    let frames: usize = args.opt_parse("frames", 8usize)?;
    let stride: u32 = args.opt_parse("stride", 2u32)?;
    if frames < 2 {
        return Err("--frames must be at least 2 (advection needs a frame pair)".into());
    }
    if stride == 0 {
        return Err("--stride must be positive".into());
    }
    let compress = args.flag("compress");
    let dims = Dims3::cube(n);
    let f = flow_series(kind, dims, frames, stride);
    let mut total = 0;
    for (comp, series) in [("u", &f.u), ("v", &f.v), ("w", &f.w)] {
        total += write_series_with(Path::new(out), &format!("{name}_{comp}"), series, compress)
            .map_err(|e| format!("write failed: {e}"))?
            .len();
    }
    Ok(format!(
        "wrote {total} velocity frames of {name} ({frames} per component, {dims}, \
         stride {stride}) to {out}{}",
        if compress { " (compressed)" } else { "" }
    ))
}

/// `--seed-from-track`: drop a particle at every voxel of the frame-0 grown
/// feature mask — the paper's "follow the feature" workload, tracers seeded
/// inside an extracted feature and carried off by the flow.
fn seeds_from_track(args: &Args, dims: Dims3) -> Result<Vec<[f64; 3]>, String> {
    let dir = args.require("data")?;
    let (sx, sy, sz) = parse_voxel(args.require("track-seed")?)?;
    let (lo, hi) = parse_band(args.require("band")?)?;
    let series = load_series(dir)?;
    if series.dims() != dims {
        return Err(format!(
            "--data dims {} do not match the flow's dims {dims}",
            series.dims()
        ));
    }
    let session = VisSession::new(series).map_err(|e| e.to_string())?;
    let result = session
        .track_fixed(&[(0, sx, sy, sz)], lo, hi)
        .map_err(|e| format!("seed tracking failed: {e}"))?;
    let mask = &result.masks[0];
    let mut seeds = Vec::new();
    for z in 0..dims.nz {
        for y in 0..dims.ny {
            for x in 0..dims.nx {
                if mask.get(x, y, z) {
                    seeds.push([x as f64, y as f64, z as f64]);
                }
            }
        }
    }
    if seeds.is_empty() {
        return Err("--seed-from-track: the frame-0 feature mask is empty".into());
    }
    Ok(seeds)
}

/// `trace-particles` subcommand. With an out-of-core budget, each velocity
/// component pages through its OWN cache of the requested size — the
/// documented bound (`--ooc-cache N` ⇒ at most N resident frames per
/// component) — and a per-component paging summary is appended.
pub fn cmd_trace_particles(args: &Args) -> Result<String, String> {
    let dir = args.require("flow")?;
    let [pu, pv, pw] = flow_component_paths(dir)?;
    match ooc_budget_opt(args)? {
        Some(opts) => {
            let open = |paths: Vec<PathBuf>| -> Result<OutOfCoreSeries, String> {
                let budget = CacheBudgetHandle::new(opts.budget);
                let o = if opts.mmap {
                    OutOfCoreSeries::open_mmap(paths, &budget, opts.prefetch)
                } else {
                    OutOfCoreSeries::open_with(paths, &budget, opts.prefetch)
                };
                o.map_err(|e| format!("failed to open out-of-core series: {e}"))
            };
            let (u, v, w) = (open(pu)?, open(pv)?, open(pw)?);
            let mut out = cmd_trace_impl(args, &u, &v, &w)?;
            for (name, s) in [("u", &u), ("v", &v), ("w", &w)] {
                for line in ooc_summary(s).lines() {
                    out.push_str(&format!("{name} {line}\n"));
                }
            }
            Ok(out)
        }
        None => {
            let load = |paths: Vec<PathBuf>| {
                read_series(&paths).map_err(|e| format!("failed to load series: {e}"))
            };
            let (u, v, w) = (load(pu)?, load(pv)?, load(pw)?);
            cmd_trace_impl(args, &u, &v, &w)
        }
    }
}

fn cmd_trace_impl<S: FrameSource>(args: &Args, u: &S, v: &S, w: &S) -> Result<String, String> {
    let dims = u.dims();
    let mut seeds: Vec<[f64; 3]> = Vec::new();
    if let Some(s) = args.opt("seed-grid") {
        let n: usize = s
            .parse()
            .map_err(|_| format!("invalid --seed-grid: {s:?}"))?;
        if n == 0 {
            return Err("--seed-grid must be at least 1".into());
        }
        seeds.extend(seed_grid(dims, n));
    }
    for s in args.all("seed") {
        seeds.push(parse_seed(s)?);
    }
    if args.flag("seed-from-track") {
        seeds.extend(seeds_from_track(args, dims)?);
    }
    if seeds.is_empty() {
        return Err(
            "trace-particles needs --seed-grid N, --seed X,Y,Z, and/or --seed-from-track".into(),
        );
    }

    let params = TraceParams {
        rk4_dt: args.opt_parse("rk4-dt", TraceParams::default().rk4_dt)?,
    };
    let threads: usize = args.opt_parse("threads", 0usize)?;
    let run = || advect(u, v, w, &seeds, &params).map_err(|e| format!("trace failed: {e}"));
    let set = if threads == 0 {
        run()?
    } else {
        pipeline::pool_with_threads(threads).install(run)?
    };

    let (mut left, mut nonfinite) = (0usize, 0usize);
    for p in &set.pathlines {
        match p.ending {
            ParticleEnding::LeftDomain { .. } => left += 1,
            ParticleEnding::NonFinite { .. } => nonfinite += 1,
            ParticleEnding::Completed => {}
        }
    }
    let mut out = format!(
        "traced {} particles over {} frames of {} (steps {}..{}, rk4 dt {})\n\
         completed {}, left domain {left}, non-finite {nonfinite}\n",
        set.pathlines.len(),
        set.steps.len(),
        set.dims,
        set.steps.first().copied().unwrap_or(0),
        set.steps.last().copied().unwrap_or(0),
        set.rk4_dt,
        set.completed(),
    );
    // Mean completed endpoint: a compact, deterministic digest of the whole
    // ensemble (handy for the byte-identity gates).
    let done: Vec<[f64; 3]> = set
        .pathlines
        .iter()
        .filter(|p| p.ending == ParticleEnding::Completed)
        .map(|p| p.endpoint())
        .collect();
    if !done.is_empty() {
        let n = done.len() as f64;
        let c = done.iter().fold([0.0f64; 3], |mut acc, p| {
            for k in 0..3 {
                acc[k] += p[k] / n;
            }
            acc
        });
        out.push_str(&format!(
            "mean completed endpoint ({:.4}, {:.4}, {:.4})\n",
            c[0], c[1], c[2]
        ));
    }

    if let Some(path) = args.opt("out") {
        save_pathlines(Path::new(path), &set)
            .map_err(|e| format!("cannot write pathlines to {path}: {e}"))?;
        out.push_str(&format!("wrote pathlines + sidecar to {path}\n"));
    }

    let epochs: usize = args.opt_parse("surrogate-epochs", 0usize)?;
    if epochs > 0 {
        let sp = SurrogateParams {
            epochs,
            hidden: args.opt_parse("surrogate-hidden", SurrogateParams::default().hidden)?,
            ..Default::default()
        };
        if sp.hidden == 0 {
            return Err("--surrogate-hidden must be at least 1 neuron".into());
        }
        let (_, report) =
            train_flow_map(&set, &sp).map_err(|e| format!("surrogate training failed: {e}"))?;
        out.push_str(&format!(
            "surrogate: {} rows from {} particles ({} held out), \
             median endpoint error {:.4} voxels (max {:.4}), final loss {:.6}\n",
            report.training_rows,
            report.train_particles,
            report.holdout_particles,
            report.median_error,
            report.max_error,
            report.final_loss,
        ));
    }
    Ok(out)
}

/// `session` subcommand dispatcher: versioned artifact save / load / resume.
/// All actions honour `--ooc-cache N` (page the series from disk through an
/// N-frame LRU cache instead of loading it whole).
pub fn cmd_session(args: &Args) -> Result<String, String> {
    let action = args
        .positional
        .first()
        .ok_or("session needs an action: save, load, or resume")?
        .as_str();
    if !matches!(action, "save" | "load" | "resume") {
        return Err(format!(
            "unknown session action {action:?} (try save, load, resume)"
        ));
    }
    let dir = args.require("data")?;
    match ooc_budget_opt(args)? {
        Some(opts) => {
            let series = open_ooc(dir, opts)?;
            let mut out = match action {
                "save" => cmd_session_save(args, &series),
                "load" => cmd_session_load(args, &series),
                _ => cmd_session_resume(args, &series),
            }?;
            out.push_str(&ooc_summary(&series));
            Ok(out)
        }
        None => {
            let series = load_series(dir)?;
            match action {
                "save" => cmd_session_save(args, series),
                "load" => cmd_session_load(args, series),
                _ => cmd_session_resume(args, series),
            }
        }
    }
}

/// `session save`: build up session state (key frames → IATF, optionally a
/// tracking run) and persist it as a versioned artifact. With `--rounds N`
/// the tracking run may pause mid-growth; the checkpoint is saved too and
/// `session resume` finishes it later.
fn cmd_session_save<S: FrameSource>(args: &Args, series: S) -> Result<String, String> {
    let dir = args.require("data")?;
    let out = args.require("out")?;
    let (glo, ghi) = series.global_range().map_err(|e| e.to_string())?;
    let mut session = VisSession::new(series).map_err(|e| e.to_string())?;

    let keys = args.all("key");
    for k in keys {
        let (t, lo, hi) = parse_key_spec(k)?;
        session.add_key_frame(t, TransferFunction1D::band(glo, ghi, lo, hi, 1.0));
    }
    let mut notes = Vec::new();
    if !keys.is_empty() {
        let epochs: usize = args.opt_parse("epochs", 600usize)?;
        session.train_iatf(IatfParams {
            epochs,
            ..Default::default()
        });
        notes.push(format!("trained IATF on {} key frames", keys.len()));
    }

    // `--paint STEP:N` simulates a user painting N positive + N negative
    // voxels per listed frame from the generated ground-truth sidecars, then
    // trains the data-space classifier on the result.
    let paint_specs = args.all("paint");
    if !paint_specs.is_empty() {
        let truth = load_truth_series(dir)?;
        let mut oracle = PaintOracle::new(args.opt_parse("paint-seed", 1u64)?);
        let mut painted = 0usize;
        for spec in paint_specs {
            let (step, n) = parse_paint_spec(spec)?;
            let idx = truth
                .index_of_step(step)
                .ok_or_else(|| format!("paint step {step} not in series"))?;
            let mask = Mask3::threshold(truth.frame(idx), 0.5);
            session
                .add_paints(oracle.paint_from_truth(step, &mask, n, n))
                .map_err(|e| e.to_string())?;
            painted += 2 * n;
        }
        let clf_epochs: usize = args.opt_parse("clf-epochs", 200usize)?;
        let clf_hidden: usize = args.opt_parse("clf-hidden", ClassifierParams::default().hidden)?;
        session
            .train_classifier(
                FeatureSpec::default(),
                ClassifierParams {
                    epochs: clf_epochs,
                    hidden: clf_hidden,
                    ..Default::default()
                },
            )
            .map_err(|e| format!("classifier training failed: {e}"))?;
        session.set_classifier_batch(batch_opt(args)?);
        notes.push(format!(
            "trained data-space classifier on {painted} painted voxels across {} frames",
            paint_specs.len()
        ));
    }

    if let Some(seed) = args.opt("seed") {
        let (sx, sy, sz) = parse_voxel(seed)?;
        let spec = if let Some(band) = args.opt("band") {
            let (lo, hi) = parse_band(band)?;
            CriterionSpec::FixedBand { lo, hi }
        } else if let Some(tau) = args.opt("dataspace-tau") {
            if session.classifier().is_none() {
                return Err(
                    "--dataspace-tau needs a trained classifier (use --paint STEP:N)".into(),
                );
            }
            CriterionSpec::DataSpace {
                tau: tau.parse().map_err(|_| "bad --dataspace-tau")?,
            }
        } else if session.iatf().is_some() {
            CriterionSpec::AdaptiveTf {
                tau: args.opt_parse("tau", 0.5f32)?,
            }
        } else {
            return Err(
                "session save --seed needs --band LO:HI, --dataspace-tau V (with --paint), \
                 or --key frames (adaptive criterion)"
                    .into(),
            );
        };
        let max_rounds = args
            .opt("rounds")
            .map(|r| {
                r.parse::<u64>()
                    .map_err(|_| format!("invalid --rounds: {r:?}"))
            })
            .transpose()?;
        let status = session
            .run_track(spec, &[(0, sx, sy, sz)], max_rounds)
            .map_err(|e| format!("tracking failed: {e}"))?;
        match status {
            TrackStatus::Completed => notes.push("tracking completed".into()),
            TrackStatus::Paused { rounds } => notes.push(format!(
                "tracking paused after {rounds} rounds (checkpoint included)"
            )),
        }
    }

    embed_trace_summary(&mut session)?;
    session.save(out).map_err(|e| e.to_string())?;
    let mut msg = format!("saved session artifact -> {out}");
    for n in notes {
        msg.push_str(&format!("\n  {n}"));
    }
    Ok(msg)
}

/// When a capture is live (`--trace`/`--profile`), snapshot the span tree so
/// far and ride it along in the artifact's TRACE section. Stable mode only:
/// embedded timings would make artifact bytes nondeterministic.
fn embed_trace_summary<S: FrameSource>(session: &mut VisSession<S>) -> Result<(), String> {
    if let Some(t) = obs::snapshot() {
        session
            .set_trace_summary(t.to_stable().to_json())
            .map_err(|e| format!("trace summary rejected: {e}"))?;
    }
    Ok(())
}

/// Human-readable inventory of a loaded session.
fn session_inventory<S: FrameSource>(session: &VisSession<S>) -> String {
    let mut out = String::new();
    let steps: Vec<u32> = session.key_frames().iter().map(|(t, _)| *t).collect();
    out.push_str(&format!("key frames: {} {steps:?}\n", steps.len()));
    out.push_str(&format!(
        "IATF: {}\n",
        if session.iatf().is_some() {
            "trained"
        } else {
            "absent"
        }
    ));
    let painted: usize = session.paints().iter().map(|p| p.len()).sum();
    out.push_str(&format!(
        "paints: {} sets, {painted} voxels\n",
        session.paints().len()
    ));
    out.push_str(&format!(
        "classifier: {}\n",
        if session.classifier().is_some() {
            "trained"
        } else {
            "absent"
        }
    ));
    out.push_str(&format!("completed tracks: {}\n", session.tracks().len()));
    for (i, t) in session.tracks().iter().enumerate() {
        let total: usize = t.result.report.voxels_per_frame.iter().sum();
        out.push_str(&format!(
            "  #{i}: {:?} seeds {:?} -> {total} voxels, {} events\n",
            t.spec,
            t.seeds,
            t.result.report.events.len()
        ));
    }
    match session.pending_track() {
        Some(p) => out.push_str(&format!(
            "pending checkpoint: {:?} at round {}\n",
            p.spec, p.checkpoint.rounds
        )),
        None => out.push_str("pending checkpoint: none\n"),
    }
    out
}

/// `session load`: open an artifact against its series and print what is in
/// it (also serving as an integrity check — corrupt files fail here).
fn cmd_session_load<S: FrameSource>(args: &Args, series: S) -> Result<String, String> {
    let path = args.require("session")?;
    let session = VisSession::load(series, path).map_err(|e| e.to_string())?;
    Ok(format!(
        "session artifact {path}\n{}",
        session_inventory(&session)
    ))
}

/// `session resume`: finish the artifact's pending tracking run from its
/// checkpoint and write the completed session back out.
fn cmd_session_resume<S: FrameSource>(args: &Args, series: S) -> Result<String, String> {
    let path = args.require("session")?;
    let out = args.opt("out").unwrap_or(path);
    let mut session = VisSession::load(series, path).map_err(|e| e.to_string())?;
    let result = session.resume_track().map_err(|e| e.to_string())?;
    let total: usize = result.report.voxels_per_frame.iter().sum();
    let events = result.report.events.len();
    embed_trace_summary(&mut session)?;
    session.save(out).map_err(|e| e.to_string())?;
    Ok(format!(
        "resumed tracking to completion: {total} voxels, {events} events\nsaved -> {out}"
    ))
}

/// `classify` subcommand: run a saved session's trained data-space
/// classifier over every frame and report per-frame certainty coverage.
/// With `--out DIR` the certainty fields stream to disk one frame at a
/// time; with `--ooc-cache N` / `--ooc-cache-bytes B` the input series
/// pages through a budget-bounded LRU cache (`--prefetch D` adds
/// read-ahead), so neither input nor output is ever fully in core.
pub fn cmd_classify(args: &Args) -> Result<String, String> {
    let dir = args.require("data")?;
    match ooc_budget_opt(args)? {
        Some(opts) => {
            let series = open_ooc(dir, opts)?;
            let mut out = cmd_classify_impl(args, &series)?;
            out.push_str(&ooc_summary(&series));
            Ok(out)
        }
        None => cmd_classify_impl(args, load_series(dir)?),
    }
}

/// Sink adapter for `classify --out`: summarizes each certainty frame for
/// the coverage table, then forwards it to the spill-to-disk sink, so no
/// more than one derived frame is ever materialized.
struct CoverageSink {
    inner: OutOfCoreSink,
    tau: f32,
    rows: Vec<(u32, usize, f32)>,
}

impl FrameSink for CoverageSink {
    fn put(&mut self, t: u32, vol: ScalarVolume) -> Result<(), SeriesError> {
        let above = vol.as_slice().iter().filter(|&&v| v >= self.tau).count();
        self.rows.push((t, above, vol.mean()));
        self.inner.put(t, vol)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }
}

fn cmd_classify_impl<S: FrameSource>(args: &Args, series: S) -> Result<String, String> {
    let path = args.require("session")?;
    let tau: f32 = args.opt_parse("tau", 0.5f32)?;
    let session = VisSession::load(series, path).map_err(|e| e.to_string())?;
    let clf = session.classifier().ok_or(
        "session has no trained classifier (train one with `session save --paint STEP:N`)",
    )?;
    clf.set_batch(batch_opt(args)?);
    // Both paths stream: certainty frames are summarized (and with `--out`
    // written to disk) as they are produced, never collected into a Vec.
    let (rows, written) = if let Some(outdir) = args.opt("out") {
        let inner =
            OutOfCoreSink::with_compression(Path::new(outdir), "certainty", args.flag("compress"))
                .map_err(|e| format!("write failed: {e}"))?;
        let mut sink = CoverageSink {
            inner,
            tau,
            rows: Vec::new(),
        };
        clf.classify_series_into(session.series(), &mut sink)
            .map_err(|e| format!("classification failed: {e}"))?;
        let written = sink.inner.into_paths().len();
        (sink.rows, Some(written))
    } else {
        let rows = clf
            .classify_series_map(session.series(), |_, t, cert| {
                let above = cert.as_slice().iter().filter(|&&v| v >= tau).count();
                (t, above, cert.mean())
            })
            .map_err(|e| format!("classification failed: {e}"))?;
        (rows, None)
    };
    let mut out = String::from("t      voxels>=tau mean-certainty\n");
    for (t, above, mean) in &rows {
        out.push_str(&format!("{t:<6} {above:>11} {mean:>14.4}\n"));
    }
    if let (Some(written), Some(outdir)) = (written, args.opt("out")) {
        out.push_str(&format!("wrote {written} certainty volumes -> {outdir}\n"));
    }
    Ok(out)
}

/// `suggest-keys` subcommand: where should the user paint key frames?
pub fn cmd_suggest_keys(args: &Args) -> Result<String, String> {
    let dir = args.require("data")?;
    let max: usize = args.opt_parse("max", 4usize)?;
    let series = load_series(dir)?;
    let behavior = ifet_tf::classify_behavior(&series, 256, 0.1);
    let keys = ifet_tf::suggest_key_frames(&series, 256, max, 0.02);
    Ok(format!(
        "temporal behaviour: {behavior:?}\nsuggested key frames (paint these): {keys:?}"
    ))
}

/// `serve` subcommand: run the multi-tenant session service on a Unix
/// socket. Every tenant's frame data pages through one shared cache budget
/// (`--ooc-cache N` / `--ooc-cache-bytes B`, default 8 frames); per-tenant
/// admission is bounded by `--max-inflight` (excess requests get a typed
/// `Overloaded` rejection, never a queue). `--max-requests N` stops the
/// server after N answered requests — a deterministic exit for scripts and
/// tests.
#[cfg(unix)]
pub fn cmd_serve(args: &Args) -> Result<String, String> {
    use ifet_serve::{serve_unix, ServeConfig, ServeEngine, ServerOpts};
    let socket = args.require("socket")?;
    let (budget, prefetch) = match ooc_budget_opt(args)? {
        Some(o) if o.mmap => {
            return Err("serve pages through the shared cache; --mmap is not supported".into())
        }
        Some(o) => (o.budget, o.prefetch),
        None => (CacheBudget::Frames(8), 0),
    };
    let max_inflight: usize = args.opt_parse("max-inflight", 4usize)?;
    if max_inflight == 0 {
        return Err("--max-inflight must be at least 1".into());
    }
    let max_requests = args
        .opt("max-requests")
        .map(|s| {
            s.parse::<u64>()
                .map_err(|_| format!("invalid --max-requests: {s:?}"))
        })
        .transpose()?;
    let workers: usize = args.opt_parse("workers", 0usize)?;
    let tenant_quota_bytes = args
        .opt("tenant-quota-bytes")
        .map(|s| {
            s.parse::<u64>()
                .map_err(|_| format!("invalid --tenant-quota-bytes: {s:?}"))
        })
        .transpose()?;
    if tenant_quota_bytes == Some(0) {
        return Err("--tenant-quota-bytes must be at least 1".into());
    }
    let engine = ServeEngine::new(ServeConfig {
        budget,
        max_inflight_per_tenant: max_inflight,
        prefetch,
        tenant_quota_bytes,
    });
    let served = serve_unix(
        Path::new(socket),
        &engine,
        ServerOpts {
            max_requests,
            workers,
        },
    )
    .map_err(|e| format!("serve failed: {e}"))?;
    let b = engine.budget().stats();
    Ok(format!(
        "served {served} requests on {socket}\n\
         paging: resident high-water {} frames / {} bytes, \
         evictions {} ({} quota-local, {} idle-preferred)",
        b.high_water_frames, b.high_water_bytes, b.evictions, b.quota_evictions, b.idle_evictions,
    ))
}

#[cfg(not(unix))]
pub fn cmd_serve(_args: &Args) -> Result<String, String> {
    Err("serve requires a Unix-socket transport".into())
}

/// `client` subcommand: send one verb to a running `ifet serve` and print
/// the reply. The tenant id travels with the request, so a tenant's session
/// binding persists across invocations.
#[cfg(unix)]
pub fn cmd_client(args: &Args) -> Result<String, String> {
    use ifet_serve::{Axis, Client, Request, Verb, WireCriterion};
    let socket = args.require("socket")?;
    let tenant: u32 = args.opt_parse("tenant", 0u32)?;
    let verb_name = args
        .positional
        .first()
        .ok_or("client needs a verb: open, classify, track, render-slice, report-stats, close")?;
    let verb = match verb_name.as_str() {
        "bench" => return cmd_client_bench(args, socket, tenant),
        "open" => Verb::Open {
            artifact: args.require("artifact")?.to_string(),
            data_dir: args.require("data")?.to_string(),
        },
        "classify" => Verb::Classify {
            step: args.require("step")?.parse().map_err(|_| "bad --step")?,
            tau: args.opt_parse("tau", 0.5f32)?,
        },
        "track" => {
            let (sx, sy, sz) = parse_voxel(args.require("seed")?)?;
            let criterion = if let Some(band) = args.opt("band") {
                let (lo, hi) = parse_band(band)?;
                WireCriterion::FixedBand { lo, hi }
            } else if let Some(tau) = args.opt("dataspace-tau") {
                WireCriterion::DataSpace {
                    tau: tau.parse().map_err(|_| "bad --dataspace-tau")?,
                }
            } else {
                WireCriterion::AdaptiveTf {
                    tau: args.opt_parse("tau", 0.5f32)?,
                }
            };
            Verb::Track {
                criterion,
                seeds: vec![(0, sx as u32, sy as u32, sz as u32)],
            }
        }
        "render-slice" => Verb::RenderSlice {
            step: args.require("step")?.parse().map_err(|_| "bad --step")?,
            axis: match args.opt("axis").unwrap_or("z") {
                "x" => Axis::X,
                "y" => Axis::Y,
                "z" => Axis::Z,
                other => return Err(format!("invalid --axis {other:?} (x, y, or z)")),
            },
            k: args.opt_parse("k", 0u32)?,
            adaptive: args.flag("adaptive"),
        },
        "report-stats" => Verb::ReportStats,
        "close" => Verb::Close,
        other => {
            return Err(format!(
                "unknown client verb {other:?} \
                 (open, classify, track, render-slice, report-stats, close)"
            ))
        }
    };
    let mut client = Client::connect(Path::new(socket))
        .map_err(|e| format!("cannot connect to {socket}: {e}"))?;
    let rsp = client
        .call(&Request {
            request_id: 1,
            tenant,
            verb,
        })
        .map_err(|e| format!("call failed: {e}"))?;
    format_response(args, rsp.body)
}

#[cfg(not(unix))]
pub fn cmd_client(_args: &Args) -> Result<String, String> {
    Err("client requires a Unix-socket transport".into())
}

/// `client bench`: a pipelined load generator against a running `ifet
/// serve`. Opens the artifact, negotiates pipelined mode with a `hello`
/// handshake, then keeps `--depth` seeded read-only requests (classify /
/// render-slice) outstanding until `--requests` have been answered.
/// Reports throughput plus the tenant's admission counter algebra
/// (`accepted + rejected == sent`), which must hold under any executor.
#[cfg(unix)]
fn cmd_client_bench(args: &Args, socket: &str, tenant: u32) -> Result<String, String> {
    use ifet_serve::{Axis, Client, Request, ResponseBody, Verb};
    let artifact = args.require("artifact")?.to_string();
    let data = args.require("data")?.to_string();
    let requests: u64 = args.opt_parse("requests", 64u64)?;
    let depth: u32 = args.opt_parse("depth", 8u32)?;
    let seed: u64 = args.opt_parse("seed", 1u64)?;
    if depth == 0 {
        return Err("--depth must be at least 1".into());
    }
    let mut client = Client::connect(Path::new(socket))
        .map_err(|e| format!("cannot connect to {socket}: {e}"))?;

    // Open synchronously (session binding must exist before any pipelined
    // read), then switch the connection to pipelined mode.
    let open = client
        .call(&Request {
            request_id: 1,
            tenant,
            verb: Verb::Open {
                artifact,
                data_dir: data,
            },
        })
        .map_err(|e| format!("open failed: {e}"))?;
    let (frames, dims, first_step, last_step) = match open.body {
        ResponseBody::OpenOk {
            frames,
            dims,
            first_step,
            last_step,
            ..
        } => (frames, dims, first_step, last_step),
        other => return Err(format!("open failed: {other:?}")),
    };
    let stride = if frames > 1 {
        ((last_step - first_step) / (frames - 1)).max(1)
    } else {
        1
    };
    let granted = client
        .hello(depth)
        .map_err(|e| format!("hello failed: {e}"))?;

    // Seeded read-only mix; request ids 2.. are unique so replies can come
    // back in any completion order.
    let verb_for = |i: u64| -> Verb {
        let r = mix(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let step = first_step + (r as u32 % frames) * stride;
        if r % 2 == 0 {
            Verb::Classify { step, tau: 0.5 }
        } else {
            Verb::RenderSlice {
                step,
                axis: Axis::Z,
                k: (r >> 8) as u32 % dims.2,
                adaptive: false,
            }
        }
    };
    let t0 = std::time::Instant::now();
    let mut next_await: u64 = 0;
    let mut errors: u64 = 0;
    for i in 0..requests {
        if i >= u64::from(granted) {
            let rsp = client
                .await_response(2 + next_await)
                .map_err(|e| format!("await failed: {e}"))?;
            if matches!(rsp.body, ResponseBody::Err { .. }) {
                errors += 1;
            }
            next_await += 1;
        }
        client
            .submit(&Request {
                request_id: 2 + i,
                tenant,
                verb: verb_for(i),
            })
            .map_err(|e| format!("submit failed: {e}"))?;
    }
    while next_await < requests {
        let rsp = client
            .await_response(2 + next_await)
            .map_err(|e| format!("await failed: {e}"))?;
        if matches!(rsp.body, ResponseBody::Err { .. }) {
            errors += 1;
        }
        next_await += 1;
    }
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);

    let stats = client
        .call(&Request {
            request_id: 2 + requests,
            tenant,
            verb: Verb::ReportStats,
        })
        .map_err(|e| format!("report-stats failed: {e}"))?;
    let ResponseBody::StatsOk(st) = stats.body else {
        return Err(format!("report-stats failed: {:?}", stats.body));
    };
    let algebra = st.accepted + st.rejected == st.sent;
    let mut out = format!(
        "bench: {requests} requests, depth {depth} (granted {granted}), \
         {errors} errored, {:.0} req/s\n\
         tenant counters: sent {}, accepted {}, rejected {}, completed {} \
         (accepted + rejected == sent: {algebra})",
        requests as f64 / elapsed,
        st.sent,
        st.accepted,
        st.rejected,
        st.completed,
    );
    if !algebra {
        out.push_str("\nerror: admission counter algebra violated");
        return Err(out);
    }
    Ok(out)
}

/// splitmix64: the repo's standard cheap deterministic mixer.
#[cfg(unix)]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(unix)]
fn format_response(args: &Args, body: ifet_serve::ResponseBody) -> Result<String, String> {
    use ifet_serve::ResponseBody;
    match body {
        ResponseBody::OpenOk {
            frames,
            dims,
            first_step,
            last_step,
            has_iatf,
            has_classifier,
            tracks,
        } => Ok(format!(
            "opened: {frames} frames of {}x{}x{}, steps {first_step}..{last_step}, \
             iatf {}, classifier {}, {tracks} completed tracks",
            dims.0,
            dims.1,
            dims.2,
            if has_iatf { "trained" } else { "absent" },
            if has_classifier { "trained" } else { "absent" },
        )),
        ResponseBody::ClassifyOk { voxels, words } => Ok(format!(
            "classified: {voxels} voxels above tau ({} mask words)",
            words.len()
        )),
        ResponseBody::TrackOk {
            voxels_per_frame,
            events,
        } => {
            let total: u64 = voxels_per_frame.iter().map(|&v| u64::from(v)).sum();
            Ok(format!(
                "tracked: {total} voxels across {} frames, {events} events\nper-frame: {voxels_per_frame:?}",
                voxels_per_frame.len()
            ))
        }
        ResponseBody::RenderSliceOk { width, height, rgb } => {
            if let Some(out) = args.opt("out") {
                let mut ppm = format!("P6\n{width} {height}\n255\n").into_bytes();
                ppm.extend_from_slice(&rgb);
                std::fs::write(out, ppm).map_err(|e| e.to_string())?;
                Ok(format!("rendered {width}x{height} slice -> {out}"))
            } else {
                Ok(format!(
                    "rendered {width}x{height} slice ({} bytes)",
                    rgb.len()
                ))
            }
        }
        ResponseBody::StatsOk(st) => Ok(format!(
            "tenant: sent {}, accepted {}, rejected {}, completed {}, max depth {}\n\
             batcher: {} jobs in {} cycles, {} MLP rows\n\
             paging: {} evictions ({} quota-local, {} idle-preferred)",
            st.sent,
            st.accepted,
            st.rejected,
            st.completed,
            st.max_depth,
            st.batch_jobs,
            st.batch_cycles,
            st.batch_rows,
            st.evictions,
            st.quota_evictions,
            st.idle_evictions,
        )),
        ResponseBody::HelloOk {
            version,
            max_pipeline,
        } => Ok(format!(
            "hello: protocol v{version}, pipeline depth {max_pipeline} granted"
        )),
        ResponseBody::CloseOk => Ok("closed".into()),
        ResponseBody::Err { code, message } => Err(format!("server error ({code:?}): {message}")),
    }
}

/// Dispatch a parsed command, honouring the cross-cutting observability
/// options: `--trace FILE` writes the versioned span tree as JSON,
/// `--profile` prints an aggregate per-span table to stderr, and
/// `--trace-mode full|stable` picks between wall-clock timings and the
/// deterministic-counters-only form (default `full`).
pub fn run(args: &Args) -> Result<String, String> {
    let trace_path = args.opt("trace");
    let profile = args.flag("profile");
    if trace_path.is_none() && !profile {
        return dispatch(args);
    }
    let mode = match args.opt("trace-mode").unwrap_or("full") {
        "full" => obs::TraceMode::Full,
        "stable" => obs::TraceMode::Stable,
        other => return Err(format!("invalid --trace-mode {other:?} (full or stable)")),
    };
    let (result, trace) = obs::capture(command_root(&args.command), || dispatch(args));
    let trace = match mode {
        obs::TraceMode::Full => trace,
        obs::TraceMode::Stable => trace.to_stable(),
    };
    if let Some(path) = trace_path {
        std::fs::write(path, trace.to_json_pretty())
            .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
    }
    if profile {
        eprintln!("{}", obs::profile_table(&trace));
    }
    result
}

/// Root span name for a subcommand ([`obs::capture`] wants a static name).
fn command_root(command: &str) -> &'static str {
    match command {
        "generate" => "ifet.generate",
        "generate-flow" => "ifet.generate-flow",
        "info" => "ifet.info",
        "train-iatf" => "ifet.train-iatf",
        "render" => "ifet.render",
        "track" => "ifet.track",
        "trace-particles" => "ifet.trace-particles",
        "session" => "ifet.session",
        "classify" => "ifet.classify",
        "suggest-keys" => "ifet.suggest-keys",
        "serve" => "ifet.serve",
        "client" => "ifet.client",
        _ => "ifet",
    }
}

fn dispatch(args: &Args) -> Result<String, String> {
    match args.command.as_str() {
        "generate" => cmd_generate(args),
        "generate-flow" => cmd_generate_flow(args),
        "info" => cmd_info(args),
        "train-iatf" => cmd_train_iatf(args),
        "render" => cmd_render(args),
        "track" => cmd_track(args),
        "trace-particles" => cmd_trace_particles(args),
        "session" => cmd_session(args),
        "classify" => cmd_classify(args),
        "suggest-keys" => cmd_suggest_keys(args),
        "serve" => cmd_serve(args),
        "client" => cmd_client(args),
        "help" | "--help" => Ok(USAGE.to_string()),
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    }
}

/// Usage text.
pub const USAGE: &str = "\
ifet — intelligent feature extraction and tracking for 4D flow data

USAGE:
  ifet generate <dataset> --out DIR [--dims N] [--seed S] [--compress]
  ifet info --data DIR
  ifet train-iatf --data DIR --key T:LO:HI [--key ...] [--epochs N] [--hidden N]
                  --out FILE
  ifet render --data DIR --step T (--iatf FILE | --band LO:HI) [--size N]
              [--batch N] --out FILE.ppm
  ifet track --data DIR --seed X,Y,Z [--threads N] [--batch N] [ooc options]
             (--iatf FILE [--tau V] | --band LO:HI | --session FILE --dataspace-tau V)
  ifet generate-flow <flow> --out DIR [--dims N] [--frames K] [--stride S]
                     [--compress]
  ifet trace-particles --flow DIR (--seed-grid N | --seed X,Y,Z ... |
                       --seed-from-track --data DIR --band LO:HI
                       --track-seed X,Y,Z) [--rk4-dt V] [--out FILE.plz]
                       [--surrogate-epochs N [--surrogate-hidden H]]
                       [--threads N] [ooc options]
  ifet session save --data DIR --out FILE [--key T:LO:HI ...] [--epochs N]
                    [--paint STEP:N ...] [--clf-epochs N] [--clf-hidden N]
                    [--paint-seed S] [--batch N]
                    [--seed X,Y,Z (--band LO:HI | --dataspace-tau V | --tau V)]
                    [--rounds N] [ooc options]
  ifet session load --data DIR --session FILE [ooc options]
  ifet session resume --data DIR --session FILE [--out FILE] [ooc options]
  ifet classify --data DIR --session FILE [--tau V] [--out DIR [--compress]]
                [--batch N] [ooc options]
  ifet suggest-keys --data DIR [--max N]
  ifet serve --socket PATH [--max-inflight N] [--max-requests N] [--workers N]
             [--tenant-quota-bytes B] [ooc options]
  ifet client <verb> --socket PATH [--tenant N] [verb options]

session service (serve / client):
  `serve` keeps many session artifacts resident at once, every tenant's
  frame data paged through ONE shared cache budget (--ooc-cache /
  --ooc-cache-bytes, default 8 frames). Requests from all connections are
  executed by a fixed pool of --workers threads (default 4); per-tenant
  admission is bounded by --max-inflight (default 4); requests beyond the
  bound are rejected with a typed Overloaded error, never queued.
  --tenant-quota-bytes B caps each open artifact's resident frame bytes at
  B on top of the global budget: a tenant over its quota evicts its OWN
  least-recent frames first, and global evictions prefer idle tenants'
  frames over actively-computing ones. --max-requests N exits after N
  answered requests (deterministic shutdown for scripts); a paging summary
  (high-water, evictions split by policy) is appended on exit.
  `client` verbs (tenant id rides with every request):
    open         --artifact FILE.ifet --data DIR
    classify     --step T [--tau V]
    track        --seed X,Y,Z (--band LO:HI | --dataspace-tau V | [--tau V])
    render-slice --step T [--axis x|y|z] [--k K] [--adaptive] [--out FILE.ppm]
    report-stats
    close
    bench        --artifact FILE.ifet --data DIR [--requests N] [--depth D]
                 [--seed S]   pipelined load generator: opens, negotiates a
                 hello handshake, keeps D requests outstanding, reports
                 req/s and the admission counter algebra

particle tracing (generate-flow / trace-particles):
  `generate-flow` writes an analytic velocity field (uniform, rotation, or
  swirl) as three scalar component series — <flow>_u/_v/_w frame files —
  that `trace-particles` advects a particle ensemble through with RK4
  (trilinear in space, linear between frames; --rk4-dt caps the step).
  Seeds come from a regular --seed-grid N (N per axis), explicit repeated
  --seed X,Y,Z positions, and/or --seed-from-track, which grows the feature
  at --track-seed in the scalar series at --data with the fixed --band and
  drops a particle at every voxel of its frame-0 mask. --out FILE writes
  the versioned, CRC-guarded pathline artifact (+ JSON sidecar);
  --surrogate-epochs N trains the MLP flow-map surrogate
  (seed, t0, dt) -> endpoint on the integrated pathlines and reports its
  held-out endpoint error in voxels. Pathline bytes are identical across
  --threads, cache budgets, and storage flavors; with an ooc budget each
  velocity component pages through its own cache of the requested size.

batched hot paths (render, track, session save, classify):
  --batch N             rows per batched classification pass, and samples per
                        ray packet when rendering (0 or omitted = auto).
                        Output is bit-identical at every width; this is purely
                        a throughput knob.

out-of-core options (track, trace-particles, session, classify):
  --ooc-cache N         page frames from disk through an N-frame LRU cache
                        instead of loading the series in core; results are
                        byte-identical, and a paging summary (resident
                        high-water in frames and bytes, hits/misses/
                        evictions) is appended
  --ooc-cache-bytes B   same, but the budget is B bytes of frame data
                        (mutually exclusive with --ooc-cache); eviction is
                        charged by actual frame size
  --prefetch D          read up to D upcoming frames in the background while
                        the current window computes; in-flight reads are
                        charged against the cache budget, so the bound holds
  --mmap                page raw frames by zero-copy mmap (borrowing the OS
                        page cache) instead of copying reads; results are
                        byte-identical; refuses compressed .rawz series

compressed frame storage (generate, classify --out):
  --compress            write frames as bricked, CRC-guarded compressed
                        .rawz containers instead of raw .raw payloads; all
                        readers decode them transparently and byte budgets
                        charge frames at their (smaller) compressed size

observability (any subcommand):
  --trace FILE          write a versioned JSON span tree of the run
  --profile             print an aggregate per-span profile table to stderr
  --trace-mode MODE     full (timings, default) or stable (deterministic
                        counters only; timings zeroed, runtime counters dropped)

datasets: shock-bubble, combustion-jet, reionization, turbulent-vortex,
          swirling-flow, qg-turbulence";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_basic_command() {
        let a = parse_args(&argv("generate shock-bubble --out /tmp/x --dims 32")).unwrap();
        assert_eq!(a.command, "generate");
        assert_eq!(a.positional, vec!["shock-bubble"]);
        assert_eq!(a.opt("out"), Some("/tmp/x"));
        assert_eq!(a.opt_parse("dims", 0usize).unwrap(), 32);
        assert_eq!(a.opt_parse("seed", 9u64).unwrap(), 9); // default
    }

    #[test]
    fn repeated_options_accumulate() {
        let a = parse_args(&argv("train-iatf --key 0:1:2 --key 5:2:3 --data d --out o")).unwrap();
        assert_eq!(a.all("key"), &["0:1:2".to_string(), "5:2:3".to_string()]);
    }

    #[test]
    fn missing_value_is_error() {
        assert!(parse_args(&argv("render --out")).is_err());
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn key_spec_parsing() {
        assert_eq!(parse_key_spec("195:0.4:0.9").unwrap(), (195, 0.4, 0.9));
        assert!(parse_key_spec("195:0.9:0.4").is_err()); // inverted
        assert!(parse_key_spec("195:0.4").is_err());
        assert!(parse_key_spec("x:0:1").is_err());
    }

    #[test]
    fn voxel_parsing() {
        assert_eq!(parse_voxel("3,4,5").unwrap(), (3, 4, 5));
        assert!(parse_voxel("3,4").is_err());
        assert!(parse_voxel("a,b,c").is_err());
    }

    #[test]
    fn band_parsing() {
        assert_eq!(parse_band("0.5:1.5").unwrap(), (0.5, 1.5));
        assert!(parse_band("1.5:0.5").is_err());
    }

    #[test]
    fn unknown_subcommand_mentions_usage() {
        let a = parse_args(&argv("bogus")).unwrap();
        let err = run(&a).unwrap_err();
        assert!(err.contains("USAGE"));
    }

    #[test]
    fn generate_then_info_and_train_roundtrip() {
        let dir = std::env::temp_dir().join(format!("ifet_cli_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_str().unwrap().to_string();

        let g = parse_args(&argv(&format!(
            "generate shock-bubble --out {dirs} --dims 16 --seed 3"
        )))
        .unwrap();
        let msg = run(&g).unwrap();
        assert!(msg.contains("wrote 5 frames"), "{msg}");

        // info: finds frames (including truth volumes, also .raw).
        let i = parse_args(&argv(&format!("info --data {dirs}"))).unwrap();
        let info = run(&i).unwrap();
        assert!(info.contains("frames of 16x16x16"), "{info}");

        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn suggest_keys_subcommand() {
        let dir = std::env::temp_dir().join(format!("ifet_cli_sk_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_str().unwrap().to_string();
        run(&parse_args(&argv(&format!(
            "generate shock-bubble --out {dirs} --dims 16"
        )))
        .unwrap())
        .unwrap();
        let out = run(&parse_args(&argv(&format!("suggest-keys --data {dirs} --max 3"))).unwrap())
            .unwrap();
        assert!(out.contains("suggested key frames"), "{out}");
        assert!(out.contains("195"), "endpoints must be included: {out}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn session_save_load_resume_roundtrip() {
        let dir = std::env::temp_dir().join(format!("ifet_cli_sess_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_str().unwrap().to_string();
        run(&parse_args(&argv(&format!(
            "generate shock-bubble --out {dirs} --dims 16 --seed 3"
        )))
        .unwrap())
        .unwrap();

        // Pick the hottest voxel of frame 0 and a band around it so the
        // fixed-band tracking has something to grow from.
        let series = load_series(&dirs).unwrap();
        let f0 = series.frame(0);
        let (mut best_i, mut best_v) = (0usize, f32::MIN);
        for (i, &v) in f0.as_slice().iter().enumerate() {
            if v > best_v {
                best_v = v;
                best_i = i;
            }
        }
        let (x, y, z) = series.dims().coords(best_i);
        let (glo, ghi) = series.global_range();
        let lo = best_v - 0.25 * (ghi - glo);

        // A full run and a run paused at round 0 (checkpoint on disk).
        let full = format!("{dirs}/full.ifet");
        let part = format!("{dirs}/part.ifet");
        let msg = run(&parse_args(&argv(&format!(
            "session save --data {dirs} --out {full} --seed {x},{y},{z} --band {lo}:{ghi}"
        )))
        .unwrap())
        .unwrap();
        assert!(msg.contains("tracking completed"), "{msg}");
        let msg = run(&parse_args(&argv(&format!(
            "session save --data {dirs} --out {part} --seed {x},{y},{z} --band {lo}:{ghi} --rounds 0"
        )))
        .unwrap())
        .unwrap();
        assert!(msg.contains("tracking paused"), "{msg}");

        // Inventory shows the checkpoint.
        let inv = run(&parse_args(&argv(&format!(
            "session load --data {dirs} --session {part}"
        )))
        .unwrap())
        .unwrap();
        assert!(inv.contains("pending checkpoint: FixedBand"), "{inv}");

        // Resume finishes the run; the resulting artifact is byte-identical
        // to the uninterrupted one (growth is a fixpoint).
        let resumed = format!("{dirs}/resumed.ifet");
        let msg = run(&parse_args(&argv(&format!(
            "session resume --data {dirs} --session {part} --out {resumed}"
        )))
        .unwrap())
        .unwrap();
        assert!(msg.contains("resumed tracking to completion"), "{msg}");
        assert_eq!(
            std::fs::read(&full).unwrap(),
            std::fs::read(&resumed).unwrap(),
            "resumed artifact must match the uninterrupted run byte-for-byte"
        );

        // A flipped byte anywhere makes `session load` fail loudly.
        let mut corrupt = std::fs::read(&full).unwrap();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x40;
        let bad = format!("{dirs}/bad.ifet");
        std::fs::write(&bad, &corrupt).unwrap();
        let err = run(&parse_args(&argv(&format!(
            "session load --data {dirs} --session {bad}"
        )))
        .unwrap())
        .unwrap_err();
        assert!(
            err.contains("checksum") || err.contains("malformed"),
            "{err}"
        );

        std::fs::remove_dir_all(dir).ok();
    }

    /// A 16-frame series with a drifting bright ball, written to a fresh
    /// temp directory (the `generate` datasets have fixed frame counts, so
    /// out-of-core tests build their own series).
    fn write_ooc_series(tag: &str) -> String {
        let d = Dims3::cube(12);
        let series = TimeSeries::from_frames(
            (0..16)
                .map(|k| {
                    let drift = 0.05 * k as f32;
                    let cx = 3.0 + 0.4 * k as f32;
                    let vol = ScalarVolume::from_fn(d, move |x, y, z| {
                        let dist = ((x as f32 - cx).powi(2)
                            + (y as f32 - 6.0).powi(2)
                            + (z as f32 - 6.0).powi(2))
                        .sqrt();
                        let base = (x + y + z) as f32 / 36.0 + drift;
                        if dist <= 2.5 {
                            base + 1.0
                        } else {
                            base
                        }
                    });
                    (k as u32 * 5, vol)
                })
                .collect(),
        );
        let dir = std::env::temp_dir().join(format!("ifet_cli_ooc_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        write_series_with(&dir, "ooc", &series, false).unwrap();
        dir.to_str().unwrap().to_string()
    }

    #[test]
    fn track_ooc_matches_in_core_and_stays_bounded() {
        let dirs = write_ooc_series("track");
        let track = |extra: &str| {
            run(&parse_args(&argv(&format!(
                "track --data {dirs} --seed 3,6,6 --band 0.9:3.0{extra}"
            )))
            .unwrap())
            .unwrap()
        };
        let reference = track("");
        assert!(reference.contains("events:"), "{reference}");

        let paged = track(" --ooc-cache 2");
        let (body, summary) = paged
            .split_once("ooc:")
            .expect("paged run must append an ooc summary");
        assert_eq!(body, reference, "out-of-core output must be byte-identical");

        // The bounded-memory witness: at most 2 data frames were ever
        // resident, even though the series has 16.
        let hw: usize = summary
            .split("resident high-water ")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.trim().parse().ok())
            .expect("summary must report the resident high-water mark");
        assert!(hw <= 2, "resident high-water {hw} exceeds --ooc-cache 2");
        assert!(summary.contains("misses"), "{summary}");
        std::fs::remove_dir_all(&dirs).ok();
    }

    /// Byte high-water parsed out of an ooc paging summary.
    fn parse_hw_bytes(summary: &str) -> u64 {
        summary
            .split(',')
            .find_map(|f| f.trim().strip_suffix("bytes high-water"))
            .and_then(|s| s.trim().parse().ok())
            .expect("summary must report the byte high-water mark")
    }

    #[test]
    fn track_ooc_byte_budget_matches_in_core_and_stays_bounded() {
        let dirs = write_ooc_series("bytes");
        let track = |extra: &str| {
            run(&parse_args(&argv(&format!(
                "track --data {dirs} --seed 3,6,6 --band 0.9:3.0{extra}"
            )))
            .unwrap())
            .unwrap()
        };
        let reference = track("");
        // Two 12^3 f32 frames' worth of budget.
        let budget = 2 * 12u64.pow(3) * 4;
        let paged = track(&format!(" --ooc-cache-bytes {budget}"));
        let (body, summary) = paged
            .split_once("ooc:")
            .expect("paged run must append an ooc summary");
        assert_eq!(body, reference, "byte-budget output must be byte-identical");
        assert!(
            summary.contains(&format!("cache budget {budget} bytes")),
            "{summary}"
        );
        // The bounded-memory witness, this time in bytes: resident plus
        // in-flight frame data never exceeded the budget.
        let hw_bytes = parse_hw_bytes(summary);
        assert!(
            hw_bytes <= budget,
            "byte high-water {hw_bytes} exceeds --ooc-cache-bytes {budget}"
        );
        std::fs::remove_dir_all(&dirs).ok();
    }

    #[test]
    fn track_ooc_prefetch_is_byte_identical_and_stays_bounded() {
        let dirs = write_ooc_series("prefetch");
        let track = |extra: &str| {
            run(&parse_args(&argv(&format!(
                "track --data {dirs} --seed 3,6,6 --band 0.9:3.0{extra}"
            )))
            .unwrap())
            .unwrap()
        };
        let reference = track("");
        for prefetch in [1usize, 2, 4] {
            let paged = track(&format!(" --ooc-cache 2 --prefetch {prefetch}"));
            let (body, summary) = paged
                .split_once("ooc:")
                .expect("paged run must append an ooc summary");
            assert_eq!(
                body, reference,
                "prefetch {prefetch} output must be byte-identical"
            );
            // Read-ahead must not break the budget: in-flight prefetch reads
            // are charged against the same two-frame bound.
            let hw: usize = summary
                .split("resident high-water ")
                .nth(1)
                .and_then(|s| s.split(',').next())
                .and_then(|s| s.trim().parse().ok())
                .unwrap();
            assert!(
                hw <= 2,
                "prefetch {prefetch}: high-water {hw} exceeds cache 2"
            );
            assert!(summary.contains("prefetch depth"), "{summary}");
        }
        std::fs::remove_dir_all(&dirs).ok();
    }

    #[test]
    fn stable_traces_invariant_across_threads_and_cache() {
        let dirs = write_ooc_series("trace");
        let trace_for = |threads: usize, cache: Option<usize>, prefetch: usize| -> Vec<u8> {
            let tag = cache.map_or("incore".to_string(), |c| c.to_string());
            let path = format!("{dirs}/trace_{threads}_{tag}_{prefetch}.json");
            let mut cache_arg = cache.map_or(String::new(), |c| format!(" --ooc-cache {c}"));
            if prefetch > 0 {
                cache_arg.push_str(&format!(" --prefetch {prefetch}"));
            }
            run(&parse_args(&argv(&format!(
                "track --data {dirs} --seed 3,6,6 --band 0.9:3.0 \
                 --threads {threads}{cache_arg} --trace {path} --trace-mode stable"
            )))
            .unwrap())
            .unwrap();
            std::fs::read(&path).unwrap()
        };
        let reference = trace_for(1, None, 0);
        for threads in [1usize, 2, 4] {
            for cache in [None, Some(1), Some(2), Some(16)] {
                // Prefetch workers emit no spans, so read-ahead depth must
                // be invisible in stable traces too.
                let prefetches: &[usize] = if cache.is_some() { &[0, 2] } else { &[0] };
                for &prefetch in prefetches {
                    assert_eq!(
                        trace_for(threads, cache, prefetch),
                        reference,
                        "stable trace diverged at threads {threads}, \
                         cache {cache:?}, prefetch {prefetch}"
                    );
                }
            }
        }
        std::fs::remove_dir_all(&dirs).ok();
    }

    #[test]
    fn ooc_cache_rejects_zero() {
        let a = parse_args(&argv(
            "track --data d --seed 0,0,0 --band 0:1 --ooc-cache 0",
        ))
        .unwrap();
        assert!(run(&a).unwrap_err().contains("at least 1"));
    }

    #[test]
    fn ooc_flag_validation() {
        let run_track = |flags: &str| {
            run(&parse_args(&argv(&format!(
                "track --data d --seed 0,0,0 --band 0:1 {flags}"
            )))
            .unwrap())
            .unwrap_err()
        };
        assert!(run_track("--ooc-cache-bytes 0").contains("positive"));
        assert!(run_track("--ooc-cache 2 --ooc-cache-bytes 100").contains("mutually exclusive"));
        assert!(run_track("--prefetch 2").contains("needs --ooc-cache"));
        assert!(run_track("--ooc-cache-bytes nope").contains("invalid --ooc-cache-bytes"));
    }

    #[test]
    fn mmap_flag_validation() {
        let a = parse_args(&argv("track --data d --seed 0,0,0 --band 0:1 --mmap")).unwrap();
        assert!(run(&a).unwrap_err().contains("needs --ooc-cache"));
    }

    #[test]
    fn track_mmap_matches_in_core_and_reports_mode() {
        let dirs = write_ooc_series("mmap");
        let track = |extra: &str| {
            run(&parse_args(&argv(&format!(
                "track --data {dirs} --seed 3,6,6 --band 0.9:3.0{extra}"
            )))
            .unwrap())
            .unwrap()
        };
        let reference = track("");
        let paged = track(" --ooc-cache 2 --mmap");
        let (body, summary) = paged
            .split_once("ooc:")
            .expect("paged run must append an ooc summary");
        assert_eq!(body, reference, "mmap output must be byte-identical");
        assert!(summary.contains("mmap"), "{summary}");
        std::fs::remove_dir_all(&dirs).ok();
    }

    #[test]
    fn generate_compress_roundtrips_and_mmap_refuses_it() {
        let dir = std::env::temp_dir().join(format!("ifet_cli_gz_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_str().unwrap().to_string();
        let raw_dir = format!("{dirs}/raw");
        let z_dir = format!("{dirs}/z");
        for (out, extra) in [(&raw_dir, ""), (&z_dir, " --compress")] {
            let msg = run(&parse_args(&argv(&format!(
                "generate shock-bubble --out {out} --dims 16 --seed 3{extra}"
            )))
            .unwrap())
            .unwrap();
            assert!(msg.contains("wrote 5 frames"), "{msg}");
        }
        assert!(
            frame_paths(&z_dir)
                .unwrap()
                .iter()
                .all(|p| p.extension().unwrap() == "rawz"),
            "--compress must write .rawz frames"
        );
        // Compressed frames take less disk.
        let bytes = |d: &str| -> u64 {
            frame_paths(d)
                .unwrap()
                .iter()
                .map(|p| std::fs::metadata(p).unwrap().len())
                .sum()
        };
        assert!(bytes(&z_dir) < bytes(&raw_dir));
        // Identical analysis output from either flavor, in core or paged.
        let track = |data: &str, extra: &str| {
            run(&parse_args(&argv(&format!(
                "track --data {data} --seed 8,8,8 --band 0.9:3.0{extra}"
            )))
            .unwrap())
            .unwrap()
        };
        let reference = track(&raw_dir, "");
        assert_eq!(track(&z_dir, ""), reference);
        let paged = track(&z_dir, " --ooc-cache 2");
        assert_eq!(paged.split_once("ooc:").unwrap().0, reference);
        // mmap needs a byte-for-byte voxel image on disk: compressed frames
        // are refused up front.
        let err = run(&parse_args(&argv(&format!(
            "track --data {z_dir} --seed 8,8,8 --band 0.9:3.0 --ooc-cache 2 --mmap"
        )))
        .unwrap())
        .unwrap_err();
        assert!(err.contains("unsupported dtype"), "{err}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn classify_out_compress_writes_rawz_certainty() {
        let dir = std::env::temp_dir().join(format!("ifet_cli_cz_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_str().unwrap().to_string();
        run(&parse_args(&argv(&format!(
            "generate shock-bubble --out {dirs} --dims 16 --seed 3"
        )))
        .unwrap())
        .unwrap();
        let sess = format!("{dirs}/clf.ifet");
        run(&parse_args(&argv(&format!(
            "session save --data {dirs} --out {sess} --paint 195:10 --clf-epochs 5 --clf-hidden 2"
        )))
        .unwrap())
        .unwrap();
        let cert_raw = format!("{dirs}/cert_raw");
        let cert_z = format!("{dirs}/cert_z");
        let out_raw = run(&parse_args(&argv(&format!(
            "classify --data {dirs} --session {sess} --out {cert_raw}"
        )))
        .unwrap())
        .unwrap();
        let out_z = run(&parse_args(&argv(&format!(
            "classify --data {dirs} --session {sess} --out {cert_z} --compress"
        )))
        .unwrap())
        .unwrap();
        assert_eq!(
            out_raw.replace(&cert_raw, "OUT"),
            out_z.replace(&cert_z, "OUT"),
            "coverage table must not depend on output compression"
        );
        let zpaths = frame_paths(&cert_z).unwrap();
        assert!(zpaths.iter().all(|p| p.extension().unwrap() == "rawz"));
        // The compressed certainty frames decode to the raw ones bit-for-bit.
        let raw_series = read_series(&frame_paths(&cert_raw).unwrap()).unwrap();
        let z_series = read_series(&zpaths).unwrap();
        assert_eq!(raw_series, z_series);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn batch_flag_validation() {
        let a = parse_args(&argv("classify --data d --session s --batch nope")).unwrap();
        assert!(batch_opt(&a).unwrap_err().contains("invalid --batch"));
        let a = parse_args(&argv("classify --data d --session s")).unwrap();
        assert_eq!(batch_opt(&a).unwrap(), 0, "omitted --batch means auto");
    }

    #[test]
    fn classify_batch_axis_is_invariant_in_stable_traces() {
        let dir = std::env::temp_dir().join(format!("ifet_cli_batch_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_str().unwrap().to_string();
        run(&parse_args(&argv(&format!(
            "generate shock-bubble --out {dirs} --dims 16 --seed 3"
        )))
        .unwrap())
        .unwrap();
        let sess = format!("{dirs}/clf.ifet");
        run(&parse_args(&argv(&format!(
            "session save --data {dirs} --out {sess} --paint 195:40 --clf-epochs 60"
        )))
        .unwrap())
        .unwrap();

        // Coverage tables AND stable traces must be byte-identical at every
        // batch width: batching is a throughput knob, not a result knob, and
        // the batch counters are runtime-only so stable mode drops them.
        let classify_at = |batch: Option<usize>| -> (String, Vec<u8>) {
            let tag = batch.map_or("auto".to_string(), |b| b.to_string());
            let path = format!("{dirs}/ctrace_{tag}.json");
            let barg = batch.map_or(String::new(), |b| format!(" --batch {b}"));
            let out = run(&parse_args(&argv(&format!(
                "classify --data {dirs} --session {sess}{barg} \
                 --trace {path} --trace-mode stable"
            )))
            .unwrap())
            .unwrap();
            (out, std::fs::read(&path).unwrap())
        };
        let (ref_out, ref_trace) = classify_at(None);
        assert!(ref_out.contains("mean-certainty"), "{ref_out}");
        for b in [1usize, 7, 64] {
            let (out, trace) = classify_at(Some(b));
            assert_eq!(out, ref_out, "coverage diverged at --batch {b}");
            assert_eq!(trace, ref_trace, "stable trace diverged at --batch {b}");
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn hidden_flags_validate_and_surface_model_errors() {
        let dir = std::env::temp_dir().join(format!("ifet_cli_hid_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_str().unwrap().to_string();
        run(&parse_args(&argv(&format!(
            "generate shock-bubble --out {dirs} --dims 16 --seed 3"
        )))
        .unwrap())
        .unwrap();

        // train-iatf rejects a zero hidden width up front.
        let err = run(&parse_args(&argv(&format!(
            "train-iatf --data {dirs} --key 195:0.5:1.0 --hidden 0 --out {dirs}/x.iatf"
        )))
        .unwrap())
        .unwrap_err();
        assert!(err.contains("at least 1"), "{err}");

        // A zero classifier width flows through the typed model error
        // instead of panicking inside the network constructor.
        let err = run(&parse_args(&argv(&format!(
            "session save --data {dirs} --out {dirs}/c.ifet --paint 195:10 --clf-hidden 0"
        )))
        .unwrap())
        .unwrap_err();
        assert!(err.contains("classifier training failed"), "{err}");
        assert!(err.contains("zero"), "{err}");

        // A small nonzero width trains fine.
        let msg = run(&parse_args(&argv(&format!(
            "session save --data {dirs} --out {dirs}/c.ifet --paint 195:10 \
             --clf-epochs 5 --clf-hidden 2"
        )))
        .unwrap())
        .unwrap();
        assert!(msg.contains("trained data-space classifier"), "{msg}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[cfg(unix)]
    #[test]
    fn serve_and_client_round_trip_over_a_socket() {
        let dir = std::env::temp_dir().join(format!("ifet_cli_srv_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_str().unwrap().to_string();
        run(&parse_args(&argv(&format!(
            "generate shock-bubble --out {dirs} --dims 16 --seed 3"
        )))
        .unwrap())
        .unwrap();
        let sess = format!("{dirs}/srv.ifet");
        run(&parse_args(&argv(&format!(
            "session save --data {dirs} --out {sess} --paint 195:10 --clf-epochs 5 --clf-hidden 2"
        )))
        .unwrap())
        .unwrap();

        let sock = format!("{dirs}/ifet.sock");
        let server = {
            let serve = parse_args(&argv(&format!(
                "serve --socket {sock} --ooc-cache 2 --max-requests 4"
            )))
            .unwrap();
            std::thread::spawn(move || run(&serve))
        };
        let call = |line: &str| -> Result<String, String> {
            // The server binds asynchronously; retry connects briefly.
            let args = parse_args(&argv(line)).unwrap();
            for _ in 0..500 {
                match run(&args) {
                    Err(e) if e.contains("cannot connect") => {
                        std::thread::sleep(std::time::Duration::from_millis(2))
                    }
                    other => return other,
                }
            }
            Err("server never came up".into())
        };

        let msg = call(&format!(
            "client open --socket {sock} --tenant 5 --artifact {sess} --data {dirs}"
        ))
        .unwrap();
        assert!(msg.contains("opened: 5 frames of 16x16x16"), "{msg}");
        assert!(msg.contains("classifier trained"), "{msg}");
        let msg = call(&format!(
            "client classify --socket {sock} --tenant 5 --step 195 --tau 0.5"
        ))
        .unwrap();
        assert!(msg.contains("voxels above tau"), "{msg}");
        let msg = call(&format!("client report-stats --socket {sock} --tenant 5")).unwrap();
        assert!(msg.contains("accepted 3"), "{msg}");
        let msg = call(&format!("client close --socket {sock} --tenant 5")).unwrap();
        assert_eq!(msg, "closed");

        let served = server.join().unwrap().unwrap();
        assert!(served.contains("served 4 requests"), "{served}");
        std::fs::remove_dir_all(dir).ok();
    }

    /// `client bench` drives a pipelined load through a worker-pool server
    /// and reports the admission counter algebra; when the server goes away
    /// mid-conversation the CLI surfaces the friendly typed disconnect,
    /// never a panic or a raw broken-pipe error.
    #[cfg(unix)]
    #[test]
    fn client_bench_pipelines_and_disconnects_are_friendly() {
        let dir = std::env::temp_dir().join(format!("ifet_cli_bench_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_str().unwrap().to_string();
        run(&parse_args(&argv(&format!(
            "generate shock-bubble --out {dirs} --dims 16 --seed 3"
        )))
        .unwrap())
        .unwrap();
        let sess = format!("{dirs}/srv.ifet");
        run(&parse_args(&argv(&format!(
            "session save --data {dirs} --out {sess} --paint 195:10 --clf-epochs 5 --clf-hidden 2"
        )))
        .unwrap())
        .unwrap();

        let call = |line: &str| -> Result<String, String> {
            let args = parse_args(&argv(line)).unwrap();
            for _ in 0..500 {
                match run(&args) {
                    Err(e) if e.contains("cannot connect") => {
                        std::thread::sleep(std::time::Duration::from_millis(2))
                    }
                    other => return other,
                }
            }
            Err("server never came up".into())
        };

        // open + hello + 8 pipelined + report-stats = 11 served requests.
        let sock = format!("{dirs}/bench.sock");
        let server = {
            let serve = parse_args(&argv(&format!(
                "serve --socket {sock} --ooc-cache 3 --workers 2 \
                 --tenant-quota-bytes 50000000 --max-requests 11"
            )))
            .unwrap();
            std::thread::spawn(move || run(&serve))
        };
        let msg = call(&format!(
            "client bench --socket {sock} --tenant 2 --artifact {sess} --data {dirs} \
             --requests 8 --depth 4 --seed 3"
        ))
        .unwrap();
        assert!(msg.contains("bench: 8 requests"), "{msg}");
        assert!(msg.contains("granted 4"), "{msg}");
        assert!(msg.contains("0 errored"), "{msg}");
        assert!(msg.contains("accepted + rejected == sent: true"), "{msg}");
        let served = server.join().unwrap().unwrap();
        assert!(served.contains("served 11 requests"), "{served}");
        assert!(served.contains("quota-local"), "{served}");

        // A one-request server dies right after the bench's open; the hello
        // that follows on the same connection must come back as the typed
        // friendly disconnect.
        let sock = format!("{dirs}/bench1.sock");
        let server = {
            let serve = parse_args(&argv(&format!(
                "serve --socket {sock} --ooc-cache 2 --max-requests 1"
            )))
            .unwrap();
            std::thread::spawn(move || run(&serve))
        };
        let err = call(&format!(
            "client bench --socket {sock} --tenant 2 --artifact {sess} --data {dirs} \
             --requests 4 --depth 2"
        ))
        .unwrap_err();
        assert!(err.contains("server closed the connection"), "{err}");
        assert!(!err.contains("Broken pipe"), "{err}");
        server.join().unwrap().unwrap();
        std::fs::remove_dir_all(dir).ok();
    }

    #[cfg(unix)]
    #[test]
    fn client_verb_validation() {
        let a = parse_args(&argv("client --socket /tmp/x.sock")).unwrap();
        assert!(run(&a).unwrap_err().contains("needs a verb"));
        let a = parse_args(&argv("client frobnicate --socket /tmp/x.sock")).unwrap();
        assert!(run(&a).unwrap_err().contains("unknown client verb"));
        let a = parse_args(&argv(
            "client render-slice --socket /tmp/x.sock --step 0 --axis w",
        ))
        .unwrap();
        assert!(run(&a).unwrap_err().contains("invalid --axis"));
        let a = parse_args(&argv("serve --socket /tmp/x.sock --max-inflight 0")).unwrap();
        assert!(run(&a).unwrap_err().contains("at least 1"));
        let a = parse_args(&argv("serve --socket /tmp/x.sock --ooc-cache 2 --mmap")).unwrap();
        assert!(run(&a).unwrap_err().contains("not supported"));
    }

    #[test]
    fn session_needs_action() {
        let a = parse_args(&argv("session --data d")).unwrap();
        assert!(run(&a).unwrap_err().contains("save, load, or resume"));
        let a = parse_args(&argv("session frobnicate --data d")).unwrap();
        assert!(run(&a).unwrap_err().contains("unknown session action"));
    }

    #[test]
    fn render_requires_tf_source() {
        let dir = std::env::temp_dir().join(format!("ifet_cli_r_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dirs = dir.to_str().unwrap().to_string();
        run(&parse_args(&argv(&format!(
            "generate turbulent-vortex --out {dirs} --dims 16"
        )))
        .unwrap())
        .unwrap();

        let r = parse_args(&argv(&format!(
            "render --data {dirs} --step 50 --out {dirs}/img.ppm"
        )))
        .unwrap();
        assert!(run(&r).unwrap_err().contains("--iatf"));

        let r2 = parse_args(&argv(&format!(
            "render --data {dirs} --step 50 --band 0.5:2.0 --size 32 --out {dirs}/img.ppm"
        )))
        .unwrap();
        let msg = run(&r2).unwrap();
        assert!(msg.contains("rendered step 50"), "{msg}");
        assert!(dir.join("img.ppm").exists());

        // `--batch` only changes the ray caster's packet width; the image
        // bytes must not move.
        let r3 = parse_args(&argv(&format!(
            "render --data {dirs} --step 50 --band 0.5:2.0 --size 32 --batch 5 \
             --out {dirs}/img_b.ppm"
        )))
        .unwrap();
        run(&r3).unwrap();
        assert_eq!(
            std::fs::read(dir.join("img.ppm")).unwrap(),
            std::fs::read(dir.join("img_b.ppm")).unwrap(),
            "--batch must not change rendered bytes"
        );
        std::fs::remove_dir_all(dir).ok();
    }
}
