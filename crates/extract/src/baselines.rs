//! Conventional baselines the learning-based extraction is compared against
//! in Figure 7: the 1D transfer function (a value band) and repeated
//! smoothing of the volume.

use ifet_tf::TransferFunction2D;
use ifet_volume::filter::repeated_blur;
use ifet_volume::sample::gradient_magnitude_volume;
use ifet_volume::{Mask3, ScalarVolume};

/// The 1D-transfer-function baseline: every voxel whose value lies in
/// `[lo, hi]` is "the feature". Cannot use spatial context, so same-valued
/// small features pollute the result.
pub fn value_band_mask(vol: &ScalarVolume, lo: f32, hi: f32) -> Mask3 {
    Mask3::value_band(vol, lo, hi)
}

/// The conventional filtering baseline: "repeatedly smooth the data" then
/// apply the value band. Removes small features but erodes the large
/// features' boundary detail along with them.
pub fn blur_then_band_mask(
    vol: &ScalarVolume,
    sigma: f32,
    passes: usize,
    lo: f32,
    hi: f32,
) -> Mask3 {
    let smoothed = repeated_blur(vol, sigma, passes);
    Mask3::value_band(&smoothed, lo, hi)
}

/// Sweep a value threshold and return the `(lo, f1)` that maximizes F1
/// against the ground truth — gives the *best possible* 1D TF so comparisons
/// are fair (the baseline is not handicapped by a poorly chosen band).
pub fn best_threshold_band(vol: &ScalarVolume, truth: &Mask3, candidates: usize) -> (f32, f64) {
    let (lo, hi) = vol.value_range();
    let mut best = (lo, -1.0f64);
    for i in 0..candidates.max(1) {
        let t = lo + (hi - lo) * i as f32 / candidates as f32;
        let f1 = Mask3::threshold(vol, t).f1(truth);
        if f1 > best.1 {
            best = (t, f1);
        }
    }
    best
}

/// Sweep a 2D (value, gradient-magnitude) threshold grid and return the
/// best-F1 2D transfer function band — the Kindlmann-style baseline with
/// the same fairness treatment as [`best_threshold_band`]. Returns
/// `(value_threshold, gradient_threshold, f1)`; the selected band is
/// `value >= vt AND gradient <= gt` (interiors) or `gradient >= gt`
/// (boundaries), whichever scores higher.
pub fn best_tf2d_band(
    vol: &ScalarVolume,
    truth: &Mask3,
    candidates: usize,
) -> (TransferFunction2D, f64) {
    let (vlo, vhi) = vol.value_range();
    let grad = gradient_magnitude_volume(vol);
    let (glo, ghi) = grad.value_range();
    let n = candidates.max(2);
    let mut best: Option<(TransferFunction2D, f64)> = None;
    for i in 0..n {
        let vt = vlo + (vhi - vlo) * i as f32 / n as f32;
        for j in 0..n {
            let gt = glo + (ghi - glo) * j as f32 / n as f32;
            for interior in [true, false] {
                let g_band = if interior { (glo, gt) } else { (gt, ghi) };
                if g_band.1 <= g_band.0 {
                    continue;
                }
                let mask = Mask3::from_fn(vol.dims(), |x, y, z| {
                    let v = *vol.get(x, y, z);
                    let g = *grad.get(x, y, z);
                    v >= vt && g >= g_band.0 && g <= g_band.1
                });
                let f1 = mask.f1(truth);
                if best.as_ref().map(|(_, b)| f1 > *b).unwrap_or(true) {
                    let tf =
                        TransferFunction2D::band((vlo, vhi), (glo, ghi), (vt, vhi), g_band, 1.0);
                    best = Some((tf, f1));
                }
            }
        }
    }
    best.expect("candidate grid is non-empty")
}

/// Boundary-detail score of an extraction: the surface voxel count of the
/// mask restricted to the truth region, normalized by the truth's own
/// surface count. Blur-based extraction scores low because it rounds off
/// the fine boundary structure.
pub fn detail_score(mask: &Mask3, truth: &Mask3) -> f64 {
    let truth_surface = truth.surface_count();
    if truth_surface == 0 {
        return 1.0;
    }
    let mut inside = mask.clone();
    inside.intersect_with(truth);
    // Surface voxels of the prediction that are also truth-surface voxels.
    let mut pred_surface = Mask3::empty(mask.dims());
    for (x, y, z) in inside.set_coords() {
        let on_surface = mask
            .dims()
            .neighbors6(x, y, z)
            .any(|(a, b, c)| !inside.get(a, b, c));
        if on_surface {
            pred_surface.set(x, y, z, true);
        }
    }
    let mut truth_surf_mask = Mask3::empty(truth.dims());
    for (x, y, z) in truth.set_coords() {
        let on_surface = truth
            .dims()
            .neighbors6(x, y, z)
            .any(|(a, b, c)| !truth.get(a, b, c));
        if on_surface {
            truth_surf_mask.set(x, y, z, true);
        }
    }
    pred_surface.intersection_count(&truth_surf_mask) as f64 / truth_surface as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifet_volume::Dims3;

    fn scene() -> (ScalarVolume, Mask3) {
        // A large ball (r=7) and small bright specks, all value 1.0.
        let d = Dims3::cube(24);
        let c = 11.5f32;
        let dist = |x: usize, y: usize, z: usize| {
            ((x as f32 - c).powi(2) + (y as f32 - c).powi(2) + (z as f32 - c).powi(2)).sqrt()
        };
        let specks = [(2usize, 2usize, 2usize), (20, 4, 18), (4, 20, 20)];
        let vol = ScalarVolume::from_fn(d, |x, y, z| {
            if dist(x, y, z) <= 7.0 || specks.contains(&(x, y, z)) {
                1.0
            } else {
                0.0
            }
        });
        let truth = Mask3::from_fn(d, |x, y, z| dist(x, y, z) <= 7.0);
        (vol, truth)
    }

    #[test]
    fn value_band_captures_everything_bright() {
        let (vol, truth) = scene();
        let band = value_band_mask(&vol, 0.5, 1.5);
        assert!(band.recall(&truth) > 0.999);
        assert!(band.precision(&truth) < 1.0, "specks must pollute the band");
    }

    #[test]
    fn blur_removes_specks_but_shrinks_detail() {
        let (vol, truth) = scene();
        let blurred = blur_then_band_mask(&vol, 1.2, 2, 0.5, 1.5);
        // Specks are gone...
        for &(x, y, z) in &[(2usize, 2usize, 2usize), (20, 4, 18)] {
            assert!(!blurred.get(x, y, z), "speck survived blurring");
        }
        // ...but the ball shrank (recall drops).
        assert!(blurred.recall(&truth) < value_band_mask(&vol, 0.5, 1.5).recall(&truth));
    }

    #[test]
    fn best_threshold_finds_reasonable_band() {
        let (vol, truth) = scene();
        let (t, f1) = best_threshold_band(&vol, &truth, 32);
        assert!(f1 > 0.9, "best threshold F1 {f1}");
        assert!(t > 0.0 && t <= 1.0);
    }

    #[test]
    fn best_tf2d_band_beats_or_matches_1d_on_boundary_task() {
        // Truth = the shell of a ball: definable in (value, gradient) space,
        // not in value alone.
        let d = Dims3::cube(20);
        let c = 9.5f32;
        let dist = |x: usize, y: usize, z: usize| {
            ((x as f32 - c).powi(2) + (y as f32 - c).powi(2) + (z as f32 - c).powi(2)).sqrt()
        };
        let vol = ScalarVolume::from_fn(d, |x, y, z| if dist(x, y, z) <= 6.0 { 1.0 } else { 0.0 });
        let truth = Mask3::from_fn(d, |x, y, z| {
            let dd = dist(x, y, z);
            (5.0..=6.0).contains(&dd)
        });
        let (_, f1_1d) = best_threshold_band(&vol, &truth, 24);
        let (tf2d, f1_2d) = best_tf2d_band(&vol, &truth, 12);
        assert!(
            f1_2d > f1_1d + 0.1,
            "2D TF should win on a boundary task: {f1_2d} vs {f1_1d}"
        );
        // And the returned TF actually reproduces that score.
        let mask = tf2d.extract_mask(&vol, 0.5);
        assert!((mask.f1(&truth) - f1_2d).abs() < 0.05);
    }

    #[test]
    fn detail_score_perfect_for_exact_match() {
        let (_, truth) = scene();
        assert!((detail_score(&truth, &truth) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn detail_score_penalizes_blurred_extraction() {
        let (vol, truth) = scene();
        let sharp = value_band_mask(&vol, 0.5, 1.5);
        let blurred = blur_then_band_mask(&vol, 1.5, 3, 0.5, 1.5);
        let ds_sharp = detail_score(&sharp, &truth);
        let ds_blur = detail_score(&blurred, &truth);
        assert!(
            ds_sharp > ds_blur,
            "sharp {ds_sharp} should beat blurred {ds_blur}"
        );
    }

    #[test]
    fn detail_score_empty_truth_is_one() {
        let d = Dims3::cube(4);
        assert_eq!(detail_score(&Mask3::full(d), &Mask3::empty(d)), 1.0);
    }
}
