//! Per-voxel feature vectors.
//!
//! "The trained network in fact takes as input a feature vector which
//! consists of data values of the feature, neighborhood information, and the
//! time step number" (Section 4.3). The user may drop properties they
//! consider unimportant (Section 6), shrinking the network.

use ifet_volume::shell::ShellOffsets;
use ifet_volume::{Dims3, ScalarVolume};
use serde::{Deserialize, Serialize};

/// How the spherical-shell neighborhood enters the feature vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShellMode {
    /// No neighborhood information.
    None,
    /// Summary statistics of the shell: mean, min, max, stddev (4 features).
    Stats,
    /// `count` raw shell samples on a Fibonacci sphere (count features).
    /// This is the paper's "voxels a fixed distance away" descriptor.
    Samples { count: usize },
}

/// Which data properties make up a voxel's feature vector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureSpec {
    /// Include the voxel's own scalar value.
    pub value: bool,
    /// Neighborhood shell configuration.
    pub shell: ShellMode,
    /// Shell radius in voxels (ignored for `ShellMode::None`).
    pub shell_radius: f32,
    /// Include the voxel's normalized (x, y, z) position (3 features) —
    /// the "location" property of Section 4.3.
    pub position: bool,
    /// Include the normalized time step (1 feature).
    pub time: bool,
}

impl Default for FeatureSpec {
    fn default() -> Self {
        Self {
            value: true,
            shell: ShellMode::Stats,
            shell_radius: 3.0,
            position: false,
            time: true,
        }
    }
}

impl FeatureSpec {
    /// Number of features this spec produces per voxel.
    pub fn len(&self) -> usize {
        let mut n = 0;
        if self.value {
            n += 1;
        }
        n += match self.shell {
            ShellMode::None => 0,
            ShellMode::Stats => 4,
            ShellMode::Samples { count } => count,
        };
        if self.position {
            n += 3;
        }
        if self.time {
            n += 1;
        }
        n
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Assembles feature vectors for voxels of a volume according to a spec.
/// Construct once per (spec, radius); reuse across voxels and frames.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    spec: FeatureSpec,
    shell: Option<ShellOffsets>,
}

impl FeatureExtractor {
    pub fn new(spec: FeatureSpec) -> Self {
        assert!(!spec.is_empty(), "feature spec selects no properties");
        let shell = match spec.shell {
            ShellMode::None => None,
            ShellMode::Stats => Some(ShellOffsets::full(spec.shell_radius)),
            ShellMode::Samples { count } => Some(ShellOffsets::fibonacci(spec.shell_radius, count)),
        };
        Self { spec, shell }
    }

    pub fn spec(&self) -> &FeatureSpec {
        &self.spec
    }

    /// Feature-vector length (shell sample counts are resolved, so this can
    /// differ slightly from `spec.len()` for `Samples` after deduplication).
    pub fn num_features(&self) -> usize {
        let mut n = 0;
        if self.spec.value {
            n += 1;
        }
        n += match self.spec.shell {
            ShellMode::None => 0,
            ShellMode::Stats => 4,
            ShellMode::Samples { .. } => self.shell.as_ref().unwrap().len(),
        };
        if self.spec.position {
            n += 3;
        }
        if self.spec.time {
            n += 1;
        }
        n
    }

    /// Assemble the feature vector for voxel `(x, y, z)` of `vol` at
    /// normalized time `t_norm`, appending into `out` (cleared first).
    pub fn vector_into(
        &self,
        vol: &ScalarVolume,
        x: usize,
        y: usize,
        z: usize,
        t_norm: f32,
        out: &mut Vec<f32>,
    ) {
        out.clear();
        self.append_one(vol, x, y, z, t_norm, out);
    }

    fn append_one(
        &self,
        vol: &ScalarVolume,
        x: usize,
        y: usize,
        z: usize,
        t_norm: f32,
        out: &mut Vec<f32>,
    ) {
        if self.spec.value {
            out.push(*vol.get(x, y, z));
        }
        match self.spec.shell {
            ShellMode::None => {}
            ShellMode::Stats => {
                let stats = self.shell.as_ref().unwrap().sample_stats(vol, x, y, z);
                out.extend_from_slice(&stats);
            }
            ShellMode::Samples { .. } => {
                self.shell.as_ref().unwrap().sample_into(vol, x, y, z, out);
            }
        }
        if self.spec.position {
            let d = vol.dims();
            out.push(x as f32 / (d.nx - 1).max(1) as f32);
            out.push(y as f32 / (d.ny - 1).max(1) as f32);
            out.push(z as f32 / (d.nz - 1).max(1) as f32);
        }
        if self.spec.time {
            out.push(t_norm);
        }
    }

    /// Assemble feature rows for the run of `len` voxels starting at
    /// `(x0, y, z)` along x, appending `len * num_features()` values to
    /// `out` (cleared first). Each row is assembled by the exact same code
    /// as [`FeatureExtractor::vector_into`], so batched rows are
    /// bit-identical to per-voxel rows.
    #[allow(clippy::too_many_arguments)]
    pub fn vectors_run_into(
        &self,
        vol: &ScalarVolume,
        x0: usize,
        len: usize,
        y: usize,
        z: usize,
        t_norm: f32,
        out: &mut Vec<f32>,
    ) {
        out.clear();
        out.reserve(len * self.num_features());
        for x in x0..x0 + len {
            self.append_one(vol, x, y, z, t_norm, out);
        }
    }

    /// Allocating convenience wrapper.
    pub fn vector(
        &self,
        vol: &ScalarVolume,
        x: usize,
        y: usize,
        z: usize,
        t_norm: f32,
    ) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_features());
        self.vector_into(vol, x, y, z, t_norm, &mut out);
        out
    }

    /// Multivariate feature vector (paper Section 8: "that the system can
    /// take multivariate data as input opens a new dimension for scientific
    /// discovery"): the values of *every* variable at the voxel, plus the
    /// shell/position/time features of the primary variable `mv.var_at(0)`.
    /// The scientist never specifies inter-variable relationships — the
    /// network learns them.
    pub fn vector_multi_into(
        &self,
        mv: &ifet_volume::MultiVolume,
        x: usize,
        y: usize,
        z: usize,
        t_norm: f32,
        out: &mut Vec<f32>,
    ) {
        assert!(mv.num_vars() > 0, "multivariate volume has no variables");
        out.clear();
        self.append_one_multi(mv, x, y, z, t_norm, out);
    }

    fn append_one_multi(
        &self,
        mv: &ifet_volume::MultiVolume,
        x: usize,
        y: usize,
        z: usize,
        t_norm: f32,
        out: &mut Vec<f32>,
    ) {
        if self.spec.value {
            mv.values_at_into(x, y, z, out);
        }
        let primary = mv.var_at(0);
        match self.spec.shell {
            ShellMode::None => {}
            ShellMode::Stats => {
                let stats = self.shell.as_ref().unwrap().sample_stats(primary, x, y, z);
                out.extend_from_slice(&stats);
            }
            ShellMode::Samples { .. } => {
                self.shell
                    .as_ref()
                    .unwrap()
                    .sample_into(primary, x, y, z, out);
            }
        }
        if self.spec.position {
            let d = primary.dims();
            out.push(x as f32 / (d.nx - 1).max(1) as f32);
            out.push(y as f32 / (d.ny - 1).max(1) as f32);
            out.push(z as f32 / (d.nz - 1).max(1) as f32);
        }
        if self.spec.time {
            out.push(t_norm);
        }
    }

    /// Multivariate analogue of [`FeatureExtractor::vectors_run_into`]:
    /// rows for the run of `len` voxels starting at `(x0, y, z)` along x.
    #[allow(clippy::too_many_arguments)]
    pub fn vectors_run_multi_into(
        &self,
        mv: &ifet_volume::MultiVolume,
        x0: usize,
        len: usize,
        y: usize,
        z: usize,
        t_norm: f32,
        out: &mut Vec<f32>,
    ) {
        assert!(mv.num_vars() > 0, "multivariate volume has no variables");
        out.clear();
        out.reserve(len * self.num_features_multi(mv.num_vars()));
        for x in x0..x0 + len {
            self.append_one_multi(mv, x, y, z, t_norm, out);
        }
    }

    /// Feature count for a multivariate volume with `num_vars` variables.
    pub fn num_features_multi(&self, num_vars: usize) -> usize {
        let base = self.num_features();
        if self.spec.value {
            base - 1 + num_vars
        } else {
            base
        }
    }
}

/// Convenience: check two dims match (used by callers classifying series).
pub fn assert_same_dims(a: Dims3, b: Dims3) {
    assert_eq!(a, b, "volume dims mismatch: {a} vs {b}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifet_volume::Dims3;

    fn vol_ball(n: usize, r: f32) -> ScalarVolume {
        let c = (n as f32 - 1.0) / 2.0;
        ScalarVolume::from_fn(Dims3::cube(n), |x, y, z| {
            let d =
                ((x as f32 - c).powi(2) + (y as f32 - c).powi(2) + (z as f32 - c).powi(2)).sqrt();
            if d <= r {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn spec_lengths() {
        assert_eq!(FeatureSpec::default().len(), 6); // value + 4 stats + time
        let full = FeatureSpec {
            value: true,
            shell: ShellMode::Samples { count: 26 },
            shell_radius: 2.0,
            position: true,
            time: true,
        };
        assert_eq!(full.len(), 1 + 26 + 3 + 1);
        let none = FeatureSpec {
            value: false,
            shell: ShellMode::None,
            shell_radius: 1.0,
            position: false,
            time: false,
        };
        assert!(none.is_empty());
    }

    #[test]
    #[should_panic]
    fn empty_spec_panics() {
        let _ = FeatureExtractor::new(FeatureSpec {
            value: false,
            shell: ShellMode::None,
            shell_radius: 1.0,
            position: false,
            time: false,
        });
    }

    #[test]
    fn vector_length_matches() {
        let fx = FeatureExtractor::new(FeatureSpec::default());
        let v = vol_ball(16, 4.0);
        let vec = fx.vector(&v, 8, 8, 8, 0.5);
        assert_eq!(vec.len(), fx.num_features());
    }

    #[test]
    fn shell_distinguishes_large_from_small() {
        // The core size-discrimination property: a voxel at the center of a
        // big ball has a bright shell; the center of a small ball does not.
        let spec = FeatureSpec {
            shell_radius: 3.0,
            ..Default::default()
        };
        let fx = FeatureExtractor::new(spec);
        let big = vol_ball(16, 6.0);
        let small = vol_ball(16, 1.5);
        let vb = fx.vector(&big, 8, 8, 8, 0.0); // wait: center is (7.5) — use 8
        let vs = fx.vector(&small, 8, 8, 8, 0.0);
        // Feature 0 is the value: both are inside their ball.
        assert_eq!(vb[0], 1.0);
        assert_eq!(vs[0], 1.0);
        // Feature 1 is the shell mean: bright for big, dark for small.
        assert!(vb[1] > 0.9, "big-ball shell mean {}", vb[1]);
        assert!(vs[1] < 0.1, "small-ball shell mean {}", vs[1]);
    }

    #[test]
    fn position_features_normalized() {
        let spec = FeatureSpec {
            value: true,
            shell: ShellMode::None,
            shell_radius: 1.0,
            position: true,
            time: false,
        };
        let fx = FeatureExtractor::new(spec);
        let v = vol_ball(9, 2.0);
        let vec = fx.vector(&v, 0, 4, 8, 0.0);
        assert_eq!(&vec[1..], &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn time_feature_appended_last() {
        let fx = FeatureExtractor::new(FeatureSpec::default());
        let v = vol_ball(8, 2.0);
        let vec = fx.vector(&v, 1, 1, 1, 0.75);
        assert_eq!(*vec.last().unwrap(), 0.75);
    }

    #[test]
    fn raw_samples_mode_emits_shell_values() {
        let spec = FeatureSpec {
            value: false,
            shell: ShellMode::Samples { count: 16 },
            shell_radius: 2.0,
            position: false,
            time: false,
        };
        let fx = FeatureExtractor::new(spec);
        let v = ScalarVolume::filled(Dims3::cube(8), 3.0);
        let vec = fx.vector(&v, 4, 4, 4, 0.0);
        assert_eq!(vec.len(), fx.num_features());
        assert!(vec.iter().all(|&s| s == 3.0));
    }

    #[test]
    fn multivariate_vector_includes_all_variables() {
        use ifet_volume::MultiVolume;
        let d = Dims3::cube(8);
        let mut mv = MultiVolume::new(d);
        mv.add("density", ScalarVolume::filled(d, 1.0));
        mv.add("pressure", ScalarVolume::filled(d, 2.0));
        let fx = FeatureExtractor::new(FeatureSpec::default());
        let mut out = Vec::new();
        fx.vector_multi_into(&mv, 4, 4, 4, 0.25, &mut out);
        assert_eq!(out.len(), fx.num_features_multi(2));
        // Leading entries are the two variable values.
        assert_eq!(&out[..2], &[1.0, 2.0]);
        // Shell stats of the primary variable follow (constant field).
        assert_eq!(out[2], 1.0);
        assert_eq!(*out.last().unwrap(), 0.25);
    }

    #[test]
    fn multivariate_single_var_matches_scalar_path() {
        use ifet_volume::MultiVolume;
        let d = Dims3::cube(8);
        let vol = ScalarVolume::from_fn(d, |x, y, z| (x + 2 * y + 3 * z) as f32);
        let mut mv = MultiVolume::new(d);
        mv.add("v", vol.clone());
        let fx = FeatureExtractor::new(FeatureSpec::default());
        let mut multi = Vec::new();
        fx.vector_multi_into(&mv, 3, 4, 5, 0.5, &mut multi);
        let single = fx.vector(&vol, 3, 4, 5, 0.5);
        assert_eq!(multi, single);
    }

    #[test]
    fn run_rows_bit_identical_to_per_voxel() {
        let fx = FeatureExtractor::new(FeatureSpec {
            position: true,
            ..Default::default()
        });
        let v = vol_ball(16, 4.0);
        let nf = fx.num_features();
        let mut run = Vec::new();
        fx.vectors_run_into(&v, 2, 9, 5, 7, 0.3, &mut run);
        assert_eq!(run.len(), 9 * nf);
        let mut one = Vec::new();
        for (i, x) in (2..11).enumerate() {
            fx.vector_into(&v, x, 5, 7, 0.3, &mut one);
            for (a, b) in run[i * nf..(i + 1) * nf].iter().zip(&one) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn run_rows_multi_bit_identical_to_per_voxel() {
        use ifet_volume::MultiVolume;
        let d = Dims3::cube(12);
        let mut mv = MultiVolume::new(d);
        mv.add("a", ScalarVolume::from_fn(d, |x, y, z| (x + y * z) as f32));
        mv.add(
            "b",
            ScalarVolume::from_fn(d, |x, y, z| (x * 2 + y + z) as f32),
        );
        let fx = FeatureExtractor::new(FeatureSpec::default());
        let nf = fx.num_features_multi(2);
        let mut run = Vec::new();
        fx.vectors_run_multi_into(&mv, 1, 7, 4, 6, 0.6, &mut run);
        assert_eq!(run.len(), 7 * nf);
        let mut one = Vec::new();
        for (i, x) in (1..8).enumerate() {
            fx.vector_multi_into(&mv, x, 4, 6, 0.6, &mut one);
            assert_eq!(&run[i * nf..(i + 1) * nf], one.as_slice());
        }
    }

    #[test]
    fn vector_into_reuses_buffer() {
        let fx = FeatureExtractor::new(FeatureSpec::default());
        let v = vol_ball(8, 2.0);
        let mut buf = vec![99.0; 3];
        fx.vector_into(&v, 2, 2, 2, 0.0, &mut buf);
        assert_eq!(buf.len(), fx.num_features());
        assert_ne!(buf[0], 99.0);
    }
}
