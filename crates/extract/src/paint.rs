//! Painted training samples and the scripted painting oracle.
//!
//! In the paper the scientist paints on "three axis-aligned slices" with
//! "brushes of different color" (Section 6); each painted voxel becomes a
//! training sample. [`PaintSet`] is the headless representation of those
//! strokes. [`PaintOracle`] is the scripted stand-in for the scientist: it
//! paints from a ground-truth mask, slice by slice, with configurable sample
//! counts and label noise, so experiments are reproducible.

use ifet_volume::{Dims3, Mask3};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Painted voxels for one frame: positives (the feature) and negatives
/// (explicitly-not-the-feature), each tagged with the frame's step label.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PaintSet {
    /// Step label of the frame these paints refer to.
    pub step: u32,
    /// Voxels painted as "feature of interest".
    pub positives: Vec<(usize, usize, usize)>,
    /// Voxels painted as "not the feature".
    pub negatives: Vec<(usize, usize, usize)>,
}

impl PaintSet {
    pub fn new(step: u32) -> Self {
        Self {
            step,
            positives: Vec::new(),
            negatives: Vec::new(),
        }
    }

    /// Paint a single voxel.
    pub fn paint(&mut self, voxel: (usize, usize, usize), is_feature: bool) {
        if is_feature {
            self.positives.push(voxel);
        } else {
            self.negatives.push(voxel);
        }
    }

    /// Paint a straight stroke of voxels along the x axis on slice `z = k`
    /// (the "brush on a slice" gesture).
    pub fn stroke_x(&mut self, y: usize, z: usize, x0: usize, x1: usize, is_feature: bool) {
        for x in x0..=x1 {
            self.paint((x, y, z), is_feature);
        }
    }

    pub fn len(&self) -> usize {
        self.positives.len() + self.negatives.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate `(voxel, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize, usize), f32)> + '_ {
        self.positives
            .iter()
            .map(|&v| (v, 1.0))
            .chain(self.negatives.iter().map(|&v| (v, 0.0)))
    }

    /// Paint an entire region at once — the Section 6 gesture "the system
    /// also allows the user to select small features from the window of
    /// feature volume, and consider the selected regions as part of the
    /// unwanted feature". To keep training balanced, at most `max_voxels`
    /// voxels of the region are sampled (every k-th set voxel).
    pub fn paint_region(&mut self, region: &Mask3, is_feature: bool, max_voxels: usize) {
        let count = region.count();
        if count == 0 {
            return;
        }
        let stride = count.div_ceil(max_voxels.max(1));
        for (i, voxel) in region.set_coords().enumerate() {
            if i % stride == 0 {
                self.paint(voxel, is_feature);
            }
        }
    }
}

/// A scripted "scientist" that paints training samples from ground truth.
#[derive(Debug, Clone)]
pub struct PaintOracle {
    rng: SmallRng,
    /// Probability of flipping a label (simulates imprecise painting).
    pub label_noise: f32,
    /// Paint only on every `slice_stride`-th z-slice (mimics slice-based UI;
    /// 1 = anywhere).
    pub slice_stride: usize,
}

impl PaintOracle {
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
            label_noise: 0.0,
            slice_stride: 4,
        }
    }

    /// Paint `n_pos` positive and `n_neg` negative voxels for one frame,
    /// drawn uniformly from the truth mask / its complement on the allowed
    /// slices. Panics if the mask (or complement) is empty on those slices.
    pub fn paint_from_truth(
        &mut self,
        step: u32,
        truth: &Mask3,
        n_pos: usize,
        n_neg: usize,
    ) -> PaintSet {
        let d = truth.dims();
        let allowed = |z: usize| z % self.slice_stride.max(1) == 0;

        let pos_pool: Vec<_> = truth.set_coords().filter(|&(_, _, z)| allowed(z)).collect();
        let neg_pool: Vec<_> = all_coords(d)
            .filter(|&(x, y, z)| allowed(z) && !truth.get(x, y, z))
            .collect();
        assert!(
            !pos_pool.is_empty(),
            "oracle cannot paint positives: truth empty on allowed slices"
        );
        assert!(
            !neg_pool.is_empty(),
            "oracle cannot paint negatives: truth covers all allowed slices"
        );

        let mut set = PaintSet::new(step);
        for _ in 0..n_pos {
            let v = pos_pool[self.rng.gen_range(0..pos_pool.len())];
            set.paint(v, !self.flip());
        }
        for _ in 0..n_neg {
            let v = neg_pool[self.rng.gen_range(0..neg_pool.len())];
            set.paint(v, self.flip());
        }
        set
    }

    fn flip(&mut self) -> bool {
        self.label_noise > 0.0 && self.rng.gen::<f32>() < self.label_noise
    }
}

fn all_coords(d: Dims3) -> impl Iterator<Item = (usize, usize, usize)> {
    (0..d.nz).flat_map(move |z| (0..d.ny).flat_map(move |y| (0..d.nx).map(move |x| (x, y, z))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ball_mask(n: usize, r: f32) -> Mask3 {
        let c = (n as f32 - 1.0) / 2.0;
        Mask3::from_fn(Dims3::cube(n), |x, y, z| {
            ((x as f32 - c).powi(2) + (y as f32 - c).powi(2) + (z as f32 - c).powi(2)).sqrt() <= r
        })
    }

    #[test]
    fn manual_painting() {
        let mut p = PaintSet::new(5);
        p.paint((1, 2, 3), true);
        p.stroke_x(4, 0, 2, 5, false);
        assert_eq!(p.positives.len(), 1);
        assert_eq!(p.negatives.len(), 4);
        assert_eq!(p.len(), 5);
        let labels: Vec<f32> = p.iter().map(|(_, l)| l).collect();
        assert_eq!(labels[0], 1.0);
        assert!(labels[1..].iter().all(|&l| l == 0.0));
    }

    #[test]
    fn paint_region_samples_component() {
        let region = ball_mask(12, 3.0);
        let mut p = PaintSet::new(0);
        p.paint_region(&region, false, 20);
        assert!(!p.negatives.is_empty());
        assert!(
            p.negatives.len() <= 40,
            "sampling cap blown: {}",
            p.negatives.len()
        );
        for &(x, y, z) in &p.negatives {
            assert!(region.get(x, y, z), "painted outside the region");
        }
    }

    #[test]
    fn paint_region_empty_is_noop() {
        let mut p = PaintSet::new(0);
        p.paint_region(&Mask3::empty(Dims3::cube(4)), true, 10);
        assert!(p.is_empty());
    }

    #[test]
    fn paint_region_small_region_takes_all() {
        let d = Dims3::cube(6);
        let mut m = Mask3::empty(d);
        m.set(1, 1, 1, true);
        m.set(2, 1, 1, true);
        let mut p = PaintSet::new(0);
        p.paint_region(&m, true, 100);
        assert_eq!(p.positives.len(), 2);
    }

    #[test]
    fn oracle_paints_correct_labels() {
        let truth = ball_mask(16, 5.0);
        let mut o = PaintOracle::new(1);
        o.slice_stride = 1;
        let set = o.paint_from_truth(7, &truth, 30, 30);
        assert_eq!(set.step, 7);
        assert_eq!(set.positives.len(), 30);
        assert_eq!(set.negatives.len(), 30);
        for &(x, y, z) in &set.positives {
            assert!(truth.get(x, y, z));
        }
        for &(x, y, z) in &set.negatives {
            assert!(!truth.get(x, y, z));
        }
    }

    #[test]
    fn oracle_respects_slice_stride() {
        let truth = ball_mask(16, 6.0);
        let mut o = PaintOracle::new(2);
        o.slice_stride = 4;
        let set = o.paint_from_truth(0, &truth, 20, 20);
        for ((_, _, z), _) in set.iter() {
            assert_eq!(z % 4, 0, "painted off an allowed slice");
        }
    }

    #[test]
    fn oracle_label_noise_flips_some() {
        let truth = ball_mask(16, 5.0);
        let mut o = PaintOracle::new(3);
        o.slice_stride = 1;
        o.label_noise = 0.5;
        let set = o.paint_from_truth(0, &truth, 200, 200);
        // With 50% noise, a good chunk of "positives" land outside the truth.
        let wrong_pos = set
            .positives
            .iter()
            .filter(|&&(x, y, z)| !truth.get(x, y, z))
            .count();
        assert!(wrong_pos > 20, "noise had no effect: {wrong_pos}");
    }

    #[test]
    fn oracle_is_deterministic() {
        let truth = ball_mask(12, 4.0);
        let a = PaintOracle::new(9).paint_from_truth(0, &truth, 10, 10);
        let b = PaintOracle::new(9).paint_from_truth(0, &truth, 10, 10);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn oracle_empty_truth_panics() {
        let truth = Mask3::empty(Dims3::cube(8));
        PaintOracle::new(0).paint_from_truth(0, &truth, 1, 1);
    }
}
