//! Data-space intelligent feature extraction (paper Section 4.3).
//!
//! Instead of classifying by value alone (a transfer function), the scientist
//! *paints* sample voxels of the wanted/unwanted features on slices of the
//! data; per-voxel **feature vectors** — the voxel's value(s), samples of a
//! spherical shell around it, optionally its position, and the time step —
//! are fed to a neural network, which then classifies the entire 4D volume.
//! The shell encodes feature *size* without anyone measuring size: a voxel
//! deep inside a large structure sees a bright shell, a voxel of a small blob
//! sees background beyond the blob's boundary.
//!
//! - [`FeatureSpec`] / [`FeatureExtractor`] — assemble per-voxel descriptors,
//! - [`paint`] — painted strokes and the scripted [`paint::PaintOracle`]
//!   standing in for the interactive user,
//! - [`DataSpaceClassifier`] — train on paints, classify whole volumes
//!   (rayon-parallel) into certainty fields and masks,
//! - [`baselines`] — the 1D-transfer-function and repeated-blur baselines the
//!   paper contrasts in Figure 7.

pub mod baselines;
pub mod classify;
pub mod features;
pub mod paint;

/// Version of this crate's serialized model types (feature specs, classifier
/// snapshots, paint sets) inside session artifacts. Bump on any breaking
/// schema change.
pub const SCHEMA_VERSION: u32 = 1;

pub use classify::{
    ClassifierParams, ClassifierSnapshot, DataSpaceClassifier, LearningEngine, SnapshotError,
    TrainError,
};
pub use features::{FeatureExtractor, FeatureSpec, ShellMode};
pub use paint::{PaintOracle, PaintSet};
