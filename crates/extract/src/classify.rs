//! Training on paints and whole-volume classification.

use crate::features::FeatureExtractor;
use crate::paint::PaintSet;
use ifet_nn::mlp::Scratch;
use ifet_nn::{Activation, Mlp, Normalizer, Svm, SvmParams, TrainParams, Trainer, TrainingSet};
use ifet_obs as obs;
use ifet_volume::{
    map_frames_windowed, map_frames_windowed_into, FrameSink, FrameSource, Mask3, MultiSeries,
    MultiVolume, ScalarVolume, SeriesError,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The supervised learner behind a classifier. The paper uses a neural
/// network throughout but reports promising SVM results (Section 8); both
/// engines expose the same certainty-in-`[0,1]` interface so they are
/// interchangeable here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LearningEngine {
    NeuralNet(Mlp),
    SupportVector(Svm),
}

/// Reusable per-predictor buffers: the feature vector under construction,
/// the MLP forward-pass scratch, and the batch-row staging buffers. `Scratch`
/// self-sizes on first use, so a default-constructed instance works for
/// either engine and any batch width.
#[derive(Debug, Default)]
struct PredictBuffers {
    features: Vec<f32>,
    scratch: Scratch,
    /// Feature rows for a batched run, row-major `[len * num_features]`.
    rows: Vec<f32>,
    /// Batched prediction output staging (`len` certainties).
    outs: Vec<f32>,
}

/// A free-list of [`PredictBuffers`] shared across classification calls.
///
/// Every `classify_*` entry point used to allocate fresh scratch per z-slab
/// (a ROADMAP perf item: allocation churn on large volumes); instead, workers
/// now check buffers out at slab start and return them on drop, so steady
/// state holds one buffer set per concurrently-running worker and repeated
/// classify calls reuse them. The pool is deliberately *not* part of the
/// classifier's identity: cloning a classifier starts with an empty pool, and
/// it never appears in serialized form.
struct ScratchPool {
    free: Mutex<Vec<PredictBuffers>>,
}

impl ScratchPool {
    fn new() -> Self {
        Self {
            free: Mutex::new(Vec::new()),
        }
    }

    fn take(&self) -> PredictBuffers {
        // Hit/miss split depends on worker scheduling, so these are runtime
        // counters (stripped from stable traces).
        match self.free.lock().unwrap().pop() {
            Some(bufs) => {
                obs::counter_runtime("scratch_pool_hits", 1);
                bufs
            }
            None => {
                obs::counter_runtime("scratch_pool_misses", 1);
                PredictBuffers::default()
            }
        }
    }

    fn put(&self, bufs: PredictBuffers) {
        self.free.lock().unwrap().push(bufs);
    }
}

impl Clone for ScratchPool {
    fn clone(&self) -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ScratchPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.free.lock().map(|v| v.len()).unwrap_or(0);
        write!(f, "ScratchPool({n} free)")
    }
}

/// Prediction state checked out of a classifier's scratch pool; returns its
/// buffers to the pool when dropped.
struct PooledPredictor<'a> {
    clf: &'a DataSpaceClassifier,
    bufs: PredictBuffers,
}

impl PooledPredictor<'_> {
    #[inline]
    fn predict_engine(engine: &LearningEngine, x: &[f32], scratch: &mut Scratch) -> f32 {
        match engine {
            LearningEngine::NeuralNet(net) => net.predict1(x, scratch),
            LearningEngine::SupportVector(svm) => svm.predict(x),
        }
    }

    /// Certainty for one voxel of a scalar frame.
    #[inline]
    fn predict_at(&mut self, frame: &ScalarVolume, x: usize, y: usize, z: usize, tn: f32) -> f32 {
        let PredictBuffers {
            features, scratch, ..
        } = &mut self.bufs;
        self.clf.extractor.vector_into(frame, x, y, z, tn, features);
        self.clf.normalizer.apply(features);
        Self::predict_engine(&self.clf.engine, features, scratch)
    }

    /// Batched prediction: normalize the staged rows (each `nf` wide) and
    /// write one certainty per row into `out`. Per-row work is the exact
    /// same operation sequence as the scalar path (`Normalizer::apply` on
    /// the row slice, then `predict1`-equivalent inference), so batched
    /// output is bit-identical to per-voxel output.
    fn predict_rows_into(&mut self, nf: usize, out: &mut [f32]) {
        let PredictBuffers {
            scratch,
            rows,
            outs,
            ..
        } = &mut self.bufs;
        debug_assert_eq!(rows.len(), nf * out.len());
        for row in rows.chunks_exact_mut(nf) {
            self.clf.normalizer.apply(row);
        }
        // Fill depth varies with batch width and volume extent, so this is a
        // runtime counter (stripped from stable traces).
        obs::counter_runtime("extract.batch.fill", out.len() as u64);
        match &self.clf.engine {
            LearningEngine::NeuralNet(net) => {
                net.predict_batch(rows, scratch, outs);
                out.copy_from_slice(outs);
            }
            LearningEngine::SupportVector(svm) => {
                for (o, row) in out.iter_mut().zip(rows.chunks_exact(nf)) {
                    *o = svm.predict(row);
                }
            }
        }
    }

    /// Certainties for the run of `out.len()` voxels starting at `(x0, y, z)`
    /// along x of a scalar frame.
    fn predict_run_into(
        &mut self,
        frame: &ScalarVolume,
        x0: usize,
        y: usize,
        z: usize,
        tn: f32,
        out: &mut [f32],
    ) {
        let nf = self.clf.extractor.num_features();
        self.clf
            .extractor
            .vectors_run_into(frame, x0, out.len(), y, z, tn, &mut self.bufs.rows);
        self.predict_rows_into(nf, out);
    }

    /// Certainties for the run of `out.len()` voxels starting at `(x0, y, z)`
    /// along x of a multivariate frame.
    fn predict_run_multi_at(
        &mut self,
        frame: &MultiVolume,
        x0: usize,
        y: usize,
        z: usize,
        tn: f32,
        out: &mut [f32],
    ) {
        let nf = self.clf.extractor.num_features_multi(frame.num_vars());
        self.clf.extractor.vectors_run_multi_into(
            frame,
            x0,
            out.len(),
            y,
            z,
            tn,
            &mut self.bufs.rows,
        );
        self.predict_rows_into(nf, out);
    }
}

impl Drop for PooledPredictor<'_> {
    fn drop(&mut self) {
        self.clf.scratch_pool.put(std::mem::take(&mut self.bufs));
    }
}

/// Hyper-parameters for the data-space classifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassifierParams {
    /// Hidden-layer width of the three-layer perceptron.
    pub hidden: usize,
    pub epochs: usize,
    pub learning_rate: f32,
    pub momentum: f32,
    pub seed: u64,
}

impl Default for ClassifierParams {
    fn default() -> Self {
        Self {
            hidden: 12,
            epochs: 200,
            learning_rate: 0.3,
            momentum: 0.9,
            seed: 0xDA7A,
        }
    }
}

/// A trained per-voxel classifier: feature vector → certainty in `[0, 1]`.
#[derive(Debug)]
pub struct DataSpaceClassifier {
    extractor: FeatureExtractor,
    normalizer: Normalizer,
    engine: LearningEngine,
    final_loss: f32,
    /// `Some(n)` for a [`Self::train_multi`] model over `n` variables;
    /// `None` for scalar models. Determines the expected feature width.
    multi_vars: Option<usize>,
    scratch_pool: ScratchPool,
    /// Scanline batch width for `classify_*`; 0 = auto. Atomic so the knob
    /// can be set through shared references (sessions hand out
    /// `Option<&DataSpaceClassifier>`); like the scratch pool it is runtime
    /// state, not part of the classifier's identity.
    batch: AtomicUsize,
}

impl Clone for DataSpaceClassifier {
    fn clone(&self) -> Self {
        Self {
            extractor: self.extractor.clone(),
            normalizer: self.normalizer.clone(),
            engine: self.engine.clone(),
            final_loss: self.final_loss,
            multi_vars: self.multi_vars,
            scratch_pool: self.scratch_pool.clone(),
            batch: AtomicUsize::new(self.batch.load(Ordering::Relaxed)),
        }
    }
}

/// The serializable identity of a trained [`DataSpaceClassifier`]: feature
/// spec, fitted normalizer, learned engine weights, the recorded training
/// loss, and (for `train_multi` models) the multivariate width. Everything
/// needed to rebuild an identical classifier with
/// [`DataSpaceClassifier::from_snapshot`]; runtime scratch state is excluded.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifierSnapshot {
    pub spec: crate::features::FeatureSpec,
    pub normalizer: Normalizer,
    pub engine: LearningEngine,
    pub final_loss: f32,
    /// Number of variables a `train_multi` model was trained over; `None`
    /// for scalar models.
    pub multi_vars: Option<usize>,
}

// Manual serde impls rather than derive: `multi_vars` is omitted when `None`
// and treated as `None` when missing, so snapshots written before the field
// existed still load, old readers skip it by name, and save→load→save stays
// byte-identical for both generations (derive would hard-error on the
// missing field).
impl Serialize for ClassifierSnapshot {
    fn to_value(&self) -> serde::Value {
        let mut pairs = vec![
            ("spec".to_string(), self.spec.to_value()),
            ("normalizer".to_string(), self.normalizer.to_value()),
            ("engine".to_string(), self.engine.to_value()),
            ("final_loss".to_string(), self.final_loss.to_value()),
        ];
        if let Some(nv) = self.multi_vars {
            pairs.push(("multi_vars".to_string(), nv.to_value()));
        }
        serde::Value::Object(pairs)
    }
}

impl Deserialize for ClassifierSnapshot {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let multi_vars = match v.get("multi_vars") {
            None | Some(serde::Value::Null) => None,
            Some(mv) => Some(usize::from_value(mv)?),
        };
        Ok(Self {
            spec: Deserialize::from_value(serde::vhelp::field(v, "spec")?)?,
            normalizer: Deserialize::from_value(serde::vhelp::field(v, "normalizer")?)?,
            engine: Deserialize::from_value(serde::vhelp::field(v, "engine")?)?,
            final_loss: Deserialize::from_value(serde::vhelp::field(v, "final_loss")?)?,
            multi_vars,
        })
    }
}

/// Why a [`ClassifierSnapshot`] cannot be rebuilt into a working classifier.
/// Snapshots arrive from disk, so every internal-consistency violation is a
/// typed error rather than a downstream index panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The feature spec selects no properties at all.
    EmptySpec,
    /// Normalizer or engine input width disagrees with the feature spec.
    FeatureCountMismatch { expected: usize, got: usize },
    /// The engine's weight tensors are internally inconsistent.
    BadNetwork(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::EmptySpec => write!(f, "feature spec selects no properties"),
            SnapshotError::FeatureCountMismatch { expected, got } => {
                write!(
                    f,
                    "feature count mismatch: spec yields {expected}, model expects {got}"
                )
            }
            SnapshotError::BadNetwork(why) => write!(f, "inconsistent model weights: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Why classifier training could not start. These are caller mistakes a UI or
/// CLI can plausibly produce (painting before loading the right series, or
/// submitting an empty paint set), so they are reported instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// `paints` was empty — there is nothing to learn from.
    NoPaintedFrames,
    /// A paint set references a time step the series does not contain.
    PaintedStepNotInSeries { step: u32 },
    /// Paint sets were supplied but none of them contains a voxel.
    NoPaintedVoxels,
    /// Loading a painted frame from the source failed (paging I/O).
    Source { reason: String },
    /// The classifier network could not be constructed from the requested
    /// hyper-parameters (e.g. a zero hidden width).
    Model { reason: String },
}

impl From<SeriesError> for TrainError {
    fn from(e: SeriesError) -> Self {
        TrainError::Source {
            reason: e.to_string(),
        }
    }
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::NoPaintedFrames => write!(f, "need at least one painted frame"),
            TrainError::PaintedStepNotInSeries { step } => {
                write!(f, "painted step {step} not in series")
            }
            TrainError::NoPaintedVoxels => write!(f, "paint sets contain no voxels"),
            TrainError::Source { reason } => write!(f, "frame source failed: {reason}"),
            TrainError::Model { reason } => write!(f, "classifier model is invalid: {reason}"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Fitted normalizer plus normalized training rows and their labels.
type TrainingRows = (Normalizer, Vec<Vec<f32>>, Vec<f32>);

/// Assemble normalized `(rows, labels)` from painted frames. Only the
/// painted frames are touched, one at a time — exactly the paper's argument
/// that training needs just the key frames in core (§4.2.2).
fn assemble_rows<S: FrameSource + ?Sized>(
    extractor: &FeatureExtractor,
    series: &S,
    paints: &[PaintSet],
) -> Result<TrainingRows, TrainError> {
    if paints.is_empty() {
        return Err(TrainError::NoPaintedFrames);
    }
    let mut rows: Vec<Vec<f32>> = Vec::new();
    let mut labels: Vec<f32> = Vec::new();
    let mut buf = Vec::new();
    for set in paints {
        let frame = series
            .frame_at_step(set.step)?
            .ok_or(TrainError::PaintedStepNotInSeries { step: set.step })?;
        let tn = series.normalized_time(set.step);
        for ((x, y, z), label) in set.iter() {
            extractor.vector_into(&frame, x, y, z, tn, &mut buf);
            rows.push(buf.clone());
            labels.push(label);
        }
    }
    if rows.is_empty() {
        return Err(TrainError::NoPaintedVoxels);
    }
    let normalizer = Normalizer::fit(&rows);
    let rows = rows.iter().map(|r| normalizer.transform(r)).collect();
    Ok((normalizer, rows, labels))
}

impl DataSpaceClassifier {
    /// Train a neural-network classifier from painted frames. Each element
    /// of `paints` pairs a [`PaintSet`] with the frame it was painted on
    /// (looked up by the paint set's step label in `series`).
    ///
    /// Training is per-voxel: every painted voxel contributes one
    /// `(feature vector, label)` row.
    pub fn train<S: FrameSource + ?Sized>(
        extractor: FeatureExtractor,
        series: &S,
        paints: &[PaintSet],
        params: ClassifierParams,
    ) -> Result<Self, TrainError> {
        let (normalizer, rows, labels) = assemble_rows(&extractor, series, paints)?;
        let mut train_set = TrainingSet::new();
        for (row, &label) in rows.iter().zip(&labels) {
            train_set.add1(row.clone(), label);
        }

        let mut net = Mlp::new(
            &[extractor.num_features(), params.hidden, 1],
            Activation::Sigmoid,
            Activation::Sigmoid,
            params.seed,
        )
        .map_err(|e| TrainError::Model {
            reason: e.to_string(),
        })?;
        let mut trainer = Trainer::new(TrainParams {
            learning_rate: params.learning_rate,
            momentum: params.momentum,
            seed: params.seed,
        });
        let losses = trainer.train(&mut net, &train_set, params.epochs);
        let final_loss = losses.last().copied().unwrap_or(f32::NAN);

        Ok(Self {
            extractor,
            normalizer,
            engine: LearningEngine::NeuralNet(net),
            final_loss,
            multi_vars: None,
            scratch_pool: ScratchPool::new(),
            batch: AtomicUsize::new(0),
        })
    }

    /// Train a support-vector-machine classifier on the same painted rows —
    /// the alternative engine of the paper's Section 8. `final_loss` reports
    /// the training-set misclassification rate.
    pub fn train_svm<S: FrameSource + ?Sized>(
        extractor: FeatureExtractor,
        series: &S,
        paints: &[PaintSet],
        params: SvmParams,
    ) -> Result<Self, TrainError> {
        let (normalizer, rows, labels) = assemble_rows(&extractor, series, paints)?;
        let svm = Svm::train(&rows, &labels, params);
        let errors = rows
            .iter()
            .zip(&labels)
            .filter(|(r, &l)| (svm.predict(r) >= 0.5) != (l >= 0.5))
            .count();
        let final_loss = errors as f32 / rows.len() as f32;
        Ok(Self {
            extractor,
            normalizer,
            engine: LearningEngine::SupportVector(svm),
            final_loss,
            multi_vars: None,
            scratch_pool: ScratchPool::new(),
            batch: AtomicUsize::new(0),
        })
    }

    /// Check a predictor (feature buffer + forward scratch) out of the pool.
    fn predictor(&self) -> PooledPredictor<'_> {
        PooledPredictor {
            clf: self,
            bufs: self.scratch_pool.take(),
        }
    }

    /// Batch width used when [`Self::set_batch`] leaves the knob on auto.
    pub const AUTO_BATCH: usize = 64;

    /// Set the scanline batch width (voxel rows per batched inference pass)
    /// used by every `classify_*` entry point. `0` restores auto, currently
    /// [`Self::AUTO_BATCH`]. Output is bit-identical at every width; the
    /// knob only trades per-call overhead against buffer footprint. Takes
    /// `&self` so it can be applied through a session's shared classifier
    /// reference.
    pub fn set_batch(&self, rows: usize) {
        self.batch.store(rows, Ordering::Relaxed);
    }

    /// Effective scanline batch width (auto resolved).
    pub fn batch_rows(&self) -> usize {
        match self.batch.load(Ordering::Relaxed) {
            0 => Self::AUTO_BATCH,
            n => n,
        }
    }

    /// Capture this classifier's serializable state.
    pub fn snapshot(&self) -> ClassifierSnapshot {
        ClassifierSnapshot {
            spec: *self.extractor.spec(),
            normalizer: self.normalizer.clone(),
            engine: self.engine.clone(),
            final_loss: self.final_loss,
            multi_vars: self.multi_vars,
        }
    }

    /// Rebuild a classifier from a snapshot, validating internal consistency
    /// first so that malformed (or maliciously corrupted) snapshots are
    /// reported as typed errors instead of panicking in a hot loop later.
    pub fn from_snapshot(snap: ClassifierSnapshot) -> Result<Self, SnapshotError> {
        if snap.spec.is_empty() {
            return Err(SnapshotError::EmptySpec);
        }
        let extractor = FeatureExtractor::new(snap.spec);
        // Multivariate models expect one value feature per variable.
        let n = match snap.multi_vars {
            Some(nv) => extractor.num_features_multi(nv),
            None => extractor.num_features(),
        };
        if snap.normalizer.num_features() != n {
            return Err(SnapshotError::FeatureCountMismatch {
                expected: n,
                got: snap.normalizer.num_features(),
            });
        }
        match &snap.engine {
            LearningEngine::NeuralNet(net) => {
                net.validate_shape().map_err(SnapshotError::BadNetwork)?;
                let sizes = net.layer_sizes();
                if sizes[0] != n {
                    return Err(SnapshotError::FeatureCountMismatch {
                        expected: n,
                        got: sizes[0],
                    });
                }
                if *sizes.last().unwrap() != 1 {
                    return Err(SnapshotError::BadNetwork(format!(
                        "classifier network must emit one certainty, has {} outputs",
                        sizes.last().unwrap()
                    )));
                }
            }
            LearningEngine::SupportVector(svm) => {
                svm.validate_shape(n).map_err(SnapshotError::BadNetwork)?;
            }
        }
        Ok(Self {
            extractor,
            normalizer: snap.normalizer,
            engine: snap.engine,
            final_loss: snap.final_loss,
            multi_vars: snap.multi_vars,
            scratch_pool: ScratchPool::new(),
            batch: AtomicUsize::new(0),
        })
    }

    /// Number of variables this model was trained over (`None` for scalar
    /// models; see [`Self::train_multi`]).
    pub fn multi_vars(&self) -> Option<usize> {
        self.multi_vars
    }

    /// Mean MSE of the final training epoch (NN) or training error rate (SVM).
    pub fn final_loss(&self) -> f32 {
        self.final_loss
    }

    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// The underlying learning engine.
    pub fn engine(&self) -> &LearningEngine {
        &self.engine
    }

    /// The neural network, when this classifier uses one.
    pub fn network(&self) -> &Mlp {
        match &self.engine {
            LearningEngine::NeuralNet(net) => net,
            LearningEngine::SupportVector(_) => {
                panic!("classifier uses an SVM engine, not a neural network")
            }
        }
    }

    /// Train a neural-network classifier on *multivariate* frames: every
    /// painted voxel contributes all variable values plus the shell/position/
    /// time features of the primary variable. "The machine learning engine
    /// can take high-dimensional data directly but the scientists do not need
    /// to specify explicitly the relationship between these different
    /// dimensions" (Section 4.3).
    pub fn train_multi(
        extractor: FeatureExtractor,
        mseries: &MultiSeries,
        paints: &[PaintSet],
        params: ClassifierParams,
    ) -> Result<Self, TrainError> {
        if paints.is_empty() {
            return Err(TrainError::NoPaintedFrames);
        }
        let mut rows: Vec<Vec<f32>> = Vec::new();
        let mut labels: Vec<f32> = Vec::new();
        let mut buf = Vec::new();
        for set in paints {
            let frame = mseries
                .frame_at_step(set.step)
                .ok_or(TrainError::PaintedStepNotInSeries { step: set.step })?;
            let tn = mseries.normalized_time(set.step);
            for ((x, y, z), label) in set.iter() {
                extractor.vector_multi_into(frame, x, y, z, tn, &mut buf);
                rows.push(buf.clone());
                labels.push(label);
            }
        }
        if rows.is_empty() {
            return Err(TrainError::NoPaintedVoxels);
        }
        let normalizer = Normalizer::fit(&rows);
        let mut train_set = TrainingSet::new();
        for (row, &label) in rows.iter().zip(&labels) {
            train_set.add1(normalizer.transform(row), label);
        }

        let n_in = extractor.num_features_multi(mseries.names().len());
        let mut net = Mlp::new(
            &[n_in, params.hidden, 1],
            Activation::Sigmoid,
            Activation::Sigmoid,
            params.seed,
        )
        .map_err(|e| TrainError::Model {
            reason: e.to_string(),
        })?;
        let mut trainer = Trainer::new(TrainParams {
            learning_rate: params.learning_rate,
            momentum: params.momentum,
            seed: params.seed,
        });
        let losses = trainer.train(&mut net, &train_set, params.epochs);
        let final_loss = losses.last().copied().unwrap_or(f32::NAN);
        Ok(Self {
            extractor,
            normalizer,
            engine: LearningEngine::NeuralNet(net),
            final_loss,
            multi_vars: Some(mseries.names().len()),
            scratch_pool: ScratchPool::new(),
            batch: AtomicUsize::new(0),
        })
    }

    /// Classify a multivariate frame (trained via [`Self::train_multi`]).
    pub fn classify_frame_multi(&self, frame: &MultiVolume, t_norm: f32) -> ScalarVolume {
        let _span = obs::span("extract.classify_frame");
        let d = frame.dims();
        let slab = d.nx * d.ny;
        let b = self.batch_rows();
        let mut data = vec![0.0f32; d.len()];
        data.par_chunks_mut(slab).enumerate().for_each(|(z, out)| {
            // Declared first so the flush runs after the predictor returns
            // its buffers (take/put bracket the pool counters).
            let _flush = obs::flush_guard();
            let mut predictor = self.predictor();
            for y in 0..d.ny {
                let row = &mut out[d.nx * y..d.nx * (y + 1)];
                for (ci, chunk) in row.chunks_mut(b).enumerate() {
                    predictor.predict_run_multi_at(frame, ci * b, y, z, t_norm, chunk);
                }
            }
            obs::counter("voxels_classified", out.len() as u64);
        });
        ScalarVolume::from_vec(d, data)
    }

    /// Multivariate classification thresholded into a mask.
    pub fn extract_mask_multi(&self, frame: &MultiVolume, t_norm: f32, tau: f32) -> Mask3 {
        Mask3::threshold(&self.classify_frame_multi(frame, t_norm), tau)
    }

    /// Certainty for one voxel.
    pub fn certainty_at(
        &self,
        frame: &ScalarVolume,
        x: usize,
        y: usize,
        z: usize,
        t_norm: f32,
    ) -> f32 {
        self.predictor().predict_at(frame, x, y, z, t_norm)
    }

    /// Classify a whole frame into a certainty volume (parallel over
    /// z-slabs; this is the "10 seconds for a 256³ volume" operation of
    /// Section 7, here multithreaded).
    pub fn classify_frame(&self, frame: &ScalarVolume, t_norm: f32) -> ScalarVolume {
        let _span = obs::span("extract.classify_frame");
        let d = frame.dims();
        let slab = d.nx * d.ny;
        let b = self.batch_rows();
        let mut data = vec![0.0f32; d.len()];
        data.par_chunks_mut(slab).enumerate().for_each(|(z, out)| {
            // Declared first so the flush runs after the predictor returns
            // its buffers (take/put bracket the pool counters).
            let _flush = obs::flush_guard();
            let mut predictor = self.predictor();
            for y in 0..d.ny {
                let row = &mut out[d.nx * y..d.nx * (y + 1)];
                for (ci, chunk) in row.chunks_mut(b).enumerate() {
                    predictor.predict_run_into(frame, ci * b, y, z, t_norm, chunk);
                }
            }
            obs::counter("voxels_classified", out.len() as u64);
        });
        ScalarVolume::from_vec(d, data)
    }

    /// Reference implementation of [`Self::classify_frame`] that builds fresh
    /// per-slab buffers instead of drawing on the scratch pool. Kept for the
    /// cached-vs-fresh identity test and the bench axis; not for general use.
    #[doc(hidden)]
    pub fn classify_frame_uncached(&self, frame: &ScalarVolume, t_norm: f32) -> ScalarVolume {
        let d = frame.dims();
        let slab = d.nx * d.ny;
        let mut data = vec![0.0f32; d.len()];
        data.par_chunks_mut(slab).enumerate().for_each(|(z, out)| {
            let mut buf = Vec::with_capacity(self.extractor.num_features());
            let mut scratch = Scratch::default();
            for y in 0..d.ny {
                for x in 0..d.nx {
                    self.extractor.vector_into(frame, x, y, z, t_norm, &mut buf);
                    self.normalizer.apply(&mut buf);
                    out[x + d.nx * y] =
                        PooledPredictor::predict_engine(&self.engine, &buf, &mut scratch);
                }
            }
        });
        ScalarVolume::from_vec(d, data)
    }

    /// Classify one slice `z = k` only (the interactive per-slice feedback
    /// path of Section 6). Returns `(nx, ny, certainties)`.
    pub fn classify_slice_z(
        &self,
        frame: &ScalarVolume,
        k: usize,
        t_norm: f32,
    ) -> (usize, usize, Vec<f32>) {
        let d = frame.dims();
        assert!(k < d.nz);
        let mut predictor = self.predictor();
        let mut out = Vec::with_capacity(d.nx * d.ny);
        for y in 0..d.ny {
            for x in 0..d.nx {
                out.push(predictor.predict_at(frame, x, y, k, t_norm));
            }
        }
        (d.nx, d.ny, out)
    }

    /// Classify a frame and threshold at `tau` into a feature mask.
    pub fn extract_mask(&self, frame: &ScalarVolume, t_norm: f32, tau: f32) -> Mask3 {
        Mask3::threshold(&self.classify_frame(frame, t_norm), tau)
    }

    /// The per-frame body shared by every whole-series classification entry
    /// point: one certainty volume for the frame at step `t`, with the
    /// deterministic `frames` / `voxels_classified` counters. Identical
    /// regardless of which entry point drives it, so streamed and
    /// materialized outputs are byte-identical.
    fn classify_one_frame(&self, t: u32, frame: &ScalarVolume, tn: f32) -> ScalarVolume {
        // Declared first so the flush runs after the predictor
        // returns its buffers (take/put bracket the pool counters).
        let _flush = obs::flush_guard();
        // Within a frame we stay sequential: frame-level parallelism
        // already saturates the pool for multi-frame series.
        let _ = t;
        let d = frame.dims();
        let b = self.batch_rows();
        let mut predictor = self.predictor();
        let mut data = vec![0.0f32; d.len()];
        for z in 0..d.nz {
            for y in 0..d.ny {
                let at = d.nx * (y + d.ny * z);
                let row = &mut data[at..at + d.nx];
                for (ci, chunk) in row.chunks_mut(b).enumerate() {
                    predictor.predict_run_into(frame, ci * b, y, z, tn, chunk);
                }
            }
        }
        obs::counter("frames", 1);
        obs::counter("voxels_classified", d.len() as u64);
        ScalarVolume::from_vec(d, data)
    }

    /// Classify every frame of a series in parallel over *frames* — the
    /// paper's Conclusion notes per-time-step independence makes cluster
    /// fan-out trivial; here frames fan out across the thread pool, in
    /// residency-bounded windows when the source is paged.
    pub fn classify_series<S: FrameSource + ?Sized>(
        &self,
        series: &S,
    ) -> Result<Vec<ScalarVolume>, SeriesError> {
        self.classify_series_map(series, |_, _, cert| cert)
    }

    /// [`Self::classify_series`] with a post-map applied to each certainty
    /// volume as it is produced, so only the mapped results accumulate in
    /// core (a `Mask3` per frame instead of a full `f32` volume, say).
    /// Counters and span match `classify_series` exactly.
    pub fn classify_series_map<S, T, F>(&self, series: &S, post: F) -> Result<Vec<T>, SeriesError>
    where
        S: FrameSource + ?Sized,
        T: Send,
        F: Fn(usize, u32, ScalarVolume) -> T + Sync,
    {
        let _span = obs::span("extract.classify_series");
        map_frames_windowed(series, |i, t, frame| {
            let tn = series.normalized_time(t);
            post(i, t, self.classify_one_frame(t, frame, tn))
        })
    }

    /// Stream whole-series classification into a [`FrameSink`]: certainty
    /// volumes leave core one residency window at a time instead of
    /// materializing, so a paged input can be classified to disk with
    /// bounded memory end to end. Byte-identical to writing
    /// [`Self::classify_series`]'s output.
    pub fn classify_series_into<S, K>(&self, series: &S, sink: &mut K) -> Result<(), SeriesError>
    where
        S: FrameSource + ?Sized,
        K: FrameSink + ?Sized,
    {
        let _span = obs::span("extract.classify_series");
        map_frames_windowed_into(series, sink, |_i, t, frame| {
            let tn = series.normalized_time(t);
            self.classify_one_frame(t, frame, tn)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureSpec, ShellMode};
    use crate::paint::PaintOracle;
    use ifet_volume::{Dims3, TimeSeries};

    /// One big ball and several small balls, all with value 1.0 — separable
    /// only through the shell (size), not the value.
    fn size_scene(n: usize) -> (ScalarVolume, Mask3) {
        let d = Dims3::cube(n);
        let big_c = (n as f32 * 0.35, n as f32 * 0.5, n as f32 * 0.5);
        let big_r = n as f32 * 0.22;
        let smalls = [
            (n as f32 * 0.8, n as f32 * 0.2, n as f32 * 0.3),
            (n as f32 * 0.75, n as f32 * 0.75, n as f32 * 0.7),
            (n as f32 * 0.2, n as f32 * 0.15, n as f32 * 0.85),
            (n as f32 * 0.85, n as f32 * 0.5, n as f32 * 0.15),
            (n as f32 * 0.15, n as f32 * 0.8, n as f32 * 0.25),
            (n as f32 * 0.5, n as f32 * 0.12, n as f32 * 0.6),
        ];
        let small_r = n as f32 * 0.07;
        let dist = |x: usize, y: usize, z: usize, c: (f32, f32, f32)| {
            ((x as f32 - c.0).powi(2) + (y as f32 - c.1).powi(2) + (z as f32 - c.2).powi(2)).sqrt()
        };
        let vol = ScalarVolume::from_fn(d, |x, y, z| {
            if dist(x, y, z, big_c) <= big_r || smalls.iter().any(|&c| dist(x, y, z, c) <= small_r)
            {
                1.0
            } else {
                0.0
            }
        });
        let truth = Mask3::from_fn(d, |x, y, z| dist(x, y, z, big_c) <= big_r);
        (vol, truth)
    }

    fn trained_on_scene() -> (DataSpaceClassifier, ScalarVolume, Mask3, TimeSeries) {
        let (vol, truth) = size_scene(32);
        let series = TimeSeries::from_frames(vec![(0, vol.clone())]);
        let mut oracle = PaintOracle::new(5);
        oracle.slice_stride = 2;
        let paints = oracle.paint_from_truth(0, &truth, 150, 150);
        let fx = FeatureExtractor::new(FeatureSpec {
            shell_radius: 4.0,
            ..Default::default()
        });
        let clf = DataSpaceClassifier::train(fx, &series, &[paints], ClassifierParams::default())
            .unwrap();
        (clf, vol, truth, series)
    }

    #[test]
    fn learns_size_discrimination() {
        // The Figure 7 property: value alone cannot separate (everything is
        // 1.0); the shell-equipped classifier must.
        let (clf, vol, truth, _) = trained_on_scene();
        assert!(clf.final_loss() < 0.05, "loss {}", clf.final_loss());
        let mask = clf.extract_mask(&vol, 0.0, 0.5);
        let f1 = mask.f1(&truth);
        assert!(f1 > 0.85, "F1 {f1}");
        // A pure value band (the 1D TF) gets terrible precision by design.
        let band = Mask3::threshold(&vol, 0.5);
        assert!(band.precision(&truth) < 0.9);
        assert!(mask.precision(&truth) > band.precision(&truth));
    }

    /// Two variables where the feature is a JOINT condition: region A has
    /// var0 high only, region B var1 high only, region C (the feature) both
    /// high. No single variable separates C.
    fn joint_scene(n: usize) -> (ifet_volume::MultiSeries, Mask3) {
        use ifet_volume::{MultiSeries, MultiVolume};
        let d = Dims3::cube(n);
        let third = n / 3;
        let var0 = ScalarVolume::from_fn(d, |x, _, _| if x < 2 * third { 1.0 } else { 0.0 });
        let var1 = ScalarVolume::from_fn(d, |x, _, _| if x >= third { 1.0 } else { 0.0 });
        let truth = Mask3::from_fn(d, |x, _, _| x >= third && x < 2 * third);
        let mut mv = MultiVolume::new(d);
        mv.add("a", var0);
        mv.add("b", var1);
        (MultiSeries::from_frames(vec![(0, mv)]), truth)
    }

    #[test]
    fn multivariate_classifier_learns_joint_condition() {
        let (ms, truth) = joint_scene(24);
        let mut oracle = PaintOracle::new(8);
        oracle.slice_stride = 2;
        let paints = oracle.paint_from_truth(0, &truth, 120, 120);
        let fx = FeatureExtractor::new(FeatureSpec {
            shell: ShellMode::None,
            shell_radius: 1.0,
            ..Default::default()
        });
        let clf = DataSpaceClassifier::train_multi(fx, &ms, &[paints], ClassifierParams::default())
            .unwrap();
        let mask = clf.extract_mask_multi(ms.frame(0), 0.0, 0.5);
        let f1 = mask.f1(&truth);
        assert!(f1 > 0.95, "joint condition should be learnable: F1 {f1}");

        // Either single variable alone covers 2/3 of the domain — its best
        // achievable F1 against the middle third is bounded at 2·(1/3)/(1/3+2/3+...)
        let single = Mask3::threshold(ms.frame(0).var("a").unwrap(), 0.5);
        assert!(mask.f1(&truth) > single.f1(&truth) + 0.2);
    }

    #[test]
    fn multivariate_snapshot_roundtrips() {
        let (ms, truth) = joint_scene(24);
        let mut oracle = PaintOracle::new(8);
        oracle.slice_stride = 2;
        let paints = oracle.paint_from_truth(0, &truth, 120, 120);
        let fx = FeatureExtractor::new(FeatureSpec {
            shell: ShellMode::None,
            shell_radius: 1.0,
            ..Default::default()
        });
        let clf = DataSpaceClassifier::train_multi(fx, &ms, &[paints], ClassifierParams::default())
            .unwrap();
        assert_eq!(clf.multi_vars(), Some(2));
        let snap = clf.snapshot();
        assert_eq!(snap.multi_vars, Some(2));
        let json = serde_json::to_string(&snap).unwrap();
        let back: ClassifierSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        let rebuilt = DataSpaceClassifier::from_snapshot(back).unwrap();
        assert_eq!(rebuilt.multi_vars(), Some(2));
        assert_eq!(
            rebuilt.classify_frame_multi(ms.frame(0), 0.0).as_slice(),
            clf.classify_frame_multi(ms.frame(0), 0.0).as_slice()
        );
    }

    #[test]
    fn scalar_snapshot_omits_multi_vars_and_legacy_json_loads() {
        // Scalar snapshots serialize without the field (byte-identical to the
        // pre-`multi_vars` format), and JSON lacking the field — i.e. any
        // artifact written before the field existed — loads as `None`.
        let (clf, _, _, _) = trained_on_scene();
        let json = serde_json::to_string(&clf.snapshot()).unwrap();
        assert!(!json.contains("multi_vars"));
        let back: ClassifierSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.multi_vars, None);
        assert!(DataSpaceClassifier::from_snapshot(back).is_ok());
    }

    #[test]
    fn multivariate_snapshot_with_wrong_width_is_rejected() {
        let (ms, truth) = joint_scene(24);
        let mut oracle = PaintOracle::new(8);
        oracle.slice_stride = 2;
        let paints = oracle.paint_from_truth(0, &truth, 60, 60);
        let fx = FeatureExtractor::new(FeatureSpec {
            shell: ShellMode::None,
            shell_radius: 1.0,
            ..Default::default()
        });
        let clf = DataSpaceClassifier::train_multi(fx, &ms, &[paints], ClassifierParams::default())
            .unwrap();
        let mut snap = clf.snapshot();
        // Claiming a different variable count desyncs the expected width.
        snap.multi_vars = Some(5);
        assert!(matches!(
            DataSpaceClassifier::from_snapshot(snap.clone()).unwrap_err(),
            SnapshotError::FeatureCountMismatch { .. }
        ));
        // Dropping the field entirely makes it a (narrower) scalar claim.
        snap.multi_vars = None;
        assert!(matches!(
            DataSpaceClassifier::from_snapshot(snap).unwrap_err(),
            SnapshotError::FeatureCountMismatch { .. }
        ));
    }

    #[test]
    fn svm_engine_also_learns_size_discrimination() {
        // The Section 8 claim: SVMs give "promising results" on the same task.
        let (vol, truth) = size_scene(32);
        let series = TimeSeries::from_frames(vec![(0, vol.clone())]);
        let mut oracle = PaintOracle::new(5);
        oracle.slice_stride = 2;
        let paints = oracle.paint_from_truth(0, &truth, 150, 150);
        let fx = FeatureExtractor::new(FeatureSpec {
            shell_radius: 4.0,
            ..Default::default()
        });
        let clf =
            DataSpaceClassifier::train_svm(fx, &series, &[paints], ifet_nn::SvmParams::default())
                .unwrap();
        assert!(
            clf.final_loss() < 0.1,
            "SVM training error {}",
            clf.final_loss()
        );
        let mask = clf.extract_mask(&vol, 0.0, 0.5);
        let f1 = mask.f1(&truth);
        assert!(f1 > 0.8, "SVM F1 {f1}");
    }

    #[test]
    #[should_panic]
    fn network_accessor_panics_for_svm_engine() {
        let (vol, truth) = size_scene(16);
        let series = TimeSeries::from_frames(vec![(0, vol)]);
        let mut oracle = PaintOracle::new(1);
        oracle.slice_stride = 1;
        let paints = oracle.paint_from_truth(0, &truth, 20, 20);
        let fx = FeatureExtractor::new(FeatureSpec::default());
        let clf =
            DataSpaceClassifier::train_svm(fx, &series, &[paints], ifet_nn::SvmParams::default())
                .unwrap();
        let _ = clf.network();
    }

    #[test]
    fn certainty_at_matches_classify_frame() {
        let (clf, vol, _, _) = trained_on_scene();
        let field = clf.classify_frame(&vol, 0.0);
        for &(x, y, z) in &[(3usize, 3usize, 3usize), (16, 16, 16), (28, 5, 9)] {
            let a = clf.certainty_at(&vol, x, y, z, 0.0);
            let b = *field.get(x, y, z);
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn classify_slice_matches_frame() {
        let (clf, vol, _, _) = trained_on_scene();
        let field = clf.classify_frame(&vol, 0.0);
        let (nx, _, slice) = clf.classify_slice_z(&vol, 10, 0.0);
        for y in 0..5 {
            for x in 0..5 {
                assert!((slice[x + nx * y] - field.get(x, y, 10)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn certainties_in_unit_interval() {
        let (clf, vol, _, _) = trained_on_scene();
        let field = clf.classify_frame(&vol, 0.0);
        for &c in field.as_slice() {
            assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn classify_series_matches_per_frame() {
        let (clf, vol, _, series) = trained_on_scene();
        let all = clf.classify_series(&series).unwrap();
        assert_eq!(all.len(), 1);
        let single = clf.classify_frame(&vol, 0.0);
        for (a, b) in all[0].as_slice().iter().zip(single.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn classify_series_into_and_map_match_materialized() {
        let (clf, _, _, series) = trained_on_scene();
        let all = clf.classify_series(&series).unwrap();

        let mut sink = ifet_volume::TimeSeriesSink::new();
        clf.classify_series_into(&series, &mut sink).unwrap();
        let streamed = sink.into_series().unwrap();
        assert_eq!(streamed.len(), all.len());
        for (i, v) in all.iter().enumerate() {
            assert_eq!(streamed.frame(i).as_slice(), v.as_slice());
        }

        let masks = clf
            .classify_series_map(&series, |_, _, cert| Mask3::threshold(&cert, 0.5))
            .unwrap();
        for (m, v) in masks.iter().zip(&all) {
            assert_eq!(*m, Mask3::threshold(v, 0.5));
        }
    }

    #[test]
    fn pooled_classify_matches_uncached_exactly() {
        // The scratch pool is a pure allocation optimization: bit-identical
        // output to fresh-buffer classification, on both engines, including
        // repeated calls that hit warm pool entries.
        let (clf, vol, _, _) = trained_on_scene();
        let fresh = clf.classify_frame_uncached(&vol, 0.0);
        for _ in 0..3 {
            let pooled = clf.classify_frame(&vol, 0.0);
            assert_eq!(pooled.as_slice(), fresh.as_slice());
        }

        let (vol, truth) = size_scene(16);
        let series = TimeSeries::from_frames(vec![(0, vol.clone())]);
        let mut oracle = PaintOracle::new(3);
        oracle.slice_stride = 2;
        let paints = oracle.paint_from_truth(0, &truth, 60, 60);
        let fx = FeatureExtractor::new(FeatureSpec::default());
        let svm =
            DataSpaceClassifier::train_svm(fx, &series, &[paints], ifet_nn::SvmParams::default())
                .unwrap();
        assert_eq!(
            svm.classify_frame(&vol, 0.0).as_slice(),
            svm.classify_frame_uncached(&vol, 0.0).as_slice()
        );
    }

    #[test]
    fn batched_classify_bit_identical_across_batch_widths() {
        // classify_frame_uncached is the per-voxel scalar reference; every
        // batch width (including 1, an odd width, and widths larger than the
        // x extent) must reproduce it bit for bit.
        let (clf, vol, _, _) = trained_on_scene();
        let reference = clf.classify_frame_uncached(&vol, 0.0);
        for b in [1usize, 7, 16, 64, 101] {
            clf.set_batch(b);
            let got = clf.classify_frame(&vol, 0.0);
            for (a, r) in got.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(a.to_bits(), r.to_bits(), "batch width {b}");
            }
        }
        clf.set_batch(0);
        assert_eq!(clf.batch_rows(), DataSpaceClassifier::AUTO_BATCH);
    }

    #[test]
    fn batched_multi_classify_invariant_to_batch_width() {
        let (ms, truth) = joint_scene(24);
        let mut oracle = PaintOracle::new(8);
        oracle.slice_stride = 2;
        let paints = oracle.paint_from_truth(0, &truth, 120, 120);
        let fx = FeatureExtractor::new(FeatureSpec {
            shell: ShellMode::None,
            shell_radius: 1.0,
            ..Default::default()
        });
        let clf = DataSpaceClassifier::train_multi(fx, &ms, &[paints], ClassifierParams::default())
            .unwrap();
        clf.set_batch(1);
        let per_voxel = clf.classify_frame_multi(ms.frame(0), 0.0);
        for b in [3usize, 64] {
            clf.set_batch(b);
            assert_eq!(
                clf.classify_frame_multi(ms.frame(0), 0.0).as_slice(),
                per_voxel.as_slice(),
                "batch width {b}"
            );
        }
    }

    #[test]
    fn zero_hidden_width_is_model_error() {
        let (vol, truth) = size_scene(8);
        let series = TimeSeries::from_frames(vec![(0, vol)]);
        let mut oracle = PaintOracle::new(1);
        oracle.slice_stride = 1;
        let paints = oracle.paint_from_truth(0, &truth, 10, 10);
        let fx = FeatureExtractor::new(FeatureSpec::default());
        let err = DataSpaceClassifier::train(
            fx,
            &series,
            &[paints],
            ClassifierParams {
                hidden: 0,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, TrainError::Model { .. }), "{err:?}");
        assert!(err.to_string().contains("zero"), "{err}");
    }

    #[test]
    fn snapshot_roundtrip_rebuilds_identical_classifier() {
        let (clf, vol, _, _) = trained_on_scene();
        let snap = clf.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: ClassifierSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        let rebuilt = DataSpaceClassifier::from_snapshot(back).unwrap();
        assert_eq!(
            rebuilt.classify_frame(&vol, 0.0).as_slice(),
            clf.classify_frame(&vol, 0.0).as_slice()
        );
        assert_eq!(rebuilt.final_loss(), clf.final_loss());
    }

    #[test]
    fn corrupt_snapshots_are_typed_errors() {
        let (clf, _, _, _) = trained_on_scene();
        let snap = clf.snapshot();

        let mut empty = snap.clone();
        empty.spec = FeatureSpec {
            value: false,
            shell: ShellMode::None,
            shell_radius: 1.0,
            position: false,
            time: false,
        };
        assert_eq!(
            DataSpaceClassifier::from_snapshot(empty).unwrap_err(),
            SnapshotError::EmptySpec
        );

        // Shrinking the spec desyncs it from the trained network width.
        let mut narrowed = snap.clone();
        narrowed.spec = FeatureSpec {
            value: true,
            shell: ShellMode::None,
            shell_radius: 1.0,
            position: false,
            time: false,
        };
        assert!(matches!(
            DataSpaceClassifier::from_snapshot(narrowed).unwrap_err(),
            SnapshotError::FeatureCountMismatch { .. }
        ));

        // A truncated weight vector is caught by shape validation, not a
        // slice-index panic mid-classification.
        let mut lobotomized = snap.clone();
        if let LearningEngine::NeuralNet(net) = &mut lobotomized.engine {
            let json = net.to_json();
            let bad = json.replacen("\"weights\":[", "\"weights\":[0.0,", 1);
            *net = Mlp::from_json(&bad).unwrap();
        }
        assert!(matches!(
            DataSpaceClassifier::from_snapshot(lobotomized).unwrap_err(),
            SnapshotError::BadNetwork(_)
        ));
    }

    #[test]
    fn empty_paints_is_error() {
        let (vol, _) = size_scene(8);
        let series = TimeSeries::from_frames(vec![(0, vol)]);
        let fx = FeatureExtractor::new(FeatureSpec::default());
        let err =
            DataSpaceClassifier::train(fx, &series, &[], ClassifierParams::default()).unwrap_err();
        assert_eq!(err, TrainError::NoPaintedFrames);
    }

    #[test]
    fn painted_step_outside_series_is_error() {
        let (vol, truth) = size_scene(8);
        let series = TimeSeries::from_frames(vec![(0, vol)]);
        let mut oracle = PaintOracle::new(1);
        oracle.slice_stride = 1;
        let paints = oracle.paint_from_truth(7, &truth, 10, 10);
        let fx = FeatureExtractor::new(FeatureSpec::default());
        let err = DataSpaceClassifier::train(fx, &series, &[paints], ClassifierParams::default())
            .unwrap_err();
        assert_eq!(err, TrainError::PaintedStepNotInSeries { step: 7 });
        assert_eq!(err.to_string(), "painted step 7 not in series");
    }

    #[test]
    fn value_only_spec_fails_on_size_task() {
        // Ablation: drop the shell and the classifier degenerates to a 1D TF,
        // which cannot separate same-valued features by size.
        let (vol, truth) = size_scene(32);
        let series = TimeSeries::from_frames(vec![(0, vol.clone())]);
        let mut oracle = PaintOracle::new(5);
        oracle.slice_stride = 2;
        let paints = oracle.paint_from_truth(0, &truth, 150, 150);
        let fx = FeatureExtractor::new(FeatureSpec {
            value: true,
            shell: ShellMode::None,
            shell_radius: 1.0,
            position: false,
            time: true,
        });
        let clf = DataSpaceClassifier::train(
            fx,
            &series,
            std::slice::from_ref(&paints),
            ClassifierParams::default(),
        )
        .unwrap();
        let mask = clf.extract_mask(&vol, 0.0, 0.5);
        let value_only_f1 = mask.f1(&truth);

        let shell_fx = FeatureExtractor::new(FeatureSpec {
            shell_radius: 4.0,
            ..Default::default()
        });
        let shell_clf =
            DataSpaceClassifier::train(shell_fx, &series, &[paints], ClassifierParams::default())
                .unwrap();
        let shell_f1 = shell_clf.extract_mask(&vol, 0.0, 0.5).f1(&truth);

        assert!(
            value_only_f1 + 0.04 < shell_f1,
            "shell must clearly beat value-only on a size task: {value_only_f1} vs {shell_f1}"
        );
    }
}
