//! The batching gate: SoA-batched classification must be a pure throughput
//! knob. Bit-identity against the per-voxel scalar path is checked across
//! randomized batch widths (including 1, odd widths, and widths that leave
//! odd tails) and worker counts, and stable traces must not move when
//! batching is turned on.

use ifet_extract::{
    ClassifierParams, DataSpaceClassifier, FeatureExtractor, FeatureSpec, PaintOracle,
};
use ifet_obs as obs;
use ifet_volume::{Dims3, Mask3, ScalarVolume, TimeSeries};
use proptest::prelude::*;
use std::sync::OnceLock;

/// A two-ball scene and a classifier trained on it, built once and shared:
/// training is the expensive part and every case only re-classifies.
fn trained() -> &'static (DataSpaceClassifier, ScalarVolume, ScalarVolume) {
    static CELL: OnceLock<(DataSpaceClassifier, ScalarVolume, ScalarVolume)> = OnceLock::new();
    CELL.get_or_init(|| {
        let d = Dims3::cube(14);
        let ball = |x: usize, y: usize, z: usize, cx: f32, r: f32| {
            ((x as f32 - cx).powi(2) + (y as f32 - 7.0).powi(2) + (z as f32 - 7.0).powi(2)).sqrt()
                < r
        };
        let vol = ScalarVolume::from_fn(d, |x, y, z| {
            if ball(x, y, z, 4.0, 3.0) || ball(x, y, z, 10.0, 1.5) {
                1.0
            } else {
                0.0
            }
        });
        let truth = Mask3::from_fn(d, |x, y, z| ball(x, y, z, 4.0, 3.0));
        let series = TimeSeries::from_frames(vec![(0, vol.clone())]);
        let mut oracle = PaintOracle::new(11);
        oracle.slice_stride = 2;
        let paints = oracle.paint_from_truth(0, &truth, 80, 80);
        let fx = FeatureExtractor::new(FeatureSpec {
            shell_radius: 3.0,
            position: true,
            ..Default::default()
        });
        let clf = DataSpaceClassifier::train(
            fx,
            &series,
            &[paints],
            ClassifierParams {
                epochs: 60,
                ..Default::default()
            },
        )
        .unwrap();
        // The scalar per-voxel reference, computed once, single-threaded.
        let reference = clf.classify_frame_uncached(&vol, 0.0);
        (clf, vol, reference)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batched ≡ scalar, bit for bit, for any batch width (1, odd widths,
    /// widths leaving odd tails, widths past the x extent) at any worker
    /// count. The batch width is a throughput knob only.
    #[test]
    fn batched_classification_is_bit_identical(
        batch in prop_oneof![Just(1usize), Just(7), Just(64), 2usize..130],
        threads in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let (clf, vol, reference) = trained();
        clf.set_batch(batch);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let got = pool.install(|| clf.classify_frame(vol, 0.0));
        clf.set_batch(0);
        for (i, (a, r)) in got.as_slice().iter().zip(reference.as_slice()).enumerate() {
            prop_assert_eq!(
                a.to_bits(),
                r.to_bits(),
                "voxel {} diverged at batch {} threads {}",
                i,
                batch,
                threads
            );
        }
    }
}

/// Stable traces are the determinism contract: the batch fill counters are
/// runtime-only, so turning batching on (at any width) must leave the stable
/// trace bytes untouched.
#[test]
fn stable_traces_unchanged_by_batching() {
    let (clf, vol, _) = trained();
    let trace_at = |batch: usize| -> String {
        clf.set_batch(batch);
        let (_, trace) = obs::capture("batching.gate", || clf.classify_frame(vol, 0.0));
        clf.set_batch(0);
        trace.to_stable().to_json()
    };
    let reference = trace_at(1);
    assert!(
        reference.contains("voxels_classified"),
        "gate must actually observe classification counters: {reference}"
    );
    for batch in [7usize, 64, 101] {
        assert_eq!(
            trace_at(batch),
            reference,
            "stable trace moved at batch width {batch}"
        );
    }
}
