//! Property-based tests for data-space extraction.

use ifet_extract::features::{FeatureExtractor, FeatureSpec, ShellMode};
use ifet_extract::paint::{PaintOracle, PaintSet};
use ifet_volume::{Dims3, Mask3, ScalarVolume};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = FeatureSpec> {
    (
        any::<bool>(),
        prop_oneof![
            Just(ShellMode::None),
            Just(ShellMode::Stats),
            (6usize..32).prop_map(|count| ShellMode::Samples { count }),
        ],
        1.0f32..5.0,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(value, shell, shell_radius, position, time)| FeatureSpec {
            value,
            shell,
            shell_radius,
            position,
            time,
        })
        .prop_filter("spec must select something", |s| !s.is_empty())
}

proptest! {
    #[test]
    fn vector_length_always_matches_extractor(spec in spec_strategy(),
                                              fx in 0.0f32..1.0, fy in 0.0f32..1.0, fz in 0.0f32..1.0) {
        let fxr = FeatureExtractor::new(spec);
        let d = Dims3::cube(12);
        let vol = ScalarVolume::from_fn(d, |x, y, z| (x + y * 2 + z * 3) as f32);
        let x = (fx * 11.0) as usize;
        let y = (fy * 11.0) as usize;
        let z = (fz * 11.0) as usize;
        let v = fxr.vector(&vol, x, y, z, 0.5);
        prop_assert_eq!(v.len(), fxr.num_features());
    }

    #[test]
    fn vectors_finite_even_at_boundaries(spec in spec_strategy()) {
        let fxr = FeatureExtractor::new(spec);
        let d = Dims3::new(5, 7, 3);
        let vol = ScalarVolume::from_fn(d, |x, y, z| (x * y * z) as f32 * 0.1);
        for &(x, y, z) in &[(0usize, 0usize, 0usize), (4, 6, 2), (2, 0, 2)] {
            for v in fxr.vector(&vol, x, y, z, 1.0) {
                prop_assert!(v.is_finite());
            }
        }
    }

    #[test]
    fn constant_volume_gives_position_independent_shell(radius in 1.0f32..4.0, c in -3.0f32..3.0) {
        let spec = FeatureSpec {
            value: true,
            shell: ShellMode::Stats,
            shell_radius: radius,
            position: false,
            time: false,
        };
        let fxr = FeatureExtractor::new(spec);
        let vol = ScalarVolume::filled(Dims3::cube(16), c);
        let a = fxr.vector(&vol, 8, 8, 8, 0.0);
        let b = fxr.vector(&vol, 3, 12, 5, 0.0);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn oracle_labels_are_always_truthful_without_noise(seed in any::<u64>(),
                                                       n_pos in 1usize..40, n_neg in 1usize..40) {
        let d = Dims3::cube(10);
        let truth = Mask3::from_fn(d, |x, y, z| x + y + z < 12);
        let mut o = PaintOracle::new(seed);
        o.slice_stride = 1;
        let set = o.paint_from_truth(0, &truth, n_pos, n_neg);
        prop_assert_eq!(set.positives.len(), n_pos);
        prop_assert_eq!(set.negatives.len(), n_neg);
        for &(x, y, z) in &set.positives {
            prop_assert!(truth.get(x, y, z));
        }
        for &(x, y, z) in &set.negatives {
            prop_assert!(!truth.get(x, y, z));
        }
    }

    #[test]
    fn paint_set_iter_counts(n_pos in 0usize..20, n_neg in 0usize..20) {
        let mut set = PaintSet::new(3);
        for i in 0..n_pos {
            set.paint((i, 0, 0), true);
        }
        for i in 0..n_neg {
            set.paint((i, 1, 0), false);
        }
        prop_assert_eq!(set.len(), n_pos + n_neg);
        let pos_labels = set.iter().filter(|&(_, l)| l == 1.0).count();
        prop_assert_eq!(pos_labels, n_pos);
    }
}
