//! Analytic ground truth for the RK4 advector.
//!
//! Uniquely among the repo's subsystems, particle tracing can be gated by
//! *quantitative* closed-form solutions, not just self-consistency:
//! `crates/sim/analytic.rs` provides velocity fields whose pathlines are
//! known exactly.
//!
//! - **Uniform advection** is constant in space and time, so trilinear
//!   sampling and RK4 are both exact — any endpoint deviation from the
//!   closed-form line is pure floating-point noise.
//! - **Rigid rotation** is *linear* in space (trilinear-exact) and steady
//!   (time-lerp-exact), but genuinely curved in time, so the measured
//!   endpoint error is the integrator's own O(dt⁴) truncation error — and
//!   must shrink ~16× per dt halving.
//!
//! Plus the never-NaN / typed-ending property suite on the time-varying
//! swirl field.

use ifet_sim::analytic::{domain_center, rotation_pathline, uniform_pathline};
use ifet_sim::flows::{flow_series, FlowKind};
use ifet_trace::{advect, ParticleEnding, TraceParams};
use ifet_volume::Dims3;
use proptest::prelude::*;

const DIM: usize = 32;
/// Frame stride: large enough that sub-frame dt sweeps have room to halve.
const STRIDE: u32 = 8;
const FRAMES: usize = 5;

fn dist(a: [f64; 3], b: [f64; 3]) -> f64 {
    ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt()
}

#[test]
fn uniform_advection_matches_closed_form_to_roundoff() {
    let vel = [0.22f32, 0.14, -0.08];
    let f = flow_series(FlowKind::Uniform { vel }, Dims3::cube(DIM), FRAMES, STRIDE);
    let seeds = [[4.0, 5.0, 20.0], [10.5, 12.25, 9.75]];
    let set = advect(&f.u, &f.v, &f.w, &seeds, &TraceParams { rk4_dt: 0.5 }).unwrap();
    let t_end = ((FRAMES - 1) as u32 * STRIDE) as f64;
    for (i, p) in set.pathlines.iter().enumerate() {
        assert_eq!(p.ending, ParticleEnding::Completed);
        let want = uniform_pathline(seeds[i], vel, t_end);
        let err = dist(p.endpoint(), want);
        assert!(err < 1e-9, "seed {i}: endpoint off by {err}");
        // Every intermediate frame point lies on the same line.
        for (k, &pt) in p.points.iter().enumerate() {
            let t = (set.steps[k] - set.steps[0]) as f64;
            assert!(dist(pt, uniform_pathline(seeds[i], vel, t)) < 1e-9);
        }
    }
}

/// Endpoint error of one RK4 run on the rigid-rotation field.
fn rotation_endpoint_error(dt: f64) -> f64 {
    let omega = 0.15f32;
    let d = Dims3::cube(DIM);
    let f = flow_series(FlowKind::Rotation { omega }, d, FRAMES, STRIDE);
    let c = domain_center(d);
    let seed = [c[0] + 8.0, c[1], 8.0];
    let set = advect(&f.u, &f.v, &f.w, &[seed], &TraceParams { rk4_dt: dt }).unwrap();
    let p = &set.pathlines[0];
    assert_eq!(p.ending, ParticleEnding::Completed, "dt={dt}");
    let t_end = ((FRAMES - 1) as u32 * STRIDE) as f64;
    dist(p.endpoint(), rotation_pathline(seed, c, omega, t_end))
}

#[test]
fn rotation_error_shrinks_as_dt_to_the_fourth() {
    // ω·T = 4.8 rad of arc at radius 8: enough curvature that truncation
    // error dominates, while staying far above the f32-field noise floor.
    let errs: Vec<f64> = [4.0, 2.0, 1.0]
        .iter()
        .map(|&dt| rotation_endpoint_error(dt))
        .collect();
    for w in errs.windows(2) {
        let ratio = w[0] / w[1];
        assert!(
            ratio > 8.0,
            "expected ~16x error drop per dt halving, got {ratio:.2}x ({errs:?})"
        );
    }
    // And the absolute error at the finest dt is genuinely small.
    assert!(errs[2] < 1e-3, "finest-dt error {} too large", errs[2]);
    // Sanity: the coarsest error is measurable, so the ratios above are
    // not comparing noise with noise.
    assert!(
        errs[0] > 1e-4,
        "coarsest-dt error {} suspiciously small",
        errs[0]
    );
}

#[test]
fn rotation_returns_to_start_after_full_turn() {
    // A full 2π turn with steps chosen to land exactly: ω = 2π / T.
    let d = Dims3::cube(DIM);
    let t_total = ((FRAMES - 1) as u32 * STRIDE) as f64;
    let omega = (2.0 * std::f64::consts::PI / t_total) as f32;
    let f = flow_series(FlowKind::Rotation { omega }, d, FRAMES, STRIDE);
    let c = domain_center(d);
    let seed = [c[0] + 6.0, c[1] + 2.0, 10.0];
    let set = advect(&f.u, &f.v, &f.w, &[seed], &TraceParams { rk4_dt: 0.25 }).unwrap();
    let err = dist(set.pathlines[0].endpoint(), seed);
    assert!(
        err < 5e-3,
        "after 2π the particle is {err} voxels from home"
    );
}

/// Strategy: a seed strictly inside the `DIM³` domain.
fn in_domain_seed() -> impl Strategy<Value = [f64; 3]> {
    (any::<f64>(), any::<f64>(), any::<f64>()).prop_map(|(x, y, z)| {
        let span = (DIM - 1) as f64;
        [x * span, y * span, z * span]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// In-domain seeds on the (time-varying) swirl field never produce a
    /// NaN/∞ position, whatever the dt.
    #[test]
    fn in_domain_seeds_never_go_non_finite(
        seeds in proptest::collection::vec(in_domain_seed(), 1..12),
        dt_frac in any::<f64>(),
    ) {
        let f = flow_series(
            FlowKind::parse("swirl").unwrap(),
            Dims3::cube(DIM),
            FRAMES,
            STRIDE,
        );
        let dt = 0.1 + dt_frac * 12.0;
        let set = advect(&f.u, &f.v, &f.w, &seeds, &TraceParams { rk4_dt: dt }).unwrap();
        for p in &set.pathlines {
            prop_assert!(!matches!(p.ending, ParticleEnding::NonFinite { .. }));
            for pt in &p.points {
                prop_assert!(pt.iter().all(|c| c.is_finite()));
            }
        }
    }

    /// Out-of-domain *seeds* are refused with a typed error — and particles
    /// that exit mid-flight get a typed ending, never a panic: an outward
    /// uniform flow pushes every particle over the boundary eventually.
    #[test]
    fn domain_exits_are_typed_not_panics(
        seed in in_domain_seed(),
        out_axis in any::<u32>(),
    ) {
        let d = Dims3::cube(DIM);
        let f = flow_series(
            FlowKind::Uniform { vel: [1.4, 0.0, 0.0] },
            d,
            FRAMES,
            STRIDE,
        );
        // A seed pushed outside along one axis is a typed TraceError.
        let mut bad = seed;
        bad[(out_axis % 3) as usize] = DIM as f64 + 3.5;
        let err = advect(&f.u, &f.v, &f.w, &[bad], &TraceParams::default()).unwrap_err();
        prop_assert!(matches!(err, ifet_trace::TraceError::SeedOutOfDomain { index: 0, .. }));

        // The in-domain seed rides the outward flow (+1.4 x/step over 32
        // steps crosses any 32-wide domain) and must end typed.
        let set = advect(&f.u, &f.v, &f.w, &[seed], &TraceParams::default()).unwrap();
        let p = &set.pathlines[0];
        prop_assert!(matches!(p.ending, ParticleEnding::LeftDomain { .. }));
        // The recorded prefix never leaves the domain.
        for pt in &p.points {
            prop_assert!(pt.iter().all(|c| c.is_finite()));
            prop_assert!((0.0..=(DIM - 1) as f64).contains(&pt[0]));
        }
    }
}
