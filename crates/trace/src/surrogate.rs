//! The flow-map surrogate: `ifet-nn`'s MLP trained to predict where a
//! particle ends up, `(seed, t₀, Δt) → end position`, from integrated
//! pathlines — the workload shape of the Han et al. particle-tracing
//! papers. Once trained, a flow-map query is one forward pass instead of an
//! RK4 walk over the whole series, which is the trade the `trace_particles`
//! bench measures.
//!
//! Training pairs are cut from the recorded pathlines: for each particle
//! and each recorded frame index `i`, targets at `j = i + 2ᵏ` give
//! short- and long-interval samples without quadratic blowup. Inputs and
//! targets are normalized to `[0, 1]` (positions by grid extent, times by
//! the series span), matching the sigmoid output layer.
//!
//! Accuracy is reported on *held-out seeds* (every `holdout_every`-th
//! particle never trains): the median and max distance, in voxels, between
//! the surrogate's predicted endpoint and the RK4-integrated one.

use crate::advect::{ParticleEnding, PathlineSet};
use crate::TraceError;
use ifet_nn::{Activation, Mlp, TrainParams, Trainer, TrainingSet};
use ifet_obs as obs;
use ifet_volume::Dims3;

/// splitmix64 finalizer — the repo-standard deterministic mixer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Hyper-parameters for [`train_flow_map`]. Deterministic given the seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurrogateParams {
    /// Hidden-layer width.
    pub hidden: usize,
    /// Training epochs over the pathline-pair set.
    pub epochs: usize,
    /// Weight-init and shuffle seed.
    pub seed: u64,
    /// Every `holdout_every`-th particle is held out of training and used
    /// only for the error report (0 or 1 disables the holdout).
    pub holdout_every: usize,
}

impl Default for SurrogateParams {
    fn default() -> Self {
        Self {
            hidden: 24,
            epochs: 200,
            seed: 0x7ACE,
            holdout_every: 4,
        }
    }
}

/// A trained flow map over one series' domain and time span.
#[derive(Debug, Clone)]
pub struct FlowMapSurrogate {
    net: Mlp,
    dims: Dims3,
    t_first: f64,
    t_span: f64,
}

impl FlowMapSurrogate {
    /// Predict the end position of a particle seeded at `seed` at absolute
    /// time `t0`, advected for `dt` (both in step-label units).
    pub fn predict(&self, seed: [f64; 3], t0: f64, dt: f64) -> [f64; 3] {
        let nx = (self.dims.nx - 1).max(1) as f64;
        let ny = (self.dims.ny - 1).max(1) as f64;
        let nz = (self.dims.nz - 1).max(1) as f64;
        let out = self.net.forward(&[
            (seed[0] / nx) as f32,
            (seed[1] / ny) as f32,
            (seed[2] / nz) as f32,
            (((t0 - self.t_first) / self.t_span).clamp(0.0, 1.0)) as f32,
            ((dt / self.t_span).clamp(0.0, 1.0)) as f32,
        ]);
        [out[0] as f64 * nx, out[1] as f64 * ny, out[2] as f64 * nz]
    }

    /// The network itself (for persistence or inspection).
    pub fn network(&self) -> &Mlp {
        &self.net
    }
}

/// Endpoint-error measurements from a [`train_flow_map`] run. Distances are
/// in voxels, measured on the full-span flow map `(seed, t_first, span)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateReport {
    /// Training pairs cut from the pathlines.
    pub training_rows: usize,
    /// Particles trained on / held out.
    pub train_particles: usize,
    pub holdout_particles: usize,
    /// Median / max endpoint distance over held-out seeds (falls back to
    /// the training seeds when the holdout is disabled or empty).
    pub median_error: f64,
    pub max_error: f64,
    /// Final epoch's mean squared loss in normalized coordinates.
    pub final_loss: f32,
}

/// Train the MLP flow-map surrogate on integrated pathlines and measure
/// surrogate-vs-integrated endpoint error on held-out seeds.
///
/// Only in-domain trajectory spans train the map (an early-ended particle
/// still contributes its recorded prefix). Fails typed when the pathlines
/// hold no usable pairs at all.
pub fn train_flow_map(
    set: &PathlineSet,
    params: &SurrogateParams,
) -> Result<(FlowMapSurrogate, SurrogateReport), TraceError> {
    let _span = obs::span("trace.surrogate.train");
    let t_first = *set.steps.first().unwrap_or(&0) as f64;
    let t_last = *set.steps.last().unwrap_or(&0) as f64;
    let t_span = (t_last - t_first).max(1.0);
    let nx = (set.dims.nx - 1).max(1) as f64;
    let ny = (set.dims.ny - 1).max(1) as f64;
    let nz = (set.dims.nz - 1).max(1) as f64;

    // Hash the particle index before taking the residue: seeds usually come
    // from regular grids, and a bare `idx % k` with k dividing the grid
    // period would hold out a whole *plane* of seeds — forcing the MLP to
    // extrapolate instead of measuring interpolation quality.
    let holdout = |idx: usize| {
        params.holdout_every >= 2 && mix(idx as u64) % params.holdout_every as u64 == 0
    };

    let mut rows = TrainingSet::new();
    let mut train_particles = 0usize;
    let mut usable = 0usize;
    for (idx, path) in set.pathlines.iter().enumerate() {
        if path.points.len() < 2 {
            continue;
        }
        usable += 1;
        if holdout(idx) {
            continue;
        }
        train_particles += 1;
        for i in 0..path.points.len() - 1 {
            // Geometric target offsets: short intervals dominate counts,
            // long intervals still appear for every start frame.
            let mut k = 1usize;
            while i + k < path.points.len() {
                let j = i + k;
                let p0 = path.points[i];
                let pj = path.points[j];
                let t0 = set.steps[i] as f64;
                let dt = set.steps[j] as f64 - t0;
                rows.add(
                    vec![
                        (p0[0] / nx) as f32,
                        (p0[1] / ny) as f32,
                        (p0[2] / nz) as f32,
                        (((t0 - t_first) / t_span) as f32).clamp(0.0, 1.0),
                        ((dt / t_span) as f32).clamp(0.0, 1.0),
                    ],
                    vec![
                        (pj[0] / nx) as f32,
                        (pj[1] / ny) as f32,
                        (pj[2] / nz) as f32,
                    ],
                );
                k *= 2;
            }
        }
    }
    if rows.is_empty() {
        return Err(TraceError::NotEnoughTrainingData {
            usable_particles: usable,
        });
    }
    obs::counter("trace.surrogate.rows", rows.len() as u64);

    let mut net = Mlp::new(
        &[5, params.hidden, 3],
        Activation::Sigmoid,
        Activation::Sigmoid,
        params.seed,
    )
    .expect("surrogate layer sizes are non-zero");
    let mut trainer = Trainer::new(TrainParams {
        seed: params.seed,
        ..TrainParams::default()
    });
    let losses = trainer.train(&mut net, &rows, params.epochs.max(1));

    let surrogate = FlowMapSurrogate {
        net,
        dims: set.dims,
        t_first,
        t_span,
    };

    // Endpoint error on held-out seeds over the full completed span.
    let measure = |idx_filter: &dyn Fn(usize) -> bool| {
        let mut errs = Vec::new();
        for (idx, path) in set.pathlines.iter().enumerate() {
            if path.points.len() < 2 || path.ending != ParticleEnding::Completed || !idx_filter(idx)
            {
                continue;
            }
            let span = set.steps[path.points.len() - 1] as f64 - t_first;
            let got = surrogate.predict(path.seed, t_first, span);
            let want = path.endpoint();
            let d = ((got[0] - want[0]).powi(2)
                + (got[1] - want[1]).powi(2)
                + (got[2] - want[2]).powi(2))
            .sqrt();
            errs.push(d);
        }
        errs
    };
    let held = measure(&holdout);
    let holdout_particles = held.len();
    let mut errors = if held.is_empty() {
        measure(&|idx| !holdout(idx))
    } else {
        held
    };
    errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median_error = if errors.is_empty() {
        f64::NAN
    } else {
        errors[errors.len() / 2]
    };
    let max_error = errors.last().copied().unwrap_or(f64::NAN);

    Ok((
        surrogate,
        SurrogateReport {
            training_rows: rows.len(),
            train_particles,
            holdout_particles,
            median_error,
            max_error,
            final_loss: losses.last().copied().unwrap_or(f32::NAN),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advect::{advect, seed_grid, TraceParams};
    use ifet_volume::{ScalarVolume, TimeSeries};

    /// A gentle uniform drift: the flow map is linear in (seed, dt), well
    /// inside what a small MLP fits.
    fn drift_pathlines() -> PathlineSet {
        let d = Dims3::cube(16);
        let comp = |val: f32| {
            TimeSeries::from_frames(
                (0..9u32)
                    .map(|k| (k * 2, ScalarVolume::filled(d, val)))
                    .collect(),
            )
        };
        let (u, v, w) = (comp(0.08), comp(-0.06), comp(0.04));
        advect(&u, &v, &w, &seed_grid(d, 4), &TraceParams { rk4_dt: 1.0 }).unwrap()
    }

    #[test]
    fn surrogate_learns_a_linear_flow_map() {
        let paths = drift_pathlines();
        let (_, report) = train_flow_map(
            &paths,
            &SurrogateParams {
                epochs: 80,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.holdout_particles > 0);
        assert!(report.training_rows > report.train_particles);
        // A linear map on a 16³ grid: the MLP should land within a voxel.
        assert!(
            report.median_error < 1.0,
            "median endpoint error {} voxels",
            report.median_error
        );
    }

    #[test]
    fn training_is_deterministic() {
        let paths = drift_pathlines();
        let p = SurrogateParams::default();
        let (a, ra) = train_flow_map(&paths, &p).unwrap();
        let (b, rb) = train_flow_map(&paths, &p).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(
            a.predict([3.0, 3.0, 3.0], 0.0, 16.0),
            b.predict([3.0, 3.0, 3.0], 0.0, 16.0)
        );
    }

    #[test]
    fn empty_pathlines_fail_typed() {
        let set = PathlineSet {
            dims: Dims3::cube(4),
            steps: vec![0, 1],
            rk4_dt: 1.0,
            pathlines: vec![],
        };
        assert!(matches!(
            train_flow_map(&set, &SurrogateParams::default()),
            Err(TraceError::NotEnoughTrainingData { .. })
        ));
    }
}
