//! The versioned pathline artifact: `<name>.plz` binary plus a JSON
//! sidecar, in the same mold as `.rawz` frames — little-endian layout, a
//! trailing CRC-32 over everything after the magic, and *typed* corruption
//! errors down to single byte flips.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   8B  "IFETPLZ1"
//! version u32
//! dims    3 × u32
//! frames  u32
//! count   u32                  particles
//! rk4_dt  f64 bits
//! steps   frames × u32
//! per particle:
//!   seed    3 × f64 bits
//!   ending  u8 (0 completed / 1 left domain / 2 non-finite) + f64 time
//!   npoints u32, then npoints × 3 × f64
//! crc     u32                  CRC-32 of bytes [8, len-4)
//! ```
//!
//! The CRC is verified over the raw bytes *before* any field is parsed, so
//! a flipped byte anywhere after the magic is a [`PathlineIoError::Checksum`]
//! — never a bogus length that sends the parser off a cliff. Encoding is a
//! pure function of the [`PathlineSet`] (f64 bit patterns, no maps, no
//! timestamps), so save → load → save is byte-identical.

use crate::advect::{ParticleEnding, Pathline, PathlineSet};
use ifet_obs as obs;
use ifet_volume::codec::crc32;
use ifet_volume::Dims3;
use std::io::Write as _;
use std::path::Path;

const MAGIC: &[u8; 8] = b"IFETPLZ1";
const VERSION: u32 = 1;

/// Why a pathline artifact failed to load (or save). Corruption variants
/// name what disagreed so tests can pin single-byte flips to typed errors.
#[derive(Debug)]
pub enum PathlineIoError {
    Io(std::io::Error),
    /// The file does not start with the pathline magic.
    BadMagic,
    /// A future (or mangled) format version.
    UnsupportedVersion {
        got: u32,
    },
    /// The file ends before its own structure says it should.
    Truncated {
        needed: usize,
        got: usize,
    },
    /// The trailing CRC-32 disagrees with the bytes.
    Checksum {
        expected: u32,
        got: u32,
    },
    /// Structurally impossible field values (with the CRC intact).
    Malformed(&'static str),
}

impl std::fmt::Display for PathlineIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathlineIoError::Io(e) => write!(f, "pathline i/o failed: {e}"),
            PathlineIoError::BadMagic => write!(f, "not a pathline artifact (bad magic)"),
            PathlineIoError::UnsupportedVersion { got } => {
                write!(f, "unsupported pathline format version {got}")
            }
            PathlineIoError::Truncated { needed, got } => {
                write!(
                    f,
                    "pathline artifact truncated: need {needed} bytes, have {got}"
                )
            }
            PathlineIoError::Checksum { expected, got } => write!(
                f,
                "pathline artifact corrupt: crc {got:#010x}, expected {expected:#010x}"
            ),
            PathlineIoError::Malformed(what) => {
                write!(f, "pathline artifact malformed: {what}")
            }
        }
    }
}

impl std::error::Error for PathlineIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PathlineIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PathlineIoError {
    fn from(e: std::io::Error) -> Self {
        PathlineIoError::Io(e)
    }
}

fn ending_code(e: ParticleEnding) -> (u8, f64) {
    match e {
        ParticleEnding::Completed => (0, 0.0),
        ParticleEnding::LeftDomain { time } => (1, time),
        ParticleEnding::NonFinite { time } => (2, time),
    }
}

fn ending_from(code: u8, time: f64) -> Result<ParticleEnding, PathlineIoError> {
    match code {
        0 => Ok(ParticleEnding::Completed),
        1 => Ok(ParticleEnding::LeftDomain { time }),
        2 => Ok(ParticleEnding::NonFinite { time }),
        _ => Err(PathlineIoError::Malformed("unknown particle ending code")),
    }
}

/// Encode `set` to its canonical byte form (magic through trailing CRC).
pub fn pathlines_to_bytes(set: &PathlineSet) -> Vec<u8> {
    let mut b = Vec::with_capacity(64 + set.pathlines.len() * 128);
    b.extend_from_slice(MAGIC);
    push_u32(&mut b, VERSION);
    for n in [set.dims.nx, set.dims.ny, set.dims.nz] {
        push_u32(&mut b, n as u32);
    }
    push_u32(&mut b, set.steps.len() as u32);
    push_u32(&mut b, set.pathlines.len() as u32);
    b.extend_from_slice(&set.rk4_dt.to_bits().to_le_bytes());
    for &s in &set.steps {
        push_u32(&mut b, s);
    }
    for p in &set.pathlines {
        for c in p.seed {
            b.extend_from_slice(&c.to_bits().to_le_bytes());
        }
        let (code, time) = ending_code(p.ending);
        b.push(code);
        b.extend_from_slice(&time.to_bits().to_le_bytes());
        push_u32(&mut b, p.points.len() as u32);
        for pt in &p.points {
            for c in pt {
                b.extend_from_slice(&c.to_bits().to_le_bytes());
            }
        }
    }
    let crc = crc32(&b[MAGIC.len()..]);
    push_u32(&mut b, crc);
    b
}

/// Decode the canonical byte form back into a [`PathlineSet`].
pub fn pathlines_from_bytes(bytes: &[u8]) -> Result<PathlineSet, PathlineIoError> {
    if bytes.len() < MAGIC.len() + 4 {
        return Err(PathlineIoError::Truncated {
            needed: MAGIC.len() + 4,
            got: bytes.len(),
        });
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(PathlineIoError::BadMagic);
    }
    // Authenticate everything before parsing anything: a flipped length
    // byte must surface as a checksum error, not a wild allocation.
    let body = &bytes[MAGIC.len()..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    let actual = crc32(body);
    if stored != actual {
        return Err(PathlineIoError::Checksum {
            expected: actual,
            got: stored,
        });
    }
    let mut r = Reader { buf: body, at: 0 };
    let version = r.u32()?;
    if version != VERSION {
        return Err(PathlineIoError::UnsupportedVersion { got: version });
    }
    let (nx, ny, nz) = (r.u32()? as usize, r.u32()? as usize, r.u32()? as usize);
    if nx == 0 || ny == 0 || nz == 0 {
        return Err(PathlineIoError::Malformed("zero-sized dims"));
    }
    let frames = r.u32()? as usize;
    let count = r.u32()? as usize;
    let rk4_dt = f64::from_bits(r.u64()?);
    let mut steps = Vec::with_capacity(frames.min(1 << 20));
    for _ in 0..frames {
        steps.push(r.u32()?);
    }
    let mut pathlines = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let seed = [
            f64::from_bits(r.u64()?),
            f64::from_bits(r.u64()?),
            f64::from_bits(r.u64()?),
        ];
        let code = r.u8()?;
        let time = f64::from_bits(r.u64()?);
        let ending = ending_from(code, time)?;
        let npoints = r.u32()? as usize;
        if npoints > frames {
            return Err(PathlineIoError::Malformed("pathline longer than schedule"));
        }
        let mut points = Vec::with_capacity(npoints);
        for _ in 0..npoints {
            points.push([
                f64::from_bits(r.u64()?),
                f64::from_bits(r.u64()?),
                f64::from_bits(r.u64()?),
            ]);
        }
        if points.is_empty() {
            return Err(PathlineIoError::Malformed("pathline without its seed"));
        }
        pathlines.push(Pathline {
            seed,
            points,
            ending,
        });
    }
    if r.at != r.buf.len() {
        return Err(PathlineIoError::Malformed("trailing bytes after particles"));
    }
    Ok(PathlineSet {
        dims: Dims3::new(nx, ny, nz),
        steps,
        rk4_dt,
        pathlines,
    })
}

/// Write `set` to `path` plus a human-readable `<path>.json` sidecar.
pub fn save_pathlines(path: &Path, set: &PathlineSet) -> Result<(), PathlineIoError> {
    let _span = obs::span("trace.artifact.save");
    let bytes = pathlines_to_bytes(set);
    obs::counter("trace.artifact.bytes", bytes.len() as u64);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)?;
    let sidecar = serde_json::to_string_pretty(&SidecarMeta {
        format: "ifet-pathlines".to_string(),
        version: VERSION,
        dims: [set.dims.nx, set.dims.ny, set.dims.nz],
        frames: set.steps.len(),
        particles: set.pathlines.len(),
        completed: set.completed(),
        rk4_dt: set.rk4_dt,
    })
    .expect("sidecar meta serializes");
    std::fs::write(sidecar_path(path), sidecar)?;
    Ok(())
}

/// Load a pathline artifact written by [`save_pathlines`]. Only the binary
/// is authoritative; the sidecar is advisory and never read back.
pub fn load_pathlines(path: &Path) -> Result<PathlineSet, PathlineIoError> {
    let _span = obs::span("trace.artifact.load");
    let bytes = std::fs::read(path)?;
    pathlines_from_bytes(&bytes)
}

fn sidecar_path(path: &Path) -> std::path::PathBuf {
    let mut p = path.as_os_str().to_owned();
    p.push(".json");
    std::path::PathBuf::from(p)
}

#[derive(serde::Serialize)]
struct SidecarMeta {
    format: String,
    version: u32,
    dims: [usize; 3],
    frames: usize,
    particles: usize,
    completed: usize,
    rk4_dt: f64,
}

/// Little-endian cursor over the authenticated body.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], PathlineIoError> {
        if self.at + n > self.buf.len() {
            return Err(PathlineIoError::Truncated {
                needed: self.at + n,
                got: self.buf.len(),
            });
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, PathlineIoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PathlineIoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PathlineIoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn push_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> PathlineSet {
        PathlineSet {
            dims: Dims3::new(8, 9, 10),
            steps: vec![0, 5, 10, 15],
            rk4_dt: 0.25,
            pathlines: vec![
                Pathline {
                    seed: [1.0, 2.0, 3.0],
                    points: vec![
                        [1.0, 2.0, 3.0],
                        [1.5, 2.0, 3.0],
                        [2.0, 2.0, 3.0],
                        [2.5, 2.0, 3.0],
                    ],
                    ending: ParticleEnding::Completed,
                },
                Pathline {
                    seed: [6.5, 1.0, 1.0],
                    points: vec![[6.5, 1.0, 1.0], [7.0, 1.0, 1.0]],
                    ending: ParticleEnding::LeftDomain { time: 7.5 },
                },
            ],
        }
    }

    #[test]
    fn round_trip_is_lossless_and_byte_identical() {
        let set = sample_set();
        let bytes = pathlines_to_bytes(&set);
        let back = pathlines_from_bytes(&bytes).unwrap();
        assert_eq!(back, set);
        assert_eq!(pathlines_to_bytes(&back), bytes);
    }

    #[test]
    fn every_single_byte_flip_is_a_typed_error() {
        let bytes = pathlines_to_bytes(&sample_set());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let err = pathlines_from_bytes(&bad).expect_err("flip must not load");
            if i < MAGIC.len() {
                assert!(matches!(err, PathlineIoError::BadMagic), "byte {i}: {err}");
            } else {
                assert!(
                    matches!(err, PathlineIoError::Checksum { .. }),
                    "byte {i}: {err}"
                );
            }
        }
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = pathlines_to_bytes(&sample_set());
        for cut in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            let err = pathlines_from_bytes(&bytes[..cut]).expect_err("truncation must not load");
            assert!(
                matches!(
                    err,
                    PathlineIoError::Truncated { .. } | PathlineIoError::Checksum { .. }
                ),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn future_version_is_refused() {
        let set = sample_set();
        let mut bytes = pathlines_to_bytes(&set);
        // Bump the version field and re-seal the CRC.
        bytes[8] = 9;
        let len = bytes.len();
        let crc = crc32(&bytes[8..len - 4]);
        bytes[len - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            pathlines_from_bytes(&bytes),
            Err(PathlineIoError::UnsupportedVersion { got: 9 })
        ));
    }
}
