//! RK4 pathline advection through a streamed 4D velocity series.
//!
//! The velocity field arrives as three scalar component series (u, v, w)
//! behind [`FrameSource`], so advection pages exactly like the rest of the
//! pipeline: frames are walked in ascending time via
//! [`ifet_volume::walk_frame_pairs`], holding only the two bracketing frames
//! of each component (plus a prefetch in flight) no matter how long the
//! series is.
//!
//! Numerics: classical RK4 with velocity sampled by trilinear interpolation
//! in space and linear interpolation in time between the bracketing frames.
//! Particle state is `f64` (field values are `f32`): the integrator's own
//! O(dt⁴) error is the quantity the analytic test battery measures, and it
//! reaches well below `f32` resolution on the rigid-rotation oracle.
//!
//! Determinism: each particle integrates independently from its seed, and
//! per-interval results are collected in particle-index order — so pathline
//! bytes are identical for any thread count, cache capacity, prefetch depth,
//! or storage flavor. Step counts depend only on the step schedule and dt,
//! so `trace.steps` is a *stable* counter; anything schedule-dependent is
//! reported runtime-only.

use crate::TraceError;
use ifet_obs as obs;
use ifet_volume::{walk_frame_pairs, Dims3, FrameSource, ScalarVolume};
use rayon::prelude::*;

/// Integration parameters for [`advect`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceParams {
    /// Target RK4 step, in the units of the series' step labels. Each frame
    /// interval takes `ceil(interval / rk4_dt)` equal substeps, so samples
    /// never straddle a frame pair and the substep schedule is a pure
    /// function of (steps, dt).
    pub rk4_dt: f64,
}

impl Default for TraceParams {
    fn default() -> Self {
        Self { rk4_dt: 1.0 }
    }
}

/// Why a particle stopped where it did. Leaving the domain (or hitting
/// non-finite data) is an expected outcome of advection near boundaries,
/// so it is an *ending*, not an error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParticleEnding {
    /// Integrated through the whole series.
    Completed,
    /// Stepped outside the voxel-index domain `[0, n-1]³` at time `time`
    /// (step-label units); the pathline keeps its last in-domain points.
    LeftDomain { time: f64 },
    /// Produced a non-finite position at time `time` (NaN/∞ in the data).
    NonFinite { time: f64 },
}

/// One particle's trajectory: its seed, the positions recorded at each
/// frame step it survived to, and how it ended.
#[derive(Debug, Clone, PartialEq)]
pub struct Pathline {
    pub seed: [f64; 3],
    /// `points[k]` is the position at `steps[k]`; `points[0] == seed`.
    /// Shorter than the full schedule iff the particle ended early.
    pub points: Vec<[f64; 3]>,
    pub ending: ParticleEnding,
}

impl Pathline {
    /// The last recorded position (the integrated flow-map endpoint for
    /// completed particles).
    pub fn endpoint(&self) -> [f64; 3] {
        *self.points.last().expect("pathline always holds its seed")
    }
}

/// The result of one advection run over a whole series.
#[derive(Debug, Clone, PartialEq)]
pub struct PathlineSet {
    pub dims: Dims3,
    /// Step labels of the series the particles were advected through.
    pub steps: Vec<u32>,
    /// The RK4 target step the run used.
    pub rk4_dt: f64,
    pub pathlines: Vec<Pathline>,
}

impl PathlineSet {
    /// Particles that integrated through the whole series.
    pub fn completed(&self) -> usize {
        self.pathlines
            .iter()
            .filter(|p| p.ending == ParticleEnding::Completed)
            .count()
    }

    /// Particles that ended early (left the domain or went non-finite).
    pub fn ended_early(&self) -> usize {
        self.pathlines.len() - self.completed()
    }
}

/// Velocity at an arbitrary point inside one frame interval: trilinear in
/// space per component, linear in time between the bracketing frames.
struct PairSampler<'a> {
    lo: [&'a ScalarVolume; 3],
    hi: [&'a ScalarVolume; 3],
    t0: f64,
    inv_span: f64,
    dims: Dims3,
}

impl<'a> PairSampler<'a> {
    fn new(lo: [&'a ScalarVolume; 3], hi: [&'a ScalarVolume; 3], t0: f64, t1: f64) -> Self {
        Self {
            lo,
            hi,
            t0,
            inv_span: 1.0 / (t1 - t0),
            dims: lo[0].dims(),
        }
    }

    fn velocity(&self, p: [f64; 3], t: f64) -> [f64; 3] {
        let a = ((t - self.t0) * self.inv_span).clamp(0.0, 1.0);
        let mut v = [0.0; 3];
        for (k, vk) in v.iter_mut().enumerate() {
            let early = trilinear64(self.lo[k], self.dims, p);
            let late = trilinear64(self.hi[k], self.dims, p);
            *vk = early + (late - early) * a;
        }
        v
    }
}

/// Trilinear sample of a scalar frame at a fractional voxel position,
/// computed in `f64` and clamped to the domain (matching
/// [`ifet_volume::VectorVolume::trilinear`]'s boundary policy).
fn trilinear64(vol: &ScalarVolume, d: Dims3, p: [f64; 3]) -> f64 {
    let cx = p[0].clamp(0.0, (d.nx - 1) as f64);
    let cy = p[1].clamp(0.0, (d.ny - 1) as f64);
    let cz = p[2].clamp(0.0, (d.nz - 1) as f64);
    let (x0, y0, z0) = (
        cx.floor() as usize,
        cy.floor() as usize,
        cz.floor() as usize,
    );
    let (x1, y1, z1) = (
        (x0 + 1).min(d.nx - 1),
        (y0 + 1).min(d.ny - 1),
        (z0 + 1).min(d.nz - 1),
    );
    let (fx, fy, fz) = (cx - x0 as f64, cy - y0 as f64, cz - z0 as f64);
    let at = |x: usize, y: usize, z: usize| *vol.get(x, y, z) as f64;
    let lerp = |a: f64, b: f64, t: f64| a + (b - a) * t;
    let c00 = lerp(at(x0, y0, z0), at(x1, y0, z0), fx);
    let c10 = lerp(at(x0, y1, z0), at(x1, y1, z0), fx);
    let c01 = lerp(at(x0, y0, z1), at(x1, y0, z1), fx);
    let c11 = lerp(at(x0, y1, z1), at(x1, y1, z1), fx);
    lerp(lerp(c00, c10, fy), lerp(c01, c11, fy), fz)
}

/// Per-particle integration state while the series streams past.
#[derive(Clone)]
struct ParticleState {
    pos: [f64; 3],
    ending: Option<ParticleEnding>,
    /// RK4 substeps this particle has executed (for `trace.steps`).
    steps_taken: u64,
}

fn in_domain(p: [f64; 3], d: Dims3) -> bool {
    p[0] >= 0.0
        && p[0] <= (d.nx - 1) as f64
        && p[1] >= 0.0
        && p[1] <= (d.ny - 1) as f64
        && p[2] >= 0.0
        && p[2] <= (d.nz - 1) as f64
}

/// Advance one particle across the interval `[t0, t1]` in `n` RK4 substeps
/// of size `h`.
fn advance_particle(st: &mut ParticleState, s: &PairSampler<'_>, t0: f64, h: f64, n: usize) {
    if st.ending.is_some() {
        return;
    }
    let mut p = st.pos;
    for k in 0..n {
        let t = t0 + h * k as f64;
        let k1 = s.velocity(p, t);
        let half = h * 0.5;
        let k2 = s.velocity(offset(p, k1, half), t + half);
        let k3 = s.velocity(offset(p, k2, half), t + half);
        let k4 = s.velocity(offset(p, k3, h), t + h);
        let sixth = h / 6.0;
        for a in 0..3 {
            p[a] += sixth * (k1[a] + 2.0 * k2[a] + 2.0 * k3[a] + k4[a]);
        }
        st.steps_taken += 1;
        if !p.iter().all(|c| c.is_finite()) {
            st.ending = Some(ParticleEnding::NonFinite { time: t + h });
            return;
        }
        if !in_domain(p, s.dims) {
            st.ending = Some(ParticleEnding::LeftDomain { time: t + h });
            return;
        }
        st.pos = p;
    }
}

#[inline]
fn offset(p: [f64; 3], v: [f64; 3], h: f64) -> [f64; 3] {
    [p[0] + v[0] * h, p[1] + v[1] * h, p[2] + v[2] * h]
}

/// RK4-advect `seeds` through the velocity series `(u, v, w)` from the first
/// frame to the last, recording each particle's position at every frame
/// step it survives to.
///
/// Seeds must lie inside the voxel-index domain and `rk4_dt` must be a
/// positive finite number — violations are typed [`TraceError`]s, and any
/// paging failure surfaces as [`TraceError::Source`]. Output is
/// bit-identical for any `FrameSource` flavor, cache budget, prefetch
/// depth, or thread count.
pub fn advect<S: FrameSource + ?Sized>(
    u: &S,
    v: &S,
    w: &S,
    seeds: &[[f64; 3]],
    params: &TraceParams,
) -> Result<PathlineSet, TraceError> {
    let _span = obs::span("trace.advect");
    if !(params.rk4_dt.is_finite() && params.rk4_dt > 0.0) {
        return Err(TraceError::InvalidDt { dt: params.rk4_dt });
    }
    if seeds.is_empty() {
        return Err(TraceError::NoSeeds);
    }
    let dims = u.dims();
    for (i, &s) in seeds.iter().enumerate() {
        if !(s.iter().all(|c| c.is_finite()) && in_domain(s, dims)) {
            return Err(TraceError::SeedOutOfDomain { index: i, seed: s });
        }
    }

    let mut states: Vec<ParticleState> = seeds
        .iter()
        .map(|&pos| ParticleState {
            pos,
            ending: None,
            steps_taken: 0,
        })
        .collect();
    let mut pathlines: Vec<Pathline> = seeds
        .iter()
        .map(|&seed| Pathline {
            seed,
            points: vec![seed],
            ending: ParticleEnding::Completed,
        })
        .collect();

    walk_frame_pairs(&[u, v, w], |_i, (s0, lo), (s1, hi)| {
        let sampler = PairSampler::new(
            [&lo[0], &lo[1], &lo[2]],
            [&hi[0], &hi[1], &hi[2]],
            s0 as f64,
            s1 as f64,
        );
        let span = (s1 - s0) as f64;
        let n = (span / params.rk4_dt).ceil().max(1.0) as usize;
        let h = span / n as f64;
        // Fan out over particles; the shim collects per-particle results in
        // index order, so the merge below is schedule-independent.
        let advanced: Vec<ParticleState> = states
            .par_iter()
            .map(|st| {
                let mut st = st.clone();
                advance_particle(&mut st, &sampler, s0 as f64, h, n);
                st
            })
            .collect();
        states = advanced;
        for (st, path) in states.iter().zip(pathlines.iter_mut()) {
            match st.ending {
                None => path.points.push(st.pos),
                Some(e) if path.ending == ParticleEnding::Completed => path.ending = e,
                Some(_) => {}
            }
        }
        Ok::<(), TraceError>(())
    })?;

    let total_steps: u64 = states.iter().map(|s| s.steps_taken).sum();
    obs::counter("trace.particles", seeds.len() as u64);
    obs::counter("trace.steps", total_steps);
    obs::counter(
        "trace.escaped",
        states.iter().filter(|s| s.ending.is_some()).count() as u64,
    );
    // How wide the fan-out ran is a scheduling fact, not a result: keep it
    // out of stable traces so they stay byte-identical across thread counts.
    obs::counter_runtime("trace.threads", rayon::current_num_threads() as u64);

    Ok(PathlineSet {
        dims,
        steps: u.steps().to_vec(),
        rk4_dt: params.rk4_dt,
        pathlines,
    })
}

/// Build a regular `n × n × n` seed lattice strictly inside the domain —
/// the CLI's `--seed-grid` and the benches both use this placement.
pub fn seed_grid(dims: Dims3, n: usize) -> Vec<[f64; 3]> {
    let mut seeds = Vec::with_capacity(n * n * n);
    let place = |extent: usize, k: usize| {
        // n samples at the centers of n equal slabs: inside for any n ≥ 1.
        (extent as f64 - 1.0) * (k as f64 + 0.5) / n as f64
    };
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                seeds.push([place(dims.nx, x), place(dims.ny, y), place(dims.nz, z)]);
            }
        }
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifet_volume::TimeSeries;

    /// A uniform +x flow of speed 0.5, as three component series.
    fn uniform_series(frames: usize) -> (TimeSeries, TimeSeries, TimeSeries) {
        let d = Dims3::cube(8);
        let comp = |val: f32| {
            TimeSeries::from_frames(
                (0..frames as u32)
                    .map(|k| (k, ScalarVolume::filled(d, val)))
                    .collect(),
            )
        };
        (comp(0.5), comp(0.0), comp(0.0))
    }

    #[test]
    fn uniform_flow_is_integrated_exactly() {
        let (u, v, w) = uniform_series(5);
        let set = advect(&u, &v, &w, &[[1.0, 3.0, 3.0]], &TraceParams { rk4_dt: 0.5 }).unwrap();
        let p = &set.pathlines[0];
        assert_eq!(p.ending, ParticleEnding::Completed);
        assert_eq!(p.points.len(), 5);
        // After 4 unit intervals at speed 0.5: x = 1 + 2.
        assert!((p.endpoint()[0] - 3.0).abs() < 1e-12);
        assert_eq!(p.endpoint()[1], 3.0);
    }

    #[test]
    fn particle_leaving_domain_gets_typed_ending() {
        let (u, v, w) = uniform_series(20);
        let set = advect(&u, &v, &w, &[[6.5, 3.0, 3.0]], &TraceParams { rk4_dt: 1.0 }).unwrap();
        let p = &set.pathlines[0];
        assert!(matches!(p.ending, ParticleEnding::LeftDomain { .. }));
        // Pathline retains the in-domain prefix: seed plus one frame.
        assert!(p.points.len() < 20);
        assert!(in_domain(p.endpoint(), Dims3::cube(8)));
    }

    #[test]
    fn bad_seeds_and_dt_are_typed_errors() {
        let (u, v, w) = uniform_series(3);
        let err = advect(&u, &v, &w, &[[9.0, 0.0, 0.0]], &TraceParams::default()).unwrap_err();
        assert!(matches!(err, TraceError::SeedOutOfDomain { index: 0, .. }));
        let err = advect(&u, &v, &w, &[[1.0, 1.0, 1.0]], &TraceParams { rk4_dt: 0.0 }).unwrap_err();
        assert!(matches!(err, TraceError::InvalidDt { .. }));
        let err = advect(&u, &v, &w, &[], &TraceParams::default()).unwrap_err();
        assert!(matches!(err, TraceError::NoSeeds));
    }

    #[test]
    fn seed_grid_stays_inside_any_domain() {
        for n in [1usize, 2, 3, 5] {
            let d = Dims3::new(4, 9, 17);
            for s in seed_grid(d, n) {
                assert!(in_domain(s, d), "seed {s:?} escaped dims {d:?} (n={n})");
            }
        }
        assert_eq!(seed_grid(Dims3::cube(8), 3).len(), 27);
    }
}
