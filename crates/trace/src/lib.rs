//! Lagrangian particle tracing over the 4D series: the flow-visualization
//! companion workload to the paper's Eulerian feature tracking.
//!
//! Three layers:
//! - [`advect`] (module) — RK4 pathline advection of particle ensembles,
//!   streamed through `FrameSource` velocity components so it runs
//!   out-of-core under the existing frame/byte budgets and prefetch;
//! - [`surrogate`] — the `ifet-nn` MLP trained as a *flow map*
//!   `(seed, t₀, Δt) → end position` on integrated pathlines, with
//!   held-out-seed endpoint error measurement (the Han et al. particle
//!   papers' workload shape);
//! - [`artifact`] — a versioned, CRC'd binary pathline format with a JSON
//!   sidecar, corruption-typed like `.rawz` frames and `.ifet` sessions.
//!
//! Everything is deterministic: pathline bytes, surrogate weights, and
//! stable obs traces are identical across thread counts, cache budgets, and
//! storage flavors.

pub mod advect;
pub mod artifact;
pub mod surrogate;

pub use advect::{advect, seed_grid, ParticleEnding, Pathline, PathlineSet, TraceParams};
pub use artifact::{load_pathlines, pathlines_to_bytes, save_pathlines, PathlineIoError};
pub use surrogate::{train_flow_map, FlowMapSurrogate, SurrogateParams, SurrogateReport};

use ifet_volume::SeriesError;

/// Why a trace request was refused. Every variant is a caller or
/// environment condition a CLI can hit, so they are reported, not panicked.
#[derive(Debug)]
pub enum TraceError {
    /// A seed position outside the voxel-index domain (or non-finite).
    SeedOutOfDomain { index: usize, seed: [f64; 3] },
    /// `rk4_dt` must be a positive finite number.
    InvalidDt { dt: f64 },
    /// An advection run needs at least one seed.
    NoSeeds,
    /// Too few recorded pathline points to train a flow-map surrogate.
    NotEnoughTrainingData { usable_particles: usize },
    /// Paging a velocity frame failed (I/O, corruption, or shape mismatch).
    Source(SeriesError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::SeedOutOfDomain { index, seed } => write!(
                f,
                "seed {index} at ({}, {}, {}) is outside the voxel domain",
                seed[0], seed[1], seed[2]
            ),
            TraceError::InvalidDt { dt } => {
                write!(f, "rk4 step must be a positive finite number, got {dt}")
            }
            TraceError::NoSeeds => write!(f, "an advection run needs at least one seed"),
            TraceError::NotEnoughTrainingData { usable_particles } => write!(
                f,
                "flow-map surrogate needs pathlines with at least two points; \
                 only {usable_particles} usable particles"
            ),
            TraceError::Source(e) => write!(f, "velocity series failed: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Source(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SeriesError> for TraceError {
    fn from(e: SeriesError) -> Self {
        TraceError::Source(e)
    }
}
