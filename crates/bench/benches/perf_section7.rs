//! Criterion benches for the Section 7 performance table: per-frame IATF
//! table generation, shaded DVR, the tracking-overlay pass, and data-space
//! classification. Sizes are scaled down from the paper's 256³/512² so a
//! bench run stays in minutes; `perf_table` (a bin) runs the full sizes once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ifet_core::prelude::*;
use ifet_sim::shock_bubble::{ring_value_band, shock_bubble_with, ShockBubbleParams};
use std::hint::black_box;

fn setup(n: usize) -> (ifet_sim::LabeledSeries, VisSession) {
    let data = shock_bubble_with(ShockBubbleParams {
        dims: Dims3::cube(n),
        ..Default::default()
    });
    let mut session = VisSession::new(data.series.clone()).unwrap();
    let (glo, ghi) = session.series().global_range();
    for (t, tn) in [(195u32, 0.0f32), (255, 1.0)] {
        let (lo, hi) = ring_value_band(tn);
        session.add_key_frame(t, TransferFunction1D::band(glo, ghi, lo, hi, 1.0));
    }
    session.train_iatf(IatfParams {
        epochs: 200,
        ..Default::default()
    });
    (data, session)
}

fn bench_iatf_table_gen(c: &mut Criterion) {
    let (data, session) = setup(64);
    let iatf = session.iatf().unwrap().clone();
    let frame = data.series.frame_at_step(225).unwrap().clone();
    c.bench_function("iatf_table_gen_64c", |b| {
        b.iter(|| black_box(iatf.generate(225, &frame)))
    });
}

fn bench_render(c: &mut Criterion) {
    let (_, session) = setup(64);
    let tf = session.adaptive_tf_at_step(225).unwrap();
    let mut g = c.benchmark_group("render_dvr");
    g.sample_size(10);
    for &wh in &[128usize, 256] {
        g.bench_with_input(BenchmarkId::new("shaded_64c", wh), &wh, |b, &wh| {
            b.iter(|| black_box(session.render_with_tf(225, &tf, wh, wh)))
        });
    }
    g.finish();
}

fn bench_tracking_overlay(c: &mut Criterion) {
    let (_, session) = setup(64);
    let tf = session.adaptive_tf_at_step(225).unwrap();
    let tracked = session.extract_with_tf(225, &tf, 0.5);
    let mut g = c.benchmark_group("render_tracking_overlay");
    g.sample_size(10);
    g.bench_function("overlay_64c_256px", |b| {
        b.iter(|| black_box(session.render_tracked(225, &tracked, &tf, &tf, 256, 256)))
    });
    g.finish();
}

fn bench_dataspace_classify(c: &mut Criterion) {
    let (data, _) = setup(64);
    let t = 225;
    let fi = data.series.index_of_step(t).unwrap();
    let mut session = VisSession::new(data.series.clone()).unwrap();
    let mut oracle = PaintOracle::new(3);
    session
        .add_paints(oracle.paint_from_truth(t, data.truth_frame(fi), 150, 150))
        .unwrap();
    session
        .train_classifier(FeatureSpec::default(), ClassifierParams::default())
        .unwrap();
    let mut g = c.benchmark_group("dataspace_classify");
    g.sample_size(10);
    g.bench_function("classify_64c", |b| {
        b.iter(|| black_box(session.extract_data_space(t, 0.5).unwrap()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_iatf_table_gen,
    bench_render,
    bench_tracking_overlay,
    bench_dataspace_classify
);
criterion_main!(benches);
