//! Ray-casting throughput with the packet-size axis.
//!
//! The ray caster gathers a packet of sample positions per step, runs the
//! trilinear + transfer-function phases over the whole packet, then
//! composites serially — output is invariant to the packet width, so this
//! axis isolates the throughput effect of batching the per-sample work.
//!
//! `IFET_QUICK=1` shrinks the volume and framebuffer for a CI smoke-run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ifet_render::{Camera, RenderParams, Renderer};
use ifet_tf::{ColorMap, TransferFunction1D};
use ifet_volume::{Dims3, ScalarVolume};
use std::hint::black_box;

fn quick() -> bool {
    std::env::var("IFET_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Volume side and framebuffer size under test.
fn shape() -> (usize, usize) {
    if quick() {
        (16, 24)
    } else {
        (48, 96)
    }
}

/// A soft sphere: rays accumulate over many samples before terminating, so
/// the packet phases dominate.
fn scene(n: usize) -> (ScalarVolume, TransferFunction1D, Camera) {
    let d = Dims3::cube(n);
    let c = n as f32 / 2.0;
    let vol = ScalarVolume::from_fn(d, |x, y, z| {
        let r = ((x as f32 - c).powi(2) + (y as f32 - c).powi(2) + (z as f32 - c).powi(2)).sqrt();
        (1.0 - r / c).max(0.0)
    });
    let tf = TransferFunction1D::band(0.0, 1.0, 0.2, 0.9, 0.25);
    let cam = Camera::framing(d, 0.6, 0.4);
    (vol, tf, cam)
}

fn bench_render_packet_axis(c: &mut Criterion) {
    let (n, size) = shape();
    let (vol, tf, cam) = scene(n);
    let mut g = c.benchmark_group("render_packet");
    for &packet in &[1usize, 4, 8, 16, 64] {
        let r = Renderer::new(RenderParams {
            packet,
            ..Default::default()
        });
        g.bench_with_input(BenchmarkId::new("samples", packet), &packet, |b, _| {
            b.iter(|| black_box(r.render(&vol, &tf, ColorMap::Rainbow, &cam, size, size)))
        });
    }
    g.finish();
}

fn bench_render_mip(c: &mut Criterion) {
    let (n, size) = shape();
    let (vol, _, cam) = scene(n);
    let mut g = c.benchmark_group("render_mip");
    for &packet in &[1usize, 8] {
        let r = Renderer::new(RenderParams {
            packet,
            shading: false,
            ..Default::default()
        });
        g.bench_with_input(BenchmarkId::new("samples", packet), &packet, |b, _| {
            b.iter(|| black_box(r.render_mip(&vol, ColorMap::Rainbow, &cam, size, size)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_render_packet_axis, bench_render_mip);
criterion_main!(benches);
