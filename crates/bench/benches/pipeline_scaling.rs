//! Per-time-step parallel fan-out (paper Conclusion: each time step is
//! independent, so a cluster — here, a thread pool — processes frames
//! concurrently). Measures classification of a multi-frame series at
//! 1/2/4/8 workers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ifet_core::pipeline::map_frames_with_threads;
use ifet_core::prelude::*;
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let data =
        ifet_sim::shock_bubble::shock_bubble_with(ifet_sim::shock_bubble::ShockBubbleParams {
            dims: Dims3::cube(32),
            stride: 5, // 13 frames
            ..Default::default()
        });
    let t0 = data.series.steps()[0];
    let fi = 0;
    let mut session = VisSession::new(data.series.clone()).unwrap();
    let mut oracle = PaintOracle::new(1);
    session
        .add_paints(oracle.paint_from_truth(t0, data.truth_frame(fi), 120, 120))
        .unwrap();
    session
        .train_classifier(FeatureSpec::default(), ClassifierParams::default())
        .unwrap();
    let clf = session.classifier().unwrap().clone();
    let series = data.series.clone();

    let mut g = c.benchmark_group("pipeline_scaling");
    g.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("classify_13_frames", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(map_frames_with_threads(&series, threads, |t, frame| {
                        // Sequential, buffer-reusing inner work so only the
                        // frame fan-out scales (per-slice classification is
                        // the UI feedback path and allocates once per slice).
                        let tn = series.normalized_time(t);
                        let d = frame.dims();
                        let mut acc = 0.0f32;
                        for z in 0..d.nz {
                            let (_, _, slice) = clf.classify_slice_z(frame, z, tn);
                            acc += slice.iter().sum::<f32>();
                        }
                        acc
                    }))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
