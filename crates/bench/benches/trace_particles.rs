//! Lagrangian tracing benchmarks: RK4 ensemble advection across the
//! particle-count and dt axes, and the flow-map surrogate's inference cost
//! against the full RK4 walk it replaces — the trade DESIGN.md §11
//! quantifies for accuracy, measured here for speed.
//!
//! `IFET_QUICK=1` shrinks the fixture to 16³ × 4 frames for a CI smoke-run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ifet_sim::flows::{flow_series, FlowKind};
use ifet_trace::{advect, seed_grid, train_flow_map, SurrogateParams, TraceParams};
use ifet_volume::Dims3;
use std::hint::black_box;

fn quick() -> bool {
    std::env::var("IFET_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn shape() -> (usize, usize) {
    if quick() {
        (16, 4)
    } else {
        (32, 8)
    }
}

fn fixture() -> ifet_sim::flows::FlowSeries {
    let (dim, frames) = shape();
    flow_series(
        FlowKind::parse("swirl").unwrap(),
        Dims3::cube(dim),
        frames,
        2,
    )
}

fn bench_rk4_particle_count(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("trace_rk4_particles");
    let grids: &[usize] = if quick() { &[2, 3] } else { &[2, 4, 8] };
    for &n in grids {
        let seeds = seed_grid(f.u.dims(), n);
        g.bench_with_input(
            BenchmarkId::new("ensemble", seeds.len()),
            &seeds,
            |b, seeds| {
                b.iter(|| {
                    black_box(
                        advect(&f.u, &f.v, &f.w, seeds, &TraceParams { rk4_dt: 1.0 }).unwrap(),
                    )
                })
            },
        );
    }
    g.finish();
}

fn bench_rk4_dt_sweep(c: &mut Criterion) {
    let f = fixture();
    let seeds = seed_grid(f.u.dims(), 3);
    let mut g = c.benchmark_group("trace_rk4_dt");
    let dts: &[f64] = if quick() {
        &[2.0, 1.0]
    } else {
        &[2.0, 1.0, 0.5, 0.25]
    };
    for &dt in dts {
        g.bench_with_input(BenchmarkId::new("dt", format!("{dt}")), &dt, |b, &dt| {
            b.iter(|| {
                black_box(advect(&f.u, &f.v, &f.w, &seeds, &TraceParams { rk4_dt: dt }).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_surrogate_vs_rk4(c: &mut Criterion) {
    let f = fixture();
    let seeds = seed_grid(f.u.dims(), 3);
    let set = advect(&f.u, &f.v, &f.w, &seeds, &TraceParams { rk4_dt: 1.0 }).unwrap();
    let epochs = if quick() { 20 } else { 120 };
    let (surrogate, report) = train_flow_map(
        &set,
        &SurrogateParams {
            epochs,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(report.median_error.is_finite());
    let t0 = *set.steps.first().unwrap() as f64;
    let span = *set.steps.last().unwrap() as f64 - t0;

    let mut g = c.benchmark_group("trace_flow_map");
    g.bench_function("rk4_integrate_ensemble", |b| {
        b.iter(|| {
            black_box(advect(&f.u, &f.v, &f.w, &seeds, &TraceParams { rk4_dt: 1.0 }).unwrap())
        })
    });
    g.bench_function("surrogate_infer_ensemble", |b| {
        b.iter(|| {
            for s in &seeds {
                black_box(surrogate.predict(*s, t0, span));
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_rk4_particle_count,
    bench_rk4_dt_sweep,
    bench_surrogate_vs_rk4
);
criterion_main!(benches);
