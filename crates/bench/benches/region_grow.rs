//! Region-growing benchmarks for the frontier-parallel grower: serial BFS
//! vs. the level-synchronous parallel algorithm at several thread counts,
//! plus the cost of criterion table precomputation on its own. The series is
//! 64³ × 8 frames so the per-round frontiers are large enough for the
//! parallel path to matter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ifet_core::pipeline;
use ifet_tf::TransferFunction1D;
use ifet_track::criterion::{AdaptiveTfCriterion, FixedBandCriterion};
use ifet_track::{grow_4d, grow_4d_serial, GrowthCriterion, Seed4};
use ifet_volume::{Dims3, ScalarVolume, TimeSeries};
use std::hint::black_box;

/// 8 frames of 64³: a sphere of high values drifting along x, so the grown
/// region spans every frame and the temporal exchange is exercised.
fn drifting_sphere_series() -> TimeSeries {
    let d = Dims3::cube(64);
    let frames = (0..8u32)
        .map(|t| {
            let cx = 20.0 + 3.0 * t as f32;
            let vol = ScalarVolume::from_fn(d, |x, y, z| {
                let dx = x as f32 - cx;
                let dy = y as f32 - 32.0;
                let dz = z as f32 - 32.0;
                let r = (dx * dx + dy * dy + dz * dz).sqrt();
                (1.0 - r / 18.0).max(0.0)
            });
            (t, vol)
        })
        .collect();
    TimeSeries::from_frames(frames)
}

fn bench_grow_parallel_vs_serial(c: &mut Criterion) {
    let series = drifting_sphere_series();
    let criterion = FixedBandCriterion::new(0.25, 2.0, series.len()).unwrap();
    let seeds: Vec<Seed4> = vec![(0, 20, 32, 32)];

    // Sanity: the two paths agree before we time them.
    assert_eq!(
        grow_4d(&series, &criterion, &seeds).unwrap(),
        grow_4d_serial(&series, &criterion, &seeds).unwrap()
    );

    let mut g = c.benchmark_group("grow_4d_64c_8f");
    g.sample_size(10);
    g.bench_function("serial", |b| {
        b.iter(|| black_box(grow_4d_serial(&series, &criterion, &seeds).unwrap()))
    });
    for &threads in &[1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            let pool = pipeline::pool_with_threads(t);
            b.iter(|| pool.install(|| black_box(grow_4d(&series, &criterion, &seeds).unwrap())))
        });
    }
    g.finish();
}

fn bench_criterion_precompute(c: &mut Criterion) {
    let series = drifting_sphere_series();
    let n = series.len();
    let band = FixedBandCriterion::new(0.25, 2.0, n).unwrap();
    let tfs = (0..n)
        .map(|_| TransferFunction1D::band(0.0, 1.0, 0.25, 1.0, 1.0))
        .collect::<Vec<_>>();
    let adaptive = AdaptiveTfCriterion::new(tfs, 0.5).unwrap();

    // The per-voxel virtual-call path the tables replace: one full frame of
    // `accept` calls vs. one `precompute_frame` table build.
    let frame = series.frame(0);
    let d = frame.dims();
    let mut g = c.benchmark_group("criterion_precompute_64c");
    g.sample_size(10);
    g.bench_function("fixed_band_accept_per_voxel", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for z in 0..d.nz {
                for y in 0..d.ny {
                    for x in 0..d.nx {
                        if band.accept(0, frame, x, y, z) {
                            hits += 1;
                        }
                    }
                }
            }
            black_box(hits)
        })
    });
    g.bench_function("fixed_band_table", |b| {
        b.iter(|| black_box(band.precompute_frame(0, frame)))
    });
    g.bench_function("adaptive_tf_table", |b| {
        b.iter(|| black_box(adaptive.precompute_frame(0, frame)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_grow_parallel_vs_serial,
    bench_criterion_precompute
);
criterion_main!(benches);
