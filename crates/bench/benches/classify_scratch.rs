//! Scratch-buffer reuse in data-space classification: the pooled predictor
//! (per-thread feature/forward-pass buffers checked out of the classifier's
//! scratch pool) against the allocation-per-slab baseline it replaced.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ifet_core::prelude::*;
use std::hint::black_box;

fn trained_classifier(dim: usize) -> (LabeledSeries, DataSpaceClassifier) {
    let data = ifet_sim::reionization(Dims3::cube(dim), 0x77);
    let step = data.series.steps()[0];
    let mut oracle = PaintOracle::new(0x77);
    let paints = vec![oracle.paint_from_truth(step, data.truth_frame(0), 60, 60)];
    let clf = DataSpaceClassifier::train(
        FeatureExtractor::new(FeatureSpec::default()),
        &data.series,
        &paints,
        ClassifierParams {
            epochs: 40,
            ..Default::default()
        },
    )
    .unwrap();
    (data, clf)
}

fn bench_classify_scratch(c: &mut Criterion) {
    let mut g = c.benchmark_group("classify_scratch");
    for &dim in &[16usize, 32] {
        let (data, clf) = trained_classifier(dim);
        let (_, frame) = data.series.iter().next().unwrap();
        g.bench_with_input(BenchmarkId::new("pooled", dim), &clf, |b, clf| {
            b.iter(|| black_box(clf.classify_frame(frame, 0.0)))
        });
        g.bench_with_input(BenchmarkId::new("fresh_buffers", dim), &clf, |b, clf| {
            b.iter(|| black_box(clf.classify_frame_uncached(frame, 0.0)))
        });
    }
    g.finish();
}

/// The batch-width axis of the SoA-batched predictor: width 1 runs the same
/// code row-by-row, wider batches amortize feature assembly and let the
/// chunked forward pass autovectorize. Output is bit-identical throughout.
fn bench_classify_batch_axis(c: &mut Criterion) {
    let mut g = c.benchmark_group("classify_batch");
    let (data, clf) = trained_classifier(32);
    let (_, frame) = data.series.iter().next().unwrap();
    for &batch in &[1usize, 8, 16, 64] {
        clf.set_batch(batch);
        g.bench_with_input(BenchmarkId::new("rows", batch), &batch, |b, _| {
            b.iter(|| black_box(clf.classify_frame(frame, 0.0)))
        });
    }
    clf.set_batch(0);
    g.finish();
}

fn bench_classify_series(c: &mut Criterion) {
    let mut g = c.benchmark_group("classify_series");
    let (data, clf) = trained_classifier(24);
    g.bench_function("pooled_24c_series", |b| {
        b.iter(|| black_box(clf.classify_series(&data.series)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_classify_scratch,
    bench_classify_batch_axis,
    bench_classify_series
);
criterion_main!(benches);
