//! Micro-benchmarks for the design choices DESIGN.md calls out: shell
//! descriptor cost, octree encoding, 4D region growing, and neural-network
//! throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ifet_core::prelude::*;
use ifet_nn::mlp::Scratch;
use ifet_track::components::{ComponentLabels, Connectivity};
use ifet_track::FeatureOctree;
use ifet_volume::shell::ShellOffsets;
use std::hint::black_box;

fn bench_shell_sampling(c: &mut Criterion) {
    let vol = ScalarVolume::from_fn(Dims3::cube(64), |x, y, z| (x + y + z) as f32);
    let mut g = c.benchmark_group("shell_sampling");
    for &r in &[2.0f32, 4.0, 6.0] {
        let shell = ShellOffsets::full(r);
        g.bench_with_input(BenchmarkId::new("full_stats", r as u32), &shell, |b, s| {
            b.iter(|| black_box(s.sample_stats(&vol, 32, 32, 32)))
        });
    }
    let fib = ShellOffsets::fibonacci(4.0, 26);
    let mut buf = Vec::new();
    g.bench_function("fibonacci_26_samples", |b| {
        b.iter(|| {
            buf.clear();
            fib.sample_into(&vol, 32, 32, 32, &mut buf);
            black_box(buf.len())
        })
    });
    g.finish();
}

fn bench_mlp_forward(c: &mut Criterion) {
    let mut g = c.benchmark_group("mlp_forward");
    for &(n_in, hidden) in &[(3usize, 16usize), (6, 12), (30, 16)] {
        let net = Mlp::three_layer(n_in, hidden, 0);
        let input = vec![0.5f32; n_in];
        let mut scratch = Scratch::for_net(&net);
        g.bench_with_input(
            BenchmarkId::new("predict1", format!("{n_in}x{hidden}")),
            &net,
            |b, net| b.iter(|| black_box(net.predict1(&input, &mut scratch))),
        );
    }
    g.finish();
}

fn bench_octree(c: &mut Criterion) {
    let data = ifet_sim::turbulent_vortex(Dims3::cube(48), 1);
    let mask = data.truth_frame(0).clone();
    let mut g = c.benchmark_group("octree");
    g.bench_function("encode_48c_feature", |b| {
        b.iter(|| black_box(FeatureOctree::from_mask(&mask)))
    });
    let tree = FeatureOctree::from_mask(&mask);
    g.bench_function("decode_48c_feature", |b| {
        b.iter(|| black_box(tree.to_mask()))
    });
    g.finish();
}

fn bench_region_grow_and_components(c: &mut Criterion) {
    let data = ifet_sim::turbulent_vortex(Dims3::cube(48), 1);
    let session = VisSession::new(data.series.clone()).unwrap();
    let truth0 = data.truth_frame(0);
    let (mut cx, mut cy, mut cz, mut n) = (0usize, 0usize, 0usize, 0usize);
    for (x, y, z) in truth0.set_coords() {
        cx += x;
        cy += y;
        cz += z;
        n += 1;
    }
    let seeds: Vec<Seed4> = vec![(0, cx / n, cy / n, cz / n)];

    let mut g = c.benchmark_group("tracking");
    g.sample_size(10);
    g.bench_function("grow_4d_13_frames_48c", |b| {
        b.iter(|| black_box(session.track_fixed(&seeds, 0.5, 10.0)))
    });
    let masks = session.track_fixed(&seeds, 0.5, 10.0).unwrap().masks;
    g.bench_function("label_components_48c", |b| {
        b.iter(|| black_box(ComponentLabels::label(&masks[0], Connectivity::TwentySix)))
    });
    g.finish();
}

fn bench_multires_tracking(c: &mut Criterion) {
    use ifet_track::grow_4d_multires;
    // A large-ish volume where the tracked feature is compact: the coarse
    // pass should pay off.
    let data = ifet_sim::turbulent_vortex(Dims3::cube(64), 2);
    let (glo, ghi) = data.series.global_range();
    let _ = (glo, ghi);
    let criterion_band = FixedBandCriterion::new(0.5, 10.0, data.series.len()).unwrap();
    let truth0 = data.truth_frame(0);
    let (mut cx, mut cy, mut cz, mut n) = (0usize, 0usize, 0usize, 0usize);
    for (x, y, z) in truth0.set_coords() {
        cx += x;
        cy += y;
        cz += z;
        n += 1;
    }
    let seeds: Vec<Seed4> = vec![(0, cx / n, cy / n, cz / n)];

    let mut g = c.benchmark_group("multires_tracking");
    g.sample_size(10);
    g.bench_function("exact_64c", |b| {
        b.iter(|| black_box(grow_4d(&data.series, &criterion_band, &seeds)))
    });
    for &factor in &[2usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("multires_64c", factor),
            &factor,
            |b, &f| {
                b.iter(|| black_box(grow_4d_multires(&data.series, &criterion_band, &seeds, f)))
            },
        );
    }
    g.finish();
}

fn bench_svm_vs_nn_prediction(c: &mut Criterion) {
    use ifet_nn::{Svm, SvmParams};
    // Cost per prediction: the Section 3 "cost and performance tradeoffs
    // remain to be evaluated" comparison.
    let inputs: Vec<Vec<f32>> = (0..200)
        .map(|i| vec![(i % 20) as f32 / 20.0, (i / 20) as f32 / 10.0, 0.5])
        .collect();
    let labels: Vec<f32> = inputs
        .iter()
        .map(|x| if x[0] + x[1] > 1.0 { 1.0 } else { 0.0 })
        .collect();
    let svm = Svm::train(&inputs, &labels, SvmParams::default());
    let net = Mlp::three_layer(3, 12, 0);
    let mut scratch = Scratch::for_net(&net);
    let probe = [0.4f32, 0.6, 0.5];

    let mut g = c.benchmark_group("engine_prediction");
    g.bench_function("nn_3x12", |b| {
        b.iter(|| black_box(net.predict1(&probe, &mut scratch)))
    });
    g.bench_function(
        format!("svm_{}sv", svm.num_support_vectors()).as_str(),
        |b| b.iter(|| black_box(svm.predict(&probe))),
    );
    g.finish();
}

criterion_group!(
    benches,
    bench_shell_sampling,
    bench_mlp_forward,
    bench_octree,
    bench_region_grow_and_components,
    bench_multires_tracking,
    bench_svm_vs_nn_prediction
);
criterion_main!(benches);
