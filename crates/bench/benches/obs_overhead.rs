//! Cost of the observability layer (`ifet_core::obs`).
//!
//! Two claims are measured:
//! 1. Primitives: a disabled `counter()` / `span()` is a load + branch —
//!    nanoseconds — while the enabled paths stay cheap enough for per-slab
//!    granularity.
//! 2. Pipeline A/B: the instrumented hot path (series classification +
//!    4D growth) timed with tracing disabled vs. under a live capture, plus
//!    an estimate of the disabled-mode overhead: events-per-run × disabled
//!    per-event cost as a fraction of the run, which must stay below 5%.
//!
//! `IFET_QUICK=1` shrinks everything to a CI smoke-run.

use criterion::{black_box, Criterion};
use ifet_core::obs;
use ifet_core::prelude::*;
use std::time::{Duration, Instant};

fn quick() -> bool {
    std::env::var("IFET_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_primitives");
    assert!(!obs::is_enabled());
    g.bench_function("counter_disabled", |b| {
        b.iter(|| obs::counter("bench.counter", black_box(1)))
    });
    g.bench_function("span_disabled", |b| {
        b.iter(|| {
            let _s = obs::span("bench.span");
        })
    });
    g.bench_function("is_enabled", |b| b.iter(|| black_box(obs::is_enabled())));
    g.finish();

    // Enabled costs, measured inside one long-lived capture. The guard space
    // is bounded: counters merge by name, so the span tree stays tiny.
    let (_, _trace) = obs::capture("bench.enabled", || {
        let mut g = c.benchmark_group("obs_primitives_enabled");
        g.bench_function("counter_enabled", |b| {
            b.iter(|| obs::counter("bench.counter", black_box(1)))
        });
        g.bench_function("span_enabled", |b| {
            b.iter(|| {
                let _s = obs::span("bench.span");
            })
        });
        g.finish();
    });
}

/// One representative hot-path run: classify every frame, then grow a 4D
/// region under a fixed band. Returns a value dependent on the work so the
/// optimizer cannot elide it.
fn pipeline_once(
    clf: &DataSpaceClassifier,
    series: &TimeSeries,
    seed: Seed4,
    band: (f32, f32),
) -> usize {
    let certainty = clf.classify_series(series).unwrap();
    let criterion = FixedBandCriterion::new(band.0, band.1, series.len()).unwrap();
    let masks = grow_4d(series, &criterion, &[seed]).unwrap();
    certainty.len() + masks.iter().map(|m| m.count()).sum::<usize>()
}

/// Count spans and counters in a trace — the number of observability events
/// a single pipeline run produces.
fn event_count(s: &obs::Span) -> usize {
    1 + s.counters.len() + s.children.iter().map(event_count).sum::<usize>()
}

fn time_runs(reps: usize, mut f: impl FnMut() -> usize) -> Duration {
    let start = Instant::now();
    let mut acc = 0usize;
    for _ in 0..reps {
        acc = acc.wrapping_add(f());
    }
    black_box(acc);
    start.elapsed()
}

fn bench_pipeline_ab() {
    let dims = if quick() { 12 } else { 16 };
    let reps = if quick() { 2 } else { 8 };
    let data = ifet_sim::shock_bubble(Dims3::cube(dims), 0x51);
    let series = data.series.clone();

    let mut session = VisSession::new(series.clone()).unwrap();
    let mut oracle = PaintOracle::new(5);
    let step0 = series.steps()[0];
    session
        .add_paints(oracle.paint_from_truth(step0, &data.truth[0], 60, 60))
        .unwrap();
    session
        .train_classifier(
            FeatureSpec {
                shell: ShellMode::None,
                ..Default::default()
            },
            ClassifierParams {
                epochs: 20,
                ..Default::default()
            },
        )
        .unwrap();
    let clf = session.classifier().unwrap().clone();

    let (_, f0) = series.iter().next().unwrap();
    let (mut bi, mut bv) = (0usize, f32::MIN);
    for (i, &v) in f0.as_slice().iter().enumerate() {
        if v > bv {
            bv = v;
            bi = i;
        }
    }
    let (x, y, z) = series.dims().coords(bi);
    let (_, ghi) = series.global_range();
    let band = (bv - 0.3, ghi);
    let seed = (0usize, x, y, z);

    // Warm up, then A/B.
    pipeline_once(&clf, &series, seed, band);
    assert!(!obs::is_enabled());
    let disabled = time_runs(reps, || pipeline_once(&clf, &series, seed, band));
    let (enabled, trace) = obs::capture("bench.pipeline", || {
        time_runs(reps, || pipeline_once(&clf, &series, seed, band))
    });

    let events = event_count(&trace.root) / reps.max(1);
    // Disabled instrumentation costs one is_enabled check (plus argument
    // setup) per event; bound the per-event cost generously at 25ns.
    let per_run = disabled.as_nanos() as f64 / reps as f64;
    let est_overhead_pct = (events as f64 * 25.0) / per_run * 100.0;

    println!("obs_overhead/pipeline_ab");
    println!("  disabled: {:>10.3} ms/run", per_run / 1e6);
    println!(
        "  enabled:  {:>10.3} ms/run ({:+.2}% vs disabled)",
        enabled.as_nanos() as f64 / reps as f64 / 1e6,
        (enabled.as_nanos() as f64 / disabled.as_nanos() as f64 - 1.0) * 100.0
    );
    println!("  events/run: {events}");
    println!("  estimated disabled overhead: {est_overhead_pct:.3}% (budget 5%)");
    assert!(
        est_overhead_pct < 5.0,
        "disabled instrumentation exceeds the 5% hot-path budget: {est_overhead_pct:.3}%"
    );
}

fn main() {
    let mut c = if quick() {
        Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(120))
    } else {
        Criterion::default()
    };
    bench_primitives(&mut c);
    bench_pipeline_ab();
}
