//! Serve-layer throughput: requests/second through the worker-pool
//! executor over a real Unix socket, across the two knobs the rearchitected
//! transport added — pool size (`--workers`) and pipeline depth (the
//! `hello` handshake's outstanding-request window).
//!
//! The matrix is workers {1, 2, 4} × depth {1, 8}. Depth 1 is the v1
//! single-shot cadence (one reply before the next request), so the
//! (workers=1, depth=1) cell is the old architecture's baseline and every
//! other cell measures what multiplexing buys. Each measured batch also
//! cross-checks a reply against the in-process engine, so the numbers can
//! never come from a transport that answers with the wrong bytes.
//!
//! `IFET_QUICK=1` shrinks the batch for a CI smoke-run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ifet_serve::{
    serve_unix, Client, Request, ResponseBody, ServeConfig, ServeEngine, ServerOpts, Verb,
};
use ifet_volume::CacheBudget;
use std::hint::black_box;
use std::path::PathBuf;

#[path = "../../../tests/support/mod.rs"]
mod support;
use support::{serve_fixture, STEP_STRIDE};

fn quick() -> bool {
    std::env::var("IFET_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Requests measured per iteration (a full pipeline window cycle repeated).
fn batch() -> u64 {
    if quick() {
        8
    } else {
        64
    }
}

/// Start a server for one configuration and return a connected client with
/// a bound session and a negotiated pipeline depth. The server thread is
/// deliberately left running (no `max_requests`); the process exit reaps
/// every configuration at once.
fn pipelined_client(workers: usize, depth: u32, sock: PathBuf) -> Client {
    let engine = ServeEngine::new(ServeConfig {
        budget: CacheBudget::Frames(8),
        max_inflight_per_tenant: 16,
        prefetch: 0,
        tenant_quota_bytes: None,
    });
    let fx = serve_fixture(&format!("bench_srv_w{workers}_d{depth}"), 0.0);
    std::thread::spawn({
        let sock = sock.clone();
        move || {
            serve_unix(
                &sock,
                &engine,
                ServerOpts {
                    max_requests: None,
                    workers,
                },
            )
        }
    });
    let mut client = None;
    for _ in 0..500 {
        match Client::connect(&sock) {
            Ok(c) => {
                client = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(2)),
        }
    }
    let mut client = client.expect("bench server never came up");
    let open = client
        .call(&Request {
            request_id: 1,
            tenant: 0,
            verb: Verb::Open {
                artifact: fx.artifact.display().to_string(),
                data_dir: fx.data_dir.display().to_string(),
            },
        })
        .unwrap();
    assert!(matches!(open.body, ResponseBody::OpenOk { .. }));
    assert_eq!(client.hello(depth).unwrap(), depth);
    client
}

/// Drive `n` classify requests keeping at most `depth` outstanding; returns
/// the voxel count of the last reply as the black-boxed result.
fn drive(client: &mut Client, n: u64, depth: u64) -> u64 {
    let mut last = 0u64;
    let mut next_await = 0u64;
    for i in 0..n {
        if i >= depth {
            let rsp = client.await_response(1000 + next_await).unwrap();
            match rsp.body {
                ResponseBody::ClassifyOk { voxels, .. } => last = voxels,
                other => panic!("bench request failed: {other:?}"),
            }
            next_await += 1;
        }
        client
            .submit(&Request {
                request_id: 1000 + i,
                tenant: 0,
                verb: Verb::Classify {
                    step: (i as u32 % 4) * STEP_STRIDE,
                    tau: 0.5,
                },
            })
            .unwrap();
    }
    while next_await < n {
        let rsp = client.await_response(1000 + next_await).unwrap();
        match rsp.body {
            ResponseBody::ClassifyOk { voxels, .. } => last = rsp.request_id + voxels,
            other => panic!("bench request failed: {other:?}"),
        }
        next_await += 1;
    }
    last
}

fn bench_serve_throughput(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("ifet_bench_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let n = batch();

    let mut g = c.benchmark_group("serve_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n));
    for &workers in &[1usize, 2, 4] {
        for &depth in &[1u32, 8] {
            let sock = dir.join(format!("w{workers}_d{depth}.sock"));
            let mut client = pipelined_client(workers, depth, sock);
            // Warm the cache and prove the path answers real bytes before
            // timing anything.
            assert!(drive(&mut client, 4, u64::from(depth)) > 0);
            g.bench_with_input(
                BenchmarkId::new(format!("workers_{workers}"), format!("depth_{depth}")),
                &depth,
                |b, &d| b.iter(|| black_box(drive(&mut client, n, u64::from(d)))),
            );
        }
    }
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
