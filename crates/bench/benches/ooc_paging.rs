//! Out-of-core paging benchmarks: what does running against an N-frame LRU
//! cache cost relative to a fully resident series?
//!
//! Two access patterns are measured over a 64³ × 16 series (the in-core
//! copy is ~16 MiB, so every configuration fits in RAM and the numbers
//! isolate paging overhead, not disk bandwidth):
//! 1. A sequential full sweep (sum every voxel of every frame) — the
//!    pattern of `classify_series` / IATF generation. Capacity 1 is the
//!    worst case (every frame is a miss); at full capacity the second and
//!    later iterations are pure hits.
//! 2. 4D region growing, whose frontier revisits frames out of order and so
//!    exercises eviction and re-paging at small capacities.
//!
//! `IFET_QUICK=1` shrinks the series to 16³ × 8 for a CI smoke-run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ifet_track::{grow_4d, FixedBandCriterion, Seed4};
use ifet_volume::io::{write_series, write_series_with};
use ifet_volume::{
    map_frames_windowed, CacheBudgetHandle, Dims3, OutOfCoreSeries, ScalarVolume, TimeSeries,
};
use std::hint::black_box;
use std::path::PathBuf;

fn quick() -> bool {
    std::env::var("IFET_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn shape() -> (usize, usize) {
    if quick() {
        (16, 8)
    } else {
        (64, 16)
    }
}

/// A sphere of high values drifting along x so the grown region spans every
/// frame (same structure as the region-growing benchmarks).
fn drifting_sphere_series(n: usize, frames: usize) -> TimeSeries {
    let d = Dims3::cube(n);
    let c = n as f32 / 2.0;
    let r0 = n as f32 * 0.28;
    TimeSeries::from_frames(
        (0..frames as u32)
            .map(|t| {
                let cx = n as f32 * 0.3 + (n as f32 * 0.05) * t as f32;
                let vol = ScalarVolume::from_fn(d, move |x, y, z| {
                    let dx = x as f32 - cx;
                    let dy = y as f32 - c;
                    let dz = z as f32 - c;
                    let r = (dx * dx + dy * dy + dz * dz).sqrt();
                    (1.0 - r / r0).max(0.0)
                });
                (t, vol)
            })
            .collect(),
    )
}

/// The series written to disk once per process; benches reopen it at each
/// capacity under test.
fn on_disk() -> (TimeSeries, Vec<PathBuf>) {
    let (n, frames) = shape();
    let series = drifting_sphere_series(n, frames);
    let dir = std::env::temp_dir().join(format!("ifet_bench_ooc_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let paths = write_series(&dir, "bench", &series).unwrap();
    (series, paths)
}

fn sum_in_core(series: &TimeSeries) -> f64 {
    series
        .iter()
        .map(|(_, f)| f.as_slice().iter().map(|&v| v as f64).sum::<f64>())
        .sum()
}

fn sum_paged(series: &OutOfCoreSeries) -> f64 {
    (0..series.len())
        .map(|i| {
            let f = series.frame(i).unwrap();
            f.as_slice().iter().map(|&v| v as f64).sum::<f64>()
        })
        .sum()
}

/// Windowed sweep via [`map_frames_windowed`] — the pattern that issues
/// prefetch hints for the next window while the current one computes.
fn sum_windowed(series: &OutOfCoreSeries) -> f64 {
    map_frames_windowed(series, |_, _, f| {
        f.as_slice().iter().map(|&v| v as f64).sum::<f64>()
    })
    .unwrap()
    .into_iter()
    .sum()
}

fn bench_sequential_sweep(c: &mut Criterion) {
    let (series, paths) = on_disk();
    let frames = series.len();
    let frame_bytes = series.dims().len() as u64 * 4;

    let mut g = c.benchmark_group("ooc_sweep");
    g.sample_size(10);
    g.bench_function("in_core", |b| b.iter(|| black_box(sum_in_core(&series))));
    for &cap in &[1usize, 2, 4, frames] {
        let ooc = OutOfCoreSeries::open(paths.clone(), cap).unwrap();
        assert_eq!(sum_paged(&ooc), sum_in_core(&series), "paging changed data");
        g.bench_with_input(BenchmarkId::new("cache", cap), &cap, |b, _| {
            b.iter(|| black_box(sum_paged(&ooc)))
        });
    }
    // Byte-budget axis: the same sweep with the budget counted in bytes.
    for &capf in &[1u64, 2, 4] {
        let budget = CacheBudgetHandle::bytes(capf * frame_bytes);
        let ooc = OutOfCoreSeries::open_with(paths.clone(), &budget, 0).unwrap();
        assert_eq!(sum_paged(&ooc), sum_in_core(&series), "paging changed data");
        g.bench_with_input(BenchmarkId::new("cache_bytes", capf), &capf, |b, _| {
            b.iter(|| black_box(sum_paged(&ooc)))
        });
    }
    g.finish();
}

/// Prefetch axis: a windowed sweep at cache capacity 2, with background
/// read-ahead depths 0 (off) through 4. Depth > 0 overlaps the next
/// window's disk reads with the current window's compute — a wall-clock win
/// only when a spare core can run the worker; on a single-core host the
/// overlap serializes and the numbers document that.
fn bench_prefetch_axis(c: &mut Criterion) {
    let (series, paths) = on_disk();
    let expected = sum_in_core(&series);

    let mut g = c.benchmark_group("ooc_prefetch");
    g.sample_size(10);
    for &depth in &[0usize, 1, 2, 4] {
        let budget = CacheBudgetHandle::frames(2);
        let ooc = OutOfCoreSeries::open_with(paths.clone(), &budget, depth).unwrap();
        assert_eq!(sum_windowed(&ooc), expected, "prefetch changed data");
        g.bench_with_input(BenchmarkId::new("depth", depth), &depth, |b, _| {
            b.iter(|| black_box(sum_windowed(&ooc)))
        });
    }
    g.finish();
}

fn bench_grow_paged(c: &mut Criterion) {
    let (series, paths) = on_disk();
    let (n, frames) = shape();
    let criterion = FixedBandCriterion::new(0.25, 2.0, frames).unwrap();
    let seeds: Vec<Seed4> = vec![(0, (n as f32 * 0.3) as usize, n / 2, n / 2)];
    let reference = grow_4d(&series, &criterion, &seeds).unwrap();

    let mut g = c.benchmark_group("ooc_grow_4d");
    g.sample_size(10);
    g.bench_function("in_core", |b| {
        b.iter(|| black_box(grow_4d(&series, &criterion, &seeds).unwrap()))
    });
    for &cap in &[1usize, 2, frames] {
        let ooc = OutOfCoreSeries::open(paths.clone(), cap).unwrap();
        assert_eq!(
            grow_4d(&ooc, &criterion, &seeds).unwrap(),
            reference,
            "paging changed growth"
        );
        g.bench_with_input(BenchmarkId::new("cache", cap), &cap, |b, _| {
            b.iter(|| black_box(grow_4d(&ooc, &criterion, &seeds).unwrap()))
        });
    }
    g.finish();
}

/// Storage-flavor axis: the sequential sweep over raw copying reads,
/// compressed (`.rawz`) frames decoded on page-in, and zero-copy mmap —
/// all at cache capacity 2. Setup doubles as the `--compress` density
/// smoke: charged at compressed size, the same byte budget must page at
/// least twice the frames the raw series does on this sphere fixture.
fn bench_storage_flavors(c: &mut Criterion) {
    let (series, raw_paths) = on_disk();
    let zdir = std::env::temp_dir().join(format!("ifet_bench_oocz_{}", std::process::id()));
    std::fs::create_dir_all(&zdir).unwrap();
    let zpaths = write_series_with(&zdir, "bench", &series, true).unwrap();
    let expected = sum_in_core(&series);
    let frame_bytes = series.dims().len() as u64 * 4;

    // Frames-per-byte: the worst compressed frame must fit twice in one
    // raw frame's bytes...
    let zmax = zpaths
        .iter()
        .map(|p| std::fs::metadata(p).unwrap().len())
        .max()
        .unwrap();
    assert!(
        zmax * 2 <= frame_bytes,
        "compressed frames too large ({zmax} of {frame_bytes} raw bytes): \
         a byte budget would not hold 2x the frames"
    );
    // ...and the paged high-water must confirm it end to end: under the
    // same two-raw-frame byte budget, the compressed series keeps at least
    // twice as many frames resident.
    let budget = 2 * frame_bytes;
    let raw = OutOfCoreSeries::open_with(raw_paths.clone(), &CacheBudgetHandle::bytes(budget), 0)
        .unwrap();
    assert_eq!(sum_paged(&raw), expected, "raw paging changed data");
    let z =
        OutOfCoreSeries::open_with(zpaths.clone(), &CacheBudgetHandle::bytes(budget), 0).unwrap();
    assert_eq!(sum_paged(&z), expected, "codec changed data");
    let (rhw, zhw) = (
        raw.stats().resident_high_water,
        z.stats().resident_high_water,
    );
    assert!(
        zhw >= 2 * rhw,
        "same {budget}-byte budget held {zhw} compressed frames vs {rhw} raw — \
         expected at least 2x"
    );

    let mut g = c.benchmark_group("ooc_storage");
    g.sample_size(10);
    let flavors: [(&str, OutOfCoreSeries); 3] = [
        ("raw", OutOfCoreSeries::open(raw_paths.clone(), 2).unwrap()),
        ("compressed", OutOfCoreSeries::open(zpaths, 2).unwrap()),
        (
            "mmap",
            OutOfCoreSeries::open_mmap(raw_paths, &CacheBudgetHandle::frames(2), 0).unwrap(),
        ),
    ];
    for (label, ooc) in flavors {
        assert_eq!(sum_paged(&ooc), expected, "{label} flavor changed data");
        g.bench_function(label, |b| b.iter(|| black_box(sum_paged(&ooc))));
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_sequential_sweep,
    bench_prefetch_axis,
    bench_grow_paged,
    bench_storage_flavors
);
criterion_main!(benches);
