//! Figure 2: "A feature's data value and histogram can change over time,
//! however, the cumulative histogram value remains similar."
//!
//! For the argon-bubble analog at t = 200, 250, 300 this prints the ring
//! feature's mean data value and its mean cumulative-histogram fraction; the
//! paper's claim holds when the value drifts strongly while the fraction
//! stays nearly constant.

use ifet_bench::{f3, header, row};
use ifet_sim::shock_bubble::{shock_bubble_with, ShockBubbleParams};
use ifet_volume::{CumulativeHistogram, Dims3, Histogram};

fn main() {
    let dims = if ifet_bench::quick() {
        Dims3::cube(32)
    } else {
        Dims3::cube(64)
    };
    let data = shock_bubble_with(ShockBubbleParams {
        dims,
        t_start: 200,
        t_end: 300,
        stride: 50,
        seed: 0xF162,
        drift_wobble: 0.0,
    });

    println!("# Figure 2 — histogram vs cumulative histogram stability\n");
    header(&[
        "t",
        "ring mean value",
        "hist peak height",
        "ring mean cum-hist",
    ]);

    let mut values = Vec::new();
    let mut fractions = Vec::new();
    for (i, &t) in data.series.steps().iter().enumerate() {
        let frame = data.series.frame(i);
        let truth = data.truth_frame(i);
        let ch = CumulativeHistogram::of_volume(frame, 256);
        let h = Histogram::of_volume(frame, 256);

        let mut val = 0.0f64;
        let mut frac = 0.0f64;
        let mut n = 0.0f64;
        let mut peak_bin_lo = usize::MAX;
        let mut peak_bin_hi = 0;
        for (x, y, z) in truth.set_coords() {
            let v = *frame.get(x, y, z);
            val += v as f64;
            frac += ch.fraction_at_or_below(v) as f64;
            n += 1.0;
            let b = h.bin_of(v);
            peak_bin_lo = peak_bin_lo.min(b);
            peak_bin_hi = peak_bin_hi.max(b);
        }
        val /= n;
        frac /= n;
        let (_, peak_count) = h.peak_in(peak_bin_lo, peak_bin_hi);
        values.push(val);
        fractions.push(frac);
        row(&[t.to_string(), f3(val), peak_count.to_string(), f3(frac)]);
    }

    let spread = |v: &[f64]| {
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (hi - lo) / hi.max(1e-12)
    };
    let value_drift = spread(&values);
    let frac_drift = spread(&fractions);
    println!();
    println!(
        "relative drift of ring VALUE over time:    {}",
        f3(value_drift)
    );
    println!(
        "relative drift of ring CUM-HIST over time: {}",
        f3(frac_drift)
    );
    println!(
        "paper claim (value drifts, cum-hist ~constant): {}",
        if value_drift > 5.0 * frac_drift {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
