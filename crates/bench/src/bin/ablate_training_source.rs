//! Ablation of the IATF training-set source (paper Section 4.2.2): training
//! rows can come from the key-frame TF *table entries* (the paper's choice —
//! in-core, uniform coverage of the value axis) or from *random voxels* of
//! the key frames (histogram-biased: rare feature values are undersampled).

use ifet_bench::{f3, header, row, timed};
use ifet_core::prelude::*;
use ifet_nn::{Activation, Mlp, TrainParams, Trainer, TrainingSet};
use ifet_sim::shock_bubble::ring_value_band;
use ifet_tf::IatfBuilder;
use ifet_volume::{CumulativeHistogram, Histogram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Train an IATF-equivalent network from random voxel samples instead of TF
/// entries, then emit per-frame TFs the same way.
fn train_from_random_voxels(
    data: &ifet_sim::LabeledSeries,
    key_frames: &[(u32, TransferFunction1D)],
    samples_per_frame: usize,
) -> (Vec<TransferFunction1D>, f64) {
    let series = &data.series;
    let (glo, ghi) = series.global_range();
    let span = ghi - glo;
    let mut rng = SmallRng::seed_from_u64(0x5A3);

    let mut set = TrainingSet::new();
    let ((), assemble_s) = timed(|| {
        for (t, tf) in key_frames {
            let frame = series.frame_at_step(*t).unwrap();
            let h = Histogram::of_values(frame.as_slice(), 256, glo, ghi);
            let ch = CumulativeHistogram::from_histogram(&h);
            let tn = series.normalized_time(*t);
            for _ in 0..samples_per_frame {
                let i = rng.gen_range(0..frame.len());
                let v = frame.as_slice()[i];
                let row = vec![(v - glo) / span, ch.fraction_at_or_below(v), tn];
                set.add1(row, tf.opacity_at(v));
            }
        }
    });

    let mut net = Mlp::new(
        &[3, 16, 1],
        Activation::Sigmoid,
        Activation::Sigmoid,
        0x1A7F,
    )
    .expect("fixed ablation network shape");
    let mut trainer = Trainer::new(TrainParams {
        learning_rate: 0.35,
        momentum: 0.9,
        seed: 0x1A7F,
    });
    // Match the paper variant's total number of gradient steps.
    let epochs = (600 * 256 * key_frames.len()) / set.len().max(1);
    trainer.train(&mut net, &set, epochs.max(1));

    let tfs = series
        .iter()
        .map(|(t, frame)| {
            let h = Histogram::of_values(frame.as_slice(), 256, glo, ghi);
            let ch = CumulativeHistogram::from_histogram(&h);
            let tn = series.normalized_time(t);
            let mut scratch = ifet_nn::mlp::Scratch::for_net(&net);
            TransferFunction1D::from_fn(glo, ghi, |v| {
                net.predict1(
                    &[(v - glo) / span, ch.fraction_at_or_below(v), tn],
                    &mut scratch,
                )
            })
        })
        .collect();
    (tfs, assemble_s)
}

fn main() {
    let dims = if ifet_bench::quick() {
        Dims3::cube(32)
    } else {
        Dims3::cube(48)
    };
    let data = ifet_sim::shock_bubble(dims, 0x5A3);
    let series = &data.series;
    let (glo, ghi) = series.global_range();
    let session = VisSession::new(series.clone()).unwrap();

    let key_frames: Vec<(u32, TransferFunction1D)> = [(195u32, 0.0f32), (225, 0.5), (255, 1.0)]
        .iter()
        .map(|&(t, tn)| {
            let (lo, hi) = ring_value_band(tn);
            (t, TransferFunction1D::band(glo, ghi, lo, hi, 1.0))
        })
        .collect();

    // Paper variant: rows from TF entries.
    let mut b = IatfBuilder::new(IatfParams::default());
    for (t, tf) in &key_frames {
        b.add_key_frame(*t, tf.clone());
    }
    let (iatf, entry_train_s) = timed(|| b.train(series));
    let entry_f1: Vec<f64> = series
        .steps()
        .to_vec()
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let tf = iatf.generate(t, series.frame(i));
            session.extract_with_tf(t, &tf, 0.5).f1(data.truth_frame(i))
        })
        .collect();

    println!("# Ablation — IATF training rows: TF entries (paper) vs random voxels\n");
    header(&["source", "rows", "train+assemble (s)", "mean F1"]);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    row(&[
        "TF table entries (paper)".into(),
        format!("{}", 256 * key_frames.len()),
        format!("{entry_train_s:.2}"),
        f3(mean(&entry_f1)),
    ]);

    for &spf in &[256usize, 1024] {
        let ((tfs, _assemble_s), total_s) =
            timed(|| train_from_random_voxels(&data, &key_frames, spf));
        let f1: Vec<f64> = series
            .steps()
            .to_vec()
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let _ = t;
                session
                    .extract_with_tf(series.steps()[i], &tfs[i], 0.5)
                    .f1(data.truth_frame(i))
            })
            .collect();
        row(&[
            format!("random voxels ({spf}/frame)"),
            format!("{}", spf * key_frames.len()),
            format!("{total_s:.2}"),
            f3(mean(&f1)),
        ]);
    }
    println!(
        "\n(random sampling wastes rows on background values — the paper's Section 4.2.2 argument;"
    );
    println!(" with a small ring feature most random rows are uninteresting, hurting quality per unit work)");
}
