//! Ablation of the data-space feature vector (paper Sections 4.3 and 6):
//! shell radius drives size discrimination, and the input-vector size drives
//! classification cost ("the time needed ... highly depends on the size of
//! input vectors").

use ifet_bench::{f3, header, row, timed};
use ifet_core::prelude::*;

fn main() {
    let dims = if ifet_bench::quick() {
        Dims3::cube(32)
    } else {
        Dims3::cube(48)
    };
    let data = ifet_sim::reionization(dims, 0xAB1E);
    let t = 310;
    let fi = data.series.index_of_step(t).unwrap();
    let truth = data.truth_frame(fi);

    println!("# Ablation — shell radius and descriptor mode\n");
    header(&["shell", "radius", "inputs", "F1", "classify time (s)"]);

    let variants: Vec<(&str, ShellMode, f32)> = vec![
        ("none (value only)", ShellMode::None, 1.0),
        ("stats", ShellMode::Stats, 2.0),
        ("stats", ShellMode::Stats, 4.0),
        ("stats", ShellMode::Stats, 6.0),
        ("raw samples (26)", ShellMode::Samples { count: 26 }, 4.0),
        ("raw samples (64)", ShellMode::Samples { count: 64 }, 4.0),
    ];

    for (name, shell, radius) in variants {
        let mut session = VisSession::new(data.series.clone()).unwrap();
        let mut oracle = PaintOracle::new(0xAB1E);
        session
            .add_paints(oracle.paint_from_truth(t, truth, 250, 250))
            .unwrap();
        let spec = FeatureSpec {
            value: true,
            shell,
            shell_radius: radius,
            position: false,
            time: true,
        };
        let inputs = spec.len();
        session
            .train_classifier(spec, ClassifierParams::default())
            .expect("training failed");
        let (mask, secs) = timed(|| session.extract_data_space(t, 0.5).unwrap());
        row(&[
            name.to_string(),
            f3(radius as f64),
            inputs.to_string(),
            f3(mask.f1(truth)),
            format!("{secs:.2}"),
        ]);
    }
    println!("\n(radius must exceed the noise-blob size but stay below the large-structure size;");
    println!(" larger input vectors cost proportionally more classification time — Section 6)");
}
