//! Figure 7: removing the "large number of surrounding tiny features" from
//! the reionization data (time step 310). The 1D transfer function cannot
//! separate the small features (overlapping values), repeated blurring
//! removes them but destroys the large structures' fine detail, and the
//! learning-based method "presents the large-scale structures more cleanly".

use ifet_bench::{f3, header, row, timed};
use ifet_core::prelude::*;
use ifet_extract::baselines;
use ifet_volume::filter::repeated_blur;

fn main() {
    let dims = if ifet_bench::quick() {
        Dims3::cube(40)
    } else {
        Dims3::cube(64)
    };
    let data = ifet_sim::reionization(dims, 0xF167);
    let mut session = VisSession::new(data.series.clone()).unwrap();

    let t = 310;
    let fi = data.series.index_of_step(t).unwrap();
    let frame = data.series.frame_at_step(t).unwrap();
    let truth = data.truth_frame(fi);

    // Scripted scientist paints positives on the large structures and
    // negatives on noise/background.
    let mut oracle = PaintOracle::new(0xF167);
    let paints = oracle.paint_from_truth(t, truth, 250, 250);
    session.add_paints(paints).unwrap();
    let spec = FeatureSpec {
        shell_radius: 4.0,
        ..Default::default()
    };
    let (_, train_s) = timed(|| {
        session
            .train_classifier(spec, ClassifierParams::default())
            .expect("training failed");
    });

    // Baseline 1: best-possible 1D transfer function (threshold swept).
    let (thr_raw, _) = baselines::best_threshold_band(frame, truth, 64);
    let band = Mask3::threshold(frame, thr_raw);

    // Baseline 2: the best 2D (value, gradient-magnitude) transfer function —
    // Kindlmann-style, one derived property, still no notion of feature size.
    let (tf2d, _) = baselines::best_tf2d_band(frame, truth, 12);
    let band2d = tf2d.extract_mask(frame, 0.5);

    // Baseline 3: repeated blurring, then the best threshold *on the blurred
    // volume* (fair: each method gets its optimal 1D mapping).
    let blurred_vol = repeated_blur(frame, 1.2, 2);
    let (thr_blur, _) = baselines::best_threshold_band(&blurred_vol, truth, 64);
    let blur_mask = Mask3::threshold(&blurred_vol, thr_blur);

    // Ours.
    let (ours, classify_s) = timed(|| session.extract_data_space(t, 0.5).unwrap());

    println!(
        "# Figure 7 — noise removal at t=310 ({} voxels)\n",
        frame.len()
    );
    header(&["method", "precision", "recall", "F1", "boundary detail"]);
    for (name, mask) in [
        ("1D transfer function", &band),
        ("2D TF (value, |grad|)", &band2d),
        ("repeated blurring", &blur_mask),
        ("learning-based (ours)", &ours),
    ] {
        let s = Scores::of(mask, truth);
        row(&[
            name.to_string(),
            f3(s.precision),
            f3(s.recall),
            f3(s.f1),
            f3(baselines::detail_score(mask, truth)),
        ]);
    }

    // Noise suppression: how many bright voxels OUTSIDE the large
    // structures survive each method.
    let mut noise_band = band.clone();
    noise_band.subtract(truth);
    let mut noise_blur = blur_mask.clone();
    noise_blur.subtract(truth);
    let mut noise_ours = ours.clone();
    noise_ours.subtract(truth);
    println!();
    println!(
        "surviving noise voxels — 1D TF: {}, blur: {}, ours: {}",
        noise_band.count(),
        noise_blur.count(),
        noise_ours.count()
    );
    println!(
        "classifier training {:.2}s, full-volume classification {:.2}s",
        train_s, classify_s
    );

    let ours_f1 = ours.f1(truth);
    let best_baseline = band
        .f1(truth)
        .max(blur_mask.f1(truth))
        .max(band2d.f1(truth));
    println!(
        "\npaper claim (learning preserves detail AND suppresses noise): {}",
        if ours_f1 > best_baseline && noise_ours.count() < noise_band.count() {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
