//! Figure 3: two key frames capture the ring structure; at an intermediate
//! time step the adaptive transfer function preserves the ring while linear
//! interpolation "combines two separated features from the two key frame
//! transfer functions with reduced opacity" and loses it.

use ifet_bench::{f3, header, row};
use ifet_core::prelude::*;
use ifet_sim::shock_bubble::ring_value_band;

fn main() {
    let dims = if ifet_bench::quick() {
        Dims3::cube(32)
    } else {
        Dims3::cube(64)
    };
    let data = ifet_sim::shock_bubble(dims, 0xF163);
    let mut session = VisSession::new(data.series.clone()).unwrap();
    let (glo, ghi) = session.series().global_range();

    // Key frames at the first and last steps only (as in the figure).
    let tf_a = {
        let (lo, hi) = ring_value_band(0.0);
        TransferFunction1D::band(glo, ghi, lo, hi, 1.0)
    };
    let tf_b = {
        let (lo, hi) = ring_value_band(1.0);
        TransferFunction1D::band(glo, ghi, lo, hi, 1.0)
    };
    session.add_key_frame(195, tf_a.clone());
    session.add_key_frame(255, tf_b.clone());
    session.train_iatf(IatfParams::default());

    // Evaluate at the intermediate step t = 225.
    let t = 225;
    let fi = data.series.index_of_step(t).unwrap();
    let truth = data.truth_frame(fi);

    let lerp_tf = session.lerp_tf_at_step(t).unwrap();
    let iatf_tf = session.adaptive_tf_at_step(t).unwrap();

    println!("# Figure 3 — interpolation vs IATF at the intermediate step t={t}\n");
    header(&["method", "precision", "recall", "F1"]);
    for (name, tf) in [
        ("key frame 1 TF (static)", &tf_a),
        ("key frame 2 TF (static)", &tf_b),
        ("linear interpolation", &lerp_tf),
        ("IATF (ours)", &iatf_tf),
    ] {
        let mask = session.extract_with_tf(t, tf, 0.5);
        let s = Scores::of(&mask, truth);
        row(&[name.to_string(), f3(s.precision), f3(s.recall), f3(s.f1)]);
    }

    // The mechanism: lerp leaves two half-opacity ghost bands.
    let mid_a =
        lerp_tf.opacity_at(0.5 * (tf_a.support(0.5).unwrap().0 + tf_a.support(0.5).unwrap().1));
    println!(
        "\nlerp opacity at the OLD key-frame band center: {} (ghost band)",
        f3(mid_a as f64)
    );
    let (ilo, ihi) = iatf_tf.support(0.5).unwrap_or((f32::NAN, f32::NAN));
    println!(
        "IATF band at t={t}: [{}, {}]",
        f3(ilo as f64),
        f3(ihi as f64)
    );
}
