//! Bonus experiment: multivariate classification (paper Section 8: "that the
//! system can take multivariate data as input opens a new dimension for
//! scientific discovery").
//!
//! The combustion dataset's *reacting layer* is a joint condition — strongly
//! turbulent AND at the fuel–air interface. A classifier seeing only one
//! variable cannot isolate it; the multivariate classifier learns the
//! relationship without the scientist ever writing it down.

use ifet_bench::{f3, header, row};
use ifet_core::prelude::*;
use ifet_sim::combustion_jet::{combustion_jet_multi, CombustionJetParams};
use ifet_volume::MultiSeries;

fn train_and_score(
    ms: &MultiSeries,
    truth: &[Mask3],
    variables: &str, // "vorticity", "mixture", or "both"
    paint_step: u32,
    eval_steps: &[u32],
) -> Vec<f64> {
    let fi = ms.index_of_step(paint_step).unwrap();
    let mut oracle = PaintOracle::new(0xB0);
    let paints = oracle.paint_from_truth(paint_step, &truth[fi], 300, 300);
    let spec = FeatureSpec {
        shell_radius: 3.0,
        ..Default::default()
    };

    if variables == "both" {
        let clf = DataSpaceClassifier::train_multi(
            FeatureExtractor::new(spec),
            ms,
            &[paints],
            ClassifierParams::default(),
        )
        .expect("training failed");
        eval_steps
            .iter()
            .map(|&t| {
                let i = ms.index_of_step(t).unwrap();
                clf.extract_mask_multi(ms.frame(i), ms.normalized_time(t), 0.5)
                    .f1(&truth[i])
            })
            .collect()
    } else {
        let series = ms.scalar_series(variables).unwrap();
        let clf = DataSpaceClassifier::train(
            FeatureExtractor::new(spec),
            &series,
            &[paints],
            ClassifierParams::default(),
        )
        .expect("training failed");
        eval_steps
            .iter()
            .map(|&t| {
                let i = series.index_of_step(t).unwrap();
                clf.extract_mask(series.frame(i), series.normalized_time(t), 0.5)
                    .f1(&truth[i])
            })
            .collect()
    }
}

fn main() {
    let dims = if ifet_bench::quick() {
        Dims3::new(32, 48, 16)
    } else {
        Dims3::new(48, 72, 24)
    };
    let (ms, truth) = combustion_jet_multi(CombustionJetParams {
        dims,
        seed: 0xB0,
        ..Default::default()
    });
    let steps: Vec<u32> = ms.steps().to_vec();
    let paint_step = steps[steps.len() / 2];

    println!("# Bonus — multivariate classification of the reacting layer\n");
    println!("painted on t={paint_step} only; F1 against the joint ground truth\n");
    let step_strs: Vec<String> = steps.iter().map(|t| t.to_string()).collect();
    let mut cols: Vec<&str> = vec!["inputs"];
    cols.extend(step_strs.iter().map(|s| s.as_str()));
    header(&cols);

    let mut means = Vec::new();
    for vars in ["vorticity_rank", "mixture", "both"] {
        let f1s = train_and_score(&ms, &truth, vars, paint_step, &steps);
        let mut cells = vec![vars.to_string()];
        cells.extend(f1s.iter().map(|&v| f3(v)));
        row(&cells);
        means.push((vars, f1s.iter().sum::<f64>() / f1s.len() as f64));
    }

    println!();
    for (vars, m) in &means {
        println!("mean F1 ({vars}): {}", f3(*m));
    }
    let both = means.iter().find(|(v, _)| *v == "both").unwrap().1;
    let best_single = means
        .iter()
        .filter(|(v, _)| *v != "both")
        .map(|(_, m)| *m)
        .fold(0.0, f64::max);
    println!(
        "\nmultivariate input beats the best single variable: {}",
        if both > best_single { "YES" } else { "NO" }
    );
}
