//! Figure 10: tracking a feature whose data values decrease over time in the
//! swirling-flow data. "As the data values of the feature decreases with
//! time, it eventually falls below this fixed criterion and no longer
//! tracked. ... an adaptive transfer function tracking criterion ... can
//! track the feature across all the time steps."

use ifet_bench::{f3, header, row};
use ifet_core::prelude::*;
use ifet_sim::swirling_flow::{swirling_flow_with, SwirlingFlowParams};
use ifet_volume::CumulativeHistogram;

fn main() {
    let dims = if ifet_bench::quick() {
        Dims3::cube(24)
    } else {
        Dims3::cube(32)
    };
    let data = swirling_flow_with(SwirlingFlowParams {
        dims,
        ..Default::default()
    });
    let mut session = VisSession::new(data.series.clone()).unwrap();
    let (glo, ghi) = session.series().global_range();
    let steps: Vec<u32> = data.series.steps().to_vec();

    // Seed: the vorticity maximum of the first frame.
    let f0 = data.series.frame(0);
    let (mut best, mut seed) = (f32::NEG_INFINITY, (0usize, 0usize, 0usize));
    for ((x, y, z), &v) in f0.iter() {
        if v > best {
            best = v;
            seed = (x, y, z);
        }
    }
    let seeds: Vec<Seed4> = vec![(0, seed.0, seed.1, seed.2)];

    // Fixed criterion: the core band of the FIRST frame, held constant.
    let ch0 = CumulativeHistogram::of_volume(f0, 512);
    let fixed_lo = ch0.quantile(0.98);
    let fixed = session
        .track_fixed(&seeds, fixed_lo, ghi + 1.0)
        .expect("tracking failed");

    // Adaptive criterion: the user sets key-frame TFs on the first and last
    // frames capturing each frame's own top-2% band; the IATF interpolates.
    for &t in [steps[0], steps[steps.len() / 2], steps[steps.len() - 1]].iter() {
        let frame = data.series.frame_at_step(t).unwrap();
        let ch = CumulativeHistogram::of_volume(frame, 512);
        let lo = ch.quantile(0.98);
        session.add_key_frame(t, TransferFunction1D::band(glo, ghi, lo, ghi, 1.0));
    }
    session.train_iatf(IatfParams::default());
    let adaptive = session
        .track_adaptive(&seeds, 0.5)
        .expect("IATF trained, tracking must run")
        .expect("tracking failed");

    println!("# Figure 10 — fixed vs adaptive tracking criterion (decaying swirl)\n");
    header(&[
        "t",
        "frame max vorticity",
        "fixed-criterion voxels",
        "adaptive voxels",
    ]);
    for (i, &t) in steps.iter().enumerate() {
        row(&[
            t.to_string(),
            f3(data.series.frame(i).max_value().unwrap() as f64),
            fixed.report.voxels_per_frame[i].to_string(),
            adaptive.report.voxels_per_frame[i].to_string(),
        ]);
    }

    let fixed_lost = *fixed.report.voxels_per_frame.last().unwrap() == 0;
    let adaptive_kept = adaptive.report.voxels_per_frame.iter().all(|&c| c > 0);
    println!(
        "\nfixed criterion loses the feature: {fixed_lost}; adaptive keeps it everywhere: {adaptive_kept}"
    );
    println!(
        "paper claim: {}",
        if fixed_lost && adaptive_kept {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
