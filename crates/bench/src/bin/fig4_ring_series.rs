//! Figure 4: three key-frame transfer functions (t = 195, 225, 255), each
//! applied statically to all time steps, versus the IATF. Each static TF
//! only captures the ring near its own key frame; the IATF preserves the
//! ring across the whole sequence.

use ifet_bench::{f3, header, row};
use ifet_core::prelude::*;
use ifet_sim::shock_bubble::ring_value_band;

fn main() {
    let dims = if ifet_bench::quick() {
        Dims3::cube(32)
    } else {
        Dims3::cube(64)
    };
    let data = ifet_sim::shock_bubble(dims, 0xF164);
    let mut session = VisSession::new(data.series.clone()).unwrap();
    let (glo, ghi) = session.series().global_range();
    let steps: Vec<u32> = data.series.steps().to_vec();

    let key_steps = [195u32, 225, 255];
    let mut key_tfs = Vec::new();
    for &kt in &key_steps {
        let tn = (kt - 195) as f32 / 60.0;
        let (lo, hi) = ring_value_band(tn);
        let tf = TransferFunction1D::band(glo, ghi, lo, hi, 1.0);
        session.add_key_frame(kt, tf.clone());
        key_tfs.push((kt, tf));
    }
    session.train_iatf(IatfParams::default());

    println!("# Figure 4 — ring F1 per time step: static key-frame TFs vs IATF\n");
    let mut cols: Vec<&str> = vec!["method"];
    let step_strs: Vec<String> = steps.iter().map(|t| t.to_string()).collect();
    cols.extend(step_strs.iter().map(|s| s.as_str()));
    header(&cols);

    for (kt, tf) in &key_tfs {
        let mut cells = vec![format!("static TF(t={kt})")];
        for (i, &t) in steps.iter().enumerate() {
            let mask = session.extract_with_tf(t, tf, 0.5);
            cells.push(f3(Scores::of(&mask, data.truth_frame(i)).f1));
        }
        row(&cells);
    }

    let mut cells = vec!["lerp of key frames".to_string()];
    for (i, &t) in steps.iter().enumerate() {
        let tf = session.lerp_tf_at_step(t).unwrap();
        let mask = session.extract_with_tf(t, &tf, 0.5);
        cells.push(f3(Scores::of(&mask, data.truth_frame(i)).f1));
    }
    row(&cells);

    let mut cells = vec!["IATF (ours)".to_string()];
    let mut iatf_f1 = Vec::new();
    for (i, &t) in steps.iter().enumerate() {
        let tf = session.adaptive_tf_at_step(t).unwrap();
        let mask = session.extract_with_tf(t, &tf, 0.5);
        let f1 = Scores::of(&mask, data.truth_frame(i)).f1;
        iatf_f1.push(f1);
        cells.push(f3(f1));
    }
    row(&cells);

    let min_iatf = iatf_f1.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "\npaper claim (ring completely preserved over the period): {}",
        if min_iatf > 0.6 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
