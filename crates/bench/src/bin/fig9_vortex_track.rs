//! Figure 9: tracking the turbulent vortex from t = 50 to t = 74. "The
//! tracked vortex moves and changes its shape through time and splits near
//! the end"; the tracked feature renders in red at ~2 fps on the paper's GPU.

use ifet_bench::{f3, header, row, timed};
use ifet_core::prelude::*;
use ifet_track::attributes::FeatureAttributes;
use ifet_track::components::{ComponentLabels, Connectivity};
use ifet_track::EventKind;

fn main() {
    let dims = if ifet_bench::quick() {
        Dims3::cube(32)
    } else {
        Dims3::cube(48)
    };
    let data = ifet_sim::turbulent_vortex(dims, 0xF169);
    let session = VisSession::new(data.series.clone()).unwrap();

    // Seed at the ground-truth centroid of the first frame.
    let truth0 = data.truth_frame(0);
    let (mut cx, mut cy, mut cz, mut n) = (0usize, 0usize, 0usize, 0usize);
    for (x, y, z) in truth0.set_coords() {
        cx += x;
        cy += y;
        cz += z;
        n += 1;
    }
    let seeds: Vec<Seed4> = vec![(0, cx / n, cy / n, cz / n)];
    let result = session
        .track_fixed(&seeds, 0.5, 10.0)
        .expect("tracking failed");

    println!("# Figure 9 — vortex track: motion, deformation, split\n");
    header(&[
        "t",
        "voxels",
        "components",
        "centroid x",
        "centroid y",
        "bbox extent",
    ]);
    for (i, &t) in data.series.steps().to_vec().iter().enumerate() {
        let labels = ComponentLabels::label(&result.masks[i], Connectivity::TwentySix);
        let attrs = FeatureAttributes::measure_all(&labels, data.series.frame(i));
        let (cx, cy, ext) = attrs
            .first()
            .map(|a| {
                (
                    f3(a.centroid[0]),
                    f3(a.centroid[1]),
                    format!("{:?}", a.bbox_extent()),
                )
            })
            .unwrap_or(("-".into(), "-".into(), "-".into()));
        row(&[
            t.to_string(),
            result.report.voxels_per_frame[i].to_string(),
            result.report.components_per_frame[i].to_string(),
            cx,
            cy,
            ext,
        ]);
    }

    let split = result.report.events_of(EventKind::Split).next();
    match split {
        Some(e) => println!(
            "\nSPLIT detected after t={} — paper claim REPRODUCED",
            data.series.steps()[e.frame]
        ),
        None => println!("\nno split detected — paper claim NOT reproduced"),
    }

    // Overlay rendering throughput (the paper: ~2 fps at 512x512 on a 2005 GPU).
    let (glo, ghi) = session.series().global_range();
    let base_tf = TransferFunction1D::band(glo, ghi, 0.3, ghi, 0.08);
    let adaptive_tf = TransferFunction1D::band(glo, ghi, 0.5, ghi, 0.9);
    let last = *data.series.steps().last().unwrap();
    let (res, (w, h)) = if ifet_bench::quick() {
        (128usize, (128usize, 128usize))
    } else {
        (512, (512, 512))
    };
    let _ = res;
    let (_, secs) = timed(|| {
        session.render_tracked(
            last,
            result.masks.last().unwrap(),
            &base_tf,
            &adaptive_tf,
            w,
            h,
        )
    });
    println!(
        "tracking-overlay render {}x{}: {:.2}s/frame = {:.2} fps (paper: ~4 fps on a GeForce 6800; CPU ray caster expected slower)",
        w, h, secs, 1.0 / secs
    );
}
