//! Ablation of the IATF's input vector (paper Section 4.2.1): the cumulative
//! histogram input is what lets the transfer function adapt to global value
//! drift. With it zeroed, the network sees only (value, time) and must
//! interpolate band positions blindly.

use ifet_bench::{f3, header, row};
use ifet_core::prelude::*;
use ifet_sim::shock_bubble::ShockBubbleParams;
use ifet_tf::IatfBuilder;

fn run_variant(
    data: &ifet_sim::LabeledSeries,
    params: &ShockBubbleParams,
    use_cumhist: bool,
) -> Vec<f64> {
    let series = &data.series;
    let (glo, ghi) = series.global_range();
    let mut b = IatfBuilder::new(IatfParams {
        use_cumhist,
        ..Default::default()
    });
    for (t, tn) in [(195u32, 0.0f32), (225, 0.5), (255, 1.0)] {
        let (lo, hi) = params.ring_band(tn);
        b.add_key_frame(t, TransferFunction1D::band(glo, ghi, lo, hi, 1.0));
    }
    let iatf = b.train(series);

    let session = VisSession::new(series.clone()).unwrap();
    series
        .steps()
        .to_vec()
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let tf = iatf.generate(t, series.frame(i));
            let mask = session.extract_with_tf(t, &tf, 0.5);
            Scores::of(&mask, data.truth_frame(i)).f1
        })
        .collect()
}

fn main() {
    let dims = if ifet_bench::quick() {
        Dims3::cube(32)
    } else {
        Dims3::cube(48)
    };
    // Stride 5 gives unseen intermediate steps between the three key frames;
    // drift_wobble makes the global value drift irregular in time, so a
    // network without the cumulative-histogram input cannot interpolate the
    // band position from (value, time) alone.
    let params = ShockBubbleParams {
        dims,
        stride: 5,
        drift_wobble: 0.25,
        ..Default::default()
    };
    let data = ifet_sim::shock_bubble::shock_bubble_with(params);

    let full = run_variant(&data, &params, true);
    let ablated = run_variant(&data, &params, false);

    println!("# Ablation — IATF input vector: with vs without cumulative histogram\n");
    let step_strs: Vec<String> = data.series.steps().iter().map(|t| t.to_string()).collect();
    let mut cols: Vec<&str> = vec!["variant"];
    cols.extend(step_strs.iter().map(|s| s.as_str()));
    header(&cols);
    let mut cells = vec!["<value, cumhist, t> (paper)".to_string()];
    cells.extend(full.iter().map(|&v| f3(v)));
    row(&cells);
    let mut cells = vec!["<value, t> (ablated)".to_string()];
    cells.extend(ablated.iter().map(|&v| f3(v)));
    row(&cells);

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nmean F1: full {} vs ablated {} — cumulative histogram {}",
        f3(mean(&full)),
        f3(mean(&ablated)),
        if mean(&full) > mean(&ablated) {
            "HELPS"
        } else {
            "does not help here"
        }
    );
}
