//! Figure 5: the DNS turbulent reacting plane jet. Vorticity magnitude
//! "cannot be captured with a single transfer function for all the time
//! steps"; each key-frame TF (t = 8, 64, 128) fails away from its key frame,
//! the IATF extracts the vortex layer over the whole sequence.

use ifet_bench::{f3, header, row};
use ifet_core::prelude::*;
use ifet_sim::combustion_jet::{combustion_jet_with, top_fraction_mask, CombustionJetParams};

fn main() {
    let dims = if ifet_bench::quick() {
        Dims3::new(32, 48, 16)
    } else {
        Dims3::new(48, 72, 24)
    };
    let data = combustion_jet_with(CombustionJetParams {
        dims,
        seed: 0xF165,
        ..Default::default()
    });
    let mut session = VisSession::new(data.series.clone()).unwrap();
    let (glo, ghi) = session.series().global_range();
    let steps: Vec<u32> = data.series.steps().to_vec();

    let key_steps = [steps[0], steps[steps.len() / 2], steps[steps.len() - 1]];
    let mut key_tfs = Vec::new();
    for &t in &key_steps {
        let frame = data.series.frame_at_step(t).unwrap();
        let mask = top_fraction_mask(frame, 0.05);
        let lo = frame
            .as_slice()
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask.get_linear(i))
            .map(|(_, &v)| v)
            .fold(f32::INFINITY, f32::min);
        let tf = TransferFunction1D::band(glo, ghi, lo, ghi, 1.0);
        session.add_key_frame(t, tf.clone());
        key_tfs.push((t, tf));
    }
    session.train_iatf(IatfParams::default());

    println!("# Figure 5 — combustion vortex-layer F1: static key TFs vs IATF\n");
    let step_strs: Vec<String> = steps.iter().map(|t| t.to_string()).collect();
    let mut cols: Vec<&str> = vec!["method"];
    cols.extend(step_strs.iter().map(|s| s.as_str()));
    header(&cols);

    let mut static_off_key = Vec::new();
    for (kt, tf) in &key_tfs {
        let mut cells = vec![format!("static TF(t={kt})")];
        for (i, &t) in steps.iter().enumerate() {
            let mask = session.extract_with_tf(t, tf, 0.5);
            let f1 = Scores::of(&mask, data.truth_frame(i)).f1;
            if t != *kt {
                static_off_key.push(f1);
            }
            cells.push(f3(f1));
        }
        row(&cells);
    }
    let mut iatf_all = Vec::new();
    let mut cells = vec!["IATF (ours)".to_string()];
    for (i, &t) in steps.iter().enumerate() {
        let tf = session.adaptive_tf_at_step(t).unwrap();
        let mask = session.extract_with_tf(t, &tf, 0.5);
        let f1 = Scores::of(&mask, data.truth_frame(i)).f1;
        iatf_all.push(f1);
        cells.push(f3(f1));
    }
    row(&cells);

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nmean static F1 away from its key frame: {}",
        f3(mean(&static_off_key))
    );
    println!(
        "mean IATF F1 over all steps:            {}",
        f3(mean(&iatf_all))
    );
    println!(
        "paper claim (vortex well extracted over whole sequence by IATF only): {}",
        if mean(&iatf_all) > mean(&static_off_key) + 0.2 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
