//! Bonus experiment (beyond the paper's figures): tracking *merge* events in
//! quasi-geostrophic turbulence — the sixth dataset the paper acknowledges
//! (NCAR) but never shows. The inverse cascade merges same-sign vortices, so
//! the event vocabulary's `Merge` case (the mirror of Figure 9's split) gets
//! exercised on a real dynamical system, and the persistent-track layer
//! reports each vortex's lifetime and fate.

use ifet_bench::{f3, header, row};
use ifet_core::prelude::*;
use ifet_track::tracks::extract_tracks;
use ifet_track::EventKind;

fn main() {
    let dims = if ifet_bench::quick() {
        Dims3::cube(32)
    } else {
        Dims3::cube(48)
    };
    let data = ifet_sim::qg_turbulence(dims, 0xB095);

    // Track everything above the vortex-core level, seeded from every core
    // voxel of the first frame (the "track all features" mode).
    let criterion = MaskCriterion::new(data.truth.clone()).unwrap();
    let seeds: Vec<Seed4> = data
        .truth_frame(0)
        .set_coords()
        .map(|(x, y, z)| (0usize, x, y, z))
        .collect();
    let masks = grow_4d(&data.series, &criterion, &seeds).expect("tracking failed");
    let report = track_events(&masks);

    println!("# Bonus — QG turbulence: the inverse cascade as tracked merges\n");
    header(&["frame", "components", "voxels"]);
    for (i, (&c, &v)) in report
        .components_per_frame
        .iter()
        .zip(&report.voxels_per_frame)
        .enumerate()
    {
        row(&[i.to_string(), c.to_string(), v.to_string()]);
    }

    let merges = report.events_of(EventKind::Merge).count();
    let splits = report.events_of(EventKind::Split).count();
    println!("\nmerge events: {merges}, split events: {splits}");

    // Persistent tracks: lifetimes and fates.
    let frames: Vec<&ScalarVolume> = (0..data.series.len())
        .map(|i| data.series.frame(i))
        .collect();
    let tracks = extract_tracks(&masks, &frames);
    println!("\ntracks: {}", tracks.tracks.len());
    header(&["track", "start", "lifetime", "path length", "ending"]);
    for t in &tracks.tracks {
        row(&[
            t.id.to_string(),
            t.start_frame.to_string(),
            t.lifetime().to_string(),
            f3(t.path_length()),
            format!("{:?}", t.ending),
        ]);
    }

    let first = report.components_per_frame[0];
    let last = *report.components_per_frame.last().unwrap();
    println!(
        "\ninverse cascade observed (components {first} -> {last}, ≥1 merge): {}",
        if last < first && merges > 0 {
            "YES"
        } else {
            "NO"
        }
    );
}
