//! Figure 8: train the data-space classifier on time steps 130 and 310, then
//! apply it to the *unseen* step 250 — "the small features are invisible and
//! large features are retained over time".

use ifet_bench::{f3, header, row};
use ifet_core::prelude::*;
use ifet_extract::baselines;

fn main() {
    let dims = if ifet_bench::quick() {
        Dims3::cube(40)
    } else {
        Dims3::cube(64)
    };
    let data = ifet_sim::reionization(dims, 0xF168);
    let mut session = VisSession::new(data.series.clone()).unwrap();

    // Paint only on the first and last steps (the paper trains on 130 & 310).
    let train_steps = [130u32, 310];
    let mut oracle = PaintOracle::new(0xF168);
    for &t in &train_steps {
        let fi = data.series.index_of_step(t).unwrap();
        let paints = oracle.paint_from_truth(t, data.truth_frame(fi), 200, 200);
        session.add_paints(paints).unwrap();
    }
    session
        .train_classifier(
            FeatureSpec {
                shell_radius: 4.0,
                ..Default::default()
            },
            ClassifierParams::default(),
        )
        .unwrap();

    println!("# Figure 8 — temporal generalization of the trained network\n");
    header(&[
        "t",
        "trained on?",
        "1D TF F1",
        "ours F1",
        "noise voxels (TF)",
        "noise voxels (ours)",
    ]);
    for (i, &t) in data.series.steps().to_vec().iter().enumerate() {
        let frame = data.series.frame(i);
        let truth = data.truth_frame(i);
        let (thr, _) = baselines::best_threshold_band(frame, truth, 64);
        let band = Mask3::threshold(frame, thr);
        let ours = session.extract_data_space(t, 0.5).unwrap();
        let mut nb = band.clone();
        nb.subtract(truth);
        let mut no = ours.clone();
        no.subtract(truth);
        row(&[
            t.to_string(),
            if train_steps.contains(&t) {
                "yes"
            } else {
                "NO (generalized)"
            }
            .to_string(),
            f3(band.f1(truth)),
            f3(ours.f1(truth)),
            nb.count().to_string(),
            no.count().to_string(),
        ]);
    }
    println!("\n(the 'NO' rows are the paper's generalization claim: the network was never shown those steps)");
}
