//! Ablation — which frames should the user paint?
//!
//! The IATF only sees the key frames; their placement matters. We compare
//! histogram-driven suggestion (farthest-point selection in distribution
//! space, the Jankun-Kelly & Ma-style data-driven choice) against evenly
//! spaced and endpoint-only selections, on the irregular-drift argon bubble
//! where placement is non-trivial.

use ifet_bench::{f3, header, row};
use ifet_core::prelude::*;
use ifet_sim::shock_bubble::{shock_bubble_with, ShockBubbleParams};
use ifet_tf::suggest_key_frames;

/// Train on `key_steps` and return mean F1 over all frames.
fn evaluate(data: &ifet_sim::LabeledSeries, params: &ShockBubbleParams, key_steps: &[u32]) -> f64 {
    let series = &data.series;
    let (glo, ghi) = series.global_range();
    let span = (params.t_end - params.t_start) as f32;
    let mut session = VisSession::new(series.clone()).unwrap();
    for &t in key_steps {
        let tn = (t - params.t_start) as f32 / span;
        let (lo, hi) = params.ring_band(tn);
        session.add_key_frame(t, TransferFunction1D::band(glo, ghi, lo, hi, 1.0));
    }
    session.train_iatf(IatfParams::default());
    let f1s: Vec<f64> = series
        .steps()
        .to_vec()
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let tf = session.adaptive_tf_at_step(t).unwrap();
            session.extract_with_tf(t, &tf, 0.5).f1(data.truth_frame(i))
        })
        .collect();
    f1s.iter().sum::<f64>() / f1s.len() as f64
}

fn main() {
    let dims = if ifet_bench::quick() {
        Dims3::cube(32)
    } else {
        Dims3::cube(48)
    };
    let params = ShockBubbleParams {
        dims,
        stride: 5,
        drift_wobble: 0.25, // irregular drift: key-frame placement matters
        ..Default::default()
    };
    let data = shock_bubble_with(params);
    let steps = data.series.steps().to_vec();
    let k = 4;

    let endpoints = vec![steps[0], *steps.last().unwrap()];
    let even: Vec<u32> = (0..k)
        .map(|i| steps[i * (steps.len() - 1) / (k - 1)])
        .collect();
    let suggested = suggest_key_frames(&data.series, 256, k, 0.0);

    println!("# Ablation — key-frame placement for the IATF (irregular drift)\n");
    header(&["selection", "key frames", "mean F1 over all steps"]);
    for (name, keys) in [
        ("endpoints only", &endpoints),
        ("evenly spaced", &even),
        ("histogram-suggested", &suggested),
    ] {
        let f1 = evaluate(&data, &params, keys);
        row(&[name.to_string(), format!("{keys:?}"), f3(f1)]);
    }
    println!("\nfinding: data-driven suggestion clearly beats endpoints-only, but plain");
    println!("even spacing is competitive or better at equal k — distribution-space");
    println!("coverage (k-center) over-samples the steepest transition and can leave");
    println!("long temporal gaps elsewhere. The IATF needs anchors spread in TIME as");
    println!("well as in distribution; suggestion is best used to *augment* an even");
    println!("baseline, not replace it.");
}
