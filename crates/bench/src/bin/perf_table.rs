//! Section 7 performance numbers, reproduced on the CPU ray caster.
//!
//! Paper (GeForce 6800 GT, Pentium 4 2.8 GHz):
//! - 6 fps rendering a 256³ volume to 512×512 with the adaptive transfer
//!   function recalculated every frame and shading on,
//! - ~4 fps with the tracking overlay (multi-pass),
//! - IATF table generation per frame: sub-second,
//! - 10 s to classify a 256³ volume in data space.
//!
//! Our substrate is a multithreaded software renderer, so absolute fps are
//! lower; the *shape* to check: IATF generation is a negligible fraction of
//! a frame, the overlay costs a moderate constant factor, and data-space
//! classification is orders slower than TF rendering.

use ifet_bench::{header, row, timed};
use ifet_core::prelude::*;
use ifet_sim::shock_bubble::{ring_value_band, shock_bubble_with, ShockBubbleParams};

fn main() {
    let (n, wh) = if ifet_bench::quick() {
        (64usize, 128usize)
    } else {
        (256, 512)
    };
    println!("# Section 7 performance (volume {n}^3, window {wh}x{wh})\n");

    let data = shock_bubble_with(ShockBubbleParams {
        dims: Dims3::cube(n),
        ..Default::default()
    });
    let mut session = VisSession::new(data.series.clone()).unwrap();
    let (glo, ghi) = session.series().global_range();
    for (t, tn) in [(195u32, 0.0f32), (255, 1.0)] {
        let (lo, hi) = ring_value_band(tn);
        session.add_key_frame(t, TransferFunction1D::band(glo, ghi, lo, hi, 1.0));
    }
    session.train_iatf(IatfParams::default());

    header(&["operation", "time", "throughput", "paper (GPU, 2005)"]);

    // 1. IATF table generation for one frame (histogram + 256 net queries).
    let t_mid = 225;
    let frame = data.series.frame_at_step(t_mid).unwrap().clone();
    let iatf = session.iatf().unwrap().clone();
    let (tf, gen_s) = timed(|| iatf.generate(t_mid, &frame));
    row(&[
        "IATF table generation (per frame)".into(),
        format!("{:.4} s", gen_s),
        format!("{:.0} tables/s", 1.0 / gen_s),
        "sub-second".into(),
    ]);

    // 2. DVR with per-frame IATF recomputation + shading.
    let (img, render_s) = timed(|| {
        let tf = iatf.generate(t_mid, &frame); // recalculated every frame
        session.render_with_tf(t_mid, &tf, wh, wh)
    });
    row(&[
        "DVR + per-frame IATF, shaded".into(),
        format!("{:.3} s/frame", render_s),
        format!("{:.2} fps", 1.0 / render_s),
        "6 fps".into(),
    ]);

    // 3. Tracking-overlay rendering (multi-pass equivalent).
    let tracked = session.extract_with_tf(t_mid, &tf, 0.5);
    let (_, overlay_s) = timed(|| session.render_tracked(t_mid, &tracked, &tf, &tf, wh, wh));
    row(&[
        "DVR + tracking overlay".into(),
        format!("{:.3} s/frame", overlay_s),
        format!("{:.2} fps", 1.0 / overlay_s),
        "4 fps".into(),
    ]);

    // 4. Data-space classification of the full volume.
    let mut oracle = PaintOracle::new(7);
    let fi = data.series.index_of_step(t_mid).unwrap();
    let paints = oracle.paint_from_truth(t_mid, data.truth_frame(fi), 150, 150);
    let mut s2 = VisSession::new(data.series.clone()).unwrap();
    s2.add_paints(paints).unwrap();
    s2.train_classifier(FeatureSpec::default(), ClassifierParams::default())
        .expect("training failed");
    let (_, classify_s) = timed(|| s2.extract_data_space(t_mid, 0.5).unwrap());
    row(&[
        format!("data-space classification ({n}^3)"),
        format!("{:.2} s", classify_s),
        format!("{:.1} Mvoxel/s", (n * n * n) as f64 / classify_s / 1e6),
        "10 s (256^3)".into(),
    ]);

    println!("\nshape checks:");
    println!(
        "- IATF generation is {:.1}% of a rendered frame (paper: negligible, recomputed per frame): {}",
        100.0 * gen_s / render_s,
        if gen_s < 0.3 * render_s { "OK" } else { "UNEXPECTED" }
    );
    println!(
        "- overlay costs {:.2}x the plain render (paper: 6 fps -> 4 fps = 1.5x): {}",
        overlay_s / render_s,
        if (0.8..3.0).contains(&(overlay_s / render_s)) {
            "OK"
        } else {
            "UNEXPECTED"
        }
    );
    let _ = img;
}
