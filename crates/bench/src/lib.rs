//! Shared helpers for the figure-reproduction binaries and benches.
//!
//! Every table and figure of the paper's evaluation has a `figN`/`perf`/
//! `ablate` binary in `src/bin/` that regenerates its data series; run them
//! with `cargo run --release -p ifet-bench --bin <name>`. Timing rows come
//! from the Criterion benches in `benches/`.

use std::time::Instant;

/// Time a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Print a Markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Print a Markdown-style table header with separator.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Format an f64 with 3 decimals (negative zero normalized).
pub fn f3(v: f64) -> String {
    let v = if v == 0.0 { 0.0 } else { v };
    format!("{v:.3}")
}

/// The standard "smaller grid when quick" switch: `IFET_QUICK=1` shrinks
/// workloads so figure bins finish in seconds (CI mode). Default: full size.
pub fn quick() -> bool {
    std::env::var("IFET_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_result() {
        let (v, s) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(s >= 0.0);
    }

    #[test]
    fn f3_formats() {
        assert_eq!(f3(0.12349), "0.123");
    }
}
