//! Quasi-geostrophic turbulence — the sixth dataset the paper acknowledges
//! (the NCAR "quasi-geostrophic turbulence flow data set").
//!
//! QG turbulence's signature phenomenology is the inverse cascade: many
//! small same-sign vortices progressively **merge** into fewer, larger
//! coherent vortices. We reproduce it with an actual dynamical system —
//! regularized 2D point-vortex dynamics (RK2 integration) with a same-sign
//! merge rule — extruded into a weakly z-dependent 3D field, so tracking
//! experiments get real *merge* events (the counterpart of the
//! turbulent-vortex dataset's split).

use crate::LabeledSeries;
use ifet_volume::{Dims3, Mask3, ScalarVolume, TimeSeries};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One coherent vortex.
#[derive(Debug, Clone, Copy)]
struct Vortex {
    /// Position in normalized [0,1]² coordinates.
    pos: [f32; 2],
    /// Circulation (signed strength).
    circulation: f32,
    /// Core radius (normalized units).
    radius: f32,
}

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct QgTurbulenceParams {
    pub dims: Dims3,
    /// Number of recorded frames.
    pub frames: usize,
    /// Solver steps between recorded frames.
    pub substeps: usize,
    /// Initial vortex count.
    pub num_vortices: usize,
    /// Integration time step.
    pub dt: f32,
    /// Same-sign vortices closer than this (normalized) merge.
    pub merge_dist: f32,
    pub seed: u64,
}

impl Default for QgTurbulenceParams {
    fn default() -> Self {
        Self {
            dims: Dims3::cube(48),
            frames: 12,
            substeps: 5,
            num_vortices: 14,
            dt: 0.01,
            merge_dist: 0.11,
            seed: 0x96,
        }
    }
}

/// Convenience with default dynamics.
pub fn qg_turbulence(dims: Dims3, seed: u64) -> LabeledSeries {
    qg_turbulence_with(QgTurbulenceParams {
        dims,
        seed,
        ..Default::default()
    })
}

/// Induced velocity at `p` from all vortices (regularized Biot–Savart).
fn induced_velocity(vortices: &[Vortex], p: [f32; 2], skip: Option<usize>) -> [f32; 2] {
    let mut u = [0.0f32; 2];
    for (j, v) in vortices.iter().enumerate() {
        if Some(j) == skip {
            continue;
        }
        let dx = p[0] - v.pos[0];
        let dy = p[1] - v.pos[1];
        let r2 = dx * dx + dy * dy + v.radius * v.radius * 0.25; // core regularization
        let k = v.circulation / (2.0 * std::f32::consts::PI * r2);
        u[0] += -k * dy;
        u[1] += k * dx;
    }
    u
}

/// One RK2 step of the point-vortex system, then the merge rule.
fn step(vortices: &mut Vec<Vortex>, dt: f32, merge_dist: f32) {
    // RK2 (midpoint).
    let k1: Vec<[f32; 2]> = (0..vortices.len())
        .map(|i| induced_velocity(vortices, vortices[i].pos, Some(i)))
        .collect();
    let mid: Vec<Vortex> = vortices
        .iter()
        .zip(&k1)
        .map(|(v, k)| Vortex {
            pos: [v.pos[0] + 0.5 * dt * k[0], v.pos[1] + 0.5 * dt * k[1]],
            ..*v
        })
        .collect();
    let k2: Vec<[f32; 2]> = (0..mid.len())
        .map(|i| induced_velocity(&mid, mid[i].pos, Some(i)))
        .collect();
    for (v, k) in vortices.iter_mut().zip(&k2) {
        v.pos[0] = (v.pos[0] + dt * k[0]).clamp(0.05, 0.95);
        v.pos[1] = (v.pos[1] + dt * k[1]).clamp(0.05, 0.95);
    }

    // Merge same-sign pairs that drew close (inverse cascade).
    let mut i = 0;
    while i < vortices.len() {
        let mut j = i + 1;
        let mut merged = false;
        while j < vortices.len() {
            let a = vortices[i];
            let b = vortices[j];
            let d = ((a.pos[0] - b.pos[0]).powi(2) + (a.pos[1] - b.pos[1]).powi(2)).sqrt();
            if d < merge_dist && a.circulation.signum() == b.circulation.signum() {
                let total = a.circulation + b.circulation;
                let wa = a.circulation.abs() / total.abs().max(1e-9);
                vortices[i] = Vortex {
                    pos: [
                        a.pos[0] * wa + b.pos[0] * (1.0 - wa),
                        a.pos[1] * wa + b.pos[1] * (1.0 - wa),
                    ],
                    circulation: total,
                    // Area adds under merger.
                    radius: (a.radius * a.radius + b.radius * b.radius).sqrt(),
                };
                vortices.remove(j);
                merged = true;
            } else {
                j += 1;
            }
        }
        if !merged {
            i += 1;
        }
    }
}

/// Rasterize the vortex population into a 3D scalar field (vorticity
/// magnitude) and the core ground-truth mask. Layers tilt slightly with z
/// so the field is genuinely 3D.
fn rasterize(dims: Dims3, vortices: &[Vortex]) -> (ScalarVolume, Mask3) {
    let vol = ScalarVolume::from_fn(dims, |x, y, z| {
        let zf = z as f32 / dims.nz as f32 - 0.5;
        let px = x as f32 / dims.nx as f32 + 0.03 * zf;
        let py = y as f32 / dims.ny as f32 - 0.02 * zf;
        let mut acc = 0.0f32;
        for v in vortices {
            let dx = px - v.pos[0];
            let dy = py - v.pos[1];
            let s2 = v.radius * v.radius;
            acc += v.circulation.abs() * (-(dx * dx + dy * dy) / (2.0 * s2)).exp();
        }
        acc
    });
    let mask = Mask3::from_fn(dims, |x, y, z| {
        let zf = z as f32 / dims.nz as f32 - 0.5;
        let px = x as f32 / dims.nx as f32 + 0.03 * zf;
        let py = y as f32 / dims.ny as f32 - 0.02 * zf;
        vortices.iter().any(|v| {
            let dx = px - v.pos[0];
            let dy = py - v.pos[1];
            (dx * dx + dy * dy).sqrt() <= v.radius
        })
    });
    (vol, mask)
}

/// Full-control generator.
pub fn qg_turbulence_with(p: QgTurbulenceParams) -> LabeledSeries {
    assert!(p.frames >= 2 && p.num_vortices >= 2);
    let mut rng = SmallRng::seed_from_u64(p.seed);
    let mut vortices: Vec<Vortex> = (0..p.num_vortices)
        .map(|k| Vortex {
            pos: [rng.gen_range(0.15..0.85), rng.gen_range(0.15..0.85)],
            // Mostly same-sign (QG inverse cascade merges same-sign cores).
            circulation: if k % 5 == 4 { -1.0 } else { 1.0 } * rng.gen_range(0.5..1.2),
            radius: rng.gen_range(0.035..0.055),
        })
        .collect();

    let mut frames = Vec::with_capacity(p.frames);
    let mut truth = Vec::with_capacity(p.frames);
    for fi in 0..p.frames {
        let (vol, mask) = rasterize(p.dims, &vortices);
        frames.push((fi as u32 * 10, vol));
        truth.push(mask);
        if fi + 1 < p.frames {
            for _ in 0..p.substeps {
                step(&mut vortices, p.dt, p.merge_dist);
            }
        }
    }

    let out = LabeledSeries {
        name: "qg_turbulence".into(),
        series: TimeSeries::from_frames(frames),
        truth,
    };
    out.validate();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::count_components;

    fn small() -> LabeledSeries {
        qg_turbulence_with(QgTurbulenceParams {
            dims: Dims3::cube(32),
            ..Default::default()
        })
    }

    #[test]
    fn generates_requested_frames() {
        let s = small();
        assert_eq!(s.series.len(), 12);
        s.validate();
    }

    #[test]
    fn inverse_cascade_reduces_component_count() {
        // The QG signature: coherent cores merge, so the ground-truth
        // component count must drop over the run.
        let s = small();
        let first = count_components(&s.truth[0]);
        let last = count_components(s.truth.last().unwrap());
        assert!(
            last < first,
            "vortices should merge: {first} components -> {last}"
        );
        assert!(last >= 1);
    }

    #[test]
    fn field_is_positive_and_peaked_at_cores() {
        let s = small();
        let f = s.series.frame(0);
        assert!(f.min_value().unwrap() >= 0.0);
        // Mean inside cores far exceeds mean outside.
        let m = &s.truth[0];
        let (mut inside, mut n_in, mut outside, mut n_out) = (0.0f64, 0.0, 0.0f64, 0.0);
        for ((x, y, z), &v) in f.iter() {
            if m.get(x, y, z) {
                inside += v as f64;
                n_in += 1.0;
            } else {
                outside += v as f64;
                n_out += 1.0;
            }
        }
        assert!(inside / n_in > 3.0 * (outside / n_out));
    }

    #[test]
    fn consecutive_truths_overlap() {
        let s = small();
        for i in 1..s.truth.len() {
            assert!(
                s.truth[i].intersection_count(&s.truth[i - 1]) > 0,
                "frame {i} lost temporal overlap"
            );
        }
    }

    #[test]
    fn deterministic() {
        let a = qg_turbulence(Dims3::cube(16), 4);
        let b = qg_turbulence(Dims3::cube(16), 4);
        assert_eq!(a.series.frame(5), b.series.frame(5));
    }

    #[test]
    fn vortices_stay_in_bounds() {
        let s = small();
        // All truth voxels should be away from the absolute corner (positions
        // are clamped into [0.05, 0.95]).
        for m in &s.truth {
            assert!(m.count() > 0);
        }
    }
}
