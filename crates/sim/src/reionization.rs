//! The cosmological-reionization analog — Figures 7 and 8.
//!
//! The paper's astrophysics case: "Scientists want to observe the larger
//! structures but were distracted by the large number of surrounding tiny
//! features ... many of the small features have data values similar to the
//! large structure", so a 1D transfer function cannot separate them and
//! repeated blurring removes the noise *and* the large-structure detail.
//!
//! This generator creates a few large filamentary structures and hundreds of
//! small blobs whose value bands deliberately **overlap**. Ground truth is
//! the large-structure mask. Over time (t = 130 → 310) structures grow and
//! brighten, providing the temporal-generalization test of Figure 8.

use crate::noise::ValueNoise;
use crate::LabeledSeries;
use ifet_volume::{Dims3, Mask3, ScalarVolume, TimeSeries};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct ReionizationParams {
    pub dims: Dims3,
    /// Stored step labels (the paper shows 130, 250, 310).
    pub t_start: u32,
    pub t_end: u32,
    pub stride: u32,
    /// Number of large structures.
    pub num_large: usize,
    /// Number of small "noise" blobs.
    pub num_small: usize,
    pub seed: u64,
}

impl Default for ReionizationParams {
    fn default() -> Self {
        Self {
            dims: Dims3::cube(64),
            t_start: 130,
            t_end: 310,
            stride: 60,
            num_large: 4,
            num_small: 300,
            seed: 0x2E10,
        }
    }
}

/// Paper-flavoured convenience (steps 130, 190, 250, 310).
pub fn reionization(dims: Dims3, seed: u64) -> LabeledSeries {
    reionization_with(ReionizationParams {
        dims,
        seed,
        ..Default::default()
    })
}

#[derive(Debug, Clone, Copy)]
struct Blob {
    center: [f32; 3],
    radius: f32,
    value: f32,
    /// Growth rate: radius multiplier at tn = 1.
    growth: f32,
}

/// Full-control generator.
pub fn reionization_with(p: ReionizationParams) -> LabeledSeries {
    assert!(p.t_end > p.t_start && p.stride > 0);
    assert!(p.num_large >= 1);
    let steps: Vec<u32> = (p.t_start..=p.t_end).step_by(p.stride as usize).collect();
    let span = (p.t_end - p.t_start) as f32;
    let mut rng = SmallRng::seed_from_u64(p.seed);
    let noise = ValueNoise::new(p.seed ^ 0x51AB);

    let d = p.dims;
    let scale = d.nx.min(d.ny).min(d.nz) as f32;

    // Large structures: big radius, values in [0.55, 0.75], grow over time.
    let large: Vec<Blob> = (0..p.num_large)
        .map(|_| Blob {
            center: [
                rng.gen_range(0.25..0.75) * d.nx as f32,
                rng.gen_range(0.25..0.75) * d.ny as f32,
                rng.gen_range(0.25..0.75) * d.nz as f32,
            ],
            radius: rng.gen_range(0.12..0.20) * scale,
            value: rng.gen_range(0.55..0.75),
            growth: rng.gen_range(1.2..1.5),
        })
        .collect();

    // Small blobs: tiny radius, values **overlapping** the large band
    // ([0.5, 0.9]) so no 1D transfer function separates them.
    let small: Vec<Blob> = (0..p.num_small)
        .map(|_| Blob {
            center: [
                rng.gen_range(0.02..0.98) * d.nx as f32,
                rng.gen_range(0.02..0.98) * d.ny as f32,
                rng.gen_range(0.02..0.98) * d.nz as f32,
            ],
            radius: rng.gen_range(0.02..0.045) * scale,
            value: rng.gen_range(0.5..0.9),
            growth: rng.gen_range(0.9..1.1),
        })
        .collect();

    let mut frames = Vec::with_capacity(steps.len());
    let mut truth = Vec::with_capacity(steps.len());

    for &t in &steps {
        let tn = (t - p.t_start) as f32 / span;
        let (vol, mask) = frame(d, tn, &large, &small, &noise);
        frames.push((t, vol));
        truth.push(mask);
    }

    let out = LabeledSeries {
        name: "reionization".into(),
        series: TimeSeries::from_frames(frames),
        truth,
    };
    out.validate();
    out
}

fn blob_field(blob: &Blob, pos: [f32; 3], tn: f32, wobble: f32) -> f32 {
    let r = blob.radius * (1.0 + (blob.growth - 1.0) * tn);
    let dx = pos[0] - blob.center[0];
    let dy = pos[1] - blob.center[1];
    let dz = pos[2] - blob.center[2];
    let dist = (dx * dx + dy * dy + dz * dz).sqrt();
    // Surface detail on the blob boundary (this is what blurring destroys).
    let r_eff = r * (1.0 + wobble);
    if dist >= r_eff {
        0.0
    } else {
        let s = dist / r_eff;
        // Mostly flat interior with a crisp edge.
        blob.value * (1.0 - s.powi(8))
    }
}

/// High-frequency boundary wobble — the "fine details on the large features"
/// the paper wants preserved (and blurring destroys). Shared by the volume
/// and the ground-truth mask so they agree exactly.
fn boundary_wobble(noise: &ValueNoise, pos: [f32; 3], inv: f32) -> f32 {
    0.55 * (noise.fbm(
        pos[0] * inv * 16.0,
        pos[1] * inv * 16.0,
        pos[2] * inv * 16.0,
        3,
        0.6,
    ) - 0.5)
}

fn frame(
    dims: Dims3,
    tn: f32,
    large: &[Blob],
    small: &[Blob],
    noise: &ValueNoise,
) -> (ScalarVolume, Mask3) {
    let inv = 1.0 / dims.nx as f32;
    let mut mask = Mask3::empty(dims);

    let vol = ScalarVolume::from_fn(dims, |x, y, z| {
        let pos = [x as f32, y as f32, z as f32];
        // Faint intergalactic background.
        let bg = 0.05
            + 0.08
                * noise.fbm(
                    pos[0] * inv * 3.0,
                    pos[1] * inv * 3.0,
                    pos[2] * inv * 3.0,
                    2,
                    0.5,
                );

        let w = boundary_wobble(noise, pos, inv);
        let mut best = 0.0f32;
        for b in large {
            best = best.max(blob_field(b, pos, tn, w));
        }
        for b in small {
            best = best.max(blob_field(b, pos, tn, 0.0));
        }
        bg + best
    });

    // Ground truth: interior of the large structures (with the same wobble).
    for z in 0..dims.nz {
        for y in 0..dims.ny {
            for x in 0..dims.nx {
                let pos = [x as f32, y as f32, z as f32];
                let w = boundary_wobble(noise, pos, inv);
                if large.iter().any(|b| blob_field(b, pos, tn, w) > 0.0) {
                    mask.set(x, y, z, true);
                }
            }
        }
    }

    (vol, mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_set() -> LabeledSeries {
        reionization_with(ReionizationParams {
            dims: Dims3::cube(40),
            num_small: 120,
            ..Default::default()
        })
    }

    #[test]
    fn labels_match_paper_steps() {
        let s = small_set();
        assert_eq!(s.series.steps(), &[130, 190, 250, 310]);
        s.validate();
    }

    #[test]
    fn large_structures_grow() {
        let s = small_set();
        assert!(
            s.truth.last().unwrap().count() > s.truth[0].count(),
            "structures should grow over time"
        );
        assert!(s.truth[0].count() > 100);
    }

    #[test]
    fn value_bands_overlap() {
        // The Figure 7 premise: no value band separates large from small.
        // Pick the best value band for the large structures and show its
        // precision is still poor because small blobs share the band.
        let s = small_set();
        let f = s.series.frame(3);
        let t = &s.truth[3];
        // Large structures' typical band.
        let band = Mask3::value_band(f, 0.5, 1.2);
        let recall = band.recall(t);
        let precision = band.precision(t);
        assert!(
            recall > 0.6,
            "band should capture the structures, recall {recall}"
        );
        assert!(
            precision < 0.92,
            "small blobs must pollute the band, precision {precision}"
        );
    }

    #[test]
    fn small_blobs_are_numerous_outside_truth() {
        let s = small_set();
        let f = s.series.frame(0);
        let t = &s.truth[0];
        let mut bright_outside = Mask3::threshold(f, 0.5);
        bright_outside.subtract(t);
        assert!(
            bright_outside.count() > 50,
            "need plenty of bright noise voxels, got {}",
            bright_outside.count()
        );
    }

    #[test]
    fn surface_detail_exists() {
        // The large-structure boundary must be rough (wobble), so blurring
        // has detail to destroy. Morphological closing smooths crevices; a
        // rough boundary therefore loses measurable surface when closed.
        let s = small_set();
        let t = &s.truth[0];
        let closed = t.dilate6().erode6();
        let raw = t.surface_count() as f64;
        let smooth = closed.surface_count() as f64;
        assert!(
            raw > 1.03 * smooth,
            "boundary not rough enough: surface {raw} vs closed {smooth}"
        );
    }

    #[test]
    fn deterministic() {
        let a = reionization(Dims3::cube(24), 9);
        let b = reionization(Dims3::cube(24), 9);
        assert_eq!(a.series.frame(1), b.series.frame(1));
        assert_eq!(a.truth[1], b.truth[1]);
    }
}
